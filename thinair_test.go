package thinair

import (
	"context"
	"testing"
	"time"

	"repro/internal/transport"
)

func TestSimulateQuickstart(t *testing.T) {
	res, err := Simulate(SimOptions{Terminals: 3, Erasure: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAgreed {
		t.Fatal("terminals disagreed")
	}
	if len(res.Secret) == 0 {
		t.Fatal("no secret")
	}
	if res.Efficiency <= 0 {
		t.Fatal("efficiency not positive")
	}
}

func TestSimulateOracleIsPerfect(t *testing.T) {
	res, err := Simulate(SimOptions{
		Terminals: 4, Erasure: 0.5, Estimator: Oracle{}, Rounds: 2, Rotate: true, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretDims == 0 || res.Reliability != 1 {
		t.Fatalf("dims=%d reliability=%v", res.SecretDims, res.Reliability)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(SimOptions{Terminals: 3, Erasure: 1.0}); err == nil {
		t.Fatal("erasure 1.0 accepted")
	}
	if _, err := Simulate(SimOptions{Terminals: 0, Erasure: 0.5}); err == nil {
		t.Fatal("0 terminals accepted")
	}
}

func TestSimulateMultiAntenna(t *testing.T) {
	one, err := Simulate(SimOptions{Terminals: 3, Erasure: 0.5, Estimator: Oracle{}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Simulate(SimOptions{Terminals: 3, Erasure: 0.5, Estimator: Oracle{}, EveAntennas: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if two.SecretDims > one.SecretDims {
		t.Fatalf("more antennas should not increase the secret: %d > %d", two.SecretDims, one.SecretDims)
	}
	if two.Reliability != 1 {
		t.Fatal("oracle multi-antenna run leaked")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	ch := DefaultChannel()
	res, err := RunExperiment(&Experiment{
		Placement: Placement{EveCell: 4, TerminalCells: []Cell{0, 2, 8}},
		Channel:   ch,
		Protocol:  Config{XPerRound: 36, PayloadBytes: 8, Estimator: Oracle{}},
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAgreed {
		t.Fatal("disagreement")
	}
	if len(EnumeratePlacements(8)) != 9 {
		t.Fatal("placement enumeration wrong")
	}
}

func TestConcurrentFacade(t *testing.T) {
	bus := NewChanBus(0.4, 7)
	defer bus.Close()
	cfg := NodeConfig{
		Config:  Config{Terminals: 3, XPerRound: 60, PayloadBytes: 8, Rounds: 1},
		Session: 1,
		Timeout: 5 * time.Second,
	}
	results, err := transport.RunGroup(context.Background(), bus, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if string(results[i].Secret) != string(results[0].Secret) {
			t.Fatal("secrets differ")
		}
	}
}

func TestKeyChainFacade(t *testing.T) {
	a := NewKeyChain([]byte("b"))
	b := NewKeyChain([]byte("b"))
	sealed := a.Seal([]byte("x"))
	if _, err := b.Open(sealed); err != nil {
		t.Fatal(err)
	}
	if Reliability(4, 4) != 1 {
		t.Fatal("reliability facade wrong")
	}
}

func TestKeyPoolFacade(t *testing.T) {
	sessions := 0
	pool := NewKeyPoolWithRefill(func() ([]byte, error) {
		sessions++
		res, err := Simulate(SimOptions{Terminals: 3, Erasure: 0.4, Seed: int64(sessions)})
		if err != nil {
			return nil, err
		}
		return res.Secret, nil
	}, 64)
	k, err := pool.Draw(128)
	if err != nil {
		t.Fatal(err)
	}
	if len(k) != 128 || sessions == 0 {
		t.Fatalf("k=%d sessions=%d", len(k), sessions)
	}
	p2 := NewKeyPool()
	p2.Deposit([]byte{1, 2, 3})
	if p2.Available() != 3 {
		t.Fatal("facade pool broken")
	}
}

func TestServiceFacade(t *testing.T) {
	svc := NewService(ServiceConfig{MaxSessions: 2})
	s, err := svc.Create(SessionSpec{
		Terminals: 3, Erasure: 0.45, XPerRound: 64, PayloadBytes: 16,
		Rounds: 1, Rotate: true, Seed: 7, LowWater: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	key, err := s.Draw(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 32 {
		t.Fatalf("key = %d bytes", len(key))
	}
	if m := s.Metrics(); m.Productive == 0 || m.Pool.Drawn != 32 {
		t.Fatalf("metrics = %+v", m)
	}
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestTracerFacade(t *testing.T) {
	log := NewTraceLog()
	_, err := Simulate(SimOptions{Terminals: 3, Erasure: 0.4, Seed: 2, Tracer: log})
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Fatal("no events traced")
	}
}

func TestSelfJamExperimentFacade(t *testing.T) {
	ch := DefaultChannel()
	ch.SelfJam = true
	ch.JamPErase = 0
	res, err := RunExperiment(&Experiment{
		Placement: Placement{EveCell: 4, TerminalCells: []Cell{0, 2, 6, 8}},
		Channel:   ch,
		Protocol:  Config{XPerRound: 45, PayloadBytes: 8, Rounds: 2, Rotate: true, Estimator: Oracle{}},
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAgreed {
		t.Fatal("self-jam run disagreed")
	}
	if res.UnknownDims != res.SecretDims {
		t.Fatal("oracle self-jam run leaked")
	}
	// Self-jamming must actually degrade Eve.
	for _, ri := range res.Rounds {
		if ri.EveMissRate <= 0.05 {
			t.Fatalf("Eve miss rate %v suspiciously low under self-jamming", ri.EveMissRate)
		}
	}
}

func TestSimulatePairwiseFacade(t *testing.T) {
	res, err := SimulatePairwise(SimOptions{Terminals: 4, Erasure: 0.4, Estimator: Oracle{}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 3 {
		t.Fatalf("pairs = %d", len(res.Pairs))
	}
	for _, p := range res.Pairs {
		if p.SecretDims > 0 && p.UnknownDims != p.SecretDims {
			t.Fatalf("terminal %d pairwise leaked", p.Terminal)
		}
	}
	if _, err := SimulatePairwise(SimOptions{Terminals: 2, Erasure: 1.5}); err == nil {
		t.Fatal("bad erasure accepted")
	}
}

func TestSimulateUnicastBaselineFacade(t *testing.T) {
	group, err := Simulate(SimOptions{Terminals: 6, Erasure: 0.5, XPerRound: 80, Rounds: 2, Rotate: true,
		Estimator: Oracle{}, Pooling: ExactPooling{}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := SimulateUnicastBaseline(SimOptions{Terminals: 6, Erasure: 0.5, XPerRound: 80, Rounds: 2, Rotate: true,
		Estimator: Oracle{}, Pooling: ExactPooling{}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if uni.SecretDims == 0 || group.SecretDims == 0 {
		t.Skip("no secrets this seed")
	}
	if uni.UnknownDims != uni.SecretDims {
		t.Fatal("unicast baseline leaked under oracle")
	}
	if group.Efficiency <= uni.Efficiency {
		t.Fatalf("group %.4f <= unicast %.4f at n=6 (Figure 1's point)", group.Efficiency, uni.Efficiency)
	}
	if _, err := SimulateUnicastBaseline(SimOptions{Terminals: 2, Erasure: -1}); err == nil {
		t.Fatal("bad erasure accepted")
	}
}
