package thinair_test

import (
	"fmt"

	thinair "repro"
)

// The minimal end-to-end flow: three terminals agree on a secret over a
// noisy broadcast channel while Eve overhears 40% of the data packets and
// every control message.
func Example() {
	res, err := thinair.Simulate(thinair.SimOptions{
		Terminals: 3,
		Erasure:   0.4,
		Rounds:    2,
		Rotate:    true,
		Seed:      2012,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("agreed:", res.AllAgreed)
	fmt.Println("secret bytes:", len(res.Secret))
	fmt.Printf("reliability: %.3f\n", res.Reliability)
	// Output:
	// agreed: true
	// secret bytes: 2400
	// reliability: 1.000
}

// Oracle estimates (analysis mode) make secrecy perfect by construction:
// the certificate reports zero known dimensions even though Eve heard
// every control frame.
func ExampleSimulate_oracle() {
	res, err := thinair.Simulate(thinair.SimOptions{
		Terminals: 4,
		Erasure:   0.5,
		Estimator: thinair.Oracle{},
		Seed:      7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("perfect:", res.UnknownDims == res.SecretDims)
	// Output:
	// perfect: true
}

// A testbed experiment is one placement of Eve and the terminals on the
// paper's 3x3-cell grid, with the rotating artificial interference.
func ExampleRunExperiment() {
	res, err := thinair.RunExperiment(&thinair.Experiment{
		Placement: thinair.Placement{EveCell: 4, TerminalCells: []thinair.Cell{0, 2, 6, 8}},
		Channel:   thinair.DefaultChannel(),
		Protocol: thinair.Config{
			XPerRound: 90, Rounds: 2, Rotate: true,
			Estimator: thinair.Oracle{}, Seed: 42,
		},
		Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("agreed:", res.AllAgreed)
	fmt.Println("perfectly secret:", res.UnknownDims == res.SecretDims)
	// Output:
	// agreed: true
	// perfectly secret: true
}

// The key pool turns sessions into a stream of never-reused one-time keys.
func ExampleKeyPool() {
	session := 0
	pool := thinair.NewKeyPoolWithRefill(func() ([]byte, error) {
		session++
		res, err := thinair.Simulate(thinair.SimOptions{
			Terminals: 3, Erasure: 0.4, Seed: int64(session),
		})
		if err != nil {
			return nil, err
		}
		return res.Secret, nil
	}, 128)
	key, err := pool.Draw(32)
	if err != nil {
		panic(err)
	}
	fmt.Println("key bytes:", len(key))
	fmt.Println("refilled:", session > 0)
	// Output:
	// key bytes: 32
	// refilled: true
}
