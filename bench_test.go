// Benchmarks regenerating the paper's §4 evaluation (each benchmark's doc
// comment names the figure or headline it reproduces). They are sized to
// finish in seconds per iteration; cmd/thinair-bench runs the full-size
// versions.
//
// Reported custom metrics use the paper's vocabulary:
//
//	eff_*   efficiency (secret bits / transmitted bits)
//	rel_*   reliability (Eve guesses a secret bit w.p. 2^-rel)
//	kbps_*  secret rate at the paper's 1 Mbps channel
package thinair

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/radio"
)

// BenchmarkFigure1 computes the analytic efficiency curves of Figure 1
// (group vs unicast for n = 2, 3, 6, 10, ∞).
func BenchmarkFigure1(b *testing.B) {
	var curves []figures.Fig1Curve
	for i := 0; i < b.N; i++ {
		curves = figures.Figure1([]int{2, 3, 6, 10, 0}, 100)
	}
	at := func(n int, p float64) (float64, float64) {
		for _, c := range curves {
			if c.N == n {
				for _, pt := range c.Points {
					if math.Abs(pt.P-p) < 1e-9 {
						return pt.Group, pt.Unicast
					}
				}
			}
		}
		return math.NaN(), math.NaN()
	}
	g2, u2 := at(2, 0.5)
	g10, u10 := at(10, 0.5)
	b.ReportMetric(g2, "eff_group_n2_p05")
	b.ReportMetric(u2, "eff_unicast_n2_p05")
	b.ReportMetric(g10, "eff_group_n10_p05")
	b.ReportMetric(u10, "eff_unicast_n10_p05")
	b.ReportMetric(analytic.GroupEfficiencyInf(0.5), "eff_group_inf_p05")
}

// BenchmarkFigure1MonteCarlo cross-validates the Figure-1 analysis against
// the actual protocol with oracle estimates on a symmetric channel.
func BenchmarkFigure1MonteCarlo(b *testing.B) {
	var pts []figures.Fig1MCPoint
	for i := 0; i < b.N; i++ {
		pts = figures.Figure1MonteCarlo([]int{2, 6}, []float64{0.5}, 150, 4, 1, int64(200+i))
	}
	for _, pt := range pts {
		if pt.N == 2 {
			b.ReportMetric(pt.Measured/pt.Analytic, "ratio_mc_n2_p05")
		}
		if pt.N == 6 {
			b.ReportMetric(pt.Measured/pt.Analytic, "ratio_mc_n6_p05")
		}
	}
}

// BenchmarkFigure2 runs a subsampled testbed reliability sweep
// (n = 3..8, the paper's Figure 2).
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := figures.Figure2(figures.Fig2Options{
			Ns: []int{3, 6, 8}, XPerRound: 90, Rounds: 3,
			MaxPlacements: 18, Seed: 11,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range out {
				switch r.N {
				case 3:
					b.ReportMetric(r.Reliability.Min, "rel_min_n3")
					b.ReportMetric(r.Reliability.P50, "rel_p50_n3")
				case 6:
					b.ReportMetric(r.Reliability.Min, "rel_min_n6")
					b.ReportMetric(r.Reliability.P50, "rel_p50_n6")
				case 8:
					b.ReportMetric(r.Reliability.Min, "rel_min_n8")
					b.ReportMetric(r.Reliability.P50, "rel_p50_n8")
				}
			}
		}
	}
}

// BenchmarkFigure2Sweep measures the wall-time effect of the parallel
// sweep engine on the same Figure-2 grid at different worker counts. The
// tables produced are byte-identical across sub-benchmarks; on a machine
// with >= 4 cores the workers=4 variant should run at least ~2x faster
// per op than workers=1.
func BenchmarkFigure2Sweep(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=numcpu"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := figures.Figure2(figures.Fig2Options{
					Ns: []int{3, 6, 8}, XPerRound: 90, Rounds: 3,
					MaxPlacements: 18, Seed: 11, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHeadlineEfficiency reproduces the n = 8 headline: minimum
// efficiency (paper: 0.038) and the secret rate at 1 Mbps (paper: 38 kbps)
// over the full 9-placement set.
func BenchmarkHeadlineEfficiency(b *testing.B) {
	var h *figures.HeadlineResult
	for i := 0; i < b.N; i++ {
		var err error
		h, err = figures.Headline(figures.Fig2Options{XPerRound: 90, Rounds: 3, Seed: 11, Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.MinEfficiency, "eff_min_n8")
	b.ReportMetric(h.MinKbps, "kbps_min_n8")
	b.ReportMetric(h.MinReliability, "rel_min_n8")
}

// BenchmarkRotationWorstCase measures §3.2's worst case (Eve overhears a
// superset of some terminal's packets) with and without leader rotation.
func BenchmarkRotationWorstCase(b *testing.B) {
	var with, without *figures.RotationResult
	for i := 0; i < b.N; i++ {
		opt := figures.Fig2Options{XPerRound: 90, Rounds: 3, MaxPlacements: 18, Seed: 11, Workers: 1}
		var err error
		with, err = figures.RotationCheck(4, true, opt)
		if err != nil {
			b.Fatal(err)
		}
		without, err = figures.RotationCheck(4, false, opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(with.RoundsEveCovered)/float64(with.RoundsTotal), "covered_frac_rotation")
	b.ReportMetric(float64(without.RoundsEveCovered)/float64(without.RoundsTotal), "covered_frac_static")
	b.ReportMetric(with.SessionRisk, "session_risk_rotation")
	b.ReportMetric(without.SessionRisk, "session_risk_static")
}

func reportAblation(b *testing.B, rows []figures.AblationRow) {
	b.Helper()
	for _, r := range rows {
		b.ReportMetric(r.MeanEff, "eff_"+r.Name)
		if !math.IsNaN(r.MinReliab) {
			b.ReportMetric(r.MinReliab, "relmin_"+r.Name)
		}
	}
}

// BenchmarkAblationEstimators compares Oracle, FixedDelta, LeaveOneOut
// (global and conditional) and KSubset on the testbed.
func BenchmarkAblationEstimators(b *testing.B) {
	var rows []figures.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.AblationEstimators(5, figures.Fig2Options{
			XPerRound: 90, Rounds: 2, MaxPlacements: 12, Seed: 13, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, rows)
}

// BenchmarkAblationAllocation compares pooling policies and the unicast
// baseline.
func BenchmarkAblationAllocation(b *testing.B) {
	var rows []figures.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.AblationAllocation(5, figures.Fig2Options{
			XPerRound: 90, Rounds: 2, MaxPlacements: 12, Seed: 13, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, rows)
}

// BenchmarkAblationInterference compares jamming on vs off.
func BenchmarkAblationInterference(b *testing.B) {
	var rows []figures.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.AblationInterference(5, figures.Fig2Options{
			XPerRound: 90, Rounds: 2, MaxPlacements: 12, Seed: 13, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, rows)
}

// BenchmarkAblationRotation compares leader rotation on vs off.
func BenchmarkAblationRotation(b *testing.B) {
	var rows []figures.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.AblationRotation(5, figures.Fig2Options{
			XPerRound: 90, Rounds: 2, MaxPlacements: 12, Seed: 13, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, rows)
}

// BenchmarkProtocolRound measures raw engine throughput: secret bytes
// generated per second of compute on a friendly symmetric channel.
func BenchmarkProtocolRound(b *testing.B) {
	var secretBytes int64
	for i := 0; i < b.N; i++ {
		med := radio.NewMedium(radio.Uniform{P: 0.5}, 5, int64(i))
		res, err := core.RunSession(core.Config{
			Terminals: 4, XPerRound: 90, PayloadBytes: 100,
			Estimator: core.Oracle{}, Seed: int64(i),
		}, med, []radio.NodeID{4})
		if err != nil {
			b.Fatal(err)
		}
		secretBytes += int64(len(res.Secret))
	}
	b.SetBytes(secretBytes / int64(b.N))
	b.ReportMetric(float64(secretBytes)/float64(b.N), "secret_B/op")
}

// BenchmarkAblationSelfJam compares dedicated interferers, terminal
// self-jamming (§3.3's suggestion) and no interference.
func BenchmarkAblationSelfJam(b *testing.B) {
	var rows []figures.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.AblationSelfJam(5, figures.Fig2Options{
			XPerRound: 90, Rounds: 2, MaxPlacements: 12, Seed: 13, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, rows)
}

// BenchmarkAblationBurstiness stresses the independence assumption behind
// the binomial budgets: same stationary loss, increasing burst lengths.
func BenchmarkAblationBurstiness(b *testing.B) {
	var rows []figures.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.AblationBurstiness(5, 20, 1, 11)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, rows)
}

// BenchmarkAblationCancellingEve reproduces the §6 threat analysis: an
// interference-cancelling Eve against the leave-one-out estimator, and the
// k-subset defense against her.
func BenchmarkAblationCancellingEve(b *testing.B) {
	var rows []figures.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.AblationCancellingEve(5, figures.Fig2Options{
			XPerRound: 90, Rounds: 2, MaxPlacements: 12, Seed: 13, Workers: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAblation(b, rows)
}
