// Quickstart: three terminals on a noisy broadcast channel agree on a
// shared secret that the eavesdropper — who overheard 60% of the packets
// and every control message — knows nothing about.
package main

import (
	"fmt"
	"log"

	thinair "repro"
)

func main() {
	res, err := thinair.Simulate(thinair.SimOptions{
		Terminals: 3,   // Alice, Bob, Calvin
		Erasure:   0.4, // every link (Eve's too) loses 40% of packets
		Rounds:    2,
		Rotate:    true, // terminals take turns leading (§3.2)
		Seed:      2012,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Creating shared secrets out of thin air (HotNets 2012)")
	fmt.Println("------------------------------------------------------")
	fmt.Printf("group secret:      %d bytes (first 16: %x)\n", len(res.Secret), res.Secret[:16])
	fmt.Printf("all terminals agree: %v\n", res.AllAgreed)
	fmt.Printf("efficiency:        %.4f (%.1f secret kbps at 1 Mbps)\n",
		res.Efficiency, res.SecretKbpsAt(1e6))
	fmt.Printf("reliability:       %.3f (1.0 means Eve can only guess: "+
		"each secret bit is a coin flip to her)\n", res.Reliability)
	fmt.Printf("certificate:       Eve has zero information about %d of %d secret packets\n",
		res.UnknownDims, res.SecretDims)

	for _, ri := range res.Rounds {
		fmt.Printf("  round %d: leader T%d, %d x-packets -> %d y-packets -> %d secret packets "+
			"(Eve missed %.0f%% of the x-packets)\n",
			ri.Round, ri.Leader, ri.NumX, ri.M, ri.L, 100*ri.EveMissRate)
	}
}
