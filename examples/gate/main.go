// Gate: the persistent-client tier in one program. A daemon hosts a
// stream-fed session; a Gate serves it over the multiplexed frame
// protocol; and the same thinair.Client interface reads key material
// over three transports — daemon HTTP, the gate's TCP frames, and the
// gate's WebSocket upgrade — returning byte-identical answers.
//
// This is the in-process twin of `thinaird gate` (which fronts a whole
// cluster and streams ranges straight from owning workers).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"time"

	thinair "repro"
	"repro/internal/gate"
)

func main() {
	svc := thinair.NewService(thinair.ServiceConfig{
		MaxSessions:  2,
		DrainTimeout: 5 * time.Second,
	})

	// One stream-fed session: offset-addressable, so ranges are
	// repeatable across transports.
	s, err := svc.Create(thinair.SessionSpec{
		Name: "padsource", Terminals: 3, Erasure: 0.45,
		XPerRound: 64, PayloadBytes: 16, Rotate: true,
		Seed: 7, LowWater: 512, TargetDepth: 1024, Streamed: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		log.Fatal(err)
	}
	session := uint64(s.ID)

	// The gate serves the session over persistent frame connections.
	g := thinair.NewGate(thinair.GateConfig{
		Backend:        gate.ServiceBackend{SV: svc},
		HeartbeatEvery: 5 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go g.Serve(ln)

	// WebSocket upgrades reach the same gate.
	mux := http.NewServeMux()
	mux.Handle("/v1/gate", g.WSHandler())
	ws := httptest.NewServer(mux)
	defer ws.Close()

	// The daemon's /v1 HTTP surface, for the third transport.
	api := httptest.NewServer(svc.Handler())
	defer api.Close()

	// Three transports, one Client interface.
	httpC := thinair.NewHTTPClient(api.URL)
	frameC, err := thinair.DialGate(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	wsC, err := thinair.DialGateWS(ws.URL + "/v1/gate")
	if err != nil {
		log.Fatal(err)
	}
	clients := []struct {
		name string
		c    thinair.Client
	}{{"daemon-http", httpC}, {"gate-frame", frameC}, {"gate-ws", wsC}}

	// The same stream range through each transport: identical bytes.
	var first []byte
	for _, tc := range clients {
		got, err := tc.c.StreamRange(ctx, session, 4096, 48)
		if err != nil {
			log.Fatalf("%s: %v", tc.name, err)
		}
		if first == nil {
			first = got
		} else if !bytes.Equal(first, got) {
			log.Fatalf("%s returned different bytes for the same range", tc.name)
		}
		fmt.Printf("%-12s stream[4096:4144) = %x…\n", tc.name, got[:12])
	}

	// Draws consume: each hands out fresh material, whatever the tier.
	for _, tc := range clients {
		key, err := tc.c.Draw(ctx, session, 32)
		if err != nil {
			log.Fatalf("%s: %v", tc.name, err)
		}
		fmt.Printf("%-12s drew %d fresh pad bytes\n", tc.name, len(key))
		tc.c.Close()
	}

	_ = g.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer scancel()
	if err := svc.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("gate closed; daemon drained and zeroized")
}
