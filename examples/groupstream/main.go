// Groupstream: the paper's motivating application — a group of wireless
// users consuming content together. Five terminals on the simulated
// testbed continuously generate group secrets into a key pool, and use
// never-reused one-time pads from the pool to encrypt a content stream;
// the eavesdropper overhears the ciphertext and all protocol traffic yet
// reconstructs nothing.
//
// This mirrors the QKD use case the paper cites: "periodic generation of
// one-time pads at a high enough rate to enable information-theoretically
// secure transmission of real-time video".
package main

import (
	"bytes"
	"fmt"
	"log"

	thinair "repro"
)

func main() {
	// A 3x3-cell room: Eve in the middle, the group around her.
	placement := thinair.Placement{
		EveCell:       4,
		TerminalCells: []thinair.Cell{0, 2, 6, 8, 1},
	}

	// The key pool refills itself by running protocol sessions whenever
	// it drops below the watermark. Every group member would run the same
	// deterministic schedule, so their pools stay byte-identical.
	session := 0
	pool := thinair.NewKeyPoolWithRefill(func() ([]byte, error) {
		res, err := thinair.RunExperiment(&thinair.Experiment{
			Placement: placement,
			Channel:   thinair.DefaultChannel(),
			Protocol: thinair.Config{
				XPerRound: 90, Rounds: 3, Rotate: true,
				Seed: int64(9000 + session),
			},
			Seed: int64(100 + session),
		})
		if err != nil {
			return nil, err
		}
		fmt.Printf("  [key session %d] +%d secret bytes, efficiency %.4f, reliability %.3f, airtime %v\n",
			session, len(res.Secret), res.Efficiency, res.Reliability, res.Airtime)
		session++
		return res.Secret, nil
	}, 256)

	content := [][]byte{
		[]byte("frame-000: the quick brown fox jumps over the lazy dog"),
		[]byte("frame-001: information-theoretic security needs no RSA"),
		[]byte("frame-002: refresh the pad, stream on"),
	}

	fmt.Println("streaming 3 content frames under one-time pads from thin air")
	fmt.Println()
	for _, frame := range content {
		pad, ct, err := pool.DrawPad(frame) // any member encrypts…
		if err != nil {
			log.Fatal(err)
		}
		pt := make([]byte, len(ct))
		for i := range ct { // …every other member decrypts with the same pad
			pt[i] = ct[i] ^ pad[i]
		}
		if !bytes.Equal(pt, frame) {
			log.Fatal("decryption mismatch")
		}
		fmt.Printf("frame sent:   %q\n", frame)
		fmt.Printf("on the air:   %x…\n", ct[:24])
		fmt.Printf("group reads:  %q\n\n", pt)
	}
	st := pool.Stats()
	fmt.Printf("pool: %d bytes banked, %d consumed, %d ready for the next frames (%d refills)\n",
		st.Deposited, st.Drawn, st.Available, st.Refills)
}
