// Pairrefresh: the paper's introduction scenario — Alice and Bob
// continuously refresh the key protecting their link, so that "there would
// be no public/private RSA key pair or master key (as in WPA) that, if
// stolen or accidentally revealed, would enable an adversary to
// reconstruct Alice's and Bob's shared secrets".
//
// The two nodes run the concurrent runtime over an in-process broadcast
// bus with ACTIVE-adversary protection: every control frame carries an
// HMAC under a key chain bootstrapped out of band and ratcheted with each
// fresh secret. The demo then shows the forward-security property: an
// attacker who steals the bootstrap after the fact still cannot forge
// post-ratchet traffic.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/auth"
	"repro/internal/transport"

	thinair "repro"
)

func main() {
	const bootstrap = "out-of-band pairing code 4711"

	alice := thinair.NewKeyChain([]byte(bootstrap))
	bob := thinair.NewKeyChain([]byte(bootstrap))

	fmt.Println("Alice & Bob: continuous session-key refresh out of thin air")
	fmt.Println()

	for epoch := 0; epoch < 3; epoch++ {
		bus := thinair.NewChanBus(0.45, int64(50+epoch))
		cfg := transport.NodeConfig{
			Config: thinair.Config{
				Terminals: 2, XPerRound: 120, PayloadBytes: 100,
				Rounds: 2, Rotate: true, Seed: int64(7000 + epoch),
			},
			Session: uint32(epoch + 1),
			Timeout: 10 * time.Second,
		}
		results, err := transport.RunGroup(context.Background(), bus, cfg,
			[]*auth.KeyChain{alice, bob})
		bus.Close()
		if err != nil {
			log.Fatal(err)
		}

		// Both sides export the link key for this epoch from their chain
		// state; the chains ratcheted with the fresh secret inside RunGroup.
		ka := alice.Export("link-key", 16)
		kb := bob.Export("link-key", 16)
		fmt.Printf("epoch %d: %4d fresh secret bytes; chain epoch %d; link key %x (match: %v)\n",
			epoch, len(results[0].Secret), alice.Epoch(), ka, string(ka) == string(kb))
	}

	// The attacker stole the bootstrap — but missed the on-air secrets.
	fmt.Println()
	mallory := thinair.NewKeyChain([]byte(bootstrap))
	forged := mallory.Seal([]byte("AUTHENTIC message from Bob, honest!"))
	if _, err := alice.Open(forged); err != nil {
		fmt.Printf("attacker with the stolen bootstrap (epoch 0) forges a frame: REJECTED (%v)\n", err)
	} else {
		log.Fatal("forgery accepted — forward security broken")
	}
	fmt.Println("the refreshed secrets do not depend on the bootstrap: pairing code theft is harmless after one round")
}
