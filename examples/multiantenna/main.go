// Multiantenna: the paper's §6 challenge — an adversary with multiple
// antennas overhears more. This example measures how the secret rate
// degrades as Eve adds antennas, and how the k-subset estimator (§3.3:
// "pretend that each set of k terminals together are Eve") restores safety
// at the cost of rate.
//
// Two comparisons on the same symmetric channel:
//
//  1. Oracle budgets (exact knowledge of Eve's misses): the secret shrinks
//     with each antenna but remains perfectly hidden — the "non-zero
//     secret bitrate" hope of §4.
//  2. Practical estimators: LeaveOneOut (designed for a 1-antenna Eve)
//     against a 2-antenna Eve leaks, while KSubset{K:2} holds.
package main

import (
	"fmt"
	"log"

	thinair "repro"
)

func run(opt thinair.SimOptions) *thinair.SessionResult {
	res, err := thinair.Simulate(opt)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	base := thinair.SimOptions{
		Terminals: 6,
		Erasure:   0.5,
		XPerRound: 200,
		Rounds:    3,
		Rotate:    true,
		Seed:      31337,
	}

	fmt.Println("1) oracle budgets: the secret shrinks but never leaks")
	fmt.Printf("%10s %14s %12s %12s\n", "antennas", "secret bytes", "efficiency", "reliability")
	for k := 1; k <= 3; k++ {
		opt := base
		opt.Estimator = thinair.Oracle{}
		opt.EveAntennas = k
		res := run(opt)
		fmt.Printf("%10d %14d %12.4f %12.3f\n", k, len(res.Secret), res.Efficiency, res.Reliability)
	}

	fmt.Println()
	fmt.Println("2) practical estimators against a 2-antenna Eve")
	fmt.Printf("%-22s %14s %12s %12s\n", "estimator", "secret bytes", "efficiency", "reliability")
	for _, tc := range []struct {
		name string
		est  thinair.Estimator
	}{
		{"leave-one-out (k=1)", thinair.LeaveOneOut{}},
		{"k-subset (k=2)", thinair.KSubset{K: 2}},
	} {
		opt := base
		opt.Estimator = tc.est
		opt.EveAntennas = 2
		res := run(opt)
		fmt.Printf("%-22s %14d %12.4f %12.3f\n", tc.name, len(res.Secret), res.Efficiency, res.Reliability)
	}
	fmt.Println()
	fmt.Println("interpretation: reliability 1.000 = every secret bit is a coin flip to Eve;")
	fmt.Println("lower values mean the estimator under-counted what a multi-antenna Eve hears.")
}
