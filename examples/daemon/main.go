// Daemon: the service layer in one program. A Service runs several
// concurrent secret-agreement groups, each continuously refreshing a key
// pool in the background; the main goroutine plays the application that
// draws one-time pads, and the whole thing shuts down gracefully —
// draining in-flight protocol rounds and zeroizing every pool.
//
// This is the in-process twin of cmd/thinaird (which serves the same
// service over HTTP).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	thinair "repro"
)

func main() {
	svc := thinair.NewService(thinair.ServiceConfig{
		MaxSessions:  4,
		DrainTimeout: 5 * time.Second,
	})

	// Three groups with different flavors: plain, authenticated, observed.
	specs := []thinair.SessionSpec{
		{Name: "plain", Terminals: 3, Erasure: 0.45, Seed: 11},
		{Name: "authed", Terminals: 4, Erasure: 0.45, Seed: 22,
			AuthBootstrap: []byte("group bootstrap secret")},
		{Name: "observed", Terminals: 3, Erasure: 0.45, Seed: 33, Observe: true},
	}
	var sessions []*thinair.ServiceSession
	for i := range specs {
		specs[i].Rotate = true
		specs[i].XPerRound = 64
		specs[i].PayloadBytes = 16
		specs[i].Rounds = 1
		specs[i].LowWater = 512
		s, err := svc.Create(specs[i])
		if err != nil {
			log.Fatal(err)
		}
		sessions = append(sessions, s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, s := range sessions {
		if err := s.WaitReady(ctx); err != nil {
			log.Fatal(err)
		}
		m := s.Metrics()
		fmt.Printf("session %d (%s): pool %d bytes after %d refresh batches\n",
			s.ID, m.Name, m.Pool.Available, m.Refreshes)
	}

	// Draw one-time pads while the refreshers keep the pools topped up.
	msg := []byte("information-theoretic security needs no RSA")
	for _, s := range sessions {
		pad, ct, err := s.Pool().DrawPad(msg)
		if err != nil {
			log.Fatal(err)
		}
		pt := make([]byte, len(ct))
		for i := range ct {
			pt[i] = ct[i] ^ pad[i]
		}
		fmt.Printf("session %d: %x… decrypts to %q\n", s.ID, ct[:12], pt[:24])
	}

	// Give the background refreshers a beat, then inspect telemetry.
	time.Sleep(100 * time.Millisecond)
	for _, sm := range svc.Metrics().Sessions {
		fmt.Printf("session %d (%s): rounds=%d productive=%d secret=%dB pool=%dB lowWaterHits=%d",
			sm.ID, sm.Name, sm.Rounds, sm.Productive, sm.SecretBytes,
			sm.Pool.Available, sm.Pool.LowWaterHits)
		if sm.EveSecretDims > 0 {
			fmt.Printf(" eveReliability=%.3f", sm.EveReliability)
		}
		fmt.Println()
	}

	sctx, scancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer scancel()
	if err := svc.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("daemon drained; pools zeroized")
}
