// Cluster: the multi-process tier in one program. A Coordinator owns
// the session registry and supervises a fleet of workers, each hosting
// group sessions over its own loopback-UDP buses; key draws route
// through the coordinator to whichever worker owns the session.
//
// For demo convenience the workers here are hosted in-process behind
// real loopback HTTP listeners (cluster.InProcess) — the supervision,
// RPC and reassignment paths are identical to the OS-process tier that
// `thinaird coordinator` runs via cluster.ExecSpawner. The demo kills a
// worker mid-flight to show the registry surviving it: the dead
// worker's sessions are re-placed on survivors, where their seeds
// re-derive the same key streams.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	thinair "repro"
	"repro/internal/cluster"
)

// procs records the live proc behind each worker slot so the demo can
// kill one — the same handle the coordinator supervises through.
var procs sync.Map

func main() {
	inproc := cluster.InProcess(nil)
	coord, err := thinair.NewCoordinator(thinair.ClusterConfig{
		Workers:        3,
		WorkerCapacity: 4,
		HeartbeatEvery: 100 * time.Millisecond,
		Logf:           log.Printf,
		Spawn: func(ctx context.Context, opts cluster.WorkerSpawnOpts) (cluster.WorkerProc, error) {
			p, err := inproc(ctx, opts)
			if err == nil {
				procs.Store(opts.Slot, p)
			}
			return p, err
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Six groups across three workers (least-loaded placement).
	var ids []uint64
	for i := 0; i < 6; i++ {
		info, err := coord.Create(thinair.SessionSpec{
			Name: fmt.Sprintf("grp-%d", i), Terminals: 3, Erasure: 0.45,
			XPerRound: 64, PayloadBytes: 16, Rounds: 1, Rotate: true,
			Seed: int64(40 + i*11), LowWater: 512, TargetDepth: 1024,
		})
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, info.ID)
		fmt.Printf("session %d (%s) placed on worker %d\n", info.ID, info.Name, info.Worker)
	}

	ctx := context.Background()
	for _, id := range ids {
		waitConverged(ctx, coord, id, 1024)
		key, err := coord.Draw(ctx, id, 32)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("session %d: drew %d one-time key bytes through the coordinator\n", id, len(key))
	}

	// Chaos: take down the worker owning session 1; the coordinator
	// reassigns its sessions and draws succeed again.
	victim, err := coord.Session(ctx, ids[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkilling worker %d ...\n", victim.Worker)
	if p, ok := procs.Load(victim.Worker); ok {
		_ = p.(cluster.WorkerProc).Kill()
	}
	for {
		info, err := coord.Session(ctx, ids[0])
		if err != nil {
			log.Fatal(err)
		}
		if info.State == "assigned" && info.Reassigns > 0 {
			fmt.Printf("session %d reassigned to worker %d\n", info.ID, info.Worker)
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	waitConverged(ctx, coord, ids[0], 1024)
	if _, err := coord.Draw(ctx, ids[0], 32); err != nil {
		log.Fatal(err)
	}
	fmt.Println("draws succeed again after reassignment")

	m := coord.Metrics()
	fmt.Printf("\ncluster: %d workers alive, %d sessions, %d reassigned, %d worker restarts\n",
		m.WorkersAlive, m.Sessions, m.Reassigned, m.Restarts)

	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := coord.Shutdown(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("tier drained: every worker pool zeroized")
}

func waitConverged(ctx context.Context, coord *thinair.Coordinator, id uint64, target int) {
	for {
		info, err := coord.Session(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		if info.Metrics != nil && info.Metrics.Pool.Available >= target {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
}
