package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/gf"
)

// The GF kernel benchmark matrix formatter: runs the same field x slice
// length x kernel grid as BenchmarkAddMulSlice in internal/gf and writes
// the results as JSON (BENCH_gf.json in CI). The "dispatch" arm measures
// whatever kernel the arch-dispatch layer selected on this machine; the
// "generic" arm pins the portable reference layer, so every dispatch row
// carries its speedup over generic and the perf trajectory of the
// accelerated kernels is recorded next to the baseline it must beat.

type gfBenchRow struct {
	Name             string  `json:"name"`
	Field            string  `json:"field"`
	N                int     `json:"n"`
	Kernel           string  `json:"kernel"`
	NsPerOp          float64 `json:"ns_per_op"`
	MBPerS           float64 `json:"mb_per_s"`
	SpeedupVsGeneric float64 `json:"speedup_vs_generic,omitempty"`
}

type gfBenchReport struct {
	GOOS            string       `json:"goos"`
	GOARCH          string       `json:"goarch"`
	DispatchKernel  string       `json:"dispatch_kernel"`
	SpeedupGF16Long float64      `json:"speedup_gf16_long"` // dispatch vs generic, n=4096
	SpeedupGF8Long  float64      `json:"speedup_gf8_long"`
	Benchmarks      []gfBenchRow `json:"benchmarks"`
}

var gfBenchSizes = []int{64, 256, 1024, 4096, 16384}

func benchGFKernel[E gf.Elem](f *gf.Field[E], n int, generic bool) testing.BenchmarkResult {
	dst := make([]E, n)
	src := make([]E, n)
	rng := rand.New(rand.NewSource(9))
	for i := range src {
		src[i] = E(rng.Intn(f.Size()))
	}
	elemBytes := 1
	if f.Size() > 256 {
		elemBytes = 2
	}
	return testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(n * elemBytes))
		for i := 0; i < b.N; i++ {
			if generic {
				f.AddMulSliceGeneric(dst, src, 7)
			} else {
				f.AddMulSlice(dst, src, 7)
			}
		}
	})
}

func mbPerS(r testing.BenchmarkResult) float64 {
	if r.T <= 0 {
		return 0
	}
	return float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6
}

func gfBench(out string) {
	rep := gfBenchReport{
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		DispatchKernel: gf.GF65536().Kernel(),
	}
	// On machines where dispatch selected no accelerated kernel the
	// dispatch arm IS the generic arm: emit it once and record no
	// (meaningless) speedup instead of duplicating rows.
	arms := []struct {
		kernel  string
		generic bool
	}{{rep.DispatchKernel, false}, {"generic", true}}
	if rep.DispatchKernel == "generic" {
		arms = arms[1:]
	}
	run := func(field string, bench func(n int, generic bool) testing.BenchmarkResult) map[int][2]float64 {
		ns := make(map[int][2]float64) // n -> [dispatch, generic] ns/op
		for _, n := range gfBenchSizes {
			var pair [2]float64
			for _, arm := range arms {
				r := bench(n, arm.generic)
				row := gfBenchRow{
					Name:    fmt.Sprintf("AddMulSlice/%s/n%d/k=%s", field, n, arm.kernel),
					Field:   field,
					N:       n,
					Kernel:  arm.kernel,
					NsPerOp: float64(r.NsPerOp()),
					MBPerS:  mbPerS(r),
				}
				if arm.generic {
					pair[1] = row.NsPerOp
					if pair[0] > 0 {
						// Attach the speedup to the dispatch row just emitted.
						rep.Benchmarks[len(rep.Benchmarks)-1].SpeedupVsGeneric = pair[1] / pair[0]
					}
				} else {
					pair[0] = row.NsPerOp
				}
				rep.Benchmarks = append(rep.Benchmarks, row)
			}
			ns[n] = pair
		}
		return ns
	}
	ns8 := run("gf8", func(n int, generic bool) testing.BenchmarkResult {
		return benchGFKernel(gf.GF256(), n, generic)
	})
	ns16 := run("gf16", func(n int, generic bool) testing.BenchmarkResult {
		return benchGFKernel(gf.GF65536(), n, generic)
	})
	if p := ns8[4096]; p[0] > 0 {
		rep.SpeedupGF8Long = p[1] / p[0]
	}
	if p := ns16[4096]; p[0] > 0 {
		rep.SpeedupGF16Long = p[1] / p[0]
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	data = append(data, '\n')
	fatal(os.WriteFile(out, data, 0o644))
	if rep.DispatchKernel == "generic" {
		fmt.Printf("gf kernel bench: no accelerated kernel on this machine (dispatch=generic) -> %s\n", out)
		return
	}
	fmt.Printf("gf kernel bench: dispatch=%s gf16 long-slice speedup %.2fx, gf8 %.2fx -> %s\n",
		rep.DispatchKernel, rep.SpeedupGF16Long, rep.SpeedupGF8Long, out)
}
