package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/gf"
)

// The GF kernel benchmark formatter: runs the single-source kernel matrix
// (field x slice length x kernel, as BenchmarkAddMulSlice) and the fused
// multi-source matrix (field x slice length x source count x routing arm,
// as BenchmarkAddMulSlices) and writes the results as JSON (BENCH_gf.json
// in CI).
//
// Single-source rows: the "dispatch" arm measures whatever kernel the
// arch-dispatch layer selected on this machine; the "generic" arm pins
// the portable reference layer, so every dispatch row carries its speedup
// over generic.
//
// Fused rows: the "fused" arm measures AddMulSlices (multi-source strip
// kernels where available); the "perterm" arm pins AddMulSlicesPerTerm —
// one accumulator walk per term, the pre-fusion dispatch path — so every
// fused row carries speedup_vs_per_term. Slice lengths cover short (256
// symbols: term-grouping overhead regime), mid (16384: compute-bound
// regime) and long (4Mi: memory-bound regime, where the accumulator
// traffic fusion saves dominates — the erasure/bulk-workload shape).

type gfBenchRow struct {
	Name             string  `json:"name"`
	Field            string  `json:"field"`
	N                int     `json:"n"`
	Sources          int     `json:"sources,omitempty"`
	Kernel           string  `json:"kernel"`
	NsPerOp          float64 `json:"ns_per_op"`
	MBPerS           float64 `json:"mb_per_s"`
	SpeedupVsGeneric float64 `json:"speedup_vs_generic,omitempty"`
	SpeedupVsPerTerm float64 `json:"speedup_vs_per_term,omitempty"`
}

type gfBenchReport struct {
	GOOS            string  `json:"goos"`
	GOARCH          string  `json:"goarch"`
	DispatchKernel  string  `json:"dispatch_kernel"`
	SpeedupGF16Long float64 `json:"speedup_gf16_long"` // dispatch vs generic, n=4096
	SpeedupGF8Long  float64 `json:"speedup_gf8_long"`
	// Fused AddMulSlices vs the per-term dispatch path, 4-source
	// combinations, mid (16384) and long (4Mi) slices.
	FusedSpeedupGF8Mid4   float64      `json:"fused_speedup_gf8_mid_4src"`
	FusedSpeedupGF8Long4  float64      `json:"fused_speedup_gf8_long_4src"`
	FusedSpeedupGF16Mid4  float64      `json:"fused_speedup_gf16_mid_4src"`
	FusedSpeedupGF16Long4 float64      `json:"fused_speedup_gf16_long_4src"`
	Benchmarks            []gfBenchRow `json:"benchmarks"`
}

var (
	gfBenchSizes = []int{64, 256, 1024, 4096, 16384}
	// Fused matrix shapes: all source counts at short (256) and mid
	// (16384) slices; the long size (4Mi, the memory-bound bulk regime
	// where fusion's accumulator-traffic savings dominate) only at
	// source counts >= gfFusedLongMin — its 1- and 2-source rows add
	// runtime without adding signal.
	gfFusedSizes   = []int{256, 16384, 1 << 22}
	gfFusedSources = []int{1, 2, 4, 8}
	gfFusedLongMin = 4
	// gfFusedReps interleaved repetitions per arm; each row reports the
	// arm's best (minimum ns/op) run.
	gfFusedReps = 3
)

func benchGFKernel[E gf.Elem](f *gf.Field[E], n int, generic bool) testing.BenchmarkResult {
	dst := make([]E, n)
	src := make([]E, n)
	rng := rand.New(rand.NewSource(9))
	for i := range src {
		src[i] = E(rng.Intn(f.Size()))
	}
	elemBytes := 1
	if f.Size() > 256 {
		elemBytes = 2
	}
	return testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(n * elemBytes))
		for i := 0; i < b.N; i++ {
			if generic {
				f.AddMulSliceGeneric(dst, src, 7)
			} else {
				f.AddMulSlice(dst, src, 7)
			}
		}
	})
}

func benchGFFused[E gf.Elem](f *gf.Field[E], n, sources int, perTerm bool) testing.BenchmarkResult {
	dst := make([]E, n)
	srcs := make([][]E, sources)
	cs := make([]E, sources)
	rng := rand.New(rand.NewSource(9))
	for j := range srcs {
		srcs[j] = make([]E, n)
		for i := range srcs[j] {
			srcs[j][i] = E(rng.Intn(f.Size()))
		}
		cs[j] = E(2 + rng.Intn(f.Size()-2))
	}
	elemBytes := 1
	if f.Size() > 256 {
		elemBytes = 2
	}
	return testing.Benchmark(func(b *testing.B) {
		b.SetBytes(int64(n * elemBytes * sources))
		for i := 0; i < b.N; i++ {
			if perTerm {
				f.AddMulSlicesPerTerm(dst, srcs, cs)
			} else {
				f.AddMulSlices(dst, srcs, cs)
			}
		}
	})
}

func mbPerS(r testing.BenchmarkResult) float64 {
	if r.T <= 0 {
		return 0
	}
	return float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6
}

func gfBench(out string) {
	rep := gfBenchReport{
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		DispatchKernel: gf.GF65536().Kernel(),
	}
	// On machines where dispatch selected no accelerated kernel the
	// dispatch arm IS the generic arm: emit it once and record no
	// (meaningless) speedup instead of duplicating rows.
	arms := []struct {
		kernel  string
		generic bool
	}{{rep.DispatchKernel, false}, {"generic", true}}
	if rep.DispatchKernel == "generic" {
		arms = arms[1:]
	}
	run := func(field string, bench func(n int, generic bool) testing.BenchmarkResult) map[int][2]float64 {
		ns := make(map[int][2]float64) // n -> [dispatch, generic] ns/op
		for _, n := range gfBenchSizes {
			var pair [2]float64
			for _, arm := range arms {
				r := bench(n, arm.generic)
				row := gfBenchRow{
					Name:    fmt.Sprintf("AddMulSlice/%s/n%d/k=%s", field, n, arm.kernel),
					Field:   field,
					N:       n,
					Kernel:  arm.kernel,
					NsPerOp: float64(r.NsPerOp()),
					MBPerS:  mbPerS(r),
				}
				if arm.generic {
					pair[1] = row.NsPerOp
					if pair[0] > 0 {
						// Attach the speedup to the dispatch row just emitted.
						rep.Benchmarks[len(rep.Benchmarks)-1].SpeedupVsGeneric = pair[1] / pair[0]
					}
				} else {
					pair[0] = row.NsPerOp
				}
				rep.Benchmarks = append(rep.Benchmarks, row)
			}
			ns[n] = pair
		}
		return ns
	}
	ns8 := run("gf8", func(n int, generic bool) testing.BenchmarkResult {
		return benchGFKernel(gf.GF256(), n, generic)
	})
	ns16 := run("gf16", func(n int, generic bool) testing.BenchmarkResult {
		return benchGFKernel(gf.GF65536(), n, generic)
	})
	if p := ns8[4096]; p[0] > 0 {
		rep.SpeedupGF8Long = p[1] / p[0]
	}
	if p := ns16[4096]; p[0] > 0 {
		rep.SpeedupGF16Long = p[1] / p[0]
	}

	// The fused multi-source matrix.
	type key struct {
		n, sources int
	}
	runFused := func(field string, bench func(n, sources int, perTerm bool) testing.BenchmarkResult) map[key]float64 {
		speedups := make(map[key]float64)
		for _, n := range gfFusedSizes {
			for _, sources := range gfFusedSources {
				if n == gfFusedSizes[len(gfFusedSizes)-1] && sources < gfFusedLongMin {
					continue
				}
				// Interleave the two arms and keep each arm's best run:
				// min ns/op is the noise-robust throughput estimator, and
				// alternating keeps host-load drift from biasing one arm
				// (single runs on shared machines swing both ways by >10%).
				var fused, per testing.BenchmarkResult
				for rep := 0; rep < gfFusedReps; rep++ {
					if r := bench(n, sources, false); rep == 0 || r.NsPerOp() < fused.NsPerOp() {
						fused = r
					}
					if r := bench(n, sources, true); rep == 0 || r.NsPerOp() < per.NsPerOp() {
						per = r
					}
				}
				fusedNs, perNs := float64(fused.NsPerOp()), float64(per.NsPerOp())
				row := gfBenchRow{
					Name:    fmt.Sprintf("AddMulSlices/%s/n%d/s%d/r=fused", field, n, sources),
					Field:   field,
					N:       n,
					Sources: sources,
					Kernel:  rep.DispatchKernel,
					NsPerOp: fusedNs,
					MBPerS:  mbPerS(fused),
				}
				if fusedNs > 0 {
					row.SpeedupVsPerTerm = perNs / fusedNs
					speedups[key{n, sources}] = row.SpeedupVsPerTerm
				}
				rep.Benchmarks = append(rep.Benchmarks, row,
					gfBenchRow{
						Name:    fmt.Sprintf("AddMulSlices/%s/n%d/s%d/r=perterm", field, n, sources),
						Field:   field,
						N:       n,
						Sources: sources,
						Kernel:  rep.DispatchKernel,
						NsPerOp: perNs,
						MBPerS:  mbPerS(per),
					})
			}
		}
		return speedups
	}
	sp8 := runFused("gf8", func(n, sources int, perTerm bool) testing.BenchmarkResult {
		return benchGFFused(gf.GF256(), n, sources, perTerm)
	})
	sp16 := runFused("gf16", func(n, sources int, perTerm bool) testing.BenchmarkResult {
		return benchGFFused(gf.GF65536(), n, sources, perTerm)
	})
	mid, long := gfFusedSizes[1], gfFusedSizes[2]
	rep.FusedSpeedupGF8Mid4 = sp8[key{mid, 4}]
	rep.FusedSpeedupGF8Long4 = sp8[key{long, 4}]
	rep.FusedSpeedupGF16Mid4 = sp16[key{mid, 4}]
	rep.FusedSpeedupGF16Long4 = sp16[key{long, 4}]

	data, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	data = append(data, '\n')
	fatal(os.WriteFile(out, data, 0o644))
	if rep.DispatchKernel == "generic" {
		fmt.Printf("gf kernel bench: no accelerated kernel on this machine (dispatch=generic) -> %s\n", out)
		return
	}
	fmt.Printf("gf kernel bench: dispatch=%s gf16 long-slice speedup %.2fx, gf8 %.2fx; fused 4-src vs per-term: gf16 %.2fx (mid) %.2fx (long), gf8 %.2fx (mid) %.2fx (long) -> %s\n",
		rep.DispatchKernel, rep.SpeedupGF16Long, rep.SpeedupGF8Long,
		rep.FusedSpeedupGF16Mid4, rep.FusedSpeedupGF16Long4,
		rep.FusedSpeedupGF8Mid4, rep.FusedSpeedupGF8Long4, out)
}
