// Command thinair-bench regenerates the paper's evaluation as text tables:
// Figure 1 (efficiency vs erasure probability), Figure 2 (reliability vs
// group size on the testbed), the n = 8 headline numbers, the §3.2
// rotation worst-case check, and the design ablations.
//
// Usage:
//
//	thinair-bench -figure 1            # analytic curves + Monte-Carlo check
//	thinair-bench -figure 2            # full placement sweep (slow) …
//	thinair-bench -figure 2 -quick     # … or subsampled placements
//	thinair-bench -headline
//	thinair-bench -rotation
//	thinair-bench -ablation estimators|allocation|interference|rotation
//	thinair-bench -all -quick
//	thinair-bench -gf-json BENCH_gf.json           # GF kernel matrix as JSON
//	thinair-bench -stream-json BENCH_stream.json   # bulk stream vs per-draw HTTP
//	thinair-bench -obs-json BENCH_obs.json         # instrumented vs stripped draw path
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
)

func main() {
	var (
		figure    = flag.Int("figure", 0, "regenerate figure 1 or 2")
		headline  = flag.Bool("headline", false, "regenerate the n=8 headline numbers")
		rotation  = flag.Bool("rotation", false, "run the §3.2 rotation worst-case check")
		ablation  = flag.String("ablation", "", "run an ablation: estimators, allocation, interference, rotation, selfjam, burstiness, cancelling-eve")
		gfJSON    = flag.String("gf-json", "", "run the GF kernel benchmark matrix and write the results as JSON to this file")
		strJSON   = flag.String("stream-json", "", "run the bulk-stream vs per-draw HTTP benchmark and write the results as JSON to this file")
		obsJSON   = flag.String("obs-json", "", "run the observability overhead benchmark and write the results as JSON to this file")
		gateJSON  = flag.String("gate-json", "", "run the gate concurrency benchmark and write the results as JSON to this file")
		svcJSON   = flag.String("service-json", "", "run the sharded-service benchmark (rounds/sec, batched vs baseline draws/sec, allocs) and write the results as JSON to this file")
		gateConns = flag.Int("gate-conns", 100000, "concurrent mock gate connections for -gate-json")
		all       = flag.Bool("all", false, "run everything")
		quick     = flag.Bool("quick", false, "subsample placements for a fast run")
		seed      = flag.Int64("seed", 11, "experiment seed")
		n         = flag.Int("n", 5, "group size for ablations and the rotation check")
		workers   = flag.Int("workers", 0, "experiments evaluated concurrently (0 = one per CPU); output is identical for any value")
	)
	flag.Parse()

	opt := figures.Fig2Options{Seed: *seed, Workers: *workers}
	if *quick {
		opt.MaxPlacements = 24
	}

	ran := false
	if *gfJSON != "" {
		ran = true
		gfBench(*gfJSON)
	}
	if *strJSON != "" {
		ran = true
		streamBench(*strJSON)
	}
	if *obsJSON != "" {
		ran = true
		obsBench(*obsJSON)
	}
	if *gateJSON != "" {
		ran = true
		gateBench(*gateJSON, *gateConns)
	}
	if *svcJSON != "" {
		ran = true
		serviceBench(*svcJSON)
	}
	if *all || *figure == 1 {
		ran = true
		fig1(*workers)
	}
	if *all || *figure == 2 {
		ran = true
		fig2(opt)
	}
	if *all || *headline {
		ran = true
		head(opt)
	}
	if *all || *rotation {
		ran = true
		rotate(*n, opt)
	}
	if *all {
		for _, a := range []string{"estimators", "allocation", "interference", "rotation", "selfjam", "burstiness", "cancelling-eve"} {
			ablate(a, *n, opt)
		}
		ran = true
	} else if *ablation != "" {
		ablate(*ablation, *n, opt)
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fig1(workers int) {
	curves := figures.Figure1([]int{2, 3, 6, 10, 0}, 20)
	fmt.Println(figures.FormatFigure1(curves))
	fmt.Println(figures.PlotFigure1(curves, 64, 14))
	pts := figures.Figure1MonteCarlo([]int{2, 3, 6}, []float64{0.3, 0.5, 0.7}, 200, 8, workers, 101)
	fmt.Println(figures.FormatFigure1MC(pts))
}

func fig2(opt figures.Fig2Options) {
	rows, err := figures.Figure2(opt)
	fatal(err)
	fmt.Println(figures.FormatFigure2(rows))
	fmt.Println(figures.PlotFigure2(rows, 48, 12))
}

func head(opt figures.Fig2Options) {
	h, err := figures.Headline(opt)
	fatal(err)
	fmt.Println(figures.FormatHeadline(h))
}

func rotate(n int, opt figures.Fig2Options) {
	with, err := figures.RotationCheck(n, true, opt)
	fatal(err)
	without, err := figures.RotationCheck(n, false, opt)
	fatal(err)
	fmt.Println(figures.FormatRotation(with, without))
}

func ablate(kind string, n int, opt figures.Fig2Options) {
	var (
		rows []figures.AblationRow
		err  error
	)
	switch kind {
	case "estimators":
		rows, err = figures.AblationEstimators(n, opt)
	case "allocation":
		rows, err = figures.AblationAllocation(n, opt)
	case "interference":
		rows, err = figures.AblationInterference(n, opt)
	case "rotation":
		rows, err = figures.AblationRotation(n, opt)
	case "selfjam":
		rows, err = figures.AblationSelfJam(n, opt)
	case "burstiness":
		sessions := 60
		if opt.MaxPlacements > 0 {
			sessions = 20
		}
		rows, err = figures.AblationBurstiness(n, sessions, opt.Workers, opt.Seed)
	case "cancelling-eve":
		rows, err = figures.AblationCancellingEve(n, opt)
	default:
		fatal(fmt.Errorf("unknown ablation %q", kind))
	}
	fatal(err)
	fmt.Println(figures.FormatAblation(kind, rows))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "thinair-bench:", err)
		os.Exit(1)
	}
}
