package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/service"
)

// The streaming key-material benchmark: one stream-fed session served
// over real loopback HTTP, measured two ways against the same daemon.
//
// The stream arm issues 1 MiB GET /v1/sessions/{id}/stream reads at
// fresh offsets — every byte is freshly derived by the pipelined
// keystream engine, and the chunked body starts flushing as soon as the
// first block lands (TTFB tracks one block derivation, not the range).
// The per-draw arm is the pre-stream consumption model: one 32-byte
// POST /v1/sessions/{id}/draw per key, each paying a full HTTP round
// trip. It reads the same 1 MiB total, so both arms pay for deriving
// the same amount of key material and the speedup isolates the
// consumption model (bulk chunked body vs request-per-key).

type streamBenchReport struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`

	// The session shape behind both arms.
	Terminals    int     `json:"terminals"`
	Erasure      float64 `json:"erasure"`
	XPerRound    int     `json:"x_per_round"`
	PayloadBytes int     `json:"payload_bytes"`
	StreamBlock  int     `json:"stream_block"`

	// Stream arm: bulk reads at fresh (cold) offsets.
	StreamRequests   int     `json:"stream_requests"`
	StreamReadBytes  int64   `json:"stream_read_bytes"`
	StreamMBPerS     float64 `json:"stream_mb_per_s"`
	StreamTTFBP50Ms  float64 `json:"stream_ttfb_p50_ms"`
	StreamTTFBP99Ms  float64 `json:"stream_ttfb_p99_ms"`
	PerDrawRequests  int     `json:"perdraw_requests"`
	PerDrawReadBytes int64   `json:"perdraw_read_bytes"`
	PerDrawMBPerS    float64 `json:"perdraw_mb_per_s"`
	// Speedup is stream MB/s over per-draw MB/s for bulk (1 MiB) reads.
	Speedup float64 `json:"speedup"`
}

const (
	streamBenchReadLen  = 1 << 20 // one stream request
	streamBenchRequests = 8
	streamBenchDrawSize = 32
	// The per-draw arm reads one stream request's worth of material.
	streamBenchDraws = streamBenchReadLen / streamBenchDrawSize
)

func streamBenchSpec() service.SessionSpec {
	return service.SessionSpec{
		Name:         "bench-stream",
		Terminals:    3,
		Erasure:      0.45,
		XPerRound:    128,
		PayloadBytes: 4096,
		Rounds:       1,
		Rotate:       true,
		Seed:         4242,
		LowWater:     128 << 10,
		TargetDepth:  256 << 10,
		Timeout:      60 * time.Second,
		StreamBlock:  1 << 17,
	}
}

func streamBench(out string) {
	svc := service.New(service.Config{MaxSessions: 2})
	spec := streamBenchSpec()
	s, err := svc.Create(spec)
	fatal(err)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	fatal(err)
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 5 * time.Minute}

	// Wait for the pool prefill so the per-draw arm starts from a full
	// pool (its draws then never wait on derivation).
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if s.Metrics().Pool.Available >= spec.TargetDepth {
			break
		}
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("stream bench: pool never reached target depth"))
		}
		time.Sleep(10 * time.Millisecond)
	}

	rep := streamBenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		Terminals: spec.Terminals, Erasure: spec.Erasure,
		XPerRound: spec.XPerRound, PayloadBytes: spec.PayloadBytes,
		StreamBlock:     spec.StreamBlock,
		StreamRequests:  streamBenchRequests,
		PerDrawRequests: streamBenchDraws,
	}

	// Stream arm. Offsets start past the pool's prefetch horizon so every
	// request derives cold blocks (the honest bulk-read cost); requests
	// walk forward, so the engine's prefetch window overlaps request k+1's
	// derivation with request k's drain — exactly the pipelining a real
	// bulk consumer sees.
	ttfbs := make([]float64, 0, streamBenchRequests)
	off := int64(64 << 20)
	start := time.Now()
	buf := make([]byte, 64<<10)
	for i := 0; i < streamBenchRequests; i++ {
		url := fmt.Sprintf("%s/v1/sessions/%d/stream?offset=%d&len=%d", base, s.ID, off, streamBenchReadLen)
		reqStart := time.Now()
		resp, err := client.Get(url)
		fatal(err)
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			fatal(fmt.Errorf("stream bench: GET %s: %d %s", url, resp.StatusCode, body))
		}
		first := true
		var got int64
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				if first {
					ttfbs = append(ttfbs, time.Since(reqStart).Seconds()*1e3)
					first = false
				}
				got += int64(n)
			}
			if rerr == io.EOF {
				break
			}
			fatal(rerr)
		}
		resp.Body.Close()
		if got != streamBenchReadLen {
			fatal(fmt.Errorf("stream bench: short read %d of %d", got, streamBenchReadLen))
		}
		rep.StreamReadBytes += got
		off += streamBenchReadLen
	}
	el := time.Since(start).Seconds()
	rep.StreamMBPerS = float64(rep.StreamReadBytes) / el / 1e6
	sort.Float64s(ttfbs)
	rep.StreamTTFBP50Ms = ttfbs[len(ttfbs)/2]
	rep.StreamTTFBP99Ms = ttfbs[int(float64(len(ttfbs))*0.99)]

	// Per-draw arm: the old one-key-per-request consumption model.
	start = time.Now()
	for i := 0; i < streamBenchDraws; i++ {
		url := fmt.Sprintf("%s/v1/sessions/%d/draw?bytes=%d", base, s.ID, streamBenchDrawSize)
		resp, err := client.Post(url, "", nil)
		fatal(err)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("stream bench: POST %s: %d %s", url, resp.StatusCode, body))
		}
		rep.PerDrawReadBytes += streamBenchDrawSize
	}
	el = time.Since(start).Seconds()
	rep.PerDrawMBPerS = float64(rep.PerDrawReadBytes) / el / 1e6
	if rep.PerDrawMBPerS > 0 {
		rep.Speedup = rep.StreamMBPerS / rep.PerDrawMBPerS
	}

	srv.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	svc.Shutdown(sctx)
	cancel()

	data, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	data = append(data, '\n')
	fatal(os.WriteFile(out, data, 0o644))
	fmt.Printf("stream bench: stream %.1f MB/s (ttfb p50 %.1fms p99 %.1fms), per-draw %.2f MB/s, speedup %.1fx -> %s\n",
		rep.StreamMBPerS, rep.StreamTTFBP50Ms, rep.StreamTTFBP99Ms, rep.PerDrawMBPerS, rep.Speedup, out)
}
