package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/service"
)

// The single-box service benchmark: aggregate session refresh throughput
// (sessions × rounds/sec) plus the draw path under 1, 8 and 64
// concurrent callers, measured for BOTH arms of this repo's sharded
// rewrite in the same process:
//
//   - baseline: each caller draws straight off the pool mutex — the
//     pre-shard per-caller lock path (what Session.Draw compiled to
//     before the combiner existed);
//   - batched:  each caller goes through Session.Draw, where concurrent
//     draws coalesce in the flat-combining batcher into shared pool
//     operations.
//
// Recording both in one file is the point: the committed
// BENCH_service.json carries the pre-shard number its speedup claim is
// measured against, on the same box, in the same run.

type drawThroughput struct {
	C1  float64 `json:"c1"`
	C8  float64 `json:"c8"`
	C64 float64 `json:"c64"`
}

type serviceBenchReport struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Shards     int    `json:"shards"`

	// Aggregate protocol rounds/sec across RefreshSessions concurrently
	// refreshing lockstep sessions (the dispatch/executor tier at work).
	RefreshSessions int     `json:"refresh_sessions"`
	RoundsPerSec    float64 `json:"sessions_rounds_per_sec"`

	DrawBytes int `json:"draw_bytes"`
	// Draws/sec by concurrent caller count, both arms.
	BaselineDrawsPerSec drawThroughput `json:"baseline_draws_per_sec"`
	BatchedDrawsPerSec  drawThroughput `json:"batched_draws_per_sec"`
	// SpeedupAt64 = batched.c64 / baseline.c64 — the gate number.
	SpeedupAt64 float64 `json:"speedup_at_64"`

	// Heap allocations per op on the batched draw path, steady state:
	// DrawInto into a caller buffer must not allocate at all, Draw pays
	// exactly its result buffer.
	DrawIntoAllocsPerOp float64 `json:"draw_into_allocs_per_op"`
	DrawAllocsPerOp     float64 `json:"draw_allocs_per_op"`
}

const svcDrawBytes = 32

func serviceBench(out string) {
	rep := serviceBenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0),
		DrawBytes: svcDrawBytes,
	}

	rep.RefreshSessions, rep.RoundsPerSec = svcRoundsPerSec()

	svc := service.New(service.Config{MaxSessions: 2})
	rep.Shards = runtime.GOMAXPROCS(0) // Config default; recorded for the record
	spec := streamBenchSpec()
	spec.Name = "bench-service"
	// Quiescent pool: LowWater far below where the bench lets the depth
	// fall, so the refresher never wakes and the measured path is draw
	// machinery only. Depth is maintained by explicit re-deposits between
	// timed batches.
	spec.LowWater = 4 << 10
	spec.TargetDepth = 16 << 20
	spec.StreamBlock = 1 << 17
	s, err := svc.Create(spec)
	fatal(err)
	deadline := time.Now().Add(5 * time.Minute)
	for s.Metrics().Pool.Available < 1<<20 {
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("service bench: pool never filled"))
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Feed the pool outside the timed regions so neither arm ever runs
	// dry: the keystream keeps deriving toward the 16 MiB target in the
	// background, and chunk re-deposits cover any shortfall.
	chunk := make([]byte, 1<<20)
	for i := range chunk {
		chunk[i] = byte(i * 167)
	}
	topUp := func(need int) {
		for s.Metrics().Pool.Available < need {
			s.Pool().Deposit(chunk)
		}
	}

	baseline := func() error { _, err := s.Pool().Draw(svcDrawBytes); return err }
	batched := func() error { _, err := s.Draw(svcDrawBytes); return err }

	// One timed run: callers goroutines × ops/caller draws, full-barrier
	// start, wall time across all of them. Best of reps is the
	// deterministic cost with scheduler noise filtered out, same idiom as
	// the other bench arms. NOTE the regime: on a single-CPU box (this
	// container reports num_cpu in the JSON) goroutines serialize, the
	// pool mutex is effectively never contended, and per-op overhead is
	// all that differs between the arms — the combiner's lock
	// amortization and bounce elimination only pay off under true
	// parallelism, so compare speedup_at_64 across machines with the
	// num_cpu field in hand.
	run := func(arm func() error, callers, ops int) float64 {
		const reps = 5
		best := 0.0
		for r := 0; r < reps; r++ {
			topUp(callers*ops*svcDrawBytes + 1<<20)
			var wg sync.WaitGroup
			start := make(chan struct{})
			wg.Add(callers)
			for c := 0; c < callers; c++ {
				go func() {
					defer wg.Done()
					<-start
					for i := 0; i < ops; i++ {
						fatal(arm())
					}
				}()
			}
			t0 := time.Now()
			close(start)
			wg.Wait()
			if ps := float64(callers*ops) / time.Since(t0).Seconds(); ps > best {
				best = ps
			}
		}
		return best
	}

	const opsTotal = 1 << 17
	measure := func(arm func() error) drawThroughput {
		return drawThroughput{
			C1:  run(arm, 1, opsTotal),
			C8:  run(arm, 8, opsTotal/8),
			C64: run(arm, 64, opsTotal/64),
		}
	}
	// Interleave the arms so drift hits both equally; keep the better of
	// two passes per arm.
	b1 := measure(baseline)
	k1 := measure(batched)
	b2 := measure(baseline)
	k2 := measure(batched)
	maxT := func(a, b drawThroughput) drawThroughput {
		if b.C1 > a.C1 {
			a.C1 = b.C1
		}
		if b.C8 > a.C8 {
			a.C8 = b.C8
		}
		if b.C64 > a.C64 {
			a.C64 = b.C64
		}
		return a
	}
	rep.BaselineDrawsPerSec = maxT(b1, b2)
	rep.BatchedDrawsPerSec = maxT(k1, k2)
	rep.SpeedupAt64 = rep.BatchedDrawsPerSec.C64 / rep.BaselineDrawsPerSec.C64

	// Allocation gates, single caller, warm combiner.
	topUp(8 << 20)
	dst := make([]byte, svcDrawBytes)
	fatal(s.DrawInto(dst))
	rep.DrawIntoAllocsPerOp = allocsPerOp(2000, func() { fatal(s.DrawInto(dst)) })
	rep.DrawAllocsPerOp = allocsPerOp(2000, func() { fatal(batched()) })

	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	svc.Shutdown(sctx)
	cancel()

	data, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	data = append(data, '\n')
	fatal(os.WriteFile(out, data, 0o644))
	fmt.Printf("service bench: %.0f rounds/s over %d sessions; draws/s c64 baseline %.0f -> batched %.0f (%.2fx); DrawInto %.2f allocs/op -> %s\n",
		rep.RoundsPerSec, rep.RefreshSessions, rep.BaselineDrawsPerSec.C64,
		rep.BatchedDrawsPerSec.C64, rep.SpeedupAt64, rep.DrawIntoAllocsPerOp, out)
}

// svcRoundsPerSec runs a small fleet of lockstep (engine-refresh)
// sessions and keeps every pool permanently under its watermark, so the
// executors refresh continuously; the aggregate round rate is the
// dispatch tier's sustained throughput.
func svcRoundsPerSec() (sessions int, perSec float64) {
	sessions = 4
	svc := service.New(service.Config{MaxSessions: sessions})
	ss := make([]*service.Session, sessions)
	for i := range ss {
		sp := service.SessionSpec{
			Name:      fmt.Sprintf("bench-rounds-%d", i),
			Terminals: 3, Erasure: 0.45,
			XPerRound: 64, PayloadBytes: 256, Rounds: 1,
			Rotate: true, Seed: int64(9000 + i),
			LowWater: 1 << 10, TargetDepth: 2 << 10,
			Timeout: 60 * time.Second,
			UDP:     false, Streamed: false,
		}
		s, err := svc.Create(sp)
		fatal(err)
		ss[i] = s
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for _, s := range ss {
		fatal(s.WaitReady(ctx))
	}

	// Drain continuously so the low-water refresher never sleeps.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, s := range ss {
		wg.Add(1)
		go func(s *service.Session) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := s.Draw(512); err != nil {
					time.Sleep(time.Millisecond)
				}
			}
		}(s)
	}

	before := int64(0)
	for _, s := range ss {
		before += s.Metrics().Rounds
	}
	const window = 5 * time.Second
	t0 := time.Now()
	time.Sleep(window)
	after := int64(0)
	for _, s := range ss {
		after += s.Metrics().Rounds
	}
	elapsed := time.Since(t0).Seconds()
	close(stop)
	wg.Wait()
	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	svc.Shutdown(sctx)
	scancel()
	return sessions, float64(after-before) / elapsed
}

// allocsPerOp is testing.AllocsPerRun without the testing package: heap
// allocations per call of f, single goroutine, steady state.
func allocsPerOp(runs int, f func()) float64 {
	runtime.GC()
	var before, after runtime.MemStats
	f() // warm
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}
