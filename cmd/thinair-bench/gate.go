package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gate"
	"repro/internal/obs"
)

// The gate concurrency benchmark: how many persistent frame-protocol
// clients one gate process sustains, and what a key draw costs through
// the multiplexed connection under that population.
//
// Mock clients connect over in-process net.Pipe pairs — no kernel socket
// limits, so the population measures the gate's own per-connection cost:
// one agent goroutine server-side, zero goroutines client-side (the
// frame Client reads on demand; whichever caller awaits a response takes
// the reader role). Heartbeats are disabled so an idle connection costs
// no timers and no wakeups — exactly the configuration the population
// arm is about. The backend is a stub producing bytes by cheap counter
// mixing: draw latency then isolates framing, multiplexing and
// scheduling, not key derivation.

type gateBenchReport struct {
	GOOS     string `json:"goos"`
	GOARCH   string `json:"goarch"`
	NumCPU   int    `json:"num_cpu"`
	MaxProcs int    `json:"gomaxprocs"`

	// Connections held open concurrently when the draw phase ran.
	Connections int `json:"connections"`
	// HeapMB is the process heap after the population is established —
	// per-connection footprint is HeapMB/Connections.
	HeapMB float64 `json:"heap_mb"`

	// Draw phase: DrawWorkers concurrent callers spread across the
	// population, Draws total requests of DrawBytes each.
	DrawWorkers int     `json:"draw_workers"`
	Draws       int     `json:"draws"`
	DrawBytes   int     `json:"draw_bytes"`
	DrawsPerSec float64 `json:"draws_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// gateStubBackend derives key bytes by splitmix-style counter mixing —
// a few ns per draw, so the bench isolates the gate itself.
type gateStubBackend struct{}

func (gateStubBackend) Draw(_ context.Context, session uint64, n int) ([]byte, error) {
	out := make([]byte, n)
	var word [8]byte
	for i := 0; i < n; i += 8 {
		x := session + uint64(i) + 0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		binary.LittleEndian.PutUint64(word[:], x)
		copy(out[i:], word[:])
	}
	return out, nil
}

func (b gateStubBackend) StreamTo(ctx context.Context, session uint64, off, n int64, w io.Writer) (int64, error) {
	key, _ := b.Draw(ctx, session+uint64(off), int(n))
	m, err := w.Write(key)
	return int64(m), err
}

func gateBench(out string, conns int) {
	rep := gateBenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), MaxProcs: runtime.GOMAXPROCS(0),
		Connections: conns,
		DrawWorkers: 256,
		DrawBytes:   32,
	}

	g := gate.New(gate.Config{
		Backend: gateStubBackend{},
		Obs:     obs.New(),
		Logf:    func(string, ...any) {},
	})
	defer g.Close()

	fmt.Fprintf(os.Stderr, "gate bench: establishing %d connections…\n", conns)
	clients := make([]*gate.Client, conns)
	var wg sync.WaitGroup
	const spawners = 512
	wg.Add(spawners)
	var connErr atomic.Value
	for s := 0; s < spawners; s++ {
		go func(s int) {
			defer wg.Done()
			for i := s; i < conns; i += spawners {
				server, cl := net.Pipe()
				go g.ServeConn(server)
				c, err := gate.NewClient(cl)
				if err != nil {
					connErr.Store(err)
					return
				}
				clients[i] = c
			}
		}(s)
	}
	wg.Wait()
	if err := connErr.Load(); err != nil {
		fmt.Fprintln(os.Stderr, "thinair-bench: gate:", err)
		os.Exit(1)
	}

	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep.HeapMB = float64(ms.HeapAlloc) / (1 << 20)
	fmt.Fprintf(os.Stderr, "gate bench: %d connections up, heap %.1f MB (%.1f KB/conn)\n",
		conns, rep.HeapMB, rep.HeapMB*1024/float64(conns))

	// Draw phase: every worker owns a disjoint stripe of the population
	// and cycles through it, so draws spread across all connections.
	drawsPerWorker := 1000
	rep.Draws = rep.DrawWorkers * drawsPerWorker
	lat := make([][]time.Duration, rep.DrawWorkers)
	ctx := context.Background()
	start := time.Now()
	wg.Add(rep.DrawWorkers)
	for wk := 0; wk < rep.DrawWorkers; wk++ {
		go func(wk int) {
			defer wg.Done()
			samples := make([]time.Duration, 0, drawsPerWorker)
			for i := 0; i < drawsPerWorker; i++ {
				c := clients[(wk+i*rep.DrawWorkers)%conns]
				t0 := time.Now()
				if _, err := c.Draw(ctx, uint64(wk), rep.DrawBytes); err != nil {
					connErr.Store(err)
					return
				}
				samples = append(samples, time.Since(t0))
			}
			lat[wk] = samples
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := connErr.Load(); err != nil {
		fmt.Fprintln(os.Stderr, "thinair-bench: gate draw:", err)
		os.Exit(1)
	}

	var all []time.Duration
	for _, s := range lat {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	rep.DrawsPerSec = float64(len(all)) / elapsed.Seconds()
	rep.P50Ms = float64(all[len(all)/2]) / float64(time.Millisecond)
	rep.P99Ms = float64(all[len(all)*99/100]) / float64(time.Millisecond)

	for _, c := range clients {
		c.Close()
	}

	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thinair-bench:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "thinair-bench:", err)
		os.Exit(1)
	}
	_ = f.Close()
	fmt.Printf("gate bench: %d conns, %d draws in %.2fs → %.0f draws/s, p50 %.3f ms, p99 %.3f ms\n",
		conns, len(all), elapsed.Seconds(), rep.DrawsPerSec, rep.P50Ms, rep.P99Ms)
}
