package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// The observability overhead benchmark: the same HTTP draw path measured
// with the metrics registry + span tracing enabled (instrumented) and
// disabled (stripped), arms interleaved batch-by-batch so clock drift
// and background refresh activity cancel out. The reported overhead is
// the gate CI blocks on: instrumentation must stay under a few percent
// of a loopback draw round trip.

type obsBenchReport struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`

	DrawBytes   int `json:"draw_bytes"`
	DrawsPerArm int `json:"draws_per_arm"`

	// Median per-request wall time of POST /v1/sessions/{id}/draw.
	InstrumentedNsPerOp float64 `json:"instrumented_ns_per_op"`
	StrippedNsPerOp     float64 `json:"stripped_ns_per_op"`
	// OverheadPct is the median of per-pair batch deltas over the
	// stripped median, times 100. Pairing adjacent instrumented and
	// stripped batches (order alternating) cancels slow drift and GC
	// phase that a pooled median comparison would mistake for
	// instrumentation cost; noise can push it slightly negative.
	OverheadPct float64 `json:"overhead_pct"`

	// What the instrumented runs actually recorded — a zero here would
	// mean the enabled arm measured nothing. Span events come from a
	// small traced side-batch (X-Thinair-Span set) outside the timed
	// loops, since span recording is per-request opt-in.
	SpanEvents     int `json:"span_events"`
	MetricFamilies int `json:"metric_families"`
}

func obsBench(out string) {
	reg := obs.New()
	spans := obs.NewSpanLog(obs.DefaultSpanCapacity)
	svc := service.New(service.Config{MaxSessions: 2, Obs: reg, Spans: spans})
	spec := streamBenchSpec()
	spec.Name = "bench-obs"
	// Quiescent pool: deep enough that every draw of both arms comes out
	// of prefilled material and the low-water refresher never wakes —
	// the measured delta is the handler instrumentation, not background
	// keystream derivation stealing cycles from whichever arm is running.
	spec.LowWater = 4 << 10
	spec.TargetDepth = 512 << 10
	s, err := svc.Create(spec)
	fatal(err)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	fatal(err)
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	client := &http.Client{Timeout: time.Minute}
	url := fmt.Sprintf("http://%s/v1/sessions/%d/draw?bytes=%d", ln.Addr(), s.ID, 32)

	deadline := time.Now().Add(2 * time.Minute)
	for s.Metrics().Pool.Available < spec.TargetDepth {
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("obs bench: pool never reached target depth"))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// One timed successful draw; a pool momentarily outrun by the bench
	// (409/503) waits out the refresher without polluting the sample.
	drawOnce := func() float64 {
		for {
			t0 := time.Now()
			resp, err := client.Post(url, "", nil)
			fatal(err)
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				return float64(time.Since(t0).Nanoseconds())
			case http.StatusConflict, http.StatusServiceUnavailable:
				time.Sleep(2 * time.Millisecond)
			default:
				fatal(fmt.Errorf("obs bench: draw status %d", resp.StatusCode))
			}
		}
	}
	median := func(xs []float64) float64 {
		ys := append([]float64(nil), xs...)
		sort.Float64s(ys)
		return ys[len(ys)/2]
	}
	// A batch is summarised by its fastest draw: the minimum of many
	// identical loopback round trips is the deterministic path cost,
	// with GC pauses and scheduler preemption filtered out — exactly
	// the quantity the instrumentation could have changed.
	arm := func(enabled bool, k int) float64 {
		reg.SetEnabled(enabled)
		best := 0.0
		for i := 0; i < k; i++ {
			if s := drawOnce(); best == 0 || s < best {
				best = s
			}
		}
		return best
	}

	const (
		batch = 128
		pairs = 20
	)
	arm(true, batch) // warm both paths and the connection pool
	arm(false, batch)
	// Paired design: each pair measures one instrumented and one
	// stripped batch back to back (order alternating), and the overhead
	// is the median of the per-pair deltas — machine drift and GC phase
	// shift both batches of a pair together and cancel out of the
	// difference.
	var inst, strip, delta []float64
	for p := 0; p < pairs; p++ {
		var on, off float64
		if p%2 == 0 {
			on = arm(true, batch)
			off = arm(false, batch)
		} else {
			off = arm(false, batch)
			on = arm(true, batch)
		}
		inst = append(inst, on)
		strip = append(strip, off)
		delta = append(delta, on-off)
	}
	reg.SetEnabled(true)

	// Traced side-batch, outside the timed loops: span recording is
	// per-request opt-in at this tier, so the timed arms never record —
	// these draws prove the traced path still does.
	for i := 0; i < 8; i++ {
		req, err := http.NewRequest(http.MethodPost, url, nil)
		fatal(err)
		req.Header.Set(obs.SpanHeader, fmt.Sprintf("benchspan%07d", i))
		resp, err := client.Do(req)
		fatal(err)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	rep := obsBenchReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		DrawBytes:           32,
		DrawsPerArm:         pairs * batch,
		InstrumentedNsPerOp: median(inst),
		StrippedNsPerOp:     median(strip),
		SpanEvents:          len(spans.Recent(obs.DefaultSpanCapacity)),
		MetricFamilies:      len(reg.Snapshot().Families),
	}
	rep.OverheadPct = median(delta) / rep.StrippedNsPerOp * 100
	if rep.SpanEvents == 0 || rep.MetricFamilies == 0 {
		fatal(fmt.Errorf("obs bench: instrumented arm recorded nothing (spans=%d families=%d)",
			rep.SpanEvents, rep.MetricFamilies))
	}

	srv.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	svc.Shutdown(sctx)
	cancel()

	data, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	data = append(data, '\n')
	fatal(os.WriteFile(out, data, 0o644))
	fmt.Printf("obs bench: instrumented %.1fµs/draw, stripped %.1fµs/draw, overhead %.2f%% -> %s\n",
		rep.InstrumentedNsPerOp/1e3, rep.StrippedNsPerOp/1e3, rep.OverheadPct, out)
}
