package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/gate"
	"repro/internal/obs"
)

// runGate is `thinaird gate`: the persistent-connection front tier. It
// accepts long-lived frame-protocol connections (TCP, plus WebSocket
// upgrades on -ws-addr), resolves session ownership once against the
// coordinator's /v1/cluster/owners surface, caches it, and serves draws
// and stream ranges straight from owning workers — the coordinator never
// relays key material for gate clients.
func runGate(args []string) {
	fs := flag.NewFlagSet("thinaird gate", flag.ExitOnError)
	var (
		addr    = fs.String("addr", ":9310", "frame-protocol TCP listen address")
		coord   = fs.String("coordinator", "http://127.0.0.1:9309", "coordinator base URL for ownership resolution")
		hb      = fs.Duration("heartbeat", 15*time.Second, "heartbeat interval advertised to clients (0 disables kicking)")
		watch   = fs.Duration("watch", 500*time.Millisecond, "ownership-epoch poll period (<0 disables the watcher)")
		pending = fs.Int("max-pending", 32, "in-flight requests per connection before socket backpressure")
		wsAddr  = fs.String("ws-addr", "", "serve the WebSocket upgrade endpoint /v1/gate on this extra HTTP address")
		dbg     = fs.String("debug-addr", "", "serve pprof + /debug/trace + /metrics on this extra address")
	)
	_ = fs.Parse(args)
	if *dbg != "" {
		defer enableDebug(*dbg, obs.Default(), obs.DefaultSpans())()
	}

	backend := gate.NewClusterBackend(gate.ClusterBackendConfig{
		Resolver:   gate.NewHTTPResolver(*coord),
		WatchEvery: *watch,
	})
	g := gate.New(gate.Config{
		Backend:        backend,
		HeartbeatEvery: *hb,
		MaxPending:     *pending,
	})

	ln, err := net.Listen("tcp", *addr)
	fatal(err)
	errc := make(chan error, 2)
	go func() { errc <- g.Serve(ln) }()
	fmt.Printf("THINAIRD_GATE_READY addr=%s\n", listenHostPort(ln))
	fmt.Printf("thinaird: gate on %s resolving via %s\n", ln.Addr(), *coord)

	var wsSrv *http.Server
	if *wsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/v1/gate", g.WSHandler())
		wsLn, err := net.Listen("tcp", *wsAddr)
		if err != nil {
			_ = g.Close()
			fatal(err)
		}
		wsSrv = &http.Server{Handler: mux}
		go func() { errc <- wsSrv.Serve(wsLn) }()
		fmt.Printf("THINAIRD_GATE_WS_READY url=ws://%s/v1/gate\n", listenHostPort(wsLn))
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("thinaird: %v — closing gate connections\n", sig)
	case err := <-errc:
		if err != nil {
			_ = g.Close()
			_ = backend.Close()
			fatal(err)
		}
	}
	if wsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = wsSrv.Shutdown(ctx)
		cancel()
	}
	_ = g.Close()
	_ = backend.Close()
	fmt.Println("thinaird: gate closed")
}
