package main

import (
	"fmt"
	"net"
	"net/http"

	"repro/internal/gf"
	"repro/internal/obs"
)

// enableDebug mounts the opt-in debug surface (pprof, /debug/trace,
// /metrics, /metrics.json) on its own listener so profiling and trace
// inspection never share a port — or a failure domain — with the public
// API. It also switches on GF kernel dispatch counting and exports the
// counters, since a process with a debug listener has asked to be
// looked at. Returns a stop function.
func enableDebug(addr string, r *obs.Registry, spans *obs.SpanLog) func() {
	gf.SetDispatchCounting(true)
	r.CounterFunc("thinaird_gf_addmulslices_dispatch_total",
		"Batched multi-term GF combinations dispatched.",
		func() float64 { return float64(gf.ReadDispatchCounts().AddMulSlices) })
	r.CounterFunc("thinaird_gf_addmulslices_fused_dispatch_total",
		"Batched GF combinations routed to fused arch kernels.",
		func() float64 { return float64(gf.ReadDispatchCounts().AddMulSlicesFused) })
	r.CounterFunc("thinaird_gf_eliminate_rows_dispatch_total",
		"Batched GF row-elimination calls dispatched.",
		func() float64 { return float64(gf.ReadDispatchCounts().EliminateRows) })

	ln, err := net.Listen("tcp", addr)
	fatal(err)
	srv := &http.Server{Handler: obs.DebugMux(r, spans)}
	go func() { _ = srv.Serve(ln) }()
	fmt.Printf("thinaird: debug surface on http://%s/debug/pprof/\n", listenHostPort(ln))
	return func() { _ = srv.Close() }
}
