package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// runCoordinator is `thinaird coordinator`: it spawns and supervises a
// fleet of `thinaird worker` processes (re-execing this binary), owns
// the cluster session registry, and serves the public API.
func runCoordinator(args []string) {
	fs := flag.NewFlagSet("thinaird coordinator", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":9309", "public HTTP listen address")
		workers  = fs.Int("workers", 3, "worker processes to spawn and supervise")
		capacity = fs.Int("worker-capacity", 16, "max sessions per worker")
		hbEvery  = fs.Duration("heartbeat", time.Second, "worker heartbeat period")
		hbMisses = fs.Int("heartbeat-misses", 3, "missed heartbeats before a worker is replaced")
		restarts = fs.Int("max-restarts", 5, "respawn budget per worker slot")
		backoff  = fs.Duration("respawn-backoff", 200*time.Millisecond, "pause before replacing a dead worker")
		drain    = fs.Duration("drain", 15*time.Second, "graceful drain window per worker")
		bin      = fs.String("worker-bin", "", "worker executable (default: this binary)")
		dbg      = fs.String("debug-addr", "", "serve pprof + /debug/trace + /metrics on this extra address")
	)
	_ = fs.Parse(args)
	if *dbg != "" {
		defer enableDebug(*dbg, obs.Default(), obs.DefaultSpans())()
	}

	c, err := cluster.New(cluster.Config{
		Workers:         *workers,
		WorkerCapacity:  *capacity,
		HeartbeatEvery:  *hbEvery,
		HeartbeatMisses: *hbMisses,
		MaxRestarts:     *restarts,
		RespawnBackoff:  *backoff,
		DrainTimeout:    *drain,
		Spawn:           (&cluster.ExecSpawner{Binary: *bin}).Spawn,
	})
	fatal(err)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = c.Shutdown(context.Background())
		fatal(err)
	}
	srv := &http.Server{Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	// Machine-readable ready line: test harnesses and scripts scan for it
	// to learn the bound address when -addr picks an ephemeral port.
	fmt.Printf("THINAIRD_COORDINATOR_READY url=http://%s\n", listenHostPort(ln))
	fmt.Printf("thinaird: coordinating %d workers on %s\n", *workers, ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("thinaird: %v — draining cluster\n", sig)
	case err := <-errc:
		_ = c.Shutdown(context.Background())
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain+15*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if err := c.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "thinaird: cluster shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("thinaird: cluster drained, all worker pools zeroized")
}

// runWorker is `thinaird worker`: one supervised session host. It
// announces its control RPC address on stdout (the ReadyPrefix line the
// coordinator's spawner scans for) and exits when drained over RPC,
// signaled, or orphaned by its coordinator.
func runWorker(args []string) {
	fs := flag.NewFlagSet("thinaird worker", flag.ExitOnError)
	var (
		ctl        = fs.String("ctl", "127.0.0.1:0", "control RPC listen address (loopback)")
		capacity   = fs.Int("capacity", 16, "max concurrently running sessions")
		drain      = fs.Duration("drain", 10*time.Second, "graceful drain window per session")
		slot       = fs.Int("slot", 0, "coordinator slot index (labels logs)")
		supervised = fs.Bool("supervised", false, "exit when the parent process goes away")
		dbg        = fs.String("debug-addr", "", "serve pprof + /debug/trace + /metrics on this extra address")
	)
	_ = fs.Parse(args)

	w := cluster.NewWorker(cluster.WorkerConfig{Capacity: *capacity, DrainTimeout: *drain})
	if *dbg != "" {
		// The worker's registry is private (the coordinator merges it
		// into the fleet view), so the debug surface must use the same
		// instance rather than the process default.
		defer enableDebug(*dbg, w.Obs(), w.Spans())()
	}
	ln, err := net.Listen("tcp", *ctl)
	fatal(err)
	srv := &http.Server{Handler: w.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("%s url=http://%s\n", cluster.ReadyPrefix, listenHostPort(ln))

	// A supervised worker must not outlive its coordinator: being
	// reparented (the parent pid changes) means the coordinator is gone,
	// so drain and exit rather than linger as an orphan.
	orphaned := make(chan struct{})
	if *supervised {
		parent := os.Getppid()
		go func() {
			for {
				time.Sleep(time.Second)
				if os.Getppid() != parent {
					close(orphaned)
					return
				}
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "thinaird worker %d: %v — draining\n", *slot, sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
		_ = w.Drain(ctx)
		cancel()
	case <-orphaned:
		fmt.Fprintf(os.Stderr, "thinaird worker %d: coordinator gone — draining\n", *slot)
		ctx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
		_ = w.Drain(ctx)
		cancel()
	case <-w.Drained():
		// Drained over RPC: pools are zeroized; nothing left to host.
	case err := <-errc:
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = srv.Shutdown(ctx)
	cancel()
	fmt.Fprintf(os.Stderr, "thinaird worker %d: exiting\n", *slot)
}

// listenHostPort renders a dialable host:port for a listener that may
// have bound a wildcard address.
func listenHostPort(ln net.Listener) string {
	addr := ln.Addr().(*net.TCPAddr)
	host := addr.IP.String()
	if addr.IP.IsUnspecified() || addr.IP == nil {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, fmt.Sprint(addr.Port))
}
