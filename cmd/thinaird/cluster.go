package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// runCoordinator is `thinaird coordinator`: it spawns and supervises a
// fleet of `thinaird worker` processes (re-execing this binary), owns
// the cluster session registry, and serves the public API.
func runCoordinator(args []string) {
	fs := flag.NewFlagSet("thinaird coordinator", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":9309", "public HTTP listen address")
		workers  = fs.Int("workers", 3, "worker processes to spawn and supervise")
		capacity = fs.Int("worker-capacity", 16, "max sessions per worker")
		hbEvery  = fs.Duration("heartbeat", time.Second, "worker heartbeat period")
		hbMisses = fs.Int("heartbeat-misses", 3, "missed heartbeats before a worker is replaced")
		restarts = fs.Int("max-restarts", 5, "respawn budget per worker slot")
		backoff  = fs.Duration("respawn-backoff", 200*time.Millisecond, "pause before replacing a dead worker")
		drain    = fs.Duration("drain", 15*time.Second, "graceful drain window per worker")
		bin      = fs.String("worker-bin", "", "worker executable (default: this binary)")
		stateDir = fs.String("state-dir", "", "persist the session registry here; a restarted coordinator replays it and re-adopts surviving workers")
		orphan   = fs.Duration("orphan-grace", 45*time.Second, "how long workers outlive a dead coordinator awaiting re-adoption (needs -state-dir)")
		dbg      = fs.String("debug-addr", "", "serve pprof + /debug/trace + /metrics on this extra address")
	)
	_ = fs.Parse(args)
	if *dbg != "" {
		defer enableDebug(*dbg, obs.Default(), obs.DefaultSpans())()
	}

	spawner := &cluster.ExecSpawner{Binary: *bin}
	if *stateDir != "" {
		// Workers must survive a coordinator crash long enough to be
		// re-adopted; without persistence the old exit-on-reparent
		// behavior stands (a worker nobody can re-adopt must not linger).
		spawner.Args = []string{"-orphan-grace", orphan.String()}
	}
	c, err := cluster.New(cluster.Config{
		Workers:         *workers,
		WorkerCapacity:  *capacity,
		HeartbeatEvery:  *hbEvery,
		HeartbeatMisses: *hbMisses,
		MaxRestarts:     *restarts,
		RespawnBackoff:  *backoff,
		DrainTimeout:    *drain,
		Spawn:           spawner.Spawn,
		StateDir:        *stateDir,
	})
	fatal(err)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = c.Shutdown(context.Background())
		fatal(err)
	}
	srv := &http.Server{Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	// Machine-readable ready line: test harnesses and scripts scan for it
	// to learn the bound address when -addr picks an ephemeral port.
	fmt.Printf("THINAIRD_COORDINATOR_READY url=http://%s\n", listenHostPort(ln))
	fmt.Printf("thinaird: coordinating %d workers on %s\n", *workers, ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("thinaird: %v — draining cluster\n", sig)
	case err := <-errc:
		_ = c.Shutdown(context.Background())
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain+15*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if err := c.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "thinaird: cluster shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("thinaird: cluster drained, all worker pools zeroized")
}

// runWorker is `thinaird worker`: one supervised session host. It
// announces its control RPC address on stdout (the ReadyPrefix line the
// coordinator's spawner scans for) and exits when drained over RPC,
// signaled, or orphaned by its coordinator.
func runWorker(args []string) {
	fs := flag.NewFlagSet("thinaird worker", flag.ExitOnError)
	var (
		ctl        = fs.String("ctl", "127.0.0.1:0", "control RPC listen address (loopback)")
		capacity   = fs.Int("capacity", 16, "max concurrently running sessions")
		drain      = fs.Duration("drain", 10*time.Second, "graceful drain window per session")
		slot       = fs.Int("slot", 0, "coordinator slot index (labels logs)")
		supervised = fs.Bool("supervised", false, "exit when the parent process goes away")
		orphan     = fs.Duration("orphan-grace", 0, "after losing the coordinator, keep serving this long awaiting re-adoption (0: exit immediately)")
		dbg        = fs.String("debug-addr", "", "serve pprof + /debug/trace + /metrics on this extra address")
	)
	_ = fs.Parse(args)

	w := cluster.NewWorker(cluster.WorkerConfig{Capacity: *capacity, DrainTimeout: *drain})
	if *dbg != "" {
		// The worker's registry is private (the coordinator merges it
		// into the fleet view), so the debug surface must use the same
		// instance rather than the process default.
		defer enableDebug(*dbg, w.Obs(), w.Spans())()
	}
	ln, err := net.Listen("tcp", *ctl)
	fatal(err)
	srv := &http.Server{Handler: w.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("%s url=http://%s\n", cluster.ReadyPrefix, listenHostPort(ln))

	// A supervised worker must not outlive its coordinator for long:
	// being reparented (the parent pid changes) means the coordinator is
	// gone. With -orphan-grace the worker keeps serving for a bounded
	// window — a coordinator restarted on its state dir re-adopts the
	// worker by probing /ctl, and every control RPC (heartbeats
	// included) resets the silence clock. Only sustained control silence
	// past the grace drains and exits; grace 0 is the immediate exit.
	orphaned := make(chan struct{})
	if *supervised {
		parent := os.Getppid()
		go func() {
			for os.Getppid() == parent {
				time.Sleep(time.Second)
			}
			reparented := time.Now()
			if *orphan > 0 {
				fmt.Fprintf(os.Stderr, "thinaird worker %d: coordinator gone — serving %v awaiting re-adoption\n", *slot, *orphan)
			}
			for {
				last := w.LastControlActivity()
				if last.Before(reparented) {
					last = reparented
				}
				silence := time.Since(last)
				if silence >= *orphan {
					close(orphaned)
					return
				}
				time.Sleep(min(time.Second, *orphan-silence))
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "thinaird worker %d: %v — draining\n", *slot, sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
		_ = w.Drain(ctx)
		cancel()
	case <-orphaned:
		fmt.Fprintf(os.Stderr, "thinaird worker %d: coordinator gone — draining\n", *slot)
		ctx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
		_ = w.Drain(ctx)
		cancel()
	case <-w.Drained():
		// Drained over RPC: pools are zeroized; nothing left to host.
	case err := <-errc:
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = srv.Shutdown(ctx)
	cancel()
	fmt.Fprintf(os.Stderr, "thinaird worker %d: exiting\n", *slot)
}

// listenHostPort renders a dialable host:port for a listener that may
// have bound a wildcard address.
func listenHostPort(ln net.Listener) string {
	addr := ln.Addr().(*net.TCPAddr)
	host := addr.IP.String()
	if addr.IP.IsUnspecified() || addr.IP == nil {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, fmt.Sprint(addr.Port))
}
