package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// runTrace is `thinaird trace`: it fetches span events from a daemon or
// coordinator /debug/trace endpoint and renders them as a causal chain,
// one line per event, offsets relative to the span's first event.
//
//	thinaird trace -connect http://localhost:9309                 # recent events
//	thinaird trace -connect http://localhost:9309 -span 01ab...   # one span's chain
func runTrace(args []string) {
	fs := flag.NewFlagSet("thinaird trace", flag.ExitOnError)
	var (
		connect = fs.String("connect", "http://localhost:9309", "daemon or coordinator base URL")
		span    = fs.String("span", "", "span ID to filter on (default: recent events)")
		n       = fs.Int("n", 64, "events to fetch when unfiltered")
	)
	_ = fs.Parse(args)

	url := fmt.Sprintf("%s/debug/trace?n=%d", *connect, *n)
	if *span != "" {
		url = fmt.Sprintf("%s/debug/trace?span=%s", *connect, *span)
	}
	resp, err := http.Get(url)
	fatal(err)
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	fatal(err)
	if resp.StatusCode != http.StatusOK {
		fatal(fmt.Errorf("trace: %s returned %s: %s", url, resp.Status, strings.TrimSpace(string(raw))))
	}
	var events []obs.SpanEvent
	fatal(json.Unmarshal(raw, &events))
	if len(events) == 0 {
		fmt.Println("trace: no events")
		return
	}
	fmt.Print(renderTrace(events))
}

// renderTrace groups events by span (chronological within each span)
// and prints offsets relative to the span's first event, so one draw
// reads as its edge → worker → engine chain.
func renderTrace(events []obs.SpanEvent) string {
	bySpan := make(map[string][]obs.SpanEvent)
	var order []string
	for _, e := range events {
		if _, seen := bySpan[e.Span]; !seen {
			order = append(order, e.Span)
		}
		bySpan[e.Span] = append(bySpan[e.Span], e)
	}
	// Oldest span first, by its earliest event.
	sort.SliceStable(order, func(i, j int) bool {
		return earliest(bySpan[order[i]]).Before(earliest(bySpan[order[j]]))
	})

	var b strings.Builder
	for _, id := range order {
		evs := bySpan[id]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
		t0 := evs[0].Time
		fmt.Fprintf(&b, "span %s\n", id)
		for _, e := range evs {
			fmt.Fprintf(&b, "  %+9s  %-6s %-8s %s\n",
				fmtOffset(e.Time.Sub(t0)), e.Tier, e.Name, fmtAttrs(e.Attrs))
		}
	}
	return b.String()
}

func earliest(evs []obs.SpanEvent) time.Time {
	t := evs[0].Time
	for _, e := range evs[1:] {
		if e.Time.Before(t) {
			t = e.Time
		}
	}
	return t
}

func fmtOffset(d time.Duration) string {
	if d <= 0 {
		return "+0µs"
	}
	return "+" + d.Round(time.Microsecond).String()
}

// fmtAttrs renders attributes key-sorted so output is deterministic.
func fmtAttrs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + attrs[k]
	}
	return strings.Join(parts, " ")
}
