// Command thinaird is the multi-session key-agreement daemon: it runs
// many concurrent secret-agreement group sessions — each a broadcast bus
// with one goroutine per terminal and a key pool refreshed in the
// background — and exposes creation, key draws and telemetry over HTTP.
//
// Serve mode (default):
//
//	thinaird                                  # listen on :9309
//	thinaird -addr :8080 -max-sessions 128
//	thinaird -sessions 8 -n 4 -udp            # pre-create 8 UDP groups
//
// Client mode (-connect) talks to a running daemon:
//
//	thinaird -connect http://localhost:9309 -list
//	thinaird -connect http://localhost:9309 -create -n 3 -erasure 0.45
//	thinaird -connect http://localhost:9309 -draw 1 -bytes 32
//	thinaird -connect http://localhost:9309 -close 1
//
// Cluster mode runs the multi-process tier (internal/cluster): a
// coordinator process owns the session registry and the public API, and
// supervised worker processes host the sessions over loopback UDP buses:
//
//	thinaird coordinator -addr :9309 -workers 3 -worker-capacity 16
//	thinaird worker -ctl 127.0.0.1:0 -capacity 16    # normally spawned by the coordinator
//
// The client-mode flags work against a coordinator too — the tiers share
// the /v1/sessions API shape.
//
// Gate mode runs the persistent-connection front tier: long-lived
// frame-protocol connections (and WebSocket upgrades) multiplexing key
// draws and stream ranges, served straight from owning workers:
//
//	thinaird gate -addr :9310 -coordinator http://localhost:9309
//	thinaird gate -addr :9310 -ws-addr :9311    # also ws://…:9311/v1/gate
//
// Observability: every mode takes -debug-addr to mount pprof,
// /debug/trace and /metrics on a separate listener, and `thinaird
// trace` renders a span's edge → worker → engine chain:
//
//	thinaird -addr :9309 -debug-addr 127.0.0.1:6060
//	thinaird trace -connect http://localhost:9309 -span 01ab23cd45ef6789
package main

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/client"
	"repro/internal/obs"
	"repro/internal/service"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "coordinator":
			runCoordinator(os.Args[2:])
			return
		case "worker":
			runWorker(os.Args[2:])
			return
		case "gate":
			runGate(os.Args[2:])
			return
		case "trace":
			runTrace(os.Args[2:])
			return
		}
	}
	var (
		// Serve mode.
		addr        = flag.String("addr", ":9309", "HTTP listen address (serve mode)")
		maxSessions = flag.Int("max-sessions", 64, "bound on concurrently running sessions")
		maxQueued   = flag.Int("max-queued", 64, "bound on sessions waiting for a slot")
		drain       = flag.Duration("drain", 10*time.Second, "graceful shutdown drain window")
		sessions    = flag.Int("sessions", 0, "number of sessions to pre-create at startup")
		debugAddr   = flag.String("debug-addr", "", "serve pprof + /debug/trace + /metrics on this extra address")

		// Session parameters (pre-created sessions and -create).
		n       = flag.Int("n", 3, "terminals per group")
		erasure = flag.Float64("erasure", 0.45, "per-link erasure probability")
		x       = flag.Int("x", 90, "x-packets per round")
		payload = flag.Int("payload", 16, "payload bytes per x-packet")
		rounds  = flag.Int("rounds", 2, "protocol rounds per refresh batch")
		udp     = flag.Bool("udp", false, "run groups over loopback UDP instead of in-process channels")
		observe = flag.Bool("observe", false, "attach a wire-level eavesdropper to each session")
		low     = flag.Int("low-water", 1024, "pool bytes below which the background refresher runs")
		seed    = flag.Int64("seed", time.Now().UnixNano()%1000000, "base seed for pre-created sessions")

		// Client mode.
		connect = flag.String("connect", "", "daemon base URL; switches to client mode")
		list    = flag.Bool("list", false, "client: list sessions")
		create  = flag.Bool("create", false, "client: create a session from the session flags")
		draw    = flag.Uint("draw", 0, "client: draw key material from this session id")
		drawLen = flag.Int("bytes", 32, "client: bytes to draw")
		closeID = flag.Uint("close", 0, "client: close this session id")
	)
	flag.Parse()

	spec := service.SessionSpec{
		Terminals: *n, Erasure: *erasure, XPerRound: *x, PayloadBytes: *payload,
		Rounds: *rounds, Rotate: true, UDP: *udp, Observe: *observe, LowWater: *low,
	}

	if *connect != "" {
		runClient(*connect, spec, *list, *create, *draw, *drawLen, *closeID)
		return
	}
	if *debugAddr != "" {
		// Serve mode's service.New defaults to the process-wide registry
		// and span ring, so the debug surface sees the same instruments.
		defer enableDebug(*debugAddr, obs.Default(), obs.DefaultSpans())()
	}
	runServe(*addr, service.Config{
		MaxSessions: *maxSessions, MaxQueued: *maxQueued, DrainTimeout: *drain,
	}, spec, *sessions, *seed)
}

func runServe(addr string, cfg service.Config, spec service.SessionSpec, sessions int, seed int64) {
	sv := service.New(cfg)
	for i := 0; i < sessions; i++ {
		sp := spec
		sp.Name = fmt.Sprintf("boot-%d", i)
		sp.Seed = seed + int64(i)*1009
		s, err := sv.Create(sp)
		fatal(err)
		fmt.Printf("thinaird: created session %d (%s)\n", s.ID, sp.Name)
	}

	srv := &http.Server{Addr: addr, Handler: sv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("thinaird: serving on %s (%d max sessions)\n", addr, cfg.MaxSessions)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("thinaird: %v — draining sessions\n", sig)
	case err := <-errc:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout+5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if err := sv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "thinaird: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("thinaird: all sessions drained, pools zeroized")
}

func runClient(base string, spec service.SessionSpec, list, create bool, draw uint, drawLen int, closeID uint) {
	switch {
	case list:
		clientJSON("GET", base+"/v1/sessions", nil)
	case create:
		body, err := json.Marshal(spec)
		fatal(err)
		clientJSON("POST", base+"/v1/sessions", body)
	case draw != 0:
		// Draws go through the unified Client API — the same interface
		// (and error mapping) the gate's frame protocol serves.
		c := client.NewHTTP(base)
		defer c.Close()
		key, err := c.Draw(context.Background(), uint64(draw), drawLen)
		fatal(err)
		out, err := json.MarshalIndent(map[string]any{
			"session": draw, "bytes": len(key), "key": hex.EncodeToString(key),
		}, "", "  ")
		fatal(err)
		fmt.Printf("%s\n", out)
	case closeID != 0:
		clientJSON("DELETE", fmt.Sprintf("%s/v1/sessions/%d", base, closeID), nil)
	default:
		clientJSON("GET", base+"/healthz", nil)
	}
}

// clientJSON performs one API call and pretty-prints the JSON response.
func clientJSON(method, url string, body []byte) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	fatal(err)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	fatal(err)
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	fatal(err)
	var pretty bytes.Buffer
	if json.Indent(&pretty, raw, "", "  ") == nil {
		raw = pretty.Bytes()
	}
	fmt.Printf("%s\n", raw)
	if resp.StatusCode >= 400 {
		os.Exit(1)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "thinaird:", err)
		os.Exit(1)
	}
}
