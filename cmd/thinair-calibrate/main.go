// Command thinair-calibrate documents the channel-parameter sensitivity
// behind the testbed defaults: it sweeps the jamming strength and the base loss and reports how
// efficiency and reliability respond, for a fixed group size over a
// subsampled placement set.
//
// Usage: thinair-calibrate [-n 5] [-placements 18] [-seed 11]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/testbed"
)

func main() {
	var (
		n          = flag.Int("n", 5, "group size")
		placements = flag.Int("placements", 18, "placements per configuration")
		seed       = flag.Int64("seed", 11, "seed")
	)
	flag.Parse()

	fmt.Printf("calibration sweep: n=%d, %d placements per cell, LOO estimator\n\n", *n, *placements)

	fmt.Println("A) jamming strength (base loss fixed at default)")
	fmt.Printf("%12s %10s %10s %10s %10s\n", "jamPErase", "meanEff", "relMin", "relAvg", "eveMiss")
	for _, jam := range []float64{0, 0.25, 0.5, 0.7, 0.85, 0.95} {
		ch := testbed.DefaultChannel()
		ch.JamPErase = jam
		report(*n, *placements, *seed, ch, jam)
	}

	fmt.Println("\nB) base channel loss (jamming fixed at default)")
	fmt.Printf("%12s %10s %10s %10s %10s\n", "base", "meanEff", "relMin", "relAvg", "eveMiss")
	for _, base := range []float64{0.0, 0.05, 0.1, 0.2, 0.3} {
		ch := testbed.DefaultChannel()
		ch.Base = base
		report(*n, *placements, *seed, ch, base)
	}
}

func report(n, maxPlacements int, seed int64, ch testbed.Channel, label float64) {
	all := testbed.EnumeratePlacements(n)
	stride := 1
	if maxPlacements > 0 && len(all) > maxPlacements {
		stride = (len(all) + maxPlacements - 1) / maxPlacements
	}
	var effSum, relSum, missSum float64
	relMin := math.Inf(1)
	count, relCount := 0, 0
	for i := 0; i < len(all); i += stride {
		ex := &testbed.Experiment{
			Placement: all[i],
			Channel:   ch,
			Protocol: core.Config{
				Terminals: n, XPerRound: 90, PayloadBytes: 100,
				Rounds: 2, Rotate: true, Seed: seed + int64(i)*7919,
			},
			Seed: seed + int64(i)*104729 + 1,
		}
		res, err := ex.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "thinair-calibrate:", err)
			os.Exit(1)
		}
		count++
		effSum += res.Efficiency
		for _, ri := range res.Rounds {
			missSum += ri.EveMissRate / float64(len(res.Rounds))
		}
		if !math.IsNaN(res.Reliability) {
			relCount++
			relSum += res.Reliability
			if res.Reliability < relMin {
				relMin = res.Reliability
			}
		}
	}
	relAvg := math.NaN()
	if relCount > 0 {
		relAvg = relSum / float64(relCount)
	} else {
		relMin = math.NaN()
	}
	fmt.Printf("%12.2f %10.4f %10.3f %10.3f %10.3f\n",
		label, effSum/float64(count), relMin, relAvg, missSum/float64(count))
}
