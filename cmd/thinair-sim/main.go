// Command thinair-sim runs protocol experiments and prints their metrics:
// either on a symmetric erasure channel (-erasure) or on the paper's
// 3×3-cell testbed with rotating interference (-cells). With -repeat k it
// fans k independently seeded replicas of the experiment out over the
// deterministic sweep engine (-workers goroutines) and reports aggregate
// statistics; the output is identical for every worker count.
//
// Examples:
//
//	thinair-sim -n 3 -erasure 0.4 -rounds 2
//	thinair-sim -n 4 -cells 0,2,6,8 -eve 4 -estimator loo
//	thinair-sim -n 3 -erasure 0.5 -estimator oracle -antennas 2
//	thinair-sim -n 3 -erasure 0.5 -repeat 64 -workers 8
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/testbed"
	"repro/internal/trace"

	thinair "repro"
)

func main() {
	var (
		n         = flag.Int("n", 3, "number of terminals")
		erasure   = flag.Float64("erasure", -1, "symmetric per-link erasure probability (mutually exclusive with -cells)")
		cells     = flag.String("cells", "", "comma-separated terminal cells (0..8) on the testbed grid")
		eveCell   = flag.Int("eve", 4, "Eve's cell when using -cells")
		rounds    = flag.Int("rounds", 3, "protocol rounds")
		xPerRound = flag.Int("x", 90, "x-packets per round")
		payload   = flag.Int("payload", 100, "payload bytes per packet (even)")
		estimator = flag.String("estimator", "loo", "estimator: loo, oracle, fixed:<delta>, ksubset:<k>")
		rotate    = flag.Bool("rotate", true, "rotate the leader role")
		antennas  = flag.Int("antennas", 1, "Eve antennas (symmetric channel only)")
		seed      = flag.Int64("seed", 1, "seed")
		repeat    = flag.Int("repeat", 1, "number of independently seeded replicas of the experiment")
		workers   = flag.Int("workers", 0, "replicas evaluated concurrently (0 = one per CPU)")
		traceOut  = flag.String("trace", "", "emit a structured round trace: 'text' or 'json' (single run only)")
	)
	flag.Parse()

	est, err := parseEstimator(*estimator)
	fatal(err)
	if *repeat > 1 && *traceOut != "" {
		fatal(fmt.Errorf("-trace requires -repeat 1"))
	}

	var log *trace.Log
	if *traceOut != "" {
		log = trace.NewLog()
	}

	var tc []thinair.Cell
	if *cells != "" {
		var err error
		tc, err = parseCells(*cells)
		fatal(err)
		if len(tc) != *n {
			fatal(fmt.Errorf("-cells lists %d cells but -n is %d", len(tc), *n))
		}
	}

	// run executes one replica; replica 0 reuses the base seed so a plain
	// single run stays byte-identical to earlier releases.
	run := func(replica int) (*thinair.SessionResult, error) {
		rs := *seed
		if replica > 0 {
			rs = sweep.Seed(*seed, replica)
		}
		switch {
		case *cells != "":
			return thinair.RunExperiment(&thinair.Experiment{
				Placement: thinair.Placement{EveCell: thinair.Cell(*eveCell), TerminalCells: tc},
				Channel:   thinair.DefaultChannel(),
				Protocol: thinair.Config{
					XPerRound: *xPerRound, PayloadBytes: *payload,
					Rounds: *rounds, Rotate: *rotate, Estimator: est, Seed: rs,
					Tracer: tracerOrNil(log),
				},
				Seed: rs + 1,
			})
		case *erasure >= 0:
			return thinair.Simulate(thinair.SimOptions{
				Terminals: *n, Erasure: *erasure, XPerRound: *xPerRound,
				PayloadBytes: *payload, Rounds: *rounds, Rotate: *rotate,
				Estimator: est, EveAntennas: *antennas, Seed: rs,
				Tracer: tracerOrNil(log),
			})
		}
		return nil, fmt.Errorf("specify either -erasure or -cells")
	}

	if *repeat > 1 {
		results, err := sweep.Run(*workers, *repeat, func(i int) (*thinair.SessionResult, error) {
			return run(i)
		})
		fatal(err)
		printAggregate(results)
		return
	}

	res, err := run(0)
	fatal(err)

	fmt.Printf("terminals:        %d\n", *n)
	fmt.Printf("rounds:           %d\n", len(res.Rounds))
	digest := sha256.Sum256(res.Secret)
	fmt.Printf("secret bytes:     %d (sha256 %x…)\n", len(res.Secret), digest[:8])
	fmt.Printf("secret packets:   %d (Eve knows nothing about %d)\n", res.SecretDims, res.UnknownDims)
	fmt.Printf("bits transmitted: %d\n", res.BitsTransmitted)
	fmt.Printf("efficiency:       %.4f  (%.1f secret kbps at 1 Mbps; %.1f kbps by 802.11 airtime)\n",
		res.Efficiency, res.SecretKbpsAt(testbed.ChannelBitsPerSec), res.SecretKbpsAirtime())
	fmt.Printf("channel airtime:  %v\n", res.Airtime)
	fmt.Printf("reliability:      %.3f  (Eve guesses a secret bit w.p. %.3f)\n", res.Reliability, core.GuessProbability(res.Reliability))
	fmt.Printf("all agreed:       %v\n", res.AllAgreed)
	for _, ri := range res.Rounds {
		fmt.Printf("  round %d: leader=%d pools=%d M=%d L=%d eveMiss=%.2f unknown=%d\n",
			ri.Round, ri.Leader, ri.NumClasses, ri.M, ri.L, ri.EveMissRate, ri.UnknownDims)
	}
	if log != nil {
		fmt.Println("\ntrace:")
		switch *traceOut {
		case "json":
			fatal(log.WriteJSON(os.Stdout))
		default:
			fatal(log.WriteText(os.Stdout))
		}
	}
}

// printAggregate summarizes a -repeat batch: per-replica one-liners plus
// the sweep-style efficiency/reliability summary.
func printAggregate(results []*thinair.SessionResult) {
	var eff, rel []float64
	noSecret := 0
	for i, r := range results {
		digest := sha256.Sum256(r.Secret)
		fmt.Printf("replica %3d: secret %4dB eff %.4f rel %6.3f key=%x…\n",
			i, len(r.Secret), r.Efficiency, r.Reliability, digest[:8])
		eff = append(eff, r.Efficiency)
		if math.IsNaN(r.Reliability) {
			noSecret++
			continue
		}
		rel = append(rel, r.Reliability)
	}
	es := stats.Summarize(eff)
	rs := stats.Summarize(rel)
	if len(rel) == 0 {
		rs.Min, rs.P50, rs.Mean = math.NaN(), math.NaN(), math.NaN()
	}
	fmt.Printf("\nreplicas:    %d (%d produced no secret)\n", len(results), noSecret)
	fmt.Printf("efficiency:  min %.4f  p50 %.4f  mean %.4f\n", es.Min, es.P50, es.Mean)
	fmt.Printf("reliability: min %.3f  p50 %.3f  mean %.3f\n", rs.Min, rs.P50, rs.Mean)
}

// tracerOrNil avoids storing a typed nil in the Tracer interface field.
func tracerOrNil(log *trace.Log) trace.Tracer {
	if log == nil {
		return nil
	}
	return log
}

func parseEstimator(s string) (core.Estimator, error) {
	switch {
	case s == "loo":
		return core.LeaveOneOut{}, nil
	case s == "oracle":
		return core.Oracle{}, nil
	case strings.HasPrefix(s, "fixed:"):
		d, err := strconv.ParseFloat(strings.TrimPrefix(s, "fixed:"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad fixed delta: %w", err)
		}
		return core.FixedDelta{Delta: d}, nil
	case strings.HasPrefix(s, "ksubset:"):
		k, err := strconv.Atoi(strings.TrimPrefix(s, "ksubset:"))
		if err != nil {
			return nil, fmt.Errorf("bad k: %w", err)
		}
		return core.KSubset{K: k}, nil
	}
	return nil, fmt.Errorf("unknown estimator %q", s)
}

func parseCells(s string) ([]thinair.Cell, error) {
	var out []thinair.Cell
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad cell %q: %w", part, err)
		}
		out = append(out, thinair.Cell(v))
	}
	return out, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "thinair-sim:", err)
		os.Exit(1)
	}
}
