// Command thinair-sim runs a single protocol experiment and prints its
// metrics: either on a symmetric erasure channel (-erasure) or on the
// paper's 3×3-cell testbed with rotating interference (-cells).
//
// Examples:
//
//	thinair-sim -n 3 -erasure 0.4 -rounds 2
//	thinair-sim -n 4 -cells 0,2,6,8 -eve 4 -estimator loo
//	thinair-sim -n 3 -erasure 0.5 -estimator oracle -antennas 2
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/testbed"
	"repro/internal/trace"

	thinair "repro"
)

func main() {
	var (
		n         = flag.Int("n", 3, "number of terminals")
		erasure   = flag.Float64("erasure", -1, "symmetric per-link erasure probability (mutually exclusive with -cells)")
		cells     = flag.String("cells", "", "comma-separated terminal cells (0..8) on the testbed grid")
		eveCell   = flag.Int("eve", 4, "Eve's cell when using -cells")
		rounds    = flag.Int("rounds", 3, "protocol rounds")
		xPerRound = flag.Int("x", 90, "x-packets per round")
		payload   = flag.Int("payload", 100, "payload bytes per packet (even)")
		estimator = flag.String("estimator", "loo", "estimator: loo, oracle, fixed:<delta>, ksubset:<k>")
		rotate    = flag.Bool("rotate", true, "rotate the leader role")
		antennas  = flag.Int("antennas", 1, "Eve antennas (symmetric channel only)")
		seed      = flag.Int64("seed", 1, "seed")
		traceOut  = flag.String("trace", "", "emit a structured round trace: 'text' or 'json'")
	)
	flag.Parse()

	est, err := parseEstimator(*estimator)
	fatal(err)

	var log *trace.Log
	if *traceOut != "" {
		log = trace.NewLog()
	}

	var res *thinair.SessionResult
	switch {
	case *cells != "":
		tc, err := parseCells(*cells)
		fatal(err)
		if len(tc) != *n {
			fatal(fmt.Errorf("-cells lists %d cells but -n is %d", len(tc), *n))
		}
		res, err = thinair.RunExperiment(&thinair.Experiment{
			Placement: thinair.Placement{EveCell: thinair.Cell(*eveCell), TerminalCells: tc},
			Channel:   thinair.DefaultChannel(),
			Protocol: thinair.Config{
				XPerRound: *xPerRound, PayloadBytes: *payload,
				Rounds: *rounds, Rotate: *rotate, Estimator: est, Seed: *seed,
				Tracer: tracerOrNil(log),
			},
			Seed: *seed + 1,
		})
		fatal(err)
	case *erasure >= 0:
		res, err = thinair.Simulate(thinair.SimOptions{
			Terminals: *n, Erasure: *erasure, XPerRound: *xPerRound,
			PayloadBytes: *payload, Rounds: *rounds, Rotate: *rotate,
			Estimator: est, EveAntennas: *antennas, Seed: *seed,
			Tracer: tracerOrNil(log),
		})
		fatal(err)
	default:
		fatal(fmt.Errorf("specify either -erasure or -cells"))
	}

	fmt.Printf("terminals:        %d\n", *n)
	fmt.Printf("rounds:           %d\n", len(res.Rounds))
	digest := sha256.Sum256(res.Secret)
	fmt.Printf("secret bytes:     %d (sha256 %x…)\n", len(res.Secret), digest[:8])
	fmt.Printf("secret packets:   %d (Eve knows nothing about %d)\n", res.SecretDims, res.UnknownDims)
	fmt.Printf("bits transmitted: %d\n", res.BitsTransmitted)
	fmt.Printf("efficiency:       %.4f  (%.1f secret kbps at 1 Mbps; %.1f kbps by 802.11 airtime)\n",
		res.Efficiency, res.SecretKbpsAt(testbed.ChannelBitsPerSec), res.SecretKbpsAirtime())
	fmt.Printf("channel airtime:  %v\n", res.Airtime)
	fmt.Printf("reliability:      %.3f  (Eve guesses a secret bit w.p. %.3f)\n", res.Reliability, core.GuessProbability(res.Reliability))
	fmt.Printf("all agreed:       %v\n", res.AllAgreed)
	for _, ri := range res.Rounds {
		fmt.Printf("  round %d: leader=%d pools=%d M=%d L=%d eveMiss=%.2f unknown=%d\n",
			ri.Round, ri.Leader, ri.NumClasses, ri.M, ri.L, ri.EveMissRate, ri.UnknownDims)
	}
	if log != nil {
		fmt.Println("\ntrace:")
		switch *traceOut {
		case "json":
			fatal(log.WriteJSON(os.Stdout))
		default:
			fatal(log.WriteText(os.Stdout))
		}
	}
}

// tracerOrNil avoids storing a typed nil in the Tracer interface field.
func tracerOrNil(log *trace.Log) trace.Tracer {
	if log == nil {
		return nil
	}
	return log
}

func parseEstimator(s string) (core.Estimator, error) {
	switch {
	case s == "loo":
		return core.LeaveOneOut{}, nil
	case s == "oracle":
		return core.Oracle{}, nil
	case strings.HasPrefix(s, "fixed:"):
		d, err := strconv.ParseFloat(strings.TrimPrefix(s, "fixed:"), 64)
		if err != nil {
			return nil, fmt.Errorf("bad fixed delta: %w", err)
		}
		return core.FixedDelta{Delta: d}, nil
	case strings.HasPrefix(s, "ksubset:"):
		k, err := strconv.Atoi(strings.TrimPrefix(s, "ksubset:"))
		if err != nil {
			return nil, fmt.Errorf("bad k: %w", err)
		}
		return core.KSubset{K: k}, nil
	}
	return nil, fmt.Errorf("unknown estimator %q", s)
}

func parseCells(s string) ([]thinair.Cell, error) {
	var out []thinair.Cell
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad cell %q: %w", part, err)
		}
		out = append(out, thinair.Cell(v))
	}
	return out, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "thinair-sim:", err)
		os.Exit(1)
	}
}
