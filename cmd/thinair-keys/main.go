// Command thinair-keys runs the concurrent protocol runtime — one
// goroutine per terminal over an in-process or loopback-UDP broadcast bus
// — and continuously generates group keys, printing the rate and a digest
// of each session's secret. A wire-level eavesdropper taps the bus and
// reports how much of the secret it could infer.
//
// Examples:
//
//	thinair-keys -n 4 -sessions 5
//	thinair-keys -n 3 -udp -erasure 0.5
//	thinair-keys -n 3 -auth "group bootstrap secret"
package main

import (
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/auth"
	"repro/internal/radio"
	"repro/internal/transport"

	thinair "repro"
)

func main() {
	var (
		n         = flag.Int("n", 3, "number of terminals")
		sessions  = flag.Int("sessions", 3, "number of sessions to run")
		rounds    = flag.Int("rounds", 3, "rounds per session")
		x         = flag.Int("x", 90, "x-packets per round")
		payload   = flag.Int("payload", 100, "payload bytes")
		erasure   = flag.Float64("erasure", 0.45, "per-link erasure probability")
		udp       = flag.Bool("udp", false, "use the loopback UDP bus instead of in-process channels")
		bootstrap = flag.String("auth", "", "enable active-Eve authentication with this bootstrap secret")
		seed      = flag.Int64("seed", time.Now().UnixNano()%100000, "seed")
	)
	flag.Parse()

	for s := 0; s < *sessions; s++ {
		var bus transport.Bus
		var err error
		if *udp {
			bus, err = transport.NewUDPBus(radio.Uniform{P: *erasure}, *seed+int64(s), 10)
			fatal(err)
		} else {
			bus = transport.NewChanBus(radio.Uniform{P: *erasure}, *seed+int64(s), 10)
		}

		session := uint32(1000 + s)
		obsEp, err := bus.Endpoint(*n)
		fatal(err)
		obs := thinair.NewObserver(session)
		obsCtx, obsCancel := context.WithCancel(context.Background())
		obsDone := make(chan struct{})
		go func() {
			obs.Run(obsCtx, obsEp, time.Second)
			close(obsDone)
		}()

		var chains []*auth.KeyChain
		if *bootstrap != "" {
			chains = make([]*auth.KeyChain, *n)
			for i := range chains {
				chains[i] = auth.NewKeyChain([]byte(*bootstrap))
			}
		}

		cfg := transport.NodeConfig{
			Config: thinair.Config{
				Terminals: *n, XPerRound: *x, PayloadBytes: *payload,
				Rounds: *rounds, Rotate: true, Seed: *seed + int64(s)*101,
			},
			Session: session,
			Timeout: 10 * time.Second,
		}
		start := time.Now()
		results, err := transport.RunGroup(context.Background(), bus, cfg, chains)
		elapsed := time.Since(start)
		obsCancel()
		<-obsDone
		fatal(err)

		secret := results[0].Secret
		digest := sha256.Sum256(secret)
		rate := float64(len(secret)*8) / elapsed.Seconds() / 1000
		fmt.Printf("session %d: %4d secret bytes in %7.1fms (%8.1f kbps wall) key=%x…", s,
			len(secret), float64(elapsed.Microseconds())/1000, rate, digest[:8])
		if obs.SecretDims > 0 {
			fmt.Printf("  eve: reliability %.3f (%d/%d packets hidden)",
				obs.Reliability(), obs.UnknownDims, obs.SecretDims)
		}
		if chains != nil {
			fmt.Printf("  auth epoch %d", chains[0].Epoch())
		}
		fmt.Println()
		bus.Close()
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "thinair-keys:", err)
		os.Exit(1)
	}
}
