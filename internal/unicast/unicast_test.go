package unicast

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/radio"
)

func mediumFor(n int, p float64, seed int64) *radio.Medium {
	return radio.NewMedium(radio.Uniform{P: p}, n+1, seed)
}

func TestUnicastOraclePerfectSecrecy(t *testing.T) {
	cfg := core.Config{
		Terminals: 4, XPerRound: 60, PayloadBytes: 20,
		Rounds: 2, Rotate: true, Estimator: core.Oracle{}, Seed: 9,
	}
	med := mediumFor(4, 0.4, 17)
	res, err := RunSession(cfg, med, []radio.NodeID{4})
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretDims == 0 {
		t.Fatal("no secret")
	}
	if !res.AllAgreed {
		t.Fatal("terminals failed to decrypt the group key")
	}
	// One-time pads under oracle-perfect pair-wise secrets leak nothing,
	// even though Eve can XOR ciphertexts of the same key packet.
	if res.UnknownDims != res.SecretDims {
		t.Fatalf("unicast leaked %d of %d dims under oracle", res.SecretDims-res.UnknownDims, res.SecretDims)
	}
}

func TestUnicastRandomizedOracleInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(4)
		p := 0.2 + 0.5*rng.Float64()
		cfg := core.Config{
			Terminals: n, XPerRound: 30 + rng.Intn(30), PayloadBytes: 8,
			Estimator: core.Oracle{}, Seed: rng.Int63(),
		}
		med := mediumFor(n, p, rng.Int63())
		res, err := RunSession(cfg, med, []radio.NodeID{radio.NodeID(n)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.AllAgreed {
			t.Fatalf("trial %d: disagreement", trial)
		}
		if res.UnknownDims != res.SecretDims {
			t.Fatalf("trial %d: leak %d/%d", trial, res.SecretDims-res.UnknownDims, res.SecretDims)
		}
	}
}

func TestUnicastLessEfficientThanGroupAtScale(t *testing.T) {
	// The paper's Figure-1 point, measured end-to-end: at n = 6 the group
	// protocol beats the unicast baseline on the same channel. The
	// comparison uses the figure's idealization — oracle estimates and
	// exact reception classes, where sharing lets one z-packet repair many
	// terminals while unicast re-sends the key n-1 times.
	const n = 6
	cfg := core.Config{
		Terminals: n, XPerRound: 80, PayloadBytes: 40,
		Rounds: 3, Rotate: true, Estimator: core.Oracle{}, Pooling: core.ExactPooling{}, Seed: 4,
	}
	gm := mediumFor(n, 0.5, 21)
	group, err := core.RunSession(cfg, gm, []radio.NodeID{n})
	if err != nil {
		t.Fatal(err)
	}
	um := mediumFor(n, 0.5, 21)
	uni, err := RunSession(cfg, um, []radio.NodeID{n})
	if err != nil {
		t.Fatal(err)
	}
	if group.SecretDims == 0 || uni.SecretDims == 0 {
		t.Skip("no secret generated; seeds unlucky")
	}
	if group.Efficiency <= uni.Efficiency {
		t.Fatalf("group %.4f <= unicast %.4f at n=%d", group.Efficiency, uni.Efficiency, n)
	}
}

func TestUnicastValidation(t *testing.T) {
	if _, err := RunSession(core.Config{Terminals: 0, XPerRound: 1}, mediumFor(2, 0, 1), nil); err == nil {
		t.Fatal("bad config accepted")
	}
	cfg := core.Config{Terminals: 3, XPerRound: 10}
	if _, err := RunSession(cfg, radio.NewMedium(radio.Uniform{}, 2, 1), nil); err == nil {
		t.Fatal("small medium accepted")
	}
	if _, err := RunSession(cfg, mediumFor(3, 0, 1), []radio.NodeID{0}); err == nil {
		t.Fatal("eve collision accepted")
	}
	if _, err := RunSession(cfg, mediumFor(3, 0, 1), []radio.NodeID{99}); err == nil {
		t.Fatal("eve out of range accepted")
	}
}

func TestUnicastOmniscientEve(t *testing.T) {
	cfg := core.Config{Terminals: 3, XPerRound: 20, PayloadBytes: 8, Estimator: core.Oracle{}, Seed: 2}
	med := mediumFor(3, 0, 5) // Eve hears all x-packets
	res, err := RunSession(cfg, med, []radio.NodeID{3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretDims != 0 {
		t.Fatal("secret against omniscient Eve")
	}
}

func TestUnicastOracleExactPoolingNoPadReuse(t *testing.T) {
	// Regression: with exact signature classes, a shared y-packet used to
	// pad DIFFERENT key packets for different terminals, handing Eve the
	// XOR of key packets. OTP discipline must keep oracle runs perfect
	// across pooling policies and group sizes.
	rng := rand.New(rand.NewSource(404))
	pools := []core.Pooling{core.ExactPooling{}, core.BalancedPooling{}, core.BalancedPooling{UsePairs: true}}
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(4)
		cfg := core.Config{
			Terminals: n, XPerRound: 60 + rng.Intn(40), PayloadBytes: 8,
			Rounds: 2, Rotate: true,
			Estimator: core.Oracle{}, Pooling: pools[trial%len(pools)],
			Seed: rng.Int63(),
		}
		med := mediumFor(n, 0.3+0.4*rng.Float64(), rng.Int63())
		res, err := RunSession(cfg, med, []radio.NodeID{radio.NodeID(n)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.UnknownDims != res.SecretDims {
			t.Fatalf("trial %d (n=%d, %s): unicast leaked %d of %d dims",
				trial, n, cfg.Pooling.Name(), res.SecretDims-res.UnknownDims, res.SecretDims)
		}
		if !res.AllAgreed {
			t.Fatalf("trial %d: disagreement", trial)
		}
	}
}
