// Package unicast implements the baseline algorithm the paper's §3.2
// dismisses: run Phase 1 exactly as the group protocol does (pair-wise
// secrets via wiretap extraction), then have the leader pick a fresh group
// key and unicast it to each terminal one-time-pad-encrypted under that
// terminal's pair-wise secret.
//
// The baseline is information-theoretically sound — a one-time pad under a
// perfect pair-wise secret leaks nothing — but it makes n-1 separate
// transmissions of the same L-packet key, so its efficiency decays like
// 1/((n-1)·p(1-p)) and "goes to 0 as the number of terminals n increases",
// which is the dashed family of curves in Figure 1.
package unicast

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/eve"
	"repro/internal/gf"
	"repro/internal/matrix"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/wire"
)

// Sym is the protocol field symbol (GF(2^16)).
type Sym = core.Sym

// RunSession executes the unicast baseline with the same configuration,
// medium and adversary interface as core.RunSession, so results are
// directly comparable.
func RunSession(cfg core.Config, med *radio.Medium, eveNodes []radio.NodeID) (*core.SessionResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Terminals
	if med.Nodes() < n {
		return nil, fmt.Errorf("unicast: medium has %d nodes, need %d terminals", med.Nodes(), n)
	}
	for _, ev := range eveNodes {
		if int(ev) < 0 || int(ev) >= med.Nodes() {
			return nil, fmt.Errorf("unicast: eve node %d outside medium", ev)
		}
		if int(ev) < n {
			return nil, fmt.Errorf("unicast: eve node %d collides with a terminal", ev)
		}
	}

	f := core.Field()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &core.SessionResult{AllAgreed: true}
	startBits := med.BitsSent()

	for round := 0; round < cfg.Rounds; round++ {
		leader := 0
		if cfg.Rotate {
			leader = round % n
		}
		h := wire.Header{From: uint8(leader), Session: uint32(cfg.Seed), Round: uint16(round)}

		// Phase 1 is identical to the group protocol.
		batch := packet.NewBatch(rng, cfg.XPerRound, cfg.PayloadBytes)
		xSym := make([][]Sym, cfg.XPerRound)
		recv := make([]*packet.IDSet, n)
		for i := range recv {
			recv[i] = packet.NewIDSet(cfg.XPerRound)
		}
		eveRecv := packet.NewIDSet(cfg.XPerRound)

		perSlot := (cfg.XPerRound + cfg.SlotsPerRound - 1) / cfg.SlotsPerRound
		for i, pkt := range batch {
			if i > 0 && i%perSlot == 0 {
				med.AdvanceSlot()
			}
			xSym[i] = gf.Symbols16(pkt.Payload)
			xh := h
			xh.Type = wire.TypeX
			frame := wire.Marshal(&wire.XPacket{Header: xh, Seq: uint32(pkt.ID), Payload: pkt.Payload})
			got := med.Broadcast(radio.NodeID(leader), len(frame)*8)
			for t := 0; t < n; t++ {
				if got[t] {
					recv[t].Add(pkt.ID)
				}
			}
			for _, ev := range eveNodes {
				if got[ev] {
					eveRecv.Add(pkt.ID)
				}
			}
		}
		med.AdvanceSlot()
		recv[leader] = fullSet(cfg.XPerRound)
		for t := 0; t < n; t++ {
			if t == leader {
				continue
			}
			ah := h
			ah.Type = wire.TypeAck
			ah.From = uint8(t)
			frame := wire.Marshal(&wire.AckReport{Header: ah, NumX: uint32(cfg.XPerRound), Bitmap: recv[t].Words()})
			med.BroadcastReliable(radio.NodeID(t), len(frame)*8)
		}

		ctx := &core.EstimatorContext{
			Terminals: n,
			Leader:    leader,
			NumX:      cfg.XPerRound,
			Recv:      recv,
			Classes:   core.BuildClasses(n, leader, cfg.XPerRound, recv),
		}
		ctx.Classes = cfg.Pooling.Pools(ctx)
		if cfg.Estimator.NeedsOracle() {
			ctx.EveRecv = eveRecv
		}
		plan := core.BuildPlan(ctx, cfg.Estimator)

		info := core.RoundInfo{
			Round: round, Leader: leader, NumX: cfg.XPerRound,
			NumClasses: len(plan.Classes), M: plan.M, L: plan.L,
			EveMissRate: 1 - float64(eveRecv.Count())/float64(cfg.XPerRound),
			Agreed:      true,
		}
		if plan.L == 0 {
			res.Rounds = append(res.Rounds, info)
			continue
		}

		// Announce the y-packet constructions (terminals need them to
		// derive their pads; Eve overhears).
		y := core.ComputeY(plan, xSym)
		ya := core.BuildYAnnounce(h, plan)
		med.BroadcastReliable(radio.NodeID(leader), len(wire.Marshal(ya))*8)

		// The leader draws a fresh group key and unicasts it to every
		// terminal, one-time-pad-encrypted with y-packets from that
		// terminal's pair-wise secret. One-time-pad discipline: a y-packet
		// may pad at most ONE key packet (terminals may share a pad for
		// the SAME key packet — identical ciphertexts — but a pad reused
		// across different key packets would hand Eve their XOR). The
		// greedy assignment below may support fewer than L key packets;
		// that shortfall is part of why the paper's Phase 2 redistribution
		// beats unicasting.
		width := cfg.PayloadBytes / 2
		pads, keyLen := assignPads(plan)
		if keyLen == 0 {
			res.Rounds = append(res.Rounds, info)
			continue
		}
		info.L = keyLen
		secret := make([][]Sym, keyLen)
		for k := range secret {
			secret[k] = gf.Symbols16(packet.RandomPayload(rng, cfg.PayloadBytes))
		}
		// Joint source space for Eve: the N x-packets plus the fresh key
		// packets.
		know := eve.NewKnowledge(f, cfg.XPerRound+keyLen)
		for _, id := range eveRecv.Slice() {
			know.AddUnit(int(id), xSym[int(id)])
		}
		yox := plan.YOverX()

		// Reusable per-transmission buffers: AddCombo copies what it keeps,
		// and the decrypt check consumes ct before the next iteration.
		ct := make([]Sym, width)
		pad := make([]Sym, width)
		row := make([]Sym, cfg.XPerRound+keyLen)
		for t := 0; t < n; t++ {
			if t == leader {
				continue
			}
			for k := 0; k < keyLen; k++ {
				idx := pads[t][k]
				copy(ct, secret[k])
				f.AddMulSlice(ct, y[idx], 1)
				uh := h
				uh.Type = wire.TypeZ
				frame := wire.Marshal(&wire.ZPacket{Header: uh, Index: uint16(k), Payload: gf.Bytes16(ct)})
				med.BroadcastReliable(radio.NodeID(leader), len(frame)*8)
				// Eve hears the ciphertext: ct = s_k + y_idx, a linear
				// combination over the joint space.
				clear(row)
				copy(row, yox.Row(idx))
				row[cfg.XPerRound+k] = 1
				know.AddCombo(row, ct)
			}
		}

		// Terminals decrypt with their own pads and must agree.
		for t := 0; t < n; t++ {
			if t == leader {
				continue
			}
			for k := 0; k < keyLen; k++ {
				// Recompute the pad from received x-packets: check every
				// referenced packet arrived, then combine in one fused
				// kernel call.
				yrow := yox.Row(pads[t][k])
				for c, v := range yrow {
					if v != 0 && !recv[t].Has(packet.ID(c)) {
						return nil, fmt.Errorf("unicast: pad for terminal %d uses unreceived packet %d", t, c)
					}
				}
				clear(pad)
				f.AddMulSlices(pad, xSym, yrow)
				copy(ct, secret[k])
				// Encrypt-then-decrypt in one fused two-term pass: the pad
				// recomputed from x-packets must cancel the leader's y.
				f.AddMulSlices(ct, [][]Sym{y[pads[t][k]], pad}, []Sym{1, 1})
				if !bytes.Equal(gf.Bytes16(ct), gf.Bytes16(secret[k])) {
					info.Agreed = false
					res.AllAgreed = false
				}
			}
		}

		// Secrecy certificate over the joint space.
		secretRows := make([][]Sym, keyLen)
		for k := range secretRows {
			row := make([]Sym, cfg.XPerRound+keyLen)
			row[cfg.XPerRound+k] = 1
			secretRows[k] = row
		}
		u := know.UnknownSecretDims(matrix.FromRows(f, secretRows))
		info.UnknownDims = u

		for k := range secret {
			res.Secret = append(res.Secret, gf.Bytes16(secret[k])...)
		}
		res.SecretDims += keyLen
		res.UnknownDims += u
		res.Rounds = append(res.Rounds, info)
	}

	res.SecretBits = int64(len(res.Secret)) * 8
	res.BitsTransmitted = med.BitsSent() - startBits
	if res.BitsTransmitted > 0 {
		res.Efficiency = float64(res.SecretBits) / float64(res.BitsTransmitted)
	}
	res.Reliability = core.Reliability(res.SecretDims, res.UnknownDims)
	if res.SecretDims > 0 {
		res.EveKnownFraction = 1 - float64(res.UnknownDims)/float64(res.SecretDims)
	} else {
		res.EveKnownFraction = math.NaN()
	}
	return res, nil
}

// assignPads gives every terminal one pad y-index per key packet under
// one-time-pad discipline: a y-index binds to at most one key packet
// (shared freely among terminals FOR that packet). Greedy per key packet;
// returns the per-terminal pad table and the feasible key length, which
// may fall short of plan.L when the binding constraints exhaust some
// terminal's y-set.
func assignPads(plan *core.Plan) (map[int][]int, int) {
	n := len(plan.Mi)
	pads := make(map[int][]int, n)
	boundTo := make(map[int]int) // y index -> key packet it pads
	keyLen := 0
	for k := 0; k < plan.L; k++ {
		tentative := make(map[int]int) // terminal -> y for this k
		chosen := make(map[int]bool)   // y indices tentatively bound to k
		ok := true
		for t := 0; t < n; t++ {
			if t == plan.Leader {
				continue
			}
			best := -1
			for _, yi := range plan.TerminalYIndices(t) {
				if b, bound := boundTo[yi]; bound && b != k {
					continue // pads a different key packet: never reuse
				}
				if chosen[yi] {
					best = yi // already serving k for another terminal: share
					break
				}
				if best < 0 {
					best = yi
				}
			}
			if best < 0 {
				ok = false
				break
			}
			tentative[t] = best
			chosen[best] = true
		}
		if !ok {
			break
		}
		for t, yi := range tentative {
			boundTo[yi] = k
			pads[t] = append(pads[t], yi)
		}
		keyLen++
	}
	return pads, keyLen
}

func fullSet(n int) *packet.IDSet {
	s := packet.NewIDSet(n)
	for i := 0; i < n; i++ {
		s.Add(packet.ID(i))
	}
	return s
}
