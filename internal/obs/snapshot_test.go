package obs

import (
	"math"
	"testing"
)

func TestHistogramQuantiles(t *testing.T) {
	r := New()
	h := r.Histogram("test_q_seconds", "h", []float64{0.01, 0.1, 1})
	// 90 observations in (0, 0.01], 9 in (0.01, 0.1], 1 in (0.1, 1].
	for i := 0; i < 90; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.05)
	}
	h.Observe(0.5)
	hs := h.snapshot()
	if hs.Count != 100 {
		t.Fatalf("count = %d, want 100", hs.Count)
	}
	// p50 interpolates inside the first bucket: rank 50 of 90 → 5.6ms.
	if want := 0.01 * 50 / 90; math.Abs(hs.P50-want) > 1e-9 {
		t.Fatalf("p50 = %g, want %g", hs.P50, want)
	}
	// p95 lands in the second bucket (cumulative 90 → 99).
	if hs.P95 <= 0.01 || hs.P95 > 0.1 {
		t.Fatalf("p95 = %g, want in (0.01, 0.1]", hs.P95)
	}
	// p99 < p-max: the last observation is in the third bucket.
	if hs.P99 > 1 || hs.P99 <= 0.01 {
		t.Fatalf("p99 = %g out of range", hs.P99)
	}
	if got := hs.Quantile(1); got <= 0.1 || got > 1 {
		t.Fatalf("p100 = %g, want in (0.1, 1]", got)
	}
	if math.Abs(hs.Sum-(90*0.005+9*0.05+0.5)) > 1e-9 {
		t.Fatalf("sum = %g", hs.Sum)
	}
}

func TestHistogramQuantileInfBucketClamps(t *testing.T) {
	r := New()
	h := r.Histogram("test_inf_seconds", "h", []float64{0.01, 0.1})
	h.Observe(5) // lands in +Inf
	hs := h.snapshot()
	if hs.Counts[len(hs.Counts)-1] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", hs.Counts[len(hs.Counts)-1])
	}
	if got := hs.Quantile(0.99); got != 0.1 {
		t.Fatalf("quantile in +Inf bucket = %g, want clamp to 0.1", got)
	}
}

func TestHistogramMergeBucketwise(t *testing.T) {
	bounds := []float64{0.01, 0.1, 1}
	a := &HistogramSnapshot{Bounds: bounds, Counts: []uint64{5, 2, 0, 1}, Sum: 1.5, Count: 8}
	b := &HistogramSnapshot{Bounds: bounds, Counts: []uint64{1, 1, 1, 0}, Sum: 0.3, Count: 3}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	want := []uint64{6, 3, 1, 1}
	for i, c := range a.Counts {
		if c != want[i] {
			t.Fatalf("counts[%d] = %d, want %d", i, c, want[i])
		}
	}
	if a.Count != 11 || math.Abs(a.Sum-1.8) > 1e-9 {
		t.Fatalf("count/sum = %d/%g, want 11/1.8", a.Count, a.Sum)
	}
	if a.P99 == 0 {
		t.Fatal("merge did not refresh quantiles")
	}
	bad := &HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{0, 0, 0}}
	if err := a.Merge(bad); err == nil {
		t.Fatal("merging mismatched bounds did not error")
	}
}

func TestSnapshotMergeFleetView(t *testing.T) {
	w1, w2 := New(), New()
	for i, r := range []*Registry{w1, w2} {
		c := r.Counter("test_draws_total", "draws")
		c.Add(uint64(10 * (i + 1)))
		h := r.Histogram("test_draw_seconds", "lat", []float64{0.01, 0.1})
		h.Observe(0.005)
		h.Observe(0.05)
		r.CounterVec("test_rpc_total", "rpc", "op").With("draw").Add(uint64(i + 1))
	}
	w2.Counter("test_only2_total", "h").Inc()

	fleet := w1.Snapshot()
	fleet.Merge(w2.Snapshot())

	if got := fleet.Total("test_draws_total"); got != 30 {
		t.Fatalf("merged counter = %g, want 30", got)
	}
	f := fleet.Family("test_draw_seconds")
	if f == nil || f.Series[0].Hist == nil {
		t.Fatal("merged histogram family missing")
	}
	if f.Series[0].Hist.Count != 4 {
		t.Fatalf("merged histogram count = %d, want 4", f.Series[0].Hist.Count)
	}
	if f.Series[0].Hist.P99 == 0 {
		t.Fatal("merged histogram quantiles not extracted")
	}
	if got := fleet.Total("test_rpc_total"); got != 3 {
		t.Fatalf("merged labeled counter = %g, want 3", got)
	}
	if got := fleet.Total("test_only2_total"); got != 1 {
		t.Fatalf("family unique to one worker lost in merge: %g", got)
	}
	for i := 1; i < len(fleet.Families); i++ {
		if fleet.Families[i-1].Name > fleet.Families[i].Name {
			t.Fatal("merged snapshot not sorted by family name")
		}
	}
}

func TestSnapshotMergeDoesNotAliasSource(t *testing.T) {
	src := New()
	src.Histogram("test_alias_seconds", "h", []float64{1}).Observe(0.5)
	snap := src.Snapshot()
	var fleet Snapshot
	fleet.Merge(snap)
	fleet.Family("test_alias_seconds").Series[0].Hist.Counts[0] = 99
	if snap.Family("test_alias_seconds").Series[0].Hist.Counts[0] == 99 {
		t.Fatal("merge aliased the source snapshot's buckets")
	}
}
