package obs

import (
	"strings"
	"testing"
)

func buildSample() Snapshot {
	r := New()
	c := r.Counter("test_ops_total", "operations\nwith a newline and a \\ backslash")
	c.Add(3)
	r.Gauge("test_depth", "queue depth").Set(2.5)
	h := r.Histogram("test_lat_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	r.CounterVec("test_rpc_total", "rpc calls", "op", "target").
		With(`tricky"value`, "with\\slash\nand newline").Add(7)
	return r.Snapshot()
}

func TestWritePromIsLintClean(t *testing.T) {
	var b strings.Builder
	if err := buildSample().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if problems := Lint(strings.NewReader(out)); len(problems) != 0 {
		t.Fatalf("renderer output fails lint:\n%s\n---\n%s", strings.Join(problems, "\n"), out)
	}
	for _, want := range []string{
		"# HELP test_ops_total operations\\nwith a newline and a \\\\ backslash",
		"# TYPE test_ops_total counter",
		"test_ops_total 3",
		"# TYPE test_lat_seconds histogram",
		`test_lat_seconds_bucket{le="+Inf"} 3`,
		"test_lat_seconds_count 3",
		`op="tricky\"value"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestPromRoundTripEscapedLabels(t *testing.T) {
	var b strings.Builder
	if err := buildSample().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	// Re-parse the rendered body and check the tricky label survives.
	found := false
	for _, line := range strings.Split(b.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			t.Fatalf("rendered line does not re-parse: %v", err)
		}
		if name == "test_rpc_total" {
			found = true
			if labels["op"] != `tricky"value` {
				t.Fatalf("op label round-trip = %q", labels["op"])
			}
			if labels["target"] != "with\\slash\nand newline" {
				t.Fatalf("target label round-trip = %q", labels["target"])
			}
			if value != 7 {
				t.Fatalf("value = %g, want 7", value)
			}
		}
	}
	if !found {
		t.Fatal("labeled sample not rendered")
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	var b strings.Builder
	if err := buildSample().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	var last float64 = -1
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "test_lat_seconds_bucket") {
			continue
		}
		_, _, v, err := parseSample(line)
		if err != nil {
			t.Fatal(err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative: %g after %g", v, last)
		}
		last = v
	}
	if last != 3 {
		t.Fatalf("final +Inf bucket = %g, want 3", last)
	}
}

func TestLintCatchesBadExpositions(t *testing.T) {
	cases := map[string]string{
		"missing TYPE":     "some_metric 1\n",
		"missing HELP":     "# TYPE x_total counter\nx_total 1\n",
		"counter no total": "# HELP x x\n# TYPE x counter\nx 1\n",
		"bad escape":       "# HELP x_total x\n# TYPE x_total counter\nx_total{a=\"\\q\"} 1\n",
		"bare histogram":   "# HELP h h\n# TYPE h histogram\nh 1\n",
		"bucket no le":     "# HELP h h\n# TYPE h histogram\nh_bucket{op=\"a\"} 1\n",
	}
	for name, body := range cases {
		if problems := Lint(strings.NewReader(body)); len(problems) == 0 {
			t.Errorf("%s: lint accepted bad exposition:\n%s", name, body)
		}
	}
	good := "# HELP ok_total fine\n# TYPE ok_total counter\nok_total{a=\"b\"} 1\n"
	if problems := Lint(strings.NewReader(good)); len(problems) != 0 {
		t.Errorf("lint rejected good exposition: %v", problems)
	}
}
