package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromWriter emits the Prometheus text exposition format with proper
// # HELP / # TYPE headers and label-value escaping. The hand-rolled
// WriteProm methods in service and cluster render through it so every
// endpoint in the repo is promlint-clean the same way.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Family writes the # HELP and # TYPE header for a metric family.
func (p *PromWriter) Family(name, help, typ string) {
	if help != "" {
		p.printf("# HELP %s %s\n", name, escapeHelp(help))
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

// Sample writes one sample line. kv is alternating label key, value
// pairs; values are escaped per the exposition format.
func (p *PromWriter) Sample(name string, v float64, kv ...string) {
	p.printf("%s%s %s\n", name, formatLabels(kv), formatValue(v))
}

// formatLabels renders {k="v",...} from alternating pairs ("" for none).
func formatLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// EscapeLabelValue escapes a label value per the text exposition
// format: backslash, double quote, and newline.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteProm renders the snapshot in the Prometheus text format.
// Histograms expand to cumulative _bucket series plus _sum and _count.
func (s Snapshot) WriteProm(w io.Writer) error {
	p := NewPromWriter(w)
	for _, f := range s.Families {
		p.Family(f.Name, f.Help, f.Type)
		for _, se := range f.Series {
			kv := make([]string, 0, 2*len(f.Labels)+2)
			for i, l := range f.Labels {
				v := ""
				if i < len(se.LabelValues) {
					v = se.LabelValues[i]
				}
				kv = append(kv, l, v)
			}
			if se.Hist == nil {
				p.Sample(f.Name, se.Value, kv...)
				continue
			}
			var cum uint64
			for i, c := range se.Hist.Counts {
				cum += c
				le := "+Inf"
				if i < len(se.Hist.Bounds) {
					le = formatValue(se.Hist.Bounds[i])
				}
				p.Sample(f.Name+"_bucket", float64(cum), append(kv, "le", le)...)
			}
			p.Sample(f.Name+"_sum", se.Hist.Sum, kv...)
			p.Sample(f.Name+"_count", float64(se.Hist.Count), kv...)
		}
	}
	return p.Err()
}
