package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestSpanIDsAreUniqueAndHex(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := NewSpanID()
		if len(id) != 16 {
			t.Fatalf("span id %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate span id %q", id)
		}
		seen[id] = true
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	ctx := WithSpan(context.Background(), "abc123")
	if got := SpanID(ctx); got != "abc123" {
		t.Fatalf("SpanID = %q", got)
	}
	if got := SpanID(context.Background()); got != "" {
		t.Fatalf("empty ctx SpanID = %q", got)
	}
}

func TestSpanLogRingWraps(t *testing.T) {
	l := NewSpanLog(4)
	for i := 0; i < 6; i++ {
		l.Record("s", "edge", string(rune('a'+i)), nil)
	}
	got := l.Recent(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	if got[0].Name != "c" || got[3].Name != "f" {
		t.Fatalf("ring order = %v", got)
	}
	if events := l.Span("s"); len(events) != 4 {
		t.Fatalf("Span filter = %d events, want 4", len(events))
	}
	if events := l.Span("other"); len(events) != 0 {
		t.Fatal("Span filter leaked foreign events")
	}
}

func TestSpanLogConcurrent(t *testing.T) {
	l := NewSpanLog(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Record(NewSpanID(), "edge", "draw", nil)
				_ = l.Recent(8)
			}
		}()
	}
	wg.Wait()
	if len(l.Recent(0)) != 64 {
		t.Fatal("full ring does not report capacity events")
	}
}

func TestSpanHandlerFiltersBySpan(t *testing.T) {
	l := NewSpanLog(16)
	l.Record("want", "edge", "draw", map[string]string{"bytes": "32"})
	l.Record("other", "edge", "draw", nil)
	l.Record("want", "worker", "draw", nil)

	rec := httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?span=want", nil))
	var events []SpanEvent
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("handler returned %d events, want 2", len(events))
	}
	if events[0].Tier != "edge" || events[1].Tier != "worker" {
		t.Fatalf("tiers = %s,%s", events[0].Tier, events[1].Tier)
	}
	if events[0].Attrs["bytes"] != "32" {
		t.Fatal("attrs lost on the wire")
	}

	rec = httptest.NewRecorder()
	l.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?n=1", nil))
	events = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("n=1 returned %d events", len(events))
	}
}

func TestEnsureSpanMintsAndEchoes(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/sessions/1/draw", nil)
	id := EnsureSpan(rec, req)
	if id == "" {
		t.Fatal("no span minted at the edge")
	}
	// Minted spans are not echoed — the hot path stays header-free for
	// callers that never asked for tracing.
	if got := rec.Header().Get(SpanHeader); got != "" {
		t.Fatalf("minted span leaked onto the response header: %q", got)
	}
	// Caller-supplied IDs pass through unchanged and are echoed back.
	rec = httptest.NewRecorder()
	req.Header.Set(SpanHeader, "upstream01234567")
	if got := EnsureSpan(rec, req); got != "upstream01234567" {
		t.Fatalf("propagated span = %q", got)
	}
	if got := rec.Header().Get(SpanHeader); got != "upstream01234567" {
		t.Fatalf("supplied span not echoed: %q", got)
	}
}
