package obs

import (
	"testing"
	"time"
)

// The disabled path is the default for every process that never opts
// into observability, so it must not allocate — same contract as the
// GF kernel dispatch gates.

func TestDisabledInstrumentsZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("test_alloc_total", "h")
	g := r.Gauge("test_alloc_depth", "h")
	h := r.Histogram("test_alloc_seconds", "h", LatencyBuckets)
	c.Inc()
	g.Set(1)
	h.Observe(0.01) // warm
	r.SetEnabled(false)
	t0 := time.Now()
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(2)
		g.Add(1)
		h.Observe(0.01)
		h.ObserveSince(t0)
	}); n != 0 {
		t.Errorf("disabled instrument path allocates %v times per run", n)
	}
}

func TestNilInstrumentsZeroAlloc(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(2)
		h.Observe(0.01)
	}); n != 0 {
		t.Errorf("nil instrument path allocates %v times per run", n)
	}
}

func TestEnabledScalarInstrumentsZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("test_alloc_on_total", "h")
	h := r.Histogram("test_alloc_on_seconds", "h", LatencyBuckets)
	c.Inc()
	h.Observe(0.01) // warm
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(0.0005)
	}); n != 0 {
		t.Errorf("enabled hot path allocates %v times per run", n)
	}
}

func TestNilSpanLogRecordZeroAlloc(t *testing.T) {
	var l *SpanLog
	if n := testing.AllocsPerRun(100, func() {
		l.Record("span", "edge", "draw", nil)
	}); n != 0 {
		t.Errorf("nil span log record allocates %v times per run", n)
	}
}
