package obs

import (
	"fmt"
	"slices"
)

// Snapshot is a registry materialized at one instant — the JSON wire
// form served by /ctl/metrics and merged fleet-wide by the coordinator.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one metric family with all its series.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Type   string           `json:"type"`
	Labels []string         `json:"labels,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one label-value combination's state.
type SeriesSnapshot struct {
	LabelValues []string           `json:"label_values,omitempty"`
	Value       float64            `json:"value,omitempty"`
	Hist        *HistogramSnapshot `json:"hist,omitempty"`
}

// HistogramSnapshot is a materialized histogram: per-bucket counts
// (last entry is the +Inf bucket), plus the quantiles extracted by
// linear interpolation within buckets.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Count  uint64    `json:"count"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket
// counts, interpolating linearly within the containing bucket — the
// same estimate Prometheus' histogram_quantile computes. The +Inf
// bucket clamps to the highest finite bound.
func (h *HistogramSnapshot) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	var cum uint64
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.Bounds) { // +Inf bucket: clamp
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		hi := h.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(prev))/float64(c)
	}
	return h.Bounds[len(h.Bounds)-1]
}

func (h *HistogramSnapshot) refreshQuantiles() {
	h.P50 = h.Quantile(0.50)
	h.P95 = h.Quantile(0.95)
	h.P99 = h.Quantile(0.99)
}

// Merge adds o's buckets into h bucket-wise. The bounds must match —
// every process shares the canonical bucket layouts, so a mismatch is
// a real version skew worth surfacing.
func (h *HistogramSnapshot) Merge(o *HistogramSnapshot) error {
	if o == nil {
		return nil
	}
	if !slices.Equal(h.Bounds, o.Bounds) || len(h.Counts) != len(o.Counts) {
		return fmt.Errorf("obs: histogram bounds mismatch (%d vs %d buckets)", len(h.Bounds), len(o.Bounds))
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Sum += o.Sum
	h.Count += o.Count
	h.refreshQuantiles()
	return nil
}

// Merge folds o into s: same-name families have their matching series
// summed (counters and gauges add; histograms merge bucket-wise),
// unseen families and series are appended. Histograms with mismatched
// bounds are skipped rather than corrupted. The result stays sorted by
// family name.
func (s *Snapshot) Merge(o Snapshot) {
	byName := make(map[string]int, len(s.Families))
	for i, f := range s.Families {
		byName[f.Name] = i
	}
	for _, of := range o.Families {
		i, ok := byName[of.Name]
		if !ok || s.Families[i].Type != of.Type {
			if !ok {
				byName[of.Name] = len(s.Families)
				s.Families = append(s.Families, cloneFamily(of))
			}
			continue
		}
		f := &s.Families[i]
		bySeries := make(map[string]int, len(f.Series))
		for j, se := range f.Series {
			bySeries[seriesKey(se.LabelValues)] = j
		}
		for _, ose := range of.Series {
			j, ok := bySeries[seriesKey(ose.LabelValues)]
			if !ok {
				bySeries[seriesKey(ose.LabelValues)] = len(f.Series)
				f.Series = append(f.Series, cloneSeries(ose))
				continue
			}
			se := &f.Series[j]
			if se.Hist != nil {
				_ = se.Hist.Merge(ose.Hist)
				continue
			}
			se.Value += ose.Value
		}
	}
	slices.SortFunc(s.Families, func(a, b FamilySnapshot) int {
		switch {
		case a.Name < b.Name:
			return -1
		case a.Name > b.Name:
			return 1
		}
		return 0
	})
}

// Family returns the named family snapshot, or nil.
func (s *Snapshot) Family(name string) *FamilySnapshot {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Total sums every series value of the named counter/gauge family
// (histograms contribute their observation counts).
func (s *Snapshot) Total(name string) float64 {
	f := s.Family(name)
	if f == nil {
		return 0
	}
	var t float64
	for _, se := range f.Series {
		if se.Hist != nil {
			t += float64(se.Hist.Count)
			continue
		}
		t += se.Value
	}
	return t
}

func seriesKey(lvs []string) string {
	k := ""
	for i, v := range lvs {
		if i > 0 {
			k += "\xff"
		}
		k += v
	}
	return k
}

func cloneFamily(f FamilySnapshot) FamilySnapshot {
	cp := f
	cp.Labels = append([]string(nil), f.Labels...)
	cp.Series = make([]SeriesSnapshot, len(f.Series))
	for i, se := range f.Series {
		cp.Series[i] = cloneSeries(se)
	}
	return cp
}

func cloneSeries(se SeriesSnapshot) SeriesSnapshot {
	cp := se
	cp.LabelValues = append([]string(nil), se.LabelValues...)
	if se.Hist != nil {
		h := *se.Hist
		h.Bounds = append([]float64(nil), se.Hist.Bounds...)
		h.Counts = append([]uint64(nil), se.Hist.Counts...)
		cp.Hist = &h
	}
	return cp
}
