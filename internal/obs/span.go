package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// SpanHeader carries a span ID across process boundaries: minted at
// the daemon/coordinator HTTP edge, echoed on the response, and
// forwarded on every /ctl RPC so one draw's record chains
// edge → worker → engine round.
const SpanHeader = "X-Thinair-Span"

// DefaultSpanCapacity is the per-process ring size.
const DefaultSpanCapacity = 4096

// SpanEvent is one record on a span's causal chain.
type SpanEvent struct {
	Span  string            `json:"span"`
	Time  time.Time         `json:"time"`
	Tier  string            `json:"tier"` // edge | worker | engine
	Name  string            `json:"name"` // draw | stream | round | ...
	Attrs map[string]string `json:"attrs,omitempty"`

	// kv holds attributes recorded via RecordKV as alternating
	// key/value pairs; snapshot materialises them into Attrs so hot
	// paths never pay for a map allocation.
	kv []string
}

// SpanLog is a fixed-capacity ring buffer of span events. All methods
// are safe for concurrent use and no-ops on a nil receiver, so span
// recording can be plumbed optionally.
type SpanLog struct {
	mu   sync.Mutex
	buf  []SpanEvent
	next int
	full bool
}

// NewSpanLog returns a ring holding up to capacity events.
func NewSpanLog(capacity int) *SpanLog {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanLog{buf: make([]SpanEvent, capacity)}
}

// Record appends one event. attrs is retained — pass a fresh map.
func (l *SpanLog) Record(span, tier, name string, attrs map[string]string) {
	if l == nil || span == "" {
		return
	}
	e := SpanEvent{Span: span, Time: time.Now(), Tier: tier, Name: name, Attrs: attrs}
	l.mu.Lock()
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// RecordKV appends one event with attributes given as alternating
// key/value pairs. Unlike Record it never allocates a map — the edge
// hot path uses it so the instrumented draw stays near the stripped
// one. A trailing odd key is dropped.
func (l *SpanLog) RecordKV(span, tier, name string, kv ...string) {
	l.RecordKVAt(time.Now(), span, tier, name, kv...)
}

// RecordKVAt is RecordKV with a caller-supplied timestamp, so a handler
// that already read the clock for a latency observation can stamp the
// span event from the same read instead of paying for another.
func (l *SpanLog) RecordKVAt(at time.Time, span, tier, name string, kv ...string) {
	if l == nil || span == "" {
		return
	}
	e := SpanEvent{Span: span, Time: at, Tier: tier, Name: name, kv: kv}
	l.mu.Lock()
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// materialise converts a RecordKV event's pair list into Attrs.
func materialise(e SpanEvent) SpanEvent {
	if e.Attrs == nil && len(e.kv) >= 2 {
		m := make(map[string]string, len(e.kv)/2)
		for i := 0; i+1 < len(e.kv); i += 2 {
			m[e.kv[i]] = e.kv[i+1]
		}
		e.Attrs = m
	}
	e.kv = nil
	return e
}

// snapshot returns the buffered events oldest-first.
func (l *SpanLog) snapshot() []SpanEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	var out []SpanEvent
	if !l.full {
		out = append(out, l.buf[:l.next]...)
	} else {
		out = make([]SpanEvent, 0, len(l.buf))
		out = append(out, l.buf[l.next:]...)
		out = append(out, l.buf[:l.next]...)
	}
	l.mu.Unlock()
	for i := range out {
		out[i] = materialise(out[i])
	}
	return out
}

// Span returns every buffered event for one span ID, oldest-first.
func (l *SpanLog) Span(id string) []SpanEvent {
	var out []SpanEvent
	for _, e := range l.snapshot() {
		if e.Span == id {
			out = append(out, e)
		}
	}
	return out
}

// Recent returns the newest n events, oldest-first.
func (l *SpanLog) Recent(n int) []SpanEvent {
	all := l.snapshot()
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}

// Handler serves the ring as JSON: GET ?span=ID filters to one span,
// ?n=N bounds the unfiltered listing (default 256).
func (l *SpanLog) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var events []SpanEvent
		if id := r.URL.Query().Get("span"); id != "" {
			events = l.Span(id)
		} else {
			n := 256
			if s := r.URL.Query().Get("n"); s != "" {
				if v, err := strconv.Atoi(s); err == nil && v > 0 {
					n = v
				}
			}
			events = l.Recent(n)
		}
		if events == nil {
			events = []SpanEvent{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(events)
	})
}

type spanCtxKey struct{}

// WithSpan attaches a span ID to ctx for downstream RPC propagation.
func WithSpan(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, id)
}

// SpanID returns the span ID attached to ctx, if any.
func SpanID(ctx context.Context) string {
	id, _ := ctx.Value(spanCtxKey{}).(string)
	return id
}

var (
	spanBase = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano())
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
	spanCtr atomic.Uint64
)

// NewSpanID mints a 16-hex-char process-unique span ID: a random base
// xor a splitmix64-scrambled counter — concurrency-safe and cheap
// enough for the edge hot path.
func NewSpanID() string {
	x := spanBase + spanCtr.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	var b [16]byte
	const hexdigits = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		b[15-i] = hexdigits[x&0xf]
		x >>= 4
	}
	return string(b[:])
}

// EnsureSpan returns the request's span ID, minting one when the edge
// is the origin. A caller-supplied span is echoed on the response to
// confirm it was honored (the caller opted into tracing and already
// pays for the header both ways); a minted span is not — the
// single-process draw path stays free of the response-header write and
// the client-side parse it would force on every uninstrumented caller.
// Multi-hop edges that want discoverable minted spans (the cluster
// coordinator, whose draw is an RPC fan-out where a header is noise)
// set SpanHeader on the response themselves.
func EnsureSpan(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(SpanHeader)
	if id == "" {
		return NewSpanID()
	}
	w.Header().Set(SpanHeader, id)
	return id
}

// RequestSpan returns the caller-supplied span ID, echoed on the
// response, or "" when the request carries none. Single-process edges
// use it instead of EnsureSpan: tracing is per-request opt-in (the
// W3C trace-context model — the caller owns the ID), so an untraced
// draw pays for no minting, no header write, and no ring record. The
// cluster coordinator is the one edge that mints unconditionally — a
// routed draw's RPC fan-out both dwarfs the cost and is the case where
// after-the-fact trace discovery earns its keep.
func RequestSpan(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(SpanHeader)
	if id != "" {
		w.Header().Set(SpanHeader, id)
	}
	return id
}
