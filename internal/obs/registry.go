package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric family types used in snapshots and the Prometheus renderer.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// Registry owns a set of metric families. Registration (Counter,
// Gauge, Histogram, the Vec variants, and the Func collectors) is
// idempotent per name and takes a lock; the returned handles are then
// lock-free. SetEnabled flips every instrument of the registry at once
// — the "stripped" arm of the overhead benchmark and the idle default
// for processes that never plumb observability.
type Registry struct {
	enabled atomic.Bool
	mu      sync.Mutex
	byName  map[string]*family
	order   []*family
	collect []func()
}

// New returns an enabled, empty registry.
func New() *Registry {
	r := &Registry{byName: make(map[string]*family)}
	r.enabled.Store(true)
	return r
}

// SetEnabled turns every instrument of the registry on or off.
func (r *Registry) SetEnabled(on bool) {
	if r == nil {
		return
	}
	r.enabled.Store(on)
}

// Enabled reports whether instruments record.
func (r *Registry) Enabled() bool { return r != nil && r.enabled.Load() }

// family is one named metric: a type, help text, label names, and the
// live series keyed by their label values.
type family struct {
	name   string
	help   string
	typ    string
	labels []string
	bounds []float64      // histogram families only
	fn     func() float64 // Func families only

	mu     sync.Mutex
	series map[string]any // *Counter | *Gauge | *Histogram
	order  []seriesEntry
}

type seriesEntry struct {
	lvs []string
	m   any
}

func (r *Registry) register(name, help, typ string, labels []string, bounds []float64, fn func() float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: %s re-registered as %s/%d labels (was %s/%d)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		fn:     fn,
		series: make(map[string]any),
	}
	r.byName[name] = f
	r.order = append(r.order, f)
	return f
}

func (f *family) get(r *Registry, lvs []string) any {
	key := strings.Join(lvs, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	var m any
	switch f.typ {
	case TypeCounter:
		m = &Counter{on: &r.enabled}
	case TypeGauge:
		m = &Gauge{on: &r.enabled}
	case TypeHistogram:
		h := &Histogram{
			on:     &r.enabled,
			bounds: f.bounds,
			counts: make([]atomic.Uint64, len(f.bounds)+1),
		}
		m = h
	}
	lvs = append([]string(nil), lvs...)
	f.series[key] = m
	f.order = append(f.order, seriesEntry{lvs: lvs, m: m})
	return m
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, TypeCounter, nil, nil, nil).get(r, nil).(*Counter)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, TypeGauge, nil, nil, nil).get(r, nil).(*Gauge)
}

// Histogram registers (or fetches) an unlabeled histogram with the
// given bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, TypeHistogram, nil, bounds, nil).get(r, nil).(*Histogram)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r: r, f: r.register(name, help, TypeCounter, labels, nil, nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{r: r, f: r.register(name, help, TypeGauge, labels, nil, nil)}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{r: r, f: r.register(name, help, TypeHistogram, labels, bounds, nil)}
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time — the bridge for counters that already live elsewhere
// as atomics (gf dispatch counts, cluster reassignment totals).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, TypeCounter, nil, nil, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at snapshot
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(name, help, TypeGauge, nil, nil, fn)
}

// OnCollect registers a hook run at the start of every Snapshot — for
// syncing state into gauges right before a scrape.
func (r *Registry) OnCollect(fn func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collect = append(r.collect, fn)
	r.mu.Unlock()
}

// CounterVec hands out per-label-value counters. Resolve handles once
// with With and cache them; With itself allocates for the lookup key.
type CounterVec struct {
	r *Registry
	f *family
}

// With returns the counter for the given label values.
func (v *CounterVec) With(lvs ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(v.r, lvs).(*Counter)
}

// GaugeVec hands out per-label-value gauges.
type GaugeVec struct {
	r *Registry
	f *family
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(lvs ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(v.r, lvs).(*Gauge)
}

// HistogramVec hands out per-label-value histograms.
type HistogramVec struct {
	r *Registry
	f *family
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(lvs ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(v.r, lvs).(*Histogram)
}

// Snapshot materializes every family, sorted by name, with histogram
// quantiles filled. Collect hooks run first.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	hooks := append([]func(){}, r.collect...)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	r.mu.Lock()
	fams := append([]*family{}, r.order...)
	r.mu.Unlock()
	s := Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Type:   f.typ,
			Labels: append([]string(nil), f.labels...),
		}
		if f.fn != nil {
			fs.Series = []SeriesSnapshot{{Value: f.fn()}}
			s.Families = append(s.Families, fs)
			continue
		}
		f.mu.Lock()
		entries := append([]seriesEntry{}, f.order...)
		f.mu.Unlock()
		for _, e := range entries {
			ss := SeriesSnapshot{LabelValues: e.lvs}
			switch m := e.m.(type) {
			case *Counter:
				ss.Value = float64(m.Value())
			case *Gauge:
				ss.Value = m.Value()
			case *Histogram:
				ss.Hist = m.snapshot()
			}
			fs.Series = append(fs.Series, ss)
		}
		s.Families = append(s.Families, fs)
	}
	sort.Slice(s.Families, func(i, j int) bool { return s.Families[i].Name < s.Families[j].Name })
	return s
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
