package obs

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := New()
	a := r.Counter("test_once_total", "h")
	b := r.Counter("test_once_total", "h")
	if a != b {
		t.Fatal("re-registering the same counter returned a different handle")
	}
	v1 := r.CounterVec("test_vec_total", "h", "op").With("x")
	v2 := r.CounterVec("test_vec_total", "h", "op").With("x")
	if v1 != v2 {
		t.Fatal("re-resolving the same vec series returned a different handle")
	}
	v1.Inc()
	if v2.Value() != 1 {
		t.Fatal("vec handles do not share state")
	}
}

func TestRegisterTypeConflictPanics(t *testing.T) {
	r := New()
	r.Counter("test_conflict", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering the same name with a different type did not panic")
		}
	}()
	r.Gauge("test_conflict", "h")
}

func TestDisabledRegistryRecordsNothing(t *testing.T) {
	r := New()
	c := r.Counter("test_off_total", "h")
	h := r.Histogram("test_off_seconds", "h", LatencyBuckets)
	r.SetEnabled(false)
	c.Add(10)
	h.Observe(0.5)
	if c.Value() != 0 {
		t.Fatal("disabled counter recorded")
	}
	r.SetEnabled(true)
	c.Inc()
	h.Observe(0.5)
	if c.Value() != 1 {
		t.Fatal("re-enabled counter did not record")
	}
	if hs := h.snapshot(); hs.Count != 1 {
		t.Fatalf("re-enabled histogram count = %d, want 1", hs.Count)
	}
}

func TestNilReceiversAreSafe(t *testing.T) {
	var r *Registry
	r.SetEnabled(true)
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	r.Counter("x", "h").Inc()
	r.Gauge("x", "h").Set(1)
	r.Histogram("x", "h", LatencyBuckets).Observe(1)
	r.CounterVec("x", "h", "l").With("v").Inc()
	var l *SpanLog
	l.Record("s", "edge", "draw", nil)
	if got := l.Span("s"); got != nil {
		t.Fatal("nil span log returned events")
	}
	if got := r.Snapshot(); len(got.Families) != 0 {
		t.Fatal("nil registry snapshot non-empty")
	}
}

// TestConcurrentRegistryAccess hammers registration, updates, and
// snapshots from many goroutines — the -race coverage the satellite
// asks for.
func TestConcurrentRegistryAccess(t *testing.T) {
	r := New()
	hv := r.HistogramVec("test_conc_seconds", "h", LatencyBuckets, "op")
	var wg sync.WaitGroup
	const workers = 8
	const iters = 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ops := []string{"draw", "stream", "assign"}
			h := hv.With(ops[w%len(ops)])
			c := r.Counter("test_conc_total", "h")
			g := r.Gauge("test_conc_depth", "h")
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) * 0.001)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Total("test_conc_total"); got != workers*iters {
		t.Fatalf("concurrent counter total = %g, want %d", got, workers*iters)
	}
	if got := s.Total("test_conc_seconds"); got != workers*iters {
		t.Fatalf("concurrent histogram count = %g, want %d", got, workers*iters)
	}
}

func TestFuncMetricsAndCollectHooks(t *testing.T) {
	r := New()
	ext := 0.0
	r.CounterFunc("test_fn_total", "h", func() float64 { return ext })
	g := r.Gauge("test_hooked", "h")
	r.OnCollect(func() { g.Set(42) })
	ext = 7
	s := r.Snapshot()
	if got := s.Total("test_fn_total"); got != 7 {
		t.Fatalf("func counter = %g, want 7", got)
	}
	if got := s.Total("test_hooked"); got != 42 {
		t.Fatalf("collect hook gauge = %g, want 42", got)
	}
}
