// Package obs is the zero-dependency observability core shared by every
// tier: a metrics registry (atomic counters, gauges, fixed-bucket
// histograms with p50/p95/p99 extraction), cross-process span tracing
// (IDs minted at the HTTP edge, propagated via the X-Thinair-Span
// header, ring-buffered per process), and the opt-in debug surfaces
// (pprof + /debug/trace).
//
// Cost model: every instrument is gated on its registry's enabled flag
// (one atomic load) and every method is nil-receiver safe, so an
// unplumbed or disabled path performs no allocation and no work beyond
// the gate check — proven by the AllocsPerRun gates in alloc_test.go.
// Handles are resolved once at setup (Registry.Counter, CounterVec.With)
// and cached by the caller; only registration takes locks.
package obs

import (
	"sync/atomic"
	"time"
)

// LatencyBuckets are the default histogram bounds for durations in
// seconds, spanning 50µs..10s — wide enough for an in-process pool draw
// and a cross-process stream range on the same scale.
var LatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are the default histogram bounds for byte sizes,
// spanning 64B..16MiB.
var SizeBuckets = []float64{
	64, 256, 1024, 4096, 16384, 65536, 262144, 1 << 20, 4 << 20, 16 << 20,
}

var defaultRegistry = New()

// Default returns the process-wide registry. Standalone daemons and
// exec-spawned workers use it; in-process workers get their own
// registry so a shared process never double-counts in the fleet merge.
func Default() *Registry { return defaultRegistry }

var defaultSpans = NewSpanLog(DefaultSpanCapacity)

// DefaultSpans returns the process-wide span ring buffer.
func DefaultSpans() *SpanLog { return defaultSpans }

// Counter is a monotonically increasing metric. The zero of everything
// useful: one atomic add when enabled, one atomic load when not.
type Counter struct {
	on *atomic.Bool
	v  atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value (float64, settable both ways).
type Gauge struct {
	on   *atomic.Bool
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.on.Load() {
		return
	}
	g.bits.Store(floatBits(v))
}

// Add adjusts the gauge by d (may be negative).
func (g *Gauge) Add(d float64) {
	if g == nil || !g.on.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: bounds are inclusive upper
// edges of each bucket, with an implicit +Inf bucket at the end. Observe
// is lock-free (linear scan over ≤ ~20 bounds plus two atomic ops).
type Histogram struct {
	on      *atomic.Bool
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.on.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil || !h.on.Load() {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// snapshot materializes the histogram counters.
func (h *Histogram) snapshot() *HistogramSnapshot {
	hs := &HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		hs.Counts[i] = c
		hs.Count += c
	}
	hs.Sum = bitsFloat(h.sumBits.Load())
	hs.refreshQuantiles()
	return hs
}
