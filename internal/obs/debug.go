package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// WriteSnapshotJSON serves a snapshot as an indented JSON body — the
// shape worker /ctl/metrics and the fleet merge endpoint exchange.
func WriteSnapshotJSON(w http.ResponseWriter, s Snapshot) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s)
}

// DebugMux builds the opt-in debug surface mounted on -debug-addr:
//
//	/debug/pprof/...   net/http/pprof profiles
//	/debug/trace       span ring as JSON (?span=ID filters)
//	/metrics           the registry in Prometheus text format
//	/metrics.json      the registry snapshot as JSON
//
// Either argument may be nil; the corresponding routes then serve
// empty data rather than being absent, so probes stay uniform.
func DebugMux(r *Registry, spans *SpanLog) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/trace", spans.Handler())
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.Snapshot().WriteProm(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, req *http.Request) {
		WriteSnapshotJSON(w, r.Snapshot())
	})
	return mux
}
