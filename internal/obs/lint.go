package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Lint runs a promlint-style validation over a Prometheus text
// exposition body and returns one message per problem found. It checks
// the rules our own endpoints promise: every sample belongs to a
// family announced by a # TYPE line, every # TYPE has a # HELP, names
// and label syntax are well-formed (including escape sequences),
// counters end in _total, and histogram samples use only the
// _bucket/_sum/_count suffixes with le labels on buckets.
func Lint(r io.Reader) []string {
	var problems []string
	addf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	types := make(map[string]string)
	helps := make(map[string]bool)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comment
			}
			if !validMetricName(name) {
				addf("line %d: invalid metric name %q in %s", ln, name, kind)
				continue
			}
			switch kind {
			case "HELP":
				helps[name] = true
			case "TYPE":
				switch rest {
				case TypeCounter, TypeGauge, TypeHistogram, "summary", "untyped":
				default:
					addf("line %d: unknown type %q for %s", ln, rest, name)
				}
				if _, dup := types[name]; dup {
					addf("line %d: duplicate # TYPE for %s", ln, name)
				}
				types[name] = rest
				if !helps[name] {
					addf("line %d: # TYPE %s has no preceding # HELP", ln, name)
				}
				if rest == TypeCounter && !strings.HasSuffix(name, "_total") {
					addf("line %d: counter %s should end in _total", ln, name)
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			addf("line %d: %v", ln, err)
			continue
		}
		if !validMetricName(name) {
			addf("line %d: invalid metric name %q", ln, name)
			continue
		}
		fam, suffix := name, ""
		if _, ok := types[fam]; !ok {
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, sfx)
				if base != name && types[base] != "" {
					fam, suffix = base, sfx
					break
				}
			}
		}
		typ, ok := types[fam]
		if !ok {
			addf("line %d: sample %s has no # TYPE", ln, name)
			continue
		}
		if suffix != "" && typ != TypeHistogram && typ != "summary" {
			addf("line %d: sample %s uses %s suffix but %s is a %s", ln, name, suffix, fam, typ)
		}
		if typ == TypeHistogram {
			switch suffix {
			case "_bucket":
				if _, ok := labels["le"]; !ok {
					addf("line %d: histogram bucket %s missing le label", ln, name)
				}
			case "_sum", "_count":
			default:
				addf("line %d: histogram %s exposes bare sample %s", ln, fam, name)
			}
		}
		if typ == TypeCounter && value < 0 {
			addf("line %d: counter %s has negative value %g", ln, name, value)
		}
	}
	if err := sc.Err(); err != nil {
		addf("read: %v", err)
	}
	return problems
}

func parseComment(line string) (kind, name, rest string, ok bool) {
	for _, k := range []string{"# HELP ", "# TYPE "} {
		if strings.HasPrefix(line, k) {
			body := line[len(k):]
			name, rest, _ = strings.Cut(body, " ")
			return strings.TrimSpace(k[2:6]), name, rest, name != ""
		}
	}
	return "", "", "", false
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || strings.Contains(name, ":") {
		return false
	}
	return validMetricName(name)
}

// parseSample parses `name{k="v",...} value [timestamp]`, honouring
// escape sequences inside label values.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			rest = strings.TrimLeft(rest, ",")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.Index(rest, "=")
			if eq < 0 || len(rest) <= eq+1 || rest[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed label in %q", line)
			}
			key := rest[:eq]
			if !validLabelName(key) {
				return "", nil, 0, fmt.Errorf("invalid label name %q in %q", key, line)
			}
			val, rem, perr := parseQuoted(rest[eq+1:])
			if perr != nil {
				return "", nil, 0, fmt.Errorf("%v in %q", perr, line)
			}
			labels[key] = val
			rest = rem
		}
	}
	rest = strings.TrimSpace(rest)
	valStr, _, _ := strings.Cut(rest, " ")
	value, err = strconv.ParseFloat(valStr, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q in %q", valStr, line)
	}
	return name, labels, value, nil
}

// parseQuoted consumes a double-quoted string with \\, \", and \n
// escapes, returning the decoded value and the remainder after the
// closing quote.
func parseQuoted(s string) (val, rest string, err error) {
	if s == "" || s[0] != '"' {
		return "", "", fmt.Errorf("expected quoted string")
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}
