package transport

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/radio"
)

// TestConcurrentSessionsWithObservers is the concurrency stress for the
// asynchronous runtime: several full multi-node sessions run
// simultaneously, each over its own ChanBus with a wire-level Observer
// goroutine attached (the cmd/thinair-keys deployment shape). Run under
// -race in CI, it guards the bus fan-out, the per-node goroutines and the
// observer's ingest path against data races; functionally it checks that
// every session still agrees on a secret and that every observer's
// certificate stays coherent.
func TestConcurrentSessionsWithObservers(t *testing.T) {
	const (
		sessions = 4
		n        = 3
	)
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			bus := NewChanBus(radio.Uniform{P: 0.4}, int64(100+s), 10)
			defer bus.Close()

			obsEp, err := bus.Endpoint(n)
			if err != nil {
				errs <- err
				return
			}
			obs := NewObserver(uint32(2000 + s))
			obsCtx, obsCancel := context.WithCancel(context.Background())
			obsDone := make(chan struct{})
			go func() {
				obs.Run(obsCtx, obsEp, time.Second)
				close(obsDone)
			}()

			cfg := baseNodeConfig(n)
			cfg.Session = uint32(2000 + s)
			cfg.Seed = int64(500 + s*101)
			results, err := RunGroup(context.Background(), bus, cfg, nil)
			obsCancel()
			<-obsDone
			if err != nil {
				errs <- err
				return
			}
			for i := 1; i < n; i++ {
				if string(results[i].Secret) != string(results[0].Secret) {
					t.Errorf("session %d: node %d secret differs", s, i)
				}
			}
			if obs.UnknownDims > obs.SecretDims {
				t.Errorf("session %d: observer certificate out of range (%d/%d)",
					s, obs.UnknownDims, obs.SecretDims)
			}
			if obs.SecretDims > 0 {
				if r := obs.Reliability(); r < 0 || r > 1 {
					t.Errorf("session %d: reliability = %v", s, r)
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestObserverShutdownDuringTraffic cancels the observer mid-session and
// closes the bus while nodes may still be transmitting — the teardown
// path a long-running key daemon exercises on every session boundary.
func TestObserverShutdownDuringTraffic(t *testing.T) {
	const n = 3
	bus := NewChanBus(radio.Uniform{P: 0.2}, 31, 10)
	defer bus.Close()
	obsEp, err := bus.Endpoint(n)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(777)
	obsCtx, obsCancel := context.WithCancel(context.Background())
	obsDone := make(chan struct{})
	go func() {
		obs.Run(obsCtx, obsEp, time.Second)
		close(obsDone)
	}()

	cfg := baseNodeConfig(n)
	done := make(chan error, 1)
	go func() {
		_, err := RunGroup(context.Background(), bus, cfg, nil)
		done <- err
	}()
	// Cancel the observer while the session is (very likely) mid-flight;
	// the session itself must be unaffected.
	time.Sleep(2 * time.Millisecond)
	obsCancel()
	<-obsDone
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
