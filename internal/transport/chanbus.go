package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/radio"
)

// ChanBus is an in-process broadcast domain. Data frames suffer
// per-receiver Bernoulli erasures drawn from an ErasureModel (with a slot
// clock that advances every SlotEvery data frames, mirroring the testbed's
// interference rotation); control frames are delivered reliably to every
// endpoint.
type ChanBus struct {
	model     radio.ErasureModel
	slotEvery int

	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[int]*chanEndpoint
	dataCount int
	slot      int
	closed    bool

	bits atomic.Int64
}

// NewChanBus creates a bus over the given erasure model. slotEvery <= 0
// disables the slot clock (slot stays 0).
func NewChanBus(model radio.ErasureModel, seed int64, slotEvery int) *ChanBus {
	return &ChanBus{
		model:     model,
		slotEvery: slotEvery,
		rng:       rand.New(rand.NewSource(seed)),
		endpoints: make(map[int]*chanEndpoint),
	}
}

// Endpoint implements Bus.
func (b *ChanBus) Endpoint(id int) (Endpoint, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrClosed
	}
	if ep, ok := b.endpoints[id]; ok {
		return ep, nil
	}
	ep := &chanEndpoint{bus: b, id: id, ch: make(chan Env, 4096)}
	b.endpoints[id] = ep
	return ep, nil
}

// BitsSent implements Bus.
func (b *ChanBus) BitsSent() int64 { return b.bits.Load() }

// Close implements Bus.
func (b *ChanBus) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for _, ep := range b.endpoints {
		close(ep.ch)
	}
	return nil
}

func (b *ChanBus) broadcast(from int, frame []byte, reliable bool) error {
	b.bits.Add(int64(len(frame)) * 8)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if !reliable && b.slotEvery > 0 {
		b.dataCount++
		if b.dataCount%b.slotEvery == 0 {
			b.slot++
		}
	}
	ids := make([]int, 0, len(b.endpoints))
	for id := range b.endpoints {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic erasure draws for a given seed
	for _, id := range ids {
		ep := b.endpoints[id]
		if id == from {
			continue
		}
		if !reliable {
			p := b.model.PErase(radio.NodeID(from), radio.NodeID(id), b.slot)
			if b.rng.Float64() < p {
				continue
			}
		}
		env := Env{From: from, Reliable: reliable, Frame: append([]byte(nil), frame...)}
		select {
		case ep.ch <- env:
		default:
			// A full inbox means the consumer stalled for thousands of
			// frames; treat as a fatal protocol bug rather than silently
			// dropping a reliable frame.
			return fmt.Errorf("transport: endpoint %d inbox overflow", id)
		}
	}
	return nil
}

type chanEndpoint struct {
	bus *ChanBus
	id  int
	ch  chan Env
}

func (e *chanEndpoint) ID() int { return e.id }

func (e *chanEndpoint) SendData(frame []byte) error {
	return e.bus.broadcast(e.id, frame, false)
}

func (e *chanEndpoint) SendCtrl(frame []byte) error {
	return e.bus.broadcast(e.id, frame, true)
}

func (e *chanEndpoint) Recv() <-chan Env { return e.ch }

func (e *chanEndpoint) Close() error { return nil }
