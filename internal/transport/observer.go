package transport

import (
	"context"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/eve"
	"repro/internal/gf"
	"repro/internal/matrix"
	"repro/internal/wire"
)

// Observer is a wire-level eavesdropper: it consumes raw frames from its
// own bus endpoint — data frames subject to the same erasures as anyone
// else, control frames in full — and rebuilds, per round, the linear
// knowledge an adversary accumulates, without any access to the engine's
// internal state. It is the distributed twin of the synchronous engine's
// Eve accounting and the honest way to evaluate the runtime: everything
// the observer knows came off the wire.
type Observer struct {
	Session uint32

	rounds map[uint16]*observerRound
	// SecretDims / UnknownDims accumulate the certificate over completed
	// rounds.
	SecretDims  int
	UnknownDims int
}

type observerRound struct {
	numX int
	x    map[uint32][]core.Sym
	ya   *wire.YAnnounce
	zs   []*wire.ZPacket
	sa   *wire.SAnnounce
	done bool
}

// NewObserver creates an observer for one session.
func NewObserver(session uint32) *Observer {
	return &Observer{Session: session, rounds: make(map[uint16]*observerRound)}
}

// Run consumes the endpoint until the context is cancelled, the idle
// timeout elapses with no traffic, or the bus closes. Call Finish to
// force evaluation of any still-open rounds.
func (o *Observer) Run(ctx context.Context, ep Endpoint, idle time.Duration) {
	if idle <= 0 {
		idle = 2 * time.Second
	}
	timer := time.NewTimer(idle)
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			o.Finish()
			return
		case <-timer.C:
			o.Finish()
			return
		case env, ok := <-ep.Recv():
			if !ok {
				o.Finish()
				return
			}
			o.Ingest(env)
			if !timer.Stop() {
				<-timer.C
			}
			timer.Reset(idle)
		}
	}
}

// Ingest processes one overheard frame. Authentication does not hide
// contents — a sealed frame is the plain frame plus a trailing tag — so
// the observer strips the tag when present, exactly as a real Eve would.
func (o *Observer) Ingest(env Env) {
	m, err := wire.Unmarshal(env.Frame)
	if err != nil && len(env.Frame) > auth.TagSize {
		m, err = wire.Unmarshal(env.Frame[:len(env.Frame)-auth.TagSize])
	}
	if err != nil {
		return // not a protocol frame
	}
	h := m.Hdr()
	if h.Session != o.Session {
		return
	}
	r := o.rounds[h.Round]
	if r == nil {
		r = &observerRound{x: make(map[uint32][]core.Sym)}
		o.rounds[h.Round] = r
	}
	switch mm := m.(type) {
	case *wire.XPacket:
		if len(mm.Payload)%2 == 0 {
			r.x[mm.Seq] = gf.Symbols16(mm.Payload)
			if int(mm.Seq) >= r.numX {
				r.numX = int(mm.Seq) + 1
			}
		}
	case *wire.Beacon:
		if mm.Kind == wire.BeaconEndOfX {
			r.numX = int(mm.Value)
		}
		if mm.Kind == wire.BeaconRoundAbort {
			r.done = true // nothing to evaluate: no secret
		}
	case *wire.YAnnounce:
		r.ya = mm
	case *wire.ZPacket:
		r.zs = append(r.zs, mm)
	case *wire.SAnnounce:
		r.sa = mm
		o.evaluate(r)
	}
}

// Finish evaluates any rounds that saw an s-announcement but were not yet
// scored (idempotent).
func (o *Observer) Finish() {
	for _, r := range o.rounds {
		if !r.done && r.sa != nil {
			o.evaluate(r)
		}
	}
}

// evaluate runs the rank certificate for one completed round.
func (o *Observer) evaluate(r *observerRound) {
	if r.done || r.ya == nil || r.sa == nil || r.numX == 0 {
		return
	}
	r.done = true
	f := core.Field()

	// Compose y over the x source space from the announcement.
	m := 0
	for _, cb := range r.ya.Classes {
		m += len(cb.Coeffs)
	}
	yox := matrix.New(f, m, r.numX)
	row := 0
	for _, cb := range r.ya.Classes {
		for _, coeffs := range cb.Coeffs {
			for c, id := range cb.XIDs {
				if int(id) < r.numX && c < len(coeffs) {
					yox.Set(row, int(id), coeffs[c])
				}
			}
			row++
		}
	}

	know := eve.NewKnowledge(f, r.numX)
	for seq, payload := range r.x {
		if int(seq) < r.numX {
			know.AddUnit(int(seq), payload)
		}
	}
	// One reusable composition row: each z/s coefficient vector is composed
	// over the x-space in a single fused multi-term kernel pass, and
	// AddCombo copies what it keeps.
	comp := make([]core.Sym, r.numX)
	yoxRows := yox.RowViews()
	for _, zp := range r.zs {
		if len(zp.Coeffs) != m || len(zp.Payload)%2 != 0 {
			continue
		}
		clear(comp)
		f.AddMulSlices(comp, yoxRows, zp.Coeffs)
		know.AddCombo(comp, gf.Symbols16(zp.Payload))
	}

	// Compose the secret rows straight into their matrix, skipping
	// malformed announcements.
	nsec := 0
	for _, sc := range r.sa.Coeffs {
		if len(sc) == m {
			nsec++
		}
	}
	if nsec == 0 {
		return
	}
	sm := matrix.New(f, nsec, r.numX)
	i := 0
	for _, sc := range r.sa.Coeffs {
		if len(sc) != m {
			continue
		}
		f.AddMulSlices(sm.Row(i), yoxRows, sc)
		i++
	}
	u := know.UnknownSecretDims(sm)
	o.SecretDims += nsec
	o.UnknownDims += u
}

// Reliability returns the paper's reliability metric over everything the
// observer overheard.
func (o *Observer) Reliability() float64 {
	return core.Reliability(o.SecretDims, o.UnknownDims)
}
