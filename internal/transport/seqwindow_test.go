package transport

import (
	"math/rand"
	"testing"
)

func TestSeqWindowDedup(t *testing.T) {
	var w seqWindow
	if w.observe(1) {
		t.Fatal("first observe(1) reported duplicate")
	}
	if !w.observe(1) {
		t.Fatal("second observe(1) not reported duplicate")
	}
	// Out-of-order arrivals inside the window.
	if w.observe(5) || w.observe(3) {
		t.Fatal("fresh in-window sequences reported duplicate")
	}
	if !w.observe(3) || !w.observe(5) {
		t.Fatal("repeated in-window sequences not reported duplicate")
	}
	if w.observe(4) {
		t.Fatal("unseen sequence below max reported duplicate")
	}
}

func TestSeqWindowSlides(t *testing.T) {
	var w seqWindow
	// A long monotone run: every first sight fresh, every replay dup,
	// and anything that slid below the window base answered as dup.
	for s := uint32(1); s <= 3*seqWindowSize; s++ {
		if w.observe(s) {
			t.Fatalf("fresh seq %d reported duplicate", s)
		}
		if !w.observe(s) {
			t.Fatalf("replayed seq %d not reported duplicate", s)
		}
	}
	if !w.observe(1) {
		t.Fatal("ancient seq 1 not reported duplicate")
	}
	if !w.observe(2 * seqWindowSize) {
		t.Fatal("below-base seq not reported duplicate")
	}
	// Sliding must not resurrect stale bits from a lap ago: jump far
	// ahead, then check sequences in the fresh part of the window.
	jump := w.max + seqWindowSize/2
	if w.observe(jump) {
		t.Fatal("jump target reported duplicate")
	}
	for s := jump - seqWindowSize/4; s < jump; s++ {
		if w.observe(s) {
			t.Fatalf("seq %d inside slid window reported duplicate (stale bit)", s)
		}
	}
}

func TestSeqWindowBigJump(t *testing.T) {
	var w seqWindow
	w.observe(7)
	big := uint32(100 * seqWindowSize)
	if w.observe(big) {
		t.Fatal("big jump reported duplicate")
	}
	if !w.observe(big) {
		t.Fatal("replay after big jump not reported duplicate")
	}
	// Slot that aliases seq 7 (same ring position, one lap later) must
	// read fresh after the full-window clear.
	alias := big - seqWindowSize + (7+seqWindowSize-big%seqWindowSize)%seqWindowSize
	if alias+seqWindowSize > big && alias != big && w.observe(alias) {
		t.Fatalf("aliased seq %d reported duplicate after full clear", alias)
	}
}

// TestSeqWindowMatchesMap cross-checks the window against the old
// unbounded map semantics over random in-window traffic: as long as a
// sequence is no further than seqWindowSize behind the newest (the ARQ
// invariant), the two must agree exactly.
func TestSeqWindowMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var w seqWindow
	seen := map[uint32]bool{}
	front := uint32(1)
	for i := 0; i < 20000; i++ {
		// Advance the front most of the time, replay a recent seq otherwise.
		var s uint32
		if rng.Intn(3) > 0 {
			front++
			s = front
		} else {
			back := uint32(rng.Intn(seqWindowSize - 8))
			if back >= front {
				back = front - 1
			}
			s = front - back
		}
		want := seen[s]
		seen[s] = true
		if got := w.observe(s); got != want {
			t.Fatalf("step %d: observe(%d) = %v, map says %v (front %d)", i, s, got, want, front)
		}
	}
}
