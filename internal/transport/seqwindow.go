package transport

// seqWindow deduplicates the control-frame sequence numbers of one sender
// in constant memory. The old implementation kept a `seen` map keyed on
// (sender, seq) for the life of the bus, which grows without bound on a
// long-lived session (the ROADMAP leak); this is its replacement on both
// the hub and the client endpoints.
//
// Correctness rests on what the ARQ can still retransmit. A sender
// retransmits a ctrl sequence only until it is acknowledged, and sequence
// numbers are allocated monotonically, so the lowest sequence number that
// can still arrive as a duplicate — the lowest unacked — trails the
// highest sequence observed by at most the sender's in-flight window
// (SendCtrl blocks per call; concurrent calls are bounded by the node
// count). The window therefore slides with the highest observed sequence:
// its base is a conservative stand-in for the lowest unacked sequence
// number, anything below it is long-acked and answered as a duplicate,
// and per-sequence state is kept only inside the window.
//
// Sequence numbers are 1-based and never wrap in practice (a session
// would need 2^32 control frames); wrap-around is not handled.

// seqWindowSize is the number of recent sequence numbers tracked per
// sender: comfortably above any in-flight ARQ window, and only 64 bytes
// of bitmap per sender.
const seqWindowSize = 512

type seqWindow struct {
	max  uint32 // highest sequence number observed
	bits [seqWindowSize / 64]uint64
}

func (w *seqWindow) get(s uint32) bool {
	i := s % seqWindowSize
	return w.bits[i/64]&(1<<(i%64)) != 0
}

func (w *seqWindow) set(s uint32) {
	i := s % seqWindowSize
	w.bits[i/64] |= 1 << (i % 64)
}

func (w *seqWindow) clear(s uint32) {
	i := s % seqWindowSize
	w.bits[i/64] &^= 1 << (i % 64)
}

// observe records seq and reports whether it had been seen before.
// Sequences at or below the sliding base (max - seqWindowSize) are
// reported as duplicates without consulting state: the ARQ guarantees
// they were delivered (and acked) long ago.
func (w *seqWindow) observe(seq uint32) bool {
	switch {
	case seq+seqWindowSize <= w.max:
		return true
	case seq > w.max:
		// Advance the window, invalidating the slots of every sequence
		// number that just slid inside it.
		if seq-w.max >= seqWindowSize {
			w.bits = [seqWindowSize / 64]uint64{}
		} else {
			for s := w.max + 1; s < seq; s++ {
				w.clear(s)
			}
		}
		w.max = seq
		w.set(seq)
		return false
	default:
		if w.get(seq) {
			return true
		}
		w.set(seq)
		return false
	}
}

// dedupSenders reports how many per-sender dedup windows the hub holds.
// Test hook: the soak test asserts this stays bounded by the number of
// senders — each window is fixed-size, so total dedup memory is
// O(senders), not O(control frames) as with the old seen map.
func (b *UDPBus) dedupSenders() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.seen)
}

// dedupSenders is the client-endpoint counterpart of the hub's test hook.
func (e *udpEndpoint) dedupSenders() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.seen)
}
