package transport

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/radio"
)

// UDPBus emulates the broadcast medium over loopback UDP sockets: every
// node dials a hub, data frames are fanned out with per-receiver erasures,
// and control frames ride a small ARQ (sequence numbers, per-receiver
// acknowledgments, retransmission timers) so the paper's "reliable
// broadcast" holds over an actually lossy transport.
//
// Datagram layout (hub <-> client), big endian:
//
//	byte 0     kind (hello, helloAck, data, ctrl, ctrlAck, ack)
//	bytes 1-2  node id
//	bytes 3-6  sequence number
//	bytes 7+   frame payload
type UDPBus struct {
	model     radio.ErasureModel
	slotEvery int

	conn *net.UDPConn

	mu        sync.Mutex
	rng       *rand.Rand
	addrs     map[int]*net.UDPAddr
	pending   map[pendingKey]*pendingCtrl
	seen      map[int]*seqWindow // per-sender ctrl dedup, constant memory
	eps       []*udpEndpoint     // every endpoint this bus handed out
	dataCount int
	slot      int
	closed    bool

	bits atomic.Int64
	wg   sync.WaitGroup
}

type pendingKey struct {
	from int
	seq  uint32
}

type pendingCtrl struct {
	frame   []byte
	waiting map[int]bool // receivers that have not acked yet
	tries   int
}

const (
	kindHello    = 1
	kindHelloAck = 2
	kindData     = 3
	kindCtrl     = 4
	kindCtrlAck  = 5 // hub -> sender: ctrl accepted
	kindAck      = 6 // receiver -> hub: ctrl delivered
	udpHeader    = 7
)

// Tunables for the ARQ. Aggressive values are fine on loopback.
const (
	retransmitEvery = 10 * time.Millisecond
	maxRetries      = 200
)

// NewUDPBus starts a hub on a loopback UDP port.
func NewUDPBus(model radio.ErasureModel, seed int64, slotEvery int) (*UDPBus, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("transport: hub listen: %w", err)
	}
	b := &UDPBus{
		model:     model,
		slotEvery: slotEvery,
		conn:      conn,
		rng:       rand.New(rand.NewSource(seed)),
		addrs:     make(map[int]*net.UDPAddr),
		pending:   make(map[pendingKey]*pendingCtrl),
		seen:      make(map[int]*seqWindow),
	}
	b.wg.Add(2)
	go b.readLoop()
	go b.retransmitLoop()
	return b, nil
}

// Addr returns the hub's UDP address.
func (b *UDPBus) Addr() *net.UDPAddr { return b.conn.LocalAddr().(*net.UDPAddr) }

// BitsSent implements Bus.
func (b *UDPBus) BitsSent() int64 { return b.bits.Load() }

// Close implements Bus. It tears down the hub socket AND every endpoint
// the bus handed out: a client endpoint blocks in a read on its own
// loopback socket, so only closing the hub would leave one goroutine and
// one file descriptor stranded per endpoint — the lifecycle bug a
// long-running multi-session daemon hits first.
func (b *UDPBus) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	eps := append([]*udpEndpoint(nil), b.eps...)
	b.mu.Unlock()
	err := b.conn.Close()
	for _, ep := range eps {
		ep.Close()
	}
	b.wg.Wait()
	return err
}

func (b *UDPBus) readLoop() {
	defer b.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, addr, err := b.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		if n < udpHeader {
			continue
		}
		kind := buf[0]
		from := int(binary.BigEndian.Uint16(buf[1:3]))
		seq := binary.BigEndian.Uint32(buf[3:7])
		payload := buf[udpHeader:n]
		switch kind {
		case kindHello:
			b.mu.Lock()
			b.addrs[from] = addr
			b.mu.Unlock()
			b.send(addr, kindHelloAck, from, 0, nil)
		case kindData:
			b.fanoutData(from, payload)
		case kindCtrl:
			b.acceptCtrl(from, seq, payload)
		case kindAck:
			if len(payload) < 2 {
				continue
			}
			b.mu.Lock()
			key := pendingKey{from: int(binary.BigEndian.Uint16(payload[0:2])), seq: seq}
			if p, ok := b.pending[key]; ok {
				delete(p.waiting, from)
				if len(p.waiting) == 0 {
					delete(b.pending, key)
				}
			}
			b.mu.Unlock()
		}
	}
}

func (b *UDPBus) fanoutData(from int, frame []byte) {
	b.bits.Add(int64(len(frame)) * 8)
	b.mu.Lock()
	if b.slotEvery > 0 {
		b.dataCount++
		if b.dataCount%b.slotEvery == 0 {
			b.slot++
		}
	}
	type dst struct {
		id   int
		addr *net.UDPAddr
	}
	ids := make([]int, 0, len(b.addrs))
	for id := range b.addrs {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic erasure draws for a given seed
	var deliver []dst
	for _, id := range ids {
		if id == from {
			continue
		}
		p := b.model.PErase(radio.NodeID(from), radio.NodeID(id), b.slot)
		if b.rng.Float64() >= p {
			deliver = append(deliver, dst{id, b.addrs[id]})
		}
	}
	b.mu.Unlock()
	for _, d := range deliver {
		b.send(d.addr, kindData, from, 0, frame)
	}
}

func (b *UDPBus) acceptCtrl(from int, seq uint32, frame []byte) {
	key := pendingKey{from: from, seq: seq}
	b.mu.Lock()
	senderAddr := b.addrs[from]
	w := b.seen[from]
	if w == nil {
		w = &seqWindow{}
		b.seen[from] = w
	}
	if w.observe(seq) {
		b.mu.Unlock()
		if senderAddr != nil {
			b.send(senderAddr, kindCtrlAck, from, seq, nil) // duplicate: re-ack
		}
		return
	}
	b.bits.Add(int64(len(frame)) * 8)
	p := &pendingCtrl{frame: append([]byte(nil), frame...), waiting: map[int]bool{}}
	var deliver []*net.UDPAddr
	for id, addr := range b.addrs {
		if id == from {
			continue
		}
		p.waiting[id] = true
		deliver = append(deliver, addr)
	}
	if len(p.waiting) > 0 {
		b.pending[key] = p
	}
	b.mu.Unlock()
	if senderAddr != nil {
		b.send(senderAddr, kindCtrlAck, from, seq, nil)
	}
	for _, addr := range deliver {
		b.send(addr, kindCtrl, from, seq, frame)
	}
}

func (b *UDPBus) retransmitLoop() {
	defer b.wg.Done()
	tick := time.NewTicker(retransmitEvery)
	defer tick.Stop()
	for range tick.C {
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return
		}
		type rtx struct {
			addr  *net.UDPAddr
			from  int
			seq   uint32
			frame []byte
		}
		var out []rtx
		for key, p := range b.pending {
			p.tries++
			if p.tries > maxRetries {
				delete(b.pending, key) // receiver is gone; give up
				continue
			}
			for id := range p.waiting {
				if addr, ok := b.addrs[id]; ok {
					out = append(out, rtx{addr: addr, from: key.from, seq: key.seq, frame: p.frame})
				}
			}
		}
		b.mu.Unlock()
		for _, r := range out {
			b.send(r.addr, kindCtrl, r.from, r.seq, r.frame)
		}
	}
}

func (b *UDPBus) send(addr *net.UDPAddr, kind byte, from int, seq uint32, payload []byte) {
	msg := make([]byte, udpHeader+len(payload))
	msg[0] = kind
	binary.BigEndian.PutUint16(msg[1:3], uint16(from))
	binary.BigEndian.PutUint32(msg[3:7], seq)
	copy(msg[udpHeader:], payload)
	_, _ = b.conn.WriteToUDP(msg, addr) // best effort; ARQ covers ctrl
}

// Endpoint implements Bus: it dials the hub, performs the hello handshake
// and starts the client reader.
func (b *UDPBus) Endpoint(id int) (Endpoint, error) {
	b.mu.Lock()
	closed := b.closed
	b.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	conn, err := net.DialUDP("udp4", nil, b.Addr())
	if err != nil {
		return nil, fmt.Errorf("transport: dial hub: %w", err)
	}
	ep := &udpEndpoint{
		id:    id,
		conn:  conn,
		ch:    make(chan Env, 4096),
		acked: make(map[uint32]chan struct{}),
		seen:  make(map[int]*seqWindow),
	}
	ep.helloDone = make(chan struct{})
	go ep.readLoop()
	// Hello with retries until acknowledged.
	for i := 0; i < maxRetries; i++ {
		ep.write(kindHello, 0, nil)
		select {
		case <-ep.helloDone:
			b.mu.Lock()
			if b.closed {
				b.mu.Unlock()
				ep.Close()
				return nil, ErrClosed
			}
			b.eps = append(b.eps, ep)
			b.mu.Unlock()
			return ep, nil
		case <-time.After(retransmitEvery):
		}
	}
	conn.Close()
	return nil, fmt.Errorf("transport: node %d hello timed out", id)
}

type udpEndpoint struct {
	id   int
	conn *net.UDPConn
	ch   chan Env
	seq  atomic.Uint32

	mu        sync.Mutex
	acked     map[uint32]chan struct{}
	seen      map[int]*seqWindow // per-sender ctrl dedup, constant memory
	helloOnce sync.Once
	helloDone chan struct{}
	closed    bool
}

func (e *udpEndpoint) ID() int { return e.id }

func (e *udpEndpoint) write(kind byte, seq uint32, payload []byte) {
	msg := make([]byte, udpHeader+len(payload))
	msg[0] = kind
	binary.BigEndian.PutUint16(msg[1:3], uint16(e.id))
	binary.BigEndian.PutUint32(msg[3:7], seq)
	copy(msg[udpHeader:], payload)
	_, _ = e.conn.Write(msg)
}

func (e *udpEndpoint) SendData(frame []byte) error {
	e.write(kindData, 0, frame)
	return nil
}

// SendCtrl submits the frame to the hub and blocks until the hub has
// accepted it (client->hub hop is itself retransmitted), after which the
// hub's ARQ guarantees delivery to every registered endpoint.
func (e *udpEndpoint) SendCtrl(frame []byte) error {
	seq := e.seq.Add(1)
	done := make(chan struct{})
	e.mu.Lock()
	e.acked[seq] = done
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.acked, seq)
		e.mu.Unlock()
	}()
	for i := 0; i < maxRetries; i++ {
		e.write(kindCtrl, seq, frame)
		select {
		case <-done:
			return nil
		case <-time.After(retransmitEvery):
		}
	}
	return fmt.Errorf("transport: ctrl seq %d not accepted by hub", seq)
}

func (e *udpEndpoint) Recv() <-chan Env { return e.ch }

// Close shuts the client socket down; the read loop observes the error
// and closes the Recv channel (exactly once), so receivers always see a
// channel close regardless of who initiated the teardown.
func (e *udpEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	return e.conn.Close()
}

func (e *udpEndpoint) readLoop() {
	defer close(e.ch)
	buf := make([]byte, 65536)
	for {
		n, err := e.conn.Read(buf)
		if err != nil {
			e.mu.Lock()
			e.closed = true
			e.mu.Unlock()
			return
		}
		if n < udpHeader {
			continue
		}
		kind := buf[0]
		from := int(binary.BigEndian.Uint16(buf[1:3]))
		seq := binary.BigEndian.Uint32(buf[3:7])
		payload := append([]byte(nil), buf[udpHeader:n]...)
		switch kind {
		case kindHelloAck:
			e.helloOnce.Do(func() { close(e.helloDone) })
		case kindCtrlAck:
			e.mu.Lock()
			if ch, ok := e.acked[seq]; ok {
				close(ch)
				delete(e.acked, seq)
			}
			e.mu.Unlock()
		case kindData:
			select {
			case e.ch <- Env{From: from, Reliable: false, Frame: payload}:
			default:
			}
		case kindCtrl:
			// Ack to the hub, dedup, deliver once.
			ackPayload := make([]byte, 2)
			binary.BigEndian.PutUint16(ackPayload, uint16(from))
			e.write(kindAck, seq, ackPayload)
			e.mu.Lock()
			w := e.seen[from]
			if w == nil {
				w = &seqWindow{}
				e.seen[from] = w
			}
			dup := w.observe(seq)
			e.mu.Unlock()
			if !dup {
				select {
				case e.ch <- Env{From: from, Reliable: true, Frame: payload}:
				default:
				}
			}
		}
	}
}
