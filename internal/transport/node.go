package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/gf"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/wire"
)

// NodeConfig parameterizes one protocol node in the asynchronous runtime.
type NodeConfig struct {
	core.Config
	// Self is this node's terminal index (0..Terminals-1).
	Self int
	// Session identifies the session in message headers.
	Session uint32
	// Chain, when non-nil, authenticates all control frames (active-Eve
	// defense) and is ratcheted with each round secret. All group members
	// must share the same bootstrap.
	Chain *auth.KeyChain
	// Timeout bounds each wait (for acks, announcements, ...). 0 means
	// 10 seconds.
	Timeout time.Duration
	// FirstRound offsets the round numbering: the session runs rounds
	// FirstRound .. FirstRound+Rounds-1. A long-lived daemon re-enters the
	// engine for key-refresh batches on the same bus and session id; the
	// monotone round numbers keep stale frames from a previous batch
	// filtered by the ordinary round check. Round numbers live in a uint16
	// on the wire, so FirstRound+Rounds must stay <= 65536.
	FirstRound int
	// Scratches, when non-nil, supplies caller-pinned round scratch for
	// each terminal: RunNode with Self=i reuses Scratches[i] instead of a
	// per-call zero scratch, so a daemon re-entering the engine batch
	// after batch keeps its decode buffers warm across batches. Entries
	// must not be shared between concurrently running nodes.
	Scratches []*core.RoundScratch
}

// NodeResult is what one node took away from a session.
type NodeResult struct {
	// Secret is the concatenated group secret across productive rounds.
	Secret []byte
	// Rounds is the number of rounds executed; Productive counts rounds
	// that yielded secret bits.
	Rounds     int
	Productive int
	// AuthRejected counts control frames dropped by tag verification.
	AuthRejected int
}

// RunNode executes a full session on one endpoint. Every group member
// must run with an identical core.Config (the schedule — leaders, rounds,
// packet counts — is deterministic given the config).
func RunNode(ctx context.Context, ep Endpoint, cfg NodeConfig) (*NodeResult, error) {
	if err := cfg.Config.Validate(); err != nil {
		return nil, err
	}
	if cfg.Estimator.NeedsOracle() {
		return nil, errors.New("transport: oracle estimators are analysis-only and cannot run distributed")
	}
	if cfg.Self < 0 || cfg.Self >= cfg.Terminals {
		return nil, fmt.Errorf("transport: self index %d out of range", cfg.Self)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.FirstRound < 0 || cfg.FirstRound+cfg.Rounds > 1<<16 {
		return nil, fmt.Errorf("transport: rounds %d..%d outside the uint16 wire range",
			cfg.FirstRound, cfg.FirstRound+cfg.Rounds-1)
	}
	n := &node{cfg: cfg, ep: ep, res: &NodeResult{}}
	if cfg.Scratches != nil && cfg.Self < len(cfg.Scratches) && cfg.Scratches[cfg.Self] != nil {
		n.scratch = cfg.Scratches[cfg.Self]
	} else {
		n.scratch = new(core.RoundScratch)
	}
	// The distributed runtime shares the in-process engine's round-timing
	// family: a worker's rounds land in the same fleet histogram whether
	// the session runs lockstep or over a bus. Resolved once per call;
	// nil (no registry) keeps the loop clock-free.
	var roundLat *obs.Histogram
	if cfg.Obs.Enabled() {
		roundLat = cfg.Obs.Histogram("thinaird_engine_round_seconds",
			"Wall time of one protocol round (per node running the engine).", obs.LatencyBuckets)
	}
	timed := roundLat != nil
	for round := cfg.FirstRound; round < cfg.FirstRound+cfg.Rounds; round++ {
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		leader := 0
		if cfg.Rotate {
			leader = round % cfg.Terminals
		}
		var err error
		if leader == cfg.Self {
			err = n.leaderRound(ctx, round)
		} else {
			err = n.terminalRound(ctx, round, leader)
		}
		if err != nil {
			return nil, fmt.Errorf("transport: node %d round %d: %w", cfg.Self, round, err)
		}
		if timed {
			roundLat.ObserveSince(t0)
		}
		n.res.Rounds++
	}
	return n.res, nil
}

type node struct {
	cfg     NodeConfig
	ep      Endpoint
	res     *NodeResult
	backlog []Env
	// scratch carries the terminal-side round buffers across the session's
	// rounds (and, when pinned via NodeConfig.Scratches, across batches),
	// so a long-lived daemon node combines packets without per-round
	// allocation churn.
	scratch *core.RoundScratch
}

func (n *node) header(round int) wire.Header {
	return wire.Header{From: uint8(n.cfg.Self), Session: n.cfg.Session, Round: uint16(round)}
}

// sendCtrl seals (if authenticated) and broadcasts a control message.
func (n *node) sendCtrl(msg wire.Message) error {
	frame := wire.Marshal(msg)
	if n.cfg.Chain != nil {
		frame = n.cfg.Chain.Seal(frame)
	}
	return n.ep.SendCtrl(frame)
}

// next returns the next message for this session/round matching accept,
// buffering everything else that is still relevant (future rounds).
func (n *node) next(ctx context.Context, round int, accept func(wire.Message) bool) (wire.Message, error) {
	for i, env := range n.backlog {
		if m := n.decode(env, round); m != nil && accept(m) {
			n.backlog = append(n.backlog[:i], n.backlog[i+1:]...)
			return m, nil
		}
	}
	deadline := time.NewTimer(n.cfg.Timeout)
	defer deadline.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-deadline.C:
			return nil, fmt.Errorf("timed out waiting for message")
		case env, ok := <-n.ep.Recv():
			if !ok {
				return nil, ErrClosed
			}
			m := n.decode(env, round)
			if m == nil {
				continue
			}
			if accept(m) {
				return m, nil
			}
			if int(m.Hdr().Round) >= round {
				n.backlog = append(n.backlog, env)
			}
		}
	}
}

// decode authenticates (control only), parses and filters a frame.
// It returns nil for frames to drop (stale, foreign, or forged).
func (n *node) decode(env Env, round int) wire.Message {
	frame := env.Frame
	if env.Reliable && n.cfg.Chain != nil {
		open, err := n.cfg.Chain.Open(frame)
		if err != nil {
			n.res.AuthRejected++
			return nil
		}
		frame = open
	}
	m, err := wire.Unmarshal(frame)
	if err != nil {
		return nil
	}
	h := m.Hdr()
	if h.Session != n.cfg.Session || int(h.Round) < round {
		return nil
	}
	return m
}

func (n *node) ratchet(secret []byte) {
	if n.cfg.Chain != nil {
		n.cfg.Chain.Ratchet(secret)
	}
}

func (n *node) leaderRound(ctx context.Context, round int) error {
	cfg := n.cfg
	h := n.header(round)

	// Phase 1 step 1: broadcast fresh x-packets.
	rng := rand.New(rand.NewSource(cfg.Seed + int64(round)*65537 + int64(cfg.Self)))
	batch := packet.NewBatch(rng, cfg.XPerRound, cfg.PayloadBytes)
	xSym := make([][]core.Sym, cfg.XPerRound)
	for i, pkt := range batch {
		xSym[i] = gf.Symbols16(pkt.Payload)
		xh := h
		xh.Type = wire.TypeX
		if err := n.ep.SendData(wire.Marshal(&wire.XPacket{Header: xh, Seq: uint32(pkt.ID), Payload: pkt.Payload})); err != nil {
			return err
		}
	}
	bh := h
	bh.Type = wire.TypeBeacon
	if err := n.sendCtrl(&wire.Beacon{Header: bh, Kind: wire.BeaconEndOfX, Value: uint32(cfg.XPerRound)}); err != nil {
		return err
	}

	// Phase 1 step 2: collect every terminal's reception report.
	recv := make([]*packet.IDSet, cfg.Terminals)
	got := 0
	for got < cfg.Terminals-1 {
		m, err := n.next(ctx, round, func(m wire.Message) bool {
			ar, ok := m.(*wire.AckReport)
			return ok && int(m.Hdr().Round) == round && recvSlotFree(recv, int(ar.From), cfg.Self)
		})
		if err != nil {
			return fmt.Errorf("collecting ack reports (%d/%d): %w", got, cfg.Terminals-1, err)
		}
		ar := m.(*wire.AckReport)
		recv[ar.From] = packet.SetFromWords(ar.Bitmap)
		got++
	}
	recv[cfg.Self] = fullIDs(cfg.XPerRound)

	// Plan the round.
	ectx := &core.EstimatorContext{
		Terminals: cfg.Terminals,
		Leader:    cfg.Self,
		NumX:      cfg.XPerRound,
		Recv:      recv,
		Classes:   core.BuildClasses(cfg.Terminals, cfg.Self, cfg.XPerRound, recv),
	}
	ectx.Classes = cfg.Pooling.Pools(ectx)
	plan := core.BuildPlan(ectx, cfg.Estimator)
	if plan.L == 0 {
		ab := h
		ab.Type = wire.TypeBeacon
		return n.sendCtrl(&wire.Beacon{Header: ab, Kind: wire.BeaconRoundAbort})
	}

	// Phases 1.3-2.3: announce, repair, amplify.
	lr := core.ComputeLeaderRound(plan, xSym)
	if err := n.sendCtrl(core.BuildYAnnounce(h, plan)); err != nil {
		return err
	}
	for _, zp := range core.BuildZPackets(h, plan, lr.Z) {
		if err := n.sendCtrl(zp); err != nil {
			return err
		}
	}
	if err := n.sendCtrl(core.BuildSAnnounce(h, plan)); err != nil {
		return err
	}
	secret := core.SecretBytes(lr.Secret)
	n.res.Secret = append(n.res.Secret, secret...)
	n.res.Productive++
	n.ratchet(secret)
	return nil
}

func (n *node) terminalRound(ctx context.Context, round, leader int) error {
	// Phase 1 step 1: collect x-packets until the end-of-X beacon.
	xPayloads := make(map[packet.ID][]core.Sym)
	numX := -1
	for numX < 0 {
		m, err := n.next(ctx, round, func(m wire.Message) bool {
			if int(m.Hdr().Round) != round || int(m.Hdr().From) != leader {
				return false
			}
			switch mm := m.(type) {
			case *wire.XPacket:
				return true
			case *wire.Beacon:
				return mm.Kind == wire.BeaconEndOfX
			}
			return false
		})
		if err != nil {
			return fmt.Errorf("collecting x-packets: %w", err)
		}
		switch mm := m.(type) {
		case *wire.XPacket:
			if len(mm.Payload)%2 == 0 {
				xPayloads[packet.ID(mm.Seq)] = gf.Symbols16(mm.Payload)
			}
		case *wire.Beacon:
			numX = int(mm.Value)
		}
	}

	// Phase 1 step 2: report receptions.
	mine := packet.NewIDSet(numX)
	for id := range xPayloads {
		if int(id) < numX {
			mine.Add(id)
		}
	}
	ah := n.header(round)
	ah.Type = wire.TypeAck
	if err := n.sendCtrl(&wire.AckReport{Header: ah, NumX: uint32(numX), Bitmap: mine.Words()}); err != nil {
		return err
	}

	// Wait for the round outcome: abort, or Y announcement followed by
	// z-packets and the s announcement (any interleaving).
	var ya *wire.YAnnounce
	var sa *wire.SAnnounce
	var zs []*wire.ZPacket
	for sa == nil {
		m, err := n.next(ctx, round, func(m wire.Message) bool {
			if int(m.Hdr().Round) != round || int(m.Hdr().From) != leader {
				return false
			}
			switch mm := m.(type) {
			case *wire.YAnnounce, *wire.ZPacket, *wire.SAnnounce:
				return true
			case *wire.Beacon:
				return mm.Kind == wire.BeaconRoundAbort
			}
			return false
		})
		if err != nil {
			return fmt.Errorf("waiting for round outcome: %w", err)
		}
		switch mm := m.(type) {
		case *wire.Beacon:
			return nil // round aborted: no secret
		case *wire.YAnnounce:
			ya = mm
		case *wire.ZPacket:
			zs = append(zs, mm)
		case *wire.SAnnounce:
			sa = mm
		}
	}
	if ya == nil {
		return errors.New("s-announcement before y-announcement")
	}
	// The expected z count is M - L; wait for stragglers (the ARQ may
	// deliver out of order).
	m := 0
	for _, cb := range ya.Classes {
		m += len(cb.Coeffs)
	}
	want := m - len(sa.Coeffs)
	for len(zs) < want {
		msg, err := n.next(ctx, round, func(msg wire.Message) bool {
			zp, ok := msg.(*wire.ZPacket)
			return ok && int(msg.Hdr().Round) == round && int(msg.Hdr().From) == leader && !hasZ(zs, zp.Index)
		})
		if err != nil {
			return fmt.Errorf("collecting z-packets (%d/%d): %w", len(zs), want, err)
		}
		zs = append(zs, msg.(*wire.ZPacket))
	}

	secretRows, err := core.ComputeTerminalSecretInto(n.scratch, xPayloads, ya, zs, sa)
	if err != nil {
		return err
	}
	secret := core.SecretBytes(secretRows)
	n.res.Secret = append(n.res.Secret, secret...)
	n.res.Productive++
	n.ratchet(secret)
	return nil
}

func hasZ(zs []*wire.ZPacket, idx uint16) bool {
	for _, z := range zs {
		if z.Index == idx {
			return true
		}
	}
	return false
}

func recvSlotFree(recv []*packet.IDSet, from, self int) bool {
	return from >= 0 && from < len(recv) && from != self && recv[from] == nil
}

func fullIDs(n int) *packet.IDSet {
	s := packet.NewIDSet(n)
	for i := 0; i < n; i++ {
		s.Add(packet.ID(i))
	}
	return s
}

// RunGroup is a convenience coordinator: it attaches Terminals endpoints
// to the bus and runs every node concurrently, returning the per-node
// results. All nodes must agree on the secret; the error reports the
// first divergence.
func RunGroup(ctx context.Context, bus Bus, cfg NodeConfig, chains []*auth.KeyChain) ([]*NodeResult, error) {
	if err := cfg.Config.Validate(); err != nil {
		return nil, err
	}
	// Register every endpoint BEFORE any node transmits: a broadcast
	// domain only delivers to attached receivers, and the first leader
	// starts sending immediately.
	eps := make([]Endpoint, cfg.Terminals)
	for i := 0; i < cfg.Terminals; i++ {
		ep, err := bus.Endpoint(i)
		if err != nil {
			return nil, err
		}
		eps[i] = ep
	}
	return RunGroupOn(ctx, eps, cfg, chains)
}

// RunGroupOn runs one session batch over endpoints the caller already
// holds — the re-entry path for long-lived daemons that keep a bus and
// its endpoints alive across many key-refresh batches (advance
// cfg.FirstRound between calls). eps[i] runs as terminal i.
func RunGroupOn(ctx context.Context, eps []Endpoint, cfg NodeConfig, chains []*auth.KeyChain) ([]*NodeResult, error) {
	if err := cfg.Config.Validate(); err != nil {
		return nil, err
	}
	if len(eps) != cfg.Terminals {
		return nil, fmt.Errorf("transport: %d endpoints for %d terminals", len(eps), cfg.Terminals)
	}
	type outcome struct {
		idx int
		res *NodeResult
		err error
	}
	// A failing node cancels its peers, and EVERY node is drained before
	// returning: the caller re-enters this function on the same endpoints
	// (and pinned scratches) for the next batch, so no straggler goroutine
	// may still be touching them after an error return.
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, cfg.Terminals)
	for i := 0; i < cfg.Terminals; i++ {
		nc := cfg
		nc.Self = i
		if chains != nil {
			nc.Chain = chains[i]
		}
		go func(idx int, ep Endpoint, nc NodeConfig) {
			res, err := RunNode(gctx, ep, nc)
			ch <- outcome{idx: idx, res: res, err: err}
		}(i, eps[i], nc)
	}
	results := make([]*NodeResult, cfg.Terminals)
	var firstErr error
	for i := 0; i < cfg.Terminals; i++ {
		o := <-ch
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
				cancel()
			}
			continue
		}
		results[o.idx] = o.res
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for i := 1; i < cfg.Terminals; i++ {
		if string(results[i].Secret) != string(results[0].Secret) {
			return results, fmt.Errorf("transport: node %d derived a different secret", i)
		}
	}
	return results, nil
}
