package transport

import (
	"context"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/radio"
)

func baseNodeConfig(n int) NodeConfig {
	return NodeConfig{
		Config: core.Config{
			Terminals: n, XPerRound: 80, PayloadBytes: 16,
			Rounds: 2, Rotate: true, Seed: 42,
		},
		Session: 777,
		Timeout: 5 * time.Second,
	}
}

func TestChanBusBasics(t *testing.T) {
	bus := NewChanBus(radio.Uniform{P: 0}, 1, 0)
	defer bus.Close()
	a, err := bus.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bus.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != 0 || b.ID() != 1 {
		t.Fatal("ids wrong")
	}
	if err := a.SendData([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := a.SendCtrl([]byte("ctrl")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case env := <-b.Recv():
			if env.From != 0 {
				t.Fatalf("from = %d", env.From)
			}
		case <-time.After(time.Second):
			t.Fatal("timeout")
		}
	}
	if bus.BitsSent() != int64(len("hello")+len("ctrl"))*8 {
		t.Fatalf("bits = %d", bus.BitsSent())
	}
	// Same id returns the same endpoint.
	a2, _ := bus.Endpoint(0)
	if a2 != a {
		t.Fatal("endpoint not reused")
	}
}

func TestChanBusErasures(t *testing.T) {
	bus := NewChanBus(radio.Uniform{P: 1}, 1, 0) // everything erased
	defer bus.Close()
	a, _ := bus.Endpoint(0)
	b, _ := bus.Endpoint(1)
	a.SendData([]byte("gone"))
	a.SendCtrl([]byte("kept")) // reliable survives p=1
	select {
	case env := <-b.Recv():
		if !env.Reliable || string(env.Frame) != "kept" {
			t.Fatalf("got %+v", env)
		}
	case <-time.After(time.Second):
		t.Fatal("reliable frame lost")
	}
}

func TestChanBusClosed(t *testing.T) {
	bus := NewChanBus(radio.Uniform{}, 1, 0)
	a, _ := bus.Endpoint(0)
	bus.Close()
	if err := a.SendData([]byte("x")); err == nil {
		t.Fatal("send on closed bus accepted")
	}
	if _, err := bus.Endpoint(5); err == nil {
		t.Fatal("endpoint on closed bus accepted")
	}
	bus.Close() // idempotent
}

func TestRunGroupOverChanBus(t *testing.T) {
	const n = 4
	bus := NewChanBus(radio.Uniform{P: 0.4}, 7, 10)
	defer bus.Close()
	cfg := baseNodeConfig(n)
	results, err := RunGroup(context.Background(), bus, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("results = %d", len(results))
	}
	if len(results[0].Secret) == 0 {
		t.Fatal("no secret generated")
	}
	for i := 1; i < n; i++ {
		if string(results[i].Secret) != string(results[0].Secret) {
			t.Fatalf("node %d secret differs", i)
		}
	}
	if results[0].Rounds != cfg.Rounds {
		t.Fatalf("rounds = %d", results[0].Rounds)
	}
}

func TestRunGroupWithWireLevelObserver(t *testing.T) {
	const n = 3
	bus := NewChanBus(radio.Uniform{P: 0.5}, 11, 10)
	defer bus.Close()
	obsEp, err := bus.Endpoint(n) // Eve's tap
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(777)
	obsCtx, obsCancel := context.WithCancel(context.Background())
	obsDone := make(chan struct{})
	go func() {
		obs.Run(obsCtx, obsEp, 500*time.Millisecond)
		close(obsDone)
	}()

	cfg := baseNodeConfig(n)
	results, err := RunGroup(context.Background(), bus, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	obsCancel()
	<-obsDone

	if len(results[0].Secret) > 0 && obs.SecretDims == 0 {
		t.Fatal("observer saw no secret rounds despite productive session")
	}
	if obs.UnknownDims > obs.SecretDims {
		t.Fatal("certificate out of range")
	}
	if obs.SecretDims > 0 {
		r := obs.Reliability()
		if r < 0 || r > 1 {
			t.Fatalf("reliability = %v", r)
		}
	}
}

func TestRunGroupAuthenticated(t *testing.T) {
	const n = 3
	bus := NewChanBus(radio.Uniform{P: 0.3}, 5, 10)
	defer bus.Close()
	chains := make([]*auth.KeyChain, n)
	for i := range chains {
		chains[i] = auth.NewKeyChain([]byte("group bootstrap"))
	}
	cfg := baseNodeConfig(n)
	results, err := RunGroup(context.Background(), bus, cfg, chains)
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].Secret) == 0 {
		t.Skip("no secret this seed")
	}
	// All chains ratcheted in lockstep.
	for i := 1; i < n; i++ {
		if chains[i].Epoch() != chains[0].Epoch() {
			t.Fatalf("chain %d epoch %d != %d", i, chains[i].Epoch(), chains[0].Epoch())
		}
	}
	if chains[0].Epoch() == 0 {
		t.Fatal("chains never ratcheted")
	}
}

func TestAuthenticatedGroupRejectsForgery(t *testing.T) {
	// An active Eve injects a forged ack report claiming she is terminal
	// 1 with a full reception set; authenticated nodes must drop it.
	const n = 3
	bus := NewChanBus(radio.Uniform{P: 0.3}, 9, 10)
	defer bus.Close()
	eveEp, err := bus.Endpoint(n)
	if err != nil {
		t.Fatal(err)
	}
	chains := make([]*auth.KeyChain, n)
	for i := range chains {
		chains[i] = auth.NewKeyChain([]byte("honest bootstrap"))
	}
	stop := make(chan struct{})
	go func() {
		// Spray forgeries (wrong key) while the session runs.
		forger := auth.NewKeyChain([]byte("EVE"))
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				frame := forger.Seal([]byte{0x54, 0x41, 1, 2, 1, 0, 0, 3, 9, 0, 0})
				eveEp.SendCtrl(frame)
			}
		}
	}()
	cfg := baseNodeConfig(n)
	results, err := RunGroup(context.Background(), bus, cfg, chains)
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for _, r := range results {
		rejected += r.AuthRejected
	}
	if rejected == 0 {
		t.Fatal("no forgeries were rejected (injection broken?)")
	}
	for i := 1; i < n; i++ {
		if string(results[i].Secret) != string(results[0].Secret) {
			t.Fatal("forgery disrupted agreement")
		}
	}
}

func TestRunNodeValidation(t *testing.T) {
	bus := NewChanBus(radio.Uniform{}, 1, 0)
	defer bus.Close()
	ep, _ := bus.Endpoint(0)
	// Oracle estimator is analysis-only.
	cfg := baseNodeConfig(2)
	cfg.Estimator = core.Oracle{}
	if _, err := RunNode(context.Background(), ep, cfg); err == nil {
		t.Fatal("oracle accepted in distributed mode")
	}
	cfg = baseNodeConfig(2)
	cfg.Self = 9
	if _, err := RunNode(context.Background(), ep, cfg); err == nil {
		t.Fatal("bad self accepted")
	}
}

func TestRunNodeTimeout(t *testing.T) {
	// A terminal alone on the bus times out waiting for the leader.
	bus := NewChanBus(radio.Uniform{}, 1, 0)
	defer bus.Close()
	ep, _ := bus.Endpoint(1)
	cfg := baseNodeConfig(2)
	cfg.Self = 1
	cfg.Rotate = false
	cfg.Timeout = 100 * time.Millisecond
	if _, err := RunNode(context.Background(), ep, cfg); err == nil {
		t.Fatal("lonely terminal did not time out")
	}
}

func TestRunNodeContextCancel(t *testing.T) {
	bus := NewChanBus(radio.Uniform{}, 1, 0)
	defer bus.Close()
	ep, _ := bus.Endpoint(1)
	cfg := baseNodeConfig(2)
	cfg.Self = 1
	cfg.Rotate = false
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunNode(ctx, ep, cfg)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancellation ignored")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("node did not observe cancellation")
	}
}

func TestUDPBusEndToEnd(t *testing.T) {
	const n = 3
	bus, err := NewUDPBus(radio.Uniform{P: 0.3}, 13, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer bus.Close()
	cfg := baseNodeConfig(n)
	cfg.XPerRound = 30
	cfg.Rounds = 2
	results, err := RunGroup(context.Background(), bus, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if string(results[i].Secret) != string(results[0].Secret) {
			t.Fatalf("node %d secret differs over UDP", i)
		}
	}
	if bus.BitsSent() == 0 {
		t.Fatal("no accounting")
	}
}

func TestUDPBusCtrlSurvivesTotalDataLoss(t *testing.T) {
	// With p = 1 every data frame is erased but the ARQ still delivers
	// control frames; the protocol then aborts rounds cleanly (terminals
	// received nothing, so L = 0) rather than deadlocking.
	const n = 2
	bus, err := NewUDPBus(radio.Uniform{P: 1}, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer bus.Close()
	cfg := baseNodeConfig(n)
	cfg.XPerRound = 10
	cfg.Rounds = 1
	cfg.Rotate = false
	results, err := RunGroup(context.Background(), bus, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].Secret) != 0 {
		t.Fatal("secret from a dead channel")
	}
	if results[0].Productive != 0 {
		t.Fatal("round counted productive")
	}
}

func TestRunGroupSurvivesGarbageInjection(t *testing.T) {
	// A node on the bus spraying garbage frames (not even protocol
	// messages) must not break an unauthenticated session: decode failures
	// are dropped silently.
	const n = 3
	bus := NewChanBus(radio.Uniform{P: 0.3}, 15, 10)
	defer bus.Close()
	junkEp, err := bus.Endpoint(n)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		i := byte(0)
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				junkEp.SendCtrl([]byte{i, i + 1, i + 2})
				junkEp.SendData([]byte{0xFF, i})
				i++
			}
		}
	}()
	cfg := baseNodeConfig(n)
	results, err := RunGroup(context.Background(), bus, cfg, nil)
	close(stop)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if string(results[i].Secret) != string(results[0].Secret) {
			t.Fatal("garbage disrupted agreement")
		}
	}
}

func TestSequentialSessionsOnOneBus(t *testing.T) {
	// Reuse a bus for several sessions back to back; session IDs keep
	// the streams separate.
	bus := NewChanBus(radio.Uniform{P: 0.4}, 23, 10)
	defer bus.Close()
	var prev []byte
	for s := 0; s < 3; s++ {
		cfg := baseNodeConfig(3)
		cfg.Session = uint32(100 + s)
		cfg.Seed = int64(42 + s)
		cfg.Rounds = 1
		results, err := RunGroup(context.Background(), bus, cfg, nil)
		if err != nil {
			t.Fatalf("session %d: %v", s, err)
		}
		if prev != nil && len(results[0].Secret) > 0 && string(results[0].Secret) == string(prev) {
			t.Fatal("two sessions produced identical secrets")
		}
		if len(results[0].Secret) > 0 {
			prev = results[0].Secret
		}
	}
}

func TestObserverOverUDP(t *testing.T) {
	const n = 3
	bus, err := NewUDPBus(radio.Uniform{P: 0.4}, 29, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer bus.Close()
	obsEp, err := bus.Endpoint(n)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver(777)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		obs.Run(ctx, obsEp, 500*time.Millisecond)
		close(done)
	}()
	cfg := baseNodeConfig(n)
	cfg.XPerRound = 40
	cfg.Rounds = 1
	results, err := RunGroup(context.Background(), bus, cfg, nil)
	cancel()
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].Secret) > 0 && obs.SecretDims == 0 {
		t.Fatal("UDP observer missed the session")
	}
}
