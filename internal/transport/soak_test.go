package transport

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/radio"
)

// TestUDPSoakMultiSession is the UDP-bus soak: many concurrent loopback
// hubs, each running several sequential refresh batches (FirstRound
// advancing, endpoints reused — the daemon shape) under real packet loss
// with a wire-level observer attached. Its purpose is flushing
// loopback-socket lifecycle bugs the short unit tests cannot reach:
// stranded client read goroutines, unacked ARQ retransmit storms after
// teardown, Recv channels that never close. Skipped under -short; set
// THINAIR_SOAK=1 for the long CI variant.
func TestUDPSoakMultiSession(t *testing.T) {
	if testing.Short() {
		t.Skip("UDP soak skipped in -short")
	}
	sessions, batches := 8, 3
	if os.Getenv("THINAIR_SOAK") != "" {
		sessions, batches = 32, 10
	}
	before := runtime.NumGoroutine()

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	fail := func(format string, args ...any) { errs <- fmt.Errorf(format, args...) }
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			const n = 3
			// Alternate loss rates so some sessions run with heavy loss.
			p := 0.45
			if s%2 == 1 {
				p = 0.6
			}
			bus, err := NewUDPBus(radio.Uniform{P: p}, int64(4000+s*13), 10)
			if err != nil {
				fail("session %d: %v", s, err)
				return
			}
			defer bus.Close()

			obsEp, err := bus.Endpoint(n)
			if err != nil {
				fail("session %d: observer endpoint: %v", s, err)
				return
			}
			obs := NewObserver(uint32(100 + s))
			obsCtx, obsCancel := context.WithCancel(context.Background())
			obsDone := make(chan struct{})
			go func() {
				obs.Run(obsCtx, obsEp, 5*time.Second)
				close(obsDone)
			}()

			eps := make([]Endpoint, n)
			for i := range eps {
				if eps[i], err = bus.Endpoint(i); err != nil {
					obsCancel()
					<-obsDone
					fail("session %d: endpoint %d: %v", s, i, err)
					return
				}
			}
			cfg := NodeConfig{
				Config: core.Config{
					Terminals: n, XPerRound: 48, PayloadBytes: 8,
					Rounds: 1, Rotate: true, Seed: int64(700 + s*101),
				},
				Session: uint32(100 + s),
				Timeout: 30 * time.Second,
			}
			for b := 0; b < batches; b++ {
				cfg.FirstRound = b
				// RunGroupOn checks all-node agreement internally.
				if _, err := RunGroupOn(context.Background(), eps, cfg, nil); err != nil {
					obsCancel()
					<-obsDone
					fail("session %d batch %d: %v", s, b, err)
					return
				}
			}
			obsCancel()
			<-obsDone
			if obs.UnknownDims > obs.SecretDims {
				fail("session %d: observer certificate out of range (%d/%d)",
					s, obs.UnknownDims, obs.SecretDims)
			}
			// Dedup state must stay bounded by the participant count
			// (n terminals + observer): each sender gets one fixed-size
			// sliding window, never one entry per control frame. This is
			// the regression assertion for the old unbounded `seen` maps.
			if got := bus.dedupSenders(); got > n+1 {
				fail("session %d: hub dedup state grew to %d windows for %d senders", s, got, n+1)
			}
			for i, ep := range eps {
				if got := ep.(*udpEndpoint).dedupSenders(); got > n+1 {
					fail("session %d: endpoint %d dedup state grew to %d windows for %d senders", s, i, got, n+1)
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Every bus, endpoint and observer is down: the goroutine count must
	// return to the pre-soak baseline or sockets/readers leaked.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	nn := runtime.Stack(buf, true)
	t.Fatalf("soak leaked goroutines: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:nn])
}
