// Package transport provides the message-passing runtime that turns the
// protocol's pure round computations (internal/core) into concurrent
// nodes, the way real wireless devices would run it: one goroutine per
// terminal exchanging wire-encoded frames over a broadcast Bus.
//
// Two Bus implementations are provided:
//
//   - ChanBus: an in-process broadcast domain backed by channels, with the
//     same erasure semantics as radio.Medium (data frames are dropped per
//     receiver according to an ErasureModel; control frames are reliable
//     and overheard by everyone, including the eavesdropper's tap).
//   - UDPBus: a loopback UDP hub with a small ARQ (sequence numbers,
//     acknowledgments, retransmission timers) providing the reliable
//     control plane over actual sockets.
//
// The paper's "reliably broadcasts" primitive maps to SendCtrl; a plain
// packet transmission maps to SendData.
package transport

import "errors"

// Env is a frame delivered to an endpoint.
type Env struct {
	From     int    // sender node index
	Reliable bool   // true for control-plane frames
	Frame    []byte // wire-encoded message
}

// Endpoint is one node's attachment to a broadcast Bus.
type Endpoint interface {
	// ID returns the node index on the bus.
	ID() int
	// SendData broadcasts an unreliable data frame; each receiver gets it
	// subject to the bus's erasure process.
	SendData(frame []byte) error
	// SendCtrl broadcasts a reliable control frame, delivered to every
	// other endpoint (the eavesdropper included, per the paper's model).
	SendCtrl(frame []byte) error
	// Recv yields delivered frames. The channel is closed when the bus
	// shuts down.
	Recv() <-chan Env
	// Close detaches the endpoint.
	Close() error
}

// Bus is a broadcast domain with per-receiver erasures on the data plane.
type Bus interface {
	// Endpoint returns the endpoint for node id (creating it if needed).
	Endpoint(id int) (Endpoint, error)
	// BitsSent returns the total bits transmitted on the bus (efficiency
	// accounting).
	BitsSent() int64
	// Close shuts the bus down and closes all endpoint channels.
	Close() error
}

// ErrClosed is returned when using a closed bus or endpoint.
var ErrClosed = errors.New("transport: closed")
