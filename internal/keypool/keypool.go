// Package keypool manages the key material the protocol produces: a
// thread-safe byte pool that banks session secrets and dispenses
// never-reused one-time keys, with optional automatic refill — the
// "continuously refresh the key used to encrypt their communication"
// usage the paper's introduction motivates.
//
// Dispensed bytes are copied out and the pool's own copy is zeroized, so
// a later memory disclosure of the pool cannot recover past keys.
//
// Two refill styles are supported:
//
//   - Synchronous: a RefillFunc configured via NewWithRefill is invoked
//     from the draw path when the pool runs low. Consecutive failures put
//     the best-effort top-up on hold until fresh material arrives, so a
//     broken refill (radio down, peer gone) cannot turn every Draw into a
//     blocking protocol attempt.
//   - Asynchronous: a background worker (e.g. internal/service's session
//     refresher) selects on LowWaterSignal and Deposits new material; the
//     draw path never blocks on protocol rounds.
package keypool

import (
	"errors"
	"fmt"
	"sync"
)

// ErrExhausted is returned when the pool cannot satisfy a draw.
var ErrExhausted = errors.New("keypool: insufficient key material")

// ErrClosed is returned when drawing from a zeroized pool.
var ErrClosed = errors.New("keypool: pool closed")

// RefillFunc produces more secret bytes (typically by running a protocol
// session). It is invoked synchronously while the pool lock is NOT held.
type RefillFunc func() ([]byte, error)

// refillFailureLimit is how many consecutive RefillFunc errors suspend the
// best-effort low-water top-up. A blocking Draw (one that cannot be served
// from the pool) still attempts a refill and surfaces the error; only the
// "pool can serve the draw but is below the watermark" path backs off, so
// a persistently failing refill cannot make every successful draw pay for
// a doomed protocol session.
const refillFailureLimit = 3

// Stats is a point-in-time snapshot of a pool's lifetime counters, shaped
// for a metrics endpoint: everything a service needs to report pool health
// without guessing.
type Stats struct {
	// Available is the number of unconsumed bytes at snapshot time.
	Available int
	// Deposited and Drawn are lifetime byte counts.
	Deposited int64
	Drawn     int64
	// LowWaterHits counts draws that left the pool below its watermark.
	LowWaterHits int64
	// Refills and RefillErrors count synchronous RefillFunc invocations
	// (successful deposits vs errors). Asynchronous refreshers deposit
	// directly and are accounted by Deposited.
	Refills      int64
	RefillErrors int64
	// Closed reports a zeroized pool: all material wiped, draws fail
	// permanently. A metrics consumer uses it to tell "empty, refilling"
	// from "gone".
	Closed bool
}

// Pool banks secret bytes and dispenses one-time keys.
type Pool struct {
	mu     sync.Mutex
	buf    []byte
	closed bool

	refill   RefillFunc
	lowWater int

	deposited    int64
	drawn        int64
	lowWaterHits int64
	refills      int64
	refillErrors int64
	consecFails  int // consecutive RefillFunc errors; gates best-effort top-up

	// refillMu serializes RefillFunc invocations so concurrent draws do
	// not stampede the (typically expensive) refill.
	refillMu sync.Mutex

	notify chan struct{} // 1-buffered low-water edge signal, lazily created
}

// New returns an empty pool without automatic refill.
func New() *Pool { return &Pool{} }

// NewWithRefill returns a pool that invokes refill whenever a draw would
// leave fewer than lowWater bytes available (and keeps invoking it until
// either the draw is satisfiable or refill errors).
func NewWithRefill(refill RefillFunc, lowWater int) *Pool {
	return &Pool{refill: refill, lowWater: lowWater}
}

// SetLowWater changes the watermark below which the pool signals (and,
// with a RefillFunc, refills). Useful for pools fed by an asynchronous
// refresher, which are created with New.
func (p *Pool) SetLowWater(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.lowWater = n
}

// LowWaterSignal returns a channel that receives (with a buffer of one,
// never blocking the draw path) whenever a draw leaves the pool below its
// watermark. A background refresher can select on it to top the pool up
// asynchronously instead of paying for protocol rounds inside Draw.
func (p *Pool) LowWaterSignal() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.notify == nil {
		p.notify = make(chan struct{}, 1)
	}
	return p.notify
}

// Deposit adds secret bytes to the pool. The input is copied; callers may
// zeroize their copy afterwards. Depositing into a closed pool is a no-op
// (the material is already being torn down).
func (p *Pool) Deposit(secret []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.buf = append(p.buf, secret...)
	p.deposited += int64(len(secret))
	if len(secret) > 0 {
		p.consecFails = 0 // fresh material: give refill another chance
	}
}

// Available returns the number of unconsumed bytes.
func (p *Pool) Available() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		Available:    len(p.buf),
		Deposited:    p.deposited,
		Drawn:        p.drawn,
		LowWaterHits: p.lowWaterHits,
		Refills:      p.refills,
		RefillErrors: p.refillErrors,
		Closed:       p.closed,
	}
}

// Zeroize wipes and discards all banked material and closes the pool:
// subsequent draws fail with ErrClosed and deposits are dropped. It is the
// shutdown path for a long-lived daemon — after Zeroize a memory
// disclosure recovers nothing.
func (p *Pool) Zeroize() {
	p.mu.Lock()
	defer p.mu.Unlock()
	zero(p.buf)
	p.buf = nil
	p.closed = true
}

// Draw removes and returns n bytes of key material. Bytes are never
// reused: the pool's copy is zeroized before the region is released. With
// a RefillFunc configured, Draw refills until n (+ the low watermark) is
// covered; otherwise it fails with ErrExhausted when the pool is short.
func (p *Pool) Draw(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("keypool: negative draw %d", n)
	}
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrClosed
		}
		if len(p.buf) >= n {
			out := make([]byte, n)
			copy(out, p.buf[:n])
			zero(p.buf[:n])
			p.buf = p.buf[n:]
			p.drawn += int64(n)
			low := len(p.buf) < p.lowWater
			if low {
				p.lowWaterHits++
				if p.notify != nil {
					select {
					case p.notify <- struct{}{}:
					default: // refresher already signaled
					}
				}
			}
			topUp := low && p.refill != nil && p.consecFails < refillFailureLimit
			watermark := p.lowWater
			p.mu.Unlock()
			if topUp {
				// Best-effort top-up; the draw already succeeded.
				_ = p.tryRefill(watermark)
			}
			return out, nil
		}
		p.mu.Unlock()
		if p.refill == nil {
			return nil, fmt.Errorf("%w: want %d, have %d", ErrExhausted, n, p.Available())
		}
		if err := p.tryRefill(n); err != nil {
			return nil, fmt.Errorf("keypool: refill: %w", err)
		}
	}
}

// tryRefill invokes the refill function once and deposits its output.
// Invocations are serialized: a concurrent draw that arrives while a
// refill is in flight waits for it, then skips its own invocation if the
// wait already left need bytes available.
func (p *Pool) tryRefill(need int) error {
	p.refillMu.Lock()
	defer p.refillMu.Unlock()
	if p.Available() >= need {
		return nil
	}
	secret, err := p.refill()
	p.mu.Lock()
	if err != nil {
		p.refillErrors++
		p.consecFails++
		p.mu.Unlock()
		return err
	}
	if len(secret) == 0 {
		p.refillErrors++
		p.consecFails++
		p.mu.Unlock()
		return errors.New("keypool: refill produced no key material")
	}
	p.refills++
	p.mu.Unlock()
	p.Deposit(secret)
	zero(secret)
	return nil
}

// DrawN removes and returns k keys of size bytes each under a single lock
// acquisition — the bulk path for consumers that previously paid k
// Draw calls (k lock round-trips, k low-water checks) to assemble a
// batch. The draw is all-or-nothing: if fewer than k*size bytes are
// available it fails with ErrExhausted and consumes nothing (with a
// RefillFunc configured, it refills first, like Draw). The returned keys
// alias one backing slab, so the whole batch costs two allocations
// (headers + slab) regardless of k; the pool's copy is zeroized and at
// most one low-water signal fires for the batch.
func (p *Pool) DrawN(k, size int) ([][]byte, error) {
	if k < 0 || size < 0 {
		return nil, fmt.Errorf("keypool: negative bulk draw %dx%d", k, size)
	}
	if k == 0 {
		return nil, nil
	}
	total := k * size
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrClosed
		}
		if len(p.buf) >= total {
			slab := make([]byte, total)
			copy(slab, p.buf[:total])
			zero(p.buf[:total])
			p.buf = p.buf[total:]
			p.drawn += int64(total)
			keys := make([][]byte, k)
			for i := range keys {
				keys[i] = slab[i*size : (i+1)*size : (i+1)*size]
			}
			low := len(p.buf) < p.lowWater
			if low {
				p.lowWaterHits++
				if p.notify != nil {
					select {
					case p.notify <- struct{}{}:
					default: // refresher already signaled
					}
				}
			}
			topUp := low && p.refill != nil && p.consecFails < refillFailureLimit
			watermark := p.lowWater
			p.mu.Unlock()
			if topUp {
				_ = p.tryRefill(watermark)
			}
			return keys, nil
		}
		p.mu.Unlock()
		if p.refill == nil {
			return nil, fmt.Errorf("%w: want %d, have %d", ErrExhausted, total, p.Available())
		}
		if err := p.tryRefill(total); err != nil {
			return nil, fmt.Errorf("keypool: refill: %w", err)
		}
	}
}

// TryDrawInto is DrawInto's contention probe: it serves dst immediately
// if the pool mutex is free and reports handled=false (dst untouched,
// nothing consumed) if another goroutine holds it. Callers use it to
// combine adaptively — draw directly while the lock is uncontended, fall
// back to a batching path the moment it is not.
func (p *Pool) TryDrawInto(dst []byte) (handled bool, err error) {
	if !p.mu.TryLock() {
		return false, nil
	}
	return true, p.drawIntoLocked(dst)
}

// DrawInto fills dst with len(dst) bytes of key material, the
// allocation-free form of Draw: the caller owns dst (typically a slice
// carved from a batch slab or a reusable arena) and the pool copies
// directly into it. Semantics match Draw exactly — all-or-nothing,
// pool copy zeroized, low-water signal, best-effort top-up.
func (p *Pool) DrawInto(dst []byte) error {
	p.mu.Lock()
	return p.drawIntoLocked(dst)
}

// drawIntoLocked finishes a DrawInto whose caller already holds p.mu
// (and releases it).
func (p *Pool) drawIntoLocked(dst []byte) error {
	n := len(dst)
	for {
		if p.closed {
			p.mu.Unlock()
			return ErrClosed
		}
		if len(p.buf) >= n {
			copy(dst, p.buf[:n])
			zero(p.buf[:n])
			p.buf = p.buf[n:]
			p.drawn += int64(n)
			low := len(p.buf) < p.lowWater
			if low {
				p.lowWaterHits++
				if p.notify != nil {
					select {
					case p.notify <- struct{}{}:
					default: // refresher already signaled
					}
				}
			}
			topUp := low && p.refill != nil && p.consecFails < refillFailureLimit
			watermark := p.lowWater
			p.mu.Unlock()
			if topUp {
				_ = p.tryRefill(watermark)
			}
			return nil
		}
		p.mu.Unlock()
		if p.refill == nil {
			return fmt.Errorf("%w: want %d, have %d", ErrExhausted, n, p.Available())
		}
		if err := p.tryRefill(n); err != nil {
			return fmt.Errorf("keypool: refill: %w", err)
		}
		p.mu.Lock()
	}
}

// DrawBatch serves many pending draws under ONE lock acquisition: dsts
// holds the callers' destination buffers in arrival order, and errs
// (same length) receives each caller's verdict. Buffers are served
// greedily in FIFO order, each independently all-or-nothing against the
// material remaining after its predecessors — exactly the outcome the
// same callers would have seen issuing sequential Draws, so batching is
// invisible to semantics: a small request behind a too-large one still
// succeeds, a too-large one still fails with ErrExhausted without
// consuming anything. At most one low-water signal fires for the whole
// batch, and served entries allocate nothing. DrawBatch never invokes a
// synchronous
// RefillFunc — combiners sit on the async-refresher path; a caller that
// wants the refill loop falls back to Draw/DrawInto on ErrExhausted
// entries. Returns the number of buffers served.
func (p *Pool) DrawBatch(dsts [][]byte, errs []error) int {
	if len(dsts) != len(errs) {
		panic("keypool: DrawBatch dsts/errs length mismatch")
	}
	served := 0
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		for i := range errs {
			errs[i] = ErrClosed
		}
		return 0
	}
	for i, dst := range dsts {
		n := len(dst)
		if n > len(p.buf) {
			errs[i] = fmt.Errorf("%w: want %d, have %d", ErrExhausted, n, len(p.buf))
			continue
		}
		copy(dst, p.buf[:n])
		zero(p.buf[:n])
		p.buf = p.buf[n:]
		p.drawn += int64(n)
		errs[i] = nil
		served++
	}
	if len(p.buf) < p.lowWater {
		p.lowWaterHits++
		if p.notify != nil {
			select {
			case p.notify <- struct{}{}:
			default: // refresher already signaled
			}
		}
	}
	p.mu.Unlock()
	return served
}

// DrawPad is Draw specialized for one-time-pad use: it returns a pad of
// exactly len(plain) bytes and the XOR of plain with it, consuming the
// pad from the pool. Decryption is XOR with the same pad, so peers
// drawing from pools fed identical session secrets stay in sync.
func (p *Pool) DrawPad(plain []byte) (pad, cipher []byte, err error) {
	pad, err = p.Draw(len(plain))
	if err != nil {
		return nil, nil, err
	}
	cipher = make([]byte, len(plain))
	for i := range plain {
		cipher[i] = plain[i] ^ pad[i]
	}
	return pad, cipher, nil
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
