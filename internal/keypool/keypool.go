// Package keypool manages the key material the protocol produces: a
// thread-safe byte pool that banks session secrets and dispenses
// never-reused one-time keys, with optional automatic refill — the
// "continuously refresh the key used to encrypt their communication"
// usage the paper's introduction motivates.
//
// Dispensed bytes are copied out and the pool's own copy is zeroized, so
// a later memory disclosure of the pool cannot recover past keys.
package keypool

import (
	"errors"
	"fmt"
	"sync"
)

// ErrExhausted is returned when the pool cannot satisfy a draw.
var ErrExhausted = errors.New("keypool: insufficient key material")

// RefillFunc produces more secret bytes (typically by running a protocol
// session). It is invoked synchronously while the pool lock is NOT held.
type RefillFunc func() ([]byte, error)

// Pool banks secret bytes and dispenses one-time keys.
type Pool struct {
	mu  sync.Mutex
	buf []byte

	refill    RefillFunc
	lowWater  int
	deposited int64
	drawn     int64
}

// New returns an empty pool without automatic refill.
func New() *Pool { return &Pool{} }

// NewWithRefill returns a pool that invokes refill whenever a draw would
// leave fewer than lowWater bytes available (and keeps invoking it until
// either the draw is satisfiable or refill errors).
func NewWithRefill(refill RefillFunc, lowWater int) *Pool {
	return &Pool{refill: refill, lowWater: lowWater}
}

// Deposit adds secret bytes to the pool. The input is copied; callers may
// zeroize their copy afterwards.
func (p *Pool) Deposit(secret []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.buf = append(p.buf, secret...)
	p.deposited += int64(len(secret))
}

// Available returns the number of unconsumed bytes.
func (p *Pool) Available() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}

// Stats returns lifetime deposited and drawn byte counts.
func (p *Pool) Stats() (deposited, drawn int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.deposited, p.drawn
}

// Draw removes and returns n bytes of key material. Bytes are never
// reused: the pool's copy is zeroized before the region is released. With
// a RefillFunc configured, Draw refills until n (+ the low watermark) is
// covered; otherwise it fails with ErrExhausted when the pool is short.
func (p *Pool) Draw(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("keypool: negative draw %d", n)
	}
	for {
		p.mu.Lock()
		if len(p.buf) >= n {
			out := make([]byte, n)
			copy(out, p.buf[:n])
			zero(p.buf[:n])
			p.buf = p.buf[n:]
			p.drawn += int64(n)
			low := p.refill != nil && len(p.buf) < p.lowWater
			p.mu.Unlock()
			if low {
				// Best-effort top-up; the draw already succeeded.
				_ = p.tryRefill()
			}
			return out, nil
		}
		p.mu.Unlock()
		if p.refill == nil {
			return nil, fmt.Errorf("%w: want %d, have %d", ErrExhausted, n, p.Available())
		}
		if err := p.tryRefill(); err != nil {
			return nil, fmt.Errorf("keypool: refill: %w", err)
		}
	}
}

// tryRefill invokes the refill function once and deposits its output.
func (p *Pool) tryRefill() error {
	secret, err := p.refill()
	if err != nil {
		return err
	}
	if len(secret) == 0 {
		return errors.New("keypool: refill produced no key material")
	}
	p.Deposit(secret)
	zero(secret)
	return nil
}

// DrawPad is Draw specialized for one-time-pad use: it returns a pad of
// exactly len(plain) bytes and the XOR of plain with it, consuming the
// pad from the pool. Decryption is XOR with the same pad, so peers
// drawing from pools fed identical session secrets stay in sync.
func (p *Pool) DrawPad(plain []byte) (pad, cipher []byte, err error) {
	pad, err = p.Draw(len(plain))
	if err != nil {
		return nil, nil, err
	}
	cipher = make([]byte, len(plain))
	for i := range plain {
		cipher[i] = plain[i] ^ pad[i]
	}
	return pad, cipher, nil
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
