package keypool

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestDepositAndDraw(t *testing.T) {
	p := New()
	p.Deposit([]byte{1, 2, 3, 4, 5})
	if p.Available() != 5 {
		t.Fatalf("available = %d", p.Available())
	}
	k, err := p.Draw(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(k, []byte{1, 2, 3}) {
		t.Fatalf("key = %v", k)
	}
	if p.Available() != 2 {
		t.Fatalf("available = %d", p.Available())
	}
	st := p.Stats()
	if st.Deposited != 5 || st.Drawn != 3 || st.Available != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDrawExhausted(t *testing.T) {
	p := New()
	p.Deposit([]byte{1})
	if _, err := p.Draw(2); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.Draw(-1); err == nil {
		t.Fatal("negative draw accepted")
	}
	// Zero draw always succeeds.
	if k, err := p.Draw(0); err != nil || len(k) != 0 {
		t.Fatalf("zero draw: %v %v", k, err)
	}
}

func TestDepositCopies(t *testing.T) {
	p := New()
	src := []byte{9, 9}
	p.Deposit(src)
	src[0] = 1
	k, _ := p.Draw(2)
	if k[0] != 9 {
		t.Fatal("pool aliased depositor's buffer")
	}
}

func TestKeysNeverReused(t *testing.T) {
	p := New()
	p.Deposit([]byte{1, 2, 3, 4})
	a, _ := p.Draw(2)
	b, _ := p.Draw(2)
	if bytes.Equal(a, b) {
		t.Fatal("same key dispensed twice")
	}
}

func TestAutoRefill(t *testing.T) {
	calls := 0
	p := NewWithRefill(func() ([]byte, error) {
		calls++
		return []byte{byte(calls), byte(calls), byte(calls), byte(calls)}, nil
	}, 2)
	// Pool starts empty: the first draw must trigger refills.
	k, err := p.Draw(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(k) != 6 || calls < 2 {
		t.Fatalf("k=%v calls=%d", k, calls)
	}
	// Never reuse across refills: bytes come in deposit order.
	if !bytes.Equal(k, []byte{1, 1, 1, 1, 2, 2}) {
		t.Fatalf("k = %v", k)
	}
}

func TestRefillError(t *testing.T) {
	boom := fmt.Errorf("radio down")
	p := NewWithRefill(func() ([]byte, error) { return nil, boom }, 0)
	if _, err := p.Draw(1); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if st := p.Stats(); st.RefillErrors != 1 || st.Refills != 0 {
		t.Fatalf("stats = %+v", st)
	}
	empty := NewWithRefill(func() ([]byte, error) { return nil, nil }, 0)
	if _, err := empty.Draw(1); err == nil {
		t.Fatal("empty refill accepted")
	}
}

// A persistently failing RefillFunc must not turn every satisfiable draw
// into a refill attempt: after refillFailureLimit consecutive errors the
// best-effort low-water top-up goes on hold until fresh material arrives.
func TestFailingRefillDoesNotSpinDrawPath(t *testing.T) {
	calls := 0
	p := NewWithRefill(func() ([]byte, error) {
		calls++
		return nil, fmt.Errorf("radio down")
	}, 8)
	p.Deposit(make([]byte, 6)) // below the watermark from the start
	// Every draw is satisfiable from the pool but leaves it below the
	// watermark, so each would invoke the (failing) best-effort refill;
	// invocations must stop at the failure limit.
	for i := 0; i < 10; i++ {
		if _, err := p.Draw(0); err != nil {
			t.Fatal(err)
		}
	}
	if calls > refillFailureLimit {
		t.Fatalf("failing refill invoked %d times (limit %d)", calls, refillFailureLimit)
	}
	// Fresh material re-arms the top-up.
	p.Deposit(make([]byte, 2))
	if _, err := p.Draw(1); err != nil {
		t.Fatal(err)
	}
	if calls <= refillFailureLimit {
		t.Fatalf("refill not re-armed after deposit (calls = %d)", calls)
	}
	if st := p.Stats(); st.RefillErrors != int64(calls) {
		t.Fatalf("refillErrors = %d, want %d", st.RefillErrors, calls)
	}
}

func TestLowWaterSignal(t *testing.T) {
	p := New()
	p.SetLowWater(8)
	ch := p.LowWaterSignal()
	p.Deposit(make([]byte, 16))
	if _, err := p.Draw(4); err != nil { // 12 left: above watermark
		t.Fatal(err)
	}
	select {
	case <-ch:
		t.Fatal("signal above watermark")
	default:
	}
	if _, err := p.Draw(8); err != nil { // 4 left: below
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("no signal below watermark")
	}
	// Repeated low draws don't block the draw path even when nobody reads.
	for i := 0; i < 5; i++ {
		if _, err := p.Draw(0); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	if st.LowWaterHits < 2 {
		t.Fatalf("lowWaterHits = %d", st.LowWaterHits)
	}
}

func TestZeroize(t *testing.T) {
	p := New()
	p.Deposit([]byte{1, 2, 3})
	p.Zeroize()
	if _, err := p.Draw(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	p.Deposit([]byte{9}) // dropped
	if p.Available() != 0 {
		t.Fatal("deposit after zeroize retained")
	}
	p.Zeroize() // idempotent
}

func TestDrawPad(t *testing.T) {
	p := New()
	p.Deposit([]byte{0xAA, 0xBB, 0xCC})
	plain := []byte{1, 2, 3}
	pad, ct, err := p.DrawPad(plain)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if ct[i] != plain[i]^pad[i] {
			t.Fatal("cipher wrong")
		}
	}
	// Decrypt with the pad.
	for i := range ct {
		ct[i] ^= pad[i]
	}
	if !bytes.Equal(ct, plain) {
		t.Fatal("decrypt wrong")
	}
	if _, _, err := p.DrawPad([]byte{1}); !errors.Is(err, ErrExhausted) {
		t.Fatal("pad overdraw accepted")
	}
}

func TestConcurrentDraws(t *testing.T) {
	p := New()
	material := make([]byte, 64*32)
	for i := range material {
		material[i] = byte(i)
	}
	// byte(i) is periodic with period 256 (8 chunks); stamp each 32-byte
	// chunk with its index so all chunks are distinct.
	for c := 0; c < 64; c++ {
		material[c*32] = byte(c)
		material[c*32+1] = byte(c >> 8)
	}
	p.Deposit(material)
	var mu sync.Mutex
	seen := map[string]bool{}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				k, err := p.Draw(32)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[string(k)] {
					t.Error("duplicate key under concurrency")
				}
				seen[string(k)] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if p.Available() != 0 {
		t.Fatalf("leftover %d", p.Available())
	}
}

// TestDrawNMatchesSequentialDraws pins the bulk path's semantics: DrawN
// returns exactly the keys k sequential Draw calls would have, consumes
// the same bytes, and is all-or-nothing when short.
func TestDrawNMatchesSequentialDraws(t *testing.T) {
	material := make([]byte, 8*16)
	for i := range material {
		material[i] = byte(i * 7)
	}
	seq := New()
	seq.Deposit(material)
	bulk := New()
	bulk.Deposit(material)

	keys, err := bulk.DrawN(5, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		want, err := seq.Draw(16)
		if err != nil {
			t.Fatal(err)
		}
		if string(k) != string(want) {
			t.Fatalf("bulk key %d differs from sequential draw", i)
		}
	}
	if bulk.Available() != seq.Available() {
		t.Fatalf("bulk consumed %d, sequential %d", 8*16-bulk.Available(), 8*16-seq.Available())
	}

	// Short pool: all-or-nothing.
	if _, err := bulk.DrawN(4, 16); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if bulk.Available() != 3*16 {
		t.Fatalf("failed bulk draw consumed bytes: %d left", bulk.Available())
	}
	if _, err := bulk.DrawN(3, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := bulk.DrawN(0, 16); err != nil {
		t.Fatal(err)
	}
}

// TestDrawNLowWaterSignalsOnce pins that a bulk draw crossing the
// watermark fires at most one low-water edge, not one per key.
func TestDrawNLowWaterSignalsOnce(t *testing.T) {
	p := New()
	p.SetLowWater(64)
	ch := p.LowWaterSignal()
	p.Deposit(make([]byte, 256))
	if _, err := p.DrawN(14, 16); err != nil { // leaves 32 < 64
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("bulk draw crossing the watermark did not signal")
	}
	select {
	case <-ch:
		t.Fatal("bulk draw signaled more than once")
	default:
	}
	if hits := p.Stats().LowWaterHits; hits != 1 {
		t.Fatalf("LowWaterHits = %d, want 1", hits)
	}
}

// TestDrawNAllocs is the bulk-draw allocation gate: one slab plus one
// header slice, independent of k — the reason DrawN exists over k Draws
// (which cost k lock round-trips and k output allocations).
func TestDrawNAllocs(t *testing.T) {
	p := New()
	p.Deposit(make([]byte, 1<<20))
	run := func() {
		if _, err := p.DrawN(32, 16); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(100, run); n > 2 {
		t.Errorf("DrawN(32, 16) allocates %v times per run, want <= 2", n)
	}
}

// TestDrawIntoMatchesDraw pins DrawInto as the allocation-free twin of
// Draw: same bytes, same consumption, same exhaustion and closed errors.
func TestDrawIntoMatchesDraw(t *testing.T) {
	material := make([]byte, 128)
	for i := range material {
		material[i] = byte(i*13 + 1)
	}
	a, b := New(), New()
	a.Deposit(material)
	b.Deposit(material)

	dst := make([]byte, 48)
	if err := a.DrawInto(dst); err != nil {
		t.Fatal(err)
	}
	want, err := b.Draw(48)
	if err != nil {
		t.Fatal(err)
	}
	if string(dst) != string(want) {
		t.Fatal("DrawInto bytes differ from Draw")
	}
	if a.Available() != b.Available() {
		t.Fatalf("DrawInto consumed %d, Draw %d", 128-a.Available(), 128-b.Available())
	}

	big := make([]byte, 1024)
	if err := a.DrawInto(big); !errors.Is(err, ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	if a.Available() != 128-48 {
		t.Fatal("failed DrawInto consumed bytes")
	}
	a.Zeroize()
	if err := a.DrawInto(dst); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestDrawIntoAllocs(t *testing.T) {
	p := New()
	p.Deposit(make([]byte, 1<<20))
	dst := make([]byte, 64)
	run := func() {
		if err := p.DrawInto(dst); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Errorf("DrawInto allocates %v times per run, want 0", n)
	}
}

// TestDrawBatchMatchesSequentialDraws pins the combiner contract: a
// batch of buffers is served exactly as the same requests issued as
// sequential Draws — greedy FIFO, each independently all-or-nothing, so
// a small request behind a too-large one still succeeds and the failed
// one consumes nothing.
func TestDrawBatchMatchesSequentialDraws(t *testing.T) {
	material := make([]byte, 100)
	for i := range material {
		material[i] = byte(i + 1)
	}
	batch := New()
	batch.Deposit(material)
	seq := New()
	seq.Deposit(material)

	sizes := []int{32, 16, 80, 24, 40, 28}
	dsts := make([][]byte, len(sizes))
	for i, n := range sizes {
		dsts[i] = make([]byte, n)
	}
	errs := make([]error, len(sizes))
	served := batch.DrawBatch(dsts, errs)

	wantServed := 0
	for i, n := range sizes {
		want, werr := seq.Draw(n)
		if werr == nil {
			wantServed++
			if errs[i] != nil {
				t.Fatalf("dst %d (%dB): batch failed (%v), sequential succeeded", i, n, errs[i])
			}
			if string(dsts[i]) != string(want) {
				t.Fatalf("dst %d bytes differ from sequential draw", i)
			}
		} else if !errors.Is(errs[i], ErrExhausted) {
			t.Fatalf("dst %d (%dB): batch err %v, sequential %v", i, n, errs[i], werr)
		}
	}
	if served != wantServed {
		t.Fatalf("served = %d, want %d", served, wantServed)
	}
	if batch.Available() != seq.Available() {
		t.Fatalf("batch consumed %d, sequential %d", 100-batch.Available(), 100-seq.Available())
	}
}

// TestDrawBatchSignalsOnce pins one low-water edge per batch.
func TestDrawBatchSignalsOnce(t *testing.T) {
	p := New()
	p.SetLowWater(64)
	ch := p.LowWaterSignal()
	p.Deposit(make([]byte, 256))
	dsts := [][]byte{make([]byte, 100), make([]byte, 100), make([]byte, 40)}
	errs := make([]error, 3)
	if served := p.DrawBatch(dsts, errs); served != 3 {
		t.Fatalf("served = %d, want 3 (%v)", served, errs)
	}
	select {
	case <-ch:
	default:
		t.Fatal("batch crossing the watermark did not signal")
	}
	select {
	case <-ch:
		t.Fatal("batch signaled more than once")
	default:
	}
	if hits := p.Stats().LowWaterHits; hits != 1 {
		t.Fatalf("LowWaterHits = %d, want 1", hits)
	}
}

// TestDrawBatchClosed: every entry reports ErrClosed, none served.
func TestDrawBatchClosed(t *testing.T) {
	p := New()
	p.Deposit(make([]byte, 64))
	p.Zeroize()
	dsts := [][]byte{make([]byte, 8), make([]byte, 8)}
	errs := make([]error, 2)
	if served := p.DrawBatch(dsts, errs); served != 0 {
		t.Fatalf("served = %d on closed pool", served)
	}
	for i, err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("errs[%d] = %v, want ErrClosed", i, err)
		}
	}
}

// TestDrawBatchAllocs gates the combiner's served path to zero
// allocations — the point of carving caller buffers before batching.
func TestDrawBatchAllocs(t *testing.T) {
	p := New()
	p.Deposit(make([]byte, 1<<20))
	dsts := make([][]byte, 16)
	for i := range dsts {
		dsts[i] = make([]byte, 32)
	}
	errs := make([]error, 16)
	run := func() {
		if served := p.DrawBatch(dsts, errs); served != 16 {
			t.Fatal("batch not fully served")
		}
	}
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Errorf("DrawBatch allocates %v times per run, want 0", n)
	}
}
