// Package stats provides the small set of descriptive statistics used to
// aggregate experiment results the way §4 of the paper does: minimum,
// average, and the "minimum achieved during q% of the experiments", which
// is the q-th percentile from the bottom.
package stats

import (
	"math"
	"sort"
)

// Summary describes a sample the way Figure 2 reports reliability.
type Summary struct {
	N    int     // sample size
	Min  float64 // minimum (diamonds in Figure 2)
	Max  float64
	Mean float64 // average (circles)
	P50  float64 // median = minimum over the best 50% (squares)
	P95  float64 // minimum achieved during 95% of experiments (triangles)
}

// Summarize computes a Summary. Percentile q here follows the paper's
// phrasing "the minimum reliability achieved during q% of the experiments":
// sort descending, keep the best q%, take the minimum of those — which is
// the (100-q)-th percentile from the bottom. An empty sample returns a
// zero Summary with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	s.P50 = MinOfBestFraction(xs, 0.50)
	s.P95 = MinOfBestFraction(xs, 0.95)
	return s
}

// MinOfBestFraction returns the minimum over the best (highest) q fraction
// of the sample — the paper's "minimum achieved during q% of the
// experiments". q must be in (0, 1]; the count is rounded up so the
// statistic is conservative (covers at least q of the sample).
func MinOfBestFraction(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q <= 0 || q > 1 {
		panic("stats: fraction out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted) // ascending
	keep := int(math.Ceil(q * float64(len(sorted))))
	// The best `keep` values are the top of the sorted slice; their
	// minimum is the element keep-from-the-end.
	return sorted[len(sorted)-keep]
}

// Percentile returns the p-th percentile (0 <= p <= 100) with linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if p < 0 || p > 100 {
		panic("stats: percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
