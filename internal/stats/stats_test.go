package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSummarizeBasics(t *testing.T) {
	xs := []float64{1, 0.2, 1, 1, 0.5, 1, 1, 1, 1, 1}
	s := Summarize(xs)
	if s.N != 10 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Min != 0.2 || s.Max != 1 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if math.Abs(s.Mean-0.87) > 1e-12 {
		t.Fatalf("Mean = %v", s.Mean)
	}
	// Best 50% are five 1.0s -> min 1. Best 95% = 10 values (ceil) -> 0.2.
	if s.P50 != 1 {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P95 != 0.2 {
		t.Fatalf("P95 = %v", s.P95)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatalf("N = %d", s.N)
	}
}

func TestMinOfBestFraction(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if got := MinOfBestFraction(xs, 0.5); got != 0.6 {
		t.Fatalf("q=0.5: %v", got)
	}
	if got := MinOfBestFraction(xs, 1.0); got != 0.1 {
		t.Fatalf("q=1.0: %v", got)
	}
	if got := MinOfBestFraction(xs, 0.95); got != 0.1 {
		t.Fatalf("q=0.95 (ceil to 10 kept): %v", got)
	}
	if got := MinOfBestFraction(xs, 0.90); got != 0.2 {
		t.Fatalf("q=0.90: %v", got)
	}
	if !math.IsNaN(MinOfBestFraction(nil, 0.5)) {
		t.Fatal("empty sample should be NaN")
	}
}

func TestMinOfBestFractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("q=0 did not panic")
		}
	}()
	MinOfBestFraction([]float64{1}, 0)
}

func TestPercentile(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 3 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 2 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 1.5 {
		t.Fatalf("p25 = %v", got)
	}
	if got := Percentile([]float64{7}, 40); got != 7 {
		t.Fatalf("single = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty sample should be NaN")
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=101 did not panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean should be NaN")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	cp := append([]float64(nil), xs...)
	Summarize(xs)
	Percentile(xs, 30)
	MinOfBestFraction(xs, 0.7)
	for i := range xs {
		if xs[i] != cp[i] {
			t.Fatal("input mutated")
		}
	}
}
