// Package httpapi holds the small wire helpers the single-process
// service API and the cluster tier share, so the two surfaces — which
// are documented as the same shape — cannot silently diverge on JSON
// envelopes, error bodies, or the draw-parameter contract.
package httpapi

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
)

// Error codes: the machine-readable slugs carried in the /v1 error
// envelope and in the gate frame protocol's error responses. Every tier
// (daemon, coordinator, worker /ctl, gate) maps its typed errors onto
// this one set, so a client can switch on the code without knowing which
// tier answered. The mapping onto typed errors is asserted 1:1 in
// internal/client's table-driven test.
const (
	// CodeBadRequest rejects malformed parameters or bodies.
	CodeBadRequest = "bad_request"
	// CodeDraining rejects assignments to a worker mid-drain.
	CodeDraining = "draining"
	// CodeDuplicate rejects re-assigning a session id a worker already hosts.
	CodeDuplicate = "duplicate"
	// CodeSaturated signals the session/queue bound was hit — retry later.
	CodeSaturated = "saturated"
	// CodeExhausted signals the key pool is behind demand — retry after
	// the refresher catches up.
	CodeExhausted = "exhausted"
	// CodeClosed signals a gracefully closed (zeroized) pool — permanent,
	// but the closure was asked for.
	CodeClosed = "closed"
	// CodeFailed signals a session that died permanently on its own
	// (channel failure, refresh-abort budget exhausted) — permanent, and
	// unlike CodeClosed nobody asked for it. Clients stop retrying and
	// surface the death.
	CodeFailed = "failed"
	// CodeOrphaned signals the session lost its worker and reassignment
	// is in flight — retryable.
	CodeOrphaned = "orphaned"
	// CodeNotFound signals an unknown session id.
	CodeNotFound = "not_found"
	// CodeShutdown signals the tier is shutting down.
	CodeShutdown = "shutdown"
	// CodeUnreachable signals a transport-level failure reaching the
	// owning worker.
	CodeUnreachable = "unreachable"
	// CodeInternal is the fallback for unclassified server-side failures.
	CodeInternal = "internal"
)

// ErrorDetail is the inner object of the /v1 error envelope.
type ErrorDetail struct {
	// Code is one of the Code* slugs above.
	Code string `json:"code"`
	// Message is the human-readable error string.
	Message string `json:"message"`
}

// ErrorBody is the JSON error envelope shared by every HTTP surface:
//
//	{"error":{"code":"exhausted","message":"keypool: ..."}}
//
// Code is always present; clients dispatch on it rather than parsing
// Message or guessing from the HTTP status.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Error writes the error envelope. An empty code is filled from the
// status (4xx → bad_request / not_found, 5xx → internal) so the wire
// never carries an empty code.
func Error(w http.ResponseWriter, status int, code string, err error) {
	if code == "" {
		switch {
		case status == http.StatusNotFound:
			code = CodeNotFound
		case status >= 500:
			code = CodeInternal
		default:
			code = CodeBadRequest
		}
	}
	WriteJSON(w, status, ErrorBody{Error: ErrorDetail{Code: code, Message: err.Error()}})
}

// MaxDrawBytes caps one key draw (1 MiB).
const MaxDrawBytes = 1 << 20

// DrawBytes parses the ?bytes=N query of a draw request (default 32,
// capped at MaxDrawBytes), writing the 400 itself when invalid.
func DrawBytes(w http.ResponseWriter, r *http.Request) (int, bool) {
	n := 32
	if q := r.URL.Query().Get("bytes"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 || v > MaxDrawBytes {
			Error(w, http.StatusBadRequest, CodeBadRequest, errors.New("bytes must be in 1..1048576"))
			return 0, false
		}
		n = v
	}
	return n, true
}

// Stream-range parameter contract, shared by the service /stream endpoint
// and the cluster tier's routed variant.
const (
	// MaxStreamBytes caps one stream-range read (64 MiB). Ranges above it
	// are rejected rather than truncated — the client is addressing exact
	// offsets, so a silent short read would desynchronize pad consumers.
	MaxStreamBytes = 64 << 20
	// DefaultStreamBytes is the length when ?len is absent (64 KiB).
	DefaultStreamBytes = 64 << 10
)

// StreamChunk is the copy unit for stream-range bodies: large enough to
// amortize the per-write and flush overhead, small enough that
// time-to-first-byte stays a single block derivation.
const StreamChunk = 64 << 10

// StreamBody writes the n-byte stream-range body from src as an
// application/octet-stream response with Content-Length n, flushing each
// chunk so the client's time-to-first-byte tracks the producer pipeline
// rather than the whole range. Declaring the exact length up front is the
// truncation guard MaxStreamBytes documents: if src fails mid-range, the
// handler returns with the declared length unsatisfied and the server
// aborts the connection, so the client sees an unexpected EOF — never a
// valid-looking body shorter than it asked for. Shared by the service
// /stream endpoint and the cluster tier's routed variant. Reports
// whether the full n bytes were written (false on abort — callers use
// it to label the request's outcome in metrics).
func StreamBody(w http.ResponseWriter, r *http.Request, src io.Reader, n int64) bool {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, StreamChunk)
	var written int64
	for written < n {
		c := buf
		if rem := n - written; rem < int64(len(c)) {
			c = c[:rem]
		}
		m, rerr := src.Read(c)
		if m > 0 {
			written += int64(m)
			if _, werr := w.Write(c[:m]); werr != nil {
				return false // client went away
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return false // early io.EOF or source failure: abort, loudly short
		}
		select {
		case <-r.Context().Done():
			return false
		default:
		}
	}
	return true
}

// StreamRange parses the ?offset=&len= query of a stream-range read
// (offset defaults to 0, len to DefaultStreamBytes, capped at
// MaxStreamBytes), writing the 400 itself when invalid.
func StreamRange(w http.ResponseWriter, r *http.Request) (off, n int64, ok bool) {
	n = DefaultStreamBytes
	if q := r.URL.Query().Get("offset"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil || v < 0 {
			Error(w, http.StatusBadRequest, CodeBadRequest, errors.New("offset must be a non-negative integer"))
			return 0, 0, false
		}
		off = v
	}
	if q := r.URL.Query().Get("len"); q != "" {
		v, err := strconv.ParseInt(q, 10, 64)
		if err != nil || v <= 0 || v > MaxStreamBytes {
			Error(w, http.StatusBadRequest, CodeBadRequest, errors.New("len must be in 1..67108864"))
			return 0, 0, false
		}
		n = v
	}
	return off, n, true
}
