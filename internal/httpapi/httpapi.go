// Package httpapi holds the small wire helpers the single-process
// service API and the cluster tier share, so the two surfaces — which
// are documented as the same shape — cannot silently diverge on JSON
// envelopes, error bodies, or the draw-parameter contract.
package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// ErrorBody is the JSON error envelope. Code is a machine-readable
// slug (the cluster tier uses it to map HTTP statuses back to typed
// errors); plain service errors leave it empty.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// Error writes the error envelope. code may be empty.
func Error(w http.ResponseWriter, status int, code string, err error) {
	WriteJSON(w, status, ErrorBody{Error: err.Error(), Code: code})
}

// MaxDrawBytes caps one key draw (1 MiB).
const MaxDrawBytes = 1 << 20

// DrawBytes parses the ?bytes=N query of a draw request (default 32,
// capped at MaxDrawBytes), writing the 400 itself when invalid.
func DrawBytes(w http.ResponseWriter, r *http.Request) (int, bool) {
	n := 32
	if q := r.URL.Query().Get("bytes"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 || v > MaxDrawBytes {
			Error(w, http.StatusBadRequest, "", errors.New("bytes must be in 1..1048576"))
			return 0, false
		}
		n = v
	}
	return n, true
}
