// Package eve models the eavesdropper. Eve is passive: she overhears a
// fraction of the x-packet broadcasts (per the erasure channel) and — by
// the paper's conservative assumption — every reliably broadcast control
// message: reception reports, y/z/s coefficient announcements, and the full
// contents of the z-packets.
//
// Everything Eve knows about a round is linear over the round's x-packet
// payloads, so her knowledge is a matrix over GF(2^16): one unit row per
// overheard x-packet and one composed row per overheard z-packet. The
// package answers the two questions the evaluation needs:
//
//   - UnknownSecretDims: how many of the L secret packets remain
//     information-theoretically unknown to Eve (the rank certificate that
//     defines the paper's reliability metric), and
//   - Reconstruct: Eve's constructive Gaussian-elimination attack, used by
//     the tests to confirm that the rank arithmetic matches what an actual
//     adversary can compute.
package eve

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/matrix"
)

// Sym is the protocol field symbol type (GF(2^16)).
type Sym = uint16

// Knowledge accumulates linear observations over a source space of a fixed
// dimension (the N x-packets of one round).
type Knowledge struct {
	f       *gf.Field[Sym]
	dim     int
	coeffs  [][]Sym // each row: combination over the source space
	content [][]Sym // payload symbols for the corresponding row
	width   int     // payload width in symbols, fixed by first row
	// mat caches the observation matrix built from coeffs; invalidated on
	// every new observation. Reconstruct runs once per secret row (the
	// KnownSecretCount loop), so rebuilding A per call was quadratic
	// header-and-copy churn.
	mat *matrix.Matrix[Sym]
}

// NewKnowledge creates an empty knowledge base over dim source packets.
func NewKnowledge(f *gf.Field[Sym], dim int) *Knowledge {
	return &Knowledge{f: f, dim: dim, width: -1}
}

// Dim returns the source-space dimension.
func (k *Knowledge) Dim() int { return k.dim }

// Rows returns the number of recorded observations.
func (k *Knowledge) Rows() int { return len(k.coeffs) }

// AddUnit records that Eve received source packet idx with the given
// payload (a unit row).
func (k *Knowledge) AddUnit(idx int, payload []Sym) {
	if idx < 0 || idx >= k.dim {
		panic(fmt.Sprintf("eve: unit index %d outside dim %d", idx, k.dim))
	}
	row := make([]Sym, k.dim)
	row[idx] = 1
	k.AddCombo(row, payload)
}

// AddCombo records that Eve learned the payload of the linear combination
// described by coeff (over the source space).
func (k *Knowledge) AddCombo(coeff, payload []Sym) {
	if len(coeff) != k.dim {
		panic("eve: combination length mismatch")
	}
	if k.width < 0 {
		k.width = len(payload)
	} else if len(payload) != k.width {
		panic("eve: inconsistent payload width")
	}
	k.coeffs = append(k.coeffs, append([]Sym(nil), coeff...))
	k.content = append(k.content, append([]Sym(nil), payload...))
	k.mat = nil
}

// coeffMatrix returns Eve's observation matrix A (cached between
// observations; callers must not mutate it).
func (k *Knowledge) coeffMatrix() *matrix.Matrix[Sym] {
	if k.mat == nil {
		k.mat = matrix.FromRows(k.f, k.coeffs)
	}
	return k.mat
}

// UnknownSecretDims returns rank([A; S]) - rank(A): the number of secret
// combinations (rows of S, over the source space) about which Eve has zero
// information. If it equals S.Rows() the secret is perfectly hidden.
func (k *Knowledge) UnknownSecretDims(secret *matrix.Matrix[Sym]) int {
	if secret.Cols() != k.dim {
		panic("eve: secret dimension mismatch")
	}
	a := k.coeffMatrix()
	if a.Rows() == 0 {
		return secret.Rank()
	}
	return matrix.Stack(a, secret).Rank() - a.Rank()
}

// Reconstruct attempts Eve's constructive attack on a single secret
// combination: if the combination lies in the row space of her
// observations, she recovers its payload by Gaussian elimination. The
// second return reports success.
func (k *Knowledge) Reconstruct(secretCoeff []Sym) ([]Sym, bool) {
	if len(secretCoeff) != k.dim {
		panic("eve: secret combination length mismatch")
	}
	a := k.coeffMatrix()
	if a.Rows() == 0 {
		return nil, false
	}
	combo, err := matrix.SolveLeft(a, secretCoeff)
	if err != nil {
		// Not uniquely expressible; check membership the robust way, and
		// if the vector is in the row space find *a* solution by reduced
		// elimination over an augmented system.
		if !matrix.InRowSpace(a, secretCoeff) {
			return nil, false
		}
		combo = k.anySolution(secretCoeff)
		if combo == nil {
			return nil, false
		}
	}
	out := make([]Sym, k.width)
	k.f.AddMulSlices(out, k.content, combo)
	return out, true
}

// anySolution finds some x with x*A = v when solutions exist but are not
// unique (A has dependent rows). It runs the panel Gauss-Jordan engine on
// A^T augmented with v and reads the particular solution with free
// variables at zero straight off the pivot rows.
func (k *Knowledge) anySolution(v []Sym) []Sym {
	f := k.f
	at := k.coeffMatrix().Transpose() // dim x rows
	n, m := at.Rows(), at.Cols()
	aug := matrix.New(f, n, m+1)
	for i := 0; i < n; i++ {
		copy(aug.Row(i)[:m], at.Row(i))
		aug.Set(i, m, v[i])
	}
	pivots := matrix.GaussJordan(aug, m)
	// Inconsistent?
	for i := len(pivots); i < n; i++ {
		if aug.At(i, m) != 0 {
			return nil
		}
	}
	x := make([]Sym, m)
	for _, p := range pivots {
		x[p.Col] = aug.At(p.Row, m)
	}
	return x
}

// KnownSecretCount returns how many of the secret rows Eve can actually
// reconstruct constructively. For consistency with the rank certificate:
// S.Rows() - UnknownSecretDims(S) counts *dimensions*, while this method
// counts reconstructable rows; the two agree when the secret rows are
// linearly independent and either all or none lie in Eve's span, and the
// tests cross-check both views.
func (k *Knowledge) KnownSecretCount(secret *matrix.Matrix[Sym]) int {
	n := 0
	for i := 0; i < secret.Rows(); i++ {
		row := make([]Sym, secret.Cols())
		copy(row, secret.Row(i))
		if _, ok := k.Reconstruct(row); ok {
			n++
		}
	}
	return n
}
