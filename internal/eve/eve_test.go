package eve

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
	"repro/internal/matrix"
)

func f16() *gf.Field[Sym] { return gf.GF65536() }

func randPayload(rng *rand.Rand, w int) []Sym {
	p := make([]Sym, w)
	for i := range p {
		p[i] = Sym(rng.Intn(65536))
	}
	return p
}

func TestUnitAndComboRecording(t *testing.T) {
	k := NewKnowledge(f16(), 5)
	if k.Dim() != 5 || k.Rows() != 0 {
		t.Fatal("fresh knowledge wrong")
	}
	k.AddUnit(2, []Sym{7, 8})
	k.AddCombo([]Sym{1, 1, 0, 0, 0}, []Sym{9, 9})
	if k.Rows() != 2 {
		t.Fatalf("rows = %d", k.Rows())
	}
}

func TestPanics(t *testing.T) {
	k := NewKnowledge(f16(), 3)
	for i, fn := range []func(){
		func() { k.AddUnit(3, []Sym{1}) },
		func() { k.AddUnit(-1, []Sym{1}) },
		func() { k.AddCombo([]Sym{1, 2}, []Sym{1}) },
		func() {
			k.AddUnit(0, []Sym{1, 2})
			k.AddUnit(1, []Sym{1}) // width mismatch
		},
		func() { k.UnknownSecretDims(matrix.New(f16(), 1, 2)) },
		func() { k.Reconstruct([]Sym{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPerfectSecrecyCase(t *testing.T) {
	// Source space of 4 packets. Eve knows x0 and x1. Secrets built on
	// x2, x3 are perfectly hidden; secrets touching only x0, x1 are known.
	rng := rand.New(rand.NewSource(1))
	x := make([][]Sym, 4)
	for i := range x {
		x[i] = randPayload(rng, 6)
	}
	k := NewKnowledge(f16(), 4)
	k.AddUnit(0, x[0])
	k.AddUnit(1, x[1])

	secret := matrix.FromRows(f16(), [][]Sym{
		{0, 0, 1, 1}, // x2+x3: unknown
		{0, 0, 1, 2}, // x2+2*x3: unknown (but only 2 dims total in x2,x3!)
	})
	if got := k.UnknownSecretDims(secret); got != 2 {
		t.Fatalf("unknown dims = %d, want 2", got)
	}
	known := matrix.FromRows(f16(), [][]Sym{{1, 1, 0, 0}})
	if got := k.UnknownSecretDims(known); got != 0 {
		t.Fatalf("unknown dims = %d, want 0", got)
	}

	// Constructive attack agrees.
	if _, ok := k.Reconstruct([]Sym{0, 0, 1, 1}); ok {
		t.Fatal("Eve reconstructed a hidden secret")
	}
	got, ok := k.Reconstruct([]Sym{1, 1, 0, 0})
	if !ok {
		t.Fatal("Eve failed to reconstruct a known combination")
	}
	want := make([]Sym, 6)
	f16().AddMulSlice(want, x[0], 1)
	f16().AddMulSlice(want, x[1], 1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reconstructed payload wrong at %d", i)
		}
	}
}

func TestPartialLeakage(t *testing.T) {
	// Eve knows x0; secret rows are x0 (known) and x1 (unknown): exactly
	// one unknown dimension.
	k := NewKnowledge(f16(), 2)
	k.AddUnit(0, []Sym{42})
	secret := matrix.FromRows(f16(), [][]Sym{{1, 0}, {0, 1}})
	if got := k.UnknownSecretDims(secret); got != 1 {
		t.Fatalf("unknown dims = %d, want 1", got)
	}
	if got := k.KnownSecretCount(secret); got != 1 {
		t.Fatalf("known rows = %d, want 1", got)
	}
}

func TestEmptyKnowledge(t *testing.T) {
	k := NewKnowledge(f16(), 3)
	secret := matrix.FromRows(f16(), [][]Sym{{1, 0, 0}})
	if got := k.UnknownSecretDims(secret); got != 1 {
		t.Fatalf("unknown dims = %d", got)
	}
	if _, ok := k.Reconstruct([]Sym{1, 0, 0}); ok {
		t.Fatal("reconstruction from nothing")
	}
}

func TestReconstructWithDependentRows(t *testing.T) {
	// Eve has redundant observations (same combo twice, plus their sum);
	// SolveLeft is underdetermined but reconstruction must still work.
	rng := rand.New(rand.NewSource(2))
	x := [][]Sym{randPayload(rng, 4), randPayload(rng, 4)}
	f := f16()
	sum := make([]Sym, 4)
	f.AddMulSlice(sum, x[0], 1)
	f.AddMulSlice(sum, x[1], 1)

	k := NewKnowledge(f, 2)
	k.AddUnit(0, x[0])
	k.AddUnit(0, x[0]) // duplicate
	k.AddCombo([]Sym{1, 1}, sum)

	got, ok := k.Reconstruct([]Sym{0, 1}) // x1 = (x0+x1) - x0
	if !ok {
		t.Fatal("failed to reconstruct despite spanning knowledge")
	}
	for i := range got {
		if got[i] != x[1][i] {
			t.Fatalf("payload wrong at %d", i)
		}
	}
	// Rank certificate agrees: nothing unknown.
	secret := matrix.FromRows(f, [][]Sym{{0, 1}})
	if d := k.UnknownSecretDims(secret); d != 0 {
		t.Fatalf("unknown dims = %d", d)
	}
}

func TestRankCertificateMatchesAttackRandomized(t *testing.T) {
	// Random knowledge bases and random INDEPENDENT secret rows: the
	// constructive attack must recover a row iff it lies in Eve's span,
	// and the number of unknown dims must equal secret rows minus
	// reconstructable rows whenever the secret rows are independent and
	// each is either fully in or fully out of the span. We build secrets
	// as: some rows taken from Eve's span, some random (independent).
	f := f16()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		dim := rng.Intn(10) + 4
		k := NewKnowledge(f, dim)
		x := make([][]Sym, dim)
		for i := range x {
			x[i] = randPayload(rng, 3)
		}
		// Eve receives a random subset.
		nKnown := rng.Intn(dim)
		for _, idx := range rng.Perm(dim)[:nKnown] {
			k.AddUnit(idx, x[idx])
		}
		// Plus one random combo she overheard.
		combo := make([]Sym, dim)
		payload := make([]Sym, 3)
		for j := 0; j < dim; j++ {
			combo[j] = Sym(rng.Intn(65536))
			f.AddMulSlice(payload, x[j], combo[j])
		}
		k.AddCombo(combo, payload)

		// Secret: one row inside the span (sum of two knowledge rows if
		// possible), one random row.
		inSpan := make([]Sym, dim)
		copy(inSpan, combo)
		rec, ok := k.Reconstruct(inSpan)
		if !ok {
			t.Fatalf("trial %d: combo row not reconstructable", trial)
		}
		for i := range rec {
			if rec[i] != payload[i] {
				t.Fatalf("trial %d: combo payload mismatch", trial)
			}
		}
		random := make([]Sym, dim)
		for j := range random {
			random[j] = Sym(rng.Intn(65536))
		}
		inSpanExpected := matrix.InRowSpace(k.coeffMatrix(), random)
		_, gotOK := k.Reconstruct(random)
		if gotOK != inSpanExpected {
			t.Fatalf("trial %d: attack success %v but span membership %v", trial, gotOK, inSpanExpected)
		}
	}
}
