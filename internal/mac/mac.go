// Package mac models the 802.11-style medium-access timing of the paper's
// deployment ("Asus WL-500gP wireless routers running 802.11g … when a
// terminal transmits, it sends 100-byte packets at 1 Mbps"), so that
// secret rates can be derived from actual channel time rather than a bare
// bits/rate division.
//
// The model follows 802.11 DSSS timing at 1 Mbps with long preambles: a
// frame costs DIFS + mean backoff + PLCP preamble/header + (MAC header +
// payload) at the data rate; a reliably-delivered frame additionally costs
// one SIFS + ACK exchange per intended receiver (the paper's reliable
// broadcast is built from acknowledgments and retransmissions — we charge
// the acknowledgment round even when no retransmission is needed, which
// is the lossless lower bound).
package mac

import "time"

// 802.11 DSSS timing constants (1 and 2 Mbps PHY).
const (
	// SlotTime is the 802.11b/g (long slot) slot duration.
	SlotTime = 20 * time.Microsecond
	// SIFS separates a data frame from its acknowledgment.
	SIFS = 10 * time.Microsecond
	// DIFS is the idle period before a transmission (SIFS + 2 slots).
	DIFS = SIFS + 2*SlotTime
	// PLCPLongPreamble is the long PLCP preamble + header, always sent at
	// 1 Mbps.
	PLCPLongPreamble = 192 * time.Microsecond
	// CWMin is the minimum contention window (802.11b): the mean backoff
	// with no contention is CWMin/2 slots.
	CWMin = 31
	// MACOverheadBytes is the data MAC header (24) plus FCS (4).
	MACOverheadBytes = 28
	// ACKBytes is an ACK control frame.
	ACKBytes = 14
)

// meanBackoff is the expected backoff with an idle channel: CWMin/2
// slots (15.5 slots of 20µs = 310µs).
const meanBackoff = CWMin * SlotTime / 2

// Model computes airtime at a configured PHY rate.
type Model struct {
	// RateBps is the data rate (the paper's experiments use 1 Mbps).
	RateBps float64
}

// Default returns the paper's 1 Mbps configuration.
func Default() Model { return Model{RateBps: 1e6} }

// payloadTime is the serialization time of n bytes at the data rate.
func (m Model) payloadTime(n int) time.Duration {
	return time.Duration(float64(n*8) / m.RateBps * float64(time.Second))
}

// FrameAirtime is the on-air duration of a single data frame carrying
// payloadBytes (channel access + preamble + MAC framing + payload).
func (m Model) FrameAirtime(payloadBytes int) time.Duration {
	return DIFS + meanBackoff + PLCPLongPreamble + m.payloadTime(MACOverheadBytes+payloadBytes)
}

// AckAirtime is the SIFS + ACK exchange for one receiver.
func (m Model) AckAirtime() time.Duration {
	return SIFS + PLCPLongPreamble + m.payloadTime(ACKBytes)
}

// BroadcastAirtime is one unreliable broadcast (no acknowledgments —
// 802.11 broadcasts are unacknowledged).
func (m Model) BroadcastAirtime(payloadBytes int) time.Duration {
	return m.FrameAirtime(payloadBytes)
}

// ReliableAirtime is one reliably-delivered broadcast to `receivers`
// nodes: the frame plus one acknowledgment exchange per receiver
// (lossless lower bound; retransmissions would add further frames).
func (m Model) ReliableAirtime(payloadBytes, receivers int) time.Duration {
	if receivers < 0 {
		receivers = 0
	}
	return m.FrameAirtime(payloadBytes) + time.Duration(receivers)*m.AckAirtime()
}

// Accountant accumulates the airtime of a protocol session.
type Accountant struct {
	model   Model
	airtime time.Duration
	frames  int
}

// NewAccountant creates an accountant for the given model.
func NewAccountant(model Model) *Accountant { return &Accountant{model: model} }

// Data charges one unreliable broadcast.
func (a *Accountant) Data(payloadBytes int) {
	a.airtime += a.model.BroadcastAirtime(payloadBytes)
	a.frames++
}

// Reliable charges one reliable broadcast to the given receiver count.
func (a *Accountant) Reliable(payloadBytes, receivers int) {
	a.airtime += a.model.ReliableAirtime(payloadBytes, receivers)
	a.frames++
}

// Airtime returns the accumulated channel time.
func (a *Accountant) Airtime() time.Duration { return a.airtime }

// Frames returns the number of frames charged.
func (a *Accountant) Frames() int { return a.frames }

// SecretRateKbps converts a secret size and an airtime into the secret
// generation rate the paper reports.
func SecretRateKbps(secretBits int64, airtime time.Duration) float64 {
	if airtime <= 0 {
		return 0
	}
	return float64(secretBits) / airtime.Seconds() / 1000
}
