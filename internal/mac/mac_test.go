package mac

import (
	"testing"
	"time"
)

func TestFrameAirtime(t *testing.T) {
	m := Default()
	// 100-byte payload at 1 Mbps: DIFS(50µs) + backoff(310µs) +
	// preamble(192µs) + (28+100)*8 bits @1Mbps = 1024µs -> 1576µs.
	got := m.FrameAirtime(100)
	want := 1576 * time.Microsecond
	if got != want {
		t.Fatalf("FrameAirtime(100) = %v, want %v", got, want)
	}
	// Monotone in payload.
	if m.FrameAirtime(200) <= got {
		t.Fatal("airtime not monotone in payload")
	}
}

func TestAckAndReliable(t *testing.T) {
	m := Default()
	ack := m.AckAirtime()
	// SIFS(10µs) + preamble(192µs) + 14*8 bits = 112µs -> 314µs.
	if ack != 314*time.Microsecond {
		t.Fatalf("AckAirtime = %v", ack)
	}
	if m.ReliableAirtime(100, 0) != m.FrameAirtime(100) {
		t.Fatal("zero receivers should cost a bare frame")
	}
	if m.ReliableAirtime(100, 3) != m.FrameAirtime(100)+3*ack {
		t.Fatal("per-receiver ack accounting wrong")
	}
	if m.ReliableAirtime(100, -1) != m.FrameAirtime(100) {
		t.Fatal("negative receivers should clamp")
	}
	if m.BroadcastAirtime(100) != m.FrameAirtime(100) {
		t.Fatal("broadcasts are unacknowledged")
	}
}

func TestAccountant(t *testing.T) {
	a := NewAccountant(Default())
	a.Data(100)
	a.Data(100)
	a.Reliable(40, 2)
	if a.Frames() != 3 {
		t.Fatalf("frames = %d", a.Frames())
	}
	want := 2*Default().BroadcastAirtime(100) + Default().ReliableAirtime(40, 2)
	if a.Airtime() != want {
		t.Fatalf("airtime = %v, want %v", a.Airtime(), want)
	}
}

func TestSecretRateKbps(t *testing.T) {
	// 38,000 bits in one second = 38 kbps (the paper's headline shape).
	if got := SecretRateKbps(38000, time.Second); got != 38 {
		t.Fatalf("rate = %v", got)
	}
	if SecretRateKbps(100, 0) != 0 {
		t.Fatal("zero airtime should not divide")
	}
}

func TestRateScaling(t *testing.T) {
	fast := Model{RateBps: 11e6}
	slow := Default()
	if fast.FrameAirtime(1000) >= slow.FrameAirtime(1000) {
		t.Fatal("higher rate should shorten frames")
	}
	// Fixed overheads (preamble, DIFS) do not scale with rate.
	if fast.FrameAirtime(0) < DIFS+PLCPLongPreamble {
		t.Fatal("fixed overhead missing")
	}
}
