// Package trace provides a structured event log for protocol sessions:
// what each round did (leader, receptions, plan, outcome) in a form that
// can be rendered as text or JSON. The engine emits events only when a
// tracer is configured, so the zero-cost default stays zero-cost.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Event kinds emitted by the session engine.
const (
	KindRoundStart    = "round_start"
	KindXPhaseDone    = "x_phase_done"
	KindPlanBuilt     = "plan_built"
	KindRoundAborted  = "round_aborted"
	KindSecretDerived = "secret_derived"
	KindSessionDone   = "session_done"
)

// Event is one protocol occurrence. Attrs hold small scalar details
// (counts, rates); keys are stable and documented at the emit sites.
type Event struct {
	Kind  string         `json:"kind"`
	Round int            `json:"round"`
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Tracer receives events. Implementations must be safe for use from a
// single session goroutine; the engine never emits concurrently.
type Tracer interface {
	Emit(Event)
}

// Log is a Tracer that collects events in memory. It is safe for
// concurrent use.
type Log struct {
	mu     sync.Mutex
	events []Event
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Emit implements Tracer.
func (l *Log) Emit(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	// Copy attrs so callers can reuse maps.
	if e.Attrs != nil {
		cp := make(map[string]any, len(e.Attrs))
		for k, v := range e.Attrs {
			cp[k] = v
		}
		e.Attrs = cp
	}
	l.events = append(l.events, e)
}

// Events returns a snapshot of the collected events.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Len returns the number of collected events.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// WriteJSON renders the log as a JSON array.
func (l *Log) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l.Events())
}

// WriteText renders the log as one aligned line per event.
func (l *Log) WriteText(w io.Writer) error {
	for _, e := range l.Events() {
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var attrs strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&attrs, " %s=%v", k, e.Attrs[k])
		}
		if _, err := fmt.Fprintf(w, "round=%-3d %-16s%s\n", e.Round, e.Kind, attrs.String()); err != nil {
			return err
		}
	}
	return nil
}

// Nop is a Tracer that discards everything.
type Nop struct{}

// Emit implements Tracer.
func (Nop) Emit(Event) {}
