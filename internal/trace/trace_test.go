package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestLogCollects(t *testing.T) {
	l := NewLog()
	l.Emit(Event{Kind: KindRoundStart, Round: 0, Attrs: map[string]any{"leader": 0}})
	l.Emit(Event{Kind: KindSecretDerived, Round: 0, Attrs: map[string]any{"secret_packets": 5}})
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	evs := l.Events()
	if evs[0].Kind != KindRoundStart || evs[1].Kind != KindSecretDerived {
		t.Fatalf("events = %+v", evs)
	}
}

func TestEmitCopiesAttrs(t *testing.T) {
	l := NewLog()
	attrs := map[string]any{"x": 1}
	l.Emit(Event{Kind: "k", Attrs: attrs})
	attrs["x"] = 99
	if l.Events()[0].Attrs["x"] != 1 {
		t.Fatal("attrs aliased")
	}
}

func TestWriteJSON(t *testing.T) {
	l := NewLog()
	l.Emit(Event{Kind: KindPlanBuilt, Round: 2, Attrs: map[string]any{"m": 7, "l": 3}})
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []Event
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0].Kind != KindPlanBuilt || decoded[0].Round != 2 {
		t.Fatalf("decoded = %+v", decoded)
	}
}

func TestWriteText(t *testing.T) {
	l := NewLog()
	l.Emit(Event{Kind: KindRoundStart, Round: 1, Attrs: map[string]any{"b": 2, "a": 1}})
	var buf bytes.Buffer
	if err := l.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "round_start") || !strings.Contains(s, "a=1 b=2") {
		t.Fatalf("text = %q", s)
	}
}

func TestConcurrentEmit(t *testing.T) {
	l := NewLog()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Emit(Event{Kind: "k", Round: i})
			}
		}(i)
	}
	wg.Wait()
	if l.Len() != 1600 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestNop(t *testing.T) {
	var n Nop
	n.Emit(Event{Kind: "anything"}) // must not panic
}
