// Package sweep is the deterministic worker-pool engine behind every
// experiment grid in the repository: Figure-2 placement sweeps,
// Monte-Carlo session batches, ablation cells and the rotation check all
// enumerate their jobs up front and evaluate them here.
//
// Determinism contract: each job is a pure function of its enumeration
// index — it derives any randomness from a seed computed from
// (baseSeed, jobIndex), never from shared state — and results are
// reassembled in enumeration order. Under that contract the output is
// byte-identical for every worker count, so parallel sweeps reproduce the
// serial tables bit for bit and a fixed seed pins a published figure.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes 0:
// one per available CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// Seed derives a decorrelated per-job seed from a base seed and a job
// index (splitmix64 finalizer). New call sites should prefer this over
// ad-hoc linear offsets; the figures package keeps its historical
// base+index*prime formulas so that published tables stay reproducible.
func Seed(base int64, index int) int64 {
	z := uint64(base) + uint64(index)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Run evaluates jobs 0..n-1 with fn across the given number of worker
// goroutines (0 means DefaultWorkers) and returns the results in
// enumeration order. Each index is evaluated exactly once.
//
// If any job returns an error, Run returns the error of the failing job
// with the lowest index — the same error a serial loop would surface —
// and nil results. Workers stop claiming new jobs after the first error
// or panic; jobs already in flight still complete. A panicking job
// re-panics on the caller.
func Run[T any](workers, n int, fn func(idx int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		errIdx   = n
		panicVal any
		panicked bool
	)
	work := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if !panicked {
					panicked, panicVal = true, r
				}
				mu.Unlock()
			}
		}()
		for {
			// Check stop BEFORE claiming: a claimed index must always be
			// executed, or the lowest-index-error guarantee breaks (a
			// claimed-but-abandoned low index could lose to a later
			// failure that was processed first).
			mu.Lock()
			stop := panicked || firstErr != nil
			mu.Unlock()
			if stop {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			v, err := fn(i)
			if err != nil {
				mu.Lock()
				if i < errIdx {
					errIdx, firstErr = i, err
				}
				mu.Unlock()
				continue
			}
			out[i] = v
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go work()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
