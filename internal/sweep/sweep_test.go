package sweep

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestRunOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		var calls atomic.Int64
		out, err := Run(workers, 37, func(i int) (int, error) {
			calls.Add(1)
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if calls.Load() != 37 {
			t.Fatalf("workers=%d: %d calls", workers, calls.Load())
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	out, err := Run(4, 0, func(int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestRunLowestErrorWins(t *testing.T) {
	// Jobs 5 and 20 fail; every worker count must report job 5's error,
	// matching what a serial loop surfaces.
	for _, workers := range []int{1, 4, 16} {
		_, err := Run(workers, 30, func(i int) (int, error) {
			if i == 5 || i == 20 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 5 failed" {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v", r)
		}
	}()
	Run(4, 10, func(i int) (int, error) {
		if i == 3 {
			panic("boom")
		}
		return i, nil
	})
	t.Fatal("no panic")
}

// TestRunDeterministicUnderLoad is the engine-level determinism property:
// jobs that derive all randomness from Seed(base, index) produce identical
// results for every worker count.
func TestRunDeterministicUnderLoad(t *testing.T) {
	job := func(i int) (uint64, error) {
		rng := rand.New(rand.NewSource(Seed(99, i)))
		var acc uint64
		for k := 0; k < 1000; k++ {
			acc = acc*31 + uint64(rng.Intn(1<<16))
		}
		return acc, nil
	}
	ref, err := Run(1, 64, job)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 32} {
		got, err := Run(workers, 64, job)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: job %d diverged", workers, i)
			}
		}
	}
}

func TestSeedDecorrelates(t *testing.T) {
	seen := map[int64]int{}
	for base := int64(0); base < 4; base++ {
		for i := 0; i < 1000; i++ {
			s := Seed(base, i)
			if j, dup := seen[s]; dup {
				t.Fatalf("seed collision: %d (index %d)", s, j)
			}
			seen[s] = i
		}
	}
	if Seed(1, 2) == Seed(2, 1) {
		t.Fatal("base/index symmetric")
	}
}

func TestRunErrorDoesNotReturnPartialResults(t *testing.T) {
	out, err := Run(4, 10, func(i int) (int, error) {
		if i == 0 {
			return 0, errors.New("first fails")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
