package cluster

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/service"
)

// WorkerConfig parameterizes one worker process.
type WorkerConfig struct {
	// Capacity bounds concurrently running sessions on this worker (the
	// underlying service's runner pool). 0 means 16.
	Capacity int
	// DrainTimeout bounds each session's graceful drain. 0 means 10s.
	DrainTimeout time.Duration
	// Obs is the worker's metrics registry. Nil means a PRIVATE registry
	// per worker — not the process default — so the coordinator's fleet
	// merge (/v1/cluster/metrics) never double-counts a sample when
	// workers share its process (the InProcess spawner).
	Obs *obs.Registry
	// Spans is the worker's span ring. Nil means a private ring.
	Spans *obs.SpanLog
}

func (c *WorkerConfig) fill() {
	if c.Capacity <= 0 {
		c.Capacity = 16
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
}

// Worker hosts a bounded set of cluster sessions on one service instance
// and answers the coordinator's control RPC. Sessions are addressed by
// their cluster id; the worker-local service id is an implementation
// detail the coordinator never sees.
type Worker struct {
	cfg   WorkerConfig
	svc   *service.Service
	obs   *obs.Registry
	spans *obs.SpanLog

	mu        sync.Mutex
	byCluster map[uint64]*service.Session
	pending   map[uint64]bool // assigns in flight (duplicate-check to map-insert)
	draining  bool
	// failedIDs is a bounded FIFO memory of cluster ids whose session
	// died permanently, so lookups after the prune answer ErrFailed
	// instead of a bare ErrNotFound (mirrors Service's failure memory).
	failedIDs map[uint64]struct{}
	failedLog []uint64

	drainOnce sync.Once
	drained   chan struct{} // closed once Drain has zeroized every pool

	// lastCtl is the unix-nano arrival time of the most recent control
	// RPC. A supervised worker process uses it to tell "my coordinator
	// is gone for good" from "my coordinator is restarting and will
	// re-adopt me": heartbeat probes from an adopting coordinator reset
	// the clock, sustained control silence is a real orphaning.
	lastCtl atomic.Int64
}

// NewWorker starts a worker around a fresh service instance.
func NewWorker(cfg WorkerConfig) *Worker {
	cfg.fill()
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	if cfg.Spans == nil {
		cfg.Spans = obs.NewSpanLog(obs.DefaultSpanCapacity)
	}
	return &Worker{
		cfg:   cfg,
		obs:   cfg.Obs,
		spans: cfg.Spans,
		svc: service.New(service.Config{
			MaxSessions:  cfg.Capacity,
			MaxQueued:    cfg.Capacity,
			DrainTimeout: cfg.DrainTimeout,
			Obs:          cfg.Obs,
			Spans:        cfg.Spans,
		}),
		byCluster: make(map[uint64]*service.Session),
		pending:   make(map[uint64]bool),
		drained:   make(chan struct{}),
	}
}

// Obs returns the worker's metrics registry (never nil).
func (w *Worker) Obs() *obs.Registry { return w.obs }

// Spans returns the worker's span ring (never nil).
func (w *Worker) Spans() *obs.SpanLog { return w.spans }

// Service exposes the underlying session manager (metrics, tests).
func (w *Worker) Service() *service.Service { return w.svc }

// Assign places cluster session cid on this worker. Cluster sessions run
// over real sockets: the coordinator forces UDP in the spec it sends.
func (w *Worker) Assign(cid uint64, spec service.SessionSpec) (*service.Session, error) {
	w.mu.Lock()
	if w.draining {
		w.mu.Unlock()
		return nil, ErrDraining
	}
	if w.pending[cid] {
		// A concurrent assign for the same id is between its duplicate
		// check and its map insert; without this reservation both would
		// create sessions and one would leak untracked.
		w.mu.Unlock()
		return nil, fmt.Errorf("%w: cluster session %d (assign in flight)", ErrDuplicate, cid)
	}
	if old, ok := w.byCluster[cid]; ok {
		// A finished session may linger in the map; only a live one makes
		// the assignment a duplicate.
		if st := old.State(); st != service.StateClosed && st != service.StateFailed {
			w.mu.Unlock()
			return nil, fmt.Errorf("%w: cluster session %d", ErrDuplicate, cid)
		}
		delete(w.byCluster, cid)
	}
	w.pending[cid] = true
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.pending, cid)
		w.mu.Unlock()
	}()

	s, err := w.svc.Create(spec)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	if w.draining {
		// Drain began while the session was being created; don't strand it.
		w.mu.Unlock()
		s.Close()
		return nil, ErrDraining
	}
	w.byCluster[cid] = s
	if _, ok := w.failedIDs[cid]; ok {
		// The id lives again (same spec re-placed); forget the old death.
		delete(w.failedIDs, cid)
		for i, id := range w.failedLog {
			if id == cid {
				w.failedLog = append(w.failedLog[:i], w.failedLog[i+1:]...)
				break
			}
		}
	}
	w.mu.Unlock()
	return s, nil
}

// lookup resolves a cluster id to its live session, pruning sessions that
// finished on their own (failed channels, explicit closes).
func (w *Worker) lookup(cid uint64) (*service.Session, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s, ok := w.byCluster[cid]
	if !ok {
		if _, failed := w.failedIDs[cid]; failed {
			return nil, fmt.Errorf("cluster session %d: %w", cid, service.ErrFailed)
		}
		return nil, fmt.Errorf("%w: cluster session %d", ErrNotFound, cid)
	}
	if st := s.State(); st == service.StateClosed || st == service.StateFailed {
		delete(w.byCluster, cid)
		if st == service.StateFailed {
			w.noteFailed(cid)
			return nil, fmt.Errorf("cluster session %d: %w", cid, service.ErrFailed)
		}
		return nil, fmt.Errorf("%w: cluster session %d %v", ErrNotFound, cid, st)
	}
	return s, nil
}

// noteFailed records a permanently dead cluster id (caller holds w.mu).
func (w *Worker) noteFailed(cid uint64) {
	if w.failedIDs == nil {
		w.failedIDs = make(map[uint64]struct{})
	}
	if _, ok := w.failedIDs[cid]; ok {
		return
	}
	w.failedIDs[cid] = struct{}{}
	w.failedLog = append(w.failedLog, cid)
	if len(w.failedLog) > failedMemory {
		delete(w.failedIDs, w.failedLog[0])
		w.failedLog = w.failedLog[1:]
	}
}

// failedMemory bounds the worker's dead-session memory, mirroring the
// service-level bound.
const failedMemory = 1024

// Close gracefully stops one cluster session.
func (w *Worker) Close(cid uint64) error {
	s, err := w.lookup(cid)
	if err != nil {
		return err
	}
	w.mu.Lock()
	delete(w.byCluster, cid)
	w.mu.Unlock()
	s.Close()
	return nil
}

// Draw dispenses key material from a cluster session's pool.
func (w *Worker) Draw(cid uint64, n int) ([]byte, error) {
	s, err := w.lookup(cid)
	if err != nil {
		return nil, err
	}
	return s.Draw(n)
}

// errPoolFedOffset rejects non-zero offsets on pool-fed sessions — a
// pool pop has no address space, so honoring the offset would silently
// hand back the wrong bytes.
var errPoolFedOffset = errors.New("cluster: session is pool-fed; offsets are not addressable")

// streamSource resolves a cluster session's [off, off+n) key-material
// range to a reader. Cluster sessions run over UDP, so they are pool-fed,
// not stream-fed: the read is served by the single-lock bulk draw
// (consuming, offset 0 only). If a directly-assigned session happens to
// be stream-fed, the read addresses its keystream instead — on demand,
// never materializing the range worker-side.
func (w *Worker) streamSource(cid uint64, off, n int64) (io.Reader, error) {
	s, err := w.lookup(cid)
	if err != nil {
		return nil, err
	}
	src, err := s.StreamRange(off, n)
	if errors.Is(err, service.ErrNoStream) {
		if off != 0 {
			return nil, fmt.Errorf("%w (session %d)", errPoolFedOffset, cid)
		}
		key, derr := s.DrawBulk(int(n))
		if derr != nil {
			return nil, derr
		}
		return bytes.NewReader(key), nil
	}
	if err != nil {
		return nil, err
	}
	return src, nil
}

// StreamRead returns key-material bytes [off, off+n) from a cluster
// session, materialized — the programmatic convenience over the
// streaming streamSource the HTTP handler uses.
func (w *Worker) StreamRead(cid uint64, off, n int64) ([]byte, error) {
	src, err := w.streamSource(cid, off, n)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(src, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Metrics snapshots one cluster session.
func (w *Worker) Metrics(cid uint64) (service.SessionMetrics, error) {
	s, err := w.lookup(cid)
	if err != nil {
		return service.SessionMetrics{}, err
	}
	return s.Metrics(), nil
}

// Drain gracefully stops every session and zeroizes every pool (the
// underlying service shutdown). After Drain the worker rejects
// assignments; a supervised worker process exits once Drained fires.
func (w *Worker) Drain(ctx context.Context) error {
	w.mu.Lock()
	w.draining = true
	w.mu.Unlock()
	err := w.svc.Shutdown(ctx)
	w.drainOnce.Do(func() { close(w.drained) })
	return err
}

// Drained is closed once Drain has completed.
func (w *Worker) Drained() <-chan struct{} { return w.drained }

// WorkerStats is the /ctl/stats snapshot.
type WorkerStats struct {
	PID      int  `json:"pid"`
	Capacity int  `json:"capacity"`
	Draining bool `json:"draining"`
	// Sessions maps cluster session ids to their live metrics.
	Sessions map[uint64]service.SessionMetrics `json:"sessions"`
}

// Stats snapshots the worker: capacity, drain state, and every live
// cluster session. Finished sessions are pruned as a side effect, so the
// coordinator's reconciliation sees them disappear.
func (w *Worker) Stats() WorkerStats {
	w.mu.Lock()
	live := make(map[uint64]*service.Session, len(w.byCluster))
	for cid, s := range w.byCluster {
		if st := s.State(); st == service.StateClosed || st == service.StateFailed {
			delete(w.byCluster, cid)
			continue
		}
		live[cid] = s
	}
	st := WorkerStats{
		PID:      os.Getpid(),
		Capacity: w.cfg.Capacity,
		Draining: w.draining,
		Sessions: make(map[uint64]service.SessionMetrics, len(live)),
	}
	w.mu.Unlock()
	for cid, s := range live {
		st.Sessions[cid] = s.Metrics()
	}
	return st
}

// LastControlActivity reports when the last control RPC arrived (zero
// time if none has yet).
func (w *Worker) LastControlActivity() time.Time {
	ns := w.lastCtl.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Handler returns the worker's HTTP surface: the control RPC under /ctl/
// plus the ordinary service handler (its /metrics and /v1/sessions views
// stay useful for debugging a single worker). Control requests stamp
// LastControlActivity before dispatch.
func (w *Worker) Handler() http.Handler {
	inner := w.ctlMux()
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/ctl/") {
			w.lastCtl.Store(time.Now().UnixNano())
		}
		inner.ServeHTTP(rw, r)
	})
}

func (w *Worker) ctlMux() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", w.svc.Handler())
	mux.HandleFunc("GET /ctl/healthz", func(rw http.ResponseWriter, r *http.Request) {
		w.mu.Lock()
		draining := w.draining
		sessions := len(w.byCluster)
		w.mu.Unlock()
		status := "ok"
		if draining {
			status = "draining"
		}
		writeJSON(rw, http.StatusOK, map[string]any{
			"status": status, "sessions": sessions, "pid": os.Getpid(),
		})
	})
	mux.HandleFunc("GET /ctl/stats", func(rw http.ResponseWriter, r *http.Request) {
		writeJSON(rw, http.StatusOK, w.Stats())
	})
	mux.HandleFunc("GET /ctl/metrics", func(rw http.ResponseWriter, r *http.Request) {
		// The coordinator's fleet scrape: the registry snapshot in its JSON
		// wire form, ready for bucket-wise merging coordinator-side.
		writeJSON(rw, http.StatusOK, w.obs.Snapshot())
	})
	mux.Handle("GET /ctl/trace", w.spans.Handler())
	mux.HandleFunc("POST /ctl/assign", func(rw http.ResponseWriter, r *http.Request) {
		var req assignRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(rw, http.StatusBadRequest, "", err)
			return
		}
		s, err := w.Assign(req.ID, req.Spec)
		if err != nil {
			switch {
			case errors.Is(err, ErrDraining):
				httpError(rw, http.StatusServiceUnavailable, codeDraining, err)
			case errors.Is(err, ErrDuplicate):
				httpError(rw, http.StatusConflict, codeDuplicate, err)
			case errors.Is(err, service.ErrSaturated):
				httpError(rw, http.StatusTooManyRequests, codeSaturated, err)
			default:
				httpError(rw, http.StatusBadRequest, "", err)
			}
			return
		}
		writeJSON(rw, http.StatusCreated, s.Metrics())
	})
	mux.HandleFunc("POST /ctl/drain", func(rw http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), w.cfg.DrainTimeout+5*time.Second)
		defer cancel()
		err := w.Drain(ctx)
		if err != nil {
			httpError(rw, http.StatusInternalServerError, "", err)
			return
		}
		writeJSON(rw, http.StatusOK, map[string]any{"drained": true})
	})
	mux.HandleFunc("GET /ctl/sessions/{id}", func(rw http.ResponseWriter, r *http.Request) {
		cid, ok := sessionIDFromPath(rw, r)
		if !ok {
			return
		}
		m, err := w.Metrics(cid)
		if err != nil {
			if errors.Is(err, service.ErrFailed) {
				httpError(rw, http.StatusGone, codeFailed, err)
				return
			}
			httpError(rw, http.StatusNotFound, codeNotFound, err)
			return
		}
		writeJSON(rw, http.StatusOK, m)
	})
	mux.HandleFunc("DELETE /ctl/sessions/{id}", func(rw http.ResponseWriter, r *http.Request) {
		cid, ok := sessionIDFromPath(rw, r)
		if !ok {
			return
		}
		if err := w.Close(cid); err != nil {
			if errors.Is(err, service.ErrFailed) {
				httpError(rw, http.StatusGone, codeFailed, err)
				return
			}
			httpError(rw, http.StatusNotFound, codeNotFound, err)
			return
		}
		writeJSON(rw, http.StatusOK, map[string]any{"closed": cid})
	})
	mux.HandleFunc("POST /ctl/sessions/{id}/draw", func(rw http.ResponseWriter, r *http.Request) {
		cid, ok := sessionIDFromPath(rw, r)
		if !ok {
			return
		}
		n, ok := drawBytes(rw, r)
		if !ok {
			return
		}
		key, err := w.Draw(cid, n)
		if err != nil {
			writeDrawError(rw, err)
			return
		}
		w.recordSpan(r, cid, "draw", n)
		writeJSON(rw, http.StatusOK, drawResponse{
			Session: cid, Bytes: n, Key: hex.EncodeToString(key),
		})
	})
	mux.HandleFunc("GET /ctl/sessions/{id}/stream", func(rw http.ResponseWriter, r *http.Request) {
		cid, ok := sessionIDFromPath(rw, r)
		if !ok {
			return
		}
		off, n, ok := streamRange(rw, r)
		if !ok {
			return
		}
		src, err := w.streamSource(cid, off, n)
		if err != nil {
			if errors.Is(err, errPoolFedOffset) {
				httpError(rw, http.StatusBadRequest, "", err)
				return
			}
			writeDrawError(rw, err)
			return
		}
		// Chunked copy with a declared Content-Length: the range is never
		// buffered whole, and a mid-range failure aborts the connection
		// instead of terminating a short body cleanly.
		if httpapi.StreamBody(rw, r, src, n) {
			w.recordSpan(r, cid, "stream", int(n))
		}
	})
	return mux
}

// recordSpan chains a routed key read into the coordinator-minted span:
// one worker-tier event for the RPC, and one engine-tier event carrying
// the session's protocol-round counters, so a single span id read back
// through /debug/trace walks edge -> worker -> engine round.
func (w *Worker) recordSpan(r *http.Request, cid uint64, op string, n int) {
	if !w.obs.Enabled() {
		return
	}
	span := r.Header.Get(obs.SpanHeader)
	if span == "" {
		return
	}
	w.spans.RecordKV(span, "worker", op,
		"cluster_session", strconv.FormatUint(cid, 10),
		"bytes", strconv.Itoa(n),
		"pid", strconv.Itoa(os.Getpid()))
	if m, err := w.Metrics(cid); err == nil {
		w.spans.RecordKV(span, "engine", "round",
			"cluster_session", strconv.FormatUint(cid, 10),
			"rounds", strconv.FormatInt(m.Rounds, 10),
			"productive", strconv.FormatInt(m.Productive, 10))
	}
}
