package cluster

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/internal/keypool"
	"repro/internal/obs"
	"repro/internal/service"
)

// WorkerClient is the coordinator's handle on one worker's control RPC.
// Transport-level failures surface as ErrUnreachable; RPC rejections map
// back to the typed errors the worker raised (ErrDraining, ErrDuplicate,
// service.ErrSaturated, keypool.ErrExhausted/ErrClosed, ErrNotFound).
type WorkerClient struct {
	base string
	hc   *http.Client
	rpc  *obs.HistogramVec // per-op RPC latency; nil when uninstrumented
}

// NewWorkerClient returns a client for the worker at base (e.g.
// "http://127.0.0.1:41234"). Calls are bounded by their context; the
// embedded client adds a generous fallback timeout so a wedged worker
// cannot hang the coordinator.
func NewWorkerClient(base string) *WorkerClient {
	return &WorkerClient{base: base, hc: &http.Client{Timeout: 60 * time.Second}}
}

// WithObs attaches a registry: every RPC observes its latency into
// thinaird_cluster_rpc_seconds{op=...}. Returns the client for chaining.
func (c *WorkerClient) WithObs(r *obs.Registry) *WorkerClient {
	if r != nil {
		c.rpc = r.HistogramVec("thinaird_cluster_rpc_seconds",
			"Coordinator-to-worker control RPC latency, by operation.",
			obs.LatencyBuckets, "op")
	}
	return c
}

// observeRPC records one RPC's latency when instrumented. The span
// header on outgoing requests (see do/doStream) is what chains a
// coordinator-minted span into the worker's ring.
func (c *WorkerClient) observeRPC(op string, t0 time.Time) {
	if c.rpc != nil {
		c.rpc.With(op).ObserveSince(t0)
	}
}

func (c *WorkerClient) rpcStart() time.Time {
	if c.rpc == nil {
		return time.Time{}
	}
	return time.Now()
}

// URL returns the worker's control base URL.
func (c *WorkerClient) URL() string { return c.base }

// CloseIdle drops idle keep-alive connections (their background read
// goroutines otherwise linger past worker teardown).
func (c *WorkerClient) CloseIdle() { c.hc.CloseIdleConnections() }

// do performs one RPC and decodes the JSON response into out (when
// non-nil). Non-2xx statuses are mapped to typed errors via the body's
// error code.
func (c *WorkerClient) do(ctx context.Context, op, method, path string, body, out any) error {
	t0 := c.rpcStart()
	defer c.observeRPC(op, t0)
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if span := obs.SpanID(ctx); span != "" {
		req.Header.Set(obs.SpanHeader, span)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// The caller giving up is not the worker being gone: ErrUnreachable
		// drives supervision and registry decisions, so a cancelled or
		// expired context must surface as itself.
		if ctx.Err() != nil {
			return fmt.Errorf("cluster: worker rpc: %w", ctx.Err())
		}
		return fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	// Read the body to EOF so the keep-alive connection is reusable —
	// heartbeats run every few hundred ms against every worker.
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 400 {
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return rpcError(resp.StatusCode, eb)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// doStream performs one RPC whose success body is raw bytes rather than
// JSON (the stream endpoint), copying the n-byte body into w without
// materializing it. Error responses still carry the JSON envelope and
// map to the same typed errors as do; nothing is written to w on them.
// A body shorter than n (the worker aborted mid-range) surfaces as an
// error, never as a silent short read.
func (c *WorkerClient) doStream(ctx context.Context, path string, n int64, w io.Writer) (int64, error) {
	t0 := c.rpcStart()
	defer c.observeRPC("stream", t0)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return 0, err
	}
	if span := obs.SpanID(ctx); span != "" {
		req.Header.Set(obs.SpanHeader, span)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return 0, fmt.Errorf("cluster: worker rpc: %w", ctx.Err())
		}
		return 0, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 400 {
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		return 0, rpcError(resp.StatusCode, eb)
	}
	written, err := io.Copy(w, io.LimitReader(resp.Body, n))
	if err != nil {
		if ctx.Err() != nil {
			return written, fmt.Errorf("cluster: worker rpc: %w", ctx.Err())
		}
		return written, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	if written < n {
		return written, fmt.Errorf("%w: stream truncated at %d/%d bytes", ErrUnreachable, written, n)
	}
	return written, nil
}

// rpcError maps a worker error response back to the typed error the
// worker raised.
func rpcError(status int, eb errorBody) error {
	msg := eb.Error.Message
	if msg == "" {
		msg = http.StatusText(status)
	}
	switch eb.Error.Code {
	case codeDraining:
		return fmt.Errorf("%w: %s", ErrDraining, msg)
	case codeDuplicate:
		return fmt.Errorf("%w: %s", ErrDuplicate, msg)
	case codeSaturated:
		return fmt.Errorf("%w: %s", service.ErrSaturated, msg)
	case codeExhausted:
		return fmt.Errorf("%w: %s", keypool.ErrExhausted, msg)
	case codeClosed:
		return fmt.Errorf("%w: %s", keypool.ErrClosed, msg)
	case codeFailed:
		return fmt.Errorf("%w: %s", service.ErrFailed, msg)
	case codeNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, msg)
	case codeOrphaned:
		return fmt.Errorf("%w: %s", ErrOrphaned, msg)
	case codeShutdown:
		return fmt.Errorf("%w: %s", ErrShutdown, msg)
	}
	return fmt.Errorf("cluster: worker rpc status %d: %s", status, msg)
}

// Health probes /ctl/healthz — the heartbeat.
func (c *WorkerClient) Health(ctx context.Context) error {
	return c.do(ctx, "health", http.MethodGet, "/ctl/healthz", nil, nil)
}

// Stats fetches the worker snapshot.
func (c *WorkerClient) Stats(ctx context.Context) (WorkerStats, error) {
	var st WorkerStats
	err := c.do(ctx, "stats", http.MethodGet, "/ctl/stats", nil, &st)
	return st, err
}

// ObsSnapshot scrapes the worker's metrics registry — the coordinator's
// fleet-merge input.
func (c *WorkerClient) ObsSnapshot(ctx context.Context) (obs.Snapshot, error) {
	var s obs.Snapshot
	err := c.do(ctx, "scrape", http.MethodGet, "/ctl/metrics", nil, &s)
	return s, err
}

// Trace fetches span events from the worker's ring; span narrows the
// result to one span id, "" returns the most recent events.
func (c *WorkerClient) Trace(ctx context.Context, span string) ([]obs.SpanEvent, error) {
	path := "/ctl/trace"
	if span != "" {
		path += "?span=" + url.QueryEscape(span)
	}
	var evs []obs.SpanEvent
	err := c.do(ctx, "trace", http.MethodGet, path, nil, &evs)
	return evs, err
}

// Assign places a cluster session on the worker.
func (c *WorkerClient) Assign(ctx context.Context, cid uint64, spec service.SessionSpec) (service.SessionMetrics, error) {
	var m service.SessionMetrics
	err := c.do(ctx, "assign", http.MethodPost, "/ctl/assign", assignRequest{ID: cid, Spec: spec}, &m)
	return m, err
}

// Close gracefully stops one cluster session on the worker.
func (c *WorkerClient) Close(ctx context.Context, cid uint64) error {
	return c.do(ctx, "close", http.MethodDelete, fmt.Sprintf("/ctl/sessions/%d", cid), nil, nil)
}

// Metrics snapshots one cluster session on the worker.
func (c *WorkerClient) Metrics(ctx context.Context, cid uint64) (service.SessionMetrics, error) {
	var m service.SessionMetrics
	err := c.do(ctx, "metrics", http.MethodGet, fmt.Sprintf("/ctl/sessions/%d", cid), nil, &m)
	return m, err
}

// Draw dispenses n bytes of key material from a cluster session.
func (c *WorkerClient) Draw(ctx context.Context, cid uint64, n int) ([]byte, error) {
	var dr drawResponse
	if err := c.do(ctx, "draw", http.MethodPost, fmt.Sprintf("/ctl/sessions/%d/draw?bytes=%d", cid, n), nil, &dr); err != nil {
		return nil, err
	}
	return hex.DecodeString(dr.Key)
}

// StreamRangeTo streams key-material bytes [off, off+n) from a cluster
// session into w as the worker produces them (the coordinator's routed
// /stream body passes through here without being buffered). It returns
// the bytes written: 0 with a typed error when the worker rejected the
// request, possibly short with an error on a mid-body failure.
func (c *WorkerClient) StreamRangeTo(ctx context.Context, cid uint64, off, n int64, w io.Writer) (int64, error) {
	return c.doStream(ctx,
		fmt.Sprintf("/ctl/sessions/%d/stream?offset=%d&len=%d", cid, off, n), n, w)
}

// StreamRange reads key-material bytes [off, off+n) from a cluster
// session, materialized — the programmatic convenience over
// StreamRangeTo.
func (c *WorkerClient) StreamRange(ctx context.Context, cid uint64, off, n int64) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(int(n))
	if _, err := c.StreamRangeTo(ctx, cid, off, n, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Drain asks the worker to drain every session and zeroize every pool.
func (c *WorkerClient) Drain(ctx context.Context) error {
	return c.do(ctx, "drain", http.MethodPost, "/ctl/drain", nil, nil)
}
