package cluster

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestCoordinatorStreamRangeRouting: the bulk stream surface routes to
// the owning worker, and — because cluster sessions are pool-fed — it is
// served by the consuming bulk draw, so a stream read on one session
// equals a plain draw on its same-seed twin placed on a different worker.
func TestCoordinatorStreamRangeRouting(t *testing.T) {
	c, err := New(testConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	ctx := context.Background()

	spec := fastSpec(7373)
	a, err := c.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Worker == b.Worker {
		t.Fatalf("same-seed pair landed on one worker (%d)", a.Worker)
	}
	waitConverged(t, c, a.ID, spec.TargetDepth)
	waitConverged(t, c, b.ID, spec.TargetDepth)

	streamed, err := c.StreamRange(ctx, a.ID, 0, 96)
	if err != nil {
		t.Fatal(err)
	}
	drawn, err := c.Draw(ctx, b.ID, 96)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, drawn) {
		t.Fatal("routed stream read != same-seed draw: bulk path broke pool ordering")
	}

	// Pool-fed sessions have no address space: non-zero offsets are
	// rejected rather than silently mis-addressed.
	if _, err := c.StreamRange(ctx, a.ID, 64, 32); err == nil {
		t.Fatal("non-zero offset on a pool-fed session succeeded")
	}

	// Unknown sessions surface the typed not-found error through the RPC.
	if _, err := c.StreamRange(ctx, 99999, 0, 32); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown session: got %v, want ErrNotFound", err)
	}
}

// TestCoordinatorStreamHTTP exercises the public stream endpoint
// end-to-end: raw octet-stream body of exactly len bytes, and the shared
// parameter validation (400 on a bad len).
func TestCoordinatorStreamHTTP(t *testing.T) {
	c, err := New(testConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())

	spec := fastSpec(515)
	info, err := c.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c, info.ID, spec.TargetDepth)

	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/sessions/1/stream?len=64")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream read: status %d body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("content type %q", ct)
	}
	if len(body) != 64 {
		t.Fatalf("stream body: %d bytes, want 64", len(body))
	}

	resp, err = http.Get(srv.URL + "/v1/sessions/1/stream?len=0")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("len=0: status %d, want 400", resp.StatusCode)
	}
}
