package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// Config parameterizes the coordinator tier.
type Config struct {
	// Workers is the number of worker processes to spawn and supervise.
	// 0 means 2.
	Workers int
	// WorkerCapacity bounds sessions per worker. 0 means 16.
	WorkerCapacity int
	// HeartbeatEvery is the health-probe period. 0 means 1s.
	HeartbeatEvery time.Duration
	// HeartbeatMisses is how many consecutive failed probes declare a
	// worker dead (its process is then killed and replaced). 0 means 3.
	HeartbeatMisses int
	// MaxRestarts bounds how many times one worker slot is respawned
	// before it is retired (its sessions move to survivors). 0 means 5.
	MaxRestarts int
	// RespawnBackoff is the pause before replacing a dead worker.
	// 0 means 200ms.
	RespawnBackoff time.Duration
	// DrainTimeout bounds graceful shutdown of each worker. 0 means 15s.
	DrainTimeout time.Duration
	// Spawn produces workers. Nil means InProcess(nil) — goroutine-hosted
	// workers behind real loopback listeners; cmd/thinaird's coordinator
	// mode passes an ExecSpawner for real OS processes.
	Spawn SpawnFunc
	// Logf receives supervision events (worker deaths, reassignments).
	// Nil means log.Printf.
	Logf func(format string, args ...any)
	// Obs is the coordinator's own metrics registry (RPC latency,
	// supervision counters). Nil means obs.Default().
	Obs *obs.Registry
	// Spans is the span ring edge requests are recorded to. Nil means
	// obs.DefaultSpans().
	Spans *obs.SpanLog
	// StateDir, when non-empty, persists the session registry there — an
	// append-only journal plus periodic snapshots. A coordinator
	// restarted on the same dir replays it, probes the recorded worker
	// URLs, re-adopts sessions still live on surviving workers (same
	// process, so byte-identical keystreams), and re-places only what
	// died with the crash. Empty means no persistence (the pre-existing
	// behavior: a restart loses the registry).
	StateDir string
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.WorkerCapacity <= 0 {
		c.WorkerCapacity = 16
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = time.Second
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 5
	}
	if c.RespawnBackoff == 0 {
		c.RespawnBackoff = 200 * time.Millisecond
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.Spawn == nil {
		c.Spawn = InProcess(nil)
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Obs == nil {
		c.Obs = obs.Default()
	}
	if c.Spans == nil {
		c.Spans = obs.DefaultSpans()
	}
}

// Session lifecycle states in the coordinator's registry.
const (
	// sessionAssigned: owned by a live worker. The state is only entered
	// after the worker's assign RPC has succeeded, so assigned always
	// means the worker actually hosts the session.
	sessionAssigned = "assigned"
	// sessionPlacing: exclusively claimed by one placement attempt (the
	// assign RPC may be in flight). The claim keeps concurrent placers —
	// Create and the per-slot supervisors' placeOrphans — from assigning
	// one session to two workers.
	sessionPlacing = "placing"
	// sessionOrphaned: its worker died; awaiting placement on a survivor
	// or the replacement worker. Draws fail retryably meanwhile.
	sessionOrphaned = "orphaned"
	// sessionFailed: the session failed on a live worker (dead channel,
	// exhausted round space). A deterministic failure would recur on any
	// worker, so it is not reassigned.
	sessionFailed = "failed"
	// sessionClosed: transient marker set by CloseSession just before the
	// entry leaves the registry; an in-flight placement that sees it
	// undoes its assignment instead of stranding a copy on a worker.
	sessionClosed = "closed"
)

// clusterSession is one registry entry: everything needed to re-create
// the session elsewhere (the spec carries the seed, so a reassigned
// session re-derives the same key stream from round zero).
type clusterSession struct {
	id        uint64
	spec      service.SessionSpec
	worker    int // owning slot, -1 when orphaned/failed
	state     string
	reassigns int
	placedAt  time.Time
}

// workerSlot is one supervised worker position. The slot index is
// stable; the process (and RPC address) behind it changes on restart.
type workerSlot struct {
	slot        int
	proc        WorkerProc
	client      *WorkerClient
	alive       bool
	retired     bool // restart budget exhausted
	restarts    int
	misses      int
	lastRespawn time.Time
}

// Coordinator owns the cluster: the session registry, worker
// supervision, placement, and the public HTTP API.
type Coordinator struct {
	cfg   Config
	start time.Time

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	slots    []*workerSlot
	sessions map[uint64]*clusterSession
	nextID   uint64
	closed   bool

	created    atomic.Int64
	removed    atomic.Int64
	failed     atomic.Int64
	reassigned atomic.Int64
	restarts   atomic.Int64
	adopted    atomic.Int64

	// jnl is the registry journal, nil unless Config.StateDir is set.
	// Appends happen under c.mu so the on-disk record order matches the
	// registry's mutation order exactly.
	jnl *journal

	// epoch counts ownership-map revisions: any transition that changes
	// which worker (or URL) serves which session bumps it. Gates poll it
	// cheaply (GET /v1/cluster/owners?epoch=N) and re-pull the map only
	// when it moved — the watch half of cache invalidation.
	epoch atomic.Uint64

	obs   *obs.Registry
	spans *obs.SpanLog

	placing atomic.Bool // a background placeOrphans pass is running
}

// triggerPlacement runs placeOrphans in the background, at most one
// pass at a time: placement RPCs can take seconds, and a supervisor
// stuck placing would stop watching its own worker for death. Missed
// triggers are fine — the next heartbeat re-triggers.
func (c *Coordinator) triggerPlacement() {
	if !c.placing.CompareAndSwap(false, true) {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer c.placing.Store(false)
		c.placeOrphans()
	}()
}

// New spawns cfg.Workers workers and starts supervising them. Call
// Shutdown to drain the whole tier. With Config.StateDir set, a
// previous coordinator's registry is replayed first: workers recorded
// there that still answer their control RPC are adopted in place —
// their live sessions keep serving the same keystream bytes — and only
// the rest are spawned fresh.
func New(cfg Config) (*Coordinator, error) {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:      cfg,
		start:    time.Now(),
		ctx:      ctx,
		cancel:   cancel,
		sessions: make(map[uint64]*clusterSession),
		nextID:   1,
		obs:      cfg.Obs,
		spans:    cfg.Spans,
	}
	var rec *recoveredState
	if cfg.StateDir != "" {
		jnl, state, err := openJournal(cfg.StateDir)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("cluster: state dir %s: %w", cfg.StateDir, err)
		}
		c.jnl = jnl
		rec = state
	}
	if rec != nil {
		c.recoverRegistry(rec)
	}
	// Supervision counters already live as atomics for ClusterMetrics;
	// the func collectors export the same values through the registry so
	// the fleet merge and /metrics.json carry them too.
	c.obs.CounterFunc("thinaird_cluster_reassignments_total",
		"Sessions re-placed after their worker died.",
		func() float64 { return float64(c.reassigned.Load()) })
	c.obs.CounterFunc("thinaird_cluster_respawns_total",
		"Worker processes respawned by supervision.",
		func() float64 { return float64(c.restarts.Load()) })
	c.obs.CounterFunc("thinaird_cluster_adoptions_total",
		"Live worker sessions re-adopted across a coordinator restart.",
		func() float64 { return float64(c.adopted.Load()) })
	for i := 0; i < cfg.Workers; i++ {
		if sl := c.adoptSlot(ctx, i, rec); sl != nil {
			c.slots = append(c.slots, sl)
			continue
		}
		proc, err := cfg.Spawn(ctx, c.spawnOpts(i))
		if err != nil {
			cancel()
			for _, sl := range c.slots {
				_ = sl.proc.Kill()
			}
			if c.jnl != nil {
				c.jnl.close()
			}
			return nil, fmt.Errorf("cluster: spawning worker %d: %w", i, err)
		}
		c.slots = append(c.slots, &workerSlot{
			slot:   i,
			proc:   proc,
			client: NewWorkerClient(proc.URL()).WithObs(c.obs),
			alive:  true,
		})
	}
	if c.jnl != nil {
		// Record the fleet as it stands and cut a fresh snapshot: the new
		// epoch, the adopted/spawned worker URLs, and the recovered
		// registry become the durable baseline before traffic resumes.
		c.mu.Lock()
		for _, sl := range c.slots {
			c.journalLocked(journalRecord{
				Op: jopWorker, Slot: sl.slot, URL: sl.proc.URL(), PID: sl.proc.PID(),
			})
		}
		c.jnl.compact(c.persistStateLocked())
		c.mu.Unlock()
	}
	for _, sl := range c.slots {
		c.wg.Add(1)
		go c.supervise(sl)
	}
	if rec != nil {
		// Sessions whose worker really died with the old coordinator are
		// sitting orphaned; re-place them without waiting a heartbeat.
		c.triggerPlacement()
	}
	return c, nil
}

// recoverRegistry rebuilds the in-memory registry from replayed state.
// Every non-failed session starts orphaned: assignment must be
// re-proven by adoption probes (adoptSlot) or a fresh placement —
// nothing is trusted to be hosted until a live worker says so. The
// ownership epoch resumes strictly above every persisted value, so
// gates that cached owners across the outage always see a bump.
func (c *Coordinator) recoverRegistry(rec *recoveredState) {
	if rec.nextID > c.nextID {
		c.nextID = rec.nextID
	}
	c.epoch.Store(rec.epoch + 1)
	for id, ps := range rec.sessions {
		cs := &clusterSession{id: id, spec: ps.Spec, worker: -1, reassigns: ps.Reassigns}
		if ps.State == sessionFailed {
			// Failures are permanent and survive restarts: clients keep
			// getting the failed verdict, not a ghost of the session.
			cs.state = sessionFailed
		} else {
			cs.state = sessionOrphaned
		}
		c.sessions[id] = cs
	}
}

// adoptSlot probes the recorded worker for slot i and adopts it when it
// still answers: the existing process keeps its slot, its client, and —
// crucially — its live sessions, which move straight back to assigned
// without a respawn or a keystream restart. Returns nil (spawn fresh)
// for unrecorded, retired, dead, or draining workers.
func (c *Coordinator) adoptSlot(ctx context.Context, slot int, rec *recoveredState) *workerSlot {
	if rec == nil {
		return nil
	}
	pw := rec.workers[slot]
	if pw == nil || pw.Retired || !pw.Alive || pw.URL == "" {
		return nil
	}
	client := NewWorkerClient(pw.URL).WithObs(c.obs)
	pctx, cancel := context.WithTimeout(ctx, adoptProbeTimeout)
	st, err := client.Stats(pctx)
	cancel()
	if err != nil || st.Draining {
		return nil
	}
	adopted := 0
	c.mu.Lock()
	for cid := range st.Sessions {
		cs, ok := c.sessions[cid]
		if !ok || cs.state != sessionOrphaned {
			continue // strays are reaped by the first reconcile pass
		}
		cs.state = sessionAssigned
		cs.worker = slot
		cs.placedAt = time.Now()
		adopted++
	}
	c.mu.Unlock()
	c.adopted.Add(int64(adopted))
	c.cfg.Logf("cluster: adopted surviving worker %d at %s (pid %d), %d live sessions re-adopted",
		slot, pw.URL, st.PID, adopted)
	return &workerSlot{
		slot:   slot,
		proc:   newAdoptedProc(pw.URL, st.PID),
		client: client,
		alive:  true,
	}
}

// journalLocked appends one registry-transition record when persistence
// is on, compacting once the journal grows past its threshold. Caller
// holds c.mu — that is what keeps the on-disk order identical to the
// registry mutation order.
func (c *Coordinator) journalLocked(rec journalRecord) {
	if c.jnl == nil {
		return
	}
	rec.Epoch = c.epoch.Load()
	if c.jnl.append(rec) {
		c.jnl.compact(c.persistStateLocked())
	}
}

// persistStateLocked snapshots the registry in its wire form. Caller
// holds c.mu.
func (c *Coordinator) persistStateLocked() persistState {
	ps := persistState{NextID: c.nextID, Epoch: c.epoch.Load()}
	for _, cs := range c.sessions {
		if cs.state == sessionClosed {
			continue
		}
		ps.Sessions = append(ps.Sessions, persistedSession{
			ID: cs.id, Spec: cs.spec, Worker: cs.worker,
			State: cs.state, Reassigns: cs.reassigns,
		})
	}
	for _, sl := range c.slots {
		pw := persistedWorker{
			Slot: sl.slot, Alive: sl.alive, Retired: sl.retired,
		}
		if sl.proc != nil {
			pw.URL = sl.proc.URL()
			pw.PID = sl.proc.PID()
		}
		ps.Workers = append(ps.Workers, pw)
	}
	return ps
}

// healthyResetAfter is how long a restarted worker must stay healthy
// before its slot's restart budget resets — long enough that a crash
// loop (die, respawn, die) keeps burning budget, short enough that a
// weekly sporadic crash never retires the slot.
func (c *Coordinator) healthyResetAfter() time.Duration {
	if d := 60 * c.cfg.HeartbeatEvery; d > time.Minute {
		return d
	}
	return time.Minute
}

func (c *Coordinator) spawnOpts(slot int) WorkerSpawnOpts {
	return WorkerSpawnOpts{
		Slot:         slot,
		Capacity:     c.cfg.WorkerCapacity,
		DrainTimeout: c.cfg.DrainTimeout,
	}
}

// supervise runs one worker slot's lifecycle: heartbeat probes while it
// is alive, respawn + session reassignment when it dies.
func (c *Coordinator) supervise(sl *workerSlot) {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		c.mu.Lock()
		proc, client, alive, retired := sl.proc, sl.client, sl.alive, sl.retired
		c.mu.Unlock()
		if retired {
			return
		}
		if !alive {
			if !c.respawn(sl) {
				return
			}
			continue
		}
		select {
		case <-c.ctx.Done():
			return
		case <-proc.Done():
			c.onWorkerDeath(sl, "process exited")
		case <-tick.C:
			hctx, hcancel := context.WithTimeout(c.ctx, c.cfg.HeartbeatEvery)
			err := client.Health(hctx)
			hcancel()
			if c.ctx.Err() != nil {
				return
			}
			if err != nil {
				c.mu.Lock()
				sl.misses++
				misses := sl.misses
				c.mu.Unlock()
				if misses >= c.cfg.HeartbeatMisses {
					_ = proc.Kill()
					c.onWorkerDeath(sl, fmt.Sprintf("missed %d heartbeats", misses))
				}
				continue
			}
			c.mu.Lock()
			sl.misses = 0
			// Sustained health repays the restart budget: the budget exists
			// to stop crash loops, not to retire a slot for sporadic
			// crashes spread over a long uptime.
			if sl.restarts > 0 && time.Since(sl.lastRespawn) > c.healthyResetAfter() {
				sl.restarts = 0
			}
			c.mu.Unlock()
			c.reconcile(sl, client)
			c.triggerPlacement()
		}
	}
}

// onWorkerDeath marks the slot dead and orphans its sessions; the
// supervisor loop respawns and replaces them.
func (c *Coordinator) onWorkerDeath(sl *workerSlot, reason string) {
	c.mu.Lock()
	if c.closed || !sl.alive {
		c.mu.Unlock()
		return
	}
	sl.alive = false
	sl.misses = 0
	client := sl.client
	orphaned := 0
	for _, cs := range c.sessions {
		if cs.worker == sl.slot && cs.state == sessionAssigned {
			cs.worker = -1
			cs.state = sessionOrphaned
			orphaned++
		}
	}
	c.journalLocked(journalRecord{Op: jopDown, Slot: sl.slot})
	c.mu.Unlock()
	c.epoch.Add(1)
	client.CloseIdle()
	c.cfg.Logf("cluster: worker %d died (%s), %d sessions orphaned", sl.slot, reason, orphaned)
}

// respawn replaces a dead worker within the slot's restart budget. It
// returns false when the supervisor should exit (shutdown or retirement).
func (c *Coordinator) respawn(sl *workerSlot) bool {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	if sl.restarts >= c.cfg.MaxRestarts {
		sl.retired = true
		c.journalLocked(journalRecord{Op: jopRetire, Slot: sl.slot})
		c.mu.Unlock()
		c.cfg.Logf("cluster: worker %d exceeded %d restarts, slot retired", sl.slot, c.cfg.MaxRestarts)
		c.triggerPlacement() // survivors absorb whatever the slot still owed
		return false
	}
	sl.restarts++
	sl.lastRespawn = time.Now()
	c.mu.Unlock()
	c.restarts.Add(1)

	select {
	case <-c.ctx.Done():
		return false
	case <-time.After(c.cfg.RespawnBackoff):
	}
	proc, err := c.cfg.Spawn(c.ctx, c.spawnOpts(sl.slot))
	if err != nil {
		if c.ctx.Err() != nil {
			return false
		}
		c.cfg.Logf("cluster: respawning worker %d: %v", sl.slot, err)
		return true // loop retries against the restart budget
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = proc.Kill()
		return false
	}
	sl.proc = proc
	sl.client = NewWorkerClient(proc.URL()).WithObs(c.obs)
	sl.alive = true
	c.journalLocked(journalRecord{Op: jopWorker, Slot: sl.slot, URL: proc.URL(), PID: proc.PID()})
	c.mu.Unlock()
	c.epoch.Add(1) // the slot's URL changed; cached owners must re-resolve
	c.cfg.Logf("cluster: worker %d respawned (pid %d)", sl.slot, proc.PID())
	c.triggerPlacement()
	return true
}

// reconcile compares the registry against what the worker actually
// hosts, in both directions. Registry->worker: a session the registry
// believes assigned but the worker no longer runs failed worker-side
// (dead channel, exhausted rounds) — not reassigned, a deterministic
// failure recurs anywhere. Worker->registry: a session the worker hosts
// but the registry doesn't place there is a stray (a close whose RPC
// never landed, or the late survivor of a timed-out assign retried on
// another worker) — closed so it can't bank key material or hold a
// capacity slot off the books.
func (c *Coordinator) reconcile(sl *workerSlot, client *WorkerClient) {
	sctx, cancel := context.WithTimeout(c.ctx, c.cfg.HeartbeatEvery)
	st, err := client.Stats(sctx)
	cancel()
	if err != nil {
		return // the heartbeat path handles unreachable workers
	}
	grace := 2 * c.cfg.HeartbeatEvery
	var strays []uint64
	c.mu.Lock()
	for _, cs := range c.sessions {
		if cs.worker != sl.slot || cs.state != sessionAssigned {
			continue
		}
		if time.Since(cs.placedAt) < grace {
			continue
		}
		if _, ok := st.Sessions[cs.id]; !ok {
			cs.state = sessionFailed
			cs.worker = -1
			c.failed.Add(1)
			c.epoch.Add(1)
			c.journalLocked(journalRecord{Op: jopFail, ID: cs.id})
			c.cfg.Logf("cluster: session %d lost on live worker %d, marked failed", cs.id, sl.slot)
		}
	}
	for cid := range st.Sessions {
		cs, ok := c.sessions[cid]
		if !ok || (cs.state == sessionAssigned && cs.worker != sl.slot) {
			// Placing sessions are skipped: their assign may legitimately
			// be landing on this worker right now.
			strays = append(strays, cid)
		}
	}
	c.mu.Unlock()
	for _, cid := range strays {
		// Re-check right before acting: a placement may have legitimately
		// landed the session on this worker since the stats snapshot.
		c.mu.Lock()
		cs, ok := c.sessions[cid]
		legit := ok && (cs.state == sessionPlacing ||
			(cs.state == sessionAssigned && cs.worker == sl.slot))
		c.mu.Unlock()
		if legit {
			continue
		}
		cctx, ccancel := context.WithTimeout(c.ctx, c.cfg.HeartbeatEvery)
		err := client.Close(cctx, cid)
		ccancel()
		if err == nil {
			c.cfg.Logf("cluster: closed stray session %d on worker %d", cid, sl.slot)
		}
	}
}

// pickSlotLocked returns the least-loaded live slot with capacity left,
// skipping tried ones. Ties break toward the lower slot, which keeps
// placement deterministic. In-flight placements count toward load so
// concurrent creates don't all pile onto one slot. Caller holds c.mu.
func (c *Coordinator) pickSlotLocked(tried map[int]bool) (*workerSlot, *WorkerClient) {
	load := make(map[int]int, len(c.slots))
	for _, cs := range c.sessions {
		if (cs.state == sessionAssigned || cs.state == sessionPlacing) && cs.worker >= 0 {
			load[cs.worker]++
		}
	}
	var best *workerSlot
	for _, sl := range c.slots {
		if !sl.alive || tried[sl.slot] || load[sl.slot] >= c.cfg.WorkerCapacity {
			continue
		}
		if best == nil || load[sl.slot] < load[best.slot] {
			best = sl
		}
	}
	if best == nil {
		return nil, nil
	}
	return best, best.client
}

// placeSession assigns cs — which the caller must have moved to
// sessionPlacing, the exclusive claim — to a worker, trying slots
// least-loaded-first until one accepts. On success the session is
// assigned; on error the claim is released to releaseTo (orphaned for
// reassignment retries, closed when the caller deletes the entry on
// failure — so a concurrent placer can never resurrect it). The
// assigned state is only entered after the worker's RPC succeeded AND
// the slot is still alive, so a session the registry calls assigned is
// really hosted. reassign marks placements that replace a lost worker
// (counted, and the session's key stream restarts from its seed).
func (c *Coordinator) placeSession(cs *clusterSession, reassign bool, releaseTo string) error {
	release := func(err error) error {
		if cs.state == sessionPlacing { // caller holds c.mu
			cs.state = releaseTo
			cs.worker = -1
		}
		return err
	}
	tried := make(map[int]bool)
	for {
		c.mu.Lock()
		if cs.state != sessionPlacing {
			// The claim was taken away (e.g. the session was closed).
			c.mu.Unlock()
			return nil
		}
		if c.closed {
			err := release(ErrShutdown)
			c.mu.Unlock()
			return err
		}
		sl, client := c.pickSlotLocked(tried)
		if sl == nil {
			err := release(ErrNoWorkers)
			c.mu.Unlock()
			return err
		}
		cs.worker = sl.slot
		proc := sl.proc // pinned: a respawn swaps it, invalidating the assign
		id, spec := cs.id, cs.spec
		c.mu.Unlock()

		actx, cancel := context.WithTimeout(c.ctx, 15*time.Second)
		_, err := client.Assign(actx, id, spec)
		cancel()
		if err == nil || errors.Is(err, ErrDuplicate) {
			// Duplicate means a previous assign landed but its response was
			// lost — the session is where the registry says it is.
			c.mu.Lock()
			claimed := cs.state == sessionPlacing
			if claimed && (!sl.alive || sl.proc != proc) {
				// The worker died while the assign was in flight (a swapped
				// proc means it died AND was already replaced — the fresh
				// process hosts nothing). The hosted copy died with it; keep
				// the claim and try another slot.
				cs.worker = -1
				c.mu.Unlock()
				tried[sl.slot] = true
				continue
			}
			if claimed {
				cs.state = sessionAssigned
				cs.placedAt = time.Now()
				if reassign {
					cs.reassigns++
				}
				c.journalLocked(journalRecord{Op: jopPlace, ID: cs.id, Slot: sl.slot, Reassign: reassign})
			}
			c.mu.Unlock()
			if claimed {
				c.epoch.Add(1)
			}
			if !claimed {
				// The session was closed while the assign was in flight:
				// don't strand an untracked copy on the worker.
				uctx, ucancel := context.WithTimeout(context.Background(), 10*time.Second)
				_ = client.Close(uctx, id)
				ucancel()
				return nil
			}
			if reassign {
				c.reassigned.Add(1)
			}
			return nil
		}
		if c.ctx.Err() != nil {
			// Shutdown cancelled the RPC, not the worker rejecting it.
			c.mu.Lock()
			err := release(ErrShutdown)
			c.mu.Unlock()
			return err
		}
		// A deadline on the assign RPC itself is a slow worker, not a spec
		// rejection: try elsewhere (reconcile's stray GC reaps the copy if
		// the slow assign lands later).
		retryable := errors.Is(err, ErrUnreachable) || errors.Is(err, service.ErrSaturated) ||
			errors.Is(err, ErrDraining) || errors.Is(err, context.DeadlineExceeded)
		c.mu.Lock()
		if cs.worker == sl.slot {
			cs.worker = -1
		}
		if !retryable {
			err = release(err) // spec rejection: no worker would accept it
			c.mu.Unlock()
			return err
		}
		c.mu.Unlock()
		tried[sl.slot] = true
	}
}

// placeOrphans re-places every orphaned session on live capacity. Safe
// to call from any supervisor: the claim (orphaned -> placing) happens
// inside one critical section, so two concurrent callers can never
// place the same session twice.
func (c *Coordinator) placeOrphans() {
	for {
		c.mu.Lock()
		var cs *clusterSession
		for _, s := range c.sessions {
			if s.state == sessionOrphaned {
				cs = s
				cs.state = sessionPlacing // claim before releasing the lock
				break
			}
		}
		c.mu.Unlock()
		if cs == nil {
			return
		}
		if err := c.placeSession(cs, true, sessionOrphaned); err != nil {
			if !errors.Is(err, ErrNoWorkers) && !errors.Is(err, ErrShutdown) {
				c.mu.Lock()
				cs.state = sessionFailed
				c.journalLocked(journalRecord{Op: jopFail, ID: cs.id})
				c.mu.Unlock()
				c.failed.Add(1)
				c.cfg.Logf("cluster: reassigning session %d failed permanently: %v", cs.id, err)
				continue
			}
			return // no capacity right now; the next heartbeat retries
		}
		c.mu.Lock()
		slot := cs.worker
		c.mu.Unlock()
		c.cfg.Logf("cluster: session %d reassigned to worker %d", cs.id, slot)
	}
}

// Create admits a cluster session and places it on the least-loaded
// worker. The tier runs real sockets, so UDP is forced in the spec —
// unless the spec asks for a Streamed session, which keeps the worker's
// in-process bus so the session's keystream stays offset-addressable
// (and re-reads byte-identical after a reassignment re-derives it).
func (c *Coordinator) Create(spec service.SessionSpec) (SessionInfo, error) {
	if !spec.Streamed {
		spec.UDP = true
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return SessionInfo{}, ErrShutdown
	}
	id := c.nextID
	c.nextID++
	// Born already claimed (placing, not orphaned): a concurrent
	// placeOrphans pass must never see — and race Create for — a session
	// whose first placement is still in flight.
	cs := &clusterSession{id: id, spec: spec, worker: -1, state: sessionPlacing}
	c.sessions[id] = cs
	c.journalLocked(journalRecord{Op: jopCreate, ID: id, Spec: &spec})
	c.mu.Unlock()

	// On error the claim is released straight to sessionClosed — never
	// orphaned — so a concurrent placeOrphans pass cannot resurrect a
	// session whose creation the caller was told failed.
	if err := c.placeSession(cs, false, sessionClosed); err != nil {
		c.mu.Lock()
		delete(c.sessions, id)
		c.journalLocked(journalRecord{Op: jopClose, ID: id})
		c.mu.Unlock()
		return SessionInfo{}, err
	}
	c.created.Add(1)
	return c.infoOf(cs), nil
}

// lookup returns the registry entry, a state snapshot, and the owner's
// client (nil while orphaned or failed).
func (c *Coordinator) lookup(cid uint64) (cs *clusterSession, client *WorkerClient, state string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.sessions[cid]
	if !ok {
		return nil, nil, "", fmt.Errorf("%w: %d", ErrNotFound, cid)
	}
	if cs.state != sessionAssigned {
		return cs, nil, cs.state, nil
	}
	for _, sl := range c.slots {
		if sl.slot == cs.worker {
			return cs, sl.client, cs.state, nil
		}
	}
	return cs, nil, cs.state, nil
}

// Draw routes a key draw to the worker owning the session.
func (c *Coordinator) Draw(ctx context.Context, cid uint64, n int) ([]byte, error) {
	return c.routeKeyRead(cid, func(client *WorkerClient) ([]byte, error) {
		return client.Draw(ctx, cid, n)
	})
}

// StreamRange routes a bulk stream-range read to the worker owning the
// session (the worker serves it from the session's keystream or, for the
// UDP sessions the coordinator creates, the consuming bulk-draw fallback).
func (c *Coordinator) StreamRange(ctx context.Context, cid uint64, off, n int64) ([]byte, error) {
	return c.routeKeyRead(cid, func(client *WorkerClient) ([]byte, error) {
		return client.StreamRange(ctx, cid, off, n)
	})
}

// StreamRangeTo routes a bulk stream-range read like StreamRange but
// pipes the worker's body into w as it arrives, so the coordinator never
// holds the range in memory (the routed HTTP handler's path). Returns the
// bytes written: 0 when the worker rejected the read, possibly short with
// an error when the body failed mid-stream.
func (c *Coordinator) StreamRangeTo(ctx context.Context, cid uint64, off, n int64, w io.Writer) (int64, error) {
	var written int64
	_, err := c.routeKeyRead(cid, func(client *WorkerClient) ([]byte, error) {
		var cerr error
		written, cerr = client.StreamRangeTo(ctx, cid, off, n, w)
		return nil, cerr
	})
	return written, err
}

// routeKeyRead resolves a session's owner and runs one key-material RPC
// against it, sharing the orphan/condemn bookkeeping between the draw and
// stream paths.
func (c *Coordinator) routeKeyRead(cid uint64, call func(*WorkerClient) ([]byte, error)) ([]byte, error) {
	cs, client, state, err := c.lookup(cid)
	if err != nil {
		return nil, err
	}
	if client == nil {
		if state == sessionFailed {
			return nil, fmt.Errorf("session %d died permanently: %w", cid, service.ErrFailed)
		}
		return nil, fmt.Errorf("%w: session %d", ErrOrphaned, cid)
	}
	key, err := call(client)
	if errors.Is(err, ErrNotFound) || errors.Is(err, service.ErrFailed) {
		c.mu.Lock()
		if cs.state == sessionAssigned {
			if time.Since(cs.placedAt) < 2*c.cfg.HeartbeatEvery {
				// Same grace reconcile uses: a read racing a just-landed
				// assignment must not condemn a healthy session.
				c.mu.Unlock()
				return nil, fmt.Errorf("%w: session %d settling on its worker", ErrOrphaned, cid)
			}
			// The worker no longer hosts it: failed worker-side since the
			// last reconcile pass.
			cs.state = sessionFailed
			cs.worker = -1
			c.failed.Add(1)
			c.epoch.Add(1)
			c.journalLocked(journalRecord{Op: jopFail, ID: cs.id})
		}
		c.mu.Unlock()
	}
	return key, err
}

// CloseSession gracefully stops one cluster session tier-wide.
func (c *Coordinator) CloseSession(ctx context.Context, cid uint64) error {
	cs, client, _, err := c.lookup(cid)
	if err != nil {
		return err
	}
	if client != nil {
		if err := client.Close(ctx, cid); err != nil && !errors.Is(err, ErrNotFound) &&
			!errors.Is(err, ErrUnreachable) && !errors.Is(err, service.ErrFailed) {
			return err
		}
	}
	c.mu.Lock()
	cs.state = sessionClosed // an in-flight placement sees this and undoes itself
	delete(c.sessions, cs.id)
	c.journalLocked(journalRecord{Op: jopClose, ID: cs.id})
	c.mu.Unlock()
	c.removed.Add(1)
	c.epoch.Add(1)
	return nil
}

// SessionInfo is the coordinator's view of one cluster session, plus the
// owning worker's live metrics when reachable.
type SessionInfo struct {
	ID        uint64                  `json:"id"`
	Name      string                  `json:"name,omitempty"`
	Worker    int                     `json:"worker"` // slot, -1 while orphaned/failed
	State     string                  `json:"state"`
	Reassigns int                     `json:"reassigns"`
	Metrics   *service.SessionMetrics `json:"metrics,omitempty"`
}

// infoOf snapshots one registry entry under the lock.
func (c *Coordinator) infoOf(cs *clusterSession) SessionInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SessionInfo{
		ID:        cs.id,
		Name:      cs.spec.Name,
		Worker:    cs.worker,
		State:     cs.state,
		Reassigns: cs.reassigns,
	}
}

// Session returns one session's info with live metrics from its worker.
func (c *Coordinator) Session(ctx context.Context, cid uint64) (SessionInfo, error) {
	cs, client, _, err := c.lookup(cid)
	if err != nil {
		return SessionInfo{}, err
	}
	info := c.infoOf(cs)
	if client != nil {
		if m, err := client.Metrics(ctx, cid); err == nil {
			info.Metrics = &m
		}
	}
	return info, nil
}

// Sessions lists every cluster session, with live metrics fetched from
// each live worker (one stats RPC per worker).
func (c *Coordinator) Sessions(ctx context.Context) []SessionInfo {
	c.mu.Lock()
	clients := make(map[int]*WorkerClient)
	for _, sl := range c.slots {
		if sl.alive {
			clients[sl.slot] = sl.client
		}
	}
	c.mu.Unlock()

	metrics := make(map[uint64]service.SessionMetrics)
	var mmu sync.Mutex
	var wg sync.WaitGroup
	for _, client := range clients {
		wg.Add(1)
		go func(cl *WorkerClient) {
			defer wg.Done()
			st, err := cl.Stats(ctx)
			if err != nil {
				return
			}
			mmu.Lock()
			for cid, m := range st.Sessions {
				metrics[cid] = m
			}
			mmu.Unlock()
		}(client)
	}
	wg.Wait()

	c.mu.Lock()
	out := make([]SessionInfo, 0, len(c.sessions))
	for _, cs := range c.sessions {
		info := SessionInfo{
			ID:        cs.id,
			Name:      cs.spec.Name,
			Worker:    cs.worker,
			State:     cs.state,
			Reassigns: cs.reassigns,
		}
		if m, ok := metrics[cs.id]; ok {
			m := m
			info.Metrics = &m
		}
		out = append(out, info)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WorkerInfo is the coordinator's view of one worker slot.
type WorkerInfo struct {
	Slot     int    `json:"slot"`
	PID      int    `json:"pid"`
	URL      string `json:"url"`
	Alive    bool   `json:"alive"`
	Retired  bool   `json:"retired"`
	Restarts int    `json:"restarts"`
	Sessions int    `json:"sessions"`
}

// ClusterMetrics is the tier-wide snapshot.
type ClusterMetrics struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Workers       []WorkerInfo `json:"workers"`
	WorkersAlive  int          `json:"workers_alive"`
	Sessions      int          `json:"sessions"`
	Orphaned      int          `json:"orphaned"`
	Created       int64        `json:"created_total"`
	Removed       int64        `json:"removed_total"`
	Failed        int64        `json:"failed_total"`
	Reassigned    int64        `json:"reassigned_total"`
	Restarts      int64        `json:"worker_restarts_total"`
}

// Metrics snapshots the cluster.
func (c *Coordinator) Metrics() ClusterMetrics {
	m := ClusterMetrics{
		UptimeSeconds: time.Since(c.start).Seconds(),
		Created:       c.created.Load(),
		Removed:       c.removed.Load(),
		Failed:        c.failed.Load(),
		Reassigned:    c.reassigned.Load(),
		Restarts:      c.restarts.Load(),
	}
	c.mu.Lock()
	load := make(map[int]int)
	for _, cs := range c.sessions {
		if cs.state == sessionOrphaned {
			m.Orphaned++
		}
		if cs.state == sessionAssigned && cs.worker >= 0 {
			load[cs.worker]++
		}
	}
	m.Sessions = len(c.sessions)
	for _, sl := range c.slots {
		wi := WorkerInfo{
			Slot:     sl.slot,
			Alive:    sl.alive,
			Retired:  sl.retired,
			Restarts: sl.restarts,
			Sessions: load[sl.slot],
		}
		if sl.proc != nil {
			wi.PID = sl.proc.PID()
			wi.URL = sl.proc.URL()
		}
		if sl.alive {
			m.WorkersAlive++
		}
		m.Workers = append(m.Workers, wi)
	}
	c.mu.Unlock()
	return m
}

// aliveClients snapshots the clients of live workers under the lock so
// fan-out RPCs never hold c.mu across the network.
func (c *Coordinator) aliveClients() []*WorkerClient {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*WorkerClient, 0, len(c.slots))
	for _, sl := range c.slots {
		if sl.alive {
			out = append(out, sl.client)
		}
	}
	return out
}

// FleetSnapshot merges the coordinator's own registry with a scrape of
// every live worker's registry into one fleet-wide view: counters and
// gauges sum, histograms merge bucket-wise so fleet quantiles come from
// the combined distribution rather than an average of averages. Workers
// that fail to answer within ctx are skipped — the fleet view is
// best-effort by design; a dead worker has no registry to scrape.
func (c *Coordinator) FleetSnapshot(ctx context.Context) obs.Snapshot {
	fleet := c.obs.Snapshot()
	clients := c.aliveClients()
	snaps := make([]obs.Snapshot, len(clients))
	oks := make([]bool, len(clients))
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *WorkerClient) {
			defer wg.Done()
			snap, err := cl.ObsSnapshot(ctx)
			if err != nil {
				return
			}
			snaps[i], oks[i] = snap, true
		}(i, cl)
	}
	wg.Wait()
	for i := range snaps {
		if oks[i] {
			fleet.Merge(snaps[i])
		}
	}
	return fleet
}

// FleetTrace merges the coordinator's span ring with every live
// worker's, time-sorted, so one draw's record reads as a single chain
// edge → worker → engine. span narrows to one id; "" returns recent
// events from every tier.
func (c *Coordinator) FleetTrace(ctx context.Context, span string) []obs.SpanEvent {
	var evs []obs.SpanEvent
	if span != "" {
		evs = c.spans.Span(span)
	} else {
		evs = c.spans.Recent(64)
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, cl := range c.aliveClients() {
		wg.Add(1)
		go func(cl *WorkerClient) {
			defer wg.Done()
			wevs, err := cl.Trace(ctx, span)
			if err != nil {
				return
			}
			mu.Lock()
			evs = append(evs, wevs...)
			mu.Unlock()
		}(cl)
	}
	wg.Wait()
	sort.Slice(evs, func(i, j int) bool { return evs[i].Time.Before(evs[j].Time) })
	return evs
}

// Shutdown stops the tier: supervision halts (worker exits during
// shutdown are expected, not crashes), every worker drains — zeroizing
// every pool — and every worker process is reaped. ctx bounds the whole
// drain; stragglers are killed when it expires.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return nil
	}
	c.closed = true
	procs := make([]WorkerProc, 0, len(c.slots))
	clients := make([]*WorkerClient, 0, len(c.slots))
	for _, sl := range c.slots {
		if sl.proc != nil {
			procs = append(procs, sl.proc)
			if sl.alive {
				clients = append(clients, sl.client)
			} else {
				clients = append(clients, nil)
			}
		}
	}
	c.mu.Unlock()

	c.cancel()
	c.wg.Wait()

	var dwg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for i := range procs {
		dwg.Add(1)
		go func(proc WorkerProc, client *WorkerClient) {
			defer dwg.Done()
			if client != nil {
				// Drain first: the worker zeroizes every pool, then exits on
				// its own; Stop only mops up.
				if err := client.Drain(ctx); err != nil && !errors.Is(err, ErrUnreachable) {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
			if err := proc.Stop(ctx); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(procs[i], clients[i])
	}
	dwg.Wait()
	c.mu.Lock()
	for _, sl := range c.slots {
		sl.client.CloseIdle()
	}
	c.mu.Unlock()
	if c.jnl != nil {
		// A drained tier has nothing to recover: cut a final snapshot so
		// the next boot sees the (empty of live workers) truth instead of
		// re-probing URLs of processes that just exited.
		c.mu.Lock()
		c.jnl.compact(c.persistStateLocked())
		c.mu.Unlock()
		c.jnl.close()
	}
	return firstErr
}

// Abandon stops the coordinator without draining or stopping its
// workers — the crash-shaped exit. Supervision halts, the journal file
// is released, and every worker process is left running exactly as a
// SIGKILLed coordinator would leave it; a successor built on the same
// StateDir re-adopts them. This is the in-process stand-in for kill -9
// used by restart tests; production crash recovery needs no call here
// (the journal is fsynced on every append).
func (c *Coordinator) Abandon() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.cancel()
	c.wg.Wait()
	if c.jnl != nil {
		c.jnl.close()
	}
}

// Uptime reports how long the coordinator has been running.
func (c *Coordinator) Uptime() time.Duration { return time.Since(c.start) }

// OwnerInfo is one session→worker ownership fact: which worker slot
// hosts the session and the /ctl base URL a gate dials to reach it
// directly. URL is empty unless the session is assigned to a live
// worker (orphaned/placing/failed sessions have no reachable owner).
type OwnerInfo struct {
	Session uint64 `json:"session"`
	Worker  int    `json:"worker"`
	URL     string `json:"url,omitempty"`
	State   string `json:"state"`
}

// OwnerMap is the full ownership snapshot plus the epoch it was taken
// at. A gate caches the entries and re-pulls only when OwnersEpoch
// moves past the cached value.
type OwnerMap struct {
	Epoch  uint64      `json:"epoch"`
	Owners []OwnerInfo `json:"owners"`
}

// OwnersEpoch returns the current ownership-map revision. It bumps on
// every transition that changes which worker (or URL) serves which
// session: placement, worker death, respawn, close, and failure.
func (c *Coordinator) OwnersEpoch() uint64 { return c.epoch.Load() }

// ownerInfoLocked builds one session's OwnerInfo. Caller holds c.mu.
func (c *Coordinator) ownerInfoLocked(cs *clusterSession) OwnerInfo {
	oi := OwnerInfo{Session: cs.id, Worker: cs.worker, State: cs.state}
	if cs.state == sessionAssigned {
		for _, sl := range c.slots {
			if sl.slot == cs.worker && sl.alive && sl.proc != nil {
				oi.URL = sl.proc.URL()
			}
		}
	}
	return oi
}

// Owner resolves one session's current owner — the gate's cache-miss
// path. ErrNotFound for unknown ids; known sessions always resolve,
// with an empty URL while no live worker hosts them.
func (c *Coordinator) Owner(cid uint64) (OwnerInfo, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cs, ok := c.sessions[cid]
	if !ok {
		return OwnerInfo{}, fmt.Errorf("%w: %d", ErrNotFound, cid)
	}
	return c.ownerInfoLocked(cs), nil
}

// Owners snapshots the whole ownership map, id-sorted. The epoch is
// read before the map is built, so a gate that caches this snapshot at
// its epoch can only ever be stale-and-detectably-so, never
// fresher-than-the-epoch-claims.
func (c *Coordinator) Owners() OwnerMap {
	epoch := c.epoch.Load()
	c.mu.Lock()
	out := make([]OwnerInfo, 0, len(c.sessions))
	for _, cs := range c.sessions {
		out = append(out, c.ownerInfoLocked(cs))
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Session < out[j].Session })
	return OwnerMap{Epoch: epoch, Owners: out}
}
