package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// streamedSpec is fastSpec kept on the in-process bus so the keystream
// stays offset-addressable: repeatable reads are what lets a test prove
// an adopted session serves byte-identical ranges.
func streamedSpec(seed int64) service.SessionSpec {
	sp := fastSpec(seed)
	sp.Streamed = true
	return sp
}

// TestJournalReplay pins the journal's round trip: every record kind
// applied on replay reproduces the state the coordinator recorded.
func TestJournalReplay(t *testing.T) {
	dir := t.TempDir()
	j, state, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if state != nil {
		t.Fatalf("fresh dir replayed state: %+v", state)
	}
	spec := fastSpec(42)
	recs := []journalRecord{
		{Op: jopWorker, Slot: 0, URL: "http://127.0.0.1:1", PID: 11, Epoch: 1},
		{Op: jopWorker, Slot: 1, URL: "http://127.0.0.1:2", PID: 12, Epoch: 2},
		{Op: jopCreate, ID: 1, Spec: &spec, Epoch: 2},
		{Op: jopPlace, ID: 1, Slot: 0, Epoch: 3},
		{Op: jopCreate, ID: 2, Spec: &spec, Epoch: 3},
		{Op: jopPlace, ID: 2, Slot: 1, Epoch: 4},
		{Op: jopCreate, ID: 3, Spec: &spec, Epoch: 4},
		{Op: jopPlace, ID: 3, Slot: 1, Epoch: 5},
		{Op: jopDown, Slot: 1, Epoch: 6},                         // orphans 2 and 3
		{Op: jopPlace, ID: 2, Slot: 0, Reassign: true, Epoch: 7}, // re-placed
		{Op: jopFail, ID: 3, Epoch: 8},                           // died permanently
		{Op: jopWorker, Slot: 1, URL: "http://127.0.0.1:3", PID: 13, Epoch: 9},
		{Op: jopCreate, ID: 4, Spec: &spec, Epoch: 9},
		{Op: jopClose, ID: 4, Epoch: 10},
		{Op: jopRetire, Slot: 0, Epoch: 11},
	}
	for _, rec := range recs {
		j.append(rec)
	}
	j.close()

	_, rs, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs == nil {
		t.Fatal("journaled dir replayed as fresh")
	}
	if rs.nextID != 5 {
		t.Fatalf("nextID = %d, want 5", rs.nextID)
	}
	if rs.epoch != 11 {
		t.Fatalf("epoch = %d, want 11", rs.epoch)
	}
	if len(rs.sessions) != 3 {
		t.Fatalf("replayed %d sessions, want 3 (closed one must be gone)", len(rs.sessions))
	}
	if s := rs.sessions[1]; s == nil || s.State != sessionAssigned || s.Worker != 0 || s.Reassigns != 0 {
		t.Fatalf("session 1 replayed wrong: %+v", s)
	}
	if s := rs.sessions[2]; s == nil || s.State != sessionAssigned || s.Worker != 0 || s.Reassigns != 1 {
		t.Fatalf("session 2 replayed wrong: %+v", s)
	}
	if s := rs.sessions[3]; s == nil || s.State != sessionFailed || s.Worker != -1 {
		t.Fatalf("session 3 replayed wrong: %+v", s)
	}
	if w := rs.workers[0]; w == nil || !w.Retired || w.Alive {
		t.Fatalf("worker 0 replayed wrong: %+v", w)
	}
	if w := rs.workers[1]; w == nil || w.Retired || !w.Alive || w.URL != "http://127.0.0.1:3" {
		t.Fatalf("worker 1 replayed wrong: %+v", w)
	}
	if s := rs.sessions[1]; s.Spec.Seed != spec.Seed || s.Spec.Terminals != spec.Terminals {
		t.Fatalf("spec (and its seed) did not survive replay: %+v", s.Spec)
	}
}

// TestJournalCompaction drives the journal past its threshold and
// verifies the snapshot+truncate cycle loses nothing, including a torn
// final line (the on-disk shape of a crash mid-append).
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := fastSpec(7)
	due := false
	for i := 1; i <= snapshotEvery; i++ {
		due = j.append(journalRecord{Op: jopCreate, ID: uint64(i), Spec: &spec, Epoch: uint64(i)})
	}
	if !due {
		t.Fatalf("%d appends did not request compaction", snapshotEvery)
	}
	// Compact the way the coordinator would, then keep appending.
	state := persistState{NextID: uint64(snapshotEvery + 1), Epoch: uint64(snapshotEvery)}
	for i := 1; i <= snapshotEvery; i++ {
		state.Sessions = append(state.Sessions, persistedSession{
			ID: uint64(i), Spec: spec, Worker: -1, State: sessionPlacing,
		})
	}
	j.compact(state)
	if fi, err := os.Stat(j.journalPath()); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not truncated after compaction: %v size=%d", err, fi.Size())
	}
	j.append(journalRecord{Op: jopFail, ID: 3, Epoch: uint64(snapshotEvery + 1)})
	// A torn final line must not poison replay of everything before it.
	f, err := os.OpenFile(j.journalPath(), os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"close","id":`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	j.close()

	_, rs, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs == nil || len(rs.sessions) != snapshotEvery {
		t.Fatalf("replay after compaction lost sessions: %+v", rs)
	}
	if s := rs.sessions[3]; s == nil || s.State != sessionFailed {
		t.Fatalf("post-snapshot journal record lost: %+v", s)
	}
	if rs.nextID != uint64(snapshotEvery+1) || rs.epoch != uint64(snapshotEvery+1) {
		t.Fatalf("nextID/epoch wrong after compaction replay: %d/%d", rs.nextID, rs.epoch)
	}
}

// TestCoordinatorRestartAdoptsWorkers is the in-process restart chaos
// test: a coordinator with a state dir is abandoned crash-style (no
// drain, workers left running), and its successor on the same dir must
// re-adopt every surviving worker — zero spawns, zero reassignments,
// byte-identical stream ranges from the very same live sessions — while
// a permanently failed session stays failed across the restart.
func TestCoordinatorRestartAdoptsWorkers(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Config{
		Workers:        2,
		HeartbeatEvery: 50 * time.Millisecond,
		StateDir:       dir,
		Obs:            obs.New(),
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const n = 4
	var ids []uint64
	for i := 0; i < n; i++ {
		info, err := c1.Create(streamedSpec(int64(1000 + i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	// One deterministically doomed session: the failure verdict must
	// survive the restart too.
	dead := fastSpec(99)
	dead.Erasure = 0.999
	dead.XPerRound = 4
	dead.LowWater = 64
	dead.TargetDepth = 128
	deadInfo, err := c1.Create(dead)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 90*time.Second, "doomed session to fail", func() bool {
		_, err := c1.Draw(ctx, deadInfo.ID, 8)
		return errors.Is(err, service.ErrFailed)
	})

	refs := make([][]byte, n)
	for i, id := range ids {
		id := id
		waitFor(t, 60*time.Second, fmt.Sprintf("stream range from session %d", id), func() bool {
			key, err := c1.StreamRange(ctx, id, 0, 512)
			if err != nil {
				return false
			}
			refs[i] = key
			return true
		})
	}
	epochBefore := c1.OwnersEpoch()
	c1.Abandon() // crash-shaped: workers keep running

	// The successor must adopt, never spawn: a spawn attempt is the
	// failure.
	c2, err := New(Config{
		Workers:        2,
		HeartbeatEvery: 50 * time.Millisecond,
		StateDir:       dir,
		Obs:            obs.New(),
		Logf:           t.Logf,
		Spawn: func(context.Context, WorkerSpawnOpts) (WorkerProc, error) {
			return nil, errors.New("restart with surviving workers must adopt, not spawn")
		},
	})
	if err != nil {
		t.Fatalf("restart from journal: %v", err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := c2.Shutdown(sctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	if got := c2.adopted.Load(); got != n {
		t.Fatalf("adopted %d sessions, want %d", got, n)
	}
	if e := c2.OwnersEpoch(); e <= epochBefore {
		t.Fatalf("ownership epoch did not advance across restart: %d -> %d", epochBefore, e)
	}
	if cm := c2.Metrics(); cm.Restarts != 0 || cm.Reassigned != 0 {
		t.Fatalf("restart respawned/reassigned surviving sessions: %+v", cm)
	}
	for i, id := range ids {
		info, err := c2.Session(ctx, id)
		if err != nil {
			t.Fatalf("session %d after restart: %v", id, err)
		}
		if info.State != sessionAssigned || info.Reassigns != 0 {
			t.Fatalf("session %d not cleanly adopted: %+v", id, info)
		}
		got, err := c2.StreamRange(ctx, id, 0, 512)
		if err != nil {
			t.Fatalf("stream range from adopted session %d: %v", id, err)
		}
		if !bytes.Equal(got, refs[i]) {
			t.Fatalf("adopted session %d served different bytes for the same range", id)
		}
	}
	// Failure memory: the dead session answers failed, not not-found.
	if _, err := c2.Draw(ctx, deadInfo.ID, 8); !errors.Is(err, service.ErrFailed) {
		t.Fatalf("failed session after restart: err = %v, want ErrFailed", err)
	}
	// The id space must not rewind: a fresh create gets a fresh id.
	info, err := c2.Create(streamedSpec(777))
	if err != nil {
		t.Fatal(err)
	}
	if info.ID <= deadInfo.ID {
		t.Fatalf("id space rewound after restart: new id %d <= old id %d", info.ID, deadInfo.ID)
	}
}

// TestCoordinatorRestartRespawnsOnlyTheDead kills one of two workers
// between crash and restart: the successor must adopt the survivor
// (and its sessions) while spawning exactly one replacement and
// re-placing only the dead worker's sessions — which still serve
// byte-identical ranges, re-derived from their journaled seeds.
func TestCoordinatorRestartRespawnsOnlyTheDead(t *testing.T) {
	dir := t.TempDir()
	base := InProcess(nil)
	procs := make(map[int]WorkerProc)
	c1, err := New(Config{
		Workers:        2,
		HeartbeatEvery: 50 * time.Millisecond,
		StateDir:       dir,
		Obs:            obs.New(),
		Logf:           t.Logf,
		Spawn: func(ctx context.Context, opts WorkerSpawnOpts) (WorkerProc, error) {
			p, err := base(ctx, opts)
			if err == nil {
				procs[opts.Slot] = p
			}
			return p, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	const n = 4
	ids := make([]uint64, 0, n)
	bySlot := make(map[uint64]int)
	refs := make(map[uint64][]byte)
	for i := 0; i < n; i++ {
		info, err := c1.Create(streamedSpec(int64(2000 + i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
		bySlot[info.ID] = info.Worker
	}
	for _, id := range ids {
		id := id
		waitFor(t, 60*time.Second, fmt.Sprintf("stream range from session %d", id), func() bool {
			key, err := c1.StreamRange(ctx, id, 0, 256)
			if err != nil {
				return false
			}
			refs[id] = key
			return true
		})
	}
	c1.Abandon()
	_ = procs[1].Kill() // this worker does not survive the outage

	spawns := 0
	c2, err := New(Config{
		Workers:        2,
		HeartbeatEvery: 50 * time.Millisecond,
		StateDir:       dir,
		Obs:            obs.New(),
		Logf:           t.Logf,
		Spawn: func(ctx context.Context, opts WorkerSpawnOpts) (WorkerProc, error) {
			spawns++
			return base(ctx, opts)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		_ = c2.Shutdown(sctx)
	}()

	if spawns != 1 {
		t.Fatalf("spawned %d workers, want exactly 1 (the dead slot)", spawns)
	}
	survivors, lost := 0, 0
	for _, id := range ids {
		if bySlot[id] == 0 {
			survivors++
		} else {
			lost++
		}
	}
	if got := c2.adopted.Load(); got != int64(survivors) {
		t.Fatalf("adopted %d sessions, want %d (the survivor's)", got, survivors)
	}
	// Every session — adopted or re-placed — must serve the same bytes.
	for _, id := range ids {
		id := id
		waitFor(t, 60*time.Second, fmt.Sprintf("session %d after partial recovery", id), func() bool {
			got, err := c2.StreamRange(ctx, id, 0, 256)
			return err == nil && bytes.Equal(got, refs[id])
		})
		info, err := c2.Session(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		wantReassigns := 0
		if bySlot[id] != 0 {
			wantReassigns = 1
		}
		if info.Reassigns != wantReassigns {
			t.Fatalf("session %d reassigns = %d, want %d", id, info.Reassigns, wantReassigns)
		}
	}
	if lost > 0 {
		if cm := c2.Metrics(); cm.Reassigned != int64(lost) {
			t.Fatalf("reassigned %d sessions, want %d (only the dead worker's)", cm.Reassigned, lost)
		}
	}
}
