package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// obsTestCluster builds a coordinator with a private registry and span
// ring (never the process defaults, so parallel tests don't cross-talk)
// over in-process workers, which mint their own private registries.
func obsTestCluster(t *testing.T, workers int) (*Coordinator, *httptest.Server) {
	t.Helper()
	cfg := testConfig(nil)
	cfg.Workers = workers
	cfg.Obs = obs.New()
	cfg.Spans = obs.NewSpanLog(256)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		srv.Close()
		c.Shutdown(context.Background())
	})
	return c, srv
}

// TestDrawSpanChainsEdgeToEngine is the acceptance check for cross-tier
// tracing: one draw through the coordinator yields a single span whose
// record chains the HTTP edge, the worker that served the RPC, and the
// engine round counters — all under the id echoed on the response.
func TestDrawSpanChainsEdgeToEngine(t *testing.T) {
	c, srv := obsTestCluster(t, 2)

	spec := fastSpec(2024)
	spec.Name = "span-chain"
	info, err := c.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c, info.ID, spec.TargetDepth)

	resp, err := http.Post(srv.URL+"/v1/sessions/1/draw?bytes=32", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("draw status %d", resp.StatusCode)
	}
	span := resp.Header.Get(obs.SpanHeader)
	if span == "" {
		t.Fatalf("draw response did not echo %s", obs.SpanHeader)
	}

	evs := c.FleetTrace(context.Background(), span)
	tiers := make(map[string][]obs.SpanEvent)
	for _, ev := range evs {
		if ev.Span != span {
			t.Fatalf("trace for %s contains foreign span %s", span, ev.Span)
		}
		tiers[ev.Tier] = append(tiers[ev.Tier], ev)
	}
	for _, tier := range []string{"edge", "worker", "engine"} {
		if len(tiers[tier]) == 0 {
			t.Fatalf("span %s has no %s event; got %+v", span, tier, evs)
		}
	}
	if got := tiers["engine"][0].Attrs["rounds"]; got == "" || got == "0" {
		t.Fatalf("engine event carries no round count: %+v", tiers["engine"][0])
	}
	// The HTTP surface serves the same merged view.
	hr, err := http.Get(srv.URL + "/debug/trace?span=" + span)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var hevs []obs.SpanEvent
	if err := json.NewDecoder(hr.Body).Decode(&hevs); err != nil {
		t.Fatal(err)
	}
	if len(hevs) != len(evs) {
		t.Fatalf("/debug/trace returned %d events, FleetTrace %d", len(hevs), len(evs))
	}
	for i := 1; i < len(hevs); i++ {
		if hevs[i].Time.Before(hevs[i-1].Time) {
			t.Fatalf("trace events not time-sorted: %+v", hevs)
		}
	}
}

// TestFleetMetricsMergeAcrossWorkers: /v1/cluster/metrics folds every
// worker's registry into the coordinator's own — draw latency observed
// inside two different worker processes lands in one bucket-merged
// histogram, and the coordinator's RPC instrumentation rides alongside.
func TestFleetMetricsMergeAcrossWorkers(t *testing.T) {
	c, srv := obsTestCluster(t, 2)

	for i, seed := range []int64{7001, 7002} {
		spec := fastSpec(seed)
		spec.Name = "fleet-" + string(rune('a'+i))
		info, err := c.Create(spec)
		if err != nil {
			t.Fatal(err)
		}
		waitConverged(t, c, info.ID, spec.TargetDepth)
	}
	// Least-loaded placement puts the two sessions on different workers.
	for cid := uint64(1); cid <= 2; cid++ {
		if _, err := c.Draw(context.Background(), cid, 16); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fleet obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}

	if got := fleet.Total("thinaird_cluster_rpc_seconds"); got == 0 {
		t.Fatal("fleet view lacks coordinator RPC latency observations")
	}
	blocks := fleet.Family("thinaird_engine_round_seconds")
	if blocks == nil || len(blocks.Series) == 0 || blocks.Series[0].Hist == nil {
		t.Fatalf("fleet view lacks merged engine histogram: %+v", blocks)
	}
	h := blocks.Series[0].Hist
	if h.Count == 0 || h.P99 <= 0 {
		t.Fatalf("merged histogram has no quantiles: count=%d p99=%g", h.Count, h.P99)
	}

	// The merged total must equal the sum of the per-worker scrapes —
	// the coordinator runs no engine rounds itself.
	var workerSum float64
	for _, cl := range c.aliveClients() {
		snap, err := cl.ObsSnapshot(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		n := snap.Total("thinaird_engine_round_seconds")
		if n == 0 {
			t.Fatal("a worker served draws but ran no engine rounds")
		}
		workerSum += n
	}
	// Re-scrape the fleet: engine rounds may have advanced between the
	// two reads, so compare against a fresh merged view instead.
	fresh := c.FleetSnapshot(context.Background())
	if got := fresh.Total("thinaird_engine_round_seconds"); got < workerSum {
		t.Fatalf("fleet total %g < sum of worker scrapes %g", got, workerSum)
	}

	// The prom rendering of the fleet view is lint-clean.
	resp2, err := http.Get(srv.URL + "/v1/cluster/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if issues := obs.Lint(strings.NewReader(string(body))); len(issues) > 0 {
		t.Fatalf("fleet prom view not lint-clean:\n%s", strings.Join(issues, "\n"))
	}
	if !strings.Contains(string(body), "thinaird_engine_round_seconds_bucket") {
		t.Fatal("fleet prom view lacks merged histogram buckets")
	}
}

// TestCoordinatorMetricsEndpointLintClean: the coordinator's own
// /metrics (legacy cluster families + registry snapshot, concatenated)
// must stay one valid exposition — no duplicate families, HELP on
// everything, escaped label values.
func TestCoordinatorMetricsEndpointLintClean(t *testing.T) {
	c, srv := obsTestCluster(t, 2)

	spec := fastSpec(31415)
	info, err := c.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c, info.ID, spec.TargetDepth)
	if _, err := c.Draw(context.Background(), info.ID, 8); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if issues := obs.Lint(strings.NewReader(string(body))); len(issues) > 0 {
		t.Fatalf("/metrics not lint-clean:\n%s\nexposition:\n%s",
			strings.Join(issues, "\n"), body)
	}
	for _, want := range []string{
		"# HELP thinaird_cluster_workers_alive ",
		"# TYPE thinaird_cluster_rpc_seconds histogram",
		`thinaird_cluster_rpc_seconds_bucket{op="draw",le="+Inf"}`,
		"thinaird_cluster_respawns_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
