package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"
)

// stream fetches the raw range [off, off+n) of a session's key stream
// over the public API, retrying the transient statuses the same way
// draw does.
func (cp *coordProc) stream(t *testing.T, cid uint64, off, n int64, within time.Duration) []byte {
	t.Helper()
	var got []byte
	waitFor(t, within, fmt.Sprintf("stream [%d,%d) from session %d", off, off+n, cid), func() bool {
		resp, err := http.Get(fmt.Sprintf("%s/v1/sessions/%d/stream?offset=%d&len=%d", cp.base, cid, off, n))
		if err != nil {
			return false
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || rerr != nil || int64(len(body)) != n {
			return false
		}
		got = body
		return true
	})
	return got
}

// sigkill takes the coordinator down the hard way — no drain, no
// journal compaction, no goodbye to the workers. Exactly what a power
// cut or OOM kill looks like to the rest of the tier.
func (cp *coordProc) sigkill(t *testing.T) {
	t.Helper()
	if err := cp.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-cp.exit:
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not die from SIGKILL")
	}
}

// TestClusterE2ECoordinatorRestart is the crash-recovery acceptance
// test, process boundaries and all: a coordinator with a state dir is
// SIGKILLed mid-traffic, its worker processes outlive it on their
// orphan grace, and a successor started on the same state dir replays
// the journal, re-adopts the surviving workers by probing their
// recorded URLs — same OS pids, zero respawns, zero reassignments —
// and serves byte-identical stream ranges from the re-adopted
// sessions. Teardown proves adopted workers still honor the successor's
// SIGTERM even though they are no longer its children.
func TestClusterE2ECoordinatorRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level e2e skipped in -short")
	}
	bin := buildThinaird(t)
	stateDir := t.TempDir()
	stateArgs := []string{
		"-workers", "2", "-worker-capacity", "8",
		"-state-dir", stateDir, "-orphan-grace", "120s",
	}
	cp1 := startCoordinator(t, bin, stateArgs...)
	addr := strings.TrimPrefix(cp1.base, "http://")

	pids := make(map[int]bool)
	collectWorkerPIDs(cp1.cluster(t), pids)
	if len(pids) != 2 {
		t.Fatalf("worker pids before the crash: %v, want 2", pids)
	}

	// Streamed sessions are the byte-identity probes: their key stream
	// is offset-addressable and repeatable, so the same range read
	// before the crash and after the restart must match exactly. The
	// pool-fed session proves draw traffic resumes too.
	var ids []uint64
	for i := 0; i < 4; i++ {
		sp := fastSpec(int64(7000 + i*13))
		sp.Name = sessionName(i)
		sp.Streamed = true
		ids = append(ids, cp1.create(t, sp).ID)
	}
	poolSpec := fastSpec(7777)
	poolSpec.Name = "pool-probe"
	poolID := cp1.create(t, poolSpec).ID
	cp1.waitAllConverged(t, append(append([]uint64{}, ids...), poolID), poolSpec.TargetDepth, 180*time.Second)

	// Mid-traffic: draws push pools toward the low watermark so
	// refreshers are running protocol rounds when the axe falls.
	cp1.draw(t, poolID, 64, 30*time.Second)
	refs := make(map[uint64][]byte, len(ids))
	for _, id := range ids {
		refs[id] = cp1.stream(t, id, 0, 512, 30*time.Second)
	}

	cp1.sigkill(t)

	// The workers were told to outlive a dead coordinator: every pid
	// must still be running on its orphan grace.
	for pid := range pids {
		if err := syscall.Kill(pid, 0); err != nil {
			t.Fatalf("worker pid %d did not survive the coordinator crash: %v", pid, err)
		}
	}

	// The successor binds the same address and replays the same state
	// dir. Its ready line only prints after New() — journal replay and
	// worker adoption included.
	cp2 := startCoordinator(t, bin, append(append([]string{}, stateArgs...), "-addr", addr)...)
	cm := cp2.cluster(t)
	if cm.WorkersAlive != 2 {
		t.Fatalf("workers alive after restart = %d, want 2", cm.WorkersAlive)
	}
	// Adoption, not respawn: the successor runs the very same worker
	// processes the dead coordinator spawned.
	after := make(map[int]bool)
	collectWorkerPIDs(cm, after)
	for pid := range after {
		if !pids[pid] {
			t.Fatalf("worker pid %d appeared after restart; survivors were %v — a survivor was respawned", pid, pids)
		}
	}
	if len(after) != len(pids) {
		t.Fatalf("worker pids after restart %v, want the surviving set %v", after, pids)
	}
	if cm.Restarts != 0 || cm.Reassigned != 0 {
		t.Fatalf("restarts=%d reassigned=%d after adopting a fully-live fleet, want 0/0", cm.Restarts, cm.Reassigned)
	}

	// Re-adopted sessions serve the exact bytes they served before the
	// crash — same placement, same stream position, no respawn.
	for _, id := range ids {
		got := cp2.stream(t, id, 0, 512, 60*time.Second)
		if !bytes.Equal(got, refs[id]) {
			t.Fatalf("session %d stream range differs across the coordinator restart", id)
		}
	}
	cp2.draw(t, poolID, 64, 60*time.Second)

	// The registry's id sequence survived the crash: new sessions never
	// reuse a pre-crash id.
	extra := fastSpec(8888)
	extra.Name = "post-restart"
	if ni := cp2.create(t, extra); ni.ID <= poolID {
		t.Fatalf("post-restart session id %d not above pre-crash ids (max %d)", ni.ID, poolID)
	}

	// Graceful teardown must reach the adopted workers by pid signal —
	// they are init's children now, not the successor's.
	collectWorkerPIDs(cp2.cluster(t), pids)
	cp2.shutdownAndCheckOrphans(t, pids)
}

// TestClusterE2ERestartRespawnsLostWorker: when one worker dies in the
// same blackout as the coordinator, the successor adopts the survivor
// and respawns only the missing slot; the lost worker's sessions come
// back via reassignment while the survivor's ride through untouched.
func TestClusterE2ERestartRespawnsLostWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level e2e skipped in -short")
	}
	bin := buildThinaird(t)
	stateDir := t.TempDir()
	stateArgs := []string{
		"-workers", "2", "-worker-capacity", "8",
		"-state-dir", stateDir, "-orphan-grace", "120s",
	}
	cp1 := startCoordinator(t, bin, stateArgs...)

	var ids []uint64
	var infos []SessionInfo
	for i := 0; i < 4; i++ {
		sp := fastSpec(int64(9100 + i*17))
		sp.Name = sessionName(i)
		sp.Streamed = true
		info := cp1.create(t, sp)
		ids = append(ids, info.ID)
		infos = append(infos, info)
	}
	cp1.waitAllConverged(t, ids, fastSpec(0).TargetDepth, 180*time.Second)
	refs := make(map[uint64][]byte, len(ids))
	for _, id := range ids {
		refs[id] = cp1.stream(t, id, 0, 256, 30*time.Second)
	}

	// Identify the doomed slot's pid and the survivor's before the
	// blackout.
	victimSlot := infos[0].Worker
	var victimPID, survivorPID int
	for _, wi := range cp1.cluster(t).Workers {
		if wi.Slot == victimSlot {
			victimPID = wi.PID
		} else {
			survivorPID = wi.PID
		}
	}
	if victimPID == 0 || survivorPID == 0 {
		t.Fatalf("missing worker pids: victim=%d survivor=%d", victimPID, survivorPID)
	}

	cp1.sigkill(t)
	if err := syscall.Kill(victimPID, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	cp2 := startCoordinator(t, bin, stateArgs...)
	waitFor(t, 120*time.Second, "adoption of the survivor + respawn of the lost slot", func() bool {
		cm := cp2.cluster(t)
		if cm.WorkersAlive != 2 {
			return false
		}
		var list []SessionInfo
		if cp2.getJSON("/v1/sessions", &list) != http.StatusOK {
			return false
		}
		assigned := 0
		for _, si := range list {
			if si.State == sessionAssigned {
				assigned++
			}
		}
		return assigned == len(ids)
	})
	cm := cp2.cluster(t)
	pidsAfter := make(map[int]bool)
	collectWorkerPIDs(cm, pidsAfter)
	if !pidsAfter[survivorPID] {
		t.Fatalf("survivor pid %d gone after restart: %v — it was respawned instead of adopted", survivorPID, pidsAfter)
	}
	if pidsAfter[victimPID] {
		t.Fatalf("dead worker pid %d still listed after restart", victimPID)
	}

	// Every session — adopted and reassigned alike — serves the exact
	// pre-crash bytes: stream-fed sessions derive the same keystream
	// from their journaled seed wherever they land.
	for _, id := range ids {
		got := cp2.stream(t, id, 0, 256, 120*time.Second)
		if !bytes.Equal(got, refs[id]) {
			t.Fatalf("session %d stream range differs across restart + respawn", id)
		}
	}
	// Survivors' sessions specifically must not have been reassigned.
	var list []SessionInfo
	if cp2.getJSON("/v1/sessions", &list) != http.StatusOK {
		t.Fatal("session list unavailable")
	}
	for _, si := range list {
		if si.Worker != victimSlot && si.Reassigns != 0 {
			t.Fatalf("session %d on surviving slot %d was reassigned %d times", si.ID, si.Worker, si.Reassigns)
		}
	}

	pids := make(map[int]bool)
	collectWorkerPIDs(cm, pids)
	cp2.shutdownAndCheckOrphans(t, pids)
}
