package cluster

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/service"
)

// Handler returns the coordinator's public HTTP surface — the same shape
// as the single-process service API, with sessions addressed by their
// cluster id and draws routed to whichever worker owns the session:
//
//	GET    /healthz                  liveness
//	GET    /metrics                  Prometheus text exposition
//	GET    /v1/cluster               workers + tier counters (JSON)
//	GET    /v1/sessions              cluster sessions with live metrics
//	POST   /v1/sessions              create from a SessionSpec body
//	GET    /v1/sessions/{id}         one session's info + metrics
//	DELETE /v1/sessions/{id}         close tier-wide
//	POST   /v1/sessions/{id}/draw    draw ?bytes=N of key material
//	GET    /v1/sessions/{id}/stream  bulk ?offset=&len= key material
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		m := c.Metrics()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":        "ok",
			"uptime":        c.Uptime().String(),
			"workers_alive": m.WorkersAlive,
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		c.Metrics().WriteProm(w)
	})
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Metrics())
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Sessions(r.Context()))
	})
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var spec service.SessionSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "", err)
			return
		}
		info, err := c.Create(spec)
		if err != nil {
			switch {
			case errors.Is(err, ErrShutdown):
				httpError(w, http.StatusServiceUnavailable, codeShutdown, err)
			case errors.Is(err, ErrNoWorkers):
				httpError(w, http.StatusServiceUnavailable, codeSaturated, err)
			default:
				httpError(w, http.StatusBadRequest, "", err)
			}
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		cid, ok := sessionIDFromPath(w, r)
		if !ok {
			return
		}
		info, err := c.Session(r.Context(), cid)
		if err != nil {
			httpError(w, http.StatusNotFound, codeNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		cid, ok := sessionIDFromPath(w, r)
		if !ok {
			return
		}
		if err := c.CloseSession(r.Context(), cid); err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrNotFound) {
				status = http.StatusNotFound
			}
			httpError(w, status, "", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"closed": cid})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/draw", func(w http.ResponseWriter, r *http.Request) {
		cid, ok := sessionIDFromPath(w, r)
		if !ok {
			return
		}
		n, ok := drawBytes(w, r)
		if !ok {
			return
		}
		key, err := c.Draw(r.Context(), cid, n)
		if err != nil {
			writeDrawError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, drawResponse{
			Session: cid, Bytes: n, Key: hex.EncodeToString(key),
		})
	})
	mux.HandleFunc("GET /v1/sessions/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		cid, ok := sessionIDFromPath(w, r)
		if !ok {
			return
		}
		off, n, ok := streamRange(w, r)
		if !ok {
			return
		}
		// The worker body passes straight through — never buffered at the
		// coordinator. Success headers are written lazily on the first
		// body byte, so a pre-body RPC rejection still gets the JSON
		// error envelope; a mid-body failure leaves the declared
		// Content-Length unsatisfied and aborts the connection instead of
		// terminating a valid-looking short body.
		sw := &passthroughWriter{w: w, n: n}
		if _, err := c.StreamRangeTo(r.Context(), cid, off, n, sw); err != nil {
			if !sw.wrote {
				writeDrawError(w, err)
			}
			return
		}
	})
	return mux
}

// passthroughWriter defers a stream response's success headers to the
// first body byte and flushes each chunk, so routed stream reads keep
// the worker's time-to-first-byte while pre-body errors can still use
// the JSON envelope.
type passthroughWriter struct {
	w     http.ResponseWriter
	n     int64
	wrote bool
}

func (pw *passthroughWriter) Write(p []byte) (int, error) {
	if !pw.wrote {
		pw.wrote = true
		pw.w.Header().Set("Content-Type", "application/octet-stream")
		pw.w.Header().Set("Content-Length", strconv.FormatInt(pw.n, 10))
		pw.w.WriteHeader(http.StatusOK)
	}
	m, err := pw.w.Write(p)
	if err == nil {
		if f, ok := pw.w.(http.Flusher); ok {
			f.Flush()
		}
	}
	return m, err
}

// WriteProm renders the cluster snapshot in the Prometheus text format,
// prefixed thinaird_cluster_ so a coordinator and a single-process
// daemon can be scraped side by side.
func (m ClusterMetrics) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "# TYPE thinaird_cluster_uptime_seconds gauge\n")
	fmt.Fprintf(w, "thinaird_cluster_uptime_seconds %g\n", m.UptimeSeconds)
	fmt.Fprintf(w, "# TYPE thinaird_cluster_workers_alive gauge\n")
	fmt.Fprintf(w, "thinaird_cluster_workers_alive %d\n", m.WorkersAlive)
	fmt.Fprintf(w, "# TYPE thinaird_cluster_sessions gauge\n")
	fmt.Fprintf(w, "thinaird_cluster_sessions %d\n", m.Sessions)
	fmt.Fprintf(w, "# TYPE thinaird_cluster_sessions_orphaned gauge\n")
	fmt.Fprintf(w, "thinaird_cluster_sessions_orphaned %d\n", m.Orphaned)
	fmt.Fprintf(w, "# TYPE thinaird_cluster_sessions_created_total counter\n")
	fmt.Fprintf(w, "thinaird_cluster_sessions_created_total %d\n", m.Created)
	fmt.Fprintf(w, "# TYPE thinaird_cluster_sessions_removed_total counter\n")
	fmt.Fprintf(w, "thinaird_cluster_sessions_removed_total %d\n", m.Removed)
	fmt.Fprintf(w, "# TYPE thinaird_cluster_sessions_failed_total counter\n")
	fmt.Fprintf(w, "thinaird_cluster_sessions_failed_total %d\n", m.Failed)
	fmt.Fprintf(w, "# TYPE thinaird_cluster_sessions_reassigned_total counter\n")
	fmt.Fprintf(w, "thinaird_cluster_sessions_reassigned_total %d\n", m.Reassigned)
	fmt.Fprintf(w, "# TYPE thinaird_cluster_worker_restarts_total counter\n")
	fmt.Fprintf(w, "thinaird_cluster_worker_restarts_total %d\n", m.Restarts)
	fmt.Fprintf(w, "# TYPE thinaird_cluster_worker_sessions gauge\n")
	for _, wi := range m.Workers {
		fmt.Fprintf(w, "thinaird_cluster_worker_sessions{slot=%q,alive=%q} %d\n",
			strconv.Itoa(wi.Slot), strconv.FormatBool(wi.Alive), wi.Sessions)
	}
}
