package cluster

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"repro/internal/obs"
	"repro/internal/service"
)

// Handler returns the coordinator's public HTTP surface — the same shape
// as the single-process service API, with sessions addressed by their
// cluster id and draws routed to whichever worker owns the session:
//
//	GET    /healthz                  liveness
//	GET    /metrics                  Prometheus text exposition
//	GET    /debug/trace              fleet span events (?span= narrows)
//	GET    /v1/cluster               workers + tier counters (JSON)
//	GET    /v1/cluster/metrics       fleet-merged registry snapshot
//	GET    /v1/cluster/owners        session→worker ownership map (+epoch;
//	                                 ?session= one entry, ?epoch= cheap poll)
//	GET    /v1/sessions              cluster sessions with live metrics
//	POST   /v1/sessions              create from a SessionSpec body
//	GET    /v1/sessions/{id}         one session's info + metrics
//	DELETE /v1/sessions/{id}         close tier-wide
//	POST   /v1/sessions/{id}/draw    draw ?bytes=N of key material
//	GET    /v1/sessions/{id}/stream  bulk ?offset=&len= key material
//
// Draw and stream requests are span roots: the edge mints (or passes
// through) an X-Thinair-Span id, echoes it on the response, and the
// routed worker RPC carries it so /debug/trace?span= shows the whole
// edge → worker → engine chain.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		m := c.Metrics()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":        "ok",
			"uptime":        c.Uptime().String(),
			"workers_alive": m.WorkersAlive,
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		c.Metrics().WriteProm(w)
		_ = c.obs.Snapshot().WriteProm(w)
	})
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
		evs := c.FleetTrace(r.Context(), r.URL.Query().Get("span"))
		writeJSON(w, http.StatusOK, evs)
	})
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Metrics())
	})
	mux.HandleFunc("GET /v1/cluster/metrics", func(w http.ResponseWriter, r *http.Request) {
		fleet := c.FleetSnapshot(r.Context())
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = fleet.WriteProm(w)
			return
		}
		writeJSON(w, http.StatusOK, fleet)
	})
	mux.HandleFunc("GET /v1/cluster/owners", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		// ?session=N resolves one entry — the gate's cache-miss path.
		if s := q.Get("session"); s != "" {
			cid, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, "", err)
				return
			}
			oi, err := c.Owner(cid)
			if err != nil {
				httpError(w, http.StatusNotFound, codeNotFound, err)
				return
			}
			writeJSON(w, http.StatusOK, oi)
			return
		}
		// ?epoch=N is the watch poll: 304 while the map hasn't moved, so
		// a gate's poll loop costs the coordinator one atomic load.
		if e := q.Get("epoch"); e != "" {
			have, err := strconv.ParseUint(e, 10, 64)
			if err != nil {
				httpError(w, http.StatusBadRequest, "", err)
				return
			}
			if c.OwnersEpoch() == have {
				w.WriteHeader(http.StatusNotModified)
				return
			}
		}
		writeJSON(w, http.StatusOK, c.Owners())
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Sessions(r.Context()))
	})
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var spec service.SessionSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, "", err)
			return
		}
		info, err := c.Create(spec)
		if err != nil {
			switch {
			case errors.Is(err, ErrShutdown):
				httpError(w, http.StatusServiceUnavailable, codeShutdown, err)
			case errors.Is(err, ErrNoWorkers):
				httpError(w, http.StatusServiceUnavailable, codeSaturated, err)
			default:
				httpError(w, http.StatusBadRequest, "", err)
			}
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		cid, ok := sessionIDFromPath(w, r)
		if !ok {
			return
		}
		info, err := c.Session(r.Context(), cid)
		if err != nil {
			httpError(w, http.StatusNotFound, codeNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		cid, ok := sessionIDFromPath(w, r)
		if !ok {
			return
		}
		if err := c.CloseSession(r.Context(), cid); err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrNotFound) {
				status = http.StatusNotFound
			}
			httpError(w, status, "", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"closed": cid})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/draw", func(w http.ResponseWriter, r *http.Request) {
		cid, ok := sessionIDFromPath(w, r)
		if !ok {
			return
		}
		n, ok := drawBytes(w, r)
		if !ok {
			return
		}
		ctx := r.Context()
		var span string
		if c.obs.Enabled() {
			// The coordinator edge always echoes the span — a routed draw
			// costs two RPC hops, so the header is free here and lets any
			// caller fetch the edge→worker→engine chain afterwards.
			span = obs.EnsureSpan(w, r)
			w.Header().Set(obs.SpanHeader, span)
			ctx = obs.WithSpan(ctx, span)
		}
		key, err := c.Draw(ctx, cid, n)
		if err != nil {
			writeDrawError(w, err)
			return
		}
		if span != "" {
			c.spans.RecordKV(span, "edge", "draw",
				"cluster_session", strconv.FormatUint(cid, 10),
				"bytes", strconv.Itoa(n))
		}
		writeJSON(w, http.StatusOK, drawResponse{
			Session: cid, Bytes: n, Key: hex.EncodeToString(key),
		})
	})
	mux.HandleFunc("GET /v1/sessions/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		cid, ok := sessionIDFromPath(w, r)
		if !ok {
			return
		}
		off, n, ok := streamRange(w, r)
		if !ok {
			return
		}
		ctx := r.Context()
		var span string
		if c.obs.Enabled() {
			span = obs.EnsureSpan(w, r)
			w.Header().Set(obs.SpanHeader, span)
			ctx = obs.WithSpan(ctx, span)
		}
		// The worker body passes straight through — never buffered at the
		// coordinator. Success headers are written lazily on the first
		// body byte, so a pre-body RPC rejection still gets the JSON
		// error envelope; a mid-body failure leaves the declared
		// Content-Length unsatisfied and aborts the connection instead of
		// terminating a valid-looking short body.
		sw := &passthroughWriter{w: w, n: n}
		if _, err := c.StreamRangeTo(ctx, cid, off, n, sw); err != nil {
			if !sw.wrote {
				writeDrawError(w, err)
			}
			return
		}
		if span != "" {
			c.spans.RecordKV(span, "edge", "stream",
				"cluster_session", strconv.FormatUint(cid, 10),
				"offset", strconv.FormatInt(off, 10),
				"len", strconv.FormatInt(n, 10))
		}
	})
	return mux
}

// passthroughWriter defers a stream response's success headers to the
// first body byte and flushes each chunk, so routed stream reads keep
// the worker's time-to-first-byte while pre-body errors can still use
// the JSON envelope.
type passthroughWriter struct {
	w     http.ResponseWriter
	n     int64
	wrote bool
}

func (pw *passthroughWriter) Write(p []byte) (int, error) {
	if !pw.wrote {
		pw.wrote = true
		pw.w.Header().Set("Content-Type", "application/octet-stream")
		pw.w.Header().Set("Content-Length", strconv.FormatInt(pw.n, 10))
		pw.w.WriteHeader(http.StatusOK)
	}
	m, err := pw.w.Write(p)
	if err == nil {
		if f, ok := pw.w.(http.Flusher); ok {
			f.Flush()
		}
	}
	return m, err
}

// WriteProm renders the cluster snapshot in the Prometheus text format,
// prefixed thinaird_cluster_ so a coordinator and a single-process
// daemon can be scraped side by side.
func (m ClusterMetrics) WriteProm(w io.Writer) {
	pw := obs.NewPromWriter(w)
	single := func(name, help, typ string, v float64) {
		pw.Family(name, help, typ)
		pw.Sample(name, v)
	}
	single("thinaird_cluster_uptime_seconds", "Seconds since the coordinator started.", "gauge", m.UptimeSeconds)
	single("thinaird_cluster_workers_alive", "Worker slots currently answering heartbeats.", "gauge", float64(m.WorkersAlive))
	single("thinaird_cluster_sessions", "Cluster sessions known to the coordinator.", "gauge", float64(m.Sessions))
	single("thinaird_cluster_sessions_orphaned", "Sessions awaiting re-placement after a worker death.", "gauge", float64(m.Orphaned))
	single("thinaird_cluster_sessions_created_total", "Cluster sessions admitted over the coordinator's lifetime.", "counter", float64(m.Created))
	single("thinaird_cluster_sessions_removed_total", "Cluster sessions closed and forgotten.", "counter", float64(m.Removed))
	single("thinaird_cluster_sessions_failed_total", "Cluster sessions that could not be re-placed.", "counter", float64(m.Failed))
	single("thinaird_cluster_sessions_reassigned_total", "Sessions moved to a new worker after their old one died.", "counter", float64(m.Reassigned))
	single("thinaird_cluster_worker_restarts_total", "Worker processes respawned by supervision.", "counter", float64(m.Restarts))
	pw.Family("thinaird_cluster_worker_sessions", "Assigned sessions per worker slot.", "gauge")
	for _, wi := range m.Workers {
		pw.Sample("thinaird_cluster_worker_sessions", float64(wi.Sessions),
			"slot", strconv.Itoa(wi.Slot), "alive", strconv.FormatBool(wi.Alive))
	}
}
