package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ReadyPrefix is the line a worker process prints on stdout once its
// control RPC is listening; the rest of the line is `url=<base url>`.
// ExecSpawner blocks on it, so any worker-mode binary must print it.
const ReadyPrefix = "THINAIRD_WORKER_READY"

// WorkerSpawnOpts is what the coordinator fixes about each worker it
// spawns.
type WorkerSpawnOpts struct {
	// Slot is the coordinator's stable index for this worker (survives
	// restarts; the process behind it changes).
	Slot int
	// Capacity bounds sessions on the worker.
	Capacity int
	// DrainTimeout is the per-session graceful drain bound.
	DrainTimeout time.Duration
}

// WorkerProc is a running worker as the coordinator sees it: an RPC
// address plus a lifecycle. ExecSpawner backs it with a real OS process,
// InProcess with a goroutine-hosted worker — the supervision logic is
// identical for both.
type WorkerProc interface {
	// URL is the worker's control RPC base URL.
	URL() string
	// PID identifies the worker process (the host process for in-process
	// workers).
	PID() int
	// Done is closed when the worker has exited.
	Done() <-chan struct{}
	// Stop asks the worker to exit gracefully (it is expected to have
	// been drained already) and waits until ctx expires, then kills.
	Stop(ctx context.Context) error
	// Kill terminates the worker immediately.
	Kill() error
}

// SpawnFunc produces a live worker. The coordinator calls it at startup
// and again whenever a worker dies within its restart budget.
type SpawnFunc func(ctx context.Context, opts WorkerSpawnOpts) (WorkerProc, error)

// ExecSpawner spawns workers as real OS processes: `<binary> worker
// -ctl 127.0.0.1:0 -capacity N ...`, waiting for the ReadyPrefix line on
// the child's stdout to learn its RPC address.
type ExecSpawner struct {
	// Binary is the worker executable. Empty means the current executable
	// (the coordinator re-execs itself in worker mode).
	Binary string
	// Args are extra arguments appended after the built-in worker flags.
	Args []string
	// Output receives the children's stderr and post-ready stdout.
	// Nil means os.Stderr.
	Output io.Writer
	// ReadyTimeout bounds the wait for the ready line. 0 means 10s.
	ReadyTimeout time.Duration
}

// Spawn implements SpawnFunc.
func (es *ExecSpawner) Spawn(ctx context.Context, opts WorkerSpawnOpts) (WorkerProc, error) {
	bin := es.Binary
	if bin == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("cluster: resolving own executable: %w", err)
		}
		bin = exe
	}
	out := es.Output
	if out == nil {
		out = os.Stderr
	}
	readyTimeout := es.ReadyTimeout
	if readyTimeout == 0 {
		readyTimeout = 10 * time.Second
	}
	args := []string{
		"worker",
		"-ctl", "127.0.0.1:0",
		"-capacity", strconv.Itoa(opts.Capacity),
		"-drain", opts.DrainTimeout.String(),
		"-slot", strconv.Itoa(opts.Slot),
		"-supervised",
	}
	args = append(args, es.Args...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = out
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("cluster: spawning worker %d: %w", opts.Slot, err)
	}

	done := make(chan struct{})
	go func() {
		_ = cmd.Wait()
		close(done)
	}()

	url, err := awaitReadyLine(ctx, stdout, out, done, readyTimeout)
	if err != nil {
		_ = cmd.Process.Kill()
		<-done
		return nil, fmt.Errorf("cluster: worker %d: %w", opts.Slot, err)
	}
	return &execProc{cmd: cmd, url: url, done: done}, nil
}

// awaitReadyLine scans the child's stdout for the ready line, then keeps
// forwarding the remaining output to out in the background.
func awaitReadyLine(ctx context.Context, stdout io.ReadCloser, out io.Writer, done <-chan struct{}, timeout time.Duration) (string, error) {
	type ready struct {
		url string
		err error
	}
	ch := make(chan ready, 1)
	sc := bufio.NewScanner(stdout)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, ReadyPrefix); ok {
				url := strings.TrimPrefix(strings.TrimSpace(rest), "url=")
				ch <- ready{url: url}
				// Keep draining so the child never blocks on a full pipe.
				for sc.Scan() {
					fmt.Fprintln(out, sc.Text())
				}
				return
			}
			fmt.Fprintln(out, line)
		}
		ch <- ready{err: fmt.Errorf("worker exited before ready line")}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			return "", r.err
		}
		if r.url == "" {
			return "", fmt.Errorf("malformed ready line")
		}
		return r.url, nil
	case <-done:
		return "", fmt.Errorf("worker exited before ready line")
	case <-ctx.Done():
		return "", ctx.Err()
	case <-time.After(timeout):
		return "", fmt.Errorf("timed out waiting for ready line")
	}
}

type execProc struct {
	cmd  *exec.Cmd
	url  string
	done chan struct{}
}

func (p *execProc) URL() string           { return p.url }
func (p *execProc) PID() int              { return p.cmd.Process.Pid }
func (p *execProc) Done() <-chan struct{} { return p.done }

func (p *execProc) Stop(ctx context.Context) error {
	select {
	case <-p.done:
		return nil
	default:
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
		return nil
	case <-ctx.Done():
		_ = p.cmd.Process.Kill()
		<-p.done
		return ctx.Err()
	}
}

func (p *execProc) Kill() error {
	select {
	case <-p.done:
		return nil
	default:
	}
	err := p.cmd.Process.Kill()
	<-p.done
	return err
}

// InProcess returns a SpawnFunc hosting each worker inside the calling
// process: a Worker served over a real loopback HTTP listener, so the
// coordinator talks to it through the same RPC path as a separate
// process. This is the spawner for tests, examples and single-binary
// demos; production tiers use ExecSpawner.
func InProcess(cfgTweak func(*WorkerConfig)) SpawnFunc {
	return func(ctx context.Context, opts WorkerSpawnOpts) (WorkerProc, error) {
		cfg := WorkerConfig{Capacity: opts.Capacity, DrainTimeout: opts.DrainTimeout}
		if cfgTweak != nil {
			cfgTweak(&cfg)
		}
		w := NewWorker(cfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			w.Service().Shutdown(context.Background())
			return nil, err
		}
		srv := &http.Server{Handler: w.Handler()}
		p := &inprocProc{
			worker: w,
			srv:    srv,
			url:    "http://" + ln.Addr().String(),
			done:   make(chan struct{}),
		}
		go func() {
			_ = srv.Serve(ln)
		}()
		go func() {
			// A drained worker "exits", mirroring the supervised process.
			<-w.Drained()
			p.shutdown(false)
		}()
		return p, nil
	}
}

type inprocProc struct {
	worker *Worker
	srv    *http.Server
	url    string

	once sync.Once
	done chan struct{}
}

func (p *inprocProc) URL() string           { return p.url }
func (p *inprocProc) PID() int              { return os.Getpid() }
func (p *inprocProc) Done() <-chan struct{} { return p.done }

// shutdown tears the in-process worker down. hard mimics SIGKILL: the
// listener closes first (RPCs start failing like a dead process), then
// every session is cancelled without a drain window. The soft path lets
// in-flight RPC responses (typically the drain call itself) complete.
func (p *inprocProc) shutdown(hard bool) {
	p.once.Do(func() {
		if hard {
			_ = p.srv.Close()
			ctx, cancel := context.WithCancel(context.Background())
			cancel() // already expired: sessions are cut down, not drained
			_ = p.worker.Drain(ctx)
		} else {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_ = p.srv.Shutdown(ctx)
			_ = p.worker.Drain(ctx) // no-op when the drain RPC got here first
			cancel()
		}
		close(p.done)
	})
}

func (p *inprocProc) Stop(ctx context.Context) error {
	go p.shutdown(false)
	select {
	case <-p.done:
		return nil
	case <-ctx.Done():
		p.shutdown(true)
		return ctx.Err()
	}
}

func (p *inprocProc) Kill() error {
	p.shutdown(true)
	return nil
}
