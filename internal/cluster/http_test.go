package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestCoordinatorHTTPSurface drives the public API end to end over
// HTTP: create, list, draw, prometheus, close — the same surface the
// thinaird client mode and the e2e harness use.
func TestCoordinatorHTTPSurface(t *testing.T) {
	cfg := testConfig(nil)
	cfg.Workers = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	post := func(path string, body any, out any) int {
		t.Helper()
		var rd io.Reader
		if body != nil {
			raw, err := json.Marshal(body)
			if err != nil {
				t.Fatal(err)
			}
			rd = bytes.NewReader(raw)
		}
		resp, err := http.Post(srv.URL+path, "application/json", rd)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			_ = json.NewDecoder(resp.Body).Decode(out)
		}
		return resp.StatusCode
	}
	get := func(path string, out any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			_ = json.NewDecoder(resp.Body).Decode(out)
		}
		return resp.StatusCode
	}

	spec := fastSpec(1717)
	spec.Name = "http-grp"
	var info SessionInfo
	if code := post("/v1/sessions", spec, &info); code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	if info.ID == 0 || info.State != sessionAssigned {
		t.Fatalf("create info = %+v", info)
	}

	var list []SessionInfo
	if code := get("/v1/sessions", &list); code != http.StatusOK || len(list) != 1 {
		t.Fatalf("list status %d, %d sessions", code, len(list))
	}

	waitFor(t, 60*time.Second, "convergence over HTTP", func() bool {
		var si SessionInfo
		get(fmt.Sprintf("/v1/sessions/%d", info.ID), &si)
		return si.Metrics != nil && si.Metrics.Pool.Available >= spec.TargetDepth
	})

	var dr drawResponse
	if code := post(fmt.Sprintf("/v1/sessions/%d/draw?bytes=48", info.ID), nil, &dr); code != http.StatusOK {
		t.Fatalf("draw status %d", code)
	}
	if len(dr.Key) != 96 { // hex of 48 bytes
		t.Fatalf("draw key %q", dr.Key)
	}
	if code := post("/v1/sessions/404/draw", nil, nil); code != http.StatusNotFound {
		t.Fatalf("draw on unknown session: status %d", code)
	}

	var cm ClusterMetrics
	if code := get("/v1/cluster", &cm); code != http.StatusOK || cm.WorkersAlive != 2 {
		t.Fatalf("cluster status %d, %+v", code, cm)
	}
	for _, wi := range cm.Workers {
		if wi.PID == 0 || wi.URL == "" {
			t.Fatalf("worker info incomplete: %+v", wi)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"thinaird_cluster_workers_alive 2",
		"thinaird_cluster_sessions 1",
		"thinaird_cluster_sessions_created_total 1",
	} {
		if !strings.Contains(string(prom), want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, prom)
		}
	}

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/sessions/%d", srv.URL, info.ID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if code := get(fmt.Sprintf("/v1/sessions/%d", info.ID), nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", code)
	}
}
