package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/keypool"
	"repro/internal/service"
)

// workerBehind digs the in-process Worker out of a recorded proc so
// tests can make things happen behind the coordinator's back.
func workerBehind(t *testing.T, p WorkerProc) *Worker {
	t.Helper()
	ip, ok := p.(*inprocProc)
	if !ok {
		t.Fatalf("proc %T is not in-process", p)
	}
	return ip.worker
}

// TestCoordinatorReconcileLostSession: a session that disappears on a
// live worker (closed or failed worker-side, behind the coordinator's
// back) is marked failed by the reconcile pass — not reassigned, since
// a deterministic failure would just recur.
func TestCoordinatorReconcileLostSession(t *testing.T) {
	rs := newRecordingSpawner()
	cfg := testConfig(rs.Spawn)
	cfg.Workers = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	ctx := context.Background()

	info, err := c.Create(fastSpec(88))
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c, info.ID, fastSpec(88).TargetDepth)

	// Kill the session worker-side only; the worker stays healthy.
	w := workerBehind(t, rs.current(0))
	if err := w.Close(info.ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "reconcile to mark the session failed", func() bool {
		si, err := c.Session(ctx, info.ID)
		return err == nil && si.State == sessionFailed
	})
	// The registry's verdict is "failed", never the closed shape a caller
	// could mistake for their own graceful close.
	if _, err := c.Draw(ctx, info.ID, 8); !errors.Is(err, service.ErrFailed) {
		t.Fatalf("draw from reconciled-away session: %v, want service.ErrFailed", err)
	}
	if _, err := c.Draw(ctx, info.ID, 8); errors.Is(err, keypool.ErrClosed) {
		t.Fatal("failed session still reports the graceful-close sentinel")
	}
	if m := c.Metrics(); m.Failed == 0 {
		t.Fatalf("failure not counted: %+v", m)
	}
	// Closing a failed session just drops the registry entry.
	if err := c.CloseSession(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Session(ctx, info.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("session still present after close: %v", err)
	}
}

// TestCoordinatorDrawDetectsLostSession: a draw that races ahead of the
// reconcile pass hits the worker's 404 and flips the registry entry to
// failed immediately.
func TestCoordinatorDrawDetectsLostSession(t *testing.T) {
	rs := newRecordingSpawner()
	cfg := testConfig(rs.Spawn)
	cfg.Workers = 1
	cfg.HeartbeatEvery = time.Hour // reconcile never runs; only Draw can notice
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	ctx := context.Background()

	info, err := c.Create(fastSpec(89))
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c, info.ID, fastSpec(89).TargetDepth)
	w := workerBehind(t, rs.current(0))
	if err := w.Close(info.ID); err != nil {
		t.Fatal(err)
	}
	// Inside the settling grace the miss is retryable — a draw racing a
	// just-landed assignment must not condemn the session.
	c.mu.Lock()
	c.sessions[info.ID].placedAt = time.Now()
	c.mu.Unlock()
	if _, err := c.Draw(ctx, info.ID, 8); !errors.Is(err, ErrOrphaned) {
		t.Fatalf("draw inside the settling grace: %v, want ErrOrphaned", err)
	}
	// Past the grace the worker's 404 is authoritative.
	c.mu.Lock()
	c.sessions[info.ID].placedAt = time.Now().Add(-3 * cfg.HeartbeatEvery)
	c.mu.Unlock()
	if _, err := c.Draw(ctx, info.ID, 8); !errors.Is(err, ErrNotFound) {
		t.Fatalf("draw past the settling grace: %v, want ErrNotFound", err)
	}
	si, err := c.Session(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if si.State != sessionFailed {
		t.Fatalf("session state %q after detected loss, want failed", si.State)
	}
}

// TestCoordinatorReconcileClosesStrays: a session a worker hosts but
// the registry doesn't place there (a close whose RPC never landed, or
// the survivor of a timed-out assign retried elsewhere) is closed by
// the reconcile pass so it can't bank key material off the books.
func TestCoordinatorReconcileClosesStrays(t *testing.T) {
	rs := newRecordingSpawner()
	cfg := testConfig(rs.Spawn)
	cfg.Workers = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())

	info, err := c.Create(fastSpec(90))
	if err != nil {
		t.Fatal(err)
	}
	// Plant a stray behind the coordinator's back.
	w := workerBehind(t, rs.current(0))
	const strayID = 9999
	if _, err := w.Assign(strayID, fastSpec(91)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "stray garbage collection", func() bool {
		_, err := w.Metrics(strayID)
		return errors.Is(err, ErrNotFound)
	})
	// The legitimate session is untouched.
	si, err := c.Session(context.Background(), info.ID)
	if err != nil || si.State != sessionAssigned {
		t.Fatalf("legitimate session after GC: %+v, %v", si, err)
	}
}

// TestCoordinatorRespawnFailureRetiresSlot: when replacing a dead
// worker keeps failing, the slot burns through its restart budget and
// retires without wedging the supervisor.
func TestCoordinatorRespawnFailureRetiresSlot(t *testing.T) {
	inner := InProcess(nil)
	fail := false
	spawn := func(ctx context.Context, opts WorkerSpawnOpts) (WorkerProc, error) {
		if fail {
			return nil, fmt.Errorf("induced spawn failure")
		}
		return inner(ctx, opts)
	}
	rs := &recordingSpawner{spawn: spawn, procs: make(map[int][]WorkerProc)}
	cfg := testConfig(rs.Spawn)
	cfg.Workers = 2
	cfg.MaxRestarts = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())

	fail = true // every respawn attempt now errors
	_ = rs.current(0).Kill()
	waitFor(t, 30*time.Second, "slot retirement after failed respawns", func() bool {
		m := c.Metrics()
		return m.Workers[0].Retired && m.Restarts >= int64(cfg.MaxRestarts)
	})
	if m := c.Metrics(); m.WorkersAlive != 1 {
		t.Fatalf("after retirement: %+v", m)
	}
}

// TestExecSpawnerMalformedReady: a worker that prints the ready prefix
// without a URL is rejected and reaped.
func TestExecSpawnerMalformedReady(t *testing.T) {
	if testing.Short() {
		t.Skip("process spawning skipped in -short")
	}
	dir := t.TempDir()
	script := filepath.Join(dir, "fake-worker")
	// `exec` so the kill reaches the sleep itself — an orphaned grandchild
	// would hold the test's stderr pipe open for its whole duration.
	if err := os.WriteFile(script, []byte("#!/bin/sh\necho "+ReadyPrefix+"\nexec sleep 30\n"), 0o755); err != nil {
		t.Fatal(err)
	}
	es := &ExecSpawner{Binary: script, Output: os.Stderr, ReadyTimeout: 5 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := es.Spawn(ctx, WorkerSpawnOpts{Slot: 0, Capacity: 1, DrainTimeout: time.Second}); err == nil {
		t.Fatal("malformed ready line accepted")
	}
}
