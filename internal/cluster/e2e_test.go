package cluster

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// The e2e harness boots the cluster tier the way an operator does: it
// builds cmd/thinaird with `go build`, starts one coordinator process
// (which itself spawns and supervises the worker processes), and drives
// everything over the public HTTP API. Nothing in-process: the
// coordinator, the workers, and every UDP bus live in their own OS
// processes, so these tests prove the tier across real process and
// socket boundaries. Skipped under -short like the UDP soak test; set
// THINAIR_SOAK=1 for the bigger CI variant.

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// buildThinaird compiles cmd/thinaird once per test binary run into a
// temp dir (Go's build cache makes repeats cheap).
func buildThinaird(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "thinaird-e2e-")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "thinaird")
		cmd := exec.Command("go", "build", "-o", buildBin, "repro/cmd/thinaird")
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	t.Cleanup(func() {}) // the temp dir is tiny; left to the OS tmp reaper
	return buildBin
}

// coordProc is one coordinator OS process under test.
type coordProc struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string // public API base URL
	exit chan error
}

// startCoordinator launches `thinaird coordinator` and waits for its
// ready line. Worker processes are spawned by the coordinator itself —
// the harness never touches them except to SIGKILL one by pid.
func startCoordinator(t *testing.T, bin string, extra ...string) *coordProc {
	t.Helper()
	args := append([]string{
		"coordinator",
		"-addr", "127.0.0.1:0",
		"-heartbeat", "100ms",
		"-heartbeat-misses", "3",
		"-respawn-backoff", "100ms",
		"-drain", "30s",
	}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	cp := &coordProc{t: t, cmd: cmd, exit: make(chan error, 1)}
	go func() { cp.exit <- cmd.Wait() }()
	go logLines(t, "coordinator[stderr]", stderr)

	readyc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "THINAIRD_COORDINATOR_READY"); ok {
				readyc <- strings.TrimPrefix(strings.TrimSpace(rest), "url=")
			}
			t.Logf("coordinator: %s", line)
		}
	}()
	select {
	case url := <-readyc:
		cp.base = url
	case err := <-cp.exit:
		t.Fatalf("coordinator exited before ready: %v", err)
	case <-time.After(60 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatal("coordinator never became ready")
	}
	t.Cleanup(func() {
		if cp.cmd.ProcessState == nil {
			_ = cp.cmd.Process.Kill()
			<-cp.exit
		}
	})
	return cp
}

func logLines(t *testing.T, label string, r io.Reader) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		t.Logf("%s: %s", label, sc.Text())
	}
}

func (cp *coordProc) getJSON(path string, out any) int {
	cp.t.Helper()
	resp, err := http.Get(cp.base + path)
	if err != nil {
		cp.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func (cp *coordProc) postJSON(path string, body, out any) int {
	cp.t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			cp.t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	resp, err := http.Post(cp.base+path, "application/json", rd)
	if err != nil {
		cp.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func (cp *coordProc) create(t *testing.T, spec service.SessionSpec) SessionInfo {
	t.Helper()
	var info SessionInfo
	if code := cp.postJSON("/v1/sessions", spec, &info); code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	return info
}

// draw fetches n key bytes, tolerating the retryable statuses (409 while
// the refresher catches up, 503 while a reassignment is in flight).
func (cp *coordProc) draw(t *testing.T, cid uint64, n int, within time.Duration) []byte {
	t.Helper()
	var key []byte
	waitFor(t, within, fmt.Sprintf("draw from session %d", cid), func() bool {
		var dr drawResponse
		code := cp.postJSON(fmt.Sprintf("/v1/sessions/%d/draw?bytes=%d", cid, n), nil, &dr)
		if code != http.StatusOK {
			return false
		}
		raw, err := hex.DecodeString(dr.Key)
		if err != nil || len(raw) != n {
			t.Fatalf("draw returned %q (%v)", dr.Key, err)
		}
		key = raw
		return true
	})
	return key
}

func (cp *coordProc) cluster(t *testing.T) ClusterMetrics {
	t.Helper()
	var cm ClusterMetrics
	if code := cp.getJSON("/v1/cluster", &cm); code != http.StatusOK {
		t.Fatalf("cluster metrics: status %d", code)
	}
	return cm
}

func (cp *coordProc) waitAllConverged(t *testing.T, ids []uint64, target int, within time.Duration) {
	t.Helper()
	waitFor(t, within, "all sessions converged", func() bool {
		var list []SessionInfo
		if cp.getJSON("/v1/sessions", &list) != http.StatusOK {
			return false
		}
		ready := make(map[uint64]bool)
		for _, si := range list {
			if si.State == sessionAssigned && si.Metrics != nil && si.Metrics.Pool.Available >= target {
				ready[si.ID] = true
			}
		}
		for _, id := range ids {
			if !ready[id] {
				return false
			}
		}
		return true
	})
}

// shutdownAndCheckOrphans SIGTERMs the coordinator, waits for a clean
// exit, and asserts every worker process ever seen is gone.
func (cp *coordProc) shutdownAndCheckOrphans(t *testing.T, workerPIDs map[int]bool) {
	t.Helper()
	if err := cp.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-cp.exit:
		if err != nil {
			t.Fatalf("coordinator exit: %v", err)
		}
	case <-time.After(90 * time.Second):
		_ = cp.cmd.Process.Kill()
		t.Fatal("coordinator did not exit after SIGTERM")
	}
	// Workers are children of the coordinator; with it gone cleanly, no
	// worker process may remain.
	for pid := range workerPIDs {
		waitFor(t, 10*time.Second, fmt.Sprintf("worker pid %d to disappear", pid), func() bool {
			err := syscall.Kill(pid, 0)
			return errors.Is(err, syscall.ESRCH)
		})
	}
}

// collectWorkerPIDs records every pid the cluster has exposed (restarts
// produce new ones; all must be gone at teardown).
func collectWorkerPIDs(cm ClusterMetrics, into map[int]bool) {
	for _, wi := range cm.Workers {
		if wi.PID != 0 {
			into[wi.PID] = true
		}
	}
}

// TestClusterE2EProcesses is the acceptance harness: 1 coordinator + 3
// worker OS processes, >= 16 sessions converging over real UDP sockets,
// key draws routed across the process boundary, the same-seed pair on
// two different worker processes producing identical key streams, one
// worker SIGKILLed mid-round with full recovery, and a graceful
// SIGTERM teardown leaving zero orphan processes.
func TestClusterE2EProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level e2e skipped in -short")
	}
	sessions := 16
	if os.Getenv("THINAIR_SOAK") != "" {
		sessions = 24
	}
	bin := buildThinaird(t)
	cp := startCoordinator(t, bin, "-workers", "3", "-worker-capacity", "12")
	pids := make(map[int]bool)
	collectWorkerPIDs(cp.cluster(t), pids)
	if cm := cp.cluster(t); cm.WorkersAlive != 3 {
		t.Fatalf("workers alive = %d, want 3", cm.WorkersAlive)
	}

	// Session 0 and 1 are the determinism probe: identical spec + seed.
	// Least-loaded placement puts consecutive creates on different
	// workers, so the pair spans two OS processes.
	spec := fastSpec(987654)
	var ids []uint64
	var infos []SessionInfo
	for i := 0; i < sessions; i++ {
		sp := spec
		sp.Name = sessionName(i)
		if i > 1 {
			sp.Seed = int64(9000 + i*31)
		}
		info := cp.create(t, sp)
		ids = append(ids, info.ID)
		infos = append(infos, info)
	}
	if infos[0].Worker == infos[1].Worker {
		t.Fatalf("determinism probe pair landed on one worker (%d)", infos[0].Worker)
	}

	cp.waitAllConverged(t, ids, spec.TargetDepth, 180*time.Second)

	// Same seed, same key stream — across two worker processes.
	ka := cp.draw(t, ids[0], 64, 30*time.Second)
	kb := cp.draw(t, ids[1], 64, 30*time.Second)
	if !bytes.Equal(ka, kb) {
		t.Fatal("same spec and seed on different worker processes produced different key streams")
	}
	// Every session serves draws through the coordinator.
	for _, id := range ids[2:] {
		cp.draw(t, id, 32, 30*time.Second)
	}

	// Chaos: SIGKILL the worker owning the probe session, mid-round (the
	// draws above pushed pools toward the watermark, so refreshers are
	// running protocol rounds).
	victimSlot := infos[0].Worker
	var victimPID int
	for _, wi := range cp.cluster(t).Workers {
		if wi.Slot == victimSlot {
			victimPID = wi.PID
		}
	}
	if victimPID == 0 {
		t.Fatalf("no pid for slot %d", victimSlot)
	}
	if err := syscall.Kill(victimPID, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	// The coordinator must replace the worker and reassign its sessions;
	// draws must succeed again from every session.
	waitFor(t, 120*time.Second, "worker respawn + session reassignment", func() bool {
		cm := cp.cluster(t)
		collectWorkerPIDs(cm, pids)
		if cm.WorkersAlive != 3 || cm.Reassigned == 0 {
			return false
		}
		var list []SessionInfo
		if cp.getJSON("/v1/sessions", &list) != http.StatusOK {
			return false
		}
		assigned := 0
		for _, si := range list {
			if si.State == sessionAssigned {
				assigned++
			}
		}
		return assigned == len(ids)
	})
	for _, id := range ids {
		cp.draw(t, id, 32, 120*time.Second)
	}
	cm := cp.cluster(t)
	if cm.Restarts == 0 {
		t.Fatalf("no worker restart recorded after SIGKILL: %+v", cm)
	}
	collectWorkerPIDs(cm, pids)
	if len(pids) < 4 {
		t.Fatalf("expected a fresh worker pid after the kill, saw %v", pids)
	}

	// Fleet observability after chaos: /v1/cluster/metrics merges every
	// live worker's registry, and the coordinator runs no engine rounds
	// itself — so the fleet total must equal the sum of direct per-worker
	// scrapes. Background refreshers advance the counts between reads, so
	// retry until one pass brackets the fleet scrape with two identical
	// worker sums.
	const roundsFamily = "thinaird_engine_round_seconds"
	scrapeWorkers := func() (float64, bool) {
		var sum float64
		for _, wi := range cp.cluster(t).Workers {
			if !wi.Alive {
				continue
			}
			resp, err := http.Get(wi.URL + "/ctl/metrics")
			if err != nil {
				return 0, false
			}
			var snap obs.Snapshot
			err = json.NewDecoder(resp.Body).Decode(&snap)
			resp.Body.Close()
			if err != nil {
				return 0, false
			}
			sum += snap.Total(roundsFamily)
		}
		return sum, true
	}
	var fleet obs.Snapshot
	waitFor(t, 60*time.Second, "fleet metrics to equal the worker sum", func() bool {
		before, ok := scrapeWorkers()
		if !ok || before == 0 {
			return false
		}
		fleet = obs.Snapshot{}
		if cp.getJSON("/v1/cluster/metrics", &fleet) != http.StatusOK {
			return false
		}
		after, ok := scrapeWorkers()
		return ok && after == before && fleet.Total(roundsFamily) == before
	})
	rf := fleet.Family(roundsFamily)
	if rf == nil || len(rf.Series) == 0 || rf.Series[0].Hist == nil {
		t.Fatalf("fleet view lacks the merged %s histogram", roundsFamily)
	}
	if h := rf.Series[0].Hist; h.Count == 0 || h.P99 <= 0 {
		t.Fatalf("merged fleet histogram missing quantiles: count=%d p99=%g", h.Count, h.P99)
	}

	cp.shutdownAndCheckOrphans(t, pids)
}

// TestClusterE2EGracefulDrain boots a smaller tier, verifies draws stop
// with 410 Gone after a tier-wide drain (pools zeroized everywhere, not
// just locally), and checks orphan-freedom on the happy path too.
func TestClusterE2EGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level e2e skipped in -short")
	}
	bin := buildThinaird(t)
	cp := startCoordinator(t, bin, "-workers", "2", "-worker-capacity", "4")
	pids := make(map[int]bool)
	collectWorkerPIDs(cp.cluster(t), pids)

	spec := fastSpec(13131)
	info := cp.create(t, spec)
	cp.waitAllConverged(t, []uint64{info.ID}, spec.TargetDepth, 120*time.Second)
	cp.draw(t, info.ID, 48, 30*time.Second)

	cp.shutdownAndCheckOrphans(t, pids)
}
