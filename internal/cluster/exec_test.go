package cluster

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"
)

// TestExecSpawnerRoundTrip drives ExecSpawner directly from inside the
// test process: spawn a real `thinaird worker`, wait for its ready
// line, talk RPC to it, stop one gracefully and kill another. This is
// the process-management layer the e2e harness relies on, exercised
// where the coverage profile can see it. Skipped under -short (it
// builds the binary).
func TestExecSpawnerRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("process spawning skipped in -short")
	}
	bin := buildThinaird(t)
	es := &ExecSpawner{Binary: bin, Output: io.Discard}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	opts := WorkerSpawnOpts{Slot: 0, Capacity: 2, DrainTimeout: 5 * time.Second}
	p, err := es.Spawn(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.URL() == "" || p.PID() == 0 {
		t.Fatalf("proc = url %q pid %d", p.URL(), p.PID())
	}
	select {
	case <-p.Done():
		t.Fatal("worker exited immediately")
	default:
	}
	cl := NewWorkerClient(p.URL())
	if err := cl.Health(ctx); err != nil {
		t.Fatalf("health over exec boundary: %v", err)
	}
	if _, err := cl.Assign(ctx, 1, fastSpec(1)); err != nil {
		t.Fatal(err)
	}
	// Drain over RPC: the supervised worker exits on its own; Stop just
	// reaps it.
	if err := cl.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-p.Done():
	default:
		t.Fatal("Done not closed after Stop")
	}
	if err := cl.Health(ctx); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("health after stop: %v, want ErrUnreachable", err)
	}

	// Second worker: hard kill.
	p2, err := es.Spawn(ctx, WorkerSpawnOpts{Slot: 1, Capacity: 1, DrainTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Kill(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-p2.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("killed worker never reaped")
	}

	// Spawning a nonexistent binary fails cleanly.
	bad := &ExecSpawner{Binary: "/nonexistent/thinaird", Output: io.Discard}
	if _, err := bad.Spawn(ctx, opts); err == nil {
		t.Fatal("spawn of a nonexistent binary succeeded")
	}
	// A binary that never prints the ready line times out and is reaped.
	slow := &ExecSpawner{Binary: "/bin/sleep", Args: nil, Output: io.Discard, ReadyTimeout: 300 * time.Millisecond}
	if _, err := slow.Spawn(ctx, WorkerSpawnOpts{Slot: 2, Capacity: 1, DrainTimeout: time.Second}); err == nil {
		t.Fatal("spawn without ready line succeeded")
	}
}
