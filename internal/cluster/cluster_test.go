package cluster

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/service"
)

// fastSpec is a small, quick session in the paper's operating regime.
// UDP stays false here: Worker.Assign takes specs as-is, and the
// RPC-level tests don't need sockets (the coordinator forces UDP on the
// specs it places; the coordinator and e2e tests exercise that path).
func fastSpec(seed int64) service.SessionSpec {
	return service.SessionSpec{
		Terminals:    3,
		Erasure:      0.45,
		XPerRound:    48,
		PayloadBytes: 16,
		Rounds:       1,
		Rotate:       true,
		Seed:         seed,
		LowWater:     192,
		TargetDepth:  384,
		Timeout:      20 * time.Second,
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitForGoroutines asserts the goroutine count returns to (near) the
// pre-test baseline — the coordinator, its supervisors, every in-process
// worker and every session must be gone.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

func sessionName(i int) string { return fmt.Sprintf("grp-%d", i) }
