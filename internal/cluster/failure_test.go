package cluster

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/keypool"
	"repro/internal/service"
)

// hungSpawner wraps InProcess but hides process exits from the
// coordinator: Done never fires, so the only way the supervisor can
// notice a dead worker is consecutive heartbeat failures — the path a
// wedged (not crashed) process takes.
type hungSpawner struct {
	inner SpawnFunc
	procs chan WorkerProc
}

func newHungSpawner() *hungSpawner {
	return &hungSpawner{inner: InProcess(nil), procs: make(chan WorkerProc, 16)}
}

type hiddenExitProc struct{ WorkerProc }

func (p hiddenExitProc) Done() <-chan struct{} { return make(chan struct{}) }

func (hs *hungSpawner) Spawn(ctx context.Context, opts WorkerSpawnOpts) (WorkerProc, error) {
	p, err := hs.inner(ctx, opts)
	if err != nil {
		return nil, err
	}
	hs.procs <- p
	return hiddenExitProc{p}, nil
}

// TestCoordinatorHeartbeatDetection: a worker that stops answering RPC
// without visibly exiting must be declared dead after the configured
// miss count and its sessions reassigned.
func TestCoordinatorHeartbeatDetection(t *testing.T) {
	hs := newHungSpawner()
	cfg := testConfig(hs.Spawn)
	cfg.Workers = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	ctx := context.Background()

	info, err := c.Create(fastSpec(55))
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c, info.ID, fastSpec(55).TargetDepth)

	// Kill the underlying worker; Done stays open, so only heartbeats can
	// notice.
	var victim WorkerProc
	for i := 0; i < cap(hs.procs); i++ {
		select {
		case p := <-hs.procs:
			if p.URL() == c.Metrics().Workers[info.Worker].URL {
				victim = p
			}
		default:
		}
	}
	if victim == nil {
		t.Fatal("victim proc not captured")
	}
	_ = victim.Kill()

	waitFor(t, 60*time.Second, "heartbeat-driven reassignment", func() bool {
		si, err := c.Session(ctx, info.ID)
		return err == nil && si.State == sessionAssigned && si.Reassigns > 0
	})
	waitFor(t, 60*time.Second, "post-detection draw", func() bool {
		_, err := c.Draw(ctx, info.ID, 16)
		return err == nil
	})
}

// TestCoordinatorSlotRetirement: a slot that keeps dying past its
// restart budget is retired; the tier keeps serving on survivors.
func TestCoordinatorSlotRetirement(t *testing.T) {
	rs := newRecordingSpawner()
	cfg := testConfig(rs.Spawn)
	cfg.Workers = 2
	cfg.WorkerCapacity = 8
	cfg.MaxRestarts = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())

	// Kill slot 0's worker twice: one respawn allowed, then retirement.
	for gen := 0; gen < 2; gen++ {
		proc := rs.current(0)
		_ = proc.Kill()
		waitFor(t, 30*time.Second, "death handling", func() bool {
			m := c.Metrics()
			if gen == 0 {
				return m.Workers[0].Alive && m.Workers[0].Restarts == 1
			}
			return m.Workers[0].Retired
		})
	}
	m := c.Metrics()
	if !m.Workers[0].Retired || m.WorkersAlive != 1 {
		t.Fatalf("after budget exhaustion: %+v", m.Workers)
	}
	// The tier still serves on the surviving slot.
	info, err := c.Create(fastSpec(66))
	if err != nil {
		t.Fatal(err)
	}
	if info.Worker != 1 {
		t.Fatalf("session placed on retired slot: %+v", info)
	}
}

// TestCoordinatorDrawFailureStates: draws against orphaned, failed and
// unknown sessions map to the typed errors the HTTP layer turns into
// 503 / 410 / 404.
func TestCoordinatorDrawFailureStates(t *testing.T) {
	c, err := New(testConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	ctx := context.Background()

	if _, err := c.Draw(ctx, 999, 8); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown session: %v, want ErrNotFound", err)
	}

	info, err := c.Create(fastSpec(77))
	if err != nil {
		t.Fatal(err)
	}
	// Force the registry states directly: the transitions themselves are
	// covered by the chaos tests; here only the draw mapping is probed.
	c.mu.Lock()
	cs := c.sessions[info.ID]
	cs.state = sessionOrphaned
	cs.worker = -1
	c.mu.Unlock()
	if _, err := c.Draw(ctx, info.ID, 8); !errors.Is(err, ErrOrphaned) {
		t.Fatalf("orphaned session: %v, want ErrOrphaned", err)
	}
	c.mu.Lock()
	cs.state = sessionFailed
	c.mu.Unlock()
	if _, err := c.Draw(ctx, info.ID, 8); !errors.Is(err, service.ErrFailed) {
		t.Fatalf("failed session: %v, want service.ErrFailed", err)
	}
	// Failed must stay distinct from graceful close on the typed-error
	// level too — that distinction is the whole point of the code.
	if _, err := c.Draw(ctx, info.ID, 8); errors.Is(err, keypool.ErrClosed) {
		t.Fatalf("failed session classified as closed: %v", err)
	}
}

// TestCoordinatorCreateInvalidSpec: a spec every worker would reject is
// not retried around the fleet and leaves no registry entry behind.
func TestCoordinatorCreateInvalidSpec(t *testing.T) {
	c, err := New(testConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())

	bad := fastSpec(1)
	bad.Erasure = 2.0
	if _, err := c.Create(bad); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if n := len(c.Sessions(context.Background())); n != 0 {
		t.Fatalf("registry holds %d sessions after failed create", n)
	}
}

// TestConfigDefaults: the zero Config comes up with workable defaults
// (in-process workers included) and shuts down cleanly.
func TestConfigDefaults(t *testing.T) {
	c, err := New(Config{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.WorkersAlive != 2 {
		t.Fatalf("default tier: %+v", m)
	}
	if c.Uptime() <= 0 {
		t.Fatal("uptime not running")
	}
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	if err := c.Shutdown(sctx); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestRPCErrorMapping pins the full wire error-code table, including
// codes only minted by the coordinator-facing surface.
func TestRPCErrorMapping(t *testing.T) {
	cases := []struct {
		code string
		want error
	}{
		{codeDraining, ErrDraining},
		{codeDuplicate, ErrDuplicate},
		{codeNotFound, ErrNotFound},
		{codeOrphaned, ErrOrphaned},
		{codeShutdown, ErrShutdown},
		{codeClosed, keypool.ErrClosed},
		{codeFailed, service.ErrFailed},
		{codeExhausted, keypool.ErrExhausted},
	}
	for _, tc := range cases {
		if err := rpcError(400, errorBody{Error: httpapi.ErrorDetail{Code: tc.code, Message: "x"}}); !errors.Is(err, tc.want) {
			t.Fatalf("code %q mapped to %v, want %v", tc.code, err, tc.want)
		}
	}
	if err := rpcError(500, errorBody{}); err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("unknown code: %v", err)
	}
}

// TestCoordinatorHTTPErrorPaths: malformed ids and bodies come back as
// 400s, unknown sessions as 404s.
func TestCoordinatorHTTPErrorPaths(t *testing.T) {
	cfg := testConfig(nil)
	cfg.Workers = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{http.MethodGet, "/v1/sessions/xyz", "", http.StatusBadRequest},
		{http.MethodPost, "/v1/sessions/1/draw?bytes=0", "", http.StatusBadRequest},
		{http.MethodPost, "/v1/sessions", "{not json", http.StatusBadRequest},
		{http.MethodGet, "/v1/sessions/12345", "", http.StatusNotFound},
		{http.MethodDelete, "/v1/sessions/12345", "", http.StatusNotFound},
		{http.MethodPost, "/v1/sessions/12345/draw", "", http.StatusNotFound},
	} {
		req, _ := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}
