// Package cluster is the multi-process tier over internal/service: one
// coordinator process owns the session registry and the public HTTP API,
// and a fleet of worker processes — spawned and supervised by the
// coordinator — each run a bounded set of group sessions over UDPBus on
// real sockets instead of goroutine-local buses.
//
// The split follows the gate/room shape of clustered game servers: the
// coordinator is the gate (admission, placement, draw routing) and each
// worker is a room host (protocol rounds, key pools). The registry of
// session specs lives on the coordinator, not the workers, so losing a
// worker process loses only in-flight pool contents: the coordinator
// reassigns the dead worker's sessions to survivors, where the
// deterministic seed re-derives the same key stream from round zero.
//
// Control plane (coordinator -> worker) is a small RPC surface over
// loopback HTTP, mounted under /ctl/ next to the worker's ordinary
// service handler:
//
//	GET    /ctl/healthz                heartbeat probe
//	GET    /ctl/stats                  worker + per-session snapshot
//	POST   /ctl/assign                 place a cluster session (id + spec)
//	POST   /ctl/drain                  drain every session, zeroize pools
//	GET    /ctl/sessions/{cid}         one session's metrics
//	DELETE /ctl/sessions/{cid}         close one session
//	POST   /ctl/sessions/{cid}/draw    draw key material
//	GET    /ctl/sessions/{cid}/stream  bulk key material (?offset=&len=)
//
// cmd/thinaird exposes both halves as the `coordinator` and `worker`
// subcommands; ExecSpawner wires them together as real OS processes and
// InProcess hosts workers inside the coordinator process for tests and
// demos.
package cluster

import (
	"errors"
	"net/http"
	"strconv"

	"repro/internal/httpapi"
	"repro/internal/keypool"
	"repro/internal/service"
)

// Control-RPC error conditions, surfaced as typed errors by WorkerClient
// so the coordinator's placement logic can tell them apart.
var (
	// ErrUnreachable wraps transport-level failures talking to a worker
	// (dead process, closed socket, connection refused).
	ErrUnreachable = errors.New("cluster: worker unreachable")
	// ErrDraining rejects assignments to a worker that has begun its
	// graceful drain.
	ErrDraining = errors.New("cluster: worker draining")
	// ErrDuplicate rejects assigning a cluster session id a worker
	// already hosts.
	ErrDuplicate = errors.New("cluster: session already assigned")
	// ErrNotFound is returned when addressing an unknown cluster session.
	ErrNotFound = errors.New("cluster: no such session")
	// ErrNoWorkers is returned by Create/reassignment when no live worker
	// has capacity left.
	ErrNoWorkers = errors.New("cluster: no live worker with capacity")
	// ErrShutdown is returned after coordinator shutdown has begun.
	ErrShutdown = errors.New("cluster: shutting down")
	// ErrOrphaned is returned for operations on a session that lost its
	// worker and has not been placed again yet — retryable.
	ErrOrphaned = errors.New("cluster: session awaiting reassignment")
)

// assignRequest is the wire body of POST /ctl/assign.
type assignRequest struct {
	ID   uint64              `json:"id"`
	Spec service.SessionSpec `json:"spec"`
}

// drawResponse is the wire body of a successful draw (both tiers use the
// same shape as the single-process service API).
type drawResponse struct {
	Session uint64 `json:"session"`
	Bytes   int    `json:"bytes"`
	Key     string `json:"key"`
}

// errorBody is the shared wire error envelope
// ({"error":{"code","message"}}); the code slugs live in httpapi so the
// daemon, coordinator, worker /ctl and gate surfaces share one set.
type errorBody = httpapi.ErrorBody

const (
	codeDraining  = httpapi.CodeDraining
	codeDuplicate = httpapi.CodeDuplicate
	codeSaturated = httpapi.CodeSaturated
	codeExhausted = httpapi.CodeExhausted
	codeClosed    = httpapi.CodeClosed
	codeFailed    = httpapi.CodeFailed
	codeOrphaned  = httpapi.CodeOrphaned
	codeNotFound  = httpapi.CodeNotFound
	codeShutdown  = httpapi.CodeShutdown
)

// The wire helpers are shared with the single-process service API
// (internal/httpapi) so the two tiers' envelopes cannot diverge.
var (
	writeJSON   = httpapi.WriteJSON
	httpError   = httpapi.Error
	drawBytes   = httpapi.DrawBytes
	streamRange = httpapi.StreamRange
)

// sessionIDFromPath parses the {id} path value both tiers use to
// address cluster sessions.
func sessionIDFromPath(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	cid, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "", err)
		return 0, false
	}
	return cid, true
}

// writeDrawError maps a draw failure to its HTTP status — shared by the
// worker control RPC and the coordinator's public API so the mapping
// cannot diverge between tiers.
func writeDrawError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNotFound):
		httpError(w, http.StatusNotFound, codeNotFound, err)
	case errors.Is(err, ErrOrphaned):
		// The owner died moments ago; reassignment is in flight.
		httpError(w, http.StatusServiceUnavailable, codeOrphaned, err)
	case errors.Is(err, ErrUnreachable):
		httpError(w, http.StatusBadGateway, httpapi.CodeUnreachable, err)
	case errors.Is(err, service.ErrFailed):
		// Permanent session death — distinct from a caller-initiated
		// close, checked before ErrClosed because failed errors may wrap
		// the zeroized pool's sentinel too.
		httpError(w, http.StatusGone, codeFailed, err)
	case errors.Is(err, keypool.ErrClosed):
		httpError(w, http.StatusGone, codeClosed, err)
	default:
		// Exhausted: the background refresher is behind; the client
		// retries after the pool recovers.
		httpError(w, http.StatusConflict, codeExhausted, err)
	}
}
