package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/service"
)

// The coordinator's registry persistence: an append-only JSONL journal
// plus a periodic snapshot, both under Config.StateDir. Every registry
// transition (create, place, close, fail, worker spawn/death/retire)
// appends one fsynced record; every snapshotEvery records the snapshot
// is rewritten and the journal truncated. A restarted coordinator
// replays snapshot+journal, probes the recorded worker URLs, re-adopts
// the live sessions still hosted there (same process, same keystream —
// adopted sessions serve byte-identical ranges), and re-places only
// what actually died with the crash.

// Journal record ops. The record set is deliberately small: everything
// needed to rebuild the registry, nothing derivable from it.
const (
	jopCreate = "create" // session admitted: ID, Spec (carries the seed)
	jopPlace  = "place"  // session assigned: ID, Slot, Reassign
	jopClose  = "close"  // session left the registry: ID
	jopFail   = "fail"   // session died permanently: ID
	jopDown   = "down"   // worker died: Slot (its sessions orphan at replay)
	jopWorker = "worker" // worker (re)spawned or adopted: Slot, URL, PID
	jopRetire = "retire" // worker slot retired: Slot
)

// journalRecord is one JSONL line. Slot is never omitempty — slot 0 is
// a valid worker.
type journalRecord struct {
	Op       string               `json:"op"`
	ID       uint64               `json:"id,omitempty"`
	Spec     *service.SessionSpec `json:"spec,omitempty"`
	Slot     int                  `json:"slot"`
	Reassign bool                 `json:"reassign,omitempty"`
	URL      string               `json:"url,omitempty"`
	PID      int                  `json:"pid,omitempty"`
	Epoch    uint64               `json:"epoch"`
}

// persistedSession is one registry entry in the snapshot.
type persistedSession struct {
	ID        uint64              `json:"id"`
	Spec      service.SessionSpec `json:"spec"`
	Worker    int                 `json:"worker"`
	State     string              `json:"state"`
	Reassigns int                 `json:"reassigns"`
}

// persistedWorker is one worker slot in the snapshot.
type persistedWorker struct {
	Slot    int    `json:"slot"`
	URL     string `json:"url"`
	PID     int    `json:"pid"`
	Alive   bool   `json:"alive"`
	Retired bool   `json:"retired"`
}

// persistState is the snapshot file's whole content.
type persistState struct {
	NextID   uint64             `json:"next_id"`
	Epoch    uint64             `json:"epoch"`
	Sessions []persistedSession `json:"sessions"`
	Workers  []persistedWorker  `json:"workers"`
}

// recoveredState is the replayed view a restarting coordinator adopts
// from: snapshot plus every journal record applied on top.
type recoveredState struct {
	nextID   uint64
	epoch    uint64
	sessions map[uint64]*persistedSession
	workers  map[int]*persistedWorker
}

func newRecoveredState() *recoveredState {
	return &recoveredState{
		nextID:   1,
		sessions: make(map[uint64]*persistedSession),
		workers:  make(map[int]*persistedWorker),
	}
}

// load seeds the replay state from a snapshot.
func (rs *recoveredState) load(ps persistState) {
	if ps.NextID > rs.nextID {
		rs.nextID = ps.NextID
	}
	if ps.Epoch > rs.epoch {
		rs.epoch = ps.Epoch
	}
	for i := range ps.Sessions {
		s := ps.Sessions[i]
		rs.sessions[s.ID] = &s
	}
	for i := range ps.Workers {
		w := ps.Workers[i]
		rs.workers[w.Slot] = &w
	}
}

// apply replays one journal record on top of the snapshot state.
func (rs *recoveredState) apply(rec journalRecord) {
	if rec.Epoch > rs.epoch {
		rs.epoch = rec.Epoch
	}
	switch rec.Op {
	case jopCreate:
		if rec.Spec == nil {
			return
		}
		rs.sessions[rec.ID] = &persistedSession{
			ID: rec.ID, Spec: *rec.Spec, Worker: -1, State: sessionPlacing,
		}
		if rec.ID >= rs.nextID {
			rs.nextID = rec.ID + 1
		}
	case jopPlace:
		if s := rs.sessions[rec.ID]; s != nil {
			s.Worker = rec.Slot
			s.State = sessionAssigned
			if rec.Reassign {
				s.Reassigns++
			}
		}
	case jopClose:
		delete(rs.sessions, rec.ID)
	case jopFail:
		if s := rs.sessions[rec.ID]; s != nil {
			s.State = sessionFailed
			s.Worker = -1
		}
	case jopDown:
		if w := rs.workers[rec.Slot]; w != nil {
			w.Alive = false
		}
		for _, s := range rs.sessions {
			if s.Worker == rec.Slot && s.State == sessionAssigned {
				s.Worker = -1
				s.State = sessionOrphaned
			}
		}
	case jopWorker:
		rs.workers[rec.Slot] = &persistedWorker{
			Slot: rec.Slot, URL: rec.URL, PID: rec.PID, Alive: true,
		}
	case jopRetire:
		if w := rs.workers[rec.Slot]; w != nil {
			w.Alive = false
			w.Retired = true
		}
	}
}

// snapshotEvery is how many journal appends trigger a compaction.
// Registry transitions are rare (creates, closes, worker deaths), so a
// small threshold keeps replay short without measurable write cost.
const snapshotEvery = 64

// journal owns the two state files. Appends fsync before returning:
// once a registry transition is acknowledged anywhere, a crash must not
// unrecord it.
type journal struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	appends int
}

func (j *journal) journalPath() string  { return filepath.Join(j.dir, "journal.jsonl") }
func (j *journal) snapshotPath() string { return filepath.Join(j.dir, "snapshot.json") }

// openJournal opens (creating if needed) the state dir, replays
// snapshot+journal, and leaves the journal open for appending. The
// returned state is nil on a fresh dir — nothing to recover.
func openJournal(dir string) (*journal, *recoveredState, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, nil, err
	}
	j := &journal{dir: dir}
	rs := newRecoveredState()
	found := false

	if raw, err := os.ReadFile(j.snapshotPath()); err == nil {
		var ps persistState
		if err := json.Unmarshal(raw, &ps); err != nil {
			return nil, nil, fmt.Errorf("corrupt snapshot %s: %w", j.snapshotPath(), err)
		}
		rs.load(ps)
		found = true
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}

	if f, err := os.Open(j.journalPath()); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec journalRecord
			if json.Unmarshal(line, &rec) != nil {
				// A torn final line is the expected shape of a crash that
				// interrupted an append; everything before it is intact.
				break
			}
			rs.apply(rec)
			found = true
		}
		f.Close()
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}

	f, err := os.OpenFile(j.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, nil, err
	}
	j.f = f
	if !found {
		return j, nil, nil
	}
	return j, rs, nil
}

// append writes one fsynced record and reports whether a compaction is
// due. Errors are swallowed after the first log-worthy failure shape:
// the journal is an availability feature, and a full disk must degrade
// recovery fidelity, not take the live control plane down.
func (j *journal) append(rec journalRecord) bool {
	raw, err := json.Marshal(rec)
	if err != nil {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return false
	}
	if _, err := j.f.Write(append(raw, '\n')); err != nil {
		return false
	}
	_ = j.f.Sync()
	j.appends++
	return j.appends >= snapshotEvery
}

// compact atomically replaces the snapshot with state and truncates the
// journal. Crash-ordering: the snapshot rename lands (fsynced) before
// the journal is cut, so at every instant snapshot+journal replays to a
// state at least as new as the last acknowledged append.
func (j *journal) compact(state persistState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	raw, err := json.MarshalIndent(state, "", "  ")
	if err != nil {
		return
	}
	tmp := j.snapshotPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	_ = f.Sync()
	f.Close()
	if err := os.Rename(tmp, j.snapshotPath()); err != nil {
		os.Remove(tmp)
		return
	}
	if d, err := os.Open(j.dir); err == nil {
		_ = d.Sync() // make the rename itself durable
		d.Close()
	}
	nf, err := os.OpenFile(j.journalPath(), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return
	}
	j.f.Close()
	j.f = nf
	j.appends = 0
}

// close releases the journal file. Appends after close are dropped.
func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// adoptProbeTimeout bounds the per-worker liveness probe during
// recovery: a dead worker's URL must not stall the whole restart.
const adoptProbeTimeout = 2 * time.Second

// adoptedProc is a worker the restarted coordinator re-adopted: a live
// process it did not spawn and holds no Wait handle for. Done never
// fires — death is detected by heartbeat probes, the same way a spawned
// worker that wedged without exiting is. Stop and Kill signal by pid,
// best-effort, and never signal the coordinator's own process (a worker
// adopted in-process in tests reports the host pid).
type adoptedProc struct {
	url  string
	pid  int
	done chan struct{}
}

func newAdoptedProc(url string, pid int) *adoptedProc {
	return &adoptedProc{url: url, pid: pid, done: make(chan struct{})}
}

func (p *adoptedProc) URL() string           { return p.url }
func (p *adoptedProc) PID() int              { return p.pid }
func (p *adoptedProc) Done() <-chan struct{} { return p.done }

func (p *adoptedProc) signal(sig os.Signal) {
	if p.pid <= 0 || p.pid == os.Getpid() {
		return
	}
	if proc, err := os.FindProcess(p.pid); err == nil {
		_ = proc.Signal(sig)
	}
}

// reachable probes the worker's control surface; any HTTP answer counts
// (a drained worker between Drain and exit still responds).
func (p *adoptedProc) reachable() bool {
	cl := &http.Client{Timeout: 500 * time.Millisecond}
	resp, err := cl.Get(p.url + "/ctl/healthz")
	if err != nil {
		return false
	}
	resp.Body.Close()
	return true
}

// Stop asks the adopted worker to exit and polls its control surface
// until it stops answering — there is no child handle to wait on. The
// coordinator drains workers over RPC before calling Stop, and a
// supervised worker exits on its own once drained, so the poll normally
// ends quickly.
func (p *adoptedProc) Stop(ctx context.Context) error {
	p.signal(syscall.SIGTERM)
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		if !p.reachable() {
			return nil
		}
		select {
		case <-ctx.Done():
			p.signal(os.Kill)
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Kill terminates the adopted worker immediately, best-effort.
func (p *adoptedProc) Kill() error {
	p.signal(os.Kill)
	return nil
}
