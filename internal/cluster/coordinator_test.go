package cluster

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

// recordingSpawner wraps InProcess so tests can reach the procs behind
// each slot (to kill them) while the coordinator supervises as usual.
type recordingSpawner struct {
	spawn SpawnFunc
	mu    sync.Mutex
	procs map[int][]WorkerProc // slot -> spawn history
}

func newRecordingSpawner() *recordingSpawner {
	return &recordingSpawner{spawn: InProcess(nil), procs: make(map[int][]WorkerProc)}
}

func (rs *recordingSpawner) Spawn(ctx context.Context, opts WorkerSpawnOpts) (WorkerProc, error) {
	p, err := rs.spawn(ctx, opts)
	if err != nil {
		return nil, err
	}
	rs.mu.Lock()
	rs.procs[opts.Slot] = append(rs.procs[opts.Slot], p)
	rs.mu.Unlock()
	return p, nil
}

func (rs *recordingSpawner) current(slot int) WorkerProc {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	hist := rs.procs[slot]
	if len(hist) == 0 {
		return nil
	}
	return hist[len(hist)-1]
}

func testConfig(spawn SpawnFunc) Config {
	return Config{
		Workers:         3,
		WorkerCapacity:  4,
		HeartbeatEvery:  50 * time.Millisecond,
		HeartbeatMisses: 3,
		MaxRestarts:     3,
		RespawnBackoff:  20 * time.Millisecond,
		DrainTimeout:    10 * time.Second,
		Spawn:           spawn,
		Logf:            func(string, ...any) {},
	}
}

// waitConverged polls the coordinator until the session's pool reaches
// its target depth.
func waitConverged(t *testing.T, c *Coordinator, cid uint64, target int) {
	t.Helper()
	ctx := context.Background()
	waitFor(t, 60*time.Second, "session convergence", func() bool {
		info, err := c.Session(ctx, cid)
		return err == nil && info.Metrics != nil && info.Metrics.Pool.Available >= target
	})
}

// TestCoordinatorPlacementAndKeystream: sessions spread least-loaded
// across workers, draws route to the owner, and two sessions with the
// same spec and seed — placed on different workers — produce the same
// key stream (the registry's survivability story depends on exactly this
// determinism).
func TestCoordinatorPlacementAndKeystream(t *testing.T) {
	c, err := New(testConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	ctx := context.Background()

	spec := fastSpec(4242)
	a, err := c.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Worker == b.Worker {
		t.Fatalf("same-seed pair landed on one worker (%d): placement is not least-loaded", a.Worker)
	}
	third, err := c.Create(fastSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if third.Worker == a.Worker || third.Worker == b.Worker {
		t.Fatalf("third session on worker %d, want the idle slot", third.Worker)
	}

	waitConverged(t, c, a.ID, spec.TargetDepth)
	waitConverged(t, c, b.ID, spec.TargetDepth)
	ka, err := c.Draw(ctx, a.ID, 96)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := c.Draw(ctx, b.ID, 96)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ka, kb) {
		t.Fatal("same spec and seed on different workers produced different key streams")
	}

	// The draw is accounted on the owning worker.
	info, err := c.Session(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Metrics == nil || info.Metrics.Pool.Drawn != 96 {
		t.Fatalf("owner metrics after draw: %+v", info.Metrics)
	}
}

// TestCoordinatorSaturation: the tier rejects sessions beyond total live
// capacity with ErrNoWorkers, and capacity frees on close.
func TestCoordinatorSaturation(t *testing.T) {
	cfg := testConfig(nil)
	cfg.Workers = 2
	cfg.WorkerCapacity = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown(context.Background())
	ctx := context.Background()

	var ids []uint64
	for i := 0; i < 4; i++ {
		info, err := c.Create(fastSpec(int64(100 + i)))
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		ids = append(ids, info.ID)
	}
	if _, err := c.Create(fastSpec(999)); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("5th create: %v, want ErrNoWorkers", err)
	}
	if err := c.CloseSession(ctx, ids[0]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "capacity to free after close", func() bool {
		_, err := c.Create(fastSpec(1000))
		return err == nil
	})
}

// TestCoordinatorChaosKillAndReassign is the in-process chaos test: a
// worker is killed mid-operation, the coordinator must notice, respawn
// the slot, reassign the dead worker's sessions, and draws must succeed
// again; coordinator shutdown then leaks no goroutines. The e2e harness
// repeats this across real OS processes.
func TestCoordinatorChaosKillAndReassign(t *testing.T) {
	before := runtime.NumGoroutine()
	rs := newRecordingSpawner()
	cfg := testConfig(rs.Spawn)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	spec := fastSpec(777)
	var ids []uint64
	for i := 0; i < 4; i++ {
		sp := spec
		sp.Seed = int64(700 + i*13)
		sp.Name = sessionName(i)
		info, err := c.Create(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	for _, id := range ids {
		waitConverged(t, c, id, spec.TargetDepth)
	}

	// Kill the worker owning the first session, while its sessions are
	// mid-refresh (a draw below the watermark wakes the refresher).
	victim, err := c.Session(ctx, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Draw(ctx, ids[0], spec.TargetDepth-spec.LowWater/2); err != nil {
		t.Fatal(err)
	}
	proc := rs.current(victim.Worker)
	if proc == nil {
		t.Fatalf("no proc recorded for slot %d", victim.Worker)
	}
	_ = proc.Kill()

	// The coordinator must reassign every session of the dead worker and
	// serve draws from the replacements.
	waitFor(t, 60*time.Second, "reassignment after worker kill", func() bool {
		for _, id := range ids {
			info, err := c.Session(ctx, id)
			if err != nil || info.State != sessionAssigned {
				return false
			}
		}
		return c.Metrics().Reassigned > 0
	})
	for _, id := range ids {
		id := id
		waitFor(t, 60*time.Second, "post-reassign draw", func() bool {
			_, err := c.Draw(ctx, id, 32)
			return err == nil
		})
	}
	// Draws recover through survivors before the slot is respawned; the
	// replacement worker comes up shortly after.
	waitFor(t, 30*time.Second, "slot respawn", func() bool {
		m := c.Metrics()
		return m.Restarts > 0 && m.WorkersAlive == cfg.Workers
	})
	// The reassigned session's worker changed.
	after, err := c.Session(ctx, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if after.Reassigns == 0 {
		t.Fatalf("victim session was never reassigned: %+v", after)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer scancel()
	if err := c.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := c.Create(fastSpec(1)); !errors.Is(err, ErrShutdown) {
		t.Fatalf("create after shutdown: %v, want ErrShutdown", err)
	}
	waitForGoroutines(t, before)
}

// TestCoordinatorShutdownCleanliness: a quiet tier shuts down without
// leaking goroutines and rejects all further work.
func TestCoordinatorShutdownCleanliness(t *testing.T) {
	before := runtime.NumGoroutine()
	c, err := New(testConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Create(fastSpec(31))
	if err != nil {
		t.Fatal(err)
	}
	waitConverged(t, c, info.ID, fastSpec(31).TargetDepth)
	sctx, scancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer scancel()
	if err := c.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := c.Draw(context.Background(), info.ID, 8); err == nil {
		t.Fatal("draw succeeded against a shut-down tier")
	}
	waitForGoroutines(t, before)
}
