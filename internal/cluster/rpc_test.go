package cluster

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/service"
)

// newTestWorker spins up a worker behind a real HTTP server and returns
// a client for its control RPC.
func newTestWorker(t *testing.T, cfg WorkerConfig) (*Worker, *WorkerClient) {
	t.Helper()
	w := NewWorker(cfg)
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = w.Drain(ctx)
		srv.Close()
	})
	return w, NewWorkerClient(srv.URL)
}

// TestWorkerControlRPCFailureStates is the table-driven contract for the
// worker-control RPC: each failure condition must come back over the
// wire as the exact typed error the coordinator's placement and routing
// logic switches on.
func TestWorkerControlRPCFailureStates(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cases := []struct {
		name string
		cfg  WorkerConfig
		// arrange runs against the fresh worker before the probed call.
		arrange func(t *testing.T, w *Worker, cl *WorkerClient)
		// act is the call whose error is checked.
		act     func(cl *WorkerClient) error
		wantErr error
	}{
		{
			name: "unreachable worker",
			arrange: func(t *testing.T, w *Worker, cl *WorkerClient) {
			},
			act: func(cl *WorkerClient) error {
				// A port nothing listens on: connection refused.
				dead := NewWorkerClient("http://127.0.0.1:1")
				_, err := dead.Assign(ctx, 1, fastSpec(1))
				return err
			},
			wantErr: ErrUnreachable,
		},
		{
			name: "assign to draining worker",
			arrange: func(t *testing.T, w *Worker, cl *WorkerClient) {
				if err := cl.Drain(ctx); err != nil {
					t.Fatal(err)
				}
			},
			act: func(cl *WorkerClient) error {
				_, err := cl.Assign(ctx, 7, fastSpec(7))
				return err
			},
			wantErr: ErrDraining,
		},
		{
			name: "double assign",
			arrange: func(t *testing.T, w *Worker, cl *WorkerClient) {
				if _, err := cl.Assign(ctx, 42, fastSpec(42)); err != nil {
					t.Fatal(err)
				}
			},
			act: func(cl *WorkerClient) error {
				_, err := cl.Assign(ctx, 42, fastSpec(43))
				return err
			},
			wantErr: ErrDuplicate,
		},
		{
			name: "assign beyond capacity",
			cfg:  WorkerConfig{Capacity: 1},
			arrange: func(t *testing.T, w *Worker, cl *WorkerClient) {
				// Capacity 1 admits one running plus one queued session.
				for cid := uint64(1); cid <= 2; cid++ {
					if _, err := cl.Assign(ctx, cid, fastSpec(int64(cid))); err != nil {
						t.Fatal(err)
					}
				}
			},
			act: func(cl *WorkerClient) error {
				_, err := cl.Assign(ctx, 3, fastSpec(3))
				return err
			},
			wantErr: service.ErrSaturated,
		},
		{
			name: "invalid spec",
			arrange: func(t *testing.T, w *Worker, cl *WorkerClient) {
			},
			act: func(cl *WorkerClient) error {
				bad := fastSpec(1)
				bad.Erasure = 1.5
				_, err := cl.Assign(ctx, 9, bad)
				return err
			},
			wantErr: nil, // generic RPC error: no retry class applies
		},
		{
			name: "draw from unknown session",
			arrange: func(t *testing.T, w *Worker, cl *WorkerClient) {
			},
			act: func(cl *WorkerClient) error {
				_, err := cl.Draw(ctx, 404, 16)
				return err
			},
			wantErr: ErrNotFound,
		},
		{
			name: "close unknown session",
			arrange: func(t *testing.T, w *Worker, cl *WorkerClient) {
			},
			act: func(cl *WorkerClient) error {
				return cl.Close(ctx, 404)
			},
			wantErr: ErrNotFound,
		},
		{
			name: "draw after drain finds nothing",
			arrange: func(t *testing.T, w *Worker, cl *WorkerClient) {
				if _, err := cl.Assign(ctx, 5, fastSpec(5)); err != nil {
					t.Fatal(err)
				}
				if err := cl.Drain(ctx); err != nil {
					t.Fatal(err)
				}
			},
			act: func(cl *WorkerClient) error {
				// The drained session is pruned from the worker's map, so the
				// draw misses rather than hitting a zeroized pool.
				_, err := cl.Draw(ctx, 5, 16)
				return err
			},
			wantErr: ErrNotFound,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, cl := newTestWorker(t, tc.cfg)
			tc.arrange(t, w, cl)
			err := tc.act(cl)
			if err == nil {
				t.Fatalf("call succeeded, want error %v", tc.wantErr)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("error = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestWorkerAssignDrawRoundTrip is the RPC happy path: assign, wait for
// the pool, draw, stats, close.
func TestWorkerAssignDrawRoundTrip(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	_, cl := newTestWorker(t, WorkerConfig{Capacity: 2})

	spec := fastSpec(99)
	if _, err := cl.Assign(ctx, 11, spec); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "pool fill over RPC", func() bool {
		m, err := cl.Metrics(ctx, 11)
		return err == nil && m.Pool.Available >= spec.TargetDepth
	})
	key, err := cl.Draw(ctx, 11, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 64 {
		t.Fatalf("drew %d bytes, want 64", len(key))
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sessions) != 1 || st.Sessions[11].Pool.Drawn != 64 {
		t.Fatalf("stats = %+v", st)
	}
	if err := cl.Close(ctx, 11); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Metrics(ctx, 11); !errors.Is(err, ErrNotFound) {
		t.Fatalf("metrics after close: %v, want ErrNotFound", err)
	}
}
