// Package core implements the paper's secret-agreement protocol: Phase 1
// (pair-wise secrets via wiretap-II extraction over reception classes) and
// Phase 2 (group secret via redistribution + privacy amplification), the
// Eve-bound estimators of §3.3, leader rotation, and a deterministic
// session engine that runs the protocol over a simulated broadcast medium
// while tracking the eavesdropper's knowledge.
//
// All coding is over GF(2^16), so a round may use any practical number of
// x-packets without hitting the Cauchy-point limit.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/gf"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Sym is the protocol's field symbol: GF(2^16), two payload bytes each.
type Sym = uint16

// Field returns the protocol field.
func Field() *gf.Field[Sym] { return gf.GF65536() }

// Default parameter values, chosen to mirror the paper's deployment (§4):
// 100-byte packets, 9 interference patterns rotated per experiment.
const (
	DefaultPayloadBytes  = 100
	DefaultSlotsPerRound = 9
)

// Config parameterizes a protocol session.
type Config struct {
	// Terminals is the group size n (2..16). Terminal indices are
	// 0..n-1; the medium must expose at least n nodes plus Eve's.
	Terminals int
	// XPerRound is N, the number of x-packets the leader transmits per
	// round.
	XPerRound int
	// PayloadBytes is the x-packet payload size B. Must be even (GF(2^16)
	// symbols are two bytes).
	PayloadBytes int
	// Rounds is the number of protocol rounds in the session.
	Rounds int
	// Rotate makes the terminals take turns in the leader role
	// (§3.2 "avoiding the worst-case scenario"). Round r's leader is
	// r mod n. When false, terminal 0 leads every round.
	Rotate bool
	// Estimator lower-bounds what Eve missed (§3.3). Defaults to
	// LeaveOneOut.
	Estimator Estimator
	// Pooling groups x-packets into the pools Phase 1 amplifies.
	// Defaults to BalancedPooling.
	Pooling Pooling
	// Seed drives x-payload generation. Channel randomness lives in the
	// medium, which has its own seed, so payloads and erasures are
	// independently reproducible.
	Seed int64
	// SlotsPerRound is how many interference slots a round's x-packet
	// transmissions are spread across (the testbed rotates through all 9
	// noise patterns per experiment). 0 means DefaultSlotsPerRound.
	SlotsPerRound int
	// Tracer, when non-nil, receives structured per-round events
	// (see internal/trace). Nil disables tracing.
	Tracer trace.Tracer
	// Obs, when non-nil, receives engine phase timings (round, x-phase
	// and compute durations) as histograms. Nil disables timing — the
	// engine then performs no clock reads at all.
	Obs *obs.Registry
}

// ErrConfig wraps configuration validation failures.
var ErrConfig = errors.New("core: invalid config")

// Validate checks the configuration and fills defaults in place.
func (c *Config) Validate() error {
	if c.Terminals < 2 || c.Terminals > 16 {
		return fmt.Errorf("%w: Terminals=%d, want 2..16", ErrConfig, c.Terminals)
	}
	if c.XPerRound < 1 || c.XPerRound > 16384 {
		return fmt.Errorf("%w: XPerRound=%d, want 1..16384", ErrConfig, c.XPerRound)
	}
	if c.PayloadBytes == 0 {
		c.PayloadBytes = DefaultPayloadBytes
	}
	if c.PayloadBytes < 2 || c.PayloadBytes%2 != 0 {
		return fmt.Errorf("%w: PayloadBytes=%d, want positive even", ErrConfig, c.PayloadBytes)
	}
	if c.Rounds == 0 {
		c.Rounds = 1
	}
	if c.Rounds < 0 {
		return fmt.Errorf("%w: Rounds=%d", ErrConfig, c.Rounds)
	}
	if c.SlotsPerRound == 0 {
		c.SlotsPerRound = DefaultSlotsPerRound
	}
	if c.SlotsPerRound < 1 {
		return fmt.Errorf("%w: SlotsPerRound=%d", ErrConfig, c.SlotsPerRound)
	}
	if c.Estimator == nil {
		c.Estimator = LeaveOneOut{}
	}
	if c.Pooling == nil {
		c.Pooling = BalancedPooling{}
	}
	return nil
}

// Reliability converts the rank certificate into the paper's reliability
// metric: with fraction f of the secret's dimensions known to Eve, she
// guesses each secret bit correctly with probability (1+f)/2, and
// reliability is r = -log2((1+f)/2). r = 1 means Eve knows nothing
// (per-bit guess probability 1/2); r = 0 means she knows everything.
// Returns NaN when no secret was generated.
func Reliability(secretDims, unknownDims int) float64 {
	if secretDims == 0 {
		return math.NaN()
	}
	if unknownDims < 0 || unknownDims > secretDims {
		panic("core: unknown dims out of range")
	}
	f := float64(secretDims-unknownDims) / float64(secretDims)
	return -math.Log2((1 + f) / 2)
}

// GuessProbability is the per-bit guess probability corresponding to a
// reliability value: 2^(-r).
func GuessProbability(reliability float64) float64 {
	return math.Pow(2, -reliability)
}
