package core

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/eve"
	"repro/internal/gf"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/trace"
)

// mediumFor builds a symmetric-erasure medium with n terminals plus one
// Eve node (index n).
func mediumFor(n int, p float64, seed int64) *radio.Medium {
	return radio.NewMedium(radio.Uniform{P: p}, n+1, seed)
}

func TestRunSessionOraclePerfectSecrecy(t *testing.T) {
	cfg := Config{
		Terminals: 4, XPerRound: 60, PayloadBytes: 20,
		Rounds: 3, Rotate: true, Estimator: Oracle{}, Seed: 7,
	}
	med := mediumFor(4, 0.4, 99)
	res, err := RunSession(cfg, med, []radio.NodeID{4})
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretDims == 0 {
		t.Fatal("oracle session generated no secret")
	}
	if !res.AllAgreed {
		t.Fatal("terminals disagreed")
	}
	// The oracle budgets exactly Eve's misses: secrecy must be PERFECT.
	if res.UnknownDims != res.SecretDims {
		t.Fatalf("unknown %d of %d secret dims — oracle must be perfect", res.UnknownDims, res.SecretDims)
	}
	if res.Reliability != 1 {
		t.Fatalf("reliability = %v, want 1", res.Reliability)
	}
	if res.Efficiency <= 0 || res.Efficiency >= 1 {
		t.Fatalf("efficiency = %v", res.Efficiency)
	}
	if int64(len(res.Secret))*8 != res.SecretBits {
		t.Fatal("secret bits accounting wrong")
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("round infos = %d", len(res.Rounds))
	}
	// Rotation actually rotated.
	if res.Rounds[0].Leader == res.Rounds[1].Leader {
		t.Fatal("rotation did not change leader")
	}
	// Secret bytes length = SecretDims * PayloadBytes.
	if len(res.Secret) != res.SecretDims*cfg.PayloadBytes {
		t.Fatalf("secret length %d, dims %d", len(res.Secret), res.SecretDims)
	}
}

func TestRunSessionDeterminism(t *testing.T) {
	run := func() *SessionResult {
		cfg := Config{Terminals: 3, XPerRound: 40, PayloadBytes: 10, Rounds: 2, Estimator: Oracle{}, Seed: 5}
		med := mediumFor(3, 0.35, 123)
		res, err := RunSession(cfg, med, []radio.NodeID{3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if string(a.Secret) != string(b.Secret) {
		t.Fatal("same seeds produced different secrets")
	}
	if a.BitsTransmitted != b.BitsTransmitted || a.UnknownDims != b.UnknownDims {
		t.Fatal("same seeds produced different metrics")
	}
}

func TestRunSessionOracleRandomizedInvariants(t *testing.T) {
	// The core property-based test: across random seeds, group sizes and
	// channel qualities, an oracle-budgeted session must ALWAYS be
	// perfectly secret and all terminals must ALWAYS agree.
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		p := 0.15 + 0.6*rng.Float64()
		cfg := Config{
			Terminals: n, XPerRound: 30 + rng.Intn(40), PayloadBytes: 8,
			Rounds: 1 + rng.Intn(2), Rotate: rng.Intn(2) == 0,
			Estimator: Oracle{}, Seed: rng.Int63(),
		}
		med := mediumFor(n, p, rng.Int63())
		res, err := RunSession(cfg, med, []radio.NodeID{radio.NodeID(n)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.AllAgreed {
			t.Fatalf("trial %d (n=%d p=%.2f): disagreement", trial, n, p)
		}
		if res.UnknownDims != res.SecretDims {
			t.Fatalf("trial %d (n=%d p=%.2f): leak %d/%d", trial, n, p,
				res.SecretDims-res.UnknownDims, res.SecretDims)
		}
	}
}

func TestRunSessionEveHearsEverything(t *testing.T) {
	// p = 0: Eve receives every x-packet; no secret can exist.
	cfg := Config{Terminals: 3, XPerRound: 30, PayloadBytes: 8, Estimator: Oracle{}, Seed: 1}
	med := mediumFor(3, 0, 1)
	res, err := RunSession(cfg, med, []radio.NodeID{3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretDims != 0 || len(res.Secret) != 0 {
		t.Fatalf("secret generated despite omniscient Eve: %d dims", res.SecretDims)
	}
	if !math.IsNaN(res.Reliability) {
		t.Fatalf("reliability = %v, want NaN", res.Reliability)
	}
	if res.Rounds[0].L != 0 {
		t.Fatal("round L should be 0")
	}
}

func TestRunSessionLeaveOneOut(t *testing.T) {
	cfg := Config{
		Terminals: 5, XPerRound: 80, PayloadBytes: 16,
		Rounds: 2, Rotate: true, Seed: 11, // default LOO estimator
	}
	med := mediumFor(5, 0.45, 77)
	res, err := RunSession(cfg, med, []radio.NodeID{5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAgreed {
		t.Fatal("terminals disagreed")
	}
	if res.SecretDims == 0 {
		t.Skip("LOO produced no secret at this seed; acceptable but uninformative")
	}
	if res.Reliability < 0 || res.Reliability > 1 {
		t.Fatalf("reliability out of range: %v", res.Reliability)
	}
}

func TestRunSessionMultiAntennaEve(t *testing.T) {
	// Two-antenna Eve on independent channels hears strictly more;
	// with the oracle the protocol adapts and stays perfect.
	cfg := Config{Terminals: 3, XPerRound: 50, PayloadBytes: 8, Estimator: Oracle{}, Seed: 3}
	med := radio.NewMedium(radio.Uniform{P: 0.5}, 5, 42)
	res, err := RunSession(cfg, med, []radio.NodeID{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.UnknownDims != res.SecretDims {
		t.Fatal("oracle with multi-antenna Eve must still be perfect")
	}

	// And the secret is smaller than against a single antenna (strictly
	// more knowledge can only shrink the budgets) — compare by rerunning.
	med1 := radio.NewMedium(radio.Uniform{P: 0.5}, 5, 42)
	res1, err := RunSession(cfg, med1, []radio.NodeID{3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretDims > res1.SecretDims {
		t.Fatalf("two antennas (%d dims) beat one (%d dims)", res.SecretDims, res1.SecretDims)
	}
}

func TestRunSessionValidation(t *testing.T) {
	cfg := Config{Terminals: 3, XPerRound: 10}
	if _, err := RunSession(Config{Terminals: 1, XPerRound: 5}, mediumFor(3, 0.5, 1), nil); err == nil {
		t.Fatal("bad config accepted")
	}
	// Medium too small.
	if _, err := RunSession(cfg, radio.NewMedium(radio.Uniform{}, 2, 1), nil); err == nil {
		t.Fatal("small medium accepted")
	}
	// Eve node out of range.
	if _, err := RunSession(cfg, mediumFor(3, 0.5, 1), []radio.NodeID{9}); err == nil {
		t.Fatal("eve out of range accepted")
	}
	// Eve colliding with terminal.
	if _, err := RunSession(cfg, mediumFor(3, 0.5, 1), []radio.NodeID{1}); err == nil {
		t.Fatal("eve/terminal collision accepted")
	}
}

// greedyEstimator deliberately over-budgets: every class gets its full
// size. It exists to prove the reliability machinery detects leaks.
type greedyEstimator struct{}

func (greedyEstimator) Name() string      { return "greedy(unsafe)" }
func (greedyEstimator) NeedsOracle() bool { return false }
func (greedyEstimator) Budgets(ctx *EstimatorContext) []int {
	out := make([]int, len(ctx.Classes))
	for i, cl := range ctx.Classes {
		out[i] = cl.Size()
	}
	return out
}

func TestGreedyEstimatorLeaksAndIsDetected(t *testing.T) {
	cfg := Config{Terminals: 3, XPerRound: 60, PayloadBytes: 8, Estimator: greedyEstimator{}, Seed: 13}
	med := mediumFor(3, 0.4, 555)
	res, err := RunSession(cfg, med, []radio.NodeID{3})
	if err != nil {
		t.Fatal(err)
	}
	if res.SecretDims == 0 {
		t.Fatal("greedy produced nothing")
	}
	// Eve received ~60% of x-packets; full-size budgets are far beyond
	// her misses, so she must know a positive fraction.
	if res.UnknownDims == res.SecretDims {
		t.Fatal("greedy over-budgeting reported as perfectly secret")
	}
	if !(res.Reliability < 1) {
		t.Fatalf("reliability = %v, want < 1", res.Reliability)
	}
	if res.EveKnownFraction <= 0 {
		t.Fatalf("known fraction = %v", res.EveKnownFraction)
	}
	// Agreement among terminals is unaffected by leakage.
	if !res.AllAgreed {
		t.Fatal("terminals disagreed")
	}
}

func TestRankCertificateMatchesConstructiveAttack(t *testing.T) {
	// White-box: replay one round manually and verify that the number of
	// secret rows Eve can actually reconstruct equals SecretDims -
	// UnknownDims when her span cleanly contains them, and that she can
	// never reconstruct MORE than the certificate allows.
	rng := rand.New(rand.NewSource(31))
	f := Field()
	for trial := 0; trial < 15; trial++ {
		n := 3
		numX := 24
		// Random receptions.
		recv := []*packet.IDSet{fullIDSet(numX), packet.NewIDSet(numX), packet.NewIDSet(numX)}
		eveSet := packet.NewIDSet(numX)
		for id := 0; id < numX; id++ {
			for ti := 1; ti < n; ti++ {
				if rng.Float64() < 0.7 {
					recv[ti].Add(packet.ID(id))
				}
			}
			if rng.Float64() < 0.5 {
				eveSet.Add(packet.ID(id))
			}
		}
		ctx := &EstimatorContext{Terminals: n, Leader: 0, NumX: numX, Recv: recv}
		ctx.Classes = BuildClasses(n, 0, numX, recv)
		// Use the unsafe estimator so leakage actually happens sometimes.
		plan := BuildPlan(ctx, greedyEstimator{})
		if plan.L == 0 {
			continue
		}
		xSym := make([][]Sym, numX)
		for i := range xSym {
			p := make([]Sym, 4)
			for j := range p {
				p[j] = Sym(rng.Intn(65536))
			}
			xSym[i] = p
		}
		lr := ComputeLeaderRound(plan, xSym)

		know := eve.NewKnowledge(f, numX)
		for _, id := range eveSet.Slice() {
			know.AddUnit(int(id), xSym[int(id)])
		}
		yox := plan.YOverX()
		zc := plan.Redist.ZCoeffs()
		for j := 0; j < zc.Rows(); j++ {
			row := make([]Sym, numX)
			for yi, c := range zc.Row(j) {
				if c != 0 {
					f.AddMulSlice(row, yox.Row(yi), c)
				}
			}
			know.AddCombo(row, lr.Z[j])
		}
		sm := secretOverXMatrix(plan)
		u := know.UnknownSecretDims(sm)
		recovered := 0
		for i := 0; i < sm.Rows(); i++ {
			row := append([]Sym(nil), sm.Row(i)...)
			got, ok := know.Reconstruct(row)
			if ok {
				recovered++
				// When Eve reconstructs, the payload must be the REAL
				// secret packet.
				for j := range got {
					if got[j] != lr.Secret[i][j] {
						t.Fatalf("trial %d: Eve reconstructed wrong payload", trial)
					}
				}
			}
		}
		if recovered > plan.L-u {
			t.Fatalf("trial %d: attack recovered %d rows but certificate says only %d dims known",
				trial, recovered, plan.L-u)
		}
	}
}

func TestSecretKbpsAt(t *testing.T) {
	r := &SessionResult{Efficiency: 0.038}
	if got := r.SecretKbpsAt(1e6); math.Abs(got-38) > 1e-9 {
		t.Fatalf("kbps = %v", got)
	}
}

// Guard against accidental field-size regressions: symbols must be 2 bytes.
func TestSymbolWidth(t *testing.T) {
	var s Sym = 0xffff
	if s != 65535 {
		t.Fatal("Sym must be uint16")
	}
	if Field().Size() != 65536 {
		t.Fatal("protocol field must be GF(2^16)")
	}
	_ = gf.Bytes16([]Sym{1})
}

func TestAirtimeAccounting(t *testing.T) {
	cfg := Config{Terminals: 3, XPerRound: 30, PayloadBytes: 20, Estimator: Oracle{}, Seed: 2}
	med := mediumFor(3, 0.4, 3)
	res, err := RunSession(cfg, med, []radio.NodeID{3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Airtime <= 0 {
		t.Fatal("no airtime accounted")
	}
	// Airtime must exceed the bare serialization time at 1 Mbps (MAC
	// overheads only add).
	bare := time.Duration(float64(res.BitsTransmitted) / 1e6 * float64(time.Second))
	if res.Airtime <= bare {
		t.Fatalf("airtime %v <= serialization floor %v", res.Airtime, bare)
	}
	if res.SecretBits > 0 && res.SecretKbpsAirtime() <= 0 {
		t.Fatal("airtime rate not positive")
	}
	// The airtime-derived rate is strictly more conservative than the
	// bits-derived one.
	if res.SecretKbpsAirtime() >= res.SecretKbpsAt(1e6) {
		t.Fatalf("airtime rate %.2f should be below bits rate %.2f",
			res.SecretKbpsAirtime(), res.SecretKbpsAt(1e6))
	}
}

func TestTracerReceivesEvents(t *testing.T) {
	log := trace.NewLog()
	cfg := Config{
		Terminals: 3, XPerRound: 40, PayloadBytes: 8,
		Rounds: 2, Estimator: Oracle{}, Seed: 4, Tracer: log,
	}
	med := mediumFor(3, 0.4, 17)
	if _, err := RunSession(cfg, med, []radio.NodeID{3}); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, e := range log.Events() {
		kinds[e.Kind]++
	}
	if kinds[trace.KindRoundStart] != 2 {
		t.Fatalf("round_start count = %d", kinds[trace.KindRoundStart])
	}
	if kinds[trace.KindSessionDone] != 1 {
		t.Fatalf("session_done count = %d", kinds[trace.KindSessionDone])
	}
	if kinds[trace.KindPlanBuilt] != 2 {
		t.Fatalf("plan_built count = %d", kinds[trace.KindPlanBuilt])
	}
	if kinds[trace.KindSecretDerived]+kinds[trace.KindRoundAborted] != 2 {
		t.Fatal("every round must end in secret or abort")
	}
}
