package core

import (
	"fmt"
	"sort"

	"repro/internal/gf"
	"repro/internal/mds"
	"repro/internal/packet"
	"repro/internal/wire"
)

// LeaderRound is the leader's complete view of one round's coding.
type LeaderRound struct {
	Plan   *Plan
	Y      [][]Sym // M y-packet payloads
	Z      [][]Sym // M-L z-packet payloads (reliably broadcast)
	Secret [][]Sym // L s-packet payloads (the round's group secret)
}

// ComputeLeaderRound executes Phase 1 steps 3-4 and Phase 2 on the leader,
// given the plan and the x-packet payload symbols. The plan must have
// L > 0.
func ComputeLeaderRound(plan *Plan, xSym [][]Sym) *LeaderRound {
	if plan.L <= 0 {
		panic("core: ComputeLeaderRound on a round with no secret")
	}
	if len(xSym) != plan.NumX {
		panic("core: x payload count mismatch")
	}
	lr := &LeaderRound{Plan: plan, Y: ComputeY(plan, xSym)}
	lr.Z = plan.Redist.EncodeZ(lr.Y)
	lr.Secret = plan.Redist.EncodeS(lr.Y)
	return lr
}

// ComputeY evaluates the plan's y-packet payloads from the x-packet
// payload symbols (Phase 1 step 3 without the Phase 2 coding). Exposed for
// the unicast baseline, which shares Phase 1 with the group protocol.
func ComputeY(plan *Plan, xSym [][]Sym) [][]Sym {
	if len(xSym) != plan.NumX {
		panic("core: x payload count mismatch")
	}
	var y [][]Sym
	for k, cl := range plan.Classes {
		y = append(y, plan.Extractors[k].Extract(xSymbolsForClass(cl, xSym))...)
	}
	return y
}

// BuildYAnnounce renders the plan's y-packet constructions as the wire
// message the leader reliably broadcasts (step 3 of Phase 1: identities
// and coefficients, never contents).
func BuildYAnnounce(h wire.Header, plan *Plan) *wire.YAnnounce {
	h.Type = wire.TypeYAnnounce
	msg := &wire.YAnnounce{Header: h}
	for k, cl := range plan.Classes {
		ids := make([]uint32, len(cl.IDs))
		for i, id := range cl.IDs {
			ids[i] = uint32(id)
		}
		msg.Classes = append(msg.Classes, wire.ClassBatch{
			XIDs:   ids,
			Coeffs: mds.MatrixToRows(plan.Extractors[k].Coeffs()),
		})
	}
	return msg
}

// BuildZPackets renders the z-packets (coefficients and contents) for
// reliable broadcast (step 1 of Phase 2).
func BuildZPackets(h wire.Header, plan *Plan, z [][]Sym) []*wire.ZPacket {
	h.Type = wire.TypeZ
	zc := plan.Redist.ZCoeffs()
	out := make([]*wire.ZPacket, len(z))
	for j := range z {
		out[j] = &wire.ZPacket{
			Header:  h,
			Index:   uint16(j),
			Coeffs:  append([]Sym(nil), zc.Row(j)...),
			Payload: gf.Bytes16(z[j]),
		}
	}
	return out
}

// BuildSAnnounce renders the s-packet coefficient announcement (step 3 of
// Phase 2: identities only, never contents).
func BuildSAnnounce(h wire.Header, plan *Plan) *wire.SAnnounce {
	h.Type = wire.TypeSAnnounce
	return &wire.SAnnounce{Header: h, Coeffs: mds.MatrixToRows(plan.Redist.SCoeffs())}
}

// ComputeTerminalSecret executes the terminal side of a round purely from
// the wire messages and the terminal's received x-packet payloads:
// reconstruct the y-packets of every class fully covered by the reception
// set, complete the rest from the z-packets, then form the s-packets.
// It returns the round's group secret.
func ComputeTerminalSecret(
	recv map[packet.ID][]Sym,
	ya *wire.YAnnounce,
	zs []*wire.ZPacket,
	sa *wire.SAnnounce,
) ([][]Sym, error) {
	f := Field()
	// Reconstruct what we can of the y-packets.
	known := make(map[int][]Sym)
	global := 0
	for _, batch := range ya.Classes {
		have := true
		for _, id := range batch.XIDs {
			if _, ok := recv[packet.ID(id)]; !ok {
				have = false
				break
			}
		}
		var srcs [][]Sym
		if have {
			// Gathered once per class; every coefficient row of the class
			// combines the same received x-payloads.
			srcs = make([][]Sym, len(batch.XIDs))
			for c, id := range batch.XIDs {
				srcs[c] = recv[packet.ID(id)]
			}
		}
		for r, row := range batch.Coeffs {
			if len(row) != len(batch.XIDs) {
				return nil, fmt.Errorf("core: class coefficient row %d has %d entries for %d x-packets", r, len(row), len(batch.XIDs))
			}
			if have {
				// All x-payloads in a round share one symbol width, so the
				// combination is one batched gf kernel call over a
				// preallocated accumulator.
				y := []Sym{} // zero-width class (no x-ids): degenerate
				if len(batch.XIDs) > 0 {
					y = make([]Sym, len(recv[packet.ID(batch.XIDs[0])]))
				}
				f.AddMulSlices(y, srcs, row)
				known[global] = y
			}
			global++
		}
	}
	m := global

	// Order the z-packets by index and check coherence.
	zsorted := append([]*wire.ZPacket(nil), zs...)
	sort.Slice(zsorted, func(a, b int) bool { return zsorted[a].Index < zsorted[b].Index })
	coeffs := make([][]Sym, len(zsorted))
	payloads := make([][]Sym, len(zsorted))
	for j, zp := range zsorted {
		if int(zp.Index) != j {
			return nil, fmt.Errorf("core: z-packet indices not contiguous (saw %d at position %d)", zp.Index, j)
		}
		if len(zp.Coeffs) != m {
			return nil, fmt.Errorf("core: z-packet %d has %d coefficients, want %d", j, len(zp.Coeffs), m)
		}
		if len(zp.Payload)%2 != 0 {
			return nil, fmt.Errorf("core: z-packet %d has odd payload length", j)
		}
		coeffs[j] = zp.Coeffs
		payloads[j] = gf.Symbols16(zp.Payload)
	}

	full, err := mds.CompleteFromEquations(f, m, known, coeffs, payloads)
	if err != nil {
		return nil, fmt.Errorf("core: completing y-packets: %w", err)
	}

	// Privacy amplification: s = announced coefficients times y.
	secret := make([][]Sym, len(sa.Coeffs))
	for i, row := range sa.Coeffs {
		if len(row) != m {
			return nil, fmt.Errorf("core: s-coefficient row %d has %d entries, want %d", i, len(row), m)
		}
		s := []Sym{}
		if m > 0 {
			s = make([]Sym, len(full[0]))
		}
		f.AddMulSlices(s, full, row)
		secret[i] = s
	}
	return secret, nil
}

// SecretBytes flattens s-packet payload rows into the session secret byte
// string.
func SecretBytes(secret [][]Sym) []byte {
	var out []byte
	for _, row := range secret {
		out = append(out, gf.Bytes16(row)...)
	}
	return out
}

// PairwiseSecret returns terminal i's Phase-1 pair-wise secret with the
// round's leader: the concatenation of the y-packets the terminal can
// reconstruct ("their shared pair-wise secret is the concatenation of
// these packets"). The group protocol consumes these via Phase 2; the
// function exposes them directly for pair-oriented applications and the
// unicast baseline.
func PairwiseSecret(plan *Plan, y [][]Sym, terminal int) []byte {
	var out []byte
	for _, idx := range plan.TerminalYIndices(terminal) {
		out = append(out, gf.Bytes16(y[idx])...)
	}
	return out
}
