package core

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/mds"
	"repro/internal/packet"
	"repro/internal/wire"
)

// LeaderRound is the leader's complete view of one round's coding.
type LeaderRound struct {
	Plan   *Plan
	Y      [][]Sym // M y-packet payloads
	Z      [][]Sym // M-L z-packet payloads (reliably broadcast)
	Secret [][]Sym // L s-packet payloads (the round's group secret)
}

// ComputeLeaderRound executes Phase 1 steps 3-4 and Phase 2 on the leader,
// given the plan and the x-packet payload symbols. The plan must have
// L > 0.
func ComputeLeaderRound(plan *Plan, xSym [][]Sym) *LeaderRound {
	if plan.L <= 0 {
		panic("core: ComputeLeaderRound on a round with no secret")
	}
	if len(xSym) != plan.NumX {
		panic("core: x payload count mismatch")
	}
	lr := &LeaderRound{Plan: plan, Y: ComputeY(plan, xSym)}
	lr.Z = plan.Redist.EncodeZ(lr.Y)
	lr.Secret = plan.Redist.EncodeS(lr.Y)
	return lr
}

// ComputeY evaluates the plan's y-packet payloads from the x-packet
// payload symbols (Phase 1 step 3 without the Phase 2 coding). Exposed for
// the unicast baseline, which shares Phase 1 with the group protocol.
func ComputeY(plan *Plan, xSym [][]Sym) [][]Sym {
	if len(xSym) != plan.NumX {
		panic("core: x payload count mismatch")
	}
	var y [][]Sym
	for k, cl := range plan.Classes {
		y = append(y, plan.Extractors[k].Extract(xSymbolsForClass(cl, xSym))...)
	}
	return y
}

// BuildYAnnounce renders the plan's y-packet constructions as the wire
// message the leader reliably broadcasts (step 3 of Phase 1: identities
// and coefficients, never contents).
func BuildYAnnounce(h wire.Header, plan *Plan) *wire.YAnnounce {
	h.Type = wire.TypeYAnnounce
	msg := &wire.YAnnounce{Header: h}
	for k, cl := range plan.Classes {
		ids := make([]uint32, len(cl.IDs))
		for i, id := range cl.IDs {
			ids[i] = uint32(id)
		}
		msg.Classes = append(msg.Classes, wire.ClassBatch{
			XIDs:   ids,
			Coeffs: mds.MatrixToRows(plan.Extractors[k].Coeffs()),
		})
	}
	return msg
}

// BuildZPackets renders the z-packets (coefficients and contents) for
// reliable broadcast (step 1 of Phase 2).
func BuildZPackets(h wire.Header, plan *Plan, z [][]Sym) []*wire.ZPacket {
	h.Type = wire.TypeZ
	zc := plan.Redist.ZCoeffs()
	out := make([]*wire.ZPacket, len(z))
	for j := range z {
		out[j] = &wire.ZPacket{
			Header:  h,
			Index:   uint16(j),
			Coeffs:  append([]Sym(nil), zc.Row(j)...),
			Payload: gf.Bytes16(z[j]),
		}
	}
	return out
}

// BuildSAnnounce renders the s-packet coefficient announcement (step 3 of
// Phase 2: identities only, never contents).
func BuildSAnnounce(h wire.Header, plan *Plan) *wire.SAnnounce {
	h.Type = wire.TypeSAnnounce
	return &wire.SAnnounce{Header: h, Coeffs: mds.MatrixToRows(plan.Redist.SCoeffs())}
}

// RoundScratch holds the reusable buffers one node needs to run the
// terminal side of a round without per-round allocation churn: the
// gathered class sources and combination rows ([][]Sym headers), the
// known-y index, the z-packet ordering buffers, and a payload arena the
// reconstructed y-packets and s-packets are written into. The zero value
// is ready to use; buffers grow on first use and are reused afterwards,
// so a long-lived session node reaches a zero-allocation steady state
// (pinned by TestRoundCombinationSteadyStateAllocs).
//
// Rows returned by ComputeTerminalSecretInto alias the scratch arena and
// stay valid until the next call with the same scratch; callers that
// retain a round's secret (every current caller copies it into the
// session key pool or result buffer) are unaffected.
type RoundScratch struct {
	srcs   [][]Sym
	known  map[int][]Sym
	zs     []*wire.ZPacket
	zc     [][]Sym
	zp     [][]Sym
	full   [][]Sym
	secret [][]Sym
	bufs   [][]Sym
	nbuf   int
}

// payload returns a zeroed width-length row from the arena.
func (sc *RoundScratch) payload(width int) []Sym {
	if sc.nbuf < len(sc.bufs) && cap(sc.bufs[sc.nbuf]) >= width {
		b := sc.bufs[sc.nbuf][:width]
		clear(b)
		sc.bufs[sc.nbuf] = b
		sc.nbuf++
		return b
	}
	b := make([]Sym, width)
	if sc.nbuf < len(sc.bufs) {
		sc.bufs[sc.nbuf] = b
	} else {
		sc.bufs = append(sc.bufs, b)
	}
	sc.nbuf++
	return b
}

// reset prepares the scratch for a new round.
func (sc *RoundScratch) reset() {
	sc.nbuf = 0
	if sc.known == nil {
		sc.known = make(map[int][]Sym)
	} else {
		clear(sc.known)
	}
}

// ComputeTerminalSecret executes the terminal side of a round purely from
// the wire messages and the terminal's received x-packet payloads. It
// allocates fresh result rows; session loops that run many rounds should
// hold a RoundScratch and call ComputeTerminalSecretInto instead.
func ComputeTerminalSecret(
	recv map[packet.ID][]Sym,
	ya *wire.YAnnounce,
	zs []*wire.ZPacket,
	sa *wire.SAnnounce,
) ([][]Sym, error) {
	return ComputeTerminalSecretInto(nil, recv, ya, zs, sa)
}

// ComputeTerminalSecretInto executes the terminal side of a round:
// reconstruct the y-packets of every class fully covered by the reception
// set — each as one fused multi-term kernel combination over the class's
// x-payloads — complete the rest from the z-packets, then form the
// s-packets, again one fused combination per row over the full y-set.
// It returns the round's group secret.
//
// The computation is two halves, exposed separately so a pipelined
// consumer (internal/keystream) can overlap them across rounds: the
// receive half (ReceiveRoundInto) runs as soon as the y-announcement
// arrives, while the round's z-packets are still in flight; the eliminate
// half (PartialRound.Eliminate) runs once the z-packets and the
// s-announcement are in. This composition is pinned byte-identical to the
// halves by TestSplitHalvesMatchCombined.
//
// sc may be nil (a throwaway scratch is used and the results are fresh);
// otherwise the returned rows alias sc's arena as documented on
// RoundScratch.
func ComputeTerminalSecretInto(
	sc *RoundScratch,
	recv map[packet.ID][]Sym,
	ya *wire.YAnnounce,
	zs []*wire.ZPacket,
	sa *wire.SAnnounce,
) ([][]Sym, error) {
	pr, err := ReceiveRoundInto(sc, recv, ya)
	if err != nil {
		return nil, err
	}
	return pr.Eliminate(zs, sa)
}

// PartialRound is the output of the receive half of a terminal round: the
// directly reconstructed y-packets, waiting for the erasure completion and
// privacy amplification of the eliminate half. It aliases the scratch it
// was built into; a scratch holds at most one live PartialRound (the next
// ReceiveRoundInto on the same scratch invalidates it).
type PartialRound struct {
	sc *RoundScratch
	// M is the round's y-space dimension (the number of announced
	// y-packet constructions).
	M int
}

// Known reports how many y-packets the receive half reconstructed
// directly. Known == M means the eliminate half will skip the erasure
// completion entirely (full reception fast path).
func (pr PartialRound) Known() int { return len(pr.sc.known) }

// ReceiveRoundInto is the receive half of a terminal round: reconstruct
// every y-packet whose class is fully covered by the reception set, one
// fused multi-term kernel combination per announced coefficient row. It
// needs only the x-payloads and the y-announcement — not the z-packets or
// the s-announcement — so a pipelined node runs it while the rest of the
// round's reliable broadcasts are still arriving.
//
// sc may be nil (a throwaway scratch is allocated). The scratch is reset:
// any previous PartialRound built into it is invalidated.
func ReceiveRoundInto(
	sc *RoundScratch,
	recv map[packet.ID][]Sym,
	ya *wire.YAnnounce,
) (PartialRound, error) {
	if sc == nil {
		sc = &RoundScratch{}
	}
	sc.reset()
	f := Field()
	// Reconstruct what we can of the y-packets.
	known := sc.known
	global := 0
	for _, batch := range ya.Classes {
		have := true
		for _, id := range batch.XIDs {
			if _, ok := recv[packet.ID(id)]; !ok {
				have = false
				break
			}
		}
		srcs := sc.srcs[:0]
		width := 0
		if have {
			// Gathered once per class; every coefficient row of the class
			// combines the same received x-payloads.
			for _, id := range batch.XIDs {
				srcs = append(srcs, recv[packet.ID(id)])
			}
			if len(srcs) > 0 {
				width = len(srcs[0])
			}
			sc.srcs = srcs
		}
		for r, row := range batch.Coeffs {
			if len(row) != len(batch.XIDs) {
				return PartialRound{}, fmt.Errorf("core: class coefficient row %d has %d entries for %d x-packets", r, len(row), len(batch.XIDs))
			}
			if have {
				// All x-payloads in a round share one symbol width, so the
				// combination is one fused kernel call over a reused
				// accumulator.
				y := sc.payload(width)
				f.AddMulSlices(y, srcs, row)
				known[global] = y
			}
			global++
		}
	}
	return PartialRound{sc: sc, M: global}, nil
}

// Eliminate is the eliminate half of a terminal round: order the
// z-packets, complete the y-packets the receive half could not reconstruct
// directly (the erasure elimination), then apply the announced privacy
// amplification to form the round's group secret. The returned rows alias
// the scratch arena the receive half was built into.
func (pr PartialRound) Eliminate(zs []*wire.ZPacket, sa *wire.SAnnounce) ([][]Sym, error) {
	sc, m := pr.sc, pr.M
	f := Field()
	known := sc.known

	// Order the z-packets by index and check coherence.
	zsorted := append(sc.zs[:0], zs...)
	sc.zs = zsorted
	sortZPackets(zsorted)
	coeffs := sc.zc[:0]
	payloads := sc.zp[:0]
	for j, zp := range zsorted {
		if int(zp.Index) != j {
			return nil, fmt.Errorf("core: z-packet indices not contiguous (saw %d at position %d)", zp.Index, j)
		}
		if len(zp.Coeffs) != m {
			return nil, fmt.Errorf("core: z-packet %d has %d coefficients, want %d", j, len(zp.Coeffs), m)
		}
		if len(zp.Payload)%2 != 0 {
			return nil, fmt.Errorf("core: z-packet %d has odd payload length", j)
		}
		coeffs = append(coeffs, zp.Coeffs)
		payloads = append(payloads, gf.Symbols16(zp.Payload))
	}
	sc.zc, sc.zp = coeffs, payloads

	var full [][]Sym
	if len(known) == m {
		// Full reception: every y-packet was reconstructed directly, so the
		// erasure completion (and its copies) is skipped entirely and the
		// scratch rows are used as-is.
		full = sc.full[:0]
		for i := 0; i < m; i++ {
			full = append(full, known[i])
		}
		sc.full = full
	} else {
		var err error
		full, err = mds.CompleteFromEquations(f, m, known, coeffs, payloads)
		if err != nil {
			return nil, fmt.Errorf("core: completing y-packets: %w", err)
		}
	}

	// Privacy amplification: s = announced coefficients times y.
	secret := sc.secret[:0]
	for i, row := range sa.Coeffs {
		if len(row) != m {
			return nil, fmt.Errorf("core: s-coefficient row %d has %d entries, want %d", i, len(row), m)
		}
		width := 0
		if m > 0 {
			width = len(full[0])
		}
		s := sc.payload(width)
		f.AddMulSlices(s, full, row)
		secret = append(secret, s)
	}
	sc.secret = secret
	return secret, nil
}

// sortZPackets orders z-packets by index. Insertion sort: z counts are
// small (M-L per round) and sort.Slice's reflection swapper allocates,
// which would break the round loop's zero-allocation steady state.
func sortZPackets(zs []*wire.ZPacket) {
	for i := 1; i < len(zs); i++ {
		for j := i; j > 0 && zs[j-1].Index > zs[j].Index; j-- {
			zs[j-1], zs[j] = zs[j], zs[j-1]
		}
	}
}

// SecretBytes flattens s-packet payload rows into the session secret byte
// string.
func SecretBytes(secret [][]Sym) []byte {
	var out []byte
	for _, row := range secret {
		out = append(out, gf.Bytes16(row)...)
	}
	return out
}

// PairwiseSecret returns terminal i's Phase-1 pair-wise secret with the
// round's leader: the concatenation of the y-packets the terminal can
// reconstruct ("their shared pair-wise secret is the concatenation of
// these packets"). The group protocol consumes these via Phase 2; the
// function exposes them directly for pair-oriented applications and the
// unicast baseline.
func PairwiseSecret(plan *Plan, y [][]Sym, terminal int) []byte {
	var out []byte
	for _, idx := range plan.TerminalYIndices(terminal) {
		out = append(out, gf.Bytes16(y[idx])...)
	}
	return out
}
