package core

import (
	"math/bits"
	"sort"

	"repro/internal/packet"
)

// Class is a reception class: the set of x-packets received by exactly the
// terminal subset Members (leader excluded — the leader transmitted the
// packets and trivially knows them all).
//
// Classes are the unit of Phase-1 privacy amplification: y-packets built
// within a class are reconstructible by every member, and because distinct
// classes cover disjoint x-packets, per-class wiretap security composes to
// joint security (see internal/mds).
type Class struct {
	Members uint32 // bitmask over terminal indices; leader bit always 0
	IDs     []packet.ID
}

// HasMember reports whether terminal i belongs to the class.
func (c Class) HasMember(i int) bool { return c.Members&(1<<uint(i)) != 0 }

// MemberCount returns the number of terminals in the class.
func (c Class) MemberCount() int { return bits.OnesCount32(c.Members) }

// Size returns the number of x-packets in the class.
func (c Class) Size() int { return len(c.IDs) }

// BuildClasses partitions x-packet IDs 0..numX-1 into reception classes
// from the terminals' acknowledgment reports. recv is indexed by absolute
// terminal index; recv[leader] is ignored. Packets received by no terminal
// are dropped (they can never carry shared secrecy). The result is
// deterministically ordered: larger member sets first (they are the most
// valuable — every member benefits and no z-repair is needed among them),
// ties broken by ascending bitmask.
func BuildClasses(n, leader, numX int, recv []*packet.IDSet) []Class {
	byMask := make(map[uint32][]packet.ID)
	for id := 0; id < numX; id++ {
		var mask uint32
		for i := 0; i < n; i++ {
			if i == leader {
				continue
			}
			if recv[i] != nil && recv[i].Has(packet.ID(id)) {
				mask |= 1 << uint(i)
			}
		}
		if mask == 0 {
			continue
		}
		byMask[mask] = append(byMask[mask], packet.ID(id))
	}
	out := make([]Class, 0, len(byMask))
	for mask, ids := range byMask {
		out = append(out, Class{Members: mask, IDs: ids})
	}
	sort.Slice(out, func(a, b int) bool {
		ca, cb := out[a].MemberCount(), out[b].MemberCount()
		if ca != cb {
			return ca > cb
		}
		return out[a].Members < out[b].Members
	})
	return out
}
