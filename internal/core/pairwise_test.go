package core

import (
	"math"
	"testing"

	"repro/internal/radio"
)

func TestPairwiseRoundOracle(t *testing.T) {
	cfg := Config{Terminals: 4, XPerRound: 60, PayloadBytes: 12, Estimator: Oracle{}, Seed: 6}
	med := mediumFor(4, 0.4, 44)
	res, err := RunPairwiseRound(cfg, med, []radio.NodeID{4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 0 || len(res.Pairs) != 3 {
		t.Fatalf("result shape: %+v", res)
	}
	for _, p := range res.Pairs {
		if p.SecretDims == 0 {
			t.Fatalf("terminal %d got no pair-wise secret", p.Terminal)
		}
		if len(p.Secret) != p.SecretDims*cfg.PayloadBytes {
			t.Fatalf("terminal %d secret size %d for %d dims", p.Terminal, len(p.Secret), p.SecretDims)
		}
		// Oracle budgets: every pair-wise secret is perfectly hidden.
		if p.UnknownDims != p.SecretDims || p.Reliability != 1 {
			t.Fatalf("terminal %d leaked: %d/%d", p.Terminal, p.UnknownDims, p.SecretDims)
		}
	}
	if res.BitsTransmitted <= 0 || res.Airtime <= 0 {
		t.Fatal("accounting missing")
	}
}

func TestPairwiseRoundSecretsDiffer(t *testing.T) {
	// Different terminals' pair-wise secrets must differ wherever they
	// include per-terminal pools (they may share the shared-class prefix).
	cfg := Config{Terminals: 3, XPerRound: 80, PayloadBytes: 8, Estimator: Oracle{}, Seed: 8}
	med := mediumFor(3, 0.5, 21)
	res, err := RunPairwiseRound(cfg, med, []radio.NodeID{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) == 2 &&
		res.Pairs[0].SecretDims > 0 && res.Pairs[1].SecretDims > 0 &&
		string(res.Pairs[0].Secret) == string(res.Pairs[1].Secret) {
		t.Fatal("distinct terminals share an identical pair-wise secret")
	}
}

func TestPairwiseRoundOmniscientEve(t *testing.T) {
	cfg := Config{Terminals: 3, XPerRound: 30, PayloadBytes: 8, Estimator: Oracle{}, Seed: 1}
	med := mediumFor(3, 0, 2)
	res, err := RunPairwiseRound(cfg, med, []radio.NodeID{3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Pairs {
		if p.SecretDims != 0 {
			t.Fatalf("terminal %d has a secret against omniscient Eve", p.Terminal)
		}
		if !math.IsNaN(p.Reliability) {
			t.Fatalf("terminal %d reliability = %v, want NaN", p.Terminal, p.Reliability)
		}
	}
}

func TestPairwiseRoundValidation(t *testing.T) {
	if _, err := RunPairwiseRound(Config{Terminals: 1, XPerRound: 5}, mediumFor(2, 0, 1), nil); err == nil {
		t.Fatal("bad config accepted")
	}
	cfg := Config{Terminals: 3, XPerRound: 10}
	if _, err := RunPairwiseRound(cfg, radio.NewMedium(radio.Uniform{}, 2, 1), nil); err == nil {
		t.Fatal("small medium accepted")
	}
	if _, err := RunPairwiseRound(cfg, mediumFor(3, 0, 1), []radio.NodeID{0}); err == nil {
		t.Fatal("eve collision accepted")
	}
}
