package core

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/eve"
	"repro/internal/gf"
	"repro/internal/mac"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/wire"
)

// RoundInfo summarizes one protocol round.
type RoundInfo struct {
	Round       int
	Leader      int
	NumX        int
	NumClasses  int     // classes that received a budget
	M           int     // y-packets
	L           int     // s-packets (secret size in packets)
	UnknownDims int     // secret packets Eve knows nothing about
	EveMissRate float64 // fraction of this round's x-packets Eve missed
	// EveCoveredTerminals counts non-leader terminals whose reception set
	// was a subset of Eve's — the paper's worst case, in which that
	// terminal can share nothing with the leader that Eve missed. §3.2
	// reports this "never happened in any of the experiments that we ran";
	// the rotation bench measures it.
	EveCoveredTerminals int
	// MaxEveOverlap is the largest fraction, over non-leader terminals,
	// of a terminal's received x-packets that Eve also received — how
	// close the round came to the worst case (1.0 = full coverage).
	MaxEveOverlap float64
	Agreed        bool // all terminals derived the leader's secret
}

// SessionResult is the outcome of a protocol session.
type SessionResult struct {
	// Secret is the concatenated group secret across all rounds. Every
	// terminal holds exactly these bytes.
	Secret []byte
	// SecretDims and UnknownDims count secret packets and the subset Eve
	// has zero information about (summed over rounds).
	SecretDims  int
	UnknownDims int
	// SecretBits is 8 * len(Secret).
	SecretBits int64
	// BitsTransmitted counts every bit any terminal transmitted during the
	// session, control traffic included — the denominator of the paper's
	// efficiency metric.
	BitsTransmitted int64
	// Airtime is the modeled 802.11 channel time the session consumed
	// (DIFS/backoff/preamble/ACK accounting at 1 Mbps; see internal/mac).
	Airtime time.Duration
	// Efficiency = SecretBits / BitsTransmitted.
	Efficiency float64
	// Reliability is the paper's §4 metric: Eve guesses each secret bit
	// with probability 2^-Reliability. NaN if no secret was generated.
	Reliability float64
	// EveKnownFraction = 1 - UnknownDims/SecretDims (NaN if no secret).
	EveKnownFraction float64
	// AllAgreed reports whether every terminal derived the same secret in
	// every productive round.
	AllAgreed bool
	// Rounds holds per-round details.
	Rounds []RoundInfo
}

// SecretKbpsAt converts efficiency into a secret bit rate for a given raw
// channel rate, as in the paper's "efficiency 0.038 at 1 Mbps yields 38
// secret Kbps".
func (r *SessionResult) SecretKbpsAt(channelBitsPerSec float64) float64 {
	return r.Efficiency * channelBitsPerSec / 1000
}

// SecretKbpsAirtime derives the secret rate from the modeled 802.11
// channel time instead of raw bit counts — the stricter conversion, since
// it charges preambles, inter-frame spacing and acknowledgments.
func (r *SessionResult) SecretKbpsAirtime() float64 {
	return mac.SecretRateKbps(r.SecretBits, r.Airtime)
}

// RunSession executes cfg over the medium. Terminals occupy medium nodes
// 0..n-1; eveNodes lists the eavesdropper's antenna node indices (usually
// one). Eve's antennas must not be terminal nodes.
func RunSession(cfg Config, med *radio.Medium, eveNodes []radio.NodeID) (*SessionResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Terminals
	if med.Nodes() < n {
		return nil, fmt.Errorf("core: medium has %d nodes, need %d terminals", med.Nodes(), n)
	}
	for _, ev := range eveNodes {
		if int(ev) < 0 || int(ev) >= med.Nodes() {
			return nil, fmt.Errorf("core: eve node %d outside medium", ev)
		}
		if int(ev) < n {
			return nil, fmt.Errorf("core: eve node %d collides with a terminal", ev)
		}
	}

	f := Field()
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &SessionResult{AllAgreed: true}
	startBits := med.BitsSent()
	acct := mac.NewAccountant(mac.Default())
	// One terminal-side scratch and reception map reused across every
	// (round, terminal) pair: the agreement check below re-runs the
	// terminal computation n-1 times per round, which without reuse
	// dominated the session's allocation profile.
	var tsc RoundScratch
	rm := make(map[packet.ID][]Sym)
	em := emitter{cfg.Tracer}
	// Phase-timing instruments resolve once per session; when no
	// registry is plumbed they are nil and every Observe below is a
	// single nil check, with the time.Now calls skipped entirely.
	var roundLat, xPhaseLat, computeLat *obs.Histogram
	if cfg.Obs.Enabled() {
		roundLat = cfg.Obs.Histogram("thinaird_engine_round_seconds",
			"Wall time of one protocol round (per node running the engine).", obs.LatencyBuckets)
		xPhaseLat = cfg.Obs.Histogram("thinaird_engine_xphase_seconds",
			"Wall time of the x-packet exchange phase of a round.", obs.LatencyBuckets)
		computeLat = cfg.Obs.Histogram("thinaird_engine_compute_seconds",
			"Wall time of a round's plan/eliminate/derive phase.", obs.LatencyBuckets)
	}
	timed := roundLat != nil

	for round := 0; round < cfg.Rounds; round++ {
		var roundT0 time.Time
		if timed {
			roundT0 = time.Now()
		}
		leader := 0
		if cfg.Rotate {
			leader = round % n
		}
		em.roundStart(round, leader, cfg.XPerRound)
		h := wire.Header{From: uint8(leader), Session: uint32(cfg.Seed), Round: uint16(round)}

		// Phase 1 step 1: transmit N x-packets, spread over the round's
		// interference slots.
		batch := packet.NewBatch(rng, cfg.XPerRound, cfg.PayloadBytes)
		xSym := make([][]Sym, cfg.XPerRound)
		recv := make([]*packet.IDSet, n)
		for i := range recv {
			recv[i] = packet.NewIDSet(cfg.XPerRound)
		}
		eveRecv := packet.NewIDSet(cfg.XPerRound)
		know := eve.NewKnowledge(f, cfg.XPerRound)

		perSlot := (cfg.XPerRound + cfg.SlotsPerRound - 1) / cfg.SlotsPerRound
		for i, pkt := range batch {
			if i > 0 && i%perSlot == 0 {
				med.AdvanceSlot()
			}
			xSym[i] = gf.Symbols16(pkt.Payload)
			xh := h
			xh.Type = wire.TypeX
			frame := wire.Marshal(&wire.XPacket{Header: xh, Seq: uint32(pkt.ID), Payload: pkt.Payload})
			acct.Data(len(frame))
			got := med.Broadcast(radio.NodeID(leader), len(frame)*8)
			for t := 0; t < n; t++ {
				if got[t] {
					recv[t].Add(pkt.ID)
				}
			}
			for _, ev := range eveNodes {
				if got[ev] {
					if !eveRecv.Has(pkt.ID) {
						eveRecv.Add(pkt.ID)
						know.AddUnit(int(pkt.ID), xSym[i])
					}
				}
			}
		}
		med.AdvanceSlot() // finish the round's slot rotation
		recv[leader] = fullIDSet(cfg.XPerRound)
		var computeT0 time.Time
		if timed {
			computeT0 = time.Now()
			xPhaseLat.Observe(computeT0.Sub(roundT0).Seconds())
		}
		em.xPhaseDone(round, eveRecv.Count())

		// Phase 1 step 2: reliable reception reports.
		for t := 0; t < n; t++ {
			if t == leader {
				continue
			}
			ah := h
			ah.Type = wire.TypeAck
			ah.From = uint8(t)
			frame := wire.Marshal(&wire.AckReport{Header: ah, NumX: uint32(cfg.XPerRound), Bitmap: recv[t].Words()})
			acct.Reliable(len(frame), n-1)
			med.BroadcastReliable(radio.NodeID(t), len(frame)*8)
		}

		// Plan the round.
		ctx := &EstimatorContext{
			Terminals: n,
			Leader:    leader,
			NumX:      cfg.XPerRound,
			Recv:      recv,
			Classes:   BuildClasses(n, leader, cfg.XPerRound, recv),
		}
		ctx.Classes = cfg.Pooling.Pools(ctx)
		if cfg.Estimator.NeedsOracle() {
			ctx.EveRecv = eveRecv
		}
		plan := BuildPlan(ctx, cfg.Estimator)
		em.planBuilt(round, len(plan.Classes), plan.M, plan.L,
			cfg.Estimator.Name(), cfg.Pooling.Name())

		info := RoundInfo{
			Round:       round,
			Leader:      leader,
			NumX:        cfg.XPerRound,
			NumClasses:  len(plan.Classes),
			M:           plan.M,
			L:           plan.L,
			EveMissRate: 1 - float64(eveRecv.Count())/float64(cfg.XPerRound),
			Agreed:      true,
		}
		for t := 0; t < n; t++ {
			if t == leader {
				continue
			}
			total := recv[t].Count()
			if total == 0 {
				info.EveCoveredTerminals++
				info.MaxEveOverlap = 1
				continue
			}
			missedByEve := recv[t].Diff(eveRecv).Count()
			if missedByEve == 0 {
				info.EveCoveredTerminals++
			}
			if ov := 1 - float64(missedByEve)/float64(total); ov > info.MaxEveOverlap {
				info.MaxEveOverlap = ov
			}
		}
		if plan.L == 0 {
			em.roundAborted(round)
			if timed {
				computeLat.ObserveSince(computeT0)
				roundLat.ObserveSince(roundT0)
			}
			res.Rounds = append(res.Rounds, info)
			continue
		}

		// Phase 1 steps 3-4 and Phase 2 on the leader.
		lr := ComputeLeaderRound(plan, xSym)
		ya := BuildYAnnounce(h, plan)
		yaFrame := wire.Marshal(ya)
		acct.Reliable(len(yaFrame), n-1)
		med.BroadcastReliable(radio.NodeID(leader), len(yaFrame)*8)
		zs := BuildZPackets(h, plan, lr.Z)
		for _, zp := range zs {
			zpFrame := wire.Marshal(zp)
			acct.Reliable(len(zpFrame), n-1)
			med.BroadcastReliable(radio.NodeID(leader), len(zpFrame)*8)
		}
		sa := BuildSAnnounce(h, plan)
		saFrame := wire.Marshal(sa)
		acct.Reliable(len(saFrame), n-1)
		med.BroadcastReliable(radio.NodeID(leader), len(saFrame)*8)

		// Eve overhears everything reliable: compose her view.
		yox := plan.YOverX()
		zc := plan.Redist.ZCoeffs()
		yoxRows := yox.RowViews()
		for j := 0; j < zc.Rows(); j++ {
			row := make([]Sym, cfg.XPerRound)
			f.AddMulSlices(row, yoxRows, zc.Row(j))
			know.AddCombo(row, lr.Z[j])
		}
		secretOverX := plan.Redist.SCoeffs().Mul(yox)
		u := know.UnknownSecretDims(secretOverX)
		info.UnknownDims = u

		// Terminals derive the secret; verify agreement.
		for t := 0; t < n; t++ {
			if t == leader {
				continue
			}
			clear(rm)
			for _, id := range recv[t].Slice() {
				rm[id] = xSym[int(id)]
			}
			sec, err := ComputeTerminalSecretInto(&tsc, rm, ya, zs, sa)
			if err != nil {
				return nil, fmt.Errorf("core: round %d terminal %d: %w", round, t, err)
			}
			if !bytes.Equal(SecretBytes(sec), SecretBytes(lr.Secret)) {
				info.Agreed = false
				res.AllAgreed = false
			}
		}

		em.secretDerived(round, plan.L, u, info.Agreed)
		if timed {
			computeLat.ObserveSince(computeT0)
			roundLat.ObserveSince(roundT0)
		}
		res.Secret = append(res.Secret, SecretBytes(lr.Secret)...)
		res.SecretDims += plan.L
		res.UnknownDims += u
		res.Rounds = append(res.Rounds, info)
	}

	res.SecretBits = int64(len(res.Secret)) * 8
	res.BitsTransmitted = med.BitsSent() - startBits
	res.Airtime = acct.Airtime()
	if res.BitsTransmitted > 0 {
		res.Efficiency = float64(res.SecretBits) / float64(res.BitsTransmitted)
	}
	res.Reliability = Reliability(res.SecretDims, res.UnknownDims)
	em.sessionDone(cfg.Rounds, len(res.Secret), res.Efficiency)
	if res.SecretDims > 0 {
		res.EveKnownFraction = 1 - float64(res.UnknownDims)/float64(res.SecretDims)
	} else {
		res.EveKnownFraction = math.NaN()
	}
	return res, nil
}

// secretOverXMatrix is exposed for white-box tests: the session's secret
// rows composed over the x-source space of a single-plan round.
func secretOverXMatrix(plan *Plan) *matrix.Matrix[Sym] {
	return plan.Redist.SCoeffs().Mul(plan.YOverX())
}
