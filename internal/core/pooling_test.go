package core

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
)

func TestExactPoolingPassthrough(t *testing.T) {
	recv := []*packet.IDSet{fullIDSet(4), setOf(0, 1), setOf(1, 2)}
	ctx := &EstimatorContext{Terminals: 3, Leader: 0, NumX: 4, Recv: recv}
	ctx.Classes = BuildClasses(3, 0, 4, recv)
	got := (ExactPooling{}).Pools(ctx)
	if len(got) != len(ctx.Classes) {
		t.Fatalf("exact pooling changed class count")
	}
	if (ExactPooling{}).Name() != "exact" {
		t.Fatal("name")
	}
}

func TestBalancedPoolingKeepsFatSharedClasses(t *testing.T) {
	// One big class shared by both terminals, plus fragments.
	ids := func(lo, hi int) []packet.ID {
		var out []packet.ID
		for i := lo; i < hi; i++ {
			out = append(out, packet.ID(i))
		}
		return out
	}
	shared := packet.FromSlice(ids(0, 20))
	r1 := shared.Clone()
	r1.Add(30)
	r1.Add(31)
	r2 := shared.Clone()
	r2.Add(40)
	recv := []*packet.IDSet{fullIDSet(41), r1, r2}
	ctx := &EstimatorContext{Terminals: 3, Leader: 0, NumX: 41, Recv: recv}
	ctx.Classes = BuildClasses(3, 0, 41, recv)
	pools := (BalancedPooling{MinPoolSize: 9}).Pools(ctx)
	// Expect: the 20-packet class kept with both members; fragments merged
	// into per-terminal pools.
	if pools[0].MemberCount() != 2 || pools[0].Size() != 20 {
		t.Fatalf("first pool %+v", pools[0])
	}
	var t1, t2 int
	for _, p := range pools[1:] {
		if p.MemberCount() != 1 {
			t.Fatalf("expected singleton pools after the shared one: %+v", p)
		}
		if p.HasMember(1) {
			t1 += p.Size()
		}
		if p.HasMember(2) {
			t2 += p.Size()
		}
	}
	if t1 != 2 || t2 != 1 {
		t.Fatalf("fragment totals t1=%d t2=%d", t1, t2)
	}
}

func TestBalancedPoolingPrefersSharedPairs(t *testing.T) {
	// All packets received by both terminals but in a class below the
	// threshold: with two non-leader terminals the single ring pair {1,2}
	// absorbs everything — one pooled packet serves both terminals.
	recv := []*packet.IDSet{fullIDSet(10), fullIDSet(10), fullIDSet(10)}
	ctx := &EstimatorContext{Terminals: 3, Leader: 0, NumX: 10, Recv: recv}
	ctx.Classes = BuildClasses(3, 0, 10, recv)
	pools := (BalancedPooling{MinPoolSize: 50, UsePairs: true}).Pools(ctx)
	if len(pools) != 1 {
		t.Fatalf("pools = %+v", pools)
	}
	if pools[0].Members != (1<<1)|(1<<2) || pools[0].Size() != 10 {
		t.Fatalf("pair pool wrong: %+v", pools[0])
	}
	if (BalancedPooling{UsePairs: true}).Name() != "balanced-pairs(9)" {
		t.Fatal("pairs name wrong")
	}
}

func TestBalancedPoolingSingletonModeBalancesLoad(t *testing.T) {
	// With pairs disabled the same packets must be split evenly between
	// per-terminal pools rather than all going to one.
	recv := []*packet.IDSet{fullIDSet(10), fullIDSet(10), fullIDSet(10)}
	ctx := &EstimatorContext{Terminals: 3, Leader: 0, NumX: 10, Recv: recv}
	ctx.Classes = BuildClasses(3, 0, 10, recv)
	pools := (BalancedPooling{MinPoolSize: 50}).Pools(ctx)
	if len(pools) != 2 {
		t.Fatalf("pools = %+v", pools)
	}
	if pools[0].Size() != 5 || pools[1].Size() != 5 {
		t.Fatalf("unbalanced pools: %d vs %d", pools[0].Size(), pools[1].Size())
	}
	if (BalancedPooling{}).Name() != "balanced(9)" {
		t.Fatal("default name wrong")
	}
}

func TestBalancedPoolingInvariant(t *testing.T) {
	// Invariant: every member of every pool received every packet in the
	// pool; pools partition a subset of the transmitted IDs.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		numX := 20 + rng.Intn(60)
		recv := make([]*packet.IDSet, n)
		recv[0] = fullIDSet(numX)
		for i := 1; i < n; i++ {
			recv[i] = packet.NewIDSet(numX)
			for id := 0; id < numX; id++ {
				if rng.Float64() < 0.6 {
					recv[i].Add(packet.ID(id))
				}
			}
		}
		ctx := &EstimatorContext{Terminals: n, Leader: 0, NumX: numX, Recv: recv}
		ctx.Classes = BuildClasses(n, 0, numX, recv)
		pools := (BalancedPooling{}).Pools(ctx)
		seen := packet.NewIDSet(numX)
		for _, p := range pools {
			if p.Members == 0 || p.Size() == 0 {
				t.Fatalf("trial %d: degenerate pool %+v", trial, p)
			}
			for _, id := range p.IDs {
				if seen.Has(id) {
					t.Fatalf("trial %d: id %d in two pools", trial, id)
				}
				seen.Add(id)
				for i := 0; i < n; i++ {
					if p.HasMember(i) && !recv[i].Has(id) {
						t.Fatalf("trial %d: pool member %d missing packet %d", trial, i, id)
					}
				}
			}
		}
		// Coverage: every packet received by at least one terminal is
		// pooled somewhere (balanced pooling never discards).
		union := packet.NewIDSet(numX)
		for i := 1; i < n; i++ {
			union = union.Union(recv[i])
		}
		if seen.Count() != union.Count() {
			t.Fatalf("trial %d: pooled %d of %d received packets", trial, seen.Count(), union.Count())
		}
	}
}

func TestBalancedPoolingName(t *testing.T) {
	if (BalancedPooling{MinPoolSize: 4}).Name() != "balanced(4)" {
		t.Fatal("explicit size name wrong")
	}
}
