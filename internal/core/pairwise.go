package core

import (
	"fmt"
	"math/rand"

	"repro/internal/eve"
	"repro/internal/gf"
	"repro/internal/mac"
	"repro/internal/matrix"
	"repro/internal/packet"
	"repro/internal/radio"
	"repro/internal/wire"
)

// PairInfo is one terminal's Phase-1 outcome: its pair-wise secret with
// the leader and the secrecy certificate for it.
type PairInfo struct {
	Terminal int
	// Secret is the concatenated y-packet payloads (the paper's §3.1:
	// "their shared pair-wise secret is the concatenation of these
	// packets").
	Secret []byte
	// SecretDims / UnknownDims count the terminal's y-packets and how
	// many of them Eve has zero information about.
	SecretDims  int
	UnknownDims int
	// Reliability is the paper's metric restricted to this pair.
	Reliability float64
}

// PairwiseResult is the outcome of a Phase-1-only session.
type PairwiseResult struct {
	Leader          int
	Pairs           []PairInfo
	BitsTransmitted int64
	Airtime         int64 // nanoseconds (see mac)
}

// RunPairwiseRound executes Phase 1 only — §3.1 of the paper, the
// pair-wise secret protocol — over one round: the leader transmits
// x-packets, collects reception reports, announces the y-packet
// constructions, and every terminal ends up with a pair-wise secret with
// the leader. No z/s traffic is sent, so distinct terminals' secrets stay
// un-redistributed (and overlap where reception classes are shared).
func RunPairwiseRound(cfg Config, med *radio.Medium, eveNodes []radio.NodeID) (*PairwiseResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Terminals
	if med.Nodes() < n {
		return nil, fmt.Errorf("core: medium has %d nodes, need %d terminals", med.Nodes(), n)
	}
	for _, ev := range eveNodes {
		if int(ev) < n || int(ev) >= med.Nodes() {
			return nil, fmt.Errorf("core: eve node %d invalid", ev)
		}
	}
	f := Field()
	rng := rand.New(rand.NewSource(cfg.Seed))
	startBits := med.BitsSent()
	acct := mac.NewAccountant(mac.Default())
	leader := 0
	h := wire.Header{From: uint8(leader), Session: uint32(cfg.Seed)}

	batch := packet.NewBatch(rng, cfg.XPerRound, cfg.PayloadBytes)
	xSym := make([][]Sym, cfg.XPerRound)
	recv := make([]*packet.IDSet, n)
	for i := range recv {
		recv[i] = packet.NewIDSet(cfg.XPerRound)
	}
	eveRecv := packet.NewIDSet(cfg.XPerRound)
	know := eve.NewKnowledge(f, cfg.XPerRound)

	perSlot := (cfg.XPerRound + cfg.SlotsPerRound - 1) / cfg.SlotsPerRound
	for i, pkt := range batch {
		if i > 0 && i%perSlot == 0 {
			med.AdvanceSlot()
		}
		xSym[i] = gf.Symbols16(pkt.Payload)
		xh := h
		xh.Type = wire.TypeX
		frame := wire.Marshal(&wire.XPacket{Header: xh, Seq: uint32(pkt.ID), Payload: pkt.Payload})
		acct.Data(len(frame))
		got := med.Broadcast(radio.NodeID(leader), len(frame)*8)
		for t := 0; t < n; t++ {
			if got[t] {
				recv[t].Add(pkt.ID)
			}
		}
		for _, ev := range eveNodes {
			if got[ev] && !eveRecv.Has(pkt.ID) {
				eveRecv.Add(pkt.ID)
				know.AddUnit(int(pkt.ID), xSym[i])
			}
		}
	}
	med.AdvanceSlot()
	recv[leader] = fullIDSet(cfg.XPerRound)
	for t := 1; t < n; t++ {
		ah := h
		ah.Type = wire.TypeAck
		ah.From = uint8(t)
		frame := wire.Marshal(&wire.AckReport{Header: ah, NumX: uint32(cfg.XPerRound), Bitmap: recv[t].Words()})
		acct.Reliable(len(frame), n-1)
		med.BroadcastReliable(radio.NodeID(t), len(frame)*8)
	}

	ctx := &EstimatorContext{
		Terminals: n, Leader: leader, NumX: cfg.XPerRound,
		Recv:    recv,
		Classes: BuildClasses(n, leader, cfg.XPerRound, recv),
	}
	ctx.Classes = cfg.Pooling.Pools(ctx)
	if cfg.Estimator.NeedsOracle() {
		ctx.EveRecv = eveRecv
	}
	plan := BuildPlan(ctx, cfg.Estimator)

	res := &PairwiseResult{Leader: leader}
	var y [][]Sym
	var yox *matrix.Matrix[Sym]
	if plan.M > 0 {
		y = ComputeY(plan, xSym)
		ya := BuildYAnnounce(h, plan)
		frame := wire.Marshal(ya)
		acct.Reliable(len(frame), n-1)
		med.BroadcastReliable(radio.NodeID(leader), len(frame)*8)
		yox = plan.YOverX()
	}
	for t := 1; t < n; t++ {
		info := PairInfo{Terminal: t}
		idx := plan.TerminalYIndices(t)
		info.SecretDims = len(idx)
		if len(idx) > 0 {
			info.Secret = PairwiseSecret(plan, y, t)
			rows := yox.SubRows(idx)
			info.UnknownDims = know.UnknownSecretDims(rows)
		}
		info.Reliability = Reliability(info.SecretDims, info.UnknownDims)
		res.Pairs = append(res.Pairs, info)
	}
	res.BitsTransmitted = med.BitsSent() - startBits
	res.Airtime = int64(acct.Airtime())
	return res, nil
}
