package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/packet"
)

func TestConfigValidateDefaults(t *testing.T) {
	cfg := Config{Terminals: 3, XPerRound: 20}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.PayloadBytes != DefaultPayloadBytes {
		t.Fatalf("PayloadBytes = %d", cfg.PayloadBytes)
	}
	if cfg.Rounds != 1 || cfg.SlotsPerRound != DefaultSlotsPerRound {
		t.Fatalf("defaults: rounds=%d slots=%d", cfg.Rounds, cfg.SlotsPerRound)
	}
	if cfg.Estimator == nil || cfg.Estimator.Name() != "leave-one-out" {
		t.Fatalf("default estimator = %v", cfg.Estimator)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	bad := []Config{
		{Terminals: 1, XPerRound: 10},
		{Terminals: 17, XPerRound: 10},
		{Terminals: 3, XPerRound: 0},
		{Terminals: 3, XPerRound: 99999},
		{Terminals: 3, XPerRound: 10, PayloadBytes: 7},
		{Terminals: 3, XPerRound: 10, Rounds: -1},
		{Terminals: 3, XPerRound: 10, SlotsPerRound: -2},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
			t.Errorf("case %d: err = %v, want ErrConfig", i, err)
		}
	}
}

func TestReliabilityMetric(t *testing.T) {
	if r := Reliability(10, 10); r != 1 {
		t.Fatalf("perfect secrecy r = %v", r)
	}
	if r := Reliability(10, 0); r != 0 {
		t.Fatalf("total leak r = %v", r)
	}
	if !math.IsNaN(Reliability(0, 0)) {
		t.Fatal("no secret should be NaN")
	}
	// The paper's n=6 example: r = 0.2 corresponds to guess prob 0.87.
	// With f = 2*0.87-1 = 0.74 known.
	r := Reliability(100, 26)
	if math.Abs(GuessProbability(r)-0.87) > 0.001 {
		t.Fatalf("r=%v -> guess prob %v, want ~0.87", r, GuessProbability(r))
	}
}

func TestReliabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown > secret did not panic")
		}
	}()
	Reliability(2, 3)
}

func setOf(ids ...packet.ID) *packet.IDSet { return packet.FromSlice(ids) }

func TestBuildClasses(t *testing.T) {
	// n=3, leader 0. Terminal 1 received {0,1,2,5}; terminal 2 {1,2,3}.
	recv := []*packet.IDSet{nil, setOf(0, 1, 2, 5), setOf(1, 2, 3)}
	cls := BuildClasses(3, 0, 6, recv)
	// Expected classes: {1,2} -> {1,2}; {1} -> {0,5}; {2} -> {3}. ID 4
	// received by nobody is dropped.
	if len(cls) != 3 {
		t.Fatalf("classes = %d: %+v", len(cls), cls)
	}
	if cls[0].Members != (1<<1)|(1<<2) || cls[0].Size() != 2 {
		t.Fatalf("first class %+v", cls[0])
	}
	if cls[1].Members != 1<<1 || len(cls[1].IDs) != 2 {
		t.Fatalf("second class %+v", cls[1])
	}
	if cls[2].Members != 1<<2 || cls[2].IDs[0] != 3 {
		t.Fatalf("third class %+v", cls[2])
	}
	if !cls[0].HasMember(1) || !cls[0].HasMember(2) || cls[0].HasMember(0) {
		t.Fatal("HasMember wrong")
	}
	if cls[0].MemberCount() != 2 {
		t.Fatal("MemberCount wrong")
	}
}

func TestBuildClassesEmptyAndLeaderIgnored(t *testing.T) {
	recv := []*packet.IDSet{setOf(0, 1), nil, nil}
	cls := BuildClasses(3, 0, 2, recv) // only the leader "received"
	if len(cls) != 0 {
		t.Fatalf("classes = %+v, want none", cls)
	}
}

func TestBinomialLowerQuantile(t *testing.T) {
	// Degenerate cases.
	if binomialLowerQuantile(0, 0.5, 0.05) != 0 {
		t.Fatal("c=0")
	}
	if binomialLowerQuantile(5, 0, 0.05) != 0 {
		t.Fatal("p=0")
	}
	if binomialLowerQuantile(5, 1, 0.05) != 5 {
		t.Fatal("p=1")
	}
	// c=1, p=0.5: P[Bin<1]=0.5 > 0.05 -> m=0.
	if got := binomialLowerQuantile(1, 0.5, 0.05); got != 0 {
		t.Fatalf("c=1 m=%d", got)
	}
	// c=20, p=0.5: CDF(4) = 0.0059, CDF(5) = 0.0207, CDF(6)=0.0577.
	// eps=0.05 -> largest m with CDF(m-1)<=eps is m=6.
	if got := binomialLowerQuantile(20, 0.5, 0.05); got != 6 {
		t.Fatalf("c=20 m=%d", got)
	}
	// Monotonicity in c and p.
	prev := 0
	for c := 1; c <= 60; c++ {
		m := binomialLowerQuantile(c, 0.4, 0.01)
		if m < prev {
			t.Fatalf("quantile not monotone in c at %d: %d < %d", c, m, prev)
		}
		prev = m
	}
	if binomialLowerQuantile(30, 0.6, 0.01) < binomialLowerQuantile(30, 0.3, 0.01) {
		t.Fatal("quantile not monotone in p")
	}
	// Large class: log-space recurrence must not underflow.
	m := binomialLowerQuantile(5000, 0.5, 0.01)
	if m < 2300 || m > 2500 {
		t.Fatalf("c=5000 m=%d, want near 2418", m)
	}
}

func TestOracleEstimator(t *testing.T) {
	ctx := &EstimatorContext{
		Terminals: 3, Leader: 0, NumX: 6,
		Recv:    []*packet.IDSet{fullIDSet(6), setOf(0, 1, 2, 5), setOf(1, 2, 3)},
		EveRecv: setOf(1, 3, 5),
	}
	ctx.Classes = BuildClasses(3, 0, 6, ctx.Recv)
	got := (Oracle{}).Budgets(ctx)
	// Classes: {1,2}:{1,2} -> Eve has 1, missed 2 -> 1.
	//          {1}:{0,5}   -> Eve has 5, missed 0 -> 1.
	//          {2}:{3}     -> Eve has 3 -> 0.
	want := []int{1, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("budgets = %v, want %v", got, want)
		}
	}
	if !(Oracle{}).NeedsOracle() || (Oracle{}).Name() != "oracle" {
		t.Fatal("oracle metadata wrong")
	}
}

func TestOraclePanicsWithoutEveRecv(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(Oracle{}).Budgets(&EstimatorContext{Classes: []Class{{Members: 1}}})
}

func TestMinMissRate(t *testing.T) {
	// Terminal 1 missed 2 of 6 (received 4); terminal 2 missed 3 of 6.
	ctx := &EstimatorContext{
		Terminals: 3, Leader: 0, NumX: 6,
		Recv: []*packet.IDSet{fullIDSet(6), setOf(0, 1, 2, 5), setOf(1, 2, 3)},
	}
	if got := minMissRate(ctx, 1); math.Abs(got-2.0/6) > 1e-12 {
		t.Fatalf("k=1 miss = %v", got)
	}
	// k=2: union {0,1,2,3,5} misses only packet 4 -> 1/6.
	if got := minMissRate(ctx, 2); math.Abs(got-1.0/6) > 1e-12 {
		t.Fatalf("k=2 miss = %v", got)
	}
	// k larger than available subsets clamps.
	if got := minMissRate(ctx, 5); math.Abs(got-1.0/6) > 1e-12 {
		t.Fatalf("k=5 miss = %v", got)
	}
}

func TestLeaveOneOutAndKSubsetBudgets(t *testing.T) {
	// Build a context with a big class so budgets are nonzero.
	ids := make([]packet.ID, 40)
	for i := range ids {
		ids[i] = packet.ID(i)
	}
	recv := []*packet.IDSet{fullIDSet(40), packet.FromSlice(ids[:30]), packet.FromSlice(ids[:30])}
	ctx := &EstimatorContext{Terminals: 3, Leader: 0, NumX: 40, Recv: recv}
	ctx.Classes = BuildClasses(3, 0, 40, recv)
	// Both terminals received exactly ids 0..29 -> one class {1,2} of 30,
	// miss rate 10/40 = 0.25 for each pretend-Eve.
	loo := LeaveOneOut{}
	b := loo.Budgets(ctx)
	if len(b) != 1 || b[0] <= 0 {
		t.Fatalf("LOO budgets = %v", b)
	}
	wantB := binomialLowerQuantile(30, 0.25, DefaultEpsilon)
	if b[0] != wantB {
		t.Fatalf("LOO budget = %d, want %d", b[0], wantB)
	}
	// Safety < 1 shrinks budgets.
	safe := LeaveOneOut{Safety: 0.5}
	bs := safe.Budgets(ctx)
	if bs[0] > b[0] {
		t.Fatalf("safety did not shrink budget: %d > %d", bs[0], b[0])
	}
	// KSubset(1) == LeaveOneOut.
	k1 := KSubset{K: 1}.Budgets(ctx)
	if k1[0] != b[0] {
		t.Fatalf("KSubset(1)=%v != LOO %v", k1, b)
	}
	// KSubset(2): union of both = ids 0..29, miss rate still 0.25 here
	// (identical receptions), budgets equal.
	k2 := KSubset{K: 2}.Budgets(ctx)
	if k2[0] != b[0] {
		t.Fatalf("KSubset(2)=%v", k2)
	}
	if (KSubset{K: 2}).Name() == "" || (LeaveOneOut{}).NeedsOracle() || (KSubset{}).NeedsOracle() {
		t.Fatal("estimator metadata wrong")
	}
}

func TestFixedDeltaBudgets(t *testing.T) {
	cls := []Class{
		{Members: 1, IDs: make([]packet.ID, 20)},
		{Members: 2, IDs: make([]packet.ID, 1)},
	}
	ctx := &EstimatorContext{Classes: cls}
	b := FixedDelta{Delta: 0.5}.Budgets(ctx)
	if len(b) != 2 {
		t.Fatalf("budgets = %v", b)
	}
	if b[0] <= 0 {
		t.Fatalf("large class budget = %d", b[0])
	}
	if b[1] != 0 {
		t.Fatalf("singleton class budget = %d, want 0 (coin-flip class)", b[1])
	}
	if (FixedDelta{Delta: 0.5}).Name() != "fixed-delta(0.50)" {
		t.Fatal("name wrong")
	}
}

func TestBuildPlanArithmetic(t *testing.T) {
	// Deterministic context where budgets are forced via Oracle.
	recv := []*packet.IDSet{fullIDSet(8), setOf(0, 1, 2, 3, 6), setOf(0, 1, 2, 3, 7)}
	ctx := &EstimatorContext{
		Terminals: 3, Leader: 0, NumX: 8,
		Recv:    recv,
		EveRecv: setOf(4, 5), // Eve missed everything the terminals share
	}
	ctx.Classes = BuildClasses(3, 0, 8, recv)
	plan := BuildPlan(ctx, Oracle{})
	// Classes: {1,2}: ids {0,1,2,3} budget 4 (Eve missed all 4);
	// {1}: {6} budget 1; {2}: {7} budget 1.
	if plan.M != 6 {
		t.Fatalf("M = %d, want 6", plan.M)
	}
	if plan.Mi[1] != 5 || plan.Mi[2] != 5 || plan.Mi[0] != 6 {
		t.Fatalf("Mi = %v", plan.Mi)
	}
	if plan.L != 5 {
		t.Fatalf("L = %d, want 5", plan.L)
	}
	if plan.Redist == nil || plan.Redist.M() != 6 || plan.Redist.L() != 5 {
		t.Fatal("redistribution code wrong")
	}
	// Terminal y-index coverage.
	y1 := plan.TerminalYIndices(1)
	if len(y1) != 5 {
		t.Fatalf("terminal 1 indices = %v", y1)
	}
	y0 := plan.TerminalYIndices(0) // leader has all
	if len(y0) != 6 {
		t.Fatalf("leader indices = %v", y0)
	}
	// YOverX shape and support.
	yox := plan.YOverX()
	if yox.Rows() != 6 || yox.Cols() != 8 {
		t.Fatalf("YOverX %dx%d", yox.Rows(), yox.Cols())
	}
	// Rows of the {1}-class (id 6) must be supported only on column 6.
	found := false
	for r := 0; r < 6; r++ {
		nonzero := []int{}
		for c := 0; c < 8; c++ {
			if yox.At(r, c) != 0 {
				nonzero = append(nonzero, c)
			}
		}
		if len(nonzero) == 1 && nonzero[0] == 6 {
			found = true
		}
	}
	if !found {
		t.Fatal("no y-row supported on x6 alone")
	}
}

func TestBuildPlanZeroBudgetsAbandonsRound(t *testing.T) {
	recv := []*packet.IDSet{fullIDSet(4), setOf(0, 1), setOf(2, 3)}
	ctx := &EstimatorContext{
		Terminals: 3, Leader: 0, NumX: 4,
		Recv:    recv,
		EveRecv: fullIDSet(4), // Eve got everything
	}
	ctx.Classes = BuildClasses(3, 0, 4, recv)
	plan := BuildPlan(ctx, Oracle{})
	if plan.L != 0 || plan.M != 0 || plan.Redist != nil {
		t.Fatalf("plan = %+v, want abandoned round", plan)
	}
}

func TestBuildPlanUncoveredTerminalForcesLZero(t *testing.T) {
	// Terminal 2 received nothing: L must be 0 even though terminal 1 has
	// a fat class.
	recv := []*packet.IDSet{fullIDSet(6), setOf(0, 1, 2, 3, 4, 5), packet.NewIDSet(6)}
	ctx := &EstimatorContext{
		Terminals: 3, Leader: 0, NumX: 6,
		Recv:    recv,
		EveRecv: packet.NewIDSet(6),
	}
	ctx.Classes = BuildClasses(3, 0, 6, recv)
	plan := BuildPlan(ctx, Oracle{})
	if plan.L != 0 {
		t.Fatalf("L = %d, want 0", plan.L)
	}
	if plan.M == 0 {
		t.Fatal("M should be positive (terminal 1 has budget)")
	}
}

func TestPairwiseSecret(t *testing.T) {
	recv := []*packet.IDSet{fullIDSet(8), setOf(0, 1, 2, 3, 6), setOf(0, 1, 2, 3, 7)}
	ctx := &EstimatorContext{
		Terminals: 3, Leader: 0, NumX: 8,
		Recv:    recv,
		EveRecv: setOf(4, 5),
	}
	ctx.Classes = BuildClasses(3, 0, 8, recv)
	plan := BuildPlan(ctx, Oracle{})
	xSym := make([][]Sym, 8)
	for i := range xSym {
		xSym[i] = []Sym{Sym(i + 1), Sym(100 + i)}
	}
	y := ComputeY(plan, xSym)
	s1 := PairwiseSecret(plan, y, 1)
	s2 := PairwiseSecret(plan, y, 2)
	if len(s1) != plan.Mi[1]*4 || len(s2) != plan.Mi[2]*4 {
		t.Fatalf("pairwise sizes: %d, %d (Mi=%v)", len(s1), len(s2), plan.Mi)
	}
	// The leader's "pairwise secret with itself" is all M y-packets.
	if len(PairwiseSecret(plan, y, 0)) != plan.M*4 {
		t.Fatal("leader pairwise size wrong")
	}
	// Shared class y-packets appear in both terminals' secrets (prefix of
	// both, since the shared class sorts first).
	shared := plan.Budgets[0] * 4
	if string(s1[:shared]) != string(s2[:shared]) {
		t.Fatal("shared y-packets differ between terminals")
	}
	// Per-terminal tails differ (distinct singleton classes).
	if string(s1) == string(s2) {
		t.Fatal("pairwise secrets identical despite distinct classes")
	}
}
