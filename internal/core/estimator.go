package core

import (
	"fmt"
	"math"

	"repro/internal/packet"
)

// EstimatorContext carries everything an estimator may inspect when
// budgeting a round.
type EstimatorContext struct {
	Terminals int
	Leader    int
	NumX      int
	// Recv holds each terminal's reception set. Recv[Leader] contains all
	// transmitted IDs (the leader knows its own packets).
	Recv []*packet.IDSet
	// Classes are the reception classes of the round, in BuildClasses
	// order.
	Classes []Class
	// EveRecv is Eve's true reception set. It is populated ONLY when the
	// estimator declares NeedsOracle; real deployments cannot observe it.
	EveRecv *packet.IDSet
}

// Estimator lower-bounds, per reception class, how many x-packets Eve
// missed — the quantity the paper's §3.3 calls "a good lower bound for the
// number of x-packets shared with Ti that Eve has missed". The returned
// slice is the y-packet budget m_T for each class (same order as
// ctx.Classes); budget m_T means the class contributes m_T y-packets that
// are jointly secret provided Eve really missed at least m_T of the class.
type Estimator interface {
	Name() string
	// NeedsOracle reports whether the estimator requires Eve's true
	// receptions (analysis only).
	NeedsOracle() bool
	Budgets(ctx *EstimatorContext) []int
}

// Oracle budgets every class with Eve's true miss count. It is the
// paper's Figure-1 idealization ("Alice guesses exactly the number of
// x-packets ... missed by Eve") and the upper bound in the estimator
// ablation. Secrecy under Oracle is perfect by construction.
type Oracle struct{}

// Name implements Estimator.
func (Oracle) Name() string { return "oracle" }

// NeedsOracle implements Estimator.
func (Oracle) NeedsOracle() bool { return true }

// Budgets implements Estimator.
func (Oracle) Budgets(ctx *EstimatorContext) []int {
	if ctx.EveRecv == nil {
		panic("core: Oracle estimator without EveRecv")
	}
	out := make([]int, len(ctx.Classes))
	for k, cl := range ctx.Classes {
		missed := 0
		for _, id := range cl.IDs {
			if !ctx.EveRecv.Has(id) {
				missed++
			}
		}
		out[k] = missed
	}
	return out
}

// FixedDelta assumes Eve misses each packet independently with probability
// at least Delta — the guarantee the artificial interference aims to
// provide ("Eve misses some minimum fraction of the packets ...
// independently from the naturally occurring channel conditions"). Budgets
// are conservative binomial quantiles so that the probability that ANY
// class got a budget exceeding Eve's true misses is at most Epsilon.
type FixedDelta struct {
	Delta   float64 // per-packet miss probability floor for Eve
	Epsilon float64 // per-pool over-budgeting probability; 0 means DefaultEpsilon
}

// DefaultEpsilon is the default probability, per pool, that the budget
// exceeds Eve's true misses in the pool. It bounds the expected leaked
// fraction of the secret (each failing pool leaks at most its budget),
// and with the default pooling it keeps most experiments perfectly
// secret, reproducing the paper's "50th percentile reliability is always
// 1" behaviour while still leaving the small-n tail the paper observed.
const DefaultEpsilon = 0.02

// Name implements Estimator.
func (e FixedDelta) Name() string { return fmt.Sprintf("fixed-delta(%.2f)", e.Delta) }

// NeedsOracle implements Estimator.
func (FixedDelta) NeedsOracle() bool { return false }

// Budgets implements Estimator.
func (e FixedDelta) Budgets(ctx *EstimatorContext) []int {
	return quantileBudgets(ctx.Classes, e.Delta, epsilonOrDefault(e.Epsilon))
}

// LeaveOneOut is the paper's empirical estimator: pretend each terminal in
// turn is Eve. Since the group knows every terminal's reception set, it
// can compute each pretend-Eve's miss rate exactly and adopt the SMALLEST
// one as Eve's assumed per-packet miss probability — conservative against
// any adversary whose channel is no better than the best-placed terminal.
// The fewer the terminals, the fewer pretend-Eves, the weaker the
// estimate; this is precisely why the paper's Figure 2 reliability
// degrades as n shrinks.
type LeaveOneOut struct {
	Epsilon float64 // per-pool over-budgeting probability; 0 means DefaultEpsilon
	Safety  float64 // multiplier on the estimated miss rate; 0 means 1.0
	// Conditional evaluates each pretend-Eve on every pool's own packets
	// instead of on the whole round. It sounds strictly better but is
	// usually WORSE under correlated channels: pools contain exactly the
	// packets their members received, Eve is statistically exchangeable
	// with the pretend-Eves on that conditional quantity, and the minimum
	// of a handful of exchangeable draws under-protects. Kept as an
	// explicit knob because the ablation bench demonstrates the trap.
	Conditional bool
}

// Name implements Estimator.
func (e LeaveOneOut) Name() string {
	if e.Conditional {
		return "leave-one-out-cond"
	}
	return "leave-one-out"
}

// NeedsOracle implements Estimator.
func (LeaveOneOut) NeedsOracle() bool { return false }

// Budgets implements Estimator.
func (e LeaveOneOut) Budgets(ctx *EstimatorContext) []int {
	return subsetBudgets(ctx, 1, e.Safety, epsilonOrDefault(e.Epsilon), e.Conditional)
}

// KSubset generalizes LeaveOneOut to an Eve with K antennas (§3.3: "to
// secure against an adversary that has as many antennas as k terminals, we
// can pretend that each set of k terminals together are Eve"). A K-antenna
// pretend-Eve receives the union of the K terminals' receptions; the
// estimator adopts the smallest miss rate over all K-subsets.
type KSubset struct {
	K       int
	Epsilon float64
	Safety  float64
	// Conditional: see LeaveOneOut.Conditional.
	Conditional bool
}

// Name implements Estimator.
func (e KSubset) Name() string {
	if e.Conditional {
		return fmt.Sprintf("k-subset-cond(%d)", e.K)
	}
	return fmt.Sprintf("k-subset(%d)", e.K)
}

// NeedsOracle implements Estimator.
func (KSubset) NeedsOracle() bool { return false }

// Budgets implements Estimator.
func (e KSubset) Budgets(ctx *EstimatorContext) []int {
	k := e.K
	if k < 1 {
		k = 1
	}
	return subsetBudgets(ctx, k, e.Safety, epsilonOrDefault(e.Epsilon), e.Conditional)
}

// subsetBudgets implements the pretend-Eve estimators. The default mode
// adopts the smallest ROUND-WIDE miss rate of any k-subset pretend-Eve and
// budgets every pool with a conservative binomial quantile at that rate.
// Conditional mode instead evaluates each pretend-Eve on each pool's own
// packets (see LeaveOneOut.Conditional for why that backfires under
// correlated channels); pools whose membership covers every non-leader
// terminal have no outside pretend-Eve and fall back to the global rate —
// the residual inaccuracy the paper blames for reliability loss at
// small n.
func subsetBudgets(ctx *EstimatorContext, k int, safety, eps float64, conditional bool) []int {
	out := make([]int, len(ctx.Classes))
	globalDelta := minMissRate(ctx, k)
	for i, cl := range ctx.Classes {
		delta := globalDelta
		if conditional {
			if d := classMissRate(ctx, cl, k); !math.IsNaN(d) {
				delta = d
			}
		}
		if safety > 0 {
			delta *= safety
		}
		out[i] = binomialLowerQuantile(cl.Size(), delta, eps)
	}
	return out
}

// classMissRate returns the smallest fraction of the pool's packets missed
// by any k-subset of non-leader terminals outside the pool's membership,
// or NaN when every non-leader terminal is a member.
func classMissRate(ctx *EstimatorContext, cl Class, k int) float64 {
	var outside []int
	for i := 0; i < ctx.Terminals; i++ {
		if i != ctx.Leader && !cl.HasMember(i) {
			outside = append(outside, i)
		}
	}
	if len(outside) == 0 {
		return math.NaN()
	}
	if k > len(outside) {
		k = len(outside)
	}
	best := math.Inf(1)
	subset := make([]int, k)
	var walk func(start, depth int)
	walk = func(start, depth int) {
		if depth == k {
			missed := 0
			for _, id := range cl.IDs {
				got := false
				for _, j := range subset {
					if ctx.Recv[j] != nil && ctx.Recv[j].Has(id) {
						got = true
						break
					}
				}
				if !got {
					missed++
				}
			}
			if r := float64(missed) / float64(cl.Size()); r < best {
				best = r
			}
			return
		}
		for i := start; i < len(outside); i++ {
			subset[depth] = outside[i]
			walk(i+1, depth+1)
		}
	}
	walk(0, 0)
	return best
}

func epsilonOrDefault(eps float64) float64 {
	if eps <= 0 {
		return DefaultEpsilon
	}
	return eps
}

// minMissRate returns the smallest fraction of the round's x-packets
// missed by any k-subset of non-leader terminals (union of receptions).
func minMissRate(ctx *EstimatorContext, k int) float64 {
	var others []int
	for i := 0; i < ctx.Terminals; i++ {
		if i != ctx.Leader {
			others = append(others, i)
		}
	}
	if k > len(others) {
		k = len(others)
	}
	if k == 0 || ctx.NumX == 0 {
		return 0
	}
	best := math.Inf(1)
	// Enumerate k-subsets of others.
	subset := make([]int, k)
	var walk func(start, depth int)
	walk = func(start, depth int) {
		if depth == k {
			union := packet.NewIDSet(ctx.NumX)
			for _, i := range subset {
				if ctx.Recv[i] != nil {
					union = union.Union(ctx.Recv[i])
				}
			}
			miss := 1 - float64(union.Count())/float64(ctx.NumX)
			if miss < best {
				best = miss
			}
			return
		}
		for i := start; i < len(others); i++ {
			subset[depth] = others[i]
			walk(i+1, depth+1)
		}
	}
	walk(0, 0)
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// quantileBudgets assigns each pool the largest budget m such that a
// Binomial(poolSize, delta) variable — Eve's miss count in the pool if
// she loses packets independently with probability delta — is at least m
// with probability 1 - eps. The tolerance is per pool: a pool whose
// budget overshoots leaks at most its own budget, so eps directly bounds
// the expected leaked fraction of the round's secret.
func quantileBudgets(classes []Class, delta, eps float64) []int {
	out := make([]int, len(classes))
	for k, cl := range classes {
		out[k] = binomialLowerQuantile(cl.Size(), delta, eps)
	}
	return out
}

// binomialLowerQuantile returns the largest m in [0, c] with
// P[Binomial(c, p) < m] <= eps, i.e. the number of Eve misses we can count
// on except with probability eps.
func binomialLowerQuantile(c int, p, eps float64) int {
	if c <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return c
	}
	// Walk the CDF with the pmf recurrence kept in log space so that large
	// classes cannot underflow the early terms (underflow in a linear
	// recurrence would zero the whole CDF and silently grant the maximum
	// budget).
	logPmf := float64(c) * math.Log1p(-p)
	logRatio := math.Log(p) - math.Log1p(-p)
	cdf := 0.0
	m := 0
	for k := 0; k <= c; k++ {
		cdf += math.Exp(logPmf)
		// P[Bin < k+1] = CDF(k): budget k+1 is safe iff CDF(k) <= eps.
		if cdf <= eps {
			m = k + 1
		} else {
			break
		}
		logPmf += math.Log(float64(c-k)) - math.Log(float64(k+1)) + logRatio
	}
	if m > c {
		m = c
	}
	return m
}
