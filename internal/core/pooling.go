package core

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/packet"
)

// Pooling decides how the round's x-packets are grouped into the pools
// that Phase 1 privacy-amplifies. A pool is a Class whose Members may be
// any subset of the terminals that received all of its packets; secrecy
// composes across pools because pools have disjoint x-supports.
//
// The trade-off the policies navigate: exact reception-signature classes
// maximize sharing (one y-packet can serve many terminals), but with many
// terminals the signatures fragment the x-packets into classes too small
// for a conservative budget, starving the round. Balanced pooling keeps
// the large shared classes and re-aggregates the fragments into fat
// two-member (ring pair) or single-member pools, trading z-packet repair
// traffic for budgetable mass.
type Pooling interface {
	Name() string
	// Pools regroups ctx.Classes (the exact reception classes) into the
	// pools to be budgeted. Every returned pool must satisfy the
	// invariant: every member received every packet in the pool.
	Pools(ctx *EstimatorContext) []Class
}

// ExactPooling budgets the reception classes as they are. This is the
// cleanest construction (maximal sharing) and what the Figure-1 fluid
// analysis assumes; it is the right choice for small groups and for
// oracle-budgeted analysis.
type ExactPooling struct{}

// Name implements Pooling.
func (ExactPooling) Name() string { return "exact" }

// Pools implements Pooling.
func (ExactPooling) Pools(ctx *EstimatorContext) []Class { return ctx.Classes }

// DefaultMinPoolSize is the class size below which BalancedPooling
// re-aggregates fragments. With Eve miss rates around one half, classes
// of this size are the smallest that can earn a conservative budget.
const DefaultMinPoolSize = 9

// BalancedPooling keeps exact classes of at least MinPoolSize packets that
// serve at least two terminals, and redistributes every other x-packet
// into aggregate pools:
//
//   - per-terminal pools, each fragment growing the pool of the currently
//     least-covered terminal (default); or
//   - with UsePairs, preferentially into "ring pair" pools — the
//     non-leader terminals are arranged in a ring and each adjacent pair
//     is a candidate member set, so one pooled packet serves two
//     terminals.
//
// Pair pooling raises nominal efficiency but selects packets received by
// BOTH members, and under correlated channels (the rotating jammer) such
// doubly-selected packets are systematically easier for Eve too, eroding
// the estimator's safety margin. The allocation ablation quantifies this;
// per-terminal pooling is the default.
type BalancedPooling struct {
	// MinPoolSize is the smallest exact class kept as-is; 0 means
	// DefaultMinPoolSize.
	MinPoolSize int
	// UsePairs enables ring-pair aggregation for fragments.
	UsePairs bool
}

// Name implements Pooling.
func (b BalancedPooling) Name() string {
	if b.UsePairs {
		return fmt.Sprintf("balanced-pairs(%d)", b.minSize())
	}
	return fmt.Sprintf("balanced(%d)", b.minSize())
}

func (b BalancedPooling) minSize() int {
	if b.MinPoolSize <= 0 {
		return DefaultMinPoolSize
	}
	return b.MinPoolSize
}

// Pools implements Pooling.
func (b BalancedPooling) Pools(ctx *EstimatorContext) []Class {
	minSize := b.minSize()
	var kept []Class
	load := make([]int, ctx.Terminals) // pooled packets covering each terminal
	type frag struct {
		id      packet.ID
		members uint32
	}
	var frags []frag
	for _, cl := range ctx.Classes {
		if cl.Size() >= minSize && cl.MemberCount() >= 2 {
			kept = append(kept, cl)
			for i := 0; i < ctx.Terminals; i++ {
				if cl.HasMember(i) {
					load[i] += cl.Size()
				}
			}
			continue
		}
		for _, id := range cl.IDs {
			frags = append(frags, frag{id: id, members: cl.Members})
		}
	}
	sort.Slice(frags, func(a, b int) bool { return frags[a].id < frags[b].id })

	// Candidate member sets: ring pairs over the non-leader terminals (in
	// index order), then singletons.
	var candidates []uint32
	if b.UsePairs {
		var ring []int
		for i := 0; i < ctx.Terminals; i++ {
			if i != ctx.Leader {
				ring = append(ring, i)
			}
		}
		if len(ring) >= 3 {
			for k := range ring {
				candidates = append(candidates, 1<<uint(ring[k])|1<<uint(ring[(k+1)%len(ring)]))
			}
		} else if len(ring) == 2 {
			candidates = append(candidates, 1<<uint(ring[0])|1<<uint(ring[1]))
		}
	}
	for i := 0; i < ctx.Terminals; i++ {
		if i != ctx.Leader {
			candidates = append(candidates, 1<<uint(i))
		}
	}

	pools := make(map[uint32][]packet.ID)
	for _, fr := range frags {
		best := uint32(0)
		bestKey := [3]int{1 << 30, 0, 1 << 30} // minLoad, -size, mask
		for _, cand := range candidates {
			if cand&fr.members != cand {
				continue // some candidate member missed this packet
			}
			minLoad := 1 << 30
			for i := 0; i < ctx.Terminals; i++ {
				if cand&(1<<uint(i)) != 0 && load[i] < minLoad {
					minLoad = load[i]
				}
			}
			key := [3]int{minLoad, -bits.OnesCount32(cand), int(cand)}
			if best == 0 || key[0] < bestKey[0] ||
				(key[0] == bestKey[0] && key[1] < bestKey[1]) ||
				(key[0] == bestKey[0] && key[1] == bestKey[1] && key[2] < bestKey[2]) {
				best, bestKey = cand, key
			}
		}
		if best == 0 {
			continue // unreachable: classes never have empty membership
		}
		pools[best] = append(pools[best], fr.id)
		for i := 0; i < ctx.Terminals; i++ {
			if best&(1<<uint(i)) != 0 {
				load[i]++
			}
		}
	}

	out := append([]Class(nil), kept...)
	masks := make([]uint32, 0, len(pools))
	for m := range pools {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(a, b int) bool { return masks[a] < masks[b] })
	for _, m := range masks {
		out = append(out, Class{Members: m, IDs: pools[m]})
	}
	sort.Slice(out, func(a, b int) bool {
		ca, cb := bits.OnesCount32(out[a].Members), bits.OnesCount32(out[b].Members)
		if ca != cb {
			return ca > cb
		}
		if out[a].Members != out[b].Members {
			return out[a].Members < out[b].Members
		}
		return len(out[a].IDs) > len(out[b].IDs)
	})
	return out
}
