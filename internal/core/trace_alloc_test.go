package core

import (
	"testing"

	"repro/internal/trace"
)

// TestDisabledTracerEmitZeroAlloc gates the "zero-cost default" claim
// in internal/trace: with no tracer configured, every emit site in the
// engine is a nil check and nothing else — in particular no attrs map
// is built.
func TestDisabledTracerEmitZeroAlloc(t *testing.T) {
	em := emitter{}
	if n := testing.AllocsPerRun(100, func() {
		em.roundStart(3, 1, 90)
		em.xPhaseDone(3, 42)
		em.planBuilt(3, 4, 5, 2, "leave-one-out", "balanced")
		em.roundAborted(3)
		em.secretDerived(3, 2, 2, true)
		em.sessionDone(4, 64, 0.038)
	}); n != 0 {
		t.Errorf("nil-tracer emit path allocates %v times per run; want 0", n)
	}
}

// The enabled path must still deliver every event with its attrs.
func TestEmitterDeliversEventsWhenEnabled(t *testing.T) {
	log := trace.NewLog()
	em := emitter{log}
	em.roundStart(0, 1, 90)
	em.planBuilt(0, 4, 5, 2, "oracle", "balanced")
	em.sessionDone(1, 64, 0.038)
	events := log.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	if events[0].Kind != trace.KindRoundStart || events[0].Attrs["leader"] != 1 {
		t.Fatalf("round_start event = %+v", events[0])
	}
	if events[1].Attrs["estimator"] != "oracle" {
		t.Fatalf("plan_built event = %+v", events[1])
	}
	if events[2].Attrs["secret_bytes"] != 64 {
		t.Fatalf("session_done event = %+v", events[2])
	}
}
