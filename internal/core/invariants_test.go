package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

// The paper's joint-secrecy argument rests on structural invariants
// of the plan; this file checks them over randomized reception patterns
// with testing/quick driving the randomness.

type planInvariantInput struct {
	Seed int64
}

func buildRandomPlan(seed int64, est Estimator, pooling Pooling) (*Plan, *EstimatorContext) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(6)
	numX := 10 + rng.Intn(80)
	recv := make([]*packet.IDSet, n)
	recv[0] = fullIDSet(numX)
	for i := 1; i < n; i++ {
		recv[i] = packet.NewIDSet(numX)
		keep := 0.2 + 0.7*rng.Float64()
		for id := 0; id < numX; id++ {
			if rng.Float64() < keep {
				recv[i].Add(packet.ID(id))
			}
		}
	}
	eveRecv := packet.NewIDSet(numX)
	for id := 0; id < numX; id++ {
		if rng.Float64() < 0.5 {
			eveRecv.Add(packet.ID(id))
		}
	}
	ctx := &EstimatorContext{
		Terminals: n, Leader: 0, NumX: numX,
		Recv:    recv,
		Classes: BuildClasses(n, 0, numX, recv),
		EveRecv: eveRecv,
	}
	ctx.Classes = pooling.Pools(ctx)
	return BuildPlan(ctx, est), ctx
}

func checkPlanInvariants(t *testing.T, plan *Plan, ctx *EstimatorContext) {
	t.Helper()
	// M is the sum of budgets; every budget fits its pool.
	sum := 0
	for k, b := range plan.Budgets {
		if b <= 0 || b > plan.Classes[k].Size() {
			t.Fatalf("budget %d out of range for pool of %d", b, plan.Classes[k].Size())
		}
		sum += b
	}
	if sum != plan.M {
		t.Fatalf("M = %d but budgets sum to %d", plan.M, sum)
	}
	// Mi bookkeeping: leader has all; L = min over non-leader terminals.
	if plan.M > 0 && plan.Mi[ctx.Leader] != plan.M {
		t.Fatalf("leader Mi = %d, want %d", plan.Mi[ctx.Leader], plan.M)
	}
	minMi := plan.M
	for i := 0; i < ctx.Terminals; i++ {
		if i == ctx.Leader {
			continue
		}
		if got := len(plan.TerminalYIndices(i)); got != plan.Mi[i] {
			t.Fatalf("terminal %d indices %d != Mi %d", i, got, plan.Mi[i])
		}
		if plan.Mi[i] < minMi {
			minMi = plan.Mi[i]
		}
	}
	if plan.M > 0 && plan.L != minMi {
		t.Fatalf("L = %d, want min Mi %d", plan.L, minMi)
	}
	// THE load-bearing invariant: the y-over-x matrix always has full row
	// rank M — per-pool Cauchy blocks on disjoint supports cannot
	// interfere — so the (z, s) bijection argument applies whenever the
	// per-pool wiretap guarantees hold.
	if plan.M > 0 {
		yox := plan.YOverX()
		if r := yox.Rank(); r != plan.M {
			t.Fatalf("YOverX rank %d, want %d", r, plan.M)
		}
	}
}

func TestPlanInvariantsQuick(t *testing.T) {
	cfgs := []struct {
		est  Estimator
		pool Pooling
	}{
		{Oracle{}, ExactPooling{}},
		{Oracle{}, BalancedPooling{}},
		{LeaveOneOut{}, BalancedPooling{}},
		{LeaveOneOut{}, BalancedPooling{UsePairs: true}},
		{FixedDelta{Delta: 0.5}, ExactPooling{}},
		{KSubset{K: 2}, BalancedPooling{}},
	}
	err := quick.Check(func(in planInvariantInput) bool {
		for _, c := range cfgs {
			plan, ctx := buildRandomPlan(in.Seed, c.est, c.pool)
			checkPlanInvariants(t, plan, ctx)
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOracleBudgetsNeverExceedTrueMisses(t *testing.T) {
	// Soundness of the oracle: for every pool, budget <= Eve's true
	// misses within the pool (this is what makes oracle sessions
	// provably perfect).
	err := quick.Check(func(in planInvariantInput) bool {
		plan, ctx := buildRandomPlan(in.Seed, Oracle{}, BalancedPooling{})
		for k, cl := range plan.Classes {
			missed := 0
			for _, id := range cl.IDs {
				if !ctx.EveRecv.Has(id) {
					missed++
				}
			}
			if plan.Budgets[k] > missed {
				t.Fatalf("oracle budget %d > true misses %d", plan.Budgets[k], missed)
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLeaderRoundLinearConsistency(t *testing.T) {
	// The computed payloads must satisfy the announced linear relations:
	// y = YOverX · x, z = Zc · y, s = Sc · y — checked numerically on
	// random instances. This ties the wire announcements to the actual
	// contents, which is what Eve's tracker assumes.
	err := quick.Check(func(in planInvariantInput) bool {
		plan, _ := buildRandomPlan(in.Seed, Oracle{}, BalancedPooling{})
		if plan.L == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(in.Seed ^ 0x5eed))
		xSym := make([][]Sym, plan.NumX)
		for i := range xSym {
			xSym[i] = []Sym{Sym(rng.Intn(65536)), Sym(rng.Intn(65536))}
		}
		lr := ComputeLeaderRound(plan, xSym)
		f := Field()
		yox := plan.YOverX()
		for j := 0; j < plan.M; j++ {
			want := make([]Sym, 2)
			for c := 0; c < plan.NumX; c++ {
				if v := yox.At(j, c); v != 0 {
					f.AddMulSlice(want, xSym[c], v)
				}
			}
			if want[0] != lr.Y[j][0] || want[1] != lr.Y[j][1] {
				t.Fatalf("y[%d] does not match YOverX · x", j)
			}
		}
		zc := plan.Redist.ZCoeffs()
		for j := range lr.Z {
			want := make([]Sym, 2)
			for yi := 0; yi < plan.M; yi++ {
				if v := zc.At(j, yi); v != 0 {
					f.AddMulSlice(want, lr.Y[yi], v)
				}
			}
			if want[0] != lr.Z[j][0] || want[1] != lr.Z[j][1] {
				t.Fatalf("z[%d] does not match Zc · y", j)
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}
