package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/wire"
)

// buildTestRound assembles one leader round (plan, payloads, wire
// messages) over numX x-packets with every terminal receiving rcv.
func buildTestRound(t *testing.T, seed int64, numX int, rcv func(term int) *packet.IDSet) (*LeaderRound, *wire.YAnnounce, []*wire.ZPacket, *wire.SAnnounce, [][]Sym) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recv := []*packet.IDSet{fullIDSet(numX), rcv(1), rcv(2)}
	ctx := &EstimatorContext{
		Terminals: 3, Leader: 0, NumX: numX,
		Recv:    recv,
		EveRecv: setOf(1, 3),
	}
	ctx.Classes = BuildClasses(3, 0, numX, recv)
	plan := BuildPlan(ctx, Oracle{})
	if plan.L == 0 {
		t.Fatal("test round produced no secret; adjust the shape")
	}
	xSym := make([][]Sym, numX)
	for i := range xSym {
		xSym[i] = make([]Sym, 32)
		for j := range xSym[i] {
			xSym[i][j] = Sym(rng.Intn(65536))
		}
	}
	lr := ComputeLeaderRound(plan, xSym)
	h := wire.Header{From: 0, Session: 9, Round: 1}
	ya := BuildYAnnounce(h, plan)
	zs := BuildZPackets(h, plan, lr.Z)
	sa := BuildSAnnounce(h, plan)
	return lr, ya, zs, sa, xSym
}

// TestComputeTerminalSecretIntoMatchesFresh pins scratch reuse: the same
// scratch driven through differently-shaped rounds (full reception, then
// partial with erasure completion, then full again) must reproduce the
// scratch-free results bit for bit.
func TestComputeTerminalSecretIntoMatchesFresh(t *testing.T) {
	var sc RoundScratch
	shapes := []func(term int) *packet.IDSet{
		func(int) *packet.IDSet { return fullIDSet(8) },
		func(term int) *packet.IDSet {
			if term == 1 {
				return setOf(0, 1, 2, 3, 4, 5)
			}
			return setOf(2, 3, 4, 5, 6, 7)
		},
		func(int) *packet.IDSet { return fullIDSet(8) },
	}
	for round, shape := range shapes {
		lr, ya, zs, sa, xSym := buildTestRound(t, int64(40+round), 8, shape)
		for term := 1; term <= 2; term++ {
			rm := make(map[packet.ID][]Sym)
			for _, id := range shape(term).Slice() {
				rm[id] = xSym[int(id)]
			}
			want, err := ComputeTerminalSecret(rm, ya, zs, sa)
			if err != nil {
				t.Fatalf("round %d term %d fresh: %v", round, term, err)
			}
			got, err := ComputeTerminalSecretInto(&sc, rm, ya, zs, sa)
			if err != nil {
				t.Fatalf("round %d term %d scratch: %v", round, term, err)
			}
			if !bytes.Equal(SecretBytes(got), SecretBytes(want)) {
				t.Fatalf("round %d term %d: scratch secret differs from fresh", round, term)
			}
			if !bytes.Equal(SecretBytes(got), SecretBytes(lr.Secret)) {
				t.Fatalf("round %d term %d: secret differs from leader", round, term)
			}
		}
	}
}

// TestSplitHalvesMatchCombined pins the receive/eliminate split the
// pipelined keystream engine drives: ReceiveRoundInto followed by
// Eliminate must be byte-identical to ComputeTerminalSecretInto, and the
// halves must interleave across rounds (receive r, receive r+1 in a
// second scratch, then eliminate both) without cross-talk — the
// ping-pong-scratch pattern a terminal uses when round r+1's packet
// exchange overlaps round r's elimination.
func TestSplitHalvesMatchCombined(t *testing.T) {
	shape := func(term int) *packet.IDSet {
		if term == 1 {
			return setOf(0, 1, 2, 3, 4, 5)
		}
		return setOf(2, 3, 4, 5, 6, 7)
	}
	type roundMsgs struct {
		ya *wire.YAnnounce
		zs []*wire.ZPacket
		sa *wire.SAnnounce
		rm map[packet.ID][]Sym
	}
	build := func(seed int64) roundMsgs {
		_, ya, zs, sa, xSym := buildTestRound(t, seed, 8, shape)
		rm := make(map[packet.ID][]Sym)
		for _, id := range shape(1).Slice() {
			rm[id] = xSym[int(id)]
		}
		return roundMsgs{ya: ya, zs: zs, sa: sa, rm: rm}
	}
	r0, r1 := build(91), build(92)

	// Sequential: halves == combined, per round.
	for i, r := range []roundMsgs{r0, r1} {
		var combined, halves RoundScratch
		want, err := ComputeTerminalSecretInto(&combined, r.rm, r.ya, r.zs, r.sa)
		if err != nil {
			t.Fatalf("round %d combined: %v", i, err)
		}
		pr, err := ReceiveRoundInto(&halves, r.rm, r.ya)
		if err != nil {
			t.Fatalf("round %d receive half: %v", i, err)
		}
		got, err := pr.Eliminate(r.zs, r.sa)
		if err != nil {
			t.Fatalf("round %d eliminate half: %v", i, err)
		}
		if !bytes.Equal(SecretBytes(got), SecretBytes(want)) {
			t.Fatalf("round %d: split halves diverge from combined", i)
		}
	}

	// Interleaved: receive both rounds before eliminating either, each on
	// its own scratch, eliminations in reverse order.
	var want0, want1 RoundScratch
	w0, _ := ComputeTerminalSecretInto(&want0, r0.rm, r0.ya, r0.zs, r0.sa)
	w1, _ := ComputeTerminalSecretInto(&want1, r1.rm, r1.ya, r1.zs, r1.sa)
	var sc [2]RoundScratch
	pr0, err := ReceiveRoundInto(&sc[0], r0.rm, r0.ya)
	if err != nil {
		t.Fatal(err)
	}
	pr1, err := ReceiveRoundInto(&sc[1], r1.rm, r1.ya)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := pr1.Eliminate(r1.zs, r1.sa)
	if err != nil {
		t.Fatal(err)
	}
	g0, err := pr0.Eliminate(r0.zs, r0.sa)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(SecretBytes(g0), SecretBytes(w0)) || !bytes.Equal(SecretBytes(g1), SecretBytes(w1)) {
		t.Fatal("interleaved halves diverge from sequential combined results")
	}
	if pr0.Known() == 0 || pr1.Known() == 0 {
		t.Fatal("receive half reported no known packets")
	}
}

// TestRoundCombinationSteadyStateAllocs is the zero-allocation gate on
// the terminal round hot path: with a warm RoundScratch and full
// reception (the common case — erasure completion has its own solver
// allocations by design), the whole y-reconstruction + s-combination
// pipeline must not allocate: no [][]Sym header churn, no per-round
// nibble tables, no sort scratch.
func TestRoundCombinationSteadyStateAllocs(t *testing.T) {
	_, ya, zs, sa, xSym := buildTestRound(t, 77, 8, func(int) *packet.IDSet { return fullIDSet(8) })
	rm := make(map[packet.ID][]Sym)
	for i := 0; i < 8; i++ {
		rm[packet.ID(i)] = xSym[i]
	}
	var sc RoundScratch
	run := func() {
		if _, err := ComputeTerminalSecretInto(&sc, rm, ya, zs, sa); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Errorf("steady-state round combination allocates %v times per run, want 0", n)
	}
}
