package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/wire"
)

// buildTestRound assembles one leader round (plan, payloads, wire
// messages) over numX x-packets with every terminal receiving rcv.
func buildTestRound(t *testing.T, seed int64, numX int, rcv func(term int) *packet.IDSet) (*LeaderRound, *wire.YAnnounce, []*wire.ZPacket, *wire.SAnnounce, [][]Sym) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	recv := []*packet.IDSet{fullIDSet(numX), rcv(1), rcv(2)}
	ctx := &EstimatorContext{
		Terminals: 3, Leader: 0, NumX: numX,
		Recv:    recv,
		EveRecv: setOf(1, 3),
	}
	ctx.Classes = BuildClasses(3, 0, numX, recv)
	plan := BuildPlan(ctx, Oracle{})
	if plan.L == 0 {
		t.Fatal("test round produced no secret; adjust the shape")
	}
	xSym := make([][]Sym, numX)
	for i := range xSym {
		xSym[i] = make([]Sym, 32)
		for j := range xSym[i] {
			xSym[i][j] = Sym(rng.Intn(65536))
		}
	}
	lr := ComputeLeaderRound(plan, xSym)
	h := wire.Header{From: 0, Session: 9, Round: 1}
	ya := BuildYAnnounce(h, plan)
	zs := BuildZPackets(h, plan, lr.Z)
	sa := BuildSAnnounce(h, plan)
	return lr, ya, zs, sa, xSym
}

// TestComputeTerminalSecretIntoMatchesFresh pins scratch reuse: the same
// scratch driven through differently-shaped rounds (full reception, then
// partial with erasure completion, then full again) must reproduce the
// scratch-free results bit for bit.
func TestComputeTerminalSecretIntoMatchesFresh(t *testing.T) {
	var sc RoundScratch
	shapes := []func(term int) *packet.IDSet{
		func(int) *packet.IDSet { return fullIDSet(8) },
		func(term int) *packet.IDSet {
			if term == 1 {
				return setOf(0, 1, 2, 3, 4, 5)
			}
			return setOf(2, 3, 4, 5, 6, 7)
		},
		func(int) *packet.IDSet { return fullIDSet(8) },
	}
	for round, shape := range shapes {
		lr, ya, zs, sa, xSym := buildTestRound(t, int64(40+round), 8, shape)
		for term := 1; term <= 2; term++ {
			rm := make(map[packet.ID][]Sym)
			for _, id := range shape(term).Slice() {
				rm[id] = xSym[int(id)]
			}
			want, err := ComputeTerminalSecret(rm, ya, zs, sa)
			if err != nil {
				t.Fatalf("round %d term %d fresh: %v", round, term, err)
			}
			got, err := ComputeTerminalSecretInto(&sc, rm, ya, zs, sa)
			if err != nil {
				t.Fatalf("round %d term %d scratch: %v", round, term, err)
			}
			if !bytes.Equal(SecretBytes(got), SecretBytes(want)) {
				t.Fatalf("round %d term %d: scratch secret differs from fresh", round, term)
			}
			if !bytes.Equal(SecretBytes(got), SecretBytes(lr.Secret)) {
				t.Fatalf("round %d term %d: secret differs from leader", round, term)
			}
		}
	}
}

// TestRoundCombinationSteadyStateAllocs is the zero-allocation gate on
// the terminal round hot path: with a warm RoundScratch and full
// reception (the common case — erasure completion has its own solver
// allocations by design), the whole y-reconstruction + s-combination
// pipeline must not allocate: no [][]Sym header churn, no per-round
// nibble tables, no sort scratch.
func TestRoundCombinationSteadyStateAllocs(t *testing.T) {
	_, ya, zs, sa, xSym := buildTestRound(t, 77, 8, func(int) *packet.IDSet { return fullIDSet(8) })
	rm := make(map[packet.ID][]Sym)
	for i := 0; i < 8; i++ {
		rm[packet.ID(i)] = xSym[i]
	}
	var sc RoundScratch
	run := func() {
		if _, err := ComputeTerminalSecretInto(&sc, rm, ya, zs, sa); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the scratch
	if n := testing.AllocsPerRun(100, run); n != 0 {
		t.Errorf("steady-state round combination allocates %v times per run, want 0", n)
	}
}
