package core

import (
	"repro/internal/matrix"
	"repro/internal/mds"
	"repro/internal/packet"
)

// Plan captures the leader's coding decisions for one round: which
// reception classes contribute y-packets, with what budgets, and the
// Phase-2 redistribution code derived from the per-terminal coverage.
type Plan struct {
	// Classes are the reception classes that received a nonzero budget,
	// in BuildClasses order.
	Classes []Class
	// Budgets[k] is m_T for Classes[k].
	Budgets []int
	// Extractors[k] is the wiretap extractor whose coefficient rows define
	// Classes[k]'s y-packets.
	Extractors []*mds.WiretapExtractor[Sym]
	// Offsets[k] is the global index of Classes[k]'s first y-packet.
	Offsets []int
	// M is the total number of y-packets.
	M int
	// Mi[i] is terminal i's y-packet count M_i (the size of its pair-wise
	// secret with the leader). Mi[leader] == M.
	Mi []int
	// L = min over non-leader terminals of Mi: the group secret size.
	L int
	// Leader is the round's leader terminal.
	Leader int
	// NumX is the number of x-packets the round transmitted.
	NumX int
	// Redist is the Phase-2 code; nil when the round yields no secret.
	Redist *mds.RedistributionCode[Sym]
}

// BuildPlan runs the estimator and assembles the round plan. A plan with
// L == 0 means the round is abandoned after the acknowledgment phase (the
// paper's worst case: some terminal shares nothing with the leader that
// Eve provably missed); no y/z/s messages are sent for such rounds.
func BuildPlan(ctx *EstimatorContext, est Estimator) *Plan {
	budgets := est.Budgets(ctx)
	if len(budgets) != len(ctx.Classes) {
		panic("core: estimator returned wrong budget count")
	}
	p := &Plan{Leader: ctx.Leader, NumX: ctx.NumX, Mi: make([]int, ctx.Terminals)}
	for k, cl := range ctx.Classes {
		b := budgets[k]
		if b <= 0 {
			continue
		}
		if b > cl.Size() {
			b = cl.Size()
		}
		p.Classes = append(p.Classes, cl)
		p.Budgets = append(p.Budgets, b)
	}
	f := Field()
	for k, cl := range p.Classes {
		p.Offsets = append(p.Offsets, p.M)
		p.Extractors = append(p.Extractors, mds.NewWiretapExtractor(f, p.Budgets[k], cl.Size()))
		p.M += p.Budgets[k]
		for i := 0; i < ctx.Terminals; i++ {
			if cl.HasMember(i) {
				p.Mi[i] += p.Budgets[k]
			}
		}
	}
	p.Mi[ctx.Leader] = p.M
	p.L = p.M
	for i := 0; i < ctx.Terminals; i++ {
		if i != ctx.Leader && p.Mi[i] < p.L {
			p.L = p.Mi[i]
		}
	}
	if p.M == 0 {
		p.L = 0
	}
	if p.L > 0 {
		p.Redist = mds.NewRedistributionCode(f, p.M, p.L)
	}
	return p
}

// TerminalYIndices returns the global indices of the y-packets terminal i
// can reconstruct directly from its received x-packets.
func (p *Plan) TerminalYIndices(i int) []int {
	var out []int
	for k, cl := range p.Classes {
		if cl.HasMember(i) || i == p.Leader {
			for r := 0; r < p.Budgets[k]; r++ {
				out = append(out, p.Offsets[k]+r)
			}
		}
	}
	return out
}

// YOverX composes the y-packet definitions down to the x-packet source
// space: an M x NumX matrix whose row j gives y_j as a combination of the
// round's x-packets. Eve's tracker and the secrecy certificate work in
// this space.
func (p *Plan) YOverX() *matrix.Matrix[Sym] {
	f := Field()
	m := matrix.New(f, p.M, p.NumX)
	for k, cl := range p.Classes {
		coeffs := p.Extractors[k].Coeffs()
		for r := 0; r < coeffs.Rows(); r++ {
			dst := m.Row(p.Offsets[k] + r)
			for c, id := range cl.IDs {
				dst[int(id)] = coeffs.At(r, c)
			}
		}
	}
	return m
}

// xSymbolsForClass gathers the payload symbol rows of a class's x-packets.
func xSymbolsForClass(cl Class, xSym [][]Sym) [][]Sym {
	out := make([][]Sym, len(cl.IDs))
	for i, id := range cl.IDs {
		out[i] = xSym[int(id)]
	}
	return out
}

// receivedSet builds the full ID set 0..n-1 (the leader's own view).
func fullIDSet(n int) *packet.IDSet {
	s := packet.NewIDSet(n)
	for i := 0; i < n; i++ {
		s.Add(packet.ID(i))
	}
	return s
}
