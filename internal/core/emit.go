package core

import "repro/internal/trace"

// emitter wraps the session's optional tracer so every emit site pays
// exactly one nil check when tracing is off. The attrs maps are built
// strictly after that check — the engine's "zero-cost default" claim
// depends on it, and trace_alloc_test.go gates the disabled path at
// zero allocations.
type emitter struct{ t trace.Tracer }

func (e emitter) roundStart(round, leader, numX int) {
	if e.t == nil {
		return
	}
	e.t.Emit(trace.Event{Kind: trace.KindRoundStart, Round: round, Attrs: map[string]any{
		"leader": leader, "num_x": numX,
	}})
}

func (e emitter) xPhaseDone(round, eveReceived int) {
	if e.t == nil {
		return
	}
	e.t.Emit(trace.Event{Kind: trace.KindXPhaseDone, Round: round, Attrs: map[string]any{
		"eve_received": eveReceived,
	}})
}

func (e emitter) planBuilt(round, pools, m, l int, estimator, pooling string) {
	if e.t == nil {
		return
	}
	e.t.Emit(trace.Event{Kind: trace.KindPlanBuilt, Round: round, Attrs: map[string]any{
		"pools": pools, "m": m, "l": l,
		"estimator": estimator, "pooling": pooling,
	}})
}

func (e emitter) roundAborted(round int) {
	if e.t == nil {
		return
	}
	e.t.Emit(trace.Event{Kind: trace.KindRoundAborted, Round: round})
}

func (e emitter) secretDerived(round, secretPackets, eveUnknown int, agreed bool) {
	if e.t == nil {
		return
	}
	e.t.Emit(trace.Event{Kind: trace.KindSecretDerived, Round: round, Attrs: map[string]any{
		"secret_packets": secretPackets, "eve_unknown": eveUnknown, "agreed": agreed,
	}})
}

func (e emitter) sessionDone(rounds, secretBytes int, efficiency float64) {
	if e.t == nil {
		return
	}
	e.t.Emit(trace.Event{Kind: trace.KindSessionDone, Round: rounds, Attrs: map[string]any{
		"secret_bytes": secretBytes, "efficiency": efficiency,
	}})
}
