package wire

import (
	"math/rand"
	"testing"
)

// FuzzUnmarshal: the decoder must never panic or over-allocate, whatever
// bytes arrive — Eve is on this network, and the UDP bus feeds the parser
// raw datagrams. Runs its seed corpus under plain `go test`; use
// `go test -fuzz=FuzzUnmarshal ./internal/wire` to explore further.
func FuzzUnmarshal(f *testing.F) {
	// Seed with valid frames of every type plus degenerate inputs.
	f.Add([]byte{})
	f.Add([]byte{0x54, 0x41})
	f.Add(Marshal(&XPacket{Header: Header{Type: TypeX}, Seq: 1, Payload: []byte{1, 2, 3}}))
	f.Add(Marshal(&AckReport{Header: Header{Type: TypeAck}, NumX: 9, Bitmap: []uint64{7}}))
	f.Add(Marshal(&YAnnounce{Header: Header{Type: TypeYAnnounce}, Classes: []ClassBatch{
		{XIDs: []uint32{1, 2}, Coeffs: [][]uint16{{3, 4}}},
	}}))
	f.Add(Marshal(&ZPacket{Header: Header{Type: TypeZ}, Index: 1, Coeffs: []uint16{5}, Payload: []byte{6}}))
	f.Add(Marshal(&SAnnounce{Header: Header{Type: TypeSAnnounce}, Coeffs: [][]uint16{{1}}}))
	f.Add(Marshal(&Beacon{Header: Header{Type: TypeBeacon}, Kind: BeaconEndOfX, Value: 90}))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err == nil && m == nil {
			t.Fatal("nil message without error")
		}
	})
}

func TestUnmarshalRandomBytesNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1337))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(256)
		b := make([]byte, n)
		rng.Read(b)
		// Bias some trials toward plausible frames: right magic/version,
		// valid type byte, garbage after.
		if trial%3 == 0 && n >= 4 {
			b[0], b[1], b[2] = 0x54, 0x41, Version
			b[3] = byte(1 + rng.Intn(6))
		}
		_, _ = Unmarshal(b) // must not panic
	}
}

func TestUnmarshalMutatedValidFrames(t *testing.T) {
	// Take valid frames, apply random mutations, fix the CRC so parsing
	// reaches the body decoders, and require clean errors (or clean
	// successes) — never panics.
	rng := rand.New(rand.NewSource(7331))
	frames := [][]byte{
		Marshal(&YAnnounce{Header: Header{Type: TypeYAnnounce}, Classes: []ClassBatch{
			{XIDs: []uint32{1, 2, 3}, Coeffs: [][]uint16{{3, 4, 5}, {6, 7, 8}}},
		}}),
		Marshal(&ZPacket{Header: Header{Type: TypeZ}, Index: 1, Coeffs: []uint16{5, 6}, Payload: []byte{6, 7, 8}}),
		Marshal(&AckReport{Header: Header{Type: TypeAck}, NumX: 64, Bitmap: []uint64{1, 2}}),
	}
	for trial := 0; trial < 3000; trial++ {
		src := frames[trial%len(frames)]
		b := append([]byte(nil), src...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			b[rng.Intn(len(b)-4)] = byte(rng.Intn(256))
		}
		inner := b[:len(b)-4]
		crc := crc32ChecksumIEEE(inner)
		b[len(b)-4] = byte(crc >> 24)
		b[len(b)-3] = byte(crc >> 16)
		b[len(b)-2] = byte(crc >> 8)
		b[len(b)-1] = byte(crc)
		_, _ = Unmarshal(b) // must not panic
	}
}
