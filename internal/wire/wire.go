// Package wire defines the protocol's message formats and a compact,
// versioned binary codec for them.
//
// Five message types flow during a round, mirroring §3 of the paper:
//
//	XPacket    — an x-packet broadcast (unreliable, subject to erasure)
//	AckReport  — a terminal's reception report (reliable; step 2 of Phase 1)
//	YAnnounce  — identities/coefficients of the y-packets (reliable; step 3)
//	ZPacket    — one z-packet: coefficients AND contents (reliable; Phase 2 step 1)
//	SAnnounce  — coefficients of the s-packets (reliable; Phase 2 step 3)
//
// Reliable messages are assumed overheard by Eve in full, per the paper's
// conservative model. The codec is deliberately self-contained: fixed
// big-endian header, length-prefixed vectors, and a trailing CRC-32 so the
// UDP transport can reject corrupted datagrams.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Type enumerates message types.
type Type uint8

// Message type values. They appear on the wire and must not be renumbered.
const (
	TypeX Type = iota + 1
	TypeAck
	TypeYAnnounce
	TypeZ
	TypeSAnnounce
	TypeBeacon
)

// String returns the mnemonic name of a message type.
func (t Type) String() string {
	switch t {
	case TypeX:
		return "X"
	case TypeAck:
		return "ACK"
	case TypeYAnnounce:
		return "Y-ANNOUNCE"
	case TypeZ:
		return "Z"
	case TypeSAnnounce:
		return "S-ANNOUNCE"
	case TypeBeacon:
		return "BEACON"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Version is the current codec version byte.
const Version = 1

const (
	magic0 = 0x54 // 'T'
	magic1 = 0x41 // 'A' — "Thin Air"
)

// Header carries the fields common to every message.
type Header struct {
	Type    Type
	From    uint8  // index of the sending terminal
	Session uint32 // session identifier
	Round   uint16 // round number within the session
}

// Message is implemented by all wire messages.
type Message interface {
	Hdr() *Header
	// body appends the type-specific payload encoding.
	body(dst []byte) []byte
	// parseBody decodes the type-specific payload.
	parseBody(r *reader) error
}

// XPacket is one unreliable x-packet broadcast.
type XPacket struct {
	Header
	Seq     uint32 // x-packet ID within the round
	Payload []byte
}

// AckReport is a terminal's reliable report of which x-packets it received.
type AckReport struct {
	Header
	NumX   uint32   // number of x-packets transmitted this round
	Bitmap []uint64 // reception bitmap, ceil(NumX/64) words
}

// ClassBatch is one reception class's y-packet construction: the x-IDs in
// the class and the m_T x c_T coefficient matrix over them.
type ClassBatch struct {
	XIDs   []uint32
	Coeffs [][]uint16 // rows: one per y-packet in the batch
}

// YAnnounce publishes the y-packet constructions for a round.
type YAnnounce struct {
	Header
	Classes []ClassBatch
}

// ZPacket carries one z-packet: its coefficient row over the y-packets and
// its contents.
type ZPacket struct {
	Header
	Index   uint16   // z-packet index, 0..M-L-1
	Coeffs  []uint16 // length M
	Payload []byte
}

// SAnnounce publishes the s-packet coefficient rows (L rows of length M).
type SAnnounce struct {
	Header
	Coeffs [][]uint16
}

// BeaconKind enumerates the coordination signals of the asynchronous node
// runtime. They carry no payload knowledge (Eve learns nothing linear
// from them).
type BeaconKind uint8

// Beacon kinds.
const (
	// BeaconEndOfX marks the end of the round's x-packet transmissions;
	// Value carries the number of packets transmitted.
	BeaconEndOfX BeaconKind = iota + 1
	// BeaconRoundAbort tells terminals the round yields no secret
	// (L = 0); Value is unused.
	BeaconRoundAbort
	// BeaconSessionDone marks the end of the session; Value carries the
	// number of completed rounds.
	BeaconSessionDone
)

// Beacon is a small coordination message used by the asynchronous
// runtime (the synchronous simulator does not need it).
type Beacon struct {
	Header
	Kind  BeaconKind
	Value uint32
}

// Hdr returns the message header.
func (m *XPacket) Hdr() *Header   { return &m.Header }
func (m *AckReport) Hdr() *Header { return &m.Header }
func (m *YAnnounce) Hdr() *Header { return &m.Header }
func (m *ZPacket) Hdr() *Header   { return &m.Header }
func (m *SAnnounce) Hdr() *Header { return &m.Header }
func (m *Beacon) Hdr() *Header    { return &m.Header }

// Codec errors.
var (
	ErrShort     = errors.New("wire: message truncated")
	ErrMagic     = errors.New("wire: bad magic")
	ErrVersion   = errors.New("wire: unsupported version")
	ErrChecksum  = errors.New("wire: checksum mismatch")
	ErrType      = errors.New("wire: unknown message type")
	ErrSizeLimit = errors.New("wire: length field exceeds limit")
	ErrTrailing  = errors.New("wire: trailing bytes after body")
)

// maxVec caps every length-prefixed vector to keep a corrupted or hostile
// length field from driving huge allocations.
const maxVec = 1 << 20

const headerLen = 2 + 1 + 1 + 1 + 4 + 2 // magic, version, type, from, session, round

// Marshal encodes a message into a self-delimiting frame.
func Marshal(m Message) []byte {
	h := m.Hdr()
	buf := make([]byte, 0, 64)
	buf = append(buf, magic0, magic1, Version, byte(h.Type), h.From)
	buf = binary.BigEndian.AppendUint32(buf, h.Session)
	buf = binary.BigEndian.AppendUint16(buf, h.Round)
	buf = m.body(buf)
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// Unmarshal decodes one frame into the appropriate message type.
func Unmarshal(b []byte) (Message, error) {
	if len(b) < headerLen+4 {
		return nil, ErrShort
	}
	body, sum := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, ErrChecksum
	}
	if body[0] != magic0 || body[1] != magic1 {
		return nil, ErrMagic
	}
	if body[2] != Version {
		return nil, fmt.Errorf("%w: %d", ErrVersion, body[2])
	}
	typ := Type(body[3])
	var m Message
	switch typ {
	case TypeX:
		m = &XPacket{}
	case TypeAck:
		m = &AckReport{}
	case TypeYAnnounce:
		m = &YAnnounce{}
	case TypeZ:
		m = &ZPacket{}
	case TypeSAnnounce:
		m = &SAnnounce{}
	case TypeBeacon:
		m = &Beacon{}
	default:
		return nil, fmt.Errorf("%w: %d", ErrType, body[3])
	}
	h := m.Hdr()
	h.Type = typ
	h.From = body[4]
	h.Session = binary.BigEndian.Uint32(body[5:9])
	h.Round = binary.BigEndian.Uint16(body[9:11])
	r := &reader{b: body[headerLen:]}
	if err := m.parseBody(r); err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, ErrTrailing
	}
	return m, nil
}

// reader is a bounds-checked big-endian cursor.
type reader struct{ b []byte }

func (r *reader) u16() (uint16, error) {
	if len(r.b) < 2 {
		return 0, ErrShort
	}
	v := binary.BigEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if len(r.b) < 4 {
		return 0, ErrShort
	}
	v := binary.BigEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, ErrShort
	}
	v := binary.BigEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *reader) count() (int, error) {
	v, err := r.u32()
	if err != nil {
		return 0, err
	}
	if v > maxVec {
		return 0, ErrSizeLimit
	}
	return int(v), nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if len(r.b) < n {
		return nil, ErrShort
	}
	out := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return out, nil
}

func (r *reader) u16s() ([]uint16, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if len(r.b) < 2*n {
		return nil, ErrShort
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.BigEndian.Uint16(r.b[2*i:])
	}
	r.b = r.b[2*n:]
	return out, nil
}

func (r *reader) u32s() ([]uint32, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if len(r.b) < 4*n {
		return nil, ErrShort
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = binary.BigEndian.Uint32(r.b[4*i:])
	}
	r.b = r.b[4*n:]
	return out, nil
}

func (r *reader) u64s() ([]uint64, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if len(r.b) < 8*n {
		return nil, ErrShort
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.BigEndian.Uint64(r.b[8*i:])
	}
	r.b = r.b[8*n:]
	return out, nil
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func appendU16s(dst []byte, v []uint16) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(v)))
	for _, x := range v {
		dst = binary.BigEndian.AppendUint16(dst, x)
	}
	return dst
}

func appendU32s(dst []byte, v []uint32) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(v)))
	for _, x := range v {
		dst = binary.BigEndian.AppendUint32(dst, x)
	}
	return dst
}

func appendU64s(dst []byte, v []uint64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(v)))
	for _, x := range v {
		dst = binary.BigEndian.AppendUint64(dst, x)
	}
	return dst
}

func (m *XPacket) body(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Seq)
	return appendBytes(dst, m.Payload)
}

func (m *XPacket) parseBody(r *reader) (err error) {
	if m.Seq, err = r.u32(); err != nil {
		return err
	}
	m.Payload, err = r.bytes()
	return err
}

func (m *AckReport) body(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.NumX)
	return appendU64s(dst, m.Bitmap)
}

func (m *AckReport) parseBody(r *reader) (err error) {
	if m.NumX, err = r.u32(); err != nil {
		return err
	}
	m.Bitmap, err = r.u64s()
	return err
}

func (m *YAnnounce) body(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Classes)))
	for _, cb := range m.Classes {
		dst = appendU32s(dst, cb.XIDs)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(cb.Coeffs)))
		for _, row := range cb.Coeffs {
			dst = appendU16s(dst, row)
		}
	}
	return dst
}

func (m *YAnnounce) parseBody(r *reader) error {
	nc, err := r.count()
	if err != nil {
		return err
	}
	m.Classes = make([]ClassBatch, nc)
	for i := range m.Classes {
		if m.Classes[i].XIDs, err = r.u32s(); err != nil {
			return err
		}
		nr, err := r.count()
		if err != nil {
			return err
		}
		m.Classes[i].Coeffs = make([][]uint16, nr)
		for j := range m.Classes[i].Coeffs {
			if m.Classes[i].Coeffs[j], err = r.u16s(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *ZPacket) body(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, m.Index)
	dst = appendU16s(dst, m.Coeffs)
	return appendBytes(dst, m.Payload)
}

func (m *ZPacket) parseBody(r *reader) (err error) {
	if m.Index, err = r.u16(); err != nil {
		return err
	}
	if m.Coeffs, err = r.u16s(); err != nil {
		return err
	}
	m.Payload, err = r.bytes()
	return err
}

func (m *SAnnounce) body(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Coeffs)))
	for _, row := range m.Coeffs {
		dst = appendU16s(dst, row)
	}
	return dst
}

func (m *SAnnounce) parseBody(r *reader) error {
	nr, err := r.count()
	if err != nil {
		return err
	}
	m.Coeffs = make([][]uint16, nr)
	for i := range m.Coeffs {
		if m.Coeffs[i], err = r.u16s(); err != nil {
			return err
		}
	}
	return nil
}

func (m *Beacon) body(dst []byte) []byte {
	dst = append(dst, byte(m.Kind))
	return binary.BigEndian.AppendUint32(dst, m.Value)
}

func (m *Beacon) parseBody(r *reader) error {
	if len(r.b) < 1 {
		return ErrShort
	}
	m.Kind = BeaconKind(r.b[0])
	r.b = r.b[1:]
	v, err := r.u32()
	if err != nil {
		return err
	}
	m.Value = v
	return nil
}
