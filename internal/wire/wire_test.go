package wire

import (
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
)

func crc32ChecksumIEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b := Marshal(m)
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal(%s): %v", m.Hdr().Type, err)
	}
	if !messagesEquivalent(m, got) {
		t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", m, got)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	roundTrip(t, &XPacket{
		Header:  Header{Type: TypeX, From: 3, Session: 0xdeadbeef, Round: 7},
		Seq:     42,
		Payload: []byte{1, 2, 3, 255},
	})
	roundTrip(t, &AckReport{
		Header: Header{Type: TypeAck, From: 1, Session: 9, Round: 2},
		NumX:   100,
		Bitmap: []uint64{0xffffffffffffffff, 0xf},
	})
	roundTrip(t, &YAnnounce{
		Header: Header{Type: TypeYAnnounce, From: 0, Session: 1, Round: 0},
		Classes: []ClassBatch{
			{XIDs: []uint32{0, 5, 9}, Coeffs: [][]uint16{{1, 2, 3}, {4, 5, 6}}},
			{XIDs: []uint32{7}, Coeffs: [][]uint16{{9}}},
		},
	})
	roundTrip(t, &ZPacket{
		Header:  Header{Type: TypeZ, From: 0, Session: 1, Round: 3},
		Index:   2,
		Coeffs:  []uint16{1, 0, 65535},
		Payload: []byte{0xaa, 0xbb},
	})
	roundTrip(t, &SAnnounce{
		Header: Header{Type: TypeSAnnounce, From: 0, Session: 1, Round: 3},
		Coeffs: [][]uint16{{1, 2}, {3, 4}, {0, 0}},
	})
	roundTrip(t, &Beacon{
		Header: Header{Type: TypeBeacon, From: 2, Session: 1, Round: 3},
		Kind:   BeaconEndOfX,
		Value:  90,
	})
}

func TestRoundTripEmptyVectors(t *testing.T) {
	roundTrip(t, &XPacket{Header: Header{Type: TypeX}, Payload: []byte{}})
	roundTrip(t, &YAnnounce{Header: Header{Type: TypeYAnnounce}, Classes: []ClassBatch{}})
	roundTrip(t, &SAnnounce{Header: Header{Type: TypeSAnnounce}, Coeffs: [][]uint16{}})
	roundTrip(t, &AckReport{Header: Header{Type: TypeAck}, Bitmap: []uint64{}})
	roundTrip(t, &ZPacket{Header: Header{Type: TypeZ}, Coeffs: []uint16{}, Payload: []byte{}})
}

func TestCorruptionDetected(t *testing.T) {
	m := &XPacket{Header: Header{Type: TypeX, From: 1}, Seq: 5, Payload: []byte{1, 2, 3}}
	b := Marshal(m)
	for i := range b {
		c := append([]byte(nil), b...)
		c[i] ^= 0x40
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("corruption at byte %d undetected", i)
		}
	}
}

func TestTruncationDetected(t *testing.T) {
	m := &AckReport{Header: Header{Type: TypeAck}, NumX: 64, Bitmap: []uint64{1}}
	b := Marshal(m)
	for n := 0; n < len(b); n++ {
		if _, err := Unmarshal(b[:n]); err == nil {
			t.Fatalf("truncation to %d bytes undetected", n)
		}
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	m := &XPacket{Header: Header{Type: TypeX}, Payload: []byte{1}}
	b := Marshal(m)
	// Rebuild the frame with an extra byte inside the checksummed region and
	// a recomputed CRC, so only the trailing-bytes check can fire.
	inner := append(append([]byte(nil), b[:len(b)-4]...), 0x00)
	crc := crc32ChecksumIEEE(inner)
	frame := append(inner, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
	if _, err := Unmarshal(frame); !errors.Is(err, ErrTrailing) {
		t.Fatalf("err = %v, want ErrTrailing", err)
	}
}

func TestBadMagicVersionType(t *testing.T) {
	m := &XPacket{Header: Header{Type: TypeX}, Payload: []byte{1}}
	mk := func(mut func([]byte)) error {
		b := Marshal(m)
		inner := append([]byte(nil), b[:len(b)-4]...)
		mut(inner)
		crc := crc32ChecksumIEEE(inner)
		frame := append(inner, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
		_, err := Unmarshal(frame)
		return err
	}
	if err := mk(func(b []byte) { b[0] = 'X' }); !errors.Is(err, ErrMagic) {
		t.Fatalf("magic err = %v", err)
	}
	if err := mk(func(b []byte) { b[2] = 99 }); !errors.Is(err, ErrVersion) {
		t.Fatalf("version err = %v", err)
	}
	if err := mk(func(b []byte) { b[3] = 200 }); !errors.Is(err, ErrType) {
		t.Fatalf("type err = %v", err)
	}
}

func TestOversizeVectorRejected(t *testing.T) {
	// A hostile length prefix must be rejected before allocation.
	m := &XPacket{Header: Header{Type: TypeX}, Payload: []byte{1, 2, 3, 4}}
	b := Marshal(m)
	inner := append([]byte(nil), b[:len(b)-4]...)
	// Payload length field sits right after header+seq.
	off := 11 + 4
	inner[off] = 0xff
	inner[off+1] = 0xff
	inner[off+2] = 0xff
	inner[off+3] = 0xff
	crc := crc32ChecksumIEEE(inner)
	frame := append(inner, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
	if _, err := Unmarshal(frame); !errors.Is(err, ErrSizeLimit) && !errors.Is(err, ErrShort) {
		t.Fatalf("err = %v, want size/short error", err)
	}
}

func TestRandomizedRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var m Message
		h := Header{From: uint8(rng.Intn(8)), Session: rng.Uint32(), Round: uint16(rng.Intn(100))}
		switch rng.Intn(5) {
		case 0:
			h.Type = TypeX
			p := make([]byte, rng.Intn(200))
			rng.Read(p)
			m = &XPacket{Header: h, Seq: rng.Uint32(), Payload: p}
		case 1:
			h.Type = TypeAck
			bm := make([]uint64, rng.Intn(4))
			for i := range bm {
				bm[i] = rng.Uint64()
			}
			m = &AckReport{Header: h, NumX: uint32(len(bm) * 64), Bitmap: bm}
		case 2:
			h.Type = TypeYAnnounce
			classes := make([]ClassBatch, rng.Intn(4))
			for i := range classes {
				ids := make([]uint32, rng.Intn(6))
				for j := range ids {
					ids[j] = rng.Uint32() % 1000
				}
				rows := make([][]uint16, rng.Intn(3))
				for j := range rows {
					rows[j] = make([]uint16, len(ids))
					for k := range rows[j] {
						rows[j][k] = uint16(rng.Intn(65536))
					}
				}
				classes[i] = ClassBatch{XIDs: ids, Coeffs: rows}
			}
			m = &YAnnounce{Header: h, Classes: classes}
		case 3:
			h.Type = TypeZ
			cs := make([]uint16, rng.Intn(10))
			for i := range cs {
				cs[i] = uint16(rng.Intn(65536))
			}
			p := make([]byte, rng.Intn(100))
			rng.Read(p)
			m = &ZPacket{Header: h, Index: uint16(rng.Intn(10)), Coeffs: cs, Payload: p}
		default:
			h.Type = TypeSAnnounce
			rows := make([][]uint16, rng.Intn(5))
			for j := range rows {
				rows[j] = make([]uint16, rng.Intn(8))
				for k := range rows[j] {
					rows[j][k] = uint16(rng.Intn(65536))
				}
			}
			m = &SAnnounce{Header: h, Coeffs: rows}
		}
		b := Marshal(m)
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !messagesEquivalent(m, got) {
			t.Fatalf("trial %d mismatch:\n in: %#v\nout: %#v", trial, m, got)
		}
	}
}

// messagesEquivalent compares messages treating nil and empty slices as
// equal (the codec cannot distinguish them, by design).
func messagesEquivalent(a, b Message) bool {
	return reflect.DeepEqual(normalize(a), normalize(b))
}

func normalize(m Message) Message {
	switch v := m.(type) {
	case *XPacket:
		c := *v
		if len(c.Payload) == 0 {
			c.Payload = []byte{}
		}
		return &c
	case *AckReport:
		c := *v
		if len(c.Bitmap) == 0 {
			c.Bitmap = []uint64{}
		}
		return &c
	case *YAnnounce:
		c := *v
		if len(c.Classes) == 0 {
			c.Classes = []ClassBatch{}
		}
		for i := range c.Classes {
			if len(c.Classes[i].XIDs) == 0 {
				c.Classes[i].XIDs = []uint32{}
			}
			if len(c.Classes[i].Coeffs) == 0 {
				c.Classes[i].Coeffs = [][]uint16{}
			}
			for j := range c.Classes[i].Coeffs {
				if len(c.Classes[i].Coeffs[j]) == 0 {
					c.Classes[i].Coeffs[j] = []uint16{}
				}
			}
		}
		return &c
	case *ZPacket:
		c := *v
		if len(c.Coeffs) == 0 {
			c.Coeffs = []uint16{}
		}
		if len(c.Payload) == 0 {
			c.Payload = []byte{}
		}
		return &c
	case *SAnnounce:
		c := *v
		if len(c.Coeffs) == 0 {
			c.Coeffs = [][]uint16{}
		}
		for j := range c.Coeffs {
			if len(c.Coeffs[j]) == 0 {
				c.Coeffs[j] = []uint16{}
			}
		}
		return &c
	}
	return m
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{
		TypeX: "X", TypeAck: "ACK", TypeYAnnounce: "Y-ANNOUNCE",
		TypeZ: "Z", TypeSAnnounce: "S-ANNOUNCE", TypeBeacon: "BEACON", Type(99): "Type(99)",
	} {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
}

func BenchmarkMarshalX(b *testing.B) {
	m := &XPacket{Header: Header{Type: TypeX}, Seq: 1, Payload: make([]byte, 100)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Marshal(m)
	}
}

func BenchmarkUnmarshalX(b *testing.B) {
	raw := Marshal(&XPacket{Header: Header{Type: TypeX}, Seq: 1, Payload: make([]byte, 100)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}
