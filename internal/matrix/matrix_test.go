package matrix

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gf"
)

func randomMatrix(f *gf.Field[uint16], rng *rand.Rand, rows, cols int) *Matrix[uint16] {
	m := New(f, rows, cols)
	for i := range m.d {
		m.d[i] = uint16(rng.Intn(f.Size()))
	}
	return m
}

func TestBasicAccessors(t *testing.T) {
	f := gf.GF256()
	m := New(f, 2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %d", m.At(1, 2))
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	r := m.Row(1)
	r[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row does not alias storage")
	}
	c := m.Clone()
	c.Set(0, 0, 5)
	if m.At(0, 0) == 5 {
		t.Fatal("Clone aliases storage")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("Equal(self clone) = false")
	}
	if m.Equal(New(f, 3, 2)) {
		t.Fatal("Equal across shapes = true")
	}
}

func TestFromRowsAndString(t *testing.T) {
	f := gf.GF256()
	m := FromRows(f, [][]uint8{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows contents wrong: %s", m)
	}
	if s := m.String(); s == "" {
		t.Fatal("String empty")
	}
	empty := FromRows(f, nil)
	if empty.Rows() != 0 {
		t.Fatal("FromRows(nil) not empty")
	}
}

func TestMulIdentity(t *testing.T) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(f, rng, 7, 5)
	if !Identity(f, 7).Mul(m).Equal(m) {
		t.Fatal("I*m != m")
	}
	if !m.Mul(Identity(f, 5)).Equal(m) {
		t.Fatal("m*I != m")
	}
}

func TestMulAssociativity(t *testing.T) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(f, rng, 4, 6)
		b := randomMatrix(f, rng, 6, 3)
		c := randomMatrix(f, rng, 3, 5)
		if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
			t.Fatalf("trial %d: (ab)c != a(bc)", trial)
		}
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(f, rng, 5, 4)
	v := make([]uint16, 4)
	for i := range v {
		v[i] = uint16(rng.Intn(65536))
	}
	col := New(f, 4, 1)
	for i, x := range v {
		col.Set(i, 0, x)
	}
	want := a.Mul(col)
	got := a.MulVec(v)
	for i := range got {
		if got[i] != want.At(i, 0) {
			t.Fatalf("MulVec[%d] = %d, want %d", i, got[i], want.At(i, 0))
		}
	}
}

func TestTranspose(t *testing.T) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(f, rng, 3, 7)
	tt := a.Transpose().Transpose()
	if !tt.Equal(a) {
		t.Fatal("double transpose != original")
	}
	// (AB)^T == B^T A^T
	b := randomMatrix(f, rng, 7, 2)
	if !a.Mul(b).Transpose().Equal(b.Transpose().Mul(a.Transpose())) {
		t.Fatal("(AB)^T != B^T A^T")
	}
}

func TestStackSubRowsSubCols(t *testing.T) {
	f := gf.GF256()
	a := FromRows(f, [][]uint8{{1, 2}, {3, 4}})
	b := FromRows(f, [][]uint8{{5, 6}})
	s := Stack(a, b)
	if s.Rows() != 3 || s.At(2, 1) != 6 {
		t.Fatalf("Stack wrong: %s", s)
	}
	sr := s.SubRows([]int{2, 0})
	if sr.At(0, 0) != 5 || sr.At(1, 1) != 2 {
		t.Fatalf("SubRows wrong: %s", sr)
	}
	sc := s.SubCols([]int{1})
	if sc.Cols() != 1 || sc.At(1, 0) != 4 {
		t.Fatalf("SubCols wrong: %s", sc)
	}
}

func TestRank(t *testing.T) {
	f := gf.GF256()
	if got := Identity(f, 4).Rank(); got != 4 {
		t.Fatalf("rank(I4) = %d", got)
	}
	if got := New(f, 3, 5).Rank(); got != 0 {
		t.Fatalf("rank(0) = %d", got)
	}
	// Duplicate and dependent rows.
	m := FromRows(f, [][]uint8{
		{1, 2, 3},
		{1, 2, 3},
		{0, 0, 0},
		{2, 4, 6}, // 2 * row0 in GF(2^8): Mul(2,1)=2, Mul(2,2)=4, Mul(2,3)=6
	})
	if got := m.Rank(); got != 1 {
		t.Fatalf("rank = %d, want 1", got)
	}
	// Rank must not mutate the receiver.
	if m.At(3, 0) != 2 {
		t.Fatal("Rank mutated matrix")
	}
}

func TestRankRandomProductBound(t *testing.T) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(f, rng, 6, 3)
		b := randomMatrix(f, rng, 3, 6)
		if r := a.Mul(b).Rank(); r > 3 {
			t.Fatalf("rank(AB) = %d > inner dim 3", r)
		}
	}
}

func TestInverse(t *testing.T) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(8) + 1
		a := Cauchy(f, n, n) // always invertible
		inv, err := a.Inverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !a.Mul(inv).Equal(Identity(f, n)) {
			t.Fatalf("trial %d: a*inv != I", trial)
		}
		if !inv.Mul(a).Equal(Identity(f, n)) {
			t.Fatalf("trial %d: inv*a != I", trial)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	f := gf.GF256()
	m := FromRows(f, [][]uint8{{1, 2}, {1, 2}})
	if _, err := m.Inverse(); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveSquareAndOverdetermined(t *testing.T) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		k := rng.Intn(6) + 1
		extra := rng.Intn(4)
		a := Cauchy(f, k+extra, k) // full column rank (any k rows invertible)
		x := randomMatrix(f, rng, k, 3)
		b := a.Mul(x)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Equal(x) {
			t.Fatalf("trial %d: Solve wrong answer", trial)
		}
	}
}

func TestSolveInconsistent(t *testing.T) {
	f := gf.GF256()
	a := FromRows(f, [][]uint8{{1}, {1}})
	b := FromRows(f, [][]uint8{{1}, {2}})
	if _, err := Solve(a, b); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
}

func TestSolveUnderdetermined(t *testing.T) {
	f := gf.GF256()
	a := FromRows(f, [][]uint8{{1, 1}})
	b := FromRows(f, [][]uint8{{1}})
	if _, err := Solve(a, b); !errors.Is(err, ErrUnderdetermined) {
		t.Fatalf("err = %v, want ErrUnderdetermined", err)
	}
}

func TestSolveLeftAndInRowSpace(t *testing.T) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(8))
	a := Cauchy(f, 4, 9)
	// v = combination of rows 1 and 3.
	v := make([]uint16, 9)
	f.AddMulSlice(v, a.Row(1), 17)
	f.AddMulSlice(v, a.Row(3), 40000)
	c, err := SolveLeft(a, v)
	if err != nil {
		t.Fatalf("SolveLeft: %v", err)
	}
	if c[1] != 17 || c[3] != 40000 || c[0] != 0 || c[2] != 0 {
		t.Fatalf("SolveLeft coefficients = %v", c)
	}
	if !InRowSpace(a, v) {
		t.Fatal("InRowSpace(v) = false for combination of rows")
	}
	// A random vector is almost surely outside the 4-dim row space of a
	// 9-dim ambient space.
	w := make([]uint16, 9)
	for i := range w {
		w[i] = uint16(rng.Intn(65536))
	}
	if InRowSpace(a, w) {
		t.Fatal("random vector reported in row space (astronomically unlikely)")
	}
	if _, err := SolveLeft(a, w); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("SolveLeft err = %v, want ErrInconsistent", err)
	}
}

func TestCauchySquareSubmatricesInvertible(t *testing.T) {
	// The property the whole protocol rests on: every square submatrix of a
	// Cauchy matrix is nonsingular. Exercise random submatrices of random
	// sizes in both fields.
	rng := rand.New(rand.NewSource(9))
	t.Run("GF256", func(t *testing.T) {
		c := Cauchy(gf.GF256(), 12, 20)
		checkSubmatrices(t, rng, c, 12, 20)
	})
	t.Run("GF65536", func(t *testing.T) {
		c := Cauchy(gf.GF65536(), 30, 50)
		checkSubmatrices(t, rng, c, 30, 50)
	})
}

func checkSubmatrices[E gf.Elem](t *testing.T, rng *rand.Rand, c *Matrix[E], rows, cols int) {
	t.Helper()
	for trial := 0; trial < 60; trial++ {
		k := rng.Intn(min(rows, cols)) + 1
		ri := rng.Perm(rows)[:k]
		ci := rng.Perm(cols)[:k]
		sub := c.SubRows(ri).SubCols(ci)
		if r := sub.Rank(); r != k {
			t.Fatalf("trial %d: %dx%d Cauchy submatrix rank %d", trial, k, k, r)
		}
	}
}

func TestCauchyAtValidation(t *testing.T) {
	f := gf.GF256()
	m := CauchyAt(f, []uint8{1, 2}, []uint8{3, 4, 5})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.At(0, 0) != f.Inv(1^3) {
		t.Fatal("entry formula wrong")
	}
	for _, tc := range [][2][]uint8{
		{{1, 1}, {2}},    // dup in a
		{{1}, {2, 2}},    // dup in b
		{{1, 2}, {2, 3}}, // overlap
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("CauchyAt(%v,%v) did not panic", tc[0], tc[1])
				}
			}()
			CauchyAt(f, tc[0], tc[1])
		}()
	}
}

func TestCauchySizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Cauchy did not panic")
		}
	}()
	Cauchy(gf.GF256(), 200, 100)
}

func TestVandermondeAnyRowsInvertible(t *testing.T) {
	f := gf.GF65536()
	v := Vandermonde(f, 10, 4)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		ri := rng.Perm(10)[:4]
		if r := v.SubRows(ri).Rank(); r != 4 {
			t.Fatalf("trial %d: 4 Vandermonde rows rank %d", trial, r)
		}
	}
}

func TestShapePanics(t *testing.T) {
	f := gf.GF256()
	cases := []func(){
		func() { New(f, -1, 2) },
		func() { FromRows(f, [][]uint8{{1, 2}, {1}}) },
		func() { New(f, 2, 2).Mul(New(f, 3, 2)) },
		func() { New(f, 2, 2).MulVec(make([]uint8, 3)) },
		func() { Stack(New(f, 1, 2), New(f, 1, 3)) },
		func() { Identity(f, 2).Mul(Identity(f, 3)) },
		func() { New(f, 2, 3).Inverse() },
		func() { Solve(New(f, 2, 2), New(f, 3, 1)) },
		func() { SolveLeft(New(f, 2, 2), make([]uint8, 3)) },
		func() { InRowSpace(New(f, 2, 2), make([]uint8, 3)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkRank64(b *testing.B) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(11))
	m := randomMatrix(f, rng, 64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.Rank() != 64 {
			b.Fatal("unexpected rank")
		}
	}
}

func BenchmarkCauchyBuild(b *testing.B) {
	f := gf.GF65536()
	for i := 0; i < b.N; i++ {
		Cauchy(f, 32, 96)
	}
}

func TestDetBasics(t *testing.T) {
	f := gf.GF256()
	if got := Identity(f, 4).Det(); got != 1 {
		t.Fatalf("det(I) = %d", got)
	}
	if got := New(f, 3, 3).Det(); got != 0 {
		t.Fatalf("det(0) = %d", got)
	}
	singular := FromRows(f, [][]uint8{{1, 2}, {1, 2}})
	if got := singular.Det(); got != 0 {
		t.Fatalf("det(singular) = %d", got)
	}
	// det is multiplicative.
	rng := rand.New(rand.NewSource(21))
	f16 := gf.GF65536()
	for trial := 0; trial < 20; trial++ {
		a := randomMatrix(f16, rng, 5, 5)
		b := randomMatrix(f16, rng, 5, 5)
		if a.Mul(b).Det() != f16.Mul(a.Det(), b.Det()) {
			t.Fatalf("trial %d: det not multiplicative", trial)
		}
	}
}

func TestDetPanicsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(gf.GF256(), 2, 3).Det()
}

func TestCauchyDeterminantClosedForm(t *testing.T) {
	// The classical Cauchy determinant identity, which is WHY every
	// square submatrix is nonsingular (all factors are nonzero for
	// distinct points):
	//   det C = prod_{i<j}(a_j - a_i)(b_j - b_i) / prod_{i,j}(a_i + b_j)
	// In characteristic 2, subtraction is XOR.
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(6)
		// Distinct points, a and b disjoint.
		perm := rng.Perm(1000)
		a := make([]uint16, n)
		b := make([]uint16, n)
		for i := 0; i < n; i++ {
			a[i] = uint16(perm[i] + 1)
			b[i] = uint16(perm[n+i] + 2000)
		}
		c := CauchyAt(f, a, b)
		num := uint16(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				num = f.Mul(num, a[i]^a[j])
				num = f.Mul(num, b[i]^b[j])
			}
		}
		den := uint16(1)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				den = f.Mul(den, a[i]^b[j])
			}
		}
		want := f.Div(num, den)
		if got := c.Det(); got != want {
			t.Fatalf("trial %d (n=%d): det = %d, closed form %d", trial, n, got, want)
		}
	}
}
