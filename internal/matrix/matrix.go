// Package matrix provides dense matrices over GF(2^8) / GF(2^16) together
// with the Gaussian-elimination routines the protocol needs: rank, inverse,
// multi-RHS solving, and row-space membership (the eavesdropper's attack).
//
// All row arithmetic — products, mat-vec, elimination updates — goes
// through the gf bulk kernels in multi-term shapes: products combine whole
// rows with AddMulSlices, and Gaussian elimination runs as a panel engine
// (panelEliminate) that retires up to four pivot columns per pass, so each
// target row is updated by one fused multi-source kernel call instead of
// one walk per pivot. That routes the hot loops onto the arch-dispatched
// fused strip kernels with shared coefficient tables and no steady-state
// allocations, rather than per-symbol log/exp lookups.
//
// Matrices are row-major and mutable; the elimination routines operate on
// private copies unless the method name says otherwise. All operations
// panic on dimension mismatches (a programming error), and return errors
// for data-dependent failures such as singular systems.
package matrix

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/gf"
)

// Matrix is a dense rows x cols matrix over the field f.
type Matrix[E gf.Elem] struct {
	f    *gf.Field[E]
	rows int
	cols int
	d    []E // row-major, len rows*cols
	// piv is the reusable pivot buffer for the panel elimination engine;
	// lazily grown on first elimination and reused after, so steady-state
	// elimination on a reused matrix allocates nothing. Never copied by
	// Clone.
	piv []Pivot
}

// New returns a zero rows x cols matrix over field f.
func New[E gf.Elem](f *gf.Field[E], rows, cols int) *Matrix[E] {
	if rows < 0 || cols < 0 {
		panic("matrix: negative dimension")
	}
	return &Matrix[E]{f: f, rows: rows, cols: cols, d: make([]E, rows*cols)}
}

// FromRows builds a matrix from the given rows, which must all have equal
// length. The rows are copied.
func FromRows[E gf.Elem](f *gf.Field[E], rows [][]E) *Matrix[E] {
	if len(rows) == 0 {
		return New(f, 0, 0)
	}
	m := New(f, len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("matrix: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity[E gf.Elem](f *gf.Field[E], n int) *Matrix[E] {
	m := New(f, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Field returns the field the matrix is defined over.
func (m *Matrix[E]) Field() *gf.Field[E] { return m.f }

// Rows returns the number of rows.
func (m *Matrix[E]) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix[E]) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix[E]) At(i, j int) E { return m.d[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix[E]) Set(i, j int, v E) { m.d[i*m.cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix[E]) Row(i int) []E { return m.d[i*m.cols : (i+1)*m.cols] }

// RowViews returns every row as a slice aliasing the matrix storage — the
// form the gf batched kernels (AddMulSlices) consume. Callers combining
// many coefficient rows against the same matrix build the views once and
// loop over AddMulSlices. Mutating a view mutates the matrix.
func (m *Matrix[E]) RowViews() [][]E {
	rows := make([][]E, m.rows)
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return rows
}

// Clone returns a deep copy.
func (m *Matrix[E]) Clone() *Matrix[E] {
	c := New(m.f, m.rows, m.cols)
	copy(c.d, m.d)
	return c
}

// Equal reports whether two matrices have identical shape and contents.
func (m *Matrix[E]) Equal(o *Matrix[E]) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.d {
		if m.d[i] != o.d[i] {
			return false
		}
	}
	return true
}

// Mul returns m * o.
func (m *Matrix[E]) Mul(o *Matrix[E]) *Matrix[E] {
	if m.cols != o.rows {
		panic(fmt.Sprintf("matrix: Mul shape mismatch %dx%d * %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	out := New(m.f, m.rows, o.cols)
	// One batched combination per output row: the kernel layer shares
	// coefficient tables across the terms of a row.
	srcs := o.RowViews()
	for i := 0; i < m.rows; i++ {
		m.f.AddMulSlices(out.Row(i), srcs, m.Row(i))
	}
	return out
}

// MulVec returns m * v for a column vector v of length Cols.
func (m *Matrix[E]) MulVec(v []E) []E {
	if m.cols != len(v) {
		panic("matrix: MulVec length mismatch")
	}
	out := make([]E, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.f.Dot(m.Row(i), v)
	}
	return out
}

// Transpose returns the transpose of m.
func (m *Matrix[E]) Transpose() *Matrix[E] {
	t := New(m.f, m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Stack returns the vertical concatenation [a; b]. Both operands are
// copied; a and b must have the same column count.
func Stack[E gf.Elem](a, b *Matrix[E]) *Matrix[E] {
	if a.cols != b.cols {
		panic("matrix: Stack column mismatch")
	}
	s := New(a.f, a.rows+b.rows, a.cols)
	copy(s.d[:len(a.d)], a.d)
	copy(s.d[len(a.d):], b.d)
	return s
}

// SubRows returns a new matrix consisting of the listed rows of m, in order.
func (m *Matrix[E]) SubRows(idx []int) *Matrix[E] {
	s := New(m.f, len(idx), m.cols)
	for k, i := range idx {
		copy(s.Row(k), m.Row(i))
	}
	return s
}

// SubCols returns a new matrix consisting of the listed columns of m, in order.
func (m *Matrix[E]) SubCols(idx []int) *Matrix[E] {
	s := New(m.f, m.rows, len(idx))
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		dst := s.Row(i)
		for k, j := range idx {
			dst[k] = src[j]
		}
	}
	return s
}

// String renders small matrices for debugging and test failure messages.
func (m *Matrix[E]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d over %s\n", m.rows, m.cols, m.f.Name())
	for i := 0; i < m.rows; i++ {
		fmt.Fprintf(&b, "  %v\n", m.Row(i))
	}
	return b.String()
}

// Errors returned by the elimination routines.
var (
	// ErrSingular is returned when a square system has no unique solution.
	ErrSingular = errors.New("matrix: singular system")
	// ErrInconsistent is returned when an overdetermined system has no
	// solution at all.
	ErrInconsistent = errors.New("matrix: inconsistent system")
	// ErrUnderdetermined is returned when a system has free variables.
	ErrUnderdetermined = errors.New("matrix: underdetermined system")
)

// Rank returns the rank of m. m is not modified.
func (m *Matrix[E]) Rank() int {
	w := m.Clone()
	return w.echelon()
}

// Pivot records one pivot produced by the panel elimination engine: the
// row it ended up in and the column it eliminates.
type Pivot struct{ Row, Col int }

// panelWidth is the number of pivot columns the elimination engine
// retires per fused pass: the trailing update then presents panelWidth
// (coefficient, pivot-row) terms per target row to one gf.AddMulSlices
// call — the widest fused kernel pass — so each target row is loaded and
// stored once per panel instead of once per pivot column.
const panelWidth = 4

// panelEliminate reduces m in place over its first limitCols columns
// using panels of up to panelWidth pivots and returns the pivots (in
// elimination order, appended to the caller's buffer) plus the product of
// the pivot values (the determinant contribution; callers that don't
// need it ignore it).
//
// Within a panel the engine works lazily: pivot candidates in later
// columns are evaluated as v = a[i][c] ^ Σ_j a[i][colj]·piv_j[c] without
// touching the rows, which selects exactly the pivots (positions and
// values) that eager column-by-column elimination would. Each pivot row,
// once chosen, is made current against the panel, normalized, and
// Jordan-reduced against the other pivot rows, so the panel's pivot rows
// carry an identity pattern on the panel columns. That identity is what
// makes the deferred update correct: a target row's current (stale)
// entries at the panel columns are precisely its combination
// coefficients, and one fused AddMulSlices pass zeroes all panelWidth
// columns at once. jordan selects Gauss-Jordan (eliminate every
// non-pivot row, as Inverse/Solve need) versus forward-only elimination
// (rows below the panel, as rank and determinant need).
func (m *Matrix[E]) panelEliminate(limitCols int, jordan bool, pivots []Pivot) ([]Pivot, E) {
	f := m.f
	det := E(1)
	var (
		pivCols [panelWidth]int
		srcs    [panelWidth][]E
		cs      [panelWidth]E
	)
	r := 0
	c := 0
	for c < limitCols && r < m.rows {
		c0 := c // the panel's first candidate column; all updates run on [c0:]
		k := 0
		for ; c < limitCols && k < panelWidth && r+k < m.rows; c++ {
			// Lazy pivot search in column c over the not-yet-updated rows.
			p := -1
			var pv E
			for i := r + k; i < m.rows; i++ {
				v := m.At(i, c)
				for j := 0; j < k; j++ {
					if w := m.At(i, pivCols[j]); w != 0 {
						v ^= f.Mul(w, m.At(r+j, c))
					}
				}
				if v != 0 {
					p, pv = i, v
					break
				}
			}
			if p < 0 {
				continue // no pivot in this column anywhere below
			}
			m.swapRows(r+k, p)
			row := m.Row(r + k)
			// Bring the new pivot row current against the panel so far.
			for j := 0; j < k; j++ {
				if w := row[pivCols[j]]; w != 0 {
					f.AddMulSlice(row[c0:], m.Row(r + j)[c0:], w)
				}
			}
			det = f.Mul(det, pv)
			f.MulSlice(row[c:], f.Inv(pv))
			// Jordan-reduce the earlier pivot rows against this column,
			// preserving the panel's identity pattern.
			for j := 0; j < k; j++ {
				pr := m.Row(r + j)
				if w := pr[c]; w != 0 {
					f.AddMulSlice(pr[c:], row[c:], w)
				}
			}
			pivCols[k] = c
			pivots = append(pivots, Pivot{Row: r + k, Col: c})
			k++
		}
		if k == 0 {
			break // no pivots remain anywhere
		}
		for j := 0; j < k; j++ {
			srcs[j] = m.Row(r + j)[c0:]
		}
		// Deferred trailing update: one fused multi-term pass per target
		// row eliminates all k panel columns from it.
		lo := r + k
		if jordan {
			lo = 0
		}
		for i := lo; i < m.rows; i++ {
			if i >= r && i < r+k {
				continue
			}
			row := m.Row(i)
			any := false
			for j := 0; j < k; j++ {
				cs[j] = row[pivCols[j]]
				any = any || cs[j] != 0
			}
			if !any {
				continue
			}
			f.AddMulSlices(row[c0:], srcs[:k], cs[:k])
		}
		r += k
	}
	return pivots, det
}

// echelon reduces the receiver to row echelon form in place (reduced
// within each panel) and returns its rank.
func (m *Matrix[E]) echelon() int {
	pivots, _ := m.panelEliminate(m.cols, false, m.piv[:0])
	m.piv = pivots
	return len(pivots)
}

// GaussJordan reduces m in place over its first limitCols columns with
// the panel-fused elimination engine and returns the pivots in
// elimination order. After it returns, every pivot column holds a unit
// vector (1 at its pivot row), which makes the right-hand columns of an
// augmented system directly readable as solutions. The returned slice
// aliases the matrix's internal pivot buffer and is valid until the next
// elimination on m.
func GaussJordan[E gf.Elem](m *Matrix[E], limitCols int) []Pivot {
	pivots, _ := m.panelEliminate(limitCols, true, m.piv[:0])
	m.piv = pivots
	return pivots
}

func (m *Matrix[E]) swapRows(i, j int) {
	if i == j {
		return
	}
	// Swap through a stack buffer in memmove-sized chunks instead of
	// element by element; row swaps are the only elimination step that
	// cannot go through the gf bulk kernels.
	var buf [256]E
	ri, rj := m.Row(i), m.Row(j)
	for len(ri) > 0 {
		n := copy(buf[:], ri)
		copy(ri[:n], rj[:n])
		copy(rj[:n], buf[:n])
		ri, rj = ri[n:], rj[n:]
	}
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
func (m *Matrix[E]) Inverse() (*Matrix[E], error) {
	if m.rows != m.cols {
		panic("matrix: Inverse of non-square matrix")
	}
	n := m.rows
	// Panel Gauss-Jordan on the augmented matrix [m | I].
	aug := New(m.f, n, 2*n)
	for i := 0; i < n; i++ {
		copy(aug.Row(i)[:n], m.Row(i))
		aug.Set(i, n+i, 1)
	}
	if len(GaussJordan(aug, n)) < n {
		return nil, ErrSingular
	}
	inv := New(m.f, n, n)
	for i := 0; i < n; i++ {
		copy(inv.Row(i), aug.Row(i)[n:])
	}
	return inv, nil
}

// Solve finds X with A*X = B, where A is rows x cols with full column rank
// and B has the same row count as A. It returns ErrUnderdetermined if A has
// rank below its column count and ErrInconsistent if no solution exists.
// Neither operand is modified.
func Solve[E gf.Elem](a, b *Matrix[E]) (*Matrix[E], error) {
	if a.rows != b.rows {
		panic("matrix: Solve row mismatch")
	}
	f := a.f
	n, k := a.rows, a.cols
	aug := New(f, n, k+b.cols)
	for i := 0; i < n; i++ {
		copy(aug.Row(i)[:k], a.Row(i))
		copy(aug.Row(i)[k:], b.Row(i))
	}
	// Panel Gauss-Jordan restricted to the first k columns.
	pivots := GaussJordan(aug, k)
	if len(pivots) < k {
		return nil, ErrUnderdetermined
	}
	// Any leftover row with a nonzero RHS is an inconsistency.
	for i := len(pivots); i < n; i++ {
		for _, v := range aug.Row(i)[k:] {
			if v != 0 {
				return nil, ErrInconsistent
			}
		}
	}
	x := New(f, k, b.cols)
	for _, p := range pivots {
		copy(x.Row(p.Col), aug.Row(p.Row)[k:])
	}
	return x, nil
}

// SolveLeft finds the row vector c with c*A = v, i.e. expresses v as a
// linear combination of the rows of A. This is the eavesdropper's primitive:
// if a secret combination lies in the row space of her knowledge matrix she
// can reproduce its contents. Returns ErrInconsistent when v is not in the
// row space, ErrUnderdetermined when the combination is not unique (the
// caller usually only cares about membership, so any solution would do, but
// we surface the condition instead of picking silently).
func SolveLeft[E gf.Elem](a *Matrix[E], v []E) ([]E, error) {
	if len(v) != a.cols {
		panic("matrix: SolveLeft length mismatch")
	}
	at := a.Transpose()
	rhs := New(a.f, len(v), 1)
	for i, x := range v {
		rhs.Set(i, 0, x)
	}
	x, err := Solve(at, rhs)
	if err != nil {
		return nil, err
	}
	out := make([]E, a.rows)
	for i := range out {
		out[i] = x.At(i, 0)
	}
	return out, nil
}

// InRowSpace reports whether v lies in the row space of a. Unlike
// SolveLeft it treats a non-unique combination as membership.
func InRowSpace[E gf.Elem](a *Matrix[E], v []E) bool {
	if len(v) != a.cols {
		panic("matrix: InRowSpace length mismatch")
	}
	w := New(a.f, a.rows+1, a.cols)
	copy(w.d, a.d)
	copy(w.Row(a.rows), v)
	return w.echelon() == a.Rank()
}

// Det returns the determinant via panel elimination: the product of the
// pivot values the engine selects, which match eager column-by-column
// elimination exactly. In characteristic 2 row swaps do not flip the
// sign, so no parity tracking is needed.
func (m *Matrix[E]) Det() E {
	if m.rows != m.cols {
		panic("matrix: Det of non-square matrix")
	}
	w := m.Clone()
	pivots, det := w.panelEliminate(w.cols, false, w.piv[:0])
	w.piv = pivots
	if len(pivots) < w.cols {
		return 0
	}
	return det
}
