// Package matrix provides dense matrices over GF(2^8) / GF(2^16) together
// with the Gaussian-elimination routines the protocol needs: rank, inverse,
// multi-RHS solving, and row-space membership (the eavesdropper's attack).
//
// All row arithmetic — products, mat-vec, elimination updates — goes
// through the gf bulk kernels, batched where the shape allows it
// (AddMulSlices for row combinations, EliminateRows for the per-column
// elimination update), so it gets that package's arch-dispatched nibble
// kernels, shared coefficient tables and word-wide XOR rather than
// per-symbol log/exp lookups.
//
// Matrices are row-major and mutable; the elimination routines operate on
// private copies unless the method name says otherwise. All operations
// panic on dimension mismatches (a programming error), and return errors
// for data-dependent failures such as singular systems.
package matrix

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/gf"
)

// Matrix is a dense rows x cols matrix over the field f.
type Matrix[E gf.Elem] struct {
	f    *gf.Field[E]
	rows int
	cols int
	d    []E // row-major, len rows*cols
}

// New returns a zero rows x cols matrix over field f.
func New[E gf.Elem](f *gf.Field[E], rows, cols int) *Matrix[E] {
	if rows < 0 || cols < 0 {
		panic("matrix: negative dimension")
	}
	return &Matrix[E]{f: f, rows: rows, cols: cols, d: make([]E, rows*cols)}
}

// FromRows builds a matrix from the given rows, which must all have equal
// length. The rows are copied.
func FromRows[E gf.Elem](f *gf.Field[E], rows [][]E) *Matrix[E] {
	if len(rows) == 0 {
		return New(f, 0, 0)
	}
	m := New(f, len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("matrix: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// Identity returns the n x n identity matrix.
func Identity[E gf.Elem](f *gf.Field[E], n int) *Matrix[E] {
	m := New(f, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Field returns the field the matrix is defined over.
func (m *Matrix[E]) Field() *gf.Field[E] { return m.f }

// Rows returns the number of rows.
func (m *Matrix[E]) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix[E]) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix[E]) At(i, j int) E { return m.d[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix[E]) Set(i, j int, v E) { m.d[i*m.cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix[E]) Row(i int) []E { return m.d[i*m.cols : (i+1)*m.cols] }

// RowViews returns every row as a slice aliasing the matrix storage — the
// form the gf batched kernels (AddMulSlices) consume. Callers combining
// many coefficient rows against the same matrix build the views once and
// loop over AddMulSlices. Mutating a view mutates the matrix.
func (m *Matrix[E]) RowViews() [][]E {
	rows := make([][]E, m.rows)
	for i := range rows {
		rows[i] = m.Row(i)
	}
	return rows
}

// Clone returns a deep copy.
func (m *Matrix[E]) Clone() *Matrix[E] {
	c := New(m.f, m.rows, m.cols)
	copy(c.d, m.d)
	return c
}

// Equal reports whether two matrices have identical shape and contents.
func (m *Matrix[E]) Equal(o *Matrix[E]) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.d {
		if m.d[i] != o.d[i] {
			return false
		}
	}
	return true
}

// Mul returns m * o.
func (m *Matrix[E]) Mul(o *Matrix[E]) *Matrix[E] {
	if m.cols != o.rows {
		panic(fmt.Sprintf("matrix: Mul shape mismatch %dx%d * %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	out := New(m.f, m.rows, o.cols)
	// One batched combination per output row: the kernel layer shares
	// coefficient tables across the terms of a row.
	srcs := o.RowViews()
	for i := 0; i < m.rows; i++ {
		m.f.AddMulSlices(out.Row(i), srcs, m.Row(i))
	}
	return out
}

// MulVec returns m * v for a column vector v of length Cols.
func (m *Matrix[E]) MulVec(v []E) []E {
	if m.cols != len(v) {
		panic("matrix: MulVec length mismatch")
	}
	out := make([]E, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.f.Dot(m.Row(i), v)
	}
	return out
}

// Transpose returns the transpose of m.
func (m *Matrix[E]) Transpose() *Matrix[E] {
	t := New(m.f, m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Stack returns the vertical concatenation [a; b]. Both operands are
// copied; a and b must have the same column count.
func Stack[E gf.Elem](a, b *Matrix[E]) *Matrix[E] {
	if a.cols != b.cols {
		panic("matrix: Stack column mismatch")
	}
	s := New(a.f, a.rows+b.rows, a.cols)
	copy(s.d[:len(a.d)], a.d)
	copy(s.d[len(a.d):], b.d)
	return s
}

// SubRows returns a new matrix consisting of the listed rows of m, in order.
func (m *Matrix[E]) SubRows(idx []int) *Matrix[E] {
	s := New(m.f, len(idx), m.cols)
	for k, i := range idx {
		copy(s.Row(k), m.Row(i))
	}
	return s
}

// SubCols returns a new matrix consisting of the listed columns of m, in order.
func (m *Matrix[E]) SubCols(idx []int) *Matrix[E] {
	s := New(m.f, m.rows, len(idx))
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		dst := s.Row(i)
		for k, j := range idx {
			dst[k] = src[j]
		}
	}
	return s
}

// String renders small matrices for debugging and test failure messages.
func (m *Matrix[E]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d over %s\n", m.rows, m.cols, m.f.Name())
	for i := 0; i < m.rows; i++ {
		fmt.Fprintf(&b, "  %v\n", m.Row(i))
	}
	return b.String()
}

// Errors returned by the elimination routines.
var (
	// ErrSingular is returned when a square system has no unique solution.
	ErrSingular = errors.New("matrix: singular system")
	// ErrInconsistent is returned when an overdetermined system has no
	// solution at all.
	ErrInconsistent = errors.New("matrix: inconsistent system")
	// ErrUnderdetermined is returned when a system has free variables.
	ErrUnderdetermined = errors.New("matrix: underdetermined system")
)

// Rank returns the rank of m. m is not modified.
func (m *Matrix[E]) Rank() int {
	w := m.Clone()
	return w.echelon()
}

// echelon reduces the receiver to row echelon form in place and returns its
// rank. The per-column update goes through gf.EliminateRows: one batched
// call eliminating every row below the pivot, so the pivot row stays hot
// and repeated coefficients share their kernel tables.
func (m *Matrix[E]) echelon() int {
	f := m.f
	r := 0
	dsts := make([][]E, 0, m.rows)
	cs := make([]E, 0, m.rows)
	for c := 0; c < m.cols && r < m.rows; c++ {
		// Find a pivot in column c at or below row r.
		p := -1
		for i := r; i < m.rows; i++ {
			if m.At(i, c) != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		m.swapRows(r, p)
		pivInv := f.Inv(m.At(r, c))
		f.MulSlice(m.Row(r)[c:], pivInv)
		dsts, cs = dsts[:0], cs[:0]
		for i := r + 1; i < m.rows; i++ {
			if v := m.At(i, c); v != 0 {
				dsts = append(dsts, m.Row(i)[c:])
				cs = append(cs, v)
			}
		}
		f.EliminateRows(dsts, m.Row(r)[c:], cs)
		r++
	}
	return r
}

func (m *Matrix[E]) swapRows(i, j int) {
	if i == j {
		return
	}
	// Swap through a stack buffer in memmove-sized chunks instead of
	// element by element; row swaps are the only elimination step that
	// cannot go through the gf bulk kernels.
	var buf [256]E
	ri, rj := m.Row(i), m.Row(j)
	for len(ri) > 0 {
		n := copy(buf[:], ri)
		copy(ri[:n], rj[:n])
		copy(rj[:n], buf[:n])
		ri, rj = ri[n:], rj[n:]
	}
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
func (m *Matrix[E]) Inverse() (*Matrix[E], error) {
	if m.rows != m.cols {
		panic("matrix: Inverse of non-square matrix")
	}
	n := m.rows
	// Standard Gauss-Jordan on the augmented matrix [m | I].
	aug := New(m.f, n, 2*n)
	for i := 0; i < n; i++ {
		copy(aug.Row(i)[:n], m.Row(i))
		aug.Set(i, n+i, 1)
	}
	f := m.f
	dsts := make([][]E, 0, n)
	cs := make([]E, 0, n)
	for c := 0; c < n; c++ {
		p := -1
		for i := c; i < n; i++ {
			if aug.At(i, c) != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			return nil, ErrSingular
		}
		aug.swapRows(c, p)
		f.MulSlice(aug.Row(c), f.Inv(aug.At(c, c)))
		dsts, cs = dsts[:0], cs[:0]
		for i := 0; i < n; i++ {
			if i != c {
				if v := aug.At(i, c); v != 0 {
					dsts = append(dsts, aug.Row(i))
					cs = append(cs, v)
				}
			}
		}
		f.EliminateRows(dsts, aug.Row(c), cs)
	}
	inv := New(m.f, n, n)
	for i := 0; i < n; i++ {
		copy(inv.Row(i), aug.Row(i)[n:])
	}
	return inv, nil
}

// Solve finds X with A*X = B, where A is rows x cols with full column rank
// and B has the same row count as A. It returns ErrUnderdetermined if A has
// rank below its column count and ErrInconsistent if no solution exists.
// Neither operand is modified.
func Solve[E gf.Elem](a, b *Matrix[E]) (*Matrix[E], error) {
	if a.rows != b.rows {
		panic("matrix: Solve row mismatch")
	}
	f := a.f
	n, k := a.rows, a.cols
	aug := New(f, n, k+b.cols)
	for i := 0; i < n; i++ {
		copy(aug.Row(i)[:k], a.Row(i))
		copy(aug.Row(i)[k:], b.Row(i))
	}
	// Forward elimination restricted to the first k columns.
	r := 0
	pivCols := make([]int, 0, k)
	dsts := make([][]E, 0, n)
	cs := make([]E, 0, n)
	for c := 0; c < k && r < n; c++ {
		p := -1
		for i := r; i < n; i++ {
			if aug.At(i, c) != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		aug.swapRows(r, p)
		f.MulSlice(aug.Row(r)[c:], f.Inv(aug.At(r, c)))
		dsts, cs = dsts[:0], cs[:0]
		for i := 0; i < n; i++ {
			if i != r {
				if v := aug.At(i, c); v != 0 {
					dsts = append(dsts, aug.Row(i)[c:])
					cs = append(cs, v)
				}
			}
		}
		f.EliminateRows(dsts, aug.Row(r)[c:], cs)
		pivCols = append(pivCols, c)
		r++
	}
	if r < k {
		return nil, ErrUnderdetermined
	}
	// Any leftover row with a nonzero RHS is an inconsistency.
	for i := r; i < n; i++ {
		for _, v := range aug.Row(i)[k:] {
			if v != 0 {
				return nil, ErrInconsistent
			}
		}
	}
	x := New(f, k, b.cols)
	for ri, c := range pivCols {
		copy(x.Row(c), aug.Row(ri)[k:])
	}
	return x, nil
}

// SolveLeft finds the row vector c with c*A = v, i.e. expresses v as a
// linear combination of the rows of A. This is the eavesdropper's primitive:
// if a secret combination lies in the row space of her knowledge matrix she
// can reproduce its contents. Returns ErrInconsistent when v is not in the
// row space, ErrUnderdetermined when the combination is not unique (the
// caller usually only cares about membership, so any solution would do, but
// we surface the condition instead of picking silently).
func SolveLeft[E gf.Elem](a *Matrix[E], v []E) ([]E, error) {
	if len(v) != a.cols {
		panic("matrix: SolveLeft length mismatch")
	}
	at := a.Transpose()
	rhs := New(a.f, len(v), 1)
	for i, x := range v {
		rhs.Set(i, 0, x)
	}
	x, err := Solve(at, rhs)
	if err != nil {
		return nil, err
	}
	out := make([]E, a.rows)
	for i := range out {
		out[i] = x.At(i, 0)
	}
	return out, nil
}

// InRowSpace reports whether v lies in the row space of a. Unlike
// SolveLeft it treats a non-unique combination as membership.
func InRowSpace[E gf.Elem](a *Matrix[E], v []E) bool {
	if len(v) != a.cols {
		panic("matrix: InRowSpace length mismatch")
	}
	w := New(a.f, a.rows+1, a.cols)
	copy(w.d, a.d)
	copy(w.Row(a.rows), v)
	return w.echelon() == a.Rank()
}

// Det returns the determinant via Gaussian elimination. In characteristic
// 2 row swaps do not flip the sign, so no parity tracking is needed.
func (m *Matrix[E]) Det() E {
	if m.rows != m.cols {
		panic("matrix: Det of non-square matrix")
	}
	w := m.Clone()
	f := m.f
	det := E(1)
	dsts := make([][]E, 0, w.rows)
	cs := make([]E, 0, w.rows)
	for c := 0; c < w.cols; c++ {
		p := -1
		for i := c; i < w.rows; i++ {
			if w.At(i, c) != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			return 0
		}
		w.swapRows(c, p)
		piv := w.At(c, c)
		det = f.Mul(det, piv)
		inv := f.Inv(piv)
		dsts, cs = dsts[:0], cs[:0]
		for i := c + 1; i < w.rows; i++ {
			if v := w.At(i, c); v != 0 {
				dsts = append(dsts, w.Row(i)[c:])
				cs = append(cs, f.Mul(v, inv))
			}
		}
		f.EliminateRows(dsts, w.Row(c)[c:], cs)
	}
	return det
}
