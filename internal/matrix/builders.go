package matrix

import (
	"fmt"

	"repro/internal/gf"
)

// Cauchy returns the rows x cols Cauchy matrix with entry
// C[i][j] = 1 / (a_i + b_j), using the canonical point sets a_i = i and
// b_j = rows + j. Every square submatrix of a Cauchy matrix is nonsingular,
// which is exactly the property the paper's "well-defined constructions"
// need: the y-packet extractor must be secure against *any* erasure pattern
// of the right size, and the z-packet repair must be decodable from *any*
// sufficiently large subset.
//
// The construction needs rows+cols distinct field points, so
// rows+cols <= f.Size(); Cauchy panics otherwise (the protocol sizes its
// rounds to respect this, and defaults to GF(2^16) where the bound is moot).
func Cauchy[E gf.Elem](f *gf.Field[E], rows, cols int) *Matrix[E] {
	if rows+cols > f.Size() {
		panic(fmt.Sprintf("matrix: Cauchy %dx%d needs %d distinct points but %s has only %d",
			rows, cols, rows+cols, f.Name(), f.Size()))
	}
	m := New(f, rows, cols)
	for i := 0; i < rows; i++ {
		ri := m.Row(i)
		for j := 0; j < cols; j++ {
			ri[j] = f.Inv(E(i) ^ E(rows+j))
		}
	}
	return m
}

// CauchyAt returns the Cauchy matrix for explicit point sets. All points in
// a must be distinct, all points in b must be distinct, and a_i != b_j for
// every pair; CauchyAt panics otherwise.
func CauchyAt[E gf.Elem](f *gf.Field[E], a, b []E) *Matrix[E] {
	seen := make(map[E]bool, len(a)+len(b))
	for _, x := range a {
		if seen[x] {
			panic("matrix: CauchyAt duplicate point")
		}
		seen[x] = true
	}
	for _, x := range b {
		if seen[x] {
			panic("matrix: CauchyAt duplicate point")
		}
		seen[x] = true
	}
	m := New(f, len(a), len(b))
	for i := range a {
		ri := m.Row(i)
		for j := range b {
			ri[j] = f.Inv(a[i] ^ b[j])
		}
	}
	return m
}

// Vandermonde returns the rows x cols Vandermonde matrix V[i][j] = a_i^j
// over distinct evaluation points a_i = i+1 (skipping zero). Any subset of
// cols rows is invertible (polynomial interpolation), which makes
// it a valid MDS *generator*; unlike Cauchy matrices, arbitrary square
// submatrices are NOT guaranteed nonsingular, so Vandermonde is suitable
// for erasure codes but not for the wiretap extractor. It is provided for
// the coding ablation and tests.
func Vandermonde[E gf.Elem](f *gf.Field[E], rows, cols int) *Matrix[E] {
	if rows >= f.Size() {
		panic("matrix: Vandermonde needs rows < field size")
	}
	m := New(f, rows, cols)
	for i := 0; i < rows; i++ {
		x := E(i + 1)
		v := E(1)
		ri := m.Row(i)
		for j := 0; j < cols; j++ {
			ri[j] = v
			v = f.Mul(v, x)
		}
	}
	return m
}
