package matrix

import (
	"math/rand"
	"testing"

	"repro/internal/gf"
)

// The panel elimination engine defers row updates and selects pivots
// lazily; these tests pin it against a naive eager per-column reference
// (scalar arithmetic, immediate updates) — the algorithm the pre-panel
// implementation used — across shapes, fields, and rank-deficient
// inputs, including the engine's observable outputs: rank, pivot
// positions, pivot-value products (Det), inverses and solutions.

// refEliminate is the eager reference: column-by-column, scalar ops,
// immediate updates. Returns pivot positions and the pivot product.
func refEliminate[E gf.Elem](m *Matrix[E], limitCols int, jordan bool) ([]Pivot, E) {
	f := m.f
	det := E(1)
	var pivots []Pivot
	r := 0
	for c := 0; c < limitCols && r < m.rows; c++ {
		p := -1
		for i := r; i < m.rows; i++ {
			if m.At(i, c) != 0 {
				p = i
				break
			}
		}
		if p < 0 {
			continue
		}
		m.swapRows(r, p)
		det = f.Mul(det, m.At(r, c))
		f.MulSlice(m.Row(r)[c:], f.Inv(m.At(r, c)))
		lo := r + 1
		if jordan {
			lo = 0
		}
		for i := lo; i < m.rows; i++ {
			if i == r {
				continue
			}
			if v := m.At(i, c); v != 0 {
				f.AddMulSlice(m.Row(i)[c:], m.Row(r)[c:], v)
			}
		}
		pivots = append(pivots, Pivot{Row: r, Col: c})
		r++
	}
	return pivots, det
}

// randLowRank fills an approximately rank-r matrix: a product of random
// rows x r and r x cols factors.
func randLowRank[E gf.Elem](f *gf.Field[E], rng *rand.Rand, rows, cols, r int) *Matrix[E] {
	a := New(f, rows, r)
	b := New(f, r, cols)
	for i := range a.d {
		a.d[i] = E(rng.Intn(f.Size()))
	}
	for i := range b.d {
		b.d[i] = E(rng.Intn(f.Size()))
	}
	return a.Mul(b)
}

func testPanelAgainstReference[E gf.Elem](t *testing.T, f *gf.Field[E]) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	shapes := [][2]int{{1, 1}, {3, 5}, {5, 3}, {4, 4}, {7, 7}, {9, 13}, {13, 9}, {17, 17}, {33, 40}}
	for _, sh := range shapes {
		rows, cols := sh[0], sh[1]
		for trial := 0; trial < 6; trial++ {
			var m *Matrix[E]
			switch trial % 3 {
			case 0: // dense random
				m = New(f, rows, cols)
				for i := range m.d {
					m.d[i] = E(rng.Intn(f.Size()))
				}
			case 1: // rank deficient
				r := 1 + rng.Intn(max(1, min(rows, cols)-1))
				m = randLowRank(f, rng, rows, cols, r)
			default: // sparse with zero columns (forces pivot skips)
				m = New(f, rows, cols)
				for i := 0; i < rows; i++ {
					for j := 0; j < cols; j++ {
						if j%3 != 1 && rng.Intn(3) == 0 {
							m.Set(i, j, E(rng.Intn(f.Size())))
						}
					}
				}
			}
			for _, jordan := range []bool{false, true} {
				limit := cols
				if trial%2 == 1 && cols > 2 {
					limit = cols - 2
				}
				got := m.Clone()
				gotPiv, gotDet := got.panelEliminate(limit, jordan, nil)
				want := m.Clone()
				wantPiv, wantDet := refEliminate(want, limit, jordan)
				if len(gotPiv) != len(wantPiv) {
					t.Fatalf("%s %dx%d jordan=%v: panel found %d pivots, reference %d",
						f.Name(), rows, cols, jordan, len(gotPiv), len(wantPiv))
				}
				for i := range gotPiv {
					if gotPiv[i] != wantPiv[i] {
						t.Fatalf("%s %dx%d jordan=%v: pivot %d = %v, reference %v",
							f.Name(), rows, cols, jordan, i, gotPiv[i], wantPiv[i])
					}
				}
				if gotDet != wantDet {
					t.Fatalf("%s %dx%d jordan=%v: pivot product %d, reference %d",
						f.Name(), rows, cols, jordan, gotDet, wantDet)
				}
				// In Jordan mode the reduced system is unique given the
				// pivot set, so the full matrix contents must agree.
				if jordan && !got.Equal(want) {
					t.Fatalf("%s %dx%d jordan: panel result differs from reference\n got: %v\nwant: %v",
						f.Name(), rows, cols, got, want)
				}
			}
		}
	}
}

func TestPanelEliminateMatchesReference(t *testing.T) {
	testPanelAgainstReference(t, gf.GF256())
	testPanelAgainstReference(t, gf.GF65536())
}

// TestGaussJordanPivotColumnsUnit pins the exported GaussJordan contract:
// pivot columns end as unit vectors, so augmented right-hand sides are
// directly readable.
func TestGaussJordanPivotColumnsUnit(t *testing.T) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(32))
	m := New(f, 9, 14)
	for i := range m.d {
		m.d[i] = uint16(rng.Intn(65536))
	}
	pivots := GaussJordan(m, 9)
	for _, p := range pivots {
		for i := 0; i < m.Rows(); i++ {
			want := uint16(0)
			if i == p.Row {
				want = 1
			}
			if m.At(i, p.Col) != want {
				t.Fatalf("pivot column %d row %d = %d, want %d", p.Col, i, m.At(i, p.Col), want)
			}
		}
	}
}

// TestEliminationSteadyStateAllocs is the zero-allocation gate on the
// elimination hot path: once a matrix has eliminated once (pivot buffer
// grown), re-eliminating fresh contents in the same workspace must not
// allocate — no dsts/cs header churn, no nibble-table escapes, no fused
// scratch on the heap.
func TestEliminationSteadyStateAllocs(t *testing.T) {
	f := gf.GF65536()
	rng := rand.New(rand.NewSource(33))
	orig := New(f, 24, 160)
	for i := range orig.d {
		orig.d[i] = uint16(rng.Intn(65536))
	}
	w := orig.Clone()
	w.echelon() // warm the pivot buffer
	for _, mode := range []struct {
		name   string
		jordan bool
	}{{"echelon", false}, {"jordan", true}} {
		run := func() {
			copy(w.d, orig.d)
			w.piv, _ = w.panelEliminate(w.cols, mode.jordan, w.piv[:0])
		}
		if n := testing.AllocsPerRun(50, run); n != 0 {
			t.Errorf("steady-state %s elimination allocates %v times per run, want 0", mode.name, n)
		}
	}
}
