// Package packet defines the data units of the protocol — x-packets and
// their reception bookkeeping — plus the compact ID-set bitmap used in
// acknowledgment reports.
package packet

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// ID identifies an x-packet within a round. IDs are dense: the leader
// transmits x-packets 0..N-1 each round.
type ID uint32

// Packet is one transmitted data unit: an identifier plus an opaque
// payload. Payload bytes are never interpreted by the protocol other than
// as GF(2^m) symbol vectors.
type Packet struct {
	ID      ID
	Payload []byte
}

// RandomPayload fills a fresh payload of n bytes from rng. The protocol's
// secrecy relies on x-payloads being uniform and independent; in a real
// deployment they come from a hardware RNG, in the simulator from the
// experiment's seeded source.
func RandomPayload(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// NewBatch creates packets 0..n-1 with independent random payloads of
// size bytes each.
func NewBatch(rng *rand.Rand, n, size int) []Packet {
	out := make([]Packet, n)
	for i := range out {
		out[i] = Packet{ID: ID(i), Payload: RandomPayload(rng, size)}
	}
	return out
}

// IDSet is a bitmap over packet IDs 0..n-1. The zero value is an empty set
// with capacity 0; use NewIDSet or grow via Add.
type IDSet struct {
	words []uint64
}

// NewIDSet returns an empty set sized for IDs < n.
func NewIDSet(n int) *IDSet {
	return &IDSet{words: make([]uint64, (n+63)/64)}
}

// FromSlice builds a set containing exactly the given IDs.
func FromSlice(ids []ID) *IDSet {
	s := &IDSet{}
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

func (s *IDSet) grow(id ID) {
	w := int(id)/64 + 1
	for len(s.words) < w {
		s.words = append(s.words, 0)
	}
}

// Add inserts id.
func (s *IDSet) Add(id ID) {
	s.grow(id)
	s.words[id/64] |= 1 << (id % 64)
}

// Remove deletes id if present.
func (s *IDSet) Remove(id ID) {
	if int(id)/64 < len(s.words) {
		s.words[id/64] &^= 1 << (id % 64)
	}
}

// Has reports membership.
func (s *IDSet) Has(id ID) bool {
	w := int(id) / 64
	return w < len(s.words) && s.words[w]&(1<<(id%64)) != 0
}

// Count returns the number of elements.
func (s *IDSet) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns a deep copy.
func (s *IDSet) Clone() *IDSet {
	return &IDSet{words: append([]uint64(nil), s.words...)}
}

// Union returns a new set with all elements of s and o.
func (s *IDSet) Union(o *IDSet) *IDSet {
	a, b := s.words, o.words
	if len(a) < len(b) {
		a, b = b, a
	}
	out := append([]uint64(nil), a...)
	for i := range b {
		out[i] |= b[i]
	}
	return &IDSet{words: out}
}

// Intersect returns a new set with the elements common to s and o.
func (s *IDSet) Intersect(o *IDSet) *IDSet {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = s.words[i] & o.words[i]
	}
	return &IDSet{words: out}
}

// Diff returns a new set with the elements of s not in o.
func (s *IDSet) Diff(o *IDSet) *IDSet {
	out := append([]uint64(nil), s.words...)
	for i := range out {
		if i < len(o.words) {
			out[i] &^= o.words[i]
		}
	}
	return &IDSet{words: out}
}

// Slice returns the members in increasing order.
func (s *IDSet) Slice() []ID {
	var out []ID
	for wi, w := range s.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			out = append(out, ID(wi*64+bit))
			w &= w - 1
		}
	}
	return out
}

// Words exposes the raw bitmap for wire encoding.
func (s *IDSet) Words() []uint64 { return s.words }

// SetFromWords rebuilds a set from its wire representation.
func SetFromWords(words []uint64) *IDSet {
	return &IDSet{words: append([]uint64(nil), words...)}
}

// String renders the set compactly for debugging.
func (s *IDSet) String() string {
	return fmt.Sprintf("IDSet%v", s.Slice())
}

// Equal reports whether s and o contain the same IDs.
func (s *IDSet) Equal(o *IDSet) bool {
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(o.words) {
			b = o.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}
