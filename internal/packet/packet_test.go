package packet

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomPayloadAndBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := RandomPayload(rng, 100)
	if len(p) != 100 {
		t.Fatalf("payload len %d", len(p))
	}
	batch := NewBatch(rng, 5, 16)
	if len(batch) != 5 {
		t.Fatalf("batch len %d", len(batch))
	}
	for i, pkt := range batch {
		if pkt.ID != ID(i) {
			t.Fatalf("batch[%d].ID = %d", i, pkt.ID)
		}
		if len(pkt.Payload) != 16 {
			t.Fatalf("batch[%d] payload len %d", i, len(pkt.Payload))
		}
	}
	// Payloads should differ (overwhelmingly likely).
	if string(batch[0].Payload) == string(batch[1].Payload) {
		t.Fatal("two random payloads identical")
	}
}

func TestIDSetBasics(t *testing.T) {
	s := NewIDSet(100)
	if s.Count() != 0 {
		t.Fatal("new set not empty")
	}
	s.Add(0)
	s.Add(63)
	s.Add(64)
	s.Add(99)
	if !s.Has(0) || !s.Has(63) || !s.Has(64) || !s.Has(99) {
		t.Fatal("Has missing added element")
	}
	if s.Has(1) || s.Has(100) || s.Has(1000) {
		t.Fatal("Has reports absent element")
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d", s.Count())
	}
	s.Remove(63)
	if s.Has(63) || s.Count() != 3 {
		t.Fatal("Remove failed")
	}
	s.Remove(2000) // out of range: no-op
	got := s.Slice()
	want := []ID{0, 64, 99}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestIDSetGrowth(t *testing.T) {
	s := &IDSet{} // zero value
	s.Add(500)
	if !s.Has(500) || s.Count() != 1 {
		t.Fatal("zero-value set cannot grow")
	}
}

func TestIDSetOpsAgainstMapReference(t *testing.T) {
	// Property test: Union/Intersect/Diff agree with a map-based model.
	type input struct {
		A, B []uint16
	}
	check := func(in input) bool {
		am := map[ID]bool{}
		bm := map[ID]bool{}
		var as, bs []ID
		for _, v := range in.A {
			id := ID(v % 300)
			am[id] = true
			as = append(as, id)
		}
		for _, v := range in.B {
			id := ID(v % 300)
			bm[id] = true
			bs = append(bs, id)
		}
		a, b := FromSlice(as), FromSlice(bs)
		u, x, d := a.Union(b), a.Intersect(b), a.Diff(b)
		for id := ID(0); id < 310; id++ {
			if u.Has(id) != (am[id] || bm[id]) {
				return false
			}
			if x.Has(id) != (am[id] && bm[id]) {
				return false
			}
			if d.Has(id) != (am[id] && !bm[id]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIDSetUnionAsymmetricLengths(t *testing.T) {
	a := FromSlice([]ID{1})
	b := FromSlice([]ID{500})
	if got := a.Union(b).Count(); got != 2 {
		t.Fatalf("union count %d", got)
	}
	if got := b.Union(a).Count(); got != 2 {
		t.Fatalf("union count %d (swapped)", got)
	}
	if got := a.Intersect(b).Count(); got != 0 {
		t.Fatalf("intersect count %d", got)
	}
	if got := b.Diff(a).Count(); got != 1 {
		t.Fatalf("diff count %d", got)
	}
}

func TestIDSetCloneIndependence(t *testing.T) {
	a := FromSlice([]ID{1, 2})
	c := a.Clone()
	c.Add(3)
	if a.Has(3) {
		t.Fatal("Clone shares storage")
	}
}

func TestIDSetEqual(t *testing.T) {
	a := FromSlice([]ID{1, 70})
	b := FromSlice([]ID{1, 70})
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	// Different backing lengths but same content.
	c := NewIDSet(1000)
	c.Add(1)
	c.Add(70)
	if !a.Equal(c) || !c.Equal(a) {
		t.Fatal("content-equal sets with different capacities reported unequal")
	}
	b.Add(2)
	if a.Equal(b) {
		t.Fatal("different sets reported equal")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	a := FromSlice([]ID{3, 64, 129})
	b := SetFromWords(a.Words())
	if !a.Equal(b) {
		t.Fatal("Words/SetFromWords round trip failed")
	}
	// SetFromWords must copy.
	b.Add(4)
	if a.Has(4) {
		t.Fatal("SetFromWords aliases input")
	}
	if a.String() == "" {
		t.Fatal("String empty")
	}
}
