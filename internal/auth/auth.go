// Package auth implements the defense against an ACTIVE adversary that
// the paper's §2 defers to its technical report: authentication of the
// reliable control messages (reception reports, y/z/s announcements) so
// Eve cannot impersonate a terminal.
//
// The scheme follows the paper's bootstrap argument: the terminals share a
// small initial piece of information out of band ("the need for this
// bootstrap information is fundamentally unavoidable"), every reliable
// frame carries an HMAC-SHA-256 tag under the current group auth key, and
// after every successful protocol round the key is ratcheted forward with
// the freshly generated group secret — so "any shared secrets subsequently
// generated through the protocol do not depend in any way on the bootstrap
// information", and compromise of an old key does not forge future
// traffic once a single honest round has completed.
package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
)

// TagSize is the length of a frame tag in bytes.
const TagSize = sha256.Size

// Domain-separation labels.
var (
	labelBootstrap = []byte("thinair/auth/bootstrap/v1")
	labelRatchet   = []byte("thinair/auth/ratchet/v1")
	labelTag       = []byte("thinair/auth/tag/v1")
	labelExport    = []byte("thinair/auth/export/v1")
)

// ErrBadTag is returned when a frame fails verification.
var ErrBadTag = errors.New("auth: tag verification failed")

// ErrShortFrame is returned when a sealed frame is too short to contain a
// tag.
var ErrShortFrame = errors.New("auth: sealed frame shorter than a tag")

// KeyChain holds the group's current authentication key and ratchets it
// forward with each group secret. It is safe for concurrent use.
type KeyChain struct {
	mu    sync.Mutex
	key   [TagSize]byte
	epoch uint64
}

// NewKeyChain derives the epoch-0 key from the out-of-band bootstrap
// secret. Any two parties constructed from the same bootstrap agree on
// every subsequent key as long as they ratchet with the same secrets.
func NewKeyChain(bootstrap []byte) *KeyChain {
	kc := &KeyChain{}
	mac := hmac.New(sha256.New, labelBootstrap)
	mac.Write(bootstrap)
	copy(kc.key[:], mac.Sum(nil))
	return kc
}

// Epoch returns how many times the chain has been ratcheted.
func (kc *KeyChain) Epoch() uint64 {
	kc.mu.Lock()
	defer kc.mu.Unlock()
	return kc.epoch
}

// Ratchet advances the chain with a freshly agreed group secret:
// key' = HMAC(key, label || secret). After one honest ratchet, knowledge
// of the bootstrap alone no longer authenticates traffic.
func (kc *KeyChain) Ratchet(groupSecret []byte) {
	kc.mu.Lock()
	defer kc.mu.Unlock()
	mac := hmac.New(sha256.New, kc.key[:])
	mac.Write(labelRatchet)
	mac.Write(groupSecret)
	copy(kc.key[:], mac.Sum(nil))
	kc.epoch++
}

// Tag computes the authentication tag of a frame under the current key.
// The epoch is mixed in so a frame sealed before a ratchet cannot be
// replayed after it.
func (kc *KeyChain) Tag(frame []byte) [TagSize]byte {
	kc.mu.Lock()
	key, epoch := kc.key, kc.epoch
	kc.mu.Unlock()
	return tagWith(key, epoch, frame)
}

func tagWith(key [TagSize]byte, epoch uint64, frame []byte) [TagSize]byte {
	mac := hmac.New(sha256.New, key[:])
	mac.Write(labelTag)
	var eb [8]byte
	for i := 0; i < 8; i++ {
		eb[i] = byte(epoch >> (8 * (7 - i)))
	}
	mac.Write(eb[:])
	mac.Write(frame)
	var out [TagSize]byte
	copy(out[:], mac.Sum(nil))
	return out
}

// Verify checks a frame/tag pair in constant time.
func (kc *KeyChain) Verify(frame []byte, tag [TagSize]byte) bool {
	want := kc.Tag(frame)
	return hmac.Equal(want[:], tag[:])
}

// Seal appends the tag to the frame.
func (kc *KeyChain) Seal(frame []byte) []byte {
	tag := kc.Tag(frame)
	out := make([]byte, 0, len(frame)+TagSize)
	out = append(out, frame...)
	return append(out, tag[:]...)
}

// Open verifies a sealed frame and returns the payload.
func (kc *KeyChain) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < TagSize {
		return nil, ErrShortFrame
	}
	frame := sealed[:len(sealed)-TagSize]
	var tag [TagSize]byte
	copy(tag[:], sealed[len(sealed)-TagSize:])
	if !kc.Verify(frame, tag) {
		return nil, fmt.Errorf("%w (epoch %d)", ErrBadTag, kc.Epoch())
	}
	return append([]byte(nil), frame...), nil
}

// Export derives an application key (e.g. an encryption key for the
// group's traffic) from the current chain state without exposing the
// authentication key itself.
func (kc *KeyChain) Export(label string, n int) []byte {
	kc.mu.Lock()
	key := kc.key
	kc.mu.Unlock()
	var out []byte
	var counter byte
	for len(out) < n {
		mac := hmac.New(sha256.New, key[:])
		mac.Write(labelExport)
		mac.Write([]byte{counter})
		mac.Write([]byte(label))
		out = append(out, mac.Sum(nil)...)
		counter++
	}
	return out[:n]
}
