package auth

import (
	"bytes"
	"errors"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	kc := NewKeyChain([]byte("bootstrap"))
	frame := []byte("hello terminals")
	sealed := kc.Seal(frame)
	if len(sealed) != len(frame)+TagSize {
		t.Fatalf("sealed length %d", len(sealed))
	}
	got, err := kc.Open(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("payload mismatch")
	}
}

func TestTamperDetection(t *testing.T) {
	kc := NewKeyChain([]byte("bootstrap"))
	sealed := kc.Seal([]byte("report: received 1,3,5"))
	for i := range sealed {
		c := append([]byte(nil), sealed...)
		c[i] ^= 1
		if _, err := kc.Open(c); !errors.Is(err, ErrBadTag) {
			t.Fatalf("tamper at byte %d: err = %v", i, err)
		}
	}
	if _, err := kc.Open(sealed[:TagSize-1]); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("short frame err = %v", err)
	}
}

func TestPeersAgree(t *testing.T) {
	a := NewKeyChain([]byte("shared"))
	b := NewKeyChain([]byte("shared"))
	sealed := a.Seal([]byte("msg"))
	if _, err := b.Open(sealed); err != nil {
		t.Fatalf("peer rejected: %v", err)
	}
	// Different bootstrap -> rejection.
	c := NewKeyChain([]byte("other"))
	if _, err := c.Open(sealed); err == nil {
		t.Fatal("wrong bootstrap accepted")
	}
}

func TestRatchetAdvancesAndStaysInSync(t *testing.T) {
	a := NewKeyChain([]byte("shared"))
	b := NewKeyChain([]byte("shared"))
	if a.Epoch() != 0 {
		t.Fatal("initial epoch")
	}
	secret := []byte("round-1 group secret")
	a.Ratchet(secret)
	b.Ratchet(secret)
	if a.Epoch() != 1 || b.Epoch() != 1 {
		t.Fatal("epoch not advanced")
	}
	sealed := a.Seal([]byte("post-ratchet"))
	if _, err := b.Open(sealed); err != nil {
		t.Fatalf("in-sync peer rejected: %v", err)
	}
}

func TestRatchetInvalidatesOldKeyAndReplay(t *testing.T) {
	a := NewKeyChain([]byte("shared"))
	b := NewKeyChain([]byte("shared"))
	old := a.Seal([]byte("pre-ratchet frame"))
	a.Ratchet([]byte("s1"))
	b.Ratchet([]byte("s1"))
	// Replay of a pre-ratchet frame must fail (epoch is mixed into tags).
	if _, err := b.Open(old); err == nil {
		t.Fatal("replay across ratchet accepted")
	}
	// Diverged ratchets must reject each other.
	a.Ratchet([]byte("s2"))
	b.Ratchet([]byte("different"))
	if _, err := b.Open(a.Seal([]byte("x"))); err == nil {
		t.Fatal("diverged chains still agree")
	}
}

func TestBootstrapIndependenceAfterRatchet(t *testing.T) {
	// An attacker who stole the bootstrap but missed round 1's secret
	// cannot forge post-ratchet frames — the paper's forward-security
	// claim for continuously refreshed secrets.
	honest := NewKeyChain([]byte("bootstrap"))
	attacker := NewKeyChain([]byte("bootstrap")) // same stolen bootstrap
	honest.Ratchet([]byte("secret the attacker missed"))
	forged := attacker.Seal([]byte("impersonation attempt"))
	if _, err := honest.Open(forged); err == nil {
		t.Fatal("attacker with bootstrap only forged post-ratchet frame")
	}
}

func TestExport(t *testing.T) {
	a := NewKeyChain([]byte("shared"))
	b := NewKeyChain([]byte("shared"))
	ka := a.Export("traffic", 48)
	kb := b.Export("traffic", 48)
	if len(ka) != 48 || !bytes.Equal(ka, kb) {
		t.Fatal("export mismatch")
	}
	if bytes.Equal(ka, a.Export("other-label", 48)) {
		t.Fatal("labels not separated")
	}
	a.Ratchet([]byte("s"))
	if bytes.Equal(ka, a.Export("traffic", 48)) {
		t.Fatal("export unchanged after ratchet")
	}
	// Export must not equal the raw key material used for tags.
	tag := a.Tag([]byte{})
	if bytes.Equal(a.Export("traffic", 32), tag[:]) {
		t.Fatal("export collides with tag space")
	}
}

func TestTagDeterminism(t *testing.T) {
	kc := NewKeyChain([]byte("b"))
	t1 := kc.Tag([]byte("f"))
	t2 := kc.Tag([]byte("f"))
	if t1 != t2 {
		t.Fatal("tags nondeterministic")
	}
	if t1 == kc.Tag([]byte("g")) {
		t.Fatal("different frames share a tag")
	}
}
