package testbed

import (
	"math"
	"testing"

	"repro/internal/core"
)

func TestGeometry(t *testing.T) {
	if math.Abs(CellSide()-math.Sqrt(14)/3) > 1e-12 {
		t.Fatalf("cell side = %v", CellSide())
	}
	// The paper quotes the minimum distance (cell diagonal) as 1.75 m.
	if math.Abs(MinDistance()-1.75) > 0.02 {
		t.Fatalf("min distance = %v, want ~1.75", MinDistance())
	}
	c := Cell(5) // row 1, col 2
	r, col := c.RowCol()
	if r != 1 || col != 2 {
		t.Fatalf("RowCol = %d,%d", r, col)
	}
	p := c.Center()
	s := CellSide()
	if math.Abs(p.X-2.5*s) > 1e-12 || math.Abs(p.Y-1.5*s) > 1e-12 {
		t.Fatalf("center = %+v", p)
	}
}

func TestPlacementValidate(t *testing.T) {
	ok := Placement{EveCell: 0, TerminalCells: []Cell{1, 2, 3}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Placement{
		{EveCell: 9, TerminalCells: []Cell{0}},
		{EveCell: 0, TerminalCells: []Cell{0}},
		{EveCell: 0, TerminalCells: []Cell{1, 1}},
		{EveCell: 0, TerminalCells: []Cell{-1}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEnumeratePlacements(t *testing.T) {
	// 9 * C(8, n).
	want := map[int]int{1: 72, 2: 252, 3: 504, 8: 9}
	for n, count := range want {
		got := EnumeratePlacements(n)
		if len(got) != count {
			t.Fatalf("n=%d: %d placements, want %d", n, len(got), count)
		}
		for _, p := range got {
			if err := p.Validate(); err != nil {
				t.Fatalf("n=%d: invalid placement %+v: %v", n, p, err)
			}
			if len(p.TerminalCells) != n {
				t.Fatalf("n=%d: wrong terminal count", n)
			}
		}
	}
}

func TestEnumeratePlacementsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=9 did not panic")
		}
	}()
	EnumeratePlacements(9)
}

func TestExperimentRunOracle(t *testing.T) {
	ex := &Experiment{
		Placement: Placement{EveCell: 4, TerminalCells: []Cell{0, 2, 6, 8}},
		Channel:   DefaultChannel(),
		Protocol: core.Config{
			XPerRound: 45, PayloadBytes: 20, Rounds: 2, Rotate: true,
			Estimator: core.Oracle{}, Seed: 42,
		},
		Seed: 7,
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAgreed {
		t.Fatal("terminals disagreed")
	}
	if res.UnknownDims != res.SecretDims {
		t.Fatal("oracle run leaked")
	}
	if res.SecretDims == 0 {
		t.Fatal("no secret on a friendly placement")
	}
	// Interference must be biting: Eve misses a sizeable fraction.
	for _, ri := range res.Rounds {
		if ri.EveMissRate < 0.2 {
			t.Fatalf("Eve miss rate %v suspiciously low; jamming broken?", ri.EveMissRate)
		}
	}
}

func TestExperimentTerminalCountMismatch(t *testing.T) {
	ex := &Experiment{
		Placement: Placement{EveCell: 0, TerminalCells: []Cell{1, 2}},
		Channel:   DefaultChannel(),
		Protocol:  core.Config{Terminals: 5, XPerRound: 10},
	}
	if _, err := ex.Run(); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestExperimentDefaultsTerminalsFromPlacement(t *testing.T) {
	ex := &Experiment{
		Placement: Placement{EveCell: 0, TerminalCells: []Cell{1, 8}},
		Channel:   DefaultChannel(),
		Protocol:  core.Config{XPerRound: 20, PayloadBytes: 8, Estimator: core.Oracle{}},
		Seed:      3,
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result")
	}
}

func TestSweepSmall(t *testing.T) {
	res, err := Sweep(3, SweepOptions{
		Protocol:      core.Config{XPerRound: 36, PayloadBytes: 8, Rounds: 1, Rotate: true},
		Channel:       DefaultChannel(),
		Seed:          1,
		MaxPlacements: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Experiments == 0 || res.Experiments > 12 {
		t.Fatalf("experiments = %d", res.Experiments)
	}
	if res.Reliability.N+res.NoSecret != res.Experiments {
		t.Fatalf("accounting: rel=%d nosecret=%d total=%d", res.Reliability.N, res.NoSecret, res.Experiments)
	}
	if res.Efficiency.N != res.Experiments {
		t.Fatal("efficiency sample size mismatch")
	}
}

func TestSweepDeterminism(t *testing.T) {
	opt := SweepOptions{
		Protocol:      core.Config{XPerRound: 27, PayloadBytes: 8, Rounds: 1},
		Channel:       DefaultChannel(),
		Seed:          5,
		MaxPlacements: 6,
	}
	a, err := Sweep(2, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(2, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Reliability != b.Reliability || a.Efficiency != b.Efficiency || a.NoSecret != b.NoSecret {
		t.Fatal("sweep not deterministic")
	}
}

func TestSelfJamExperiment(t *testing.T) {
	ch := DefaultChannel()
	ch.SelfJam = true
	ex := &Experiment{
		Placement: Placement{EveCell: 4, TerminalCells: []Cell{0, 2, 6}},
		Channel:   ch,
		Protocol:  core.Config{XPerRound: 45, PayloadBytes: 8, Rounds: 2, Rotate: true, Estimator: core.Oracle{}},
		Seed:      5,
	}
	res, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAgreed || res.UnknownDims != res.SecretDims {
		t.Fatal("self-jam session broken")
	}
}

func TestCancellingEveHearsMore(t *testing.T) {
	base := &Experiment{
		Placement: Placement{EveCell: 4, TerminalCells: []Cell{0, 2, 6, 8}},
		Channel:   DefaultChannel(),
		Protocol:  core.Config{XPerRound: 90, PayloadBytes: 8, Rounds: 2, Rotate: true, Estimator: core.Oracle{}, Seed: 7},
		Seed:      9,
	}
	normal, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	cancel := *base
	cancel.Protocol = base.Protocol // Config copied by value; same seeds
	cancel.EveCancelsJamming = true
	strong, err := cancel.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Same erasure draw stream, jamming removed only for Eve: she must
	// miss strictly less (or equal), so the oracle secret shrinks.
	var missN, missC float64
	for i := range normal.Rounds {
		missN += normal.Rounds[i].EveMissRate
		missC += strong.Rounds[i].EveMissRate
	}
	if missC >= missN {
		t.Fatalf("cancelling Eve misses %.3f vs normal %.3f", missC, missN)
	}
	if strong.SecretDims > normal.SecretDims {
		t.Fatalf("secret grew against a stronger Eve: %d > %d", strong.SecretDims, normal.SecretDims)
	}
	// Oracle remains perfect regardless.
	if strong.UnknownDims != strong.SecretDims {
		t.Fatal("oracle leaked against cancelling Eve")
	}
}
