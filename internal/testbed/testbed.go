// Package testbed reproduces the paper's §4 deployment: a 14 m² indoor
// area divided into 9 logical cells (3x3), n terminals and one adversary
// placed in distinct cells, and 6 WARP interferers whose beams blanket one
// row and one column of the grid at a time, rotating through all 9
// (row, column) noise patterns over the course of an experiment.
//
// An "experiment", exactly as in the paper, is: place Eve in one cell and
// the n terminals in n other cells, run the protocol once while rotating
// the interference, and measure efficiency and reliability. The package
// enumerates every placement and aggregates results the way Figure 2 does.
package testbed

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/radio"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// Geometry of the paper's deployment.
const (
	// AreaM2 is the covered area: "a small indoor wireless testbed that
	// covers a square area of 14 m²".
	AreaM2 = 14.0
	// GridDim is the cell grid dimension: 9 logical cells.
	GridDim = 3
	// NumCells is the number of logical cells.
	NumCells = GridDim * GridDim
	// ChannelBitsPerSec is the transmit rate: "100-byte packets at 1 Mbps".
	ChannelBitsPerSec = 1e6
)

// CellSide returns the side of one logical cell in meters (~1.25 m).
func CellSide() float64 { return math.Sqrt(AreaM2) / GridDim }

// MinDistance returns the paper's minimum node separation: the diagonal of
// a logical cell, quoted as 1.75 m.
func MinDistance() float64 { return CellSide() * math.Sqrt2 }

// Cell indexes a logical cell, row-major: 0..8.
type Cell int

// RowCol returns the cell's grid coordinates.
func (c Cell) RowCol() (row, col int) { return int(c) / GridDim, int(c) % GridDim }

// Center returns the cell's center position in meters.
func (c Cell) Center() radio.Position {
	r, col := c.RowCol()
	s := CellSide()
	return radio.Position{X: (float64(col) + 0.5) * s, Y: (float64(r) + 0.5) * s}
}

// Placement positions one experiment: Eve's cell plus one distinct cell
// per terminal ("each cell is occupied by at most one node").
type Placement struct {
	EveCell       Cell
	TerminalCells []Cell
}

// Validate checks that cells are in range and pairwise distinct.
func (p Placement) Validate() error {
	used := map[Cell]bool{}
	check := func(c Cell) error {
		if c < 0 || c >= NumCells {
			return fmt.Errorf("testbed: cell %d out of range", c)
		}
		if used[c] {
			return fmt.Errorf("testbed: cell %d occupied twice", c)
		}
		used[c] = true
		return nil
	}
	if err := check(p.EveCell); err != nil {
		return err
	}
	for _, c := range p.TerminalCells {
		if err := check(c); err != nil {
			return err
		}
	}
	return nil
}

// EnumeratePlacements lists every way to place Eve in one cell and n
// terminals in n of the remaining cells (terminals are interchangeable
// because the protocol rotates the leader role, so cell combinations, not
// permutations, are enumerated). For n terminals this yields
// 9 * C(8, n) placements — the paper's "one experiment for each possible
// positioning of n terminals and Eve".
func EnumeratePlacements(n int) []Placement {
	if n < 1 || n > NumCells-1 {
		panic(fmt.Sprintf("testbed: cannot place %d terminals in %d cells", n, NumCells-1))
	}
	var out []Placement
	for ev := Cell(0); ev < NumCells; ev++ {
		var free []Cell
		for c := Cell(0); c < NumCells; c++ {
			if c != ev {
				free = append(free, c)
			}
		}
		comb := make([]Cell, n)
		var walk func(start, depth int)
		walk = func(start, depth int) {
			if depth == n {
				out = append(out, Placement{EveCell: ev, TerminalCells: append([]Cell(nil), comb...)})
				return
			}
			for i := start; i < len(free); i++ {
				comb[depth] = free[i]
				walk(i+1, depth+1)
			}
		}
		walk(0, 0)
	}
	return out
}

// Channel holds the physical-layer parameters of the simulated testbed.
// Defaults are calibrated so that (a) nearby terminals receive most
// un-jammed packets, (b) the rotating interference forces every node —
// Eve included — to miss a large fraction of packets over a full rotation,
// and (c) the resulting efficiency and reliability land in the regime the
// paper reports.
type Channel struct {
	Base      float64 // loss floor at zero distance
	PerMeter  float64 // loss per meter of tx-rx distance
	Cap       float64 // cap on distance-driven loss
	JamPErase float64 // extra erasure probability while a receiver is jammed

	// SelfJam replaces the dedicated WARP interferers with the paper's
	// §3.3 alternative: the terminals themselves take turns generating
	// noise, one per slot (the jamming terminal is deaf for the slot).
	SelfJam bool
	// SelfJamPErase is the erasure probability at zero distance from a
	// self-jamming terminal; SelfJamRange the distance at which the
	// effect fades to zero. Zero values select defaults (0.85, 2.5 m).
	SelfJamPErase float64
	SelfJamRange  float64
}

// DefaultChannel returns the calibrated parameters.
func DefaultChannel() Channel {
	return Channel{Base: 0.05, PerMeter: 0.06, Cap: 0.45, JamPErase: 0.85}
}

// Experiment is one placement run with a protocol configuration.
type Experiment struct {
	Placement Placement
	Channel   Channel
	Protocol  core.Config
	// EveCancelsJamming models the paper's §6 stronger adversary: an Eve
	// whose antenna array separates and cancels the artificial
	// interference, leaving her with the bare distance-driven channel.
	// Only meaningful with the dedicated-interferer channel (not SelfJam).
	EveCancelsJamming bool
	// Seed drives the channel erasures (the protocol's payload randomness
	// is seeded by Protocol.Seed).
	Seed int64
}

// Run builds the geometry, the interference schedule and the medium, then
// executes the protocol session. Node indices: terminals 0..n-1, Eve = n.
func (e *Experiment) Run() (*core.SessionResult, error) {
	if err := e.Placement.Validate(); err != nil {
		return nil, err
	}
	n := len(e.Placement.TerminalCells)
	if e.Protocol.Terminals == 0 {
		e.Protocol.Terminals = n
	}
	if e.Protocol.Terminals != n {
		return nil, fmt.Errorf("testbed: %d terminal cells but config says %d terminals", n, e.Protocol.Terminals)
	}
	pos := make([]radio.Position, n+1)
	cells := make([]Cell, n+1)
	for i, c := range e.Placement.TerminalCells {
		pos[i] = c.Center()
		cells[i] = c
	}
	pos[n] = e.Placement.EveCell.Center()
	cells[n] = e.Placement.EveCell

	base := &radio.DistanceModel{Pos: pos, Base: e.Channel.Base, PerMeter: e.Channel.PerMeter, Cap: e.Channel.Cap}
	var model radio.ErasureModel
	if e.Channel.SelfJam {
		pe, rg := e.Channel.SelfJamPErase, e.Channel.SelfJamRange
		if pe == 0 {
			pe = 0.85
		}
		if rg == 0 {
			rg = 2.5
		}
		model = &radio.SelfJam{
			Base:      base,
			Pos:       pos,
			JammerOf:  radio.RotatingJammer(n), // terminals only; Eve is passive
			JamPErase: pe,
			Range:     rg,
		}
	} else {
		jam := &radio.Jammer{
			Base: base,
			CellOf: func(id radio.NodeID) (int, int) {
				return cells[int(id)].RowCol()
			},
			Schedule:  radio.AllPatterns(GridDim, GridDim),
			JamPErase: e.Channel.JamPErase,
		}
		if e.EveCancelsJamming {
			jam.Immune = map[radio.NodeID]bool{radio.NodeID(n): true}
		}
		model = jam
	}
	med := radio.NewMedium(model, n+1, e.Seed)
	return core.RunSession(e.Protocol, med, []radio.NodeID{radio.NodeID(n)})
}

// SweepResult aggregates one group size's experiments the way Figure 2
// reports them.
type SweepResult struct {
	N           int
	Experiments int
	// NoSecret counts experiments in which the session produced zero
	// secret bits (reliability undefined); they are excluded from the
	// reliability summary and reported separately.
	NoSecret    int
	Reliability stats.Summary
	Efficiency  stats.Summary
	MinKbps     float64 // minimum secret rate at 1 Mbps across experiments
}

// SweepOptions controls a reliability sweep.
type SweepOptions struct {
	// Protocol is the base configuration; Terminals is overridden per
	// placement.
	Protocol core.Config
	Channel  Channel
	Seed     int64
	// MaxPlacements, when positive, deterministically subsamples the
	// placement list (every k-th) to bound runtime. 0 means all.
	MaxPlacements int
	// Workers is the number of placements evaluated concurrently
	// (0 = one per CPU). Every placement derives its own seeds from
	// (Seed, placement index), and results are folded in enumeration
	// order, so the aggregate is byte-identical for any worker count.
	Workers int
}

// SubsamplePlacements deterministically thins a placement list to at most
// max entries by keeping every k-th placement. max <= 0 keeps all.
func SubsamplePlacements(placements []Placement, max int) []Placement {
	if max <= 0 || len(placements) <= max {
		return placements
	}
	stride := (len(placements) + max - 1) / max
	var sub []Placement
	for i := 0; i < len(placements); i += stride {
		sub = append(sub, placements[i])
	}
	return sub
}

// SweepCell is one placement's contribution to a SweepResult. It is
// exported so callers (figures.Figure2) can shard the full
// (group size, placement) product over one worker pool instead of
// sweeping each group size separately.
type SweepCell struct {
	Eff, Kbps, Rel float64
}

// EvalPlacement runs placement index i (within group size n's enumeration
// order) under opt. The per-placement seeds derive from (opt.Seed, i) with
// the package's historical formulas, so any sharding of the placement
// list reproduces the serial tables byte for byte.
func EvalPlacement(n int, opt SweepOptions, pl Placement, i int) (SweepCell, error) {
	cfg := opt.Protocol
	cfg.Terminals = n
	cfg.Seed = opt.Seed + int64(i)*7919
	ex := &Experiment{Placement: pl, Channel: opt.Channel, Protocol: cfg, Seed: opt.Seed + int64(i)*104729 + 1}
	r, err := ex.Run()
	if err != nil {
		return SweepCell{}, fmt.Errorf("testbed: placement %d: %w", i, err)
	}
	return SweepCell{Eff: r.Efficiency, Kbps: r.SecretKbpsAt(ChannelBitsPerSec), Rel: r.Reliability}, nil
}

// FoldSweep aggregates cells (in placement enumeration order) into the
// Figure-2 summary for group size n.
func FoldSweep(n int, cells []SweepCell) *SweepResult {
	res := &SweepResult{N: n, Experiments: len(cells), MinKbps: math.Inf(1)}
	var rel, eff []float64
	for _, c := range cells {
		eff = append(eff, c.Eff)
		if c.Kbps < res.MinKbps {
			res.MinKbps = c.Kbps
		}
		if math.IsNaN(c.Rel) {
			res.NoSecret++
			continue
		}
		rel = append(rel, c.Rel)
	}
	res.Reliability = stats.Summarize(rel)
	res.Efficiency = stats.Summarize(eff)
	return res
}

// Sweep runs every placement for group size n and aggregates.
func Sweep(n int, opt SweepOptions) (*SweepResult, error) {
	placements := SubsamplePlacements(EnumeratePlacements(n), opt.MaxPlacements)
	cells, err := sweep.Run(opt.Workers, len(placements), func(i int) (SweepCell, error) {
		return EvalPlacement(n, opt, placements[i], i)
	})
	if err != nil {
		return nil, err
	}
	return FoldSweep(n, cells), nil
}
