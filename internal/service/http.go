package service

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/httpapi"
	"repro/internal/keypool"
	"repro/internal/obs"
)

// Handler returns the daemon's HTTP surface:
//
//	GET    /healthz                  liveness (200 while not shut down)
//	GET    /metrics                  Prometheus text exposition
//	GET    /v1/sessions              list session snapshots (JSON)
//	POST   /v1/sessions              create a session from a SessionSpec body
//	GET    /v1/sessions/{id}         one session's snapshot
//	DELETE /v1/sessions/{id}         gracefully close a session
//	POST   /v1/sessions/{id}/draw    draw ?bytes=N of key material (hex JSON)
//	GET    /v1/sessions/{id}/stream  read ?offset=&len= of raw key material
//
// Drawn keys leave the pool permanently (never reused); the draw endpoint
// exists for the loopback demo deployments this repo ships — a production
// deployment would keep keys on-box and hand out references.
//
// The stream endpoint is the bulk surface: a chunked
// application/octet-stream body of exactly len bytes. On stream-fed
// sessions it addresses the deterministic keystream by offset (repeatable,
// non-consuming — pad consumers own offset non-reuse); on UDP/observed/
// authenticated sessions it falls back to a consuming bulk pool draw in
// one single-lock pool operation, and only offset=0 is accepted (a pool
// pop has no address space).
func (sv *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"uptime": sv.Uptime().String(),
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		sv.Metrics().WriteProm(w)
		// Registry families (latency histograms, keystream pipeline,
		// engine phases) share the endpoint with the session snapshot.
		sv.obs.Snapshot().WriteProm(w)
	})
	mux.HandleFunc("GET /metrics.json", func(w http.ResponseWriter, r *http.Request) {
		obs.WriteSnapshotJSON(w, sv.obs.Snapshot())
	})
	mux.Handle("GET /debug/trace", sv.spans.Handler())
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, sv.Metrics())
	})
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var spec SessionSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err)
			return
		}
		s, err := sv.Create(spec)
		if err != nil {
			status, code := http.StatusBadRequest, httpapi.CodeBadRequest
			switch {
			case errors.Is(err, ErrSaturated):
				status, code = http.StatusTooManyRequests, httpapi.CodeSaturated
			case errors.Is(err, ErrShutdown):
				status, code = http.StatusServiceUnavailable, httpapi.CodeShutdown
			}
			httpError(w, status, code, err)
			return
		}
		writeJSON(w, http.StatusCreated, s.Metrics())
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := sv.sessionFromPath(w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	mux.HandleFunc("DELETE /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := sv.sessionFromPath(w, r)
		if !ok {
			return
		}
		if err := sv.Close(s.ID); err != nil {
			httpError(w, http.StatusNotFound, httpapi.CodeNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"closed": s.ID})
	})
	mux.HandleFunc("POST /v1/sessions/{id}/draw", func(w http.ResponseWriter, r *http.Request) {
		// The whole observability block is behind one enabled check so the
		// stripped draw path performs no clock reads, no span work, and no
		// allocation (the overhead gate in thinair-bench measures exactly
		// this handler). Span recording is additionally per-request
		// opt-in: only a caller-supplied X-Thinair-Span makes this draw
		// pay for ring records.
		obsOn := sv.obs.Enabled()
		var t0 time.Time
		var span string
		if obsOn {
			t0 = time.Now()
			span = obs.RequestSpan(w, r)
		}
		s, ok := sv.sessionFromPath(w, r)
		if !ok {
			if obsOn {
				sv.drawErr.ObserveSince(t0)
			}
			return
		}
		n, ok := httpapi.DrawBytes(w, r)
		if !ok {
			if obsOn {
				sv.drawErr.ObserveSince(t0)
			}
			return
		}
		key, err := s.Draw(n)
		if err != nil {
			// Exhausted is the backpressure signal: the refresher is
			// behind; the client retries after the pool recovers. A
			// zeroized pool is permanent — Gone tells the client to stop
			// retrying, with the code distinguishing a session that died
			// on its own (failed) from one that was closed.
			status, code := http.StatusConflict, httpapi.CodeExhausted
			if errors.Is(err, keypool.ErrClosed) {
				status, code = http.StatusGone, httpapi.CodeClosed
				if s.State() == StateFailed {
					code = httpapi.CodeFailed
					err = fmt.Errorf("%w: %w", ErrFailed, err)
				}
			}
			httpError(w, status, code, err)
			if obsOn {
				sv.drawErr.ObserveSince(t0)
				if span != "" {
					sv.spans.RecordKV(span, "edge", "draw",
						"session", strconv.FormatUint(uint64(s.ID), 10),
						"error", err.Error())
				}
			}
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"session": s.ID,
			"bytes":   n,
			"key":     hex.EncodeToString(key),
		})
		if obsOn {
			// An untraced draw pays for two clock reads and the histogram
			// observation — nothing else. A traced one (span != "") adds
			// one ring record; RecordKVAt shares the clock read with the
			// observation and takes attributes without a map allocation.
			// The thinair-bench overhead gate holds the instrumented draw
			// under 2% of the stripped one.
			now := time.Now()
			sv.drawOK.Observe(now.Sub(t0).Seconds())
			if span != "" {
				sv.spans.RecordKVAt(now, span, "edge", "draw",
					"session", strconv.FormatUint(uint64(s.ID), 10),
					"bytes", strconv.Itoa(n))
			}
		}
	})
	mux.HandleFunc("GET /v1/sessions/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		obsOn := sv.obs.Enabled()
		var t0 time.Time
		var span string
		if obsOn {
			t0 = time.Now()
			span = obs.RequestSpan(w, r)
		}
		s, ok := sv.sessionFromPath(w, r)
		if !ok {
			if obsOn {
				sv.streamErr.ObserveSince(t0)
			}
			return
		}
		off, n, ok := httpapi.StreamRange(w, r)
		if !ok {
			if obsOn {
				sv.streamErr.ObserveSince(t0)
			}
			return
		}
		served := sv.serveStream(w, r, s, off, n)
		if obsOn {
			now := time.Now()
			if served {
				sv.streamOK.Observe(now.Sub(t0).Seconds())
			} else {
				sv.streamErr.Observe(now.Sub(t0).Seconds())
			}
			if span != "" {
				sv.spans.RecordKVAt(now, span, "edge", "stream",
					"session", strconv.FormatUint(uint64(s.ID), 10),
					"offset", strconv.FormatInt(off, 10),
					"len", strconv.FormatInt(n, 10))
			}
		}
	})
	return mux
}

// serveStream writes key-material bytes [off, off+n) as an octet-stream
// body of declared length n, flushing as blocks derive so the client's
// time-to-first-byte tracks the pipeline, not the whole range. A
// mid-range failure leaves the declared Content-Length unsatisfied and
// aborts the connection — truncation is loud, never a valid-looking
// short body (see httpapi.StreamBody).
func (sv *Service) serveStream(w http.ResponseWriter, r *http.Request, s *Session, off, n int64) bool {
	src, err := s.StreamRange(off, n)
	if errors.Is(err, ErrNoStream) {
		// Fallback path: consuming bulk draw, one pool operation.
		if off != 0 {
			httpError(w, http.StatusBadRequest, httpapi.CodeBadRequest,
				errors.New("service: offsets are only addressable on stream-fed sessions"))
			return false
		}
		key, derr := s.DrawBulk(int(n))
		if derr != nil {
			status, code := http.StatusConflict, httpapi.CodeExhausted
			if errors.Is(derr, keypool.ErrClosed) {
				status, code = http.StatusGone, httpapi.CodeClosed
				if s.State() == StateFailed {
					code = httpapi.CodeFailed
					derr = fmt.Errorf("%w: %w", ErrFailed, derr)
				}
			}
			httpError(w, status, code, derr)
			return false
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(key)))
		w.Write(key)
		return true
	}
	if err != nil {
		code := httpapi.CodeClosed
		if s.State() == StateFailed {
			code = httpapi.CodeFailed
			err = fmt.Errorf("%w: %w", ErrFailed, err)
		}
		httpError(w, http.StatusGone, code, err)
		return false
	}
	return httpapi.StreamBody(w, r, src, n)
}

func (sv *Service) sessionFromPath(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 32)
	if err != nil {
		httpError(w, http.StatusBadRequest, httpapi.CodeBadRequest, err)
		return nil, false
	}
	s, err := sv.Lookup(uint32(id))
	if err != nil {
		if errors.Is(err, ErrFailed) {
			// The session died permanently — Gone with the failed code,
			// so clients can tell death from their own Close (closed) and
			// from a plain unknown id (not_found).
			httpError(w, http.StatusGone, httpapi.CodeFailed, err)
			return nil, false
		}
		httpError(w, http.StatusNotFound, httpapi.CodeNotFound, err)
		return nil, false
	}
	return s, true
}

// writeJSON and httpError are the wire helpers shared with the cluster
// tier (internal/httpapi), so both surfaces speak the same envelope —
// every daemon error now carries a typed code slug next to its message.
func writeJSON(w http.ResponseWriter, status int, v any) { httpapi.WriteJSON(w, status, v) }

func httpError(w http.ResponseWriter, status int, code string, err error) {
	httpapi.Error(w, status, code, err)
}
