package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/auth"
	"repro/internal/core"
	"repro/internal/keypool"
	"repro/internal/keystream"
	"repro/internal/radio"
	"repro/internal/sweep"
	"repro/internal/transport"
)

// SessionSpec describes one long-lived secret-agreement group session.
type SessionSpec struct {
	// Name labels the session in metrics and the HTTP API (optional).
	Name string
	// Terminals is the group size n (2..16).
	Terminals int
	// Erasure is the symmetric per-link data-plane loss probability.
	Erasure float64
	// XPerRound, PayloadBytes, Rounds configure each refresh batch
	// (Rounds protocol rounds per batch). Zero values select 90 / 16 / 2.
	XPerRound    int
	PayloadBytes int
	Rounds       int
	// Rotate rotates the leader role across rounds (recommended; §3.2).
	Rotate bool
	// UDP runs the group over a loopback-UDP bus instead of in-process
	// channels.
	UDP bool
	// Seed pins the session's randomness (payloads, erasures, refresh
	// batch seeds). Two sessions with the same spec and seed produce the
	// same key stream.
	Seed int64
	// AuthBootstrap, when non-empty, enables the active-Eve
	// authentication chain with this shared bootstrap secret.
	AuthBootstrap []byte
	// LowWater is the pool depth (bytes) below which the background
	// refresher runs more protocol rounds; TargetDepth is where it stops.
	// Zero values select 1024 and 2*LowWater.
	LowWater    int
	TargetDepth int
	// Observe attaches a wire-level eavesdropper to the session's bus and
	// exposes its certificate in the metrics.
	Observe bool
	// Streamed requests a stream-fed session on the cluster tier. The
	// coordinator normally forces UDP on every cluster session, which
	// makes the pool a consuming one-shot surface; Streamed keeps the
	// in-process bus so the worker hosts a deterministic, offset-
	// addressable keystream — ranges re-read byte-identical after a
	// reassignment, which the gate's stream surface depends on.
	// Incompatible with UDP, Observe and AuthBootstrap (those paths keep
	// the lockstep engine refresh and have no address space).
	Streamed bool
	// Timeout bounds each protocol wait inside a node (default 10s).
	Timeout time.Duration
	// StreamBlock is the keystream block size (bytes) for stream-fed
	// sessions (default 4096, scaled down to TargetDepth for shallow
	// pools). In-process sessions without an observer or
	// an auth chain are fed by an internal/keystream Stream — the pool
	// becomes one sequential consumer of it, and the random-access
	// /stream surface (Session.StreamRange) opens up; UDP, observed and
	// authenticated sessions keep the lockstep engine refresh path.
	StreamBlock int
}

func (sp *SessionSpec) fill() error {
	if sp.XPerRound == 0 {
		sp.XPerRound = 90
	}
	if sp.PayloadBytes == 0 {
		sp.PayloadBytes = 16
	}
	if sp.Rounds == 0 {
		sp.Rounds = 2
	}
	if sp.LowWater == 0 {
		sp.LowWater = 1024
	}
	if sp.TargetDepth == 0 {
		sp.TargetDepth = 2 * sp.LowWater
	}
	if sp.Timeout == 0 {
		sp.Timeout = 10 * time.Second
	}
	if sp.StreamBlock == 0 {
		// The block is the derivation quantum: a shallow pool must not pay
		// a multi-hundred-round block derivation to serve a few-hundred-byte
		// refill, so the default scales down to the pool depth. Kept a pure
		// function of the spec: a session re-derived from its spec on
		// another worker picks the same block size, hence the same bytes.
		sp.StreamBlock = 4096
		if sp.TargetDepth < sp.StreamBlock {
			sp.StreamBlock = sp.TargetDepth
		}
		if sp.StreamBlock < sp.PayloadBytes {
			sp.StreamBlock = sp.PayloadBytes
		}
	}
	if sp.StreamBlock < 0 {
		return fmt.Errorf("service: stream block %d", sp.StreamBlock)
	}
	if sp.Erasure < 0 || sp.Erasure >= 1 {
		return fmt.Errorf("service: erasure %v outside [0, 1)", sp.Erasure)
	}
	if sp.Streamed && (sp.UDP || sp.Observe || len(sp.AuthBootstrap) > 0) {
		return errors.New("service: streamed sessions cannot combine UDP, observers, or auth")
	}
	if sp.TargetDepth < sp.LowWater {
		return fmt.Errorf("service: target depth %d below low-water %d", sp.TargetDepth, sp.LowWater)
	}
	cfg := core.Config{
		Terminals: sp.Terminals, XPerRound: sp.XPerRound,
		PayloadBytes: sp.PayloadBytes, Rounds: sp.Rounds,
	}
	return cfg.Validate()
}

// State is a session's lifecycle phase.
type State int32

const (
	// StateQueued: admitted but waiting for a runner slot.
	StateQueued State = iota
	// StateRunning: bus up, background refresher active.
	StateRunning
	// StateFailed: terminated by errors (bus setup failure, too many
	// consecutive refresh failures, or an exhausted round space).
	StateFailed
	// StateClosed: torn down cleanly; the pool is zeroized.
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateFailed:
		return "failed"
	case StateClosed:
		return "closed"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// maxRefreshFailures is how many consecutive erroring refresh batches
// (timeouts, bus failures) move a session to StateFailed instead of
// hammering the bus forever. Aborted rounds (the estimator refusing to
// certify any secret, a normal outcome on a bad channel) get the much
// longer maxAbortStreak before the session is declared dead.
const (
	maxRefreshFailures = 5
	maxAbortStreak     = 64
)

// errNoSecret marks a refresh batch whose rounds all aborted.
var errNoSecret = errors.New("service: refresh batch produced no secret")

// Session is one running group: a broadcast bus, the goroutine-per-node
// protocol engine re-entered batch by batch, and a key pool topped up by a
// background refresher whenever draws push it below the watermark.
type Session struct {
	// ID doubles as the wire session id in message headers.
	ID   uint32
	spec SessionSpec

	svc  *Service
	pool *keypool.Pool
	// shard is the partition this session hashes to (assigned at Create,
	// never migrates); arena is the shard-owned scratch checked out by
	// the executor for the session's whole run (engine round scratch,
	// stream block buffer). arena is touched only by the executor
	// goroutine between checkout and return.
	shard *shard
	arena *sessionArena

	// Draw combiner state (batch.go): batMu guards the waiter queue and
	// the leadership flag; the leader-owned scratch slices are
	// serialized by leadership itself (exactly one leader at a time).
	batMu   sync.Mutex
	batQ    []*drawReq
	batLead bool
	batDsts [][]byte
	batErrs []error
	batReqs []*drawReq

	ctx     context.Context
	cancel  context.CancelFunc
	closing chan struct{} // Close() signal: finish the in-flight batch, then exit
	done    chan struct{} // closed when run() has returned
	ready   chan struct{} // closed after the first successful refresh

	closeOnce sync.Once
	readyOnce sync.Once

	// snapMu serializes teardown (pool zeroize + final state transition)
	// against Metrics snapshots: without it a /metrics scrape racing a
	// drain can observe a torn session — state still running, pool
	// already zeroized — because the two teardown writes are separate
	// atomics. Writers hold it for the teardown pair; snapshots hold the
	// read side.
	snapMu sync.RWMutex

	state     atomic.Int32
	rounds    atomic.Int64
	prodRound atomic.Int64
	secretOut atomic.Int64 // lifetime secret bytes deposited
	refreshes atomic.Int64 // refresh batches attempted
	refreshEr atomic.Int64 // refresh batches failed
	nextRound atomic.Int64 // FirstRound for the next batch

	errMu   sync.Mutex
	lastErr error

	obsMu sync.Mutex
	obs   *transport.Observer

	// strMu guards str, the keystream feeding a stream-fed session. It is
	// non-nil only while run() is live; readers (HTTP /stream, Metrics)
	// take the pointer under the lock and then use it lock-free — a
	// concurrent teardown closes the Stream, which wakes them with
	// keystream.ErrClosed instead of leaving them blocked.
	strMu sync.RWMutex
	str   *keystream.Stream
}

func newSession(svc *Service, id uint32, spec SessionSpec) *Session {
	ctx, cancel := context.WithCancel(context.Background())
	return &Session{
		ID:      id,
		spec:    spec,
		svc:     svc,
		pool:    keypool.New(),
		ctx:     ctx,
		cancel:  cancel,
		closing: make(chan struct{}),
		done:    make(chan struct{}),
		ready:   make(chan struct{}),
	}
}

// Spec returns the session's (filled) specification.
func (s *Session) Spec() SessionSpec { return s.spec }

// State returns the lifecycle phase.
func (s *Session) State() State { return State(s.state.Load()) }

// Pool exposes the session's key pool; Draw and DrawPad dispense
// never-reused key material from it.
func (s *Session) Pool() *keypool.Pool { return s.pool }

// ErrNoStream marks a session without a random-access keystream (UDP,
// observed or authenticated sessions use the lockstep refresh engine;
// their key material is pool-draw only).
var ErrNoStream = errors.New("service: session has no keystream")

// StreamFed reports whether this session's pool is fed by a keystream
// (and so Stream/StreamRange work on it).
func (s *Session) StreamFed() bool {
	return !s.spec.UDP && !s.spec.Observe && len(s.spec.AuthBootstrap) == 0
}

// Stream returns the session's keystream, or nil when the session is not
// stream-fed (or not running).
func (s *Session) Stream() *keystream.Stream {
	s.strMu.RLock()
	defer s.strMu.RUnlock()
	return s.str
}

// StreamRange returns a reader over key-material bytes [off, off+n) —
// the non-consuming, randomly addressable surface. Offsets address the
// session's deterministic keystream: reading a range twice returns the
// same bytes, and one-time-pad users own offset non-reuse.
func (s *Session) StreamRange(off, n int64) (io.Reader, error) {
	str := s.Stream()
	if str == nil {
		if !s.StreamFed() {
			return nil, ErrNoStream
		}
		return nil, keystream.ErrClosed
	}
	return str.RangeReader(off, n), nil
}

func zeroBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// WaitReady blocks until the pool has been filled to its target depth
// for the first time, the session fails or closes, or the context
// expires.
func (s *Session) WaitReady(ctx context.Context) error {
	select {
	case <-s.ready:
		return nil
	case <-s.done:
		if err := s.LastErr(); err != nil {
			return fmt.Errorf("service: session %d closed before ready: %w", s.ID, err)
		}
		return fmt.Errorf("service: session %d closed before ready", s.ID)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// LastErr returns the most recent refresh error, if any.
func (s *Session) LastErr() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.lastErr
}

func (s *Session) setErr(err error) {
	s.errMu.Lock()
	s.lastErr = err
	s.errMu.Unlock()
}

// Close gracefully stops the session: the in-flight refresh batch drains
// (up to the service's drain timeout, after which it is cancelled hard),
// the bus is torn down and the pool zeroized. It blocks until teardown
// finishes and is safe to call multiple times.
func (s *Session) Close() { s.closeNow() }

func (s *Session) closeNow() {
	s.closeOnce.Do(func() { close(s.closing) })
	// A session closed while still queued is never claimed by a runner
	// (the runner's claim CAS fails), so finish its lifecycle here and
	// release its queue slot immediately.
	s.snapMu.Lock()
	queued := s.state.CompareAndSwap(int32(StateQueued), int32(StateClosed))
	if queued {
		s.pool.Zeroize()
	}
	s.snapMu.Unlock()
	if queued {
		s.shard.dropPending(s)
		s.svc.forget(s.ID)
		close(s.done)
		return
	}
	select {
	case <-s.done:
	case <-time.After(s.svc.cfg.DrainTimeout):
		s.cancel() // drain window elapsed: abort the in-flight batch
	}
	<-s.done
}

// signalClose requests shutdown without waiting (Service.Shutdown fans
// this out before waiting on all sessions).
func (s *Session) signalClose() {
	s.closeOnce.Do(func() { close(s.closing) })
}

func (s *Session) stopRequested() bool {
	select {
	case <-s.closing:
		return true
	case <-s.ctx.Done():
		return true
	default:
		return false
	}
}

// run is the session's whole life, executed on one Service runner slot.
func (s *Session) run() {
	defer close(s.done)
	defer func() {
		// The pool wipe and the final state transition are one atomic
		// step as far as Metrics is concerned (see snapMu).
		s.snapMu.Lock()
		s.pool.Zeroize()
		if State(s.state.Load()) != StateFailed {
			s.state.Store(int32(StateClosed))
		}
		s.snapMu.Unlock()
	}()
	defer s.cancel()
	if s.stopRequested() { // closed right after being claimed
		return
	}

	if s.StreamFed() {
		s.runStream()
		return
	}

	// The observer goroutine only exits once the bus is down (its Recv
	// channel closes), so the wait must be registered BEFORE bus.Close:
	// defers run last-in-first-out.
	obsDone := make(chan struct{})
	obsStarted := false
	defer func() {
		if obsStarted {
			<-obsDone
		}
	}()

	bus, err := s.newBus()
	if err != nil {
		s.setErr(err)
		s.state.Store(int32(StateFailed))
		return
	}
	defer bus.Close()

	// Attach every terminal endpoint once; refresh batches re-enter the
	// engine on these endpoints (a per-batch re-dial would leak sockets
	// on the UDP bus and re-register receivers mid-flight).
	eps := make([]transport.Endpoint, s.spec.Terminals)
	for i := range eps {
		if eps[i], err = bus.Endpoint(i); err != nil {
			s.setErr(err)
			s.state.Store(int32(StateFailed))
			return
		}
	}

	var chains []*auth.KeyChain
	if len(s.spec.AuthBootstrap) > 0 {
		chains = make([]*auth.KeyChain, s.spec.Terminals)
		for i := range chains {
			chains[i] = auth.NewKeyChain(s.spec.AuthBootstrap)
		}
	}

	// The observer taps the bus as node n, exactly like a real Eve.
	if s.spec.Observe {
		obsEp, err := bus.Endpoint(s.spec.Terminals)
		if err != nil {
			s.setErr(err)
			s.state.Store(int32(StateFailed))
			return
		}
		s.obsMu.Lock()
		s.obs = transport.NewObserver(s.ID)
		s.obsMu.Unlock()
		obsStarted = true
		go s.observe(obsEp, obsDone)
	}

	s.pool.SetLowWater(s.spec.LowWater)
	low := s.pool.LowWaterSignal()

	consecFail, abortStreak := 0, 0
	for {
		// Top the pool up to the target depth.
		for s.pool.Available() < s.spec.TargetDepth {
			if s.stopRequested() {
				return
			}
			err := s.refresh(eps, chains)
			if err != nil {
				if s.ctx.Err() != nil {
					return
				}
				s.refreshEr.Add(1)
				s.setErr(err)
				if errors.Is(err, errNoSecret) {
					abortStreak++
				} else {
					consecFail++
				}
				if consecFail >= maxRefreshFailures || abortStreak >= maxAbortStreak {
					s.state.Store(int32(StateFailed))
					return
				}
				continue
			}
			consecFail, abortStreak = 0, 0
		}
		s.readyOnce.Do(func() { close(s.ready) })
		select {
		case <-s.ctx.Done():
			return
		case <-s.closing:
			return
		case <-low:
		}
	}
}

// runStream is the stream-fed session body: a keystream.Stream derives
// blocks through the pipelined engine, and the pool becomes its first
// sequential consumer — every pool draw returns a prefix-exact slice of
// the same deterministic stream that StreamRange addresses by offset.
func (s *Session) runStream() {
	str, err := keystream.New(keystream.Config{
		Terminals:    s.spec.Terminals,
		XPerRound:    s.spec.XPerRound,
		PayloadBytes: s.spec.PayloadBytes,
		Erasure:      s.spec.Erasure,
		Seed:         s.spec.Seed,
		Rotate:       s.spec.Rotate,
		BlockSize:    s.spec.StreamBlock,
		Timeout:      s.spec.Timeout,
		Obs:          s.svc.obs,
	})
	if err != nil {
		s.setErr(err)
		s.state.Store(int32(StateFailed))
		return
	}
	s.strMu.Lock()
	s.str = str
	s.strMu.Unlock()
	defer func() {
		s.strMu.Lock()
		s.str = nil
		s.strMu.Unlock()
		str.Close() // wakes any in-flight StreamRange reader with ErrClosed
	}()

	s.pool.SetLowWater(s.spec.LowWater)
	low := s.pool.LowWaterSignal()
	var buf []byte
	if s.arena != nil {
		buf = s.arena.bytes(str.BlockSize())
	} else {
		buf = make([]byte, str.BlockSize())
	}
	consecFail := 0
	for {
		for s.pool.Available() < s.spec.TargetDepth {
			if s.stopRequested() {
				return
			}
			if err := s.refreshFromStream(str, buf); err != nil {
				if s.ctx.Err() != nil {
					return
				}
				s.refreshEr.Add(1)
				s.setErr(err)
				consecFail++
				if consecFail >= maxRefreshFailures {
					s.state.Store(int32(StateFailed))
					return
				}
				continue
			}
			consecFail = 0
		}
		s.readyOnce.Do(func() { close(s.ready) })
		select {
		case <-s.ctx.Done():
			return
		case <-s.closing:
			return
		case <-low:
		}
	}
}

// refreshFromStream deposits the next sequential stream block into the
// pool. A failed block derivation (dead channel, timeout) surfaces here
// and counts against the session's failure limit, exactly like a failed
// lockstep refresh batch.
func (s *Session) refreshFromStream(str *keystream.Stream, buf []byte) error {
	s.refreshes.Add(1)
	if _, err := io.ReadFull(str, buf); err != nil {
		return err
	}
	s.pool.Deposit(buf)
	s.secretOut.Add(int64(len(buf)))
	zeroBytes(buf) // the pool holds the only live copy now
	st := str.Stats()
	s.rounds.Store(st.Rounds)
	s.prodRound.Store(st.Productive)
	return nil
}

// refresh runs one batch of protocol rounds on the session's endpoints
// and deposits the agreed secret into the pool.
func (s *Session) refresh(eps []transport.Endpoint, chains []*auth.KeyChain) error {
	first := int(s.nextRound.Load())
	if first+s.spec.Rounds > 1<<16 {
		return fmt.Errorf("service: session %d exhausted the 16-bit round space", s.ID)
	}
	cfg := transport.NodeConfig{
		Config: core.Config{
			Terminals:    s.spec.Terminals,
			XPerRound:    s.spec.XPerRound,
			PayloadBytes: s.spec.PayloadBytes,
			Rounds:       s.spec.Rounds,
			Rotate:       s.spec.Rotate,
			// One deterministic stream per session: the x-payload rng is
			// already diversified per round inside the engine, so the seed
			// stays fixed while FirstRound advances.
			Seed: s.spec.Seed,
			Obs:  s.svc.obs,
		},
		Session:    s.ID,
		Timeout:    s.spec.Timeout,
		FirstRound: first,
	}
	if s.arena != nil {
		cfg.Scratches = s.arena.scratchesFor(s.spec.Terminals)
	}
	s.refreshes.Add(1)
	results, err := transport.RunGroupOn(s.ctx, eps, cfg, chains)
	if err != nil {
		return err
	}
	s.nextRound.Store(int64(first + s.spec.Rounds))
	s.rounds.Add(int64(results[0].Rounds))
	s.prodRound.Add(int64(results[0].Productive))
	secret := results[0].Secret
	if len(secret) == 0 {
		return errNoSecret
	}
	s.pool.Deposit(secret)
	s.secretOut.Add(int64(len(secret)))
	for _, r := range results { // the pool holds the only live copy now
		for i := range r.Secret {
			r.Secret[i] = 0
		}
	}
	return nil
}

// newBus builds the session's broadcast domain. The bus seed derives from
// the session seed so the erasure process is reproducible per session.
func (s *Session) newBus() (transport.Bus, error) {
	model := radio.Uniform{P: s.spec.Erasure}
	seed := sweep.Seed(s.spec.Seed, 1)
	if s.spec.UDP {
		return transport.NewUDPBus(model, seed, 10)
	}
	return transport.NewChanBus(model, seed, 10), nil
}

// observe consumes Eve's tap until the bus closes or the session stops.
// Observer itself is not goroutine-safe, so every Ingest and every metrics
// read goes through obsMu.
func (s *Session) observe(ep transport.Endpoint, done chan<- struct{}) {
	defer close(done)
	defer func() {
		s.obsMu.Lock()
		s.obs.Finish()
		s.obsMu.Unlock()
	}()
	for {
		select {
		case <-s.ctx.Done():
			return
		case env, ok := <-ep.Recv():
			if !ok {
				return
			}
			s.obsMu.Lock()
			s.obs.Ingest(env)
			s.obsMu.Unlock()
		}
	}
}

// eveCertificate snapshots the observer's accumulated certificate.
func (s *Session) eveCertificate() (secretDims, unknownDims int, ok bool) {
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	if s.obs == nil {
		return 0, 0, false
	}
	return s.obs.SecretDims, s.obs.UnknownDims, true
}
