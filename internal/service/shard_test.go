package service

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/keypool"
)

// streamedSpec is fastSpec with the keystream feed: deterministic,
// offset-addressable key material — the shape the combiner tests lean on.
func streamedSpec(seed int64) SessionSpec {
	sp := fastSpec(seed)
	sp.Streamed = true
	return sp
}

// TestDispatchWakesExactlyOneExecutor pins the thundering-herd fix: each
// dispatched session wakes EXACTLY one executor (the handoff is an
// unbuffered channel send), even when a pool of idle executors is parked
// on the shard. The old condvar runner pool broadcast-woke every parked
// runner per enqueue; here wakeCount must equal sessions dispatched, not
// sessions × executors.
func TestDispatchWakesExactlyOneExecutor(t *testing.T) {
	const parallel = 4 // builds a pool of idle executors on the one shard
	const serial = 8   // then dispatches with all of them parked
	sv := New(Config{MaxSessions: parallel, Shards: 1, DrainTimeout: 5 * time.Second})
	defer sv.Shutdown(context.Background())

	run := func(n int) {
		t.Helper()
		ss := make([]*Session, 0, n)
		for i := 0; i < n; i++ {
			s, err := sv.Create(streamedSpec(int64(4000 + i)))
			if err != nil {
				t.Fatal(err)
			}
			ss = append(ss, s)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		for _, s := range ss {
			if err := s.WaitReady(ctx); err != nil {
				t.Fatal(err)
			}
		}
		for _, s := range ss {
			s.Close()
		}
	}

	run(parallel) // spawns up to `parallel` executors, all idle afterwards
	for i := 0; i < serial; i++ {
		run(1) // every dispatch here faces multiple parked executors
	}

	dispatched := int64(parallel + serial)
	if got := sv.wakeCount(); got != dispatched {
		t.Fatalf("%d executor wakes for %d dispatched sessions; want exactly one wake per dispatch",
			got, dispatched)
	}
}

// TestShardPlacementDeterministic pins the placement contract: a session
// id maps to one shard, the same shard on every lookup, and the hash
// spreads dense sequential ids instead of clumping them.
func TestShardPlacementDeterministic(t *testing.T) {
	sv := New(Config{MaxSessions: 64, Shards: 8, DrainTimeout: time.Second})
	defer sv.Shutdown(context.Background())

	counts := make([]int, len(sv.shards))
	for id := uint32(1); id <= 4096; id++ {
		sh := sv.shardOf(id)
		if sh < 0 || sh >= len(sv.shards) {
			t.Fatalf("shardOf(%d) = %d outside [0,%d)", id, sh, len(sv.shards))
		}
		for trial := 0; trial < 3; trial++ {
			if again := sv.shardOf(id); again != sh {
				t.Fatalf("shardOf(%d) flapped: %d then %d", id, sh, again)
			}
		}
		counts[sh]++
	}
	// 4096 ids over 8 shards: a uniform hash puts ~512 on each. Require
	// every shard to hold at least a quarter of its fair share — loose
	// enough to never flake, tight enough to catch identity-style striding
	// (which would leave shards empty for dense id ranges).
	for i, c := range counts {
		if c < 4096/len(sv.shards)/4 {
			t.Fatalf("shard %d holds %d of 4096 ids; distribution %v too skewed", i, c, counts)
		}
	}

	// And the placement Create applies is the same pure function.
	s, err := sv.Create(streamedSpec(4500))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if want := sv.shards[sv.shardOf(s.ID)]; s.shard != want {
		t.Fatalf("session %d placed on shard %d, shardOf says %d", s.ID, s.shard.id, want.id)
	}
}

// TestConcurrentDrawsDisjointGapFree is the combiner's core correctness
// property: N goroutines drawing concurrently from one session receive
// pairwise byte-disjoint slices that tile the session's deterministic
// keystream with no gaps — batching coalesces the pool operations but
// never tears, duplicates, or skips key material.
func TestConcurrentDrawsDisjointGapFree(t *testing.T) {
	sv := New(Config{MaxSessions: 2, DrainTimeout: 5 * time.Second})
	defer sv.Shutdown(context.Background())
	s, err := sv.Create(streamedSpec(4600))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	const callers = 32
	const per = 16 // callers × per = 512 = TargetDepth: all draws must succeed
	var wg sync.WaitGroup
	slices := make([][]byte, callers)
	errs := make([]error, callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			slices[i], errs[i] = s.Draw(per)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}

	// The pool consumes the keystream sequentially from offset 0, so every
	// draw must be a contiguous slice of the stream prefix, and together
	// they must tile [0, callers×per) exactly.
	ref := make([]byte, callers*per*2)
	r, err := s.StreamRange(0, int64(len(ref)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(ref); err != nil {
		t.Fatal(err)
	}
	offs := make([]int, callers)
	for i, sl := range slices {
		off := bytes.Index(ref, sl)
		if off < 0 {
			t.Fatalf("caller %d's draw is not a slice of the session keystream", i)
		}
		if next := bytes.Index(ref[off+1:], sl); next >= 0 {
			t.Fatalf("caller %d's draw appears twice in the stream prefix; tiling check ambiguous", i)
		}
		offs[i] = off
	}
	sort.Ints(offs)
	for i, off := range offs {
		if off != i*per {
			t.Fatalf("draw offsets %v do not tile [0,%d) gap-free", offs, callers*per)
		}
	}
}

// TestConcurrentDrawShortPoolAllOrNothing: when concurrent draws race a
// short pool, each caller independently gets either its full slice or
// ErrExhausted with nothing consumed — the batch path must not introduce
// partial draws or lose material for the callers that fit.
func TestConcurrentDrawShortPoolAllOrNothing(t *testing.T) {
	sv := New(Config{MaxSessions: 2, DrainTimeout: 5 * time.Second})
	defer sv.Shutdown(context.Background())
	sp := streamedSpec(4700)
	s, err := sv.Create(sp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	// Each draw asks for over half the target depth: at most one of any
	// concurrent pair fits, the rest must fail whole.
	big := sp.TargetDepth/2 + 64
	const callers = 8
	var wg sync.WaitGroup
	slices := make([][]byte, callers)
	errs := make([]error, callers)
	wg.Add(callers)
	for i := 0; i < callers; i++ {
		go func(i int) {
			defer wg.Done()
			slices[i], errs[i] = s.Draw(big)
		}(i)
	}
	wg.Wait()

	ref := make([]byte, sp.TargetDepth*callers)
	r, err := s.StreamRange(0, int64(len(ref)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(ref); err != nil {
		t.Fatal(err)
	}
	ok := 0
	var offs []int
	for i := range slices {
		switch {
		case errs[i] == nil:
			ok++
			if len(slices[i]) != big {
				t.Fatalf("caller %d: partial draw of %d bytes, want %d or error", i, len(slices[i]), big)
			}
			off := bytes.Index(ref, slices[i])
			if off < 0 {
				t.Fatalf("caller %d's draw is not a slice of the session keystream", i)
			}
			offs = append(offs, off)
		case errors.Is(errs[i], keypool.ErrExhausted):
			if slices[i] != nil {
				t.Fatalf("caller %d: ErrExhausted but bytes returned", i)
			}
		default:
			t.Fatalf("caller %d: %v", i, errs[i])
		}
	}
	if ok == 0 {
		t.Fatal("no concurrent draw succeeded; pool never served")
	}
	// Successful draws are still gap-free: failures consumed nothing, so
	// winners tile the stream contiguously from offset 0.
	sort.Ints(offs)
	for i, off := range offs {
		if off != i*big {
			t.Fatalf("successful draws at offsets %v leave gaps (failed draws consumed material)", offs)
		}
	}
}

// TestDrawIntoZeroAlloc pins the batched draw path's steady-state
// allocation budget at zero: an uncontended DrawInto (which still runs
// the full combiner — leadership, batch assembly, DrawBatch) must not
// allocate once the combiner's scratch slices are warm.
func TestDrawIntoZeroAlloc(t *testing.T) {
	s := &Session{pool: keypool.New()}
	seed := make([]byte, 1<<20)
	for i := range seed {
		seed[i] = byte(i * 131)
	}
	s.pool.Deposit(seed)
	dst := make([]byte, 64)
	if err := s.DrawInto(dst); err != nil { // warm the combiner scratch
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		if err := s.DrawInto(dst); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("DrawInto allocates %.1f per op in steady state, want 0", allocs)
	}
}
