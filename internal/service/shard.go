package service

import (
	"context"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
)

// shard owns a disjoint partition of the daemon's sessions (id → shard
// by hash, see Service.shardOf). Each shard runs ONE dispatch goroutine
// feeding claimed sessions to executors over an unbuffered channel — the
// nano scheduler idiom: a channel send wakes exactly one parked
// executor, where the old global condvar pool paid a mutex herd on every
// enqueue. Executors spawn on demand (never retire) and are bounded
// globally by the Service token semaphore, so a hash-skewed load cannot
// starve: a shard that hashes hot simply grows more executors while cold
// shards hold none of the running budget.
//
// The shard also owns the arena pool its sessions' engine batches run
// on: scratch never crosses a shard boundary, so the accumulator rows a
// refresh batch eliminates over stay in the cache domain of the
// executors that touch them.
type shard struct {
	sv    *Service
	id    int
	label string // shard id as a string, for pprof labels and the gauge

	mu      sync.Mutex
	pending []*Session // FIFO of sessions waiting for dispatch

	wake chan struct{} // 1-buffered enqueue edge signal to the dispatcher
	work chan *Session // unbuffered dispatcher → executor handoff

	execs atomic.Int32 // executors spawned over the shard's lifetime
	wakes atomic.Int64 // executor wake events (exactly one per dispatch)

	depth *obs.Gauge // thinaird_shard_queue_depth{shard}

	arenaMu sync.Mutex
	arenas  []*sessionArena
}

func newShard(sv *Service, id int, label string, depth *obs.Gauge) *shard {
	return &shard{
		sv:    sv,
		id:    id,
		label: label,
		wake:  make(chan struct{}, 1),
		work:  make(chan *Session),
		depth: depth,
		// One arena exists from shard start; more are created only if
		// the shard actually runs that many sessions concurrently.
		arenas: []*sessionArena{{}},
	}
}

// enqueue appends a session to the shard's work queue and nudges the
// dispatcher. The signal channel is 1-buffered: a burst of creates
// collapses into one wakeup, and the dispatcher drains the whole queue
// per wake.
func (sh *shard) enqueue(s *Session) {
	sh.mu.Lock()
	sh.pending = append(sh.pending, s)
	depth := len(sh.pending)
	sh.mu.Unlock()
	sh.depth.Set(float64(depth))
	select {
	case sh.wake <- struct{}{}:
	default: // dispatcher already signaled
	}
}

// dropPending removes a closed-while-queued session from the FIFO so it
// cannot occupy a queue slot it no longer needs.
func (sh *shard) dropPending(s *Session) {
	sh.mu.Lock()
	for i, p := range sh.pending {
		if p == s {
			sh.pending = append(sh.pending[:i], sh.pending[i+1:]...)
			break
		}
	}
	depth := len(sh.pending)
	sh.mu.Unlock()
	sh.depth.Set(float64(depth))
}

// dispatch is the shard's single dispatcher goroutine. The pprof label
// makes per-shard CPU attribution fall out of any profile: dispatch and
// executor samples alike carry thinaird_shard=<id>.
func (sh *shard) dispatch() {
	defer sh.sv.wg.Done()
	pprof.Do(context.Background(), pprof.Labels("thinaird_shard", sh.label), sh.dispatchLoop)
}

func (sh *shard) dispatchLoop(context.Context) {
	for {
		select {
		case <-sh.wake:
		case <-sh.sv.stopc:
			return
		}
		for {
			sh.mu.Lock()
			if len(sh.pending) == 0 {
				sh.mu.Unlock()
				break
			}
			s := sh.pending[0]
			sh.pending[0] = nil
			sh.pending = sh.pending[1:]
			depth := len(sh.pending)
			sh.mu.Unlock()
			sh.depth.Set(float64(depth))
			// A running session holds one global token for its whole
			// life; acquiring it here (not in the executor) keeps queued
			// sessions FIFO across the admission bound.
			select {
			case <-sh.sv.tokens:
			case <-sh.sv.stopc:
				return
			}
			if !sh.handoff(s) {
				sh.sv.tokens <- struct{}{}
				return
			}
		}
	}
}

// handoff gives s to exactly one executor: an idle one if any is parked
// on the work channel, a newly spawned one otherwise. The channel send
// IS the wakeup — one receiver wakes, every other idle executor stays
// asleep (the property Service.wakeCount pins in tests; the old condvar
// pool had no such guarantee).
func (sh *shard) handoff(s *Session) bool {
	select {
	case sh.work <- s: // an executor was already parked
		return true
	default:
	}
	// No idle executor. Spawn one if the shard hasn't reached the global
	// running bound; holding a token guarantees at most MaxSessions-1
	// other sessions run, so if the cap is reached an executor here must
	// be about to idle and the blocking send below cannot deadlock.
	if int(sh.execs.Load()) < sh.sv.cfg.MaxSessions {
		sh.execs.Add(1)
		sh.sv.wg.Add(1)
		go sh.executor()
	}
	select {
	case sh.work <- s:
		return true
	case <-sh.sv.stopc:
		return false
	}
}

func (sh *shard) executor() {
	defer sh.sv.wg.Done()
	pprof.Do(context.Background(), pprof.Labels("thinaird_shard", sh.label), sh.executorLoop)
}

func (sh *shard) executorLoop(context.Context) {
	for {
		select {
		case s := <-sh.work:
			sh.wakes.Add(1)
			sh.runOne(s)
		case <-sh.sv.stopc:
			return
		}
	}
}

// runOne is one claimed session's whole life on this executor.
func (sh *shard) runOne(s *Session) {
	defer func() { sh.sv.tokens <- struct{}{} }()
	// The claim is a state CAS so a session closed while still queued is
	// skipped instead of spun up and immediately torn down.
	if !s.state.CompareAndSwap(int32(StateQueued), int32(StateRunning)) {
		return
	}
	arena := sh.getArena()
	s.arena = arena
	s.run()
	s.arena = nil
	sh.putArena(arena)
	if s.State() == StateFailed {
		sh.sv.failed.Add(1)
		sh.sv.noteFailed(s.ID)
	}
	sh.sv.forget(s.ID)
}

// queueDepth reports the shard's current dispatch backlog.
func (sh *shard) queueDepth() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.pending)
}

// sessionArena is the reusable per-shard scratch a session's engine
// batches run on: one pinned RoundScratch per terminal (plumbed into
// the transport runtime via NodeConfig.Scratches) plus the stream-feed
// block buffer. Buffers size themselves to the largest session shape the
// shard has served and are then stable — a long-lived shard reaches a
// zero-allocation refresh steady state without any cross-shard sharing.
type sessionArena struct {
	scratches []*core.RoundScratch
	buf       []byte
}

// scratchesFor returns n pinned per-terminal scratches, growing the set
// on first use.
func (a *sessionArena) scratchesFor(n int) []*core.RoundScratch {
	for len(a.scratches) < n {
		a.scratches = append(a.scratches, new(core.RoundScratch))
	}
	return a.scratches[:n]
}

// bytes returns an n-byte buffer backed by the arena.
func (a *sessionArena) bytes(n int) []byte {
	if cap(a.buf) < n {
		a.buf = make([]byte, n)
	}
	a.buf = a.buf[:n]
	return a.buf
}

func (sh *shard) getArena() *sessionArena {
	sh.arenaMu.Lock()
	defer sh.arenaMu.Unlock()
	if n := len(sh.arenas); n > 0 {
		a := sh.arenas[n-1]
		sh.arenas[n-1] = nil
		sh.arenas = sh.arenas[:n-1]
		return a
	}
	return &sessionArena{}
}

func (sh *shard) putArena(a *sessionArena) {
	// The block buffer may have carried key material through a failed
	// deposit; never park it dirty.
	zeroBytes(a.buf)
	sh.arenaMu.Lock()
	sh.arenas = append(sh.arenas, a)
	sh.arenaMu.Unlock()
}
