package service

import (
	"context"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMetricsShutdownConsistency pins the drain-vs-metrics race: the
// pool zeroize and the session's final state transition used to be two
// separate teardown steps, so a /metrics scrape concurrent with a drain
// could snapshot a torn session — state still "running" over an
// already-zeroized pool. The snapshot lock makes teardown atomic with
// respect to Metrics; this test hammers snapshots (both the per-session
// and the daemon-wide path, plus the Prometheus renderer) across a full
// shutdown and fails on any torn observation. Run under -race in CI.
func TestMetricsShutdownConsistency(t *testing.T) {
	sv := New(Config{MaxSessions: 4, DrainTimeout: 5 * time.Second})
	var ss []*Session
	for i := 0; i < 4; i++ {
		s, err := sv.Create(fastSpec(int64(600 + i*7)))
		if err != nil {
			t.Fatal(err)
		}
		ss = append(ss, s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, s := range ss {
		if err := s.WaitReady(ctx); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var torn atomic.Int64
	check := func(m SessionMetrics) {
		if m.State == StateRunning.String() && m.Pool.Closed {
			torn.Add(1)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				m := sv.Metrics()
				for _, sm := range m.Sessions {
					check(sm)
				}
				for _, s := range ss {
					check(s.Metrics())
				}
				m.WriteProm(io.Discard)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond) // let scrapes overlap live refreshes

	sctx, scancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer scancel()
	if err := sv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Keep scraping a moment after shutdown so the post-teardown state is
	// also covered, then stop the hammer.
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	if n := torn.Load(); n != 0 {
		t.Fatalf("observed %d torn snapshots (running state over a zeroized pool)", n)
	}
	for _, s := range ss {
		if m := s.Metrics(); !m.Pool.Closed {
			t.Fatalf("session %d pool not reported closed after shutdown: %+v", s.ID, m.Pool)
		}
	}
}
