package service

import (
	"fmt"
	"sync"
)

// Draw batching: concurrent Draw/DrawN/DrawBulk calls against one
// session coalesce into ONE pool operation per combiner cycle — one lock
// acquisition, one bulk copy, per-caller slices carved out of the same
// pass — instead of every caller queueing on the pool mutex. The shape
// is flat combining with leadership handoff:
//
//   - The first caller to arrive becomes the LEADER. It serves one
//     cycle: its own request plus everything parked in the queue at that
//     moment, via keypool.DrawBatch.
//   - Callers arriving while a leader is serving PARK on a per-request
//     channel; the leader fills their buffers and sets their verdicts.
//   - After its cycle the leader does not loop: if new waiters arrived
//     mid-cycle it PROMOTES the queue head, which wakes as the next
//     leader and serves its own request plus the rest. Leader latency is
//     therefore bounded at one cycle — no caller serves strangers
//     forever under sustained load — and the combiner degrades to plain
//     per-call pool draws when a session has a single caller.
//
// Batching is invisible to semantics: DrawBatch serves FIFO with each
// buffer independently all-or-nothing against the remaining material,
// exactly what the same callers would have seen issuing sequential
// draws. All three transports (daemon HTTP, cluster /ctl, gate frames)
// funnel into Session.Draw/DrawInto, so they all combine here.

// drawReq is one parked caller in a session's draw combiner.
type drawReq struct {
	dst      []byte
	err      error
	promoted bool
	done     chan struct{} // 1-buffered; reused across parks via reqPool
}

// reqPool recycles parked-request frames (and, crucially, their wake
// channels) so the contended draw path settles into zero steady-state
// allocations alongside the uncontended one.
var reqPool = sync.Pool{New: func() any { return &drawReq{done: make(chan struct{}, 1)} }}

// Draw dispenses n bytes of one-time key material. It never runs
// protocol rounds inline: a short pool fails fast with
// keypool.ErrExhausted while the background refresher catches up.
// Concurrent draws on the same session coalesce into one pool operation
// per combiner cycle.
func (s *Session) Draw(n int) ([]byte, error) {
	if n < 0 {
		return s.pool.Draw(n) // surfaces the pool's negative-draw error
	}
	out := make([]byte, n)
	if err := s.DrawInto(out); err != nil {
		return nil, err
	}
	return out, nil
}

// DrawBulk dispenses n bytes in one pool operation — the bulk-read
// fallback for sessions without a keystream. All-or-nothing like Draw: a
// short pool fails without consuming anything (a partial draw would
// discard irreplaceable key material). Consumers wanting per-key slices
// use keypool.DrawN directly.
func (s *Session) DrawBulk(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("service: negative bulk draw %d", n)
	}
	return s.Draw(n)
}

// DrawInto fills dst from the session's pool through the draw combiner —
// the allocation-free draw path (callers own dst). All-or-nothing: on
// error dst is untouched and nothing is consumed.
//
// Combining is adaptive: while the pool mutex is free each caller serves
// itself directly (no combiner overhead on an uncontended session); the
// moment the probe finds the lock held, callers fall into the combiner
// and coalesce behind whoever holds it.
func (s *Session) DrawInto(dst []byte) error {
	// No histogram observation here: the batch-size distribution tracks
	// combiner cycles, and an uncontended direct draw never entered one.
	if handled, err := s.pool.TryDrawInto(dst); handled {
		return err
	}
	s.batMu.Lock()
	if !s.batLead {
		// No cycle in flight: become the leader and serve.
		s.batLead = true
		s.batMu.Unlock()
		return s.lead(dst)
	}
	// A leader is serving. Park; it either fills dst and delivers the
	// verdict, or promotes us to run the next cycle ourselves.
	req := reqPool.Get().(*drawReq)
	req.dst, req.err, req.promoted = dst, nil, false
	s.batQ = append(s.batQ, req)
	s.batMu.Unlock()
	<-req.done
	promoted, err := req.promoted, req.err
	req.dst, req.err = nil, nil
	reqPool.Put(req)
	if promoted {
		return s.lead(dst)
	}
	return err
}

// lead runs one combiner cycle: drain the parked queue, serve it plus
// our own dst in a single pool operation, hand leadership off. Exactly
// one goroutine leads at a time, so the s.bat* scratch slices below are
// leader-owned without further locking.
func (s *Session) lead(dst []byte) error {
	s.batMu.Lock()
	if len(s.batQ) == 0 {
		// Solo cycle — the common case for a lightly shared session: skip
		// the batch assembly entirely and serve straight off the pool, so
		// the combiner costs a session with one caller almost nothing.
		s.batMu.Unlock()
		err := s.pool.DrawInto(dst)
		if s.svc != nil && s.svc.obs.Enabled() {
			s.svc.batchSize.Observe(1)
		}
		s.batMu.Lock()
		if len(s.batQ) > 0 {
			next := s.batQ[0]
			copy(s.batQ, s.batQ[1:])
			s.batQ[len(s.batQ)-1] = nil
			s.batQ = s.batQ[:len(s.batQ)-1]
			next.promoted = true
			next.done <- struct{}{}
		} else {
			s.batLead = false
		}
		s.batMu.Unlock()
		return err
	}
	reqs := append(s.batReqs[:0], s.batQ...)
	for i := range s.batQ {
		s.batQ[i] = nil
	}
	s.batQ = s.batQ[:0]
	s.batMu.Unlock()

	dsts := append(s.batDsts[:0], dst)
	errs := append(s.batErrs[:0], nil)
	for _, r := range reqs {
		dsts = append(dsts, r.dst)
		errs = append(errs, nil)
	}
	s.pool.DrawBatch(dsts, errs)
	if s.svc != nil && s.svc.obs.Enabled() {
		s.svc.batchSize.Observe(float64(len(dsts)))
	}
	err := errs[0]
	for i, r := range reqs {
		r.err = errs[i+1]
	}
	for i := range dsts {
		dsts[i] = nil
	}
	for i := range errs {
		errs[i] = nil
	}
	for i, r := range reqs {
		reqs[i] = nil
		r.done <- struct{}{}
	}

	// Restore the leader-owned scratch BEFORE the handoff below: the
	// moment a successor is promoted it may enter lead() and read these
	// fields, so this write must be the outgoing leader's last.
	s.batDsts, s.batErrs, s.batReqs = dsts[:0], errs[:0], reqs[:0]

	// Leadership handoff is the final act: if callers parked during our
	// cycle, promote the queue head as the next leader (bounding every
	// leader to one cycle); otherwise release leadership.
	s.batMu.Lock()
	if len(s.batQ) > 0 {
		next := s.batQ[0]
		copy(s.batQ, s.batQ[1:])
		s.batQ[len(s.batQ)-1] = nil
		s.batQ = s.batQ[:len(s.batQ)-1]
		next.promoted = true
		next.done <- struct{}{}
	} else {
		s.batLead = false
	}
	s.batMu.Unlock()
	return err
}
