package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestMetricsPromLint scrapes the daemon's /metrics endpoint with a live
// session whose name needs escaping and runs the exposition through the
// promlint-style validator: every family must carry # HELP / # TYPE,
// label values must be escaped, counters must end in _total. This is the
// satellite fix for the old renderer, which emitted TYPE-only headers
// and Go-quoted (not exposition-escaped) label values.
func TestMetricsPromLint(t *testing.T) {
	reg := obs.New()
	sv := New(Config{
		MaxSessions: 1, DrainTimeout: 5 * time.Second,
		Obs: reg, Spans: obs.NewSpanLog(64),
	})
	defer sv.Shutdown(context.Background())
	h := sv.Handler()

	spec := fastSpec(404)
	spec.Name = "evil\"name\\with\nnastiness"
	s, err := sv.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	// Exercise the instrumented handlers so the histogram families have
	// samples (one ok draw, one error draw, one stream range).
	doJSON(t, h, "POST", "/v1/sessions/1/draw?bytes=32", "", http.StatusOK)
	doJSON(t, h, "POST", "/v1/sessions/1/draw?bytes=0", "", http.StatusBadRequest)
	req := httptest.NewRequest("GET", "/v1/sessions/1/stream?offset=0&len=64", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream status %d", rec.Code)
	}

	req = httptest.NewRequest("GET", "/metrics", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	if issues := obs.Lint(strings.NewReader(body)); len(issues) > 0 {
		t.Fatalf("/metrics is not lint-clean:\n%s\nexposition:\n%s",
			strings.Join(issues, "\n"), body)
	}
	for _, want := range []string{
		"# HELP thinaird_uptime_seconds ",
		"# TYPE thinaird_draw_seconds histogram",
		"thinaird_draw_seconds_bucket{outcome=\"ok\",le=\"+Inf\"}",
		"thinaird_draw_seconds_bucket{outcome=\"error\",le=\"+Inf\"}",
		"thinaird_stream_range_seconds_count{outcome=\"ok\"}",
		"thinaird_session_stream_cache_hits_total",
		"thinaird_session_stream_health_skips_total",
		"thinaird_keystream_block_derive_seconds_count",
		`name="evil\"name\\with\nnastiness"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
