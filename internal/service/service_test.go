package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/keypool"
)

// fastSpec is a small, quick session: 3 terminals over an in-process
// bus. The erasure sits in the paper's operating regime — at low loss the
// leave-one-out estimator certifies almost nothing (Eve's stand-in heard
// nearly everything) and rounds abort.
func fastSpec(seed int64) SessionSpec {
	return SessionSpec{
		Terminals:    3,
		Erasure:      0.45,
		XPerRound:    64,
		PayloadBytes: 16,
		Rounds:       1,
		Rotate:       true,
		Seed:         seed,
		LowWater:     256,
		TargetDepth:  512,
		Timeout:      10 * time.Second,
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestMultiSessionConvergenceAndRefill is the deterministic service test:
// N concurrent sessions with fixed seeds, every session converges (the
// engine's agreement check runs inside every refresh batch), pools fill,
// and after draws push a pool below its watermark the background
// refresher restores the depth without any draw blocking on protocol
// rounds.
func TestMultiSessionConvergenceAndRefill(t *testing.T) {
	const sessions = 6
	sv := New(Config{MaxSessions: sessions, DrainTimeout: 5 * time.Second})
	defer sv.Shutdown(context.Background())

	var ss []*Session
	for i := 0; i < sessions; i++ {
		spec := fastSpec(int64(1000 + i*17))
		spec.Name = fmt.Sprintf("grp-%d", i)
		s, err := sv.Create(spec)
		if err != nil {
			t.Fatal(err)
		}
		ss = append(ss, s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, s := range ss {
		if err := s.WaitReady(ctx); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range ss {
		m := s.Metrics()
		if m.Pool.Available < s.Spec().TargetDepth {
			t.Fatalf("session %d: pool %d below target %d after ready",
				s.ID, m.Pool.Available, s.Spec().TargetDepth)
		}
		if m.Productive == 0 || m.SecretBytes == 0 {
			t.Fatalf("session %d: no productive rounds (%+v)", s.ID, m)
		}
	}

	// Drain each pool below the watermark; the background refresher must
	// restore the target depth.
	for _, s := range ss {
		avail := s.Pool().Available()
		if _, err := s.Draw(avail - s.Spec().LowWater/2); err != nil {
			t.Fatalf("session %d: draw: %v", s.ID, err)
		}
	}
	for _, s := range ss {
		s := s
		waitFor(t, 30*time.Second, fmt.Sprintf("session %d pool recovery", s.ID), func() bool {
			return s.Pool().Available() >= s.Spec().TargetDepth
		})
		if st := s.Pool().Stats(); st.LowWaterHits == 0 {
			t.Fatalf("session %d: refill without a low-water hit? %+v", s.ID, st)
		}
		if m := s.Metrics(); m.Refreshes < 2 {
			t.Fatalf("session %d: pool recovered without a second refresh batch (%+v)", s.ID, m)
		}
	}
}

// TestSameSeedSameKeyStream pins the determinism contract: two sessions
// with identical specs and seeds produce identical key streams, byte for
// byte, regardless of scheduling.
func TestSameSeedSameKeyStream(t *testing.T) {
	sv := New(Config{MaxSessions: 4})
	defer sv.Shutdown(context.Background())
	spec := fastSpec(4242)
	a, err := sv.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sv.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	ka, err := a.Draw(96)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Draw(96)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ka, kb) {
		t.Fatal("same spec and seed produced different key streams")
	}
}

// TestAdmissionBackpressure exercises the bounded runner pool: beyond
// MaxSessions sessions queue, beyond MaxQueued creation fails fast, and a
// closed session's slot is reclaimed by a queued one.
func TestAdmissionBackpressure(t *testing.T) {
	sv := New(Config{MaxSessions: 2, MaxQueued: 2, DrainTimeout: 5 * time.Second})
	defer sv.Shutdown(context.Background())

	var ss []*Session
	for i := 0; i < 4; i++ {
		s, err := sv.Create(fastSpec(int64(300 + i)))
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		ss = append(ss, s)
	}
	if _, err := sv.Create(fastSpec(99)); !errors.Is(err, ErrSaturated) {
		t.Fatalf("5th create: %v, want ErrSaturated", err)
	}
	waitFor(t, 15*time.Second, "two running sessions", func() bool {
		m := sv.Metrics()
		return m.Running == 2 && m.Queued == 2
	})
	// Freeing one slot lets a queued session start.
	if err := sv.Close(ss[0].ID); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "queued session promotion", func() bool {
		m := sv.Metrics()
		return m.Running == 2 && m.Queued == 1
	})
	if _, err := sv.Get(ss[0].ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("closed session still addressable: %v", err)
	}
}

// TestGracefulShutdownUnderTraffic is the shutdown/cancellation race
// test: draws hammer the pools from several goroutines while the whole
// daemon shuts down. Run under -race in CI. After Shutdown every pool is
// zeroized (draws fail with keypool.ErrClosed) and no service goroutine
// survives.
func TestGracefulShutdownUnderTraffic(t *testing.T) {
	before := runtime.NumGoroutine()
	sv := New(Config{MaxSessions: 4, DrainTimeout: 5 * time.Second})
	var ss []*Session
	for i := 0; i < 4; i++ {
		s, err := sv.Create(fastSpec(int64(7000 + i*13)))
		if err != nil {
			t.Fatal(err)
		}
		ss = append(ss, s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, s := range ss {
		if err := s.WaitReady(ctx); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, s := range ss {
		wg.Add(1)
		go func(s *Session) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = s.Draw(16) // exhausted/closed errors are expected
				time.Sleep(time.Millisecond)
			}
		}(s)
	}
	time.Sleep(20 * time.Millisecond) // let draws overlap refreshes

	sctx, scancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer scancel()
	if err := sv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()

	for _, s := range ss {
		if st := s.State(); st != StateClosed {
			t.Fatalf("session %d state %v after shutdown", s.ID, st)
		}
		if _, err := s.Draw(1); !errors.Is(err, keypool.ErrClosed) {
			t.Fatalf("session %d: draw after shutdown: %v, want ErrClosed", s.ID, err)
		}
	}
	if _, err := sv.Create(fastSpec(1)); !errors.Is(err, ErrShutdown) {
		t.Fatalf("create after shutdown: %v", err)
	}
	waitForGoroutines(t, before)
}

// TestRefreshFailureMarksSessionFailed: a channel so lossy that every
// round aborts must move the session to StateFailed after the failure
// limit instead of spinning the bus forever.
func TestRefreshFailureMarksSessionFailed(t *testing.T) {
	sv := New(Config{MaxSessions: 1, DrainTimeout: time.Second})
	defer sv.Shutdown(context.Background())
	spec := fastSpec(5)
	spec.Erasure = 0.999 // every terminal misses every x-packet: rounds abort
	spec.XPerRound = 4
	s, err := sv.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err == nil {
		t.Fatal("session became ready on a dead channel")
	}
	if st := s.State(); st != StateFailed {
		t.Fatalf("state = %v, want failed", st)
	}
	if m := s.Metrics(); m.RefreshErrors < maxRefreshFailures || m.LastError == "" {
		t.Fatalf("metrics = %+v", m)
	}
	// Dead sessions leave the registry (no unbounded accumulation in a
	// long-lived daemon) and are accounted.
	waitFor(t, 10*time.Second, "failed session removal", func() bool {
		_, err := sv.Get(s.ID)
		return errors.Is(err, ErrNotFound)
	})
	if m := sv.Metrics(); m.Failed != 1 || m.Removed != 1 {
		t.Fatalf("service metrics = %+v", m)
	}
}

// TestQueuedCreateCloseCycle is the regression for a Create deadlock:
// sessions closed while still queued must release their queue slot
// immediately, so create/close cycles against a saturated runner pool
// neither wedge the daemon nor leak registry entries.
func TestQueuedCreateCloseCycle(t *testing.T) {
	sv := New(Config{MaxSessions: 1, MaxQueued: 1, DrainTimeout: 5 * time.Second})
	defer sv.Shutdown(context.Background())
	if _, err := sv.Create(fastSpec(1)); err != nil { // occupies the only runner
		t.Fatal(err)
	}
	waitFor(t, 15*time.Second, "first session running", func() bool {
		return sv.Metrics().Running == 1
	})
	for i := 0; i < 20; i++ {
		s, err := sv.Create(fastSpec(int64(100 + i)))
		if err != nil {
			t.Fatalf("cycle %d: create: %v", i, err)
		}
		if err := sv.Close(s.ID); err != nil {
			t.Fatalf("cycle %d: close: %v", i, err)
		}
	}
	// The queue slot is free again: one more queued admit works, the one
	// after that is real saturation.
	if _, err := sv.Create(fastSpec(777)); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Create(fastSpec(778)); !errors.Is(err, ErrSaturated) {
		t.Fatalf("overflow create: %v, want ErrSaturated", err)
	}
	if got := len(sv.Sessions()); got != 2 {
		t.Fatalf("registry holds %d sessions, want 2", got)
	}
}

// TestServe32UDPSessions is the acceptance bar: >= 32 concurrent group
// sessions over loopback UDP, background keypool refresh observed (depth
// recovers after draws), graceful shutdown, no goroutines leaked.
func TestServe32UDPSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("UDP session fan-out skipped in -short")
	}
	const sessions = 32
	before := runtime.NumGoroutine()
	sv := New(Config{MaxSessions: sessions, DrainTimeout: 10 * time.Second})

	var ss []*Session
	for i := 0; i < sessions; i++ {
		spec := SessionSpec{
			Name:         fmt.Sprintf("udp-%d", i),
			Terminals:    3,
			Erasure:      0.45,
			XPerRound:    48,
			PayloadBytes: 16,
			Rounds:       1,
			Rotate:       true,
			UDP:          true,
			Seed:         int64(9000 + i*31),
			LowWater:     192,
			TargetDepth:  384,
			Observe:      i%8 == 0, // a few wire-level eavesdroppers in the mix
			Timeout:      20 * time.Second,
		}
		s, err := sv.Create(spec)
		if err != nil {
			t.Fatal(err)
		}
		ss = append(ss, s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, s := range ss {
		if err := s.WaitReady(ctx); err != nil {
			t.Fatalf("session %d: %v", s.ID, err)
		}
	}
	if m := sv.Metrics(); m.Running != sessions {
		t.Fatalf("running = %d, want %d", m.Running, sessions)
	}

	// Drain below the watermark everywhere, then watch every pool recover.
	for _, s := range ss {
		if _, err := s.Draw(s.Pool().Available() - s.Spec().LowWater/2); err != nil {
			t.Fatalf("session %d draw: %v", s.ID, err)
		}
	}
	for _, s := range ss {
		s := s
		waitFor(t, 60*time.Second, fmt.Sprintf("session %d UDP pool recovery", s.ID), func() bool {
			return s.Pool().Available() >= s.Spec().TargetDepth
		})
	}
	for _, s := range ss {
		if m := s.Metrics(); m.Refreshes < 2 || m.Pool.LowWaterHits == 0 {
			t.Fatalf("session %d: background refresh not observed (%+v)", s.ID, m)
		}
	}

	sctx, scancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer scancel()
	if err := sv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines asserts the goroutine count returns to (near) the
// pre-test baseline, allowing runtime background goroutines some slack.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: %d before, %d after\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}
