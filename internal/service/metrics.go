package service

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/keypool"
	"repro/internal/keystream"
)

// SessionMetrics is a point-in-time snapshot of one session's telemetry.
type SessionMetrics struct {
	ID    uint32 `json:"id"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"`

	Terminals int     `json:"terminals"`
	Erasure   float64 `json:"erasure"`
	UDP       bool    `json:"udp"`

	// Rounds / Productive count protocol rounds executed so far;
	// Refreshes / RefreshErrors count background refresh batches.
	Rounds        int64 `json:"rounds"`
	Productive    int64 `json:"productive"`
	Refreshes     int64 `json:"refreshes"`
	RefreshErrors int64 `json:"refresh_errors"`
	// SecretBytes is the lifetime key material deposited into the pool.
	SecretBytes int64 `json:"secret_bytes"`

	Pool keypool.Stats `json:"pool"`

	// Stream is the keystream snapshot for stream-fed sessions (nil for
	// UDP/observed/authenticated sessions on the lockstep refresh path).
	Stream *keystream.Stats `json:"stream,omitempty"`

	// Eve-bound estimate from the wire-level observer, when attached:
	// the paper's reliability metric over everything Eve overheard.
	EveSecretDims  int     `json:"eve_secret_dims,omitempty"`
	EveUnknownDims int     `json:"eve_unknown_dims,omitempty"`
	EveReliability float64 `json:"eve_reliability,omitempty"`

	LastError string `json:"last_error,omitempty"`
}

// Metrics returns the session's snapshot. State and pool are read under
// the session's snapshot lock so a scrape racing a drain sees either the
// live session or the fully torn-down one, never a torn mix (a running
// state over a zeroized pool).
func (s *Session) Metrics() SessionMetrics {
	s.snapMu.RLock()
	m := SessionMetrics{
		ID:            s.ID,
		Name:          s.spec.Name,
		State:         s.State().String(),
		Terminals:     s.spec.Terminals,
		Erasure:       s.spec.Erasure,
		UDP:           s.spec.UDP,
		Rounds:        s.rounds.Load(),
		Productive:    s.prodRound.Load(),
		Refreshes:     s.refreshes.Load(),
		RefreshErrors: s.refreshEr.Load(),
		SecretBytes:   s.secretOut.Load(),
		Pool:          s.pool.Stats(),
	}
	s.snapMu.RUnlock()
	if str := s.Stream(); str != nil {
		st := str.Stats()
		m.Stream = &st
	}
	if sd, ud, ok := s.eveCertificate(); ok {
		m.EveSecretDims, m.EveUnknownDims = sd, ud
		if sd > 0 {
			m.EveReliability = core.Reliability(sd, ud)
		}
	}
	if err := s.LastErr(); err != nil {
		m.LastError = err.Error()
	}
	return m
}

// ServiceMetrics is the daemon-wide snapshot.
type ServiceMetrics struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	MaxSessions   int              `json:"max_sessions"`
	Running       int              `json:"running"`
	Queued        int              `json:"queued"`
	Created       int64            `json:"created_total"`
	Rejected      int64            `json:"rejected_total"`
	Removed       int64            `json:"removed_total"`
	Failed        int64            `json:"failed_total"`
	Sessions      []SessionMetrics `json:"sessions"`
}

// Metrics snapshots the whole daemon.
func (sv *Service) Metrics() ServiceMetrics {
	m := ServiceMetrics{
		UptimeSeconds: sv.Uptime().Seconds(),
		MaxSessions:   sv.cfg.MaxSessions,
		Created:       sv.created.Load(),
		Rejected:      sv.rejected.Load(),
		Removed:       sv.removed.Load(),
		Failed:        sv.failed.Load(),
	}
	for _, s := range sv.Sessions() {
		sm := s.Metrics()
		switch s.State() {
		case StateRunning:
			m.Running++
		case StateQueued:
			m.Queued++
		}
		m.Sessions = append(m.Sessions, sm)
	}
	return m
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (counters suffixed _total, gauges bare), one family per metric.
func (m ServiceMetrics) WriteProm(w io.Writer) {
	fmt.Fprintf(w, "# TYPE thinaird_uptime_seconds gauge\n")
	fmt.Fprintf(w, "thinaird_uptime_seconds %g\n", m.UptimeSeconds)
	fmt.Fprintf(w, "# TYPE thinaird_sessions_running gauge\n")
	fmt.Fprintf(w, "thinaird_sessions_running %d\n", m.Running)
	fmt.Fprintf(w, "# TYPE thinaird_sessions_queued gauge\n")
	fmt.Fprintf(w, "thinaird_sessions_queued %d\n", m.Queued)
	fmt.Fprintf(w, "# TYPE thinaird_sessions_created_total counter\n")
	fmt.Fprintf(w, "thinaird_sessions_created_total %d\n", m.Created)
	fmt.Fprintf(w, "# TYPE thinaird_sessions_rejected_total counter\n")
	fmt.Fprintf(w, "thinaird_sessions_rejected_total %d\n", m.Rejected)
	fmt.Fprintf(w, "# TYPE thinaird_sessions_removed_total counter\n")
	fmt.Fprintf(w, "thinaird_sessions_removed_total %d\n", m.Removed)
	fmt.Fprintf(w, "# TYPE thinaird_sessions_failed_total counter\n")
	fmt.Fprintf(w, "thinaird_sessions_failed_total %d\n", m.Failed)

	emit := func(family, typ string, value func(SessionMetrics) (float64, bool)) {
		first := true
		for _, s := range m.Sessions {
			v, ok := value(s)
			if !ok {
				continue
			}
			if first {
				fmt.Fprintf(w, "# TYPE %s %s\n", family, typ)
				first = false
			}
			fmt.Fprintf(w, "%s{session=%q,name=%q} %g\n", family, fmt.Sprint(s.ID), s.Name, v)
		}
	}
	always := func(f func(SessionMetrics) float64) func(SessionMetrics) (float64, bool) {
		return func(s SessionMetrics) (float64, bool) { return f(s), true }
	}
	emit("thinaird_session_rounds_total", "counter", always(func(s SessionMetrics) float64 { return float64(s.Rounds) }))
	emit("thinaird_session_productive_rounds_total", "counter", always(func(s SessionMetrics) float64 { return float64(s.Productive) }))
	emit("thinaird_session_refreshes_total", "counter", always(func(s SessionMetrics) float64 { return float64(s.Refreshes) }))
	emit("thinaird_session_refresh_errors_total", "counter", always(func(s SessionMetrics) float64 { return float64(s.RefreshErrors) }))
	emit("thinaird_session_secret_bytes_total", "counter", always(func(s SessionMetrics) float64 { return float64(s.SecretBytes) }))
	emit("thinaird_session_pool_available_bytes", "gauge", always(func(s SessionMetrics) float64 { return float64(s.Pool.Available) }))
	emit("thinaird_session_pool_drawn_bytes_total", "counter", always(func(s SessionMetrics) float64 { return float64(s.Pool.Drawn) }))
	emit("thinaird_session_pool_low_water_hits_total", "counter", always(func(s SessionMetrics) float64 { return float64(s.Pool.LowWaterHits) }))
	emit("thinaird_session_pool_closed", "gauge", always(func(s SessionMetrics) float64 {
		if s.Pool.Closed {
			return 1
		}
		return 0
	}))
	streamStat := func(f func(keystream.Stats) float64) func(SessionMetrics) (float64, bool) {
		return func(s SessionMetrics) (float64, bool) {
			if s.Stream == nil {
				return 0, false
			}
			return f(*s.Stream), true
		}
	}
	emit("thinaird_session_stream_blocks_total", "counter", streamStat(func(st keystream.Stats) float64 { return float64(st.Blocks) }))
	emit("thinaird_session_stream_block_errors_total", "counter", streamStat(func(st keystream.Stats) float64 { return float64(st.BlockErrors) }))
	emit("thinaird_session_stream_bytes_read_total", "counter", streamStat(func(st keystream.Stats) float64 { return float64(st.BytesRead) }))
	emit("thinaird_session_stream_verify_mismatch_total", "counter", streamStat(func(st keystream.Stats) float64 { return float64(st.VerifyMismatch) }))
	emit("thinaird_session_stream_shed_frames_total", "counter", streamStat(func(st keystream.Stats) float64 { return float64(st.ShedFrames) }))
	emit("thinaird_session_eve_reliability", "gauge", func(s SessionMetrics) (float64, bool) {
		if s.EveSecretDims == 0 || math.IsNaN(s.EveReliability) {
			return 0, false
		}
		return s.EveReliability, true
	})
}
