package service

import (
	"io"
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/keypool"
	"repro/internal/keystream"
	"repro/internal/obs"
)

// SessionMetrics is a point-in-time snapshot of one session's telemetry.
type SessionMetrics struct {
	ID    uint32 `json:"id"`
	Name  string `json:"name,omitempty"`
	State string `json:"state"`

	Terminals int     `json:"terminals"`
	Erasure   float64 `json:"erasure"`
	UDP       bool    `json:"udp"`

	// Rounds / Productive count protocol rounds executed so far;
	// Refreshes / RefreshErrors count background refresh batches.
	Rounds        int64 `json:"rounds"`
	Productive    int64 `json:"productive"`
	Refreshes     int64 `json:"refreshes"`
	RefreshErrors int64 `json:"refresh_errors"`
	// SecretBytes is the lifetime key material deposited into the pool.
	SecretBytes int64 `json:"secret_bytes"`

	Pool keypool.Stats `json:"pool"`

	// Stream is the keystream snapshot for stream-fed sessions (nil for
	// UDP/observed/authenticated sessions on the lockstep refresh path).
	Stream *keystream.Stats `json:"stream,omitempty"`

	// Eve-bound estimate from the wire-level observer, when attached:
	// the paper's reliability metric over everything Eve overheard.
	EveSecretDims  int     `json:"eve_secret_dims,omitempty"`
	EveUnknownDims int     `json:"eve_unknown_dims,omitempty"`
	EveReliability float64 `json:"eve_reliability,omitempty"`

	LastError string `json:"last_error,omitempty"`
}

// Metrics returns the session's snapshot. State and pool are read under
// the session's snapshot lock so a scrape racing a drain sees either the
// live session or the fully torn-down one, never a torn mix (a running
// state over a zeroized pool).
func (s *Session) Metrics() SessionMetrics {
	s.snapMu.RLock()
	m := SessionMetrics{
		ID:            s.ID,
		Name:          s.spec.Name,
		State:         s.State().String(),
		Terminals:     s.spec.Terminals,
		Erasure:       s.spec.Erasure,
		UDP:           s.spec.UDP,
		Rounds:        s.rounds.Load(),
		Productive:    s.prodRound.Load(),
		Refreshes:     s.refreshes.Load(),
		RefreshErrors: s.refreshEr.Load(),
		SecretBytes:   s.secretOut.Load(),
		Pool:          s.pool.Stats(),
	}
	s.snapMu.RUnlock()
	if str := s.Stream(); str != nil {
		st := str.Stats()
		m.Stream = &st
	}
	if sd, ud, ok := s.eveCertificate(); ok {
		m.EveSecretDims, m.EveUnknownDims = sd, ud
		if sd > 0 {
			m.EveReliability = core.Reliability(sd, ud)
		}
	}
	if err := s.LastErr(); err != nil {
		m.LastError = err.Error()
	}
	return m
}

// ServiceMetrics is the daemon-wide snapshot.
type ServiceMetrics struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	MaxSessions   int              `json:"max_sessions"`
	Running       int              `json:"running"`
	Queued        int              `json:"queued"`
	Created       int64            `json:"created_total"`
	Rejected      int64            `json:"rejected_total"`
	Removed       int64            `json:"removed_total"`
	Failed        int64            `json:"failed_total"`
	Sessions      []SessionMetrics `json:"sessions"`
}

// Metrics snapshots the whole daemon.
func (sv *Service) Metrics() ServiceMetrics {
	m := ServiceMetrics{
		UptimeSeconds: sv.Uptime().Seconds(),
		MaxSessions:   sv.cfg.MaxSessions,
		Created:       sv.created.Load(),
		Rejected:      sv.rejected.Load(),
		Removed:       sv.removed.Load(),
		Failed:        sv.failed.Load(),
	}
	for _, s := range sv.Sessions() {
		sm := s.Metrics()
		switch s.State() {
		case StateRunning:
			m.Running++
		case StateQueued:
			m.Queued++
		}
		m.Sessions = append(m.Sessions, sm)
	}
	return m
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (counters suffixed _total, gauges bare), one family per
// metric, with # HELP / # TYPE headers and escaped label values (a
// session Name is client-supplied and may contain quotes or newlines).
func (m ServiceMetrics) WriteProm(w io.Writer) {
	pw := obs.NewPromWriter(w)
	daemon := func(name, help, typ string, v float64) {
		pw.Family(name, help, typ)
		pw.Sample(name, v)
	}
	daemon("thinaird_uptime_seconds", "Seconds since the daemon started.", "gauge", m.UptimeSeconds)
	daemon("thinaird_sessions_running", "Sessions currently running.", "gauge", float64(m.Running))
	daemon("thinaird_sessions_queued", "Sessions admitted but waiting for a runner slot.", "gauge", float64(m.Queued))
	daemon("thinaird_sessions_created_total", "Sessions admitted over the daemon's lifetime.", "counter", float64(m.Created))
	daemon("thinaird_sessions_rejected_total", "Session creations refused by admission control.", "counter", float64(m.Rejected))
	daemon("thinaird_sessions_removed_total", "Sessions torn down and forgotten.", "counter", float64(m.Removed))
	daemon("thinaird_sessions_failed_total", "Sessions that terminated in the failed state.", "counter", float64(m.Failed))

	emit := func(family, help, typ string, value func(SessionMetrics) (float64, bool)) {
		first := true
		for _, s := range m.Sessions {
			v, ok := value(s)
			if !ok {
				continue
			}
			if first {
				pw.Family(family, help, typ)
				first = false
			}
			pw.Sample(family, v, "session", strconv.FormatUint(uint64(s.ID), 10), "name", s.Name)
		}
	}
	always := func(f func(SessionMetrics) float64) func(SessionMetrics) (float64, bool) {
		return func(s SessionMetrics) (float64, bool) { return f(s), true }
	}
	emit("thinaird_session_rounds_total", "Protocol rounds executed by the session.", "counter",
		always(func(s SessionMetrics) float64 { return float64(s.Rounds) }))
	emit("thinaird_session_productive_rounds_total", "Rounds that certified secret bits.", "counter",
		always(func(s SessionMetrics) float64 { return float64(s.Productive) }))
	emit("thinaird_session_refreshes_total", "Background refresh batches attempted.", "counter",
		always(func(s SessionMetrics) float64 { return float64(s.Refreshes) }))
	emit("thinaird_session_refresh_errors_total", "Refresh batches that failed.", "counter",
		always(func(s SessionMetrics) float64 { return float64(s.RefreshErrors) }))
	emit("thinaird_session_secret_bytes_total", "Key material deposited into the pool.", "counter",
		always(func(s SessionMetrics) float64 { return float64(s.SecretBytes) }))
	emit("thinaird_session_pool_available_bytes", "Undrawn key material in the pool.", "gauge",
		always(func(s SessionMetrics) float64 { return float64(s.Pool.Available) }))
	emit("thinaird_session_pool_drawn_bytes_total", "Key material drawn from the pool.", "counter",
		always(func(s SessionMetrics) float64 { return float64(s.Pool.Drawn) }))
	emit("thinaird_session_pool_low_water_hits_total", "Times the pool fell below its refresh watermark.", "counter",
		always(func(s SessionMetrics) float64 { return float64(s.Pool.LowWaterHits) }))
	emit("thinaird_session_pool_closed", "1 when the pool is zeroized and closed.", "gauge",
		always(func(s SessionMetrics) float64 {
			if s.Pool.Closed {
				return 1
			}
			return 0
		}))
	streamStat := func(f func(keystream.Stats) float64) func(SessionMetrics) (float64, bool) {
		return func(s SessionMetrics) (float64, bool) {
			if s.Stream == nil {
				return 0, false
			}
			return f(*s.Stream), true
		}
	}
	emit("thinaird_session_stream_blocks_total", "Keystream blocks derived.", "counter",
		streamStat(func(st keystream.Stats) float64 { return float64(st.Blocks) }))
	emit("thinaird_session_stream_block_errors_total", "Keystream block derivations that failed.", "counter",
		streamStat(func(st keystream.Stats) float64 { return float64(st.BlockErrors) }))
	emit("thinaird_session_stream_bytes_read_total", "Bytes read from the keystream.", "counter",
		streamStat(func(st keystream.Stats) float64 { return float64(st.BytesRead) }))
	emit("thinaird_session_stream_verify_mismatch_total", "Per-round secret verifications that diverged.", "counter",
		streamStat(func(st keystream.Stats) float64 { return float64(st.VerifyMismatch) }))
	emit("thinaird_session_stream_shed_frames_total", "Frames dropped on overflowing member inboxes.", "counter",
		streamStat(func(st keystream.Stats) float64 { return float64(st.ShedFrames) }))
	emit("thinaird_session_stream_cache_hits_total", "Block acquisitions served from the resident cache.", "counter",
		streamStat(func(st keystream.Stats) float64 { return float64(st.CacheHits) }))
	emit("thinaird_session_stream_cache_misses_total", "Block acquisitions that created or waited for a derivation.", "counter",
		streamStat(func(st keystream.Stats) float64 { return float64(st.CacheMisses) }))
	emit("thinaird_session_stream_cache_evictions_total", "Resident blocks evicted by the LRU.", "counter",
		streamStat(func(st keystream.Stats) float64 { return float64(st.CacheEvictions) }))
	emit("thinaird_session_stream_health_skips_total", "Report waits skipped for unresponsive members.", "counter",
		streamStat(func(st keystream.Stats) float64 { return float64(st.HealthSkips) }))
	emit("thinaird_session_stream_health_probes_total", "Liveness re-probes of skipped members.", "counter",
		streamStat(func(st keystream.Stats) float64 { return float64(st.HealthProbes) }))
	emit("thinaird_session_eve_reliability", "Eve-bound reliability estimate from the wire observer.", "gauge",
		func(s SessionMetrics) (float64, bool) {
			if s.EveSecretDims == 0 || math.IsNaN(s.EveReliability) {
				return 0, false
			}
			return s.EveReliability, true
		})
}
