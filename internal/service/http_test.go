package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func doJSON(t *testing.T, h http.Handler, method, path, body string, wantStatus int) map[string]any {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("%s %s: status %d, want %d (body %s)", method, path, rec.Code, wantStatus, rec.Body)
	}
	out := map[string]any{}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("%s %s: bad JSON: %v (%s)", method, path, err, rec.Body)
	}
	return out
}

func TestHTTPSurface(t *testing.T) {
	sv := New(Config{MaxSessions: 2, MaxQueued: 1, DrainTimeout: 5 * time.Second})
	defer sv.Shutdown(context.Background())
	h := sv.Handler()

	if got := doJSON(t, h, "GET", "/healthz", "", http.StatusOK); got["status"] != "ok" {
		t.Fatalf("healthz = %v", got)
	}

	spec := fastSpec(31337)
	spec.Name = "http-grp"
	body, _ := json.Marshal(spec)
	created := doJSON(t, h, "POST", "/v1/sessions", string(body), http.StatusCreated)
	id := fmt.Sprint(int(created["id"].(float64)))

	s, err := sv.Get(uint32(created["id"].(float64)))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	got := doJSON(t, h, "GET", "/v1/sessions/"+id, "", http.StatusOK)
	if got["name"] != "http-grp" || got["state"] != "running" {
		t.Fatalf("session snapshot = %v", got)
	}

	draw := doJSON(t, h, "POST", "/v1/sessions/"+id+"/draw?bytes=48", "", http.StatusOK)
	if key, _ := draw["key"].(string); len(key) != 96 { // hex doubles
		t.Fatalf("draw = %v", draw)
	}
	// A draw beyond the pool is backpressure, not a 500.
	doJSON(t, h, "POST", "/v1/sessions/"+id+"/draw?bytes=1000000", "", http.StatusConflict)
	doJSON(t, h, "POST", "/v1/sessions/"+id+"/draw?bytes=0", "", http.StatusBadRequest)

	// Prometheus text surface.
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	for _, want := range []string{
		"thinaird_sessions_running 1",
		`thinaird_session_pool_available_bytes{session="1",name="http-grp"}`,
		"thinaird_session_refreshes_total",
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("metrics output missing %q:\n%s", want, rec.Body)
		}
	}

	list := doJSON(t, h, "GET", "/v1/sessions", "", http.StatusOK)
	if n := len(list["sessions"].([]any)); n != 1 {
		t.Fatalf("list sessions = %d", n)
	}

	doJSON(t, h, "DELETE", "/v1/sessions/"+id, "", http.StatusOK)
	doJSON(t, h, "GET", "/v1/sessions/"+id, "", http.StatusNotFound)
	doJSON(t, h, "GET", "/v1/sessions/notanid", "", http.StatusBadRequest)
}

func TestHTTPSaturation(t *testing.T) {
	sv := New(Config{MaxSessions: 1, MaxQueued: 1, DrainTimeout: time.Second})
	defer sv.Shutdown(context.Background())
	h := sv.Handler()
	body, _ := json.Marshal(fastSpec(1))
	doJSON(t, h, "POST", "/v1/sessions", string(body), http.StatusCreated)
	doJSON(t, h, "POST", "/v1/sessions", string(body), http.StatusCreated)
	doJSON(t, h, "POST", "/v1/sessions", string(body), http.StatusTooManyRequests)
	doJSON(t, h, "POST", "/v1/sessions", "{not json", http.StatusBadRequest)
}
