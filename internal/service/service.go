// Package service is the long-lived daemon layer over the protocol
// engine: it runs many concurrent secret-agreement group sessions, each
// with its own broadcast bus (in-process channels or loopback UDP), a
// goroutine-per-node runtime, and a key pool refreshed in the background
// by re-entering the engine whenever draws push the pool below its
// watermark.
//
// The Service owns admission control, lifecycle (create / close /
// drain), and telemetry (per-session rounds, secret bytes, pool depth,
// Eve-bound estimates) exposed over HTTP by Handler. Sessions are
// partitioned across shards (id → shard by hash): each shard runs one
// dispatch goroutine feeding on-demand executors over a channel handoff
// and owns the pinned scratch arenas its sessions' engine batches run
// on, while a global token semaphore bounds total running sessions.
// Concurrent draws against one session coalesce in a per-session
// combiner (batch.go) into single pool operations. cmd/thinaird is the
// CLI front end.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrSaturated is returned by Create when the admission queue is full:
// the caller should back off and retry, the daemon is at capacity.
var ErrSaturated = errors.New("service: session queue saturated")

// ErrShutdown is returned by Create after Shutdown has begun.
var ErrShutdown = errors.New("service: shutting down")

// ErrNotFound is returned when addressing an unknown session id.
var ErrNotFound = errors.New("service: no such session")

// ErrFailed is returned when addressing a session that died permanently
// on its own — dead channel, refresh-failure budget exhausted — as
// opposed to one the caller closed. The distinction matters to clients:
// closed means "you asked for this", failed means "the session is gone
// and retrying will not bring it back".
var ErrFailed = errors.New("service: session failed")

// Config parameterizes the daemon.
type Config struct {
	// MaxSessions bounds the number of concurrently RUNNING sessions
	// across all shards (the size of the global token semaphore).
	// 0 means 64.
	MaxSessions int
	// MaxQueued bounds sessions admitted but waiting for a runner slot;
	// beyond it Create fails fast with ErrSaturated. 0 means MaxSessions.
	MaxQueued int
	// Shards is the number of session partitions, each with its own
	// dispatch goroutine, work queue, and pinned scratch arenas. Sessions
	// hash to a shard by id and never migrate. 0 means GOMAXPROCS,
	// capped at MaxSessions.
	Shards int
	// DrainTimeout is how long a closing session may spend finishing its
	// in-flight refresh batch before being cancelled hard. 0 means 10s.
	DrainTimeout time.Duration
	// Obs is the metrics registry the daemon's hot paths (HTTP draws,
	// stream ranges, the engine and keystream underneath) observe into.
	// Nil selects the process-wide obs.Default(). Cluster workers pass a
	// private registry so the coordinator's fleet merge never
	// double-counts in-process workers.
	Obs *obs.Registry
	// Spans is the ring buffer draw/stream span events are recorded to.
	// Nil selects obs.DefaultSpans().
	Spans *obs.SpanLog
}

func (c *Config) fillObs() {
	if c.Obs == nil {
		c.Obs = obs.Default()
	}
	if c.Spans == nil {
		c.Spans = obs.DefaultSpans()
	}
}

func (c *Config) fill() {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = c.MaxSessions
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Shards > c.MaxSessions {
		c.Shards = c.MaxSessions
	}
}

// Service is the multi-session key-agreement daemon.
type Service struct {
	cfg   Config
	start time.Time

	mu       sync.Mutex // registry lock: sessions map, nextID, closed
	sessions map[uint32]*Session
	nextID   uint32
	closed   bool

	// shards partition the sessions: each owns a work queue, a dispatch
	// goroutine, on-demand executors, and pinned scratch arenas. Nothing
	// on the dispatch or draw hot paths touches sv.mu.
	shards []*shard
	// tokens is the global running-session semaphore: a dispatcher takes
	// one token per session before handing it to an executor, the
	// executor returns it when the session ends. Shards therefore share
	// one MaxSessions budget — a hash-skewed load grows one shard's
	// executor set instead of starving behind a fixed per-shard split.
	tokens chan struct{}
	stopc  chan struct{} // closed at the end of Shutdown; parks exit

	wg sync.WaitGroup // dispatcher + executor goroutines

	created  atomic.Int64
	rejected atomic.Int64
	removed  atomic.Int64
	failed   atomic.Int64

	// Failed sessions leave the registry immediately (no unbounded
	// accumulation in a long-lived daemon), but their ids are remembered
	// in a bounded FIFO so lookups can answer ErrFailed instead of a
	// bare ErrNotFound.
	failedMu  sync.Mutex
	failedIDs map[uint32]struct{}
	failedLog []uint32

	obs   *obs.Registry
	spans *obs.SpanLog
	// Draw / stream-range latency handles, resolved once per outcome so
	// the per-request cost is one enabled-check plus one Observe.
	drawOK, drawErr     *obs.Histogram
	streamOK, streamErr *obs.Histogram
	// batchSize records how many concurrent draws each combiner cycle
	// coalesced into one pool operation (see batch.go).
	batchSize *obs.Histogram
}

// batchBuckets bound the draw-batch-size histogram: powers of two up to
// far beyond any realistic concurrent-caller count per session.
var batchBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// New starts a daemon with cfg.Shards dispatch shards sharing a
// cfg.MaxSessions running budget. Call Shutdown to stop it.
func New(cfg Config) *Service {
	cfg.fill()
	cfg.fillObs()
	sv := &Service{
		cfg:      cfg,
		start:    time.Now(),
		sessions: make(map[uint32]*Session),
		nextID:   1,
		stopc:    make(chan struct{}),
		tokens:   make(chan struct{}, cfg.MaxSessions),
		obs:      cfg.Obs,
		spans:    cfg.Spans,
	}
	for i := 0; i < cfg.MaxSessions; i++ {
		sv.tokens <- struct{}{}
	}
	drawLat := sv.obs.HistogramVec("thinaird_draw_seconds",
		"HTTP draw handler latency, by outcome.", obs.LatencyBuckets, "outcome")
	streamLat := sv.obs.HistogramVec("thinaird_stream_range_seconds",
		"HTTP stream-range handler latency, by outcome.", obs.LatencyBuckets, "outcome")
	sv.drawOK = drawLat.With("ok")
	sv.drawErr = drawLat.With("error")
	sv.streamOK = streamLat.With("ok")
	sv.streamErr = streamLat.With("error")
	sv.batchSize = sv.obs.Histogram("thinaird_draw_batch_size",
		"Concurrent draws coalesced into one pool operation per combiner cycle.",
		batchBuckets)
	depthVec := sv.obs.GaugeVec("thinaird_shard_queue_depth",
		"Sessions waiting in each shard's dispatch queue.", "shard")
	sv.shards = make([]*shard, cfg.Shards)
	sv.wg.Add(cfg.Shards)
	for i := range sv.shards {
		label := strconv.Itoa(i)
		sv.shards[i] = newShard(sv, i, label, depthVec.With(label))
		go sv.shards[i].dispatch()
	}
	return sv
}

// shardOf maps a session id to its owning shard. The hash is a fixed
// integer mix (not the identity) so dense sequential ids spread instead
// of striding, and it is a pure function of the id — the same session
// lands on the same shard on every lookup and every restart.
func (sv *Service) shardOf(id uint32) int {
	x := id
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return int(x % uint32(len(sv.shards)))
}

// wakeCount sums executor wake events across shards. Each dispatched
// session wakes exactly one executor (the handoff is an unbuffered
// channel send), so this equals sessions dispatched — the property the
// thundering-herd regression test pins.
func (sv *Service) wakeCount() int64 {
	var n int64
	for _, sh := range sv.shards {
		n += sh.wakes.Load()
	}
	return n
}

// forget drops a finished session from the registry (idempotent — the
// explicit Close path and the runner both call it).
func (sv *Service) forget(id uint32) {
	sv.mu.Lock()
	if _, ok := sv.sessions[id]; ok {
		delete(sv.sessions, id)
		sv.removed.Add(1)
	}
	sv.mu.Unlock()
}

// Create admits a new session. It returns immediately; the session starts
// when its shard dispatches it to an executor and a running token frees
// up (WaitReady blocks until its pool has key material). Create fails
// fast with ErrSaturated when the queue is full.
func (sv *Service) Create(spec SessionSpec) (*Session, error) {
	if err := spec.fill(); err != nil {
		return nil, err
	}
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		return nil, ErrShutdown
	}
	// Admission is counted against live sessions (queued or running):
	// MaxSessions may run, MaxQueued more may wait; beyond that the
	// caller gets immediate backpressure.
	live := 0
	for _, s := range sv.sessions {
		if st := s.State(); st == StateQueued || st == StateRunning {
			live++
		}
	}
	if live >= sv.cfg.MaxSessions+sv.cfg.MaxQueued {
		sv.rejected.Add(1)
		sv.mu.Unlock()
		return nil, fmt.Errorf("%w: %d live, %d running + %d queued allowed",
			ErrSaturated, live, sv.cfg.MaxSessions, sv.cfg.MaxQueued)
	}
	id := sv.nextID
	s := newSession(sv, id, spec)
	s.shard = sv.shards[sv.shardOf(id)]
	sv.nextID++
	sv.sessions[id] = s
	sv.created.Add(1)
	sv.mu.Unlock()
	s.shard.enqueue(s)
	return s, nil
}

// Get returns a session by id.
func (sv *Service) Get(id uint32) (*Session, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if s, ok := sv.sessions[id]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("%w: %d", ErrNotFound, id)
}

// failedMemory bounds how many dead session ids the daemon remembers —
// enough to answer any client that raced the failure, small enough to
// never matter.
const failedMemory = 1024

func (sv *Service) noteFailed(id uint32) {
	sv.failedMu.Lock()
	defer sv.failedMu.Unlock()
	if sv.failedIDs == nil {
		sv.failedIDs = make(map[uint32]struct{})
	}
	if _, ok := sv.failedIDs[id]; ok {
		return
	}
	sv.failedIDs[id] = struct{}{}
	sv.failedLog = append(sv.failedLog, id)
	if len(sv.failedLog) > failedMemory {
		delete(sv.failedIDs, sv.failedLog[0])
		sv.failedLog = sv.failedLog[1:]
	}
}

// FailedRecently reports whether id belonged to a session that died
// permanently (within the daemon's bounded failure memory).
func (sv *Service) FailedRecently(id uint32) bool {
	sv.failedMu.Lock()
	defer sv.failedMu.Unlock()
	_, ok := sv.failedIDs[id]
	return ok
}

// Lookup is Get plus the failure memory: a session that died permanently
// resolves to ErrFailed instead of a bare ErrNotFound, so the HTTP and
// gate surfaces can tell clients to stop retrying. The returned error
// still matches ErrNotFound (the registry really has no such session).
func (sv *Service) Lookup(id uint32) (*Session, error) {
	s, err := sv.Get(id)
	if err != nil && sv.FailedRecently(id) {
		return nil, fmt.Errorf("session %d: %w", id, errors.Join(ErrNotFound, ErrFailed))
	}
	return s, err
}

// Sessions returns every session the daemon knows, sorted by id.
func (sv *Service) Sessions() []*Session {
	sv.mu.Lock()
	out := make([]*Session, 0, len(sv.sessions))
	for _, s := range sv.sessions {
		out = append(out, s)
	}
	sv.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Close gracefully stops one session (draining its in-flight batch) and
// forgets it.
func (sv *Service) Close(id uint32) error {
	s, err := sv.Get(id)
	if err != nil {
		return err
	}
	s.closeNow()
	sv.forget(id)
	return nil
}

// Shutdown stops the daemon: no new sessions are admitted, every session
// is asked to drain its in-flight refresh batch, and once ctx expires any
// stragglers are cancelled hard. All dispatcher and executor goroutines
// have exited and all pools are zeroized when Shutdown returns.
func (sv *Service) Shutdown(ctx context.Context) error {
	sv.mu.Lock()
	if sv.closed {
		sv.mu.Unlock()
		sv.wg.Wait()
		return nil
	}
	sv.closed = true
	sessions := make([]*Session, 0, len(sv.sessions))
	for _, s := range sv.sessions {
		sessions = append(sessions, s)
	}
	sv.mu.Unlock()

	for _, s := range sessions {
		s.signalClose()
	}
	drained := make(chan struct{})
	go func() {
		for _, s := range sessions {
			s.closeNow()
		}
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
		for _, s := range sessions {
			s.cancel()
		}
		<-drained
	}
	// Every session is down; release the parked dispatchers and
	// executors. Closing stopc only after the drain keeps executors
	// alive while their sessions finish.
	close(sv.stopc)
	sv.wg.Wait()
	return err
}

// Uptime reports how long the daemon has been running.
func (sv *Service) Uptime() time.Duration { return time.Since(sv.start) }

// Obs returns the daemon's metrics registry (never nil).
func (sv *Service) Obs() *obs.Registry { return sv.obs }

// Spans returns the daemon's span ring (never nil).
func (sv *Service) Spans() *obs.SpanLog { return sv.spans }
