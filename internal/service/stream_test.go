package service

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestStreamMatchesPoolDraws is the service-layer differential: on a
// stream-fed session the pool is one sequential consumer of the
// keystream, so concatenating N/keysize sequential pool draws yields
// exactly the stream's prefix — which StreamRange can re-read at any
// time, because stream bytes are addressed, not consumed.
func TestStreamMatchesPoolDraws(t *testing.T) {
	sv := New(Config{MaxSessions: 1})
	defer sv.Shutdown(context.Background())
	spec := fastSpec(8080)
	s, err := sv.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !s.StreamFed() {
		t.Fatal("fastSpec session should be stream-fed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	// Address the stream prefix first (non-consuming) ...
	const draws = 12
	n := int64(draws * spec.PayloadBytes)
	src, err := s.StreamRange(0, n)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, n)
	if _, err := io.ReadFull(src, want); err != nil {
		t.Fatal(err)
	}
	// ... then consume the same bytes as sequential pool draws.
	var got []byte
	for i := 0; i < draws; i++ {
		key, err := s.Draw(spec.PayloadBytes)
		if err != nil {
			t.Fatalf("draw %d: %v", i, err)
		}
		got = append(got, key...)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("concatenated pool draws != keystream prefix")
	}

	// Re-reading the same range returns the same bytes even though the
	// pool has consumed past it.
	src, err = s.StreamRange(0, n)
	if err != nil {
		t.Fatal(err)
	}
	again := make([]byte, n)
	if _, err := io.ReadFull(src, again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("re-read of the same stream range diverged")
	}

	// DrawBulk draws the next contiguous prefix chunk.
	bulkWant := make([]byte, 4*spec.PayloadBytes+5)
	if _, err := io.ReadFull(io.NewSectionReader(s.Stream(), n, int64(len(bulkWant))), bulkWant); err != nil {
		t.Fatal(err)
	}
	bulk, err := s.DrawBulk(len(bulkWant))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bulk, bulkWant) {
		t.Fatal("DrawBulk != next keystream bytes after the sequential draws")
	}
}

// TestStreamEligibility: UDP, observed and authenticated sessions keep
// the lockstep refresh path — StreamRange on them is ErrNoStream, which
// the HTTP layer turns into the bulk-draw fallback.
func TestStreamEligibility(t *testing.T) {
	sv := New(Config{MaxSessions: 3})
	defer sv.Shutdown(context.Background())
	for name, mutate := range map[string]func(*SessionSpec){
		"udp":      func(sp *SessionSpec) { sp.UDP = true },
		"observed": func(sp *SessionSpec) { sp.Observe = true },
		"auth":     func(sp *SessionSpec) { sp.AuthBootstrap = []byte("bootstrap-secret") },
	} {
		spec := fastSpec(909)
		mutate(&spec)
		s, err := sv.Create(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.StreamFed() {
			t.Fatalf("%s session claims to be stream-fed", name)
		}
		if _, err := s.StreamRange(0, 16); !errors.Is(err, ErrNoStream) {
			t.Fatalf("%s: StreamRange err %v, want ErrNoStream", name, err)
		}
		sv.Close(s.ID)
	}
}

// TestStreamCloseDuringHTTPRead: closing a session while a chunked
// /stream response is mid-flight terminates the response without
// wedging the handler or the session teardown.
func TestStreamCloseDuringHTTPRead(t *testing.T) {
	sv := New(Config{MaxSessions: 1})
	defer sv.Shutdown(context.Background())
	spec := fastSpec(6161)
	s, err := sv.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(sv.Handler())
	defer srv.Close()

	// A large range far past the derived region: the body will trickle as
	// blocks derive, guaranteeing the close lands mid-read.
	resp, err := http.Get(srv.URL + "/v1/sessions/1/stream?offset=33554432&len=8388608")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// Read one chunk so the handler is demonstrably producing.
	firstChunk := make([]byte, 1)
	if _, err := io.ReadFull(resp.Body, firstChunk); err != nil {
		t.Fatalf("first byte: %v", err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var readErr error
	var extra int64
	go func() {
		defer wg.Done()
		extra, readErr = io.Copy(io.Discard, resp.Body)
	}()
	if err := sv.Close(s.ID); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// The body must terminate (truncated or clean error), not hang; any
	// bytes delivered before the close are fine.
	if readErr != nil && !errors.Is(readErr, io.ErrUnexpectedEOF) {
		t.Logf("mid-close body read ended with: %v after %d extra bytes", readErr, extra)
	}
	if extra+1 >= 8388608 {
		t.Fatal("full body delivered despite mid-read close")
	}
	waitFor(t, 10*time.Second, "session teardown", func() bool {
		return s.State() == StateClosed
	})
	if _, err := s.StreamRange(0, 16); err == nil {
		t.Fatal("StreamRange on a closed session succeeded")
	}
}
