// Package client defines the unified key-access API every tier serves:
// one Client interface with three implementations — daemon HTTP,
// coordinator HTTP (both here; after the envelope normalization the two
// speak the same /v1 shape) and the gate frame protocol
// (internal/gate.Client). The root thinair package re-exports the
// interface and constructors, so callers pick a tier by constructor and
// never hand-roll per-tier HTTP.
//
// The package also owns the canonical mapping between the /v1 error
// envelope's code slugs (httpapi.Code*) and the typed errors the tiers
// raise — every implementation decodes through ErrorFromCode, so
// errors.Is works identically against all three.
package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/cluster"
	"repro/internal/httpapi"
	"repro/internal/keypool"
	"repro/internal/keystream"
	"repro/internal/service"
)

// Client is the versioned key-access surface. Sessions are addressed by
// id; how the id was minted (daemon, coordinator) is the caller's
// business. All implementations are safe for concurrent use.
type Client interface {
	// Draw consumes and returns n bytes of key material. Drawn bytes
	// leave the pool permanently.
	Draw(ctx context.Context, session uint64, n int) ([]byte, error)
	// DrawN consumes n×count bytes in one round trip and splits them
	// into count keys of n bytes each (the slices may share one backing
	// array). n×count is capped at httpapi.MaxDrawBytes.
	DrawN(ctx context.Context, session uint64, n, count int) ([][]byte, error)
	// StreamRange reads length bytes at offset off of the session's key
	// stream. On stream-fed sessions the range is repeatable and
	// non-consuming (pad consumers own offset non-reuse); on pool-fed
	// sessions only off=0 is addressable and the read consumes.
	StreamRange(ctx context.Context, session uint64, off, length int64) ([]byte, error)
	// ReaderAt adapts one session's stream surface to io.ReaderAt.
	ReaderAt(session uint64) io.ReaderAt
	// Close releases the client's connections. Sessions stay up.
	Close() error
}

// Typed errors, re-exported from the tiers that mint them so callers
// (and the conformance suite) switch on one set regardless of transport.
var (
	ErrNotFound    = cluster.ErrNotFound
	ErrOrphaned    = cluster.ErrOrphaned
	ErrDraining    = cluster.ErrDraining
	ErrDuplicate   = cluster.ErrDuplicate
	ErrUnreachable = cluster.ErrUnreachable
	ErrShutdown    = cluster.ErrShutdown
	ErrSaturated   = service.ErrSaturated
	ErrExhausted   = keypool.ErrExhausted
	ErrClosed      = keypool.ErrClosed
	// ErrFailed marks a session that died permanently on its own —
	// distinct from ErrClosed (graceful, caller-initiated) so consumers
	// can tell session death from their own Close.
	ErrFailed = service.ErrFailed

	// ErrBadRequest and ErrInternal cover the two envelope codes with no
	// pre-existing typed error: parameter rejections and unclassified
	// server-side failures.
	ErrBadRequest = errors.New("thinair: bad request")
	ErrInternal   = errors.New("thinair: internal error")
)

// ErrorFromCode maps one envelope code slug (plus its human-readable
// message) to the typed error it stands for. Unknown slugs — a newer
// server — degrade to an opaque error carrying both.
//
// A message that crossed several tiers (worker → coordinator → gate →
// client) has already been prefixed with the sentinel's own text at
// each hop; wrap strips that prefix before re-adding it, so the mapping
// is idempotent and the final message carries the sentinel text once.
func ErrorFromCode(code, msg string) error {
	if msg == "" {
		msg = code
	}
	switch code {
	case httpapi.CodeBadRequest:
		return wrap(ErrBadRequest, msg)
	case httpapi.CodeDraining:
		return wrap(ErrDraining, msg)
	case httpapi.CodeDuplicate:
		return wrap(ErrDuplicate, msg)
	case httpapi.CodeSaturated:
		return wrap(ErrSaturated, msg)
	case httpapi.CodeExhausted:
		return wrap(ErrExhausted, msg)
	case httpapi.CodeClosed:
		return wrap(ErrClosed, msg)
	case httpapi.CodeFailed:
		return wrap(ErrFailed, msg)
	case httpapi.CodeOrphaned:
		return wrap(ErrOrphaned, msg)
	case httpapi.CodeNotFound:
		return wrap(ErrNotFound, msg)
	case httpapi.CodeShutdown:
		return wrap(ErrShutdown, msg)
	case httpapi.CodeUnreachable:
		return wrap(ErrUnreachable, msg)
	case httpapi.CodeInternal:
		return wrap(ErrInternal, msg)
	}
	return fmt.Errorf("thinair: %s (code %q)", msg, code)
}

func wrap(sentinel error, msg string) error {
	prefix := sentinel.Error()
	for strings.HasPrefix(msg, prefix) {
		msg = strings.TrimPrefix(strings.TrimPrefix(msg, prefix), ": ")
	}
	if msg == "" {
		return fmt.Errorf("%w", sentinel)
	}
	return fmt.Errorf("%w: %s", sentinel, msg)
}

// CodeFromError is the inverse mapping: the envelope code slug a typed
// error travels as. The gate's server side encodes through it, and the
// table-driven mapping test asserts the round trip is the identity.
func CodeFromError(err error) string {
	switch {
	// Failed outranks every other match: server-side failed errors may
	// also wrap ErrClosed (the dead session's pool really is zeroized)
	// or ErrNotFound (the daemon registry really dropped it), and the
	// permanent-death fact is the one the client needs.
	case errors.Is(err, ErrFailed):
		return httpapi.CodeFailed
	case errors.Is(err, ErrDraining):
		return httpapi.CodeDraining
	case errors.Is(err, ErrDuplicate):
		return httpapi.CodeDuplicate
	case errors.Is(err, ErrSaturated):
		return httpapi.CodeSaturated
	case errors.Is(err, ErrExhausted):
		return httpapi.CodeExhausted
	case errors.Is(err, ErrClosed), errors.Is(err, keystream.ErrClosed):
		// The pool's and the keystream's closed sentinels are distinct
		// types but the same wire fact: the session is gone for good.
		return httpapi.CodeClosed
	case errors.Is(err, ErrOrphaned):
		return httpapi.CodeOrphaned
	case errors.Is(err, ErrNotFound), errors.Is(err, service.ErrNotFound):
		// Likewise the cluster's and the daemon's unknown-session errors.
		return httpapi.CodeNotFound
	case errors.Is(err, ErrShutdown), errors.Is(err, service.ErrShutdown):
		return httpapi.CodeShutdown
	case errors.Is(err, ErrUnreachable):
		return httpapi.CodeUnreachable
	case errors.Is(err, ErrBadRequest):
		return httpapi.CodeBadRequest
	}
	return httpapi.CodeInternal
}
