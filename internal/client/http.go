package client

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/httpapi"
	"repro/internal/obs"
)

// HTTP is the Client implementation over the /v1 HTTP surface. The
// daemon and the coordinator serve the same shape (same paths, same
// error envelope), so one implementation covers both tiers — NewHTTP
// against a daemon draws from its local sessions, against a coordinator
// it draws through the routed worker RPC.
type HTTP struct {
	base string
	hc   *http.Client
}

// NewHTTP returns a Client talking /v1 to the daemon or coordinator at
// base (e.g. "http://127.0.0.1:9309").
func NewHTTP(base string) *HTTP {
	return &HTTP{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// do runs one request, decoding the error envelope on non-2xx statuses.
func (c *HTTP) do(ctx context.Context, method, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	if span := obs.SpanID(ctx); span != "" {
		req.Header.Set(obs.SpanHeader, span)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	if resp.StatusCode >= 400 {
		var eb httpapi.ErrorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		msg := eb.Error.Message
		if msg == "" {
			msg = resp.Status
		}
		return nil, ErrorFromCode(eb.Error.Code, msg)
	}
	return resp, nil
}

// Draw consumes n bytes via POST /v1/sessions/{id}/draw.
func (c *HTTP) Draw(ctx context.Context, session uint64, n int) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodPost,
		fmt.Sprintf("/v1/sessions/%d/draw?bytes=%d", session, n))
	if err != nil {
		return nil, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	var body struct {
		Key string `json:"key"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("thinair: decoding draw response: %w", err)
	}
	key, err := hex.DecodeString(body.Key)
	if err != nil {
		return nil, fmt.Errorf("thinair: decoding draw response: %w", err)
	}
	if len(key) != n {
		return nil, fmt.Errorf("thinair: draw returned %d bytes, want %d", len(key), n)
	}
	return key, nil
}

// DrawN consumes n×count bytes in one draw and splits them client-side.
func (c *HTTP) DrawN(ctx context.Context, session uint64, n, count int) ([][]byte, error) {
	total, err := bulkSize(n, count)
	if err != nil {
		return nil, err
	}
	flat, err := c.Draw(ctx, session, total)
	if err != nil {
		return nil, err
	}
	return splitKeys(flat, n, count), nil
}

// StreamRange reads [off, off+length) via GET /v1/sessions/{id}/stream.
func (c *HTTP) StreamRange(ctx context.Context, session uint64, off, length int64) ([]byte, error) {
	if length <= 0 || length > httpapi.MaxStreamBytes {
		return nil, fmt.Errorf("%w: stream length %d outside 1..%d",
			ErrBadRequest, length, httpapi.MaxStreamBytes)
	}
	resp, err := c.do(ctx, http.MethodGet,
		fmt.Sprintf("/v1/sessions/%d/stream?offset=%d&len=%d", session, off, length))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	buf := make([]byte, length)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		// A short body is the server's loud truncation signal.
		return nil, fmt.Errorf("%w: stream truncated: %v", ErrUnreachable, err)
	}
	return buf, nil
}

// ReaderAt adapts one session's stream surface to io.ReaderAt.
func (c *HTTP) ReaderAt(session uint64) io.ReaderAt {
	return readerAt{fetch: func(off int64, n int64) ([]byte, error) {
		return c.StreamRange(context.Background(), session, off, n)
	}}
}

// Close releases idle connections; sessions stay up.
func (c *HTTP) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// bulkSize validates a DrawN shape against the one-draw cap.
func bulkSize(n, count int) (int, error) {
	if n <= 0 || count <= 0 || n > httpapi.MaxDrawBytes/count {
		return 0, fmt.Errorf("%w: bulk draw %d×%d outside 1..%d bytes",
			ErrBadRequest, n, count, httpapi.MaxDrawBytes)
	}
	return n * count, nil
}

// splitKeys cuts one flat draw into count keys of n bytes.
func splitKeys(flat []byte, n, count int) [][]byte {
	keys := make([][]byte, count)
	for i := range keys {
		keys[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return keys
}

// readerAt adapts a range-fetch closure to io.ReaderAt; all three
// Client implementations share it.
type readerAt struct {
	fetch func(off, n int64) ([]byte, error)
}

func (r readerAt) ReadAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	b, err := r.fetch(off, int64(len(p)))
	if err != nil {
		return 0, err
	}
	return copy(p, b), nil
}
