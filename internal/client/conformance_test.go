package client_test

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/gate"
	"repro/internal/httpapi"
	"repro/internal/service"
)

// streamSpec is a small stream-fed session (no UDP, no observer, no
// auth): offset-addressable, deterministic for a seed, converges in a
// couple of seconds.
func streamSpec(seed int64) service.SessionSpec {
	return service.SessionSpec{
		Terminals:    3,
		Erasure:      0.45,
		XPerRound:    64,
		PayloadBytes: 16,
		Rotate:       true,
		Seed:         seed,
		LowWater:     256,
		TargetDepth:  512,
		Timeout:      10 * time.Second,
		Streamed:     true,
	}
}

// tier builds one Client implementation over a live stack and hands back
// a ready stream-fed session. The same assertions run against all
// three — that equivalence is the point of the unified API.
type tier struct {
	name  string
	setup func(t *testing.T) (client.Client, uint64)
}

func tiers() []tier {
	return []tier{
		{name: "daemon-http", setup: setupDaemonHTTP},
		{name: "coordinator-http", setup: setupCoordinatorHTTP},
		{name: "gate-frame", setup: setupGateFrame},
	}
}

func setupDaemonHTTP(t *testing.T) (client.Client, uint64) {
	t.Helper()
	sv := service.New(service.Config{MaxSessions: 2, DrainTimeout: 5 * time.Second})
	t.Cleanup(func() { sv.Shutdown(context.Background()) })
	s, err := sv.Create(streamSpec(7001))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	c := client.NewHTTP(ts.URL)
	t.Cleanup(func() { c.Close() })
	return c, uint64(s.ID)
}

func setupCoordinatorHTTP(t *testing.T) (client.Client, uint64) {
	t.Helper()
	co := newTestCoordinator(t)
	info, err := co.Create(streamSpec(7002))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(co.Handler())
	t.Cleanup(ts.Close)
	c := client.NewHTTP(ts.URL)
	t.Cleanup(func() { c.Close() })
	waitDrawable(t, c, info.ID)
	return c, info.ID
}

func setupGateFrame(t *testing.T) (client.Client, uint64) {
	t.Helper()
	sv := service.New(service.Config{MaxSessions: 2, DrainTimeout: 5 * time.Second})
	t.Cleanup(func() { sv.Shutdown(context.Background()) })
	s, err := sv.Create(streamSpec(7003))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	g := gate.New(gate.Config{
		Backend: &gate.ServiceBackend{SV: sv},
		Logf:    func(string, ...any) {},
	})
	t.Cleanup(func() { g.Close() })
	server, clientConn := net.Pipe()
	go g.ServeConn(server)
	c, err := gate.NewClient(clientConn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, uint64(s.ID)
}

func newTestCoordinator(t *testing.T) *cluster.Coordinator {
	t.Helper()
	co, err := cluster.New(cluster.Config{
		Workers:         2,
		WorkerCapacity:  4,
		HeartbeatEvery:  50 * time.Millisecond,
		HeartbeatMisses: 3,
		MaxRestarts:     3,
		RespawnBackoff:  20 * time.Millisecond,
		DrainTimeout:    10 * time.Second,
		Logf:            func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Shutdown(context.Background()) })
	return co
}

// waitDrawable polls until the session serves key material (cluster
// sessions pass through placing before their pool converges).
func waitDrawable(t *testing.T, c client.Client, session uint64) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := c.Draw(ctx, session, 8); err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("session %d never became drawable", session)
}

// deadSpec is a session on a channel so lossy every refresh round
// aborts: the session exhausts its failure budget and dies permanently
// within a few fast in-memory (or loopback-UDP) rounds.
func deadSpec(seed int64) service.SessionSpec {
	return service.SessionSpec{
		Terminals:    3,
		Erasure:      0.999,
		XPerRound:    4,
		PayloadBytes: 16,
		Rotate:       true,
		Seed:         seed,
		LowWater:     64,
		TargetDepth:  128,
		Timeout:      10 * time.Second,
	}
}

// failedTier builds one Client over a live stack plus a session that is
// guaranteed to die permanently.
type failedTier struct {
	name  string
	setup func(t *testing.T) (client.Client, uint64)
}

func failedTiers() []failedTier {
	return []failedTier{
		{name: "daemon-http", setup: func(t *testing.T) (client.Client, uint64) {
			sv := service.New(service.Config{MaxSessions: 2, DrainTimeout: 5 * time.Second})
			t.Cleanup(func() { sv.Shutdown(context.Background()) })
			s, err := sv.Create(deadSpec(8001))
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(sv.Handler())
			t.Cleanup(ts.Close)
			c := client.NewHTTP(ts.URL)
			t.Cleanup(func() { c.Close() })
			return c, uint64(s.ID)
		}},
		{name: "coordinator-http", setup: func(t *testing.T) (client.Client, uint64) {
			co := newTestCoordinator(t)
			info, err := co.Create(deadSpec(8002))
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(co.Handler())
			t.Cleanup(ts.Close)
			c := client.NewHTTP(ts.URL)
			t.Cleanup(func() { c.Close() })
			return c, info.ID
		}},
		{name: "gate-frame", setup: func(t *testing.T) (client.Client, uint64) {
			sv := service.New(service.Config{MaxSessions: 2, DrainTimeout: 5 * time.Second})
			t.Cleanup(func() { sv.Shutdown(context.Background()) })
			s, err := sv.Create(deadSpec(8003))
			if err != nil {
				t.Fatal(err)
			}
			g := gate.New(gate.Config{
				Backend: &gate.ServiceBackend{SV: sv},
				Logf:    func(string, ...any) {},
			})
			t.Cleanup(func() { g.Close() })
			server, clientConn := net.Pipe()
			go g.ServeConn(server)
			c, err := gate.NewClient(clientConn)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			return c, uint64(s.ID)
		}},
	}
}

// TestFailedCodeConformance: a session that dies permanently surfaces as
// ErrFailed — not ErrClosed, not a bare ErrNotFound — identically across
// all three transports. This is the conformance half of the
// failed-vs-closed split; the envelope and wire halves are pinned by the
// mapping and codec bijection tests.
func TestFailedCodeConformance(t *testing.T) {
	for _, tr := range failedTiers() {
		t.Run(tr.name, func(t *testing.T) {
			t.Parallel()
			c, session := tr.setup(t)
			ctx := context.Background()
			deadline := time.Now().Add(90 * time.Second)
			var last error
			for time.Now().Before(deadline) {
				_, last = c.Draw(ctx, session, 8)
				if errors.Is(last, client.ErrFailed) {
					break
				}
				time.Sleep(50 * time.Millisecond)
			}
			if !errors.Is(last, client.ErrFailed) {
				t.Fatalf("draw on dead session never surfaced ErrFailed; last error: %v", last)
			}
			if errors.Is(last, client.ErrClosed) {
				t.Fatalf("failed session classified as graceful close: %v", last)
			}
			// The error is stable: a second read reports the same death.
			if _, err := c.Draw(ctx, session, 8); !errors.Is(err, client.ErrFailed) {
				t.Fatalf("second draw on dead session: %v, want ErrFailed", err)
			}
			// And distinct from a genuinely unknown id on the same tier.
			if _, err := c.Draw(ctx, session+9999, 8); errors.Is(err, client.ErrFailed) {
				t.Fatalf("unknown session classified as failed: %v", err)
			}
		})
	}
}

// TestConcurrentDrawConformance pins the draw-batching contract across
// all three transports: concurrent Draw and DrawN callers against one
// session receive pairwise byte-disjoint slices that tile the session's
// deterministic keystream with no gaps (the server-side combiner
// coalesces them into shared pool operations, but never tears,
// duplicates, or skips material), an over-depth draw fails whole with
// ErrExhausted, and the failure consumes nothing.
func TestConcurrentDrawConformance(t *testing.T) {
	for _, tr := range tiers() {
		t.Run(tr.name, func(t *testing.T) {
			c, session := tr.setup(t)
			ctx := context.Background()

			const callers = 8
			const per = 32 // callers draw per bytes each, as Draw or DrawN
			var wg sync.WaitGroup
			slices := make([][]byte, callers)
			errs := make([]error, callers)
			wg.Add(callers)
			for i := 0; i < callers; i++ {
				go func(i int) {
					defer wg.Done()
					if i%2 == 0 {
						slices[i], errs[i] = c.Draw(ctx, session, per)
						return
					}
					// DrawN is one wire draw split client-side, so its keys
					// concatenate to one contiguous stream slice.
					keys, err := c.DrawN(ctx, session, per/4, 4)
					if err != nil {
						errs[i] = err
						return
					}
					for _, k := range keys {
						slices[i] = append(slices[i], k...)
					}
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("caller %d: %v", i, err)
				}
			}

			// Pool draws consume the keystream sequentially, so each slice
			// sits at some offset of the (non-consuming, re-readable) stream
			// prefix, and together they must tile a contiguous run. The run
			// may start past 0: tier setup probes consume a few bytes.
			ref, err := c.StreamRange(ctx, session, 0, 4096)
			if err != nil {
				t.Fatal(err)
			}
			offs := make([]int, callers)
			for i, sl := range slices {
				off := bytes.Index(ref, sl)
				if off < 0 {
					t.Fatalf("caller %d's draw is not a slice of the session keystream", i)
				}
				if next := bytes.Index(ref[off+1:], sl); next >= 0 {
					t.Fatalf("caller %d's draw appears twice in the stream prefix; tiling ambiguous", i)
				}
				offs[i] = off
			}
			sort.Ints(offs)
			for i := 1; i < len(offs); i++ {
				if offs[i] != offs[i-1]+per {
					t.Fatalf("draw offsets %v are not gap-free (disjointness or completeness broken)", offs)
				}
			}
			end := offs[len(offs)-1] + per

			// All-or-nothing on a short pool: a draw larger than the pool's
			// target depth can never be served and must fail whole...
			if _, err := c.Draw(ctx, session, 2048); !errors.Is(err, client.ErrExhausted) {
				t.Fatalf("over-depth draw: got %v, want ErrExhausted", err)
			}
			// ...without consuming anything: the next draw continues exactly
			// where the successful ones stopped.
			after, err := c.Draw(ctx, session, per)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(after, ref[end:end+per]) {
				t.Fatalf("draw after a failed over-depth draw is not the contiguous continuation at offset %d", end)
			}
		})
	}
}

// TestClientConformance runs the same behavioural assertions against all
// three Client implementations.
func TestClientConformance(t *testing.T) {
	for _, tr := range tiers() {
		t.Run(tr.name, func(t *testing.T) {
			c, session := tr.setup(t)
			ctx := context.Background()

			t.Run("draw", func(t *testing.T) {
				a, err := c.Draw(ctx, session, 32)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != 32 {
					t.Fatalf("draw returned %d bytes, want 32", len(a))
				}
				b, err := c.Draw(ctx, session, 32)
				if err != nil {
					t.Fatal(err)
				}
				if bytes.Equal(a, b) {
					t.Fatal("two draws returned identical key material")
				}
			})

			t.Run("draw-n", func(t *testing.T) {
				keys, err := c.DrawN(ctx, session, 16, 4)
				if err != nil {
					t.Fatal(err)
				}
				if len(keys) != 4 {
					t.Fatalf("DrawN returned %d keys, want 4", len(keys))
				}
				for i, k := range keys {
					if len(k) != 16 {
						t.Fatalf("key %d has %d bytes, want 16", i, len(k))
					}
					for j := range i {
						if bytes.Equal(k, keys[j]) {
							t.Fatalf("keys %d and %d identical", i, j)
						}
					}
				}
			})

			t.Run("stream-repeatable", func(t *testing.T) {
				a, err := c.StreamRange(ctx, session, 16, 64)
				if err != nil {
					t.Fatal(err)
				}
				b, err := c.StreamRange(ctx, session, 16, 64)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a, b) {
					t.Fatal("same range read twice returned different bytes")
				}
				// Offset addressability: a wider read must contain the
				// narrow one at its offset.
				wide, err := c.StreamRange(ctx, session, 0, 96)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wide[16:80], a) {
					t.Fatal("range [16,80) disagrees with the wider [0,96) read")
				}
			})

			t.Run("reader-at", func(t *testing.T) {
				want, err := c.StreamRange(ctx, session, 128, 48)
				if err != nil {
					t.Fatal(err)
				}
				buf := make([]byte, 48)
				n, err := c.ReaderAt(session).ReadAt(buf, 128)
				if err != nil {
					t.Fatal(err)
				}
				if n != 48 || !bytes.Equal(buf, want) {
					t.Fatal("ReaderAt disagrees with StreamRange over the same range")
				}
			})

			t.Run("errors", func(t *testing.T) {
				if _, err := c.Draw(ctx, session+9999, 8); !errors.Is(err, client.ErrNotFound) {
					t.Fatalf("draw on unknown session: got %v, want ErrNotFound", err)
				}
				if _, err := c.Draw(ctx, session, httpapi.MaxDrawBytes+1); !errors.Is(err, client.ErrBadRequest) {
					t.Fatalf("oversized draw: got %v, want ErrBadRequest", err)
				}
				if _, err := c.StreamRange(ctx, session, 0, 0); !errors.Is(err, client.ErrBadRequest) {
					t.Fatalf("zero-length stream: got %v, want ErrBadRequest", err)
				}
				if _, err := c.DrawN(ctx, session, 0, 3); !errors.Is(err, client.ErrBadRequest) {
					t.Fatalf("zero-size bulk draw: got %v, want ErrBadRequest", err)
				}
			})

			t.Run("context-cancel", func(t *testing.T) {
				cctx, cancel := context.WithCancel(ctx)
				cancel()
				if _, err := c.Draw(cctx, session, 8); !errors.Is(err, context.Canceled) {
					t.Fatalf("cancelled draw: got %v, want context.Canceled", err)
				}
			})
		})
	}
}
