package client

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/httpapi"
	"repro/internal/keypool"
	"repro/internal/keystream"
	"repro/internal/service"
)

// TestCodeErrorRoundTrip pins the envelope slug ↔ typed error mapping:
// every slug decodes to a typed error that encodes back to the same
// slug, for all twelve codes of the /v1 envelope.
func TestCodeErrorRoundTrip(t *testing.T) {
	cases := []struct {
		code string
		want error
	}{
		{httpapi.CodeBadRequest, ErrBadRequest},
		{httpapi.CodeDraining, ErrDraining},
		{httpapi.CodeDuplicate, ErrDuplicate},
		{httpapi.CodeSaturated, ErrSaturated},
		{httpapi.CodeExhausted, ErrExhausted},
		{httpapi.CodeClosed, ErrClosed},
		{httpapi.CodeFailed, ErrFailed},
		{httpapi.CodeOrphaned, ErrOrphaned},
		{httpapi.CodeNotFound, ErrNotFound},
		{httpapi.CodeShutdown, ErrShutdown},
		{httpapi.CodeUnreachable, ErrUnreachable},
		{httpapi.CodeInternal, ErrInternal},
	}
	seen := map[string]bool{}
	for _, tc := range cases {
		if seen[tc.code] {
			t.Fatalf("duplicate slug %q in the table", tc.code)
		}
		seen[tc.code] = true
		err := ErrorFromCode(tc.code, "boom")
		if !errors.Is(err, tc.want) {
			t.Errorf("ErrorFromCode(%q) = %v, want errors.Is %v", tc.code, err, tc.want)
		}
		if !strings.Contains(err.Error(), "boom") {
			t.Errorf("ErrorFromCode(%q) dropped the message: %v", tc.code, err)
		}
		if got := CodeFromError(err); got != tc.code {
			t.Errorf("CodeFromError(ErrorFromCode(%q)) = %q: round trip is not the identity", tc.code, got)
		}
		// Wrapping must not change the classification.
		if got := CodeFromError(fmt.Errorf("wrapped: %w", err)); got != tc.code {
			t.Errorf("CodeFromError(wrapped %q) = %q", tc.code, got)
		}
	}
}

// TestCodeFromErrorTierSentinels: the daemon and keystream tiers mint
// their own sentinels for facts the cluster also names; both spellings
// must travel as the same wire code.
func TestCodeFromErrorTierSentinels(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{service.ErrNotFound, httpapi.CodeNotFound},
		{service.ErrShutdown, httpapi.CodeShutdown},
		{keystream.ErrClosed, httpapi.CodeClosed},
		{errors.New("anything unclassified"), httpapi.CodeInternal},
		// A dead session's error wraps both the not-found fact (the
		// registry dropped it) and the failure fact; failed must win the
		// classification or clients lose the death signal.
		{errors.Join(service.ErrNotFound, service.ErrFailed), httpapi.CodeFailed},
		// Likewise failed + the zeroized pool's closed sentinel.
		{fmt.Errorf("%w: %w", service.ErrFailed, keypool.ErrClosed), httpapi.CodeFailed},
	}
	for _, tc := range cases {
		if got := CodeFromError(tc.err); got != tc.want {
			t.Errorf("CodeFromError(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

// TestErrorFromCodeIdempotent: a message that already crossed a tier
// arrives with the sentinel's text as its prefix; decoding it again
// must not stack the prefix (worker → coordinator → gate → client
// would otherwise triple it).
func TestErrorFromCodeIdempotent(t *testing.T) {
	first := ErrorFromCode(httpapi.CodeNotFound, "9999")
	second := ErrorFromCode(httpapi.CodeNotFound, first.Error())
	third := ErrorFromCode(httpapi.CodeNotFound, second.Error())
	if !errors.Is(third, ErrNotFound) {
		t.Fatalf("re-decoded error lost its type: %v", third)
	}
	if third.Error() != first.Error() {
		t.Fatalf("message grew across hops: %q -> %q", first, third)
	}
	if n := strings.Count(third.Error(), ErrNotFound.Error()); n != 1 {
		t.Fatalf("sentinel text appears %d times in %q, want once", n, third)
	}

	// A message that is nothing but the sentinel text stays well-formed.
	bare := ErrorFromCode(httpapi.CodeDraining, ErrDraining.Error())
	if !errors.Is(bare, ErrDraining) || strings.Count(bare.Error(), ErrDraining.Error()) != 1 {
		t.Fatalf("bare sentinel message mangled: %v", bare)
	}
}

// TestErrorFromCodeUnknownSlug: a newer server's slug degrades to an
// opaque error that still carries both the code and the message.
func TestErrorFromCodeUnknownSlug(t *testing.T) {
	err := ErrorFromCode("flux_capacitor", "overcharged")
	for _, known := range []error{
		ErrBadRequest, ErrDraining, ErrDuplicate, ErrSaturated, ErrExhausted,
		ErrClosed, ErrFailed, ErrOrphaned, ErrNotFound, ErrShutdown,
		ErrUnreachable, ErrInternal,
	} {
		if errors.Is(err, known) {
			t.Fatalf("unknown slug classified as %v", known)
		}
	}
	if !strings.Contains(err.Error(), "flux_capacitor") || !strings.Contains(err.Error(), "overcharged") {
		t.Fatalf("unknown-slug error dropped context: %v", err)
	}
}
