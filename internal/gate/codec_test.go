package gate

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/client"
	"repro/internal/httpapi"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []struct {
		typ  byte
		body []byte
	}{
		{frameHandshake, []byte(`{"version":1}`)},
		{frameHandshakeAck, nil},
		{frameHeartbeat, nil},
		{frameData, bytes.Repeat([]byte{0xAB}, 1000)},
		{frameKick, []byte("heartbeat timeout")},
		{frameData, []byte{}},
	}
	var buf bytes.Buffer
	for _, tc := range cases {
		buf.Reset()
		if err := writeFrame(&buf, tc.typ, tc.body); err != nil {
			t.Fatal(err)
		}
		typ, body, err := readFrame(&buf, nil, 0)
		if err != nil {
			t.Fatalf("readFrame(type 0x%02x): %v", tc.typ, err)
		}
		if typ != tc.typ || !bytes.Equal(body, tc.body) {
			t.Fatalf("frame 0x%02x round trip: got type 0x%02x body %d bytes", tc.typ, typ, len(body))
		}
	}
}

func TestFrameOversizeRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameData, make([]byte, MaxFrameBody+1)); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("writeFrame over limit: %v, want errFrameTooLarge", err)
	}
	// A reader with a maxBody cap rejects bodies past it without
	// allocating them.
	buf.Reset()
	if err := writeFrame(&buf, frameData, make([]byte, 2048)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readFrame(&buf, nil, 1024); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("readFrame with 1024 cap on 2048 body: %v, want errFrameTooLarge", err)
	}
}

func TestFrameShortHeader(t *testing.T) {
	for _, raw := range [][]byte{nil, {0x04}, {0x04, 0x00, 0x00}} {
		if _, _, err := readFrame(bytes.NewReader(raw), nil, 0); err == nil {
			t.Fatalf("readFrame(%d header bytes) succeeded", len(raw))
		}
	}
	// Header promises more body than the reader delivers.
	var buf bytes.Buffer
	if err := writeFrame(&buf, frameData, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-3]
	if _, _, err := readFrame(bytes.NewReader(truncated), nil, 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body: %v, want ErrUnexpectedEOF", err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []request{
		{ReqID: 1, Op: opDraw, Session: 42, N: 32},
		{ReqID: 0xFFFFFFFF, Op: opBulk, Session: 1 << 60, N: 16, Count: 128},
		{ReqID: 7, Op: opStream, Session: 3, Off: 1 << 40, Len: 1 << 20},
		{ReqID: 9, Op: opDraw, Session: 1, N: 1, Span: "01ab23cd45ef6789"},
	}
	for _, req := range cases {
		body, err := appendRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := parseRequest(body)
		if err != nil {
			t.Fatalf("parseRequest(%+v): %v", req, err)
		}
		if got != req {
			t.Fatalf("request round trip: sent %+v, got %+v", req, got)
		}
	}
}

func TestRequestMalformedRejected(t *testing.T) {
	good, err := appendRequest(nil, request{ReqID: 1, Op: opStream, Session: 5, Off: 0, Len: 100})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"short":            good[:8],
		"truncated fields": good[:len(good)-4],
		"trailing junk":    append(append([]byte{}, good...), 0xFF),
	}
	for name, raw := range cases {
		if _, err := parseRequest(raw); err == nil {
			t.Fatalf("parseRequest(%s) succeeded", name)
		}
	}
	// A span longer than the one-byte length can carry is refused at
	// append time.
	long := request{ReqID: 1, Op: opDraw, Session: 1, N: 1, Span: string(make([]byte, 256))}
	if _, err := appendRequest(nil, long); err == nil {
		t.Fatal("appendRequest accepted a 256-byte span")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	payload := []byte("key material here")
	body := appendResponseHeader(nil, 77, kindPartial)
	body = append(body, payload...)
	resp, err := parseResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ReqID != 77 || resp.Kind != kindPartial || !bytes.Equal(resp.Payload, payload) {
		t.Fatalf("response round trip: %+v", resp)
	}
	if _, err := parseResponse([]byte{1, 2, 3}); err == nil {
		t.Fatal("parseResponse accepted a 3-byte body")
	}
}

// TestWireCodeTable: the one-byte wire codes and the envelope slugs are
// a bijection, and every typed error survives server-encode →
// client-decode across the frame protocol's error path.
func TestWireCodeTable(t *testing.T) {
	if len(codeToSlug) != len(slugToCode) {
		t.Fatalf("code table is not a bijection: %d codes, %d slugs", len(codeToSlug), len(slugToCode))
	}
	for b, slug := range codeToSlug {
		if slugToCode[slug] != b {
			t.Fatalf("slug %q maps back to 0x%02x, not 0x%02x", slug, slugToCode[slug], b)
		}
	}
	for _, slug := range []string{
		httpapi.CodeBadRequest, httpapi.CodeDraining, httpapi.CodeDuplicate,
		httpapi.CodeSaturated, httpapi.CodeExhausted, httpapi.CodeClosed,
		httpapi.CodeOrphaned, httpapi.CodeNotFound, httpapi.CodeShutdown,
		httpapi.CodeUnreachable, httpapi.CodeInternal, httpapi.CodeFailed,
	} {
		b, ok := slugToCode[slug]
		if !ok {
			t.Fatalf("envelope slug %q has no wire byte", slug)
		}
		// Server side: typed error → slug → byte. Client side: byte →
		// slug → typed error. The round trip must preserve errors.Is.
		typed := client.ErrorFromCode(slug, "x")
		if got := slugToCode[client.CodeFromError(typed)]; got != b {
			t.Fatalf("typed error for %q encodes to 0x%02x, want 0x%02x", slug, got, b)
		}
		back := client.ErrorFromCode(codeToSlug[b], "y")
		if client.CodeFromError(back) != slug {
			t.Fatalf("wire byte 0x%02x decodes to %v, losing slug %q", b, back, slug)
		}
	}
}

// FuzzFrameCodec: arbitrary bytes through the frame reader and the
// request/response parsers must never panic, and whatever parses must
// re-encode to bytes that parse identically.
func FuzzFrameCodec(f *testing.F) {
	seed, _ := appendRequest(nil, request{ReqID: 3, Op: opBulk, Session: 9, N: 8, Count: 4, Span: "ab"})
	f.Add(byte(frameData), seed)
	f.Add(byte(frameHandshake), []byte(`{"version":1}`))
	f.Add(byte(0xFF), []byte{})
	f.Add(byte(frameData), bytes.Repeat([]byte{0}, 13))
	f.Fuzz(func(t *testing.T, typ byte, body []byte) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, body); err != nil {
			if len(body) <= MaxFrameBody {
				t.Fatalf("writeFrame rejected %d-byte body: %v", len(body), err)
			}
			return
		}
		gtyp, gbody, err := readFrame(&buf, nil, 0)
		if err != nil {
			t.Fatalf("readFrame of a written frame: %v", err)
		}
		if gtyp != typ || !bytes.Equal(gbody, body) {
			t.Fatal("frame round trip changed bytes")
		}

		// The request parser on arbitrary bodies: no panic; successful
		// parses must round trip.
		if req, err := parseRequest(body); err == nil {
			re, err := appendRequest(nil, req)
			if err != nil {
				t.Fatalf("re-encode of parsed request: %v", err)
			}
			again, err := parseRequest(re)
			if err != nil || again != req {
				t.Fatalf("request re-parse mismatch: %+v vs %+v (%v)", req, again, err)
			}
		}
		// Same for the response parser.
		if resp, err := parseResponse(body); err == nil {
			re := appendResponseHeader(nil, resp.ReqID, resp.Kind)
			if resp.Kind == kindError {
				re = append(re, resp.Code)
				re = append(re, resp.Message...)
			} else {
				re = append(re, resp.Payload...)
			}
			again, err := parseResponse(re)
			if err != nil || again.ReqID != resp.ReqID || again.Kind != resp.Kind ||
				again.Code != resp.Code || again.Message != resp.Message ||
				!bytes.Equal(again.Payload, resp.Payload) {
				t.Fatalf("response re-parse mismatch (%v)", err)
			}
		}
	})
}
