package gate

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// flakyResolver records every epoch poll and fails them while failing is
// set — the stub coordinator for the watch-backoff regression.
type flakyResolver struct {
	mu      sync.Mutex
	polls   []time.Time
	failing bool
}

func (r *flakyResolver) Owner(context.Context, uint64) (cluster.OwnerInfo, error) {
	return cluster.OwnerInfo{}, cluster.ErrNotFound
}

func (r *flakyResolver) EpochSince(context.Context, uint64) (uint64, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.polls = append(r.polls, time.Now())
	if r.failing {
		return 0, false, cluster.ErrUnreachable
	}
	return 1, false, nil
}

func (r *flakyResolver) setFailing(v bool) {
	r.mu.Lock()
	r.failing = v
	r.mu.Unlock()
}

func (r *flakyResolver) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.polls)
}

func (r *flakyResolver) snapshot() []time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Time(nil), r.polls...)
}

// TestWatchBackoffOnErrors is the regression for the synchronized-hammer
// bug: the watch poller used a fixed ticker with no backoff, so a fleet
// of gates kept up full poll pressure against a coordinator exactly
// while it was down. Consecutive poll errors must now stretch the poll
// interval exponentially (capped), and one success must snap it back.
func TestWatchBackoffOnErrors(t *testing.T) {
	res := &flakyResolver{}
	res.setFailing(true)
	const base = 20 * time.Millisecond
	b := NewClusterBackend(ClusterBackendConfig{
		Resolver:   res,
		WatchEvery: base,
		Obs:        obs.New(),
	})
	defer b.Close()

	// Failure phase: a fixed 20ms ticker would poll ~30 times in 600ms.
	// With doubling backoff the schedule is ~20,40,80,160,320(cap)… so
	// only a handful of polls may land.
	time.Sleep(30 * base)
	failPolls := res.count()
	if failPolls == 0 {
		t.Fatal("watcher never polled")
	}
	if failPolls > 10 {
		t.Fatalf("%d polls against a failing coordinator in %v — backoff is not engaging", failPolls, 30*base)
	}
	// The gaps must actually grow: somewhere in the failure phase two
	// consecutive polls are at least 4 base periods apart.
	snap := res.snapshot()
	var maxGap time.Duration
	for i := 1; i < len(snap); i++ {
		if g := snap[i].Sub(snap[i-1]); g > maxGap {
			maxGap = g
		}
	}
	if len(snap) >= 2 && maxGap < 4*base*3/4 { // 3/4: jitter's lower bound
		t.Fatalf("max gap between failing polls %v, want >= ~%v", maxGap, 4*base)
	}
	if b.watchErrs.Value() == 0 {
		t.Fatal("watch error counter never incremented")
	}

	// Recovery: after one success the poller returns to the base period.
	res.setFailing(false)
	deadline := time.Now().Add(30 * base * watchBackoffCap / 16)
	for res.count() == failPolls && time.Now().Before(deadline) {
		time.Sleep(base / 2)
	}
	recovered := res.count()
	if recovered == failPolls {
		t.Fatal("watcher never polled again after the resolver recovered")
	}
	time.Sleep(15 * base)
	// ≥ 15 base periods elapsed since recovery; at the base rate (±25%
	// jitter) that is ~12 polls — anything ≥ 5 proves the backoff reset.
	if got := res.count() - recovered; got < 5 {
		t.Fatalf("only %d polls in %v after recovery — interval did not reset", got, 15*base)
	}
}

// TestJitterDuration pins the jitter envelope: [0.75d, 1.25d), and the
// values actually vary (per-gate desynchronization is the point).
func TestJitterDuration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const d = 500 * time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 1000; i++ {
		j := jitterDuration(rng, d)
		if j < d*3/4 || j > d*5/4 {
			t.Fatalf("jitter %v outside [%v, %v]", j, d*3/4, d*5/4)
		}
		seen[j] = true
	}
	if len(seen) < 100 {
		t.Fatalf("only %d distinct jitter values in 1000 draws", len(seen))
	}
	if jitterDuration(rng, 0) != 0 {
		t.Fatal("zero duration must stay zero")
	}
}
