package gate

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/cluster"
	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/service"
)

// Backend serves the gate's two key-material reads. The cluster backend
// below talks directly to owning workers; ServiceBackend adapts a
// single-process Service for tests, demos and the bench's stub tier.
type Backend interface {
	// Draw consumes n bytes of the session's key material.
	Draw(ctx context.Context, session uint64, n int) ([]byte, error)
	// StreamTo writes the session's key-stream range [off, off+n) to w,
	// returning the bytes written. Short writes carry an error.
	StreamTo(ctx context.Context, session uint64, off, n int64, w io.Writer) (int64, error)
}

// Resolver answers session→worker ownership queries — the only thing
// the gate ever asks the coordinator. Owner is the cache-miss path;
// EpochSince is the cheap watch poll (returns changed=false while the
// ownership map hasn't moved past since).
type Resolver interface {
	Owner(ctx context.Context, session uint64) (cluster.OwnerInfo, error)
	EpochSince(ctx context.Context, since uint64) (epoch uint64, changed bool, err error)
}

// LocalResolver adapts an in-process Coordinator — examples and tests.
type LocalResolver struct {
	C *cluster.Coordinator
}

func (r LocalResolver) Owner(_ context.Context, session uint64) (cluster.OwnerInfo, error) {
	return r.C.Owner(session)
}

func (r LocalResolver) EpochSince(_ context.Context, since uint64) (uint64, bool, error) {
	e := r.C.OwnersEpoch()
	return e, e != since, nil
}

// HTTPResolver resolves ownership over the coordinator's /v1/cluster
// surface — the deployment shape, where the gate is its own process.
type HTTPResolver struct {
	base string
	hc   *http.Client
}

// NewHTTPResolver returns a resolver against the coordinator at base.
func NewHTTPResolver(base string) *HTTPResolver {
	return &HTTPResolver{base: base, hc: &http.Client{Timeout: 10 * time.Second}}
}

func (r *HTTPResolver) Owner(ctx context.Context, session uint64) (cluster.OwnerInfo, error) {
	var oi cluster.OwnerInfo
	err := r.getJSON(ctx, "/v1/cluster/owners?session="+strconv.FormatUint(session, 10), &oi)
	return oi, err
}

func (r *HTTPResolver) EpochSince(ctx context.Context, since uint64) (uint64, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		r.base+"/v1/cluster/owners?epoch="+strconv.FormatUint(since, 10), nil)
	if err != nil {
		return 0, false, err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return 0, false, fmt.Errorf("%w: %v", cluster.ErrUnreachable, err)
	}
	defer drainClose(resp)
	if resp.StatusCode == http.StatusNotModified {
		return since, false, nil
	}
	if resp.StatusCode >= 400 {
		return 0, false, resolverError(resp)
	}
	var om cluster.OwnerMap
	if err := jsonDecode(resp, &om); err != nil {
		return 0, false, err
	}
	return om.Epoch, true, nil
}

func (r *HTTPResolver) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %v", cluster.ErrUnreachable, err)
	}
	defer drainClose(resp)
	if resp.StatusCode >= 400 {
		return resolverError(resp)
	}
	return jsonDecode(resp, out)
}

// ClusterBackendConfig parameterizes NewClusterBackend.
type ClusterBackendConfig struct {
	// Resolver answers ownership queries (required).
	Resolver Resolver
	// WatchEvery is the epoch poll period driving proactive cache
	// invalidation. 0 means 500ms; negative disables the watcher (the
	// reactive invalidation on typed RPC errors still runs).
	WatchEvery time.Duration
	// Obs is the metrics registry. Nil means obs.Default().
	Obs *obs.Registry
}

// ClusterBackend serves draws and stream ranges straight from owning
// workers' /ctl RPCs. Ownership is resolved once per session via the
// Resolver and cached; the cache invalidates two ways — reactively,
// when a worker RPC comes back with a stale-owner error (not-found,
// unreachable, draining), and proactively, when the watch poll sees the
// coordinator's ownership epoch move.
type ClusterBackend struct {
	res   Resolver
	watch time.Duration

	mu      sync.Mutex
	owners  map[uint64]*cluster.WorkerClient // session → its owner's client
	clients map[string]*cluster.WorkerClient // /ctl URL → shared client
	epoch   uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	obsReg                  *obs.Registry
	hits, misses, flushes   *obs.Counter
	invalidations           *obs.Counter
	watchErrs               *obs.Counter
	retriesAfterInvalidated *obs.Counter
}

// NewClusterBackend builds the backend and starts its watch poller.
// Call Close to stop it.
func NewClusterBackend(cfg ClusterBackendConfig) *ClusterBackend {
	if cfg.Obs == nil {
		cfg.Obs = obs.Default()
	}
	if cfg.WatchEvery == 0 {
		cfg.WatchEvery = 500 * time.Millisecond
	}
	b := &ClusterBackend{
		res:     cfg.Resolver,
		watch:   cfg.WatchEvery,
		owners:  make(map[uint64]*cluster.WorkerClient),
		clients: make(map[string]*cluster.WorkerClient),
		stop:    make(chan struct{}),
		obsReg:  cfg.Obs,
	}
	ev := cfg.Obs.CounterVec("thinaird_gate_owner_cache_total",
		"Gate ownership-cache events by kind.", "event")
	b.hits = ev.With("hit")
	b.misses = ev.With("miss")
	b.invalidations = ev.With("invalidate")
	b.flushes = ev.With("flush")
	b.watchErrs = cfg.Obs.Counter("thinaird_gate_owner_watch_errors_total",
		"Failed ownership-epoch polls against the coordinator.")
	b.retriesAfterInvalidated = cfg.Obs.Counter("thinaird_gate_owner_retries_total",
		"Worker RPCs retried against a freshly re-resolved owner.")
	if b.watch > 0 {
		b.wg.Add(1)
		go b.watchLoop()
	}
	return b
}

// Close stops the watch poller and drops cached connections.
func (b *ClusterBackend) Close() error {
	b.stopOnce.Do(func() { close(b.stop) })
	b.wg.Wait()
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, cl := range b.clients {
		cl.CloseIdle()
	}
	return nil
}

// watchBackoffCap bounds the error backoff at this multiple of the base
// poll period: 500ms base → 8s worst-case between polls against a dead
// coordinator.
const watchBackoffCap = 16

// jitterDuration spreads d over [0.75d, 1.25d) so independent pollers
// sharing a period drift apart instead of firing in lockstep.
func jitterDuration(rng *rand.Rand, d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d*3/4 + time.Duration(rng.Int63n(int64(d)/2+1))
}

// watchLoop polls the coordinator's ownership epoch and flushes the
// session→owner cache whenever it moves: reassignments the gate has not
// tripped over yet (no failed RPC) are still picked up within one poll.
//
// Every wait is jittered ±25% — a fleet of gates restarted together (or
// all unblocked by one coordinator restart) must not converge on the
// same poll phase and hammer the coordinator in lockstep. Consecutive
// poll errors double the wait up to watchBackoffCap× the base period,
// so the pressure on a recovering coordinator falls off exactly when it
// is weakest; one successful poll snaps back to the base period.
func (b *ClusterBackend) watchLoop() {
	defer b.wg.Done()
	rng := rand.New(rand.NewSource(rand.Int63()))
	jittered := func(d time.Duration) time.Duration { return jitterDuration(rng, d) }
	fails := 0
	timer := time.NewTimer(jittered(b.watch))
	defer timer.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-timer.C:
		}
		b.mu.Lock()
		since := b.epoch
		b.mu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), b.watch)
		epoch, changed, err := b.res.EpochSince(ctx, since)
		cancel()
		if err != nil {
			b.watchErrs.Inc()
			if fails < 31 { // avoid shift overflow; the cap kicks in long before
				fails++
			}
			backoff := b.watch << min(fails, 5)
			if backoff > watchBackoffCap*b.watch {
				backoff = watchBackoffCap * b.watch
			}
			timer.Reset(jittered(backoff))
			continue
		}
		fails = 0
		timer.Reset(jittered(b.watch))
		if !changed {
			continue
		}
		b.mu.Lock()
		flushed := len(b.owners)
		clear(b.owners)
		b.epoch = epoch
		b.mu.Unlock()
		if flushed > 0 {
			b.flushes.Add(uint64(flushed))
		}
	}
}

// invalidate drops one session's cached owner.
func (b *ClusterBackend) invalidate(session uint64) {
	b.mu.Lock()
	_, had := b.owners[session]
	delete(b.owners, session)
	b.mu.Unlock()
	if had {
		b.invalidations.Inc()
	}
}

// resolve returns the worker client owning session, consulting the
// cache first unless force re-resolves. Sessions the coordinator knows
// but cannot currently serve surface as ErrOrphaned (retryable) or, for
// permanently failed ones, service.ErrFailed.
func (b *ClusterBackend) resolve(ctx context.Context, session uint64, force bool) (*cluster.WorkerClient, error) {
	if !force {
		b.mu.Lock()
		cl := b.owners[session]
		b.mu.Unlock()
		if cl != nil {
			b.hits.Inc()
			return cl, nil
		}
	}
	b.misses.Inc()
	oi, err := b.res.Owner(ctx, session)
	if err != nil {
		return nil, err
	}
	if oi.URL == "" {
		if oi.State == "failed" {
			// Permanent session death, NOT a graceful close: surface the
			// dedicated sentinel so clients can tell the two apart.
			return nil, fmt.Errorf("session %d died permanently: %w", session, service.ErrFailed)
		}
		return nil, fmt.Errorf("%w: session %d", cluster.ErrOrphaned, session)
	}
	b.mu.Lock()
	cl := b.clients[oi.URL]
	if cl == nil {
		cl = cluster.NewWorkerClient(oi.URL).WithObs(b.obsReg)
		b.clients[oi.URL] = cl
	}
	b.owners[session] = cl
	b.mu.Unlock()
	return cl, nil
}

// staleOwner reports whether a worker RPC error means the cached
// ownership fact itself may be wrong — the worker no longer hosts the
// session (moved or died) rather than the session rejecting the read.
func staleOwner(err error) bool {
	return errors.Is(err, cluster.ErrNotFound) ||
		errors.Is(err, cluster.ErrUnreachable) ||
		errors.Is(err, cluster.ErrDraining)
}

// Draw draws n bytes from the owning worker, re-resolving ownership and
// retrying once when the cached owner turns out stale.
func (b *ClusterBackend) Draw(ctx context.Context, session uint64, n int) ([]byte, error) {
	cl, err := b.resolve(ctx, session, false)
	if err != nil {
		return nil, err
	}
	key, err := cl.Draw(ctx, session, n)
	if err != nil && staleOwner(err) {
		b.invalidate(session)
		cl, rerr := b.resolve(ctx, session, true)
		if rerr != nil {
			return nil, rerr
		}
		b.retriesAfterInvalidated.Inc()
		return cl.Draw(ctx, session, n)
	}
	return key, err
}

// StreamTo streams [off, off+n) from the owning worker into w. The
// stale-owner retry only runs while nothing has been written — once
// bytes reached w the client already saw them, and a retry would
// re-send the prefix.
func (b *ClusterBackend) StreamTo(ctx context.Context, session uint64, off, n int64, w io.Writer) (int64, error) {
	cl, err := b.resolve(ctx, session, false)
	if err != nil {
		return 0, err
	}
	written, err := cl.StreamRangeTo(ctx, session, off, n, w)
	if err != nil && written == 0 && staleOwner(err) {
		b.invalidate(session)
		cl, rerr := b.resolve(ctx, session, true)
		if rerr != nil {
			return 0, rerr
		}
		b.retriesAfterInvalidated.Inc()
		return cl.StreamRangeTo(ctx, session, off, n, w)
	}
	return written, err
}

// ServiceBackend adapts one in-process Service — the single-daemon gate
// shape, unit tests, and the conformance suite's gate arm.
type ServiceBackend struct {
	SV *service.Service
}

func (sb ServiceBackend) Draw(_ context.Context, session uint64, n int) ([]byte, error) {
	s, err := sb.get(session)
	if err != nil {
		return nil, err
	}
	return s.Draw(n)
}

func (sb ServiceBackend) StreamTo(_ context.Context, session uint64, off, n int64, w io.Writer) (int64, error) {
	s, err := sb.get(session)
	if err != nil {
		return 0, err
	}
	src, err := s.StreamRange(off, n)
	if errors.Is(err, service.ErrNoStream) {
		// Pool-fed fallback, mirroring the /v1 stream endpoint: one
		// consuming bulk draw, offset 0 only (a pool has no addresses).
		if off != 0 {
			return 0, fmt.Errorf("%w: offsets are only addressable on stream-fed sessions",
				client.ErrBadRequest)
		}
		key, derr := s.DrawBulk(int(n))
		if derr != nil {
			return 0, derr
		}
		m, werr := w.Write(key)
		return int64(m), werr
	}
	if err != nil {
		return 0, err
	}
	return io.CopyN(w, src, n)
}

func (sb ServiceBackend) get(session uint64) (*service.Session, error) {
	if session > 1<<32-1 {
		return nil, fmt.Errorf("%w: session %d", service.ErrNotFound, session)
	}
	// Lookup (not Get) so a permanently dead session surfaces as
	// ErrFailed over the frame protocol too, matching the HTTP tiers.
	return sb.SV.Lookup(uint32(session))
}

// resolverError decodes a resolver HTTP error through the shared
// envelope so e.g. an unknown session surfaces as ErrNotFound.
func resolverError(resp *http.Response) error {
	var eb httpapi.ErrorBody
	_ = jsonDecode(resp, &eb)
	msg := eb.Error.Message
	if msg == "" {
		msg = resp.Status
	}
	return client.ErrorFromCode(eb.Error.Code, msg)
}
