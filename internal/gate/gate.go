package gate

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config parameterizes a Gate.
type Config struct {
	// Backend serves the key-material reads (required).
	Backend Backend
	// HeartbeatEvery is the heartbeat interval advertised in the
	// handshake ack; connections silent for 3× the interval are kicked.
	// 0 disables heartbeat enforcement (and the per-conn timers with it
	// — the mock-client bench runs 100k+ connections this way).
	HeartbeatEvery time.Duration
	// MaxPending bounds in-flight requests per connection; further data
	// frames wait in the socket (TCP backpressure). 0 means 32.
	MaxPending int
	// Obs is the metrics registry. Nil means obs.Default().
	Obs *obs.Registry
	// Spans is the span ring gate-tier events are recorded to. Nil means
	// obs.DefaultSpans().
	Spans *obs.SpanLog
	// Logf receives connection-level events. Nil means log.Printf.
	Logf func(format string, args ...any)
}

// Gate accepts persistent client connections speaking the frame
// protocol and serves their draw/bulk-draw/stream-range requests from
// its Backend. One Gate serves plain TCP listeners (Serve), raw
// connections (ServeConn — the bench's net.Pipe path) and WebSocket
// upgrades (WSHandler) at the same time.
type Gate struct {
	cfg Config

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	agents map[*agent]struct{}
	lns    map[net.Listener]struct{}
	closed bool

	obsReg *obs.Registry
	spans  *obs.SpanLog

	connections       *obs.Gauge
	handshakes        *obs.Counter
	kicks             *obs.Counter
	heartbeatTimeouts *obs.Counter
	framesIn          *obs.Counter
	framesOut         *obs.Counter
	drawOK, drawErr   *obs.Histogram
	strOK, strErr     *obs.Histogram
}

// New builds a Gate. Call Close to kick every connection and stop.
func New(cfg Config) *Gate {
	if cfg.Backend == nil {
		panic("gate: Config.Backend is required")
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = 32
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.Default()
	}
	if cfg.Spans == nil {
		cfg.Spans = obs.DefaultSpans()
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	ctx, cancel := context.WithCancel(context.Background())
	g := &Gate{
		cfg:    cfg,
		ctx:    ctx,
		cancel: cancel,
		agents: make(map[*agent]struct{}),
		lns:    make(map[net.Listener]struct{}),
		obsReg: cfg.Obs,
		spans:  cfg.Spans,
	}
	r := cfg.Obs
	g.connections = r.Gauge("thinaird_gate_connections",
		"Client connections currently held open by the gate.")
	g.handshakes = r.Counter("thinaird_gate_handshakes_total",
		"Completed client handshakes.")
	g.kicks = r.Counter("thinaird_gate_kicks_total",
		"Connections closed server-side with a kick frame.")
	g.heartbeatTimeouts = r.Counter("thinaird_gate_heartbeat_timeouts_total",
		"Connections kicked after 3 missed heartbeat intervals.")
	frames := r.CounterVec("thinaird_gate_frames_total",
		"Protocol frames by direction.", "dir")
	g.framesIn = frames.With("in")
	g.framesOut = frames.With("out")
	draw := r.HistogramVec("thinaird_gate_draw_seconds",
		"Gate draw/bulk-draw request latency.", obs.LatencyBuckets, "outcome")
	g.drawOK, g.drawErr = draw.With("ok"), draw.With("error")
	str := r.HistogramVec("thinaird_gate_stream_seconds",
		"Gate stream-range request latency.", obs.LatencyBuckets, "outcome")
	g.strOK, g.strErr = str.With("ok"), str.With("error")
	if cfg.HeartbeatEvery > 0 {
		g.wg.Add(1)
		go g.sweep()
	}
	return g
}

// Serve accepts connections from ln until the gate closes or the
// listener fails. Each connection gets its own agent goroutine.
func (g *Gate) Serve(ln net.Listener) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		ln.Close()
		return errors.New("gate: closed")
	}
	g.lns[ln] = struct{}{}
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		delete(g.lns, ln)
		g.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if g.ctx.Err() != nil {
				return nil
			}
			return err
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.ServeConn(conn)
		}()
	}
}

// ServeConn runs the frame protocol on one already-accepted connection,
// blocking until it closes. The bench drives net.Pipe server halves
// through here; the WebSocket handler feeds it upgraded connections.
func (g *Gate) ServeConn(conn net.Conn) {
	a := &agent{g: g, conn: conn}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		conn.Close()
		return
	}
	g.agents[a] = struct{}{}
	g.mu.Unlock()
	g.connections.Add(1)
	defer func() {
		g.mu.Lock()
		delete(g.agents, a)
		g.mu.Unlock()
		g.connections.Add(-1)
		conn.Close()
	}()
	a.run()
}

// Close kicks every connection, closes every listener and waits for the
// agents to wind down.
func (g *Gate) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.wg.Wait()
		return nil
	}
	g.closed = true
	agents := make([]*agent, 0, len(g.agents))
	for a := range g.agents {
		agents = append(agents, a)
	}
	lns := make([]net.Listener, 0, len(g.lns))
	for ln := range g.lns {
		lns = append(lns, ln)
	}
	g.mu.Unlock()
	g.cancel()
	for _, ln := range lns {
		ln.Close()
	}
	for _, a := range agents {
		a.kick("gate shutting down")
	}
	g.wg.Wait()
	return nil
}

// sweep is the heartbeat enforcer: one goroutine for the whole gate
// (never per-connection timers), kicking connections silent for more
// than 3 heartbeat intervals.
func (g *Gate) sweep() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-g.ctx.Done():
			return
		case <-t.C:
		}
		deadline := time.Now().Add(-3 * g.cfg.HeartbeatEvery).UnixNano()
		g.mu.Lock()
		var stale []*agent
		for a := range g.agents {
			if last := a.lastSeen.Load(); last != 0 && last < deadline {
				stale = append(stale, a)
			}
		}
		g.mu.Unlock()
		for _, a := range stale {
			g.heartbeatTimeouts.Inc()
			a.kick("heartbeat timeout")
		}
	}
}

// jsonDecode and drainClose are tiny HTTP helpers shared by the
// resolver paths.
func jsonDecode(resp *http.Response, out any) error {
	return json.NewDecoder(resp.Body).Decode(out)
}

func drainClose(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}
