package gate

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
)

// ErrInterrupted marks a draw whose connection died between issue and
// response. The gate may or may not have consumed the pool bytes
// server-side before the cut, so replaying the draw could silently
// dispense the same request twice — the reconnecting client therefore
// NEVER retries a draw. Callers see this typed error, decide whether a
// duplicate would be safe for their protocol, and re-issue themselves.
var ErrInterrupted = errors.New("gate: request interrupted by connection loss; not replayed")

// ReconnectConfig parameterizes a ReconnectClient.
type ReconnectConfig struct {
	// Dial establishes one fresh connection. Required.
	Dial func() (*Client, error)
	// InitialBackoff is the pause before the second dial attempt; each
	// further attempt doubles it, with ±25% jitter throughout (the same
	// envelope the backend watch poller uses, and for the same reason: a
	// fleet of clients must not re-dial a restarted gate in lockstep).
	// 0 means 100ms.
	InitialBackoff time.Duration
	// MaxBackoff caps the doubling. 0 means 5s.
	MaxBackoff time.Duration
	// MaxAttempts bounds the dials of one reconnect cycle; when the
	// budget is spent the triggering call fails with the dial error.
	// 0 means 8.
	MaxAttempts int
}

func (c *ReconnectConfig) fill() {
	if c.InitialBackoff == 0 {
		c.InitialBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
}

// ReconnectClient wraps the frame-protocol Client with transparent
// re-dialing: when the underlying connection dies (gate restart, kick,
// network cut), the next call dials a fresh one with jittered
// exponential backoff and proceeds. Only idempotent work is ever
// replayed across the gap:
//
//   - Stream ranges resume from the written offset — the bytes already
//     received stay, the remainder is re-requested on the new
//     connection, and the caller gets each byte exactly once.
//   - Draws are NEVER replayed. A draw cut mid-flight fails fast with
//     ErrInterrupted, because the gate may have consumed the pool bytes
//     before the connection died and a replay would dispense twice.
//
// Typed backend errors (not-found, failed, closed, …) arrive on a live
// connection and are surfaced unchanged — they are answers, not
// connection failures.
type ReconnectClient struct {
	cfg ReconnectConfig

	mu     sync.Mutex
	cur    *Client
	ever   bool // a first connection has been made; later dials are re-dials
	closed bool
	rng    *rand.Rand

	redials atomic.Int64
}

// NewReconnectClient builds the wrapper without dialing; the first call
// connects. Use DialReconnect / DialReconnectWS for an eager first dial.
func NewReconnectClient(cfg ReconnectConfig) *ReconnectClient {
	cfg.fill()
	return &ReconnectClient{
		cfg: cfg,
		rng: rand.New(rand.NewSource(rand.Int63())),
	}
}

// DialReconnect returns a reconnecting client over a gate's TCP
// listener, dialing eagerly so a bad address fails here rather than on
// the first draw.
func DialReconnect(addr string) (*ReconnectClient, error) {
	rc := NewReconnectClient(ReconnectConfig{Dial: func() (*Client, error) { return Dial(addr) }})
	return rc, rc.dialEager()
}

// DialReconnectWS is DialReconnect over a WebSocket upgrade
// (ws://host/path or http://host/path).
func DialReconnectWS(url string) (*ReconnectClient, error) {
	rc := NewReconnectClient(ReconnectConfig{Dial: func() (*Client, error) { return DialWS(url) }})
	return rc, rc.dialEager()
}

func (rc *ReconnectClient) dialEager() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	c, err := rc.cfg.Dial()
	if err != nil {
		return err
	}
	rc.cur = c
	rc.ever = true
	return nil
}

// Redials reports how many fresh connections the client has established
// after its first (chaos tests assert the ride-through actually
// happened).
func (rc *ReconnectClient) Redials() int64 { return rc.redials.Load() }

// live returns a healthy connection, re-dialing with backoff when the
// current one is dead. Concurrent callers serialize on rc.mu so one
// reconnect cycle serves them all.
func (rc *ReconnectClient) live(ctx context.Context) (*Client, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return nil, ErrClientClosed
	}
	if rc.cur != nil && !rc.cur.Dead() {
		return rc.cur, nil
	}
	backoff := rc.cfg.InitialBackoff
	for attempt := 1; ; attempt++ {
		if rc.cur != nil {
			rc.cur.Close()
			rc.cur = nil
		}
		c, err := rc.cfg.Dial()
		if err == nil {
			rc.cur = c
			if rc.ever {
				rc.redials.Add(1)
			}
			rc.ever = true
			return c, nil
		}
		if attempt >= rc.cfg.MaxAttempts {
			return nil, fmt.Errorf("gate: reconnect gave up after %d attempts: %w", attempt, err)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(jitterDuration(rc.rng, backoff)):
		}
		if backoff *= 2; backoff > rc.cfg.MaxBackoff {
			backoff = rc.cfg.MaxBackoff
		}
	}
}

// retire drops a dead connection so the next call dials afresh.
func (rc *ReconnectClient) retire(c *Client) {
	rc.mu.Lock()
	if rc.cur == c {
		rc.cur = nil
	}
	rc.mu.Unlock()
	c.Close()
}

// interrupted classifies a call error: true when the connection died
// under the request (the non-replayable case), false for typed backend
// answers and caller-side cancellation.
func (rc *ReconnectClient) interrupted(ctx context.Context, c *Client, err error) bool {
	if err == nil || ctx.Err() != nil {
		return false
	}
	if !c.Dead() {
		return false // a live connection delivered a real (typed) answer
	}
	rc.retire(c)
	return true
}

// Draw consumes n bytes of key material — at most once. A connection
// death under the draw surfaces as ErrInterrupted instead of a retry.
func (rc *ReconnectClient) Draw(ctx context.Context, session uint64, n int) ([]byte, error) {
	c, err := rc.live(ctx)
	if err != nil {
		return nil, err
	}
	key, err := c.Draw(ctx, session, n)
	if rc.interrupted(ctx, c, err) {
		return nil, fmt.Errorf("draw of %d bytes from session %d: %w: %v", n, session, ErrInterrupted, err)
	}
	return key, err
}

// DrawN consumes n×count bytes in one round trip — at most once, like
// Draw.
func (rc *ReconnectClient) DrawN(ctx context.Context, session uint64, n, count int) ([][]byte, error) {
	c, err := rc.live(ctx)
	if err != nil {
		return nil, err
	}
	keys, err := c.DrawN(ctx, session, n, count)
	if rc.interrupted(ctx, c, err) {
		return nil, fmt.Errorf("bulk draw %d×%d from session %d: %w: %v", n, count, session, ErrInterrupted, err)
	}
	return keys, err
}

// StreamRange reads [off, off+length) of the session's key stream,
// riding through connection losses: the prefix received before a cut is
// kept and the remainder re-requested from the written offset on the
// next connection — each byte of the range is delivered exactly once.
// (Pool-fed sessions only address offset 0, so a mid-range resume there
// is rejected by the worker; stream-fed sessions — the addressable
// surface — resume cleanly.)
func (rc *ReconnectClient) StreamRange(ctx context.Context, session uint64, off, length int64) ([]byte, error) {
	var buf []byte
	for {
		c, err := rc.live(ctx)
		if err != nil {
			return nil, err
		}
		written := int64(len(buf))
		buf, err = c.streamRangePrefix(ctx, session, off+written, length-written, buf)
		if err == nil {
			return buf, nil
		}
		if !rc.interrupted(ctx, c, err) {
			return nil, err // typed backend answer or caller cancellation
		}
		// Connection death mid-range: loop, resume from the new written
		// offset. live() owns the backoff; its dial budget bounds the loop.
	}
}

// ReaderAt adapts one session's stream surface to io.ReaderAt.
func (rc *ReconnectClient) ReaderAt(session uint64) io.ReaderAt {
	return reconnectReaderAt{rc: rc, session: session}
}

type reconnectReaderAt struct {
	rc      *ReconnectClient
	session uint64
}

func (r reconnectReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	b, err := r.rc.StreamRange(context.Background(), r.session, off, int64(len(p)))
	if err != nil {
		return 0, err
	}
	return copy(p, b), nil
}

// Close shuts the wrapper down; subsequent calls return ErrClientClosed.
func (rc *ReconnectClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	rc.closed = true
	if rc.cur != nil {
		rc.cur.Close()
		rc.cur = nil
	}
	return nil
}

var _ client.Client = (*ReconnectClient)(nil)
