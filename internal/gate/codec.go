// Package gate is the persistent-client tier: a frontend that holds
// long-lived TCP (or WebSocket) connections speaking a small binary
// frame protocol, resolves session→worker ownership once via the
// coordinator, caches it, and serves draws and stream ranges directly
// from the owning worker's /ctl RPC surface — the coordinator only ever
// resolves ownership, it never relays key material.
//
// Frame format (the lonng/nano package shape):
//
//	+--------+--------------------+-------------------------+
//	| type:1 |     length:3       |          body           |
//	+--------+--------------------+-------------------------+
//
// length is the big-endian byte length of body (max 2^24-1). Types:
//
//	0x01 handshake      client→server JSON {"version":1}; the server
//	                    answers with the same type carrying
//	                    {"version":1,"heartbeat_ms":N,"max_frame":M}
//	0x02 handshake-ack  client→server, empty body; data may flow after
//	0x03 heartbeat      client→server, empty body; the server echoes it.
//	                    A connection silent for 3×heartbeat_ms is closed
//	                    server-side (heartbeat_ms 0 disables the rule)
//	0x04 data           request/response, multiplexed by request id
//	0x05 kick           server→server-side close: body is a reason string
//
// Data request body:
//
//	| reqid:4 | op:1 | session:8 | op fields | spanlen:1 | span |
//
// ops: 0x01 draw (n:4), 0x02 bulk-draw (n:4, count:4), 0x03
// stream-range (offset:8, length:8); all integers big-endian. span is
// an optional observability span id propagated into the worker RPC.
//
// Data response body:
//
//	| reqid:4 | kind:1 | rest |
//
// kinds: 0x00 final (rest is the payload — for streams, the last,
// possibly empty, chunk), 0x01 error (rest is code:1 + message), 0x02
// partial (rest is one stream chunk; more frames follow). Error codes
// are the one-byte form of the shared /v1 envelope slugs (httpapi.Code*).
package gate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/httpapi"
)

// Frame types.
const (
	frameHandshake    = 0x01
	frameHandshakeAck = 0x02
	frameHeartbeat    = 0x03
	frameData         = 0x04
	frameKick         = 0x05
)

// MaxFrameBody is the largest frame body the 3-byte length can carry.
// Stream ranges larger than this are chunked into partial frames.
const MaxFrameBody = 1<<24 - 1

// Data request ops.
const (
	opDraw   = 0x01
	opBulk   = 0x02
	opStream = 0x03
)

// Data response kinds.
const (
	kindFinal   = 0x00
	kindError   = 0x01
	kindPartial = 0x02
)

// Wire error codes: the one-byte form of the /v1 envelope slugs. 0 is
// reserved (not a code) so a zeroed byte never reads as a valid one.
const (
	codeByteBadRequest  = 1
	codeByteDraining    = 2
	codeByteDuplicate   = 3
	codeByteSaturated   = 4
	codeByteExhausted   = 5
	codeByteClosed      = 6
	codeByteOrphaned    = 7
	codeByteNotFound    = 8
	codeByteShutdown    = 9
	codeByteUnreachable = 10
	codeByteInternal    = 11
	codeByteFailed      = 12
)

// codeToSlug maps wire bytes to the shared envelope slugs; slugToCode is
// its inverse. The gate carries exactly the /v1 code set, one byte each.
var codeToSlug = map[byte]string{
	codeByteBadRequest:  httpapi.CodeBadRequest,
	codeByteDraining:    httpapi.CodeDraining,
	codeByteDuplicate:   httpapi.CodeDuplicate,
	codeByteSaturated:   httpapi.CodeSaturated,
	codeByteExhausted:   httpapi.CodeExhausted,
	codeByteClosed:      httpapi.CodeClosed,
	codeByteOrphaned:    httpapi.CodeOrphaned,
	codeByteNotFound:    httpapi.CodeNotFound,
	codeByteShutdown:    httpapi.CodeShutdown,
	codeByteUnreachable: httpapi.CodeUnreachable,
	codeByteInternal:    httpapi.CodeInternal,
	codeByteFailed:      httpapi.CodeFailed,
}

var slugToCode = func() map[string]byte {
	m := make(map[string]byte, len(codeToSlug))
	for b, s := range codeToSlug {
		m[s] = b
	}
	return m
}()

// errFrameTooLarge rejects frames whose declared body exceeds the
// 3-byte length space (unreachable on the wire) or the reader's cap.
var errFrameTooLarge = errors.New("gate: frame body too large")

// errMalformed rejects structurally invalid data bodies.
var errMalformed = errors.New("gate: malformed frame")

// handshake is the JSON body of the client's 0x01 frame.
type handshake struct {
	Version int `json:"version"`
}

// handshakeAck is the JSON body of the server's 0x01 reply.
type handshakeAck struct {
	Version     int   `json:"version"`
	HeartbeatMS int64 `json:"heartbeat_ms"`
	MaxFrame    int   `json:"max_frame"`
}

// protocolVersion is the only version both ends speak today.
const protocolVersion = 1

// writeFrame emits one frame. Callers serialize access to w themselves.
func writeFrame(w io.Writer, typ byte, body []byte) error {
	if len(body) > MaxFrameBody {
		return errFrameTooLarge
	}
	hdr := [4]byte{typ, byte(len(body) >> 16), byte(len(body) >> 8), byte(len(body))}
	// One write per frame where it fits: interleaving matters more than
	// copies on a multiplexed connection.
	buf := make([]byte, 0, 4+len(body))
	buf = append(buf, hdr[:]...)
	buf = append(buf, body...)
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame, reusing buf for the body when it fits.
// maxBody bounds the accepted body length (0 means MaxFrameBody).
func readFrame(r io.Reader, buf []byte, maxBody int) (typ byte, body []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if maxBody <= 0 {
		maxBody = MaxFrameBody
	}
	if n > maxBody {
		return 0, nil, errFrameTooLarge
	}
	if n > cap(buf) {
		buf = make([]byte, n)
	}
	body = buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return hdr[0], body, nil
}

// request is one decoded data-frame request.
type request struct {
	ReqID   uint32
	Op      byte
	Session uint64
	N       uint32 // draw: bytes; bulk: bytes per key
	Count   uint32 // bulk: number of keys
	Off     int64  // stream: range offset
	Len     int64  // stream: range length
	Span    string // optional observability span id
}

// appendRequest encodes req onto b.
func appendRequest(b []byte, req request) ([]byte, error) {
	if len(req.Span) > 255 {
		return nil, errMalformed
	}
	b = binary.BigEndian.AppendUint32(b, req.ReqID)
	b = append(b, req.Op)
	b = binary.BigEndian.AppendUint64(b, req.Session)
	switch req.Op {
	case opDraw:
		b = binary.BigEndian.AppendUint32(b, req.N)
	case opBulk:
		b = binary.BigEndian.AppendUint32(b, req.N)
		b = binary.BigEndian.AppendUint32(b, req.Count)
	case opStream:
		b = binary.BigEndian.AppendUint64(b, uint64(req.Off))
		b = binary.BigEndian.AppendUint64(b, uint64(req.Len))
	default:
		return nil, errMalformed
	}
	b = append(b, byte(len(req.Span)))
	b = append(b, req.Span...)
	return b, nil
}

// parseRequest decodes one data-frame request body.
func parseRequest(body []byte) (request, error) {
	var req request
	if len(body) < 13 {
		return req, errMalformed
	}
	req.ReqID = binary.BigEndian.Uint32(body)
	req.Op = body[4]
	req.Session = binary.BigEndian.Uint64(body[5:])
	rest := body[13:]
	switch req.Op {
	case opDraw:
		if len(rest) < 4 {
			return req, errMalformed
		}
		req.N = binary.BigEndian.Uint32(rest)
		rest = rest[4:]
	case opBulk:
		if len(rest) < 8 {
			return req, errMalformed
		}
		req.N = binary.BigEndian.Uint32(rest)
		req.Count = binary.BigEndian.Uint32(rest[4:])
		rest = rest[8:]
	case opStream:
		if len(rest) < 16 {
			return req, errMalformed
		}
		req.Off = int64(binary.BigEndian.Uint64(rest))
		req.Len = int64(binary.BigEndian.Uint64(rest[8:]))
		if req.Off < 0 || req.Len < 0 {
			return req, errMalformed
		}
		rest = rest[16:]
	default:
		return req, fmt.Errorf("%w: op 0x%02x", errMalformed, req.Op)
	}
	if len(rest) < 1 {
		return req, errMalformed
	}
	spanLen := int(rest[0])
	rest = rest[1:]
	if len(rest) != spanLen {
		return req, errMalformed
	}
	req.Span = string(rest)
	return req, nil
}

// appendResponseHeader encodes the reqid + kind prefix of a response.
func appendResponseHeader(b []byte, reqID uint32, kind byte) []byte {
	b = binary.BigEndian.AppendUint32(b, reqID)
	return append(b, kind)
}

// response is one decoded data-frame response.
type response struct {
	ReqID   uint32
	Kind    byte
	Code    byte   // kindError only
	Message string // kindError only
	Payload []byte // kindFinal / kindPartial; aliases the read buffer
}

// parseResponse decodes one data-frame response body.
func parseResponse(body []byte) (response, error) {
	var resp response
	if len(body) < 5 {
		return resp, errMalformed
	}
	resp.ReqID = binary.BigEndian.Uint32(body)
	resp.Kind = body[4]
	rest := body[5:]
	switch resp.Kind {
	case kindFinal, kindPartial:
		resp.Payload = rest
	case kindError:
		if len(rest) < 1 {
			return resp, errMalformed
		}
		resp.Code = rest[0]
		resp.Message = string(rest[1:])
	default:
		return resp, fmt.Errorf("%w: response kind 0x%02x", errMalformed, resp.Kind)
	}
	return resp, nil
}
