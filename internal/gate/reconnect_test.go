package gate

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pipeDialer builds ReconnectConfig.Dial closures over net.Pipe so
// tests can cut the wire at a chosen instant: every dial records its
// server half, and killLast severs the most recent connection.
type pipeDialer struct {
	g  *Gate
	mu sync.Mutex
	// server halves, in dial order
	conns []net.Conn
}

func (d *pipeDialer) dial() (*Client, error) {
	server, cl := net.Pipe()
	d.mu.Lock()
	d.conns = append(d.conns, server)
	d.mu.Unlock()
	go d.g.ServeConn(server)
	return NewClient(cl)
}

func (d *pipeDialer) killLast() {
	d.mu.Lock()
	c := d.conns[len(d.conns)-1]
	d.mu.Unlock()
	c.Close()
}

// TestReconnectRidesGateRestart: kill the gate under a connected
// reconnecting client, start a fresh gate on the same TCP address, and
// the next draws succeed — the client re-dialed by itself.
func TestReconnectRidesGateRestart(t *testing.T) {
	b := &stubBackend{}
	g1 := newTestGate(t, Config{Backend: b})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go g1.Serve(ln)
	addr := ln.Addr().String()

	rc, err := DialReconnect(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	ctx := context.Background()
	key, err := rc.Draw(ctx, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if key[0] != patternByte(1, 0) {
		t.Fatalf("draw byte %x, want %x", key[0], patternByte(1, 0))
	}

	// Gate restart: the old process dies (kicking every client), a new
	// one binds the same address.
	if err := g1.Close(); err != nil {
		t.Fatal(err)
	}
	g2 := newTestGate(t, Config{Backend: b})
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	go g2.Serve(ln2)

	// The draw in flight when the kick lands is interrupted, never
	// replayed; the one after it rides the fresh connection.
	for attempt := 0; ; attempt++ {
		key, err = rc.Draw(ctx, 1, 8)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("draw across gate restart: %v, want success or ErrInterrupted", err)
		}
		if attempt >= 5 {
			t.Fatalf("draw still interrupted after %d attempts: %v", attempt, err)
		}
	}
	if key[0] != patternByte(1, 0) {
		t.Fatalf("post-restart draw byte %x, want %x", key[0], patternByte(1, 0))
	}
	if rc.Redials() == 0 {
		t.Fatal("draw succeeded without a redial — the restart was not ridden through")
	}
}

// blockingBackend parks every draw until the test releases it, so the
// test can cut the connection with the draw provably in flight. It
// counts draw ENTRIES, not completions: the interrupted draw DOES
// complete server-side once released — pool bytes consumed with nobody
// listening is exactly why draws must never be replayed.
type blockingBackend struct {
	stubBackend
	started chan struct{}
	release chan struct{}
	entries atomic.Int32
}

func (b *blockingBackend) Draw(ctx context.Context, session uint64, n int) ([]byte, error) {
	b.entries.Add(1)
	b.started <- struct{}{}
	<-b.release
	return b.stubBackend.Draw(ctx, session, n)
}

// TestInterruptedDrawNotReplayed: a draw whose connection dies
// mid-flight surfaces ErrInterrupted and is NOT re-issued on the fresh
// connection — the backend sees exactly the draws the caller made.
func TestInterruptedDrawNotReplayed(t *testing.T) {
	b := &blockingBackend{started: make(chan struct{}, 8), release: make(chan struct{})}
	g := newTestGate(t, Config{Backend: b})
	d := &pipeDialer{g: g}
	rc := NewReconnectClient(ReconnectConfig{Dial: d.dial})
	defer rc.Close()
	ctx := context.Background()

	errc := make(chan error, 1)
	go func() {
		_, err := rc.Draw(ctx, 7, 8)
		errc <- err
	}()
	<-b.started  // the draw reached the backend…
	d.killLast() // …and the wire dies under it
	err := <-errc
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("draw with connection cut mid-flight: %v, want ErrInterrupted", err)
	}
	close(b.release) // unpark the stranded handler (and every later draw)

	// The next draw redials and succeeds; the interrupted one must not
	// ride along.
	if _, err := rc.Draw(ctx, 7, 8); err != nil {
		t.Fatalf("draw after reconnect: %v", err)
	}
	if n := b.entries.Load(); n != 2 {
		t.Fatalf("backend saw %d draws, want 2 (the interrupted one + the explicit retry) — the interrupted draw was replayed", n)
	}
	if rc.Redials() != 1 {
		t.Fatalf("redials = %d, want 1", rc.Redials())
	}
}

// resumeBackend serves the pattern but severs the connection halfway
// through the first stream call, recording every (off, n) request so
// the test can prove the client resumed from the written offset rather
// than re-reading the range.
type resumeBackend struct {
	stubBackend
	kill  func()
	smu   sync.Mutex
	calls [][2]int64
}

func (b *resumeBackend) StreamTo(ctx context.Context, session uint64, off, n int64, w io.Writer) (int64, error) {
	b.smu.Lock()
	first := len(b.calls) == 0
	b.calls = append(b.calls, [2]int64{off, n})
	b.smu.Unlock()
	if !first {
		return b.stubBackend.StreamTo(ctx, session, off, n, w)
	}
	half := n / 2
	out := make([]byte, half)
	for i := range out {
		out[i] = patternByte(session, off+int64(i))
	}
	if _, err := w.Write(out); err != nil {
		return 0, err
	}
	// net.Pipe writes are synchronous: the client holds those bytes.
	// Now the wire dies before the rest of the range is served.
	b.kill()
	return half, fmt.Errorf("wire cut after %d of %d bytes", half, n)
}

// TestStreamResumeFromWrittenOffset: a stream range cut halfway resumes
// on the fresh connection from exactly the written offset — the second
// backend request starts where the first stopped, and the assembled
// buffer carries each byte exactly once.
func TestStreamResumeFromWrittenOffset(t *testing.T) {
	b := &resumeBackend{}
	g := newTestGate(t, Config{Backend: b})
	d := &pipeDialer{g: g}
	b.kill = d.killLast
	rc := NewReconnectClient(ReconnectConfig{Dial: d.dial})
	defer rc.Close()

	const session, off, length = 9, 1000, 64
	got, err := rc.StreamRange(context.Background(), session, off, length)
	if err != nil {
		t.Fatalf("stream across a mid-range cut: %v", err)
	}
	want := make([]byte, length)
	for i := range want {
		want[i] = patternByte(session, off+int64(i))
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed range differs from the pattern:\n got %x\nwant %x", got, want)
	}
	b.smu.Lock()
	calls := append([][2]int64(nil), b.calls...)
	b.smu.Unlock()
	wantCalls := [][2]int64{{off, length}, {off + length/2, length / 2}}
	if len(calls) != len(wantCalls) || calls[0] != wantCalls[0] || calls[1] != wantCalls[1] {
		t.Fatalf("backend requests %v, want %v — not a written-offset resume", calls, wantCalls)
	}
	if rc.Redials() != 1 {
		t.Fatalf("redials = %d, want 1", rc.Redials())
	}
}

// TestReconnectSurfacesTypedErrors: an error answered on a live
// connection is a backend verdict, not a wire failure — it must pass
// through untouched with no redial behind it.
func TestReconnectSurfacesTypedErrors(t *testing.T) {
	b := &stubBackend{errFor: map[uint64]error{4: context.DeadlineExceeded}}
	g := newTestGate(t, Config{Backend: b})
	d := &pipeDialer{g: g}
	rc := NewReconnectClient(ReconnectConfig{Dial: d.dial})
	defer rc.Close()

	if _, err := rc.Draw(context.Background(), 4, 8); err == nil {
		t.Fatal("draw on an erroring session succeeded")
	} else if errors.Is(err, ErrInterrupted) {
		t.Fatalf("typed backend error misread as an interruption: %v", err)
	}
	// The connection stayed healthy: the next draw reuses it.
	if _, err := rc.Draw(context.Background(), 5, 8); err != nil {
		t.Fatalf("draw after typed error: %v", err)
	}
	if rc.Redials() != 0 {
		t.Fatalf("redials = %d after a typed error, want 0", rc.Redials())
	}
}

// TestReconnectGivesUpAfterBudget: when the gate never comes back the
// dial budget bounds the stall and the caller gets the dial error.
func TestReconnectGivesUpAfterBudget(t *testing.T) {
	dials := 0
	rc := NewReconnectClient(ReconnectConfig{
		Dial: func() (*Client, error) {
			dials++
			return nil, errors.New("nobody listening")
		},
		InitialBackoff: time.Millisecond,
		MaxBackoff:     2 * time.Millisecond,
		MaxAttempts:    3,
	})
	defer rc.Close()
	_, err := rc.Draw(context.Background(), 1, 8)
	if err == nil {
		t.Fatal("draw succeeded with no gate")
	}
	if dials != 3 {
		t.Fatalf("dial attempts = %d, want 3", dials)
	}
}

// TestReconnectClosedStaysClosed: Close is terminal; no call may dial
// its way out of it.
func TestReconnectClosedStaysClosed(t *testing.T) {
	b := &stubBackend{}
	g := newTestGate(t, Config{Backend: b})
	d := &pipeDialer{g: g}
	rc := NewReconnectClient(ReconnectConfig{Dial: d.dial})
	if _, err := rc.Draw(context.Background(), 1, 8); err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if _, err := rc.Draw(context.Background(), 1, 8); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("draw on closed reconnect client: %v, want ErrClientClosed", err)
	}
}
