package gate

import (
	"bufio"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// Minimal RFC 6455 support: the gate's frame protocol rides inside
// binary WebSocket messages, so browser-side clients reach the same
// agent loop as raw TCP ones. Only the server-required subset is
// implemented — binary/close/ping opcodes, masked client frames,
// no extensions, no fragmentation of outgoing messages.

const wsMagic = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

const (
	wsOpContinuation = 0x0
	wsOpText         = 0x1
	wsOpBinary       = 0x2
	wsOpClose        = 0x8
	wsOpPing         = 0x9
	wsOpPong         = 0xA
)

// wsAccept computes the Sec-WebSocket-Accept value for a client key.
func wsAccept(key string) string {
	h := sha1.Sum([]byte(key + wsMagic))
	return base64.StdEncoding.EncodeToString(h[:])
}

// WSHandler upgrades HTTP requests to WebSocket connections and runs
// the gate frame protocol over them. Mount it wherever the deployment
// already terminates HTTP — e.g. mux.Handle("/v1/gate", g.WSHandler()).
func (g *Gate) WSHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.EqualFold(r.Header.Get("Upgrade"), "websocket") ||
			!headerHasToken(r.Header.Get("Connection"), "upgrade") {
			http.Error(w, "websocket upgrade required", http.StatusBadRequest)
			return
		}
		if r.Header.Get("Sec-WebSocket-Version") != "13" {
			w.Header().Set("Sec-WebSocket-Version", "13")
			http.Error(w, "unsupported websocket version", http.StatusBadRequest)
			return
		}
		key := r.Header.Get("Sec-WebSocket-Key")
		if key == "" {
			http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
			return
		}
		hj, ok := w.(http.Hijacker)
		if !ok {
			http.Error(w, "connection cannot be hijacked", http.StatusInternalServerError)
			return
		}
		conn, rw, err := hj.Hijack()
		if err != nil {
			http.Error(w, "hijack failed", http.StatusInternalServerError)
			return
		}
		resp := "HTTP/1.1 101 Switching Protocols\r\n" +
			"Upgrade: websocket\r\n" +
			"Connection: Upgrade\r\n" +
			"Sec-WebSocket-Accept: " + wsAccept(key) + "\r\n\r\n"
		if _, err := rw.WriteString(resp); err != nil || rw.Flush() != nil {
			conn.Close()
			return
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.ServeConn(newWSConn(conn, rw.Reader, true))
		}()
	})
}

// headerHasToken reports whether a comma-separated header value
// contains the token (Connection can be "keep-alive, Upgrade").
func headerHasToken(header, token string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// wsConn adapts a WebSocket connection to net.Conn so the agent and
// Client run unchanged: Write sends one binary message per call (frames
// are already length-delimited, so message boundaries don't matter),
// Read drains binary message payloads, answers pings, and turns close
// frames into io.EOF.
type wsConn struct {
	raw     net.Conn
	br      *bufio.Reader
	server  bool // servers read masked frames and write unmasked ones
	readBuf []byte
	wmu     chan struct{} // cap-1 mutex usable from Read (pong) and Write
}

func newWSConn(raw net.Conn, br *bufio.Reader, server bool) *wsConn {
	if br == nil {
		br = bufio.NewReader(raw)
	}
	c := &wsConn{raw: raw, br: br, server: server, wmu: make(chan struct{}, 1)}
	c.wmu <- struct{}{}
	return c
}

func (c *wsConn) Read(p []byte) (int, error) {
	for len(c.readBuf) == 0 {
		payload, opcode, err := c.readMessage()
		if err != nil {
			return 0, err
		}
		switch opcode {
		case wsOpBinary, wsOpText:
			c.readBuf = payload
		case wsOpPing:
			if err := c.writeMessage(wsOpPong, payload); err != nil {
				return 0, err
			}
		case wsOpPong:
			// ignore
		case wsOpClose:
			_ = c.writeMessage(wsOpClose, nil)
			return 0, io.EOF
		default:
			return 0, fmt.Errorf("gate: unsupported websocket opcode 0x%x", opcode)
		}
	}
	n := copy(p, c.readBuf)
	c.readBuf = c.readBuf[n:]
	return n, nil
}

// readMessage reads one complete message, reassembling continuation
// fragments. Control frames may interleave with fragments but are never
// fragmented themselves.
func (c *wsConn) readMessage() ([]byte, byte, error) {
	var msg []byte
	var msgOp byte
	for {
		payload, opcode, fin, err := c.readFrame()
		if err != nil {
			return nil, 0, err
		}
		if opcode >= wsOpClose { // control frame
			if !fin {
				return nil, 0, errors.New("gate: fragmented websocket control frame")
			}
			if msg != nil && opcode != wsOpClose {
				// Mid-message ping: answer inline, keep assembling.
				if opcode == wsOpPing {
					if err := c.writeMessage(wsOpPong, payload); err != nil {
						return nil, 0, err
					}
				}
				continue
			}
			return payload, opcode, nil
		}
		if msg == nil {
			if opcode == wsOpContinuation {
				return nil, 0, errors.New("gate: websocket continuation without start")
			}
			msgOp = opcode
			msg = payload
		} else {
			if opcode != wsOpContinuation {
				return nil, 0, errors.New("gate: interleaved websocket data frames")
			}
			msg = append(msg, payload...)
		}
		if fin {
			return msg, msgOp, nil
		}
	}
}

func (c *wsConn) readFrame() (payload []byte, opcode byte, fin bool, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, 0, false, err
	}
	fin = hdr[0]&0x80 != 0
	if hdr[0]&0x70 != 0 {
		return nil, 0, false, errors.New("gate: websocket RSV bits set")
	}
	opcode = hdr[0] & 0x0F
	masked := hdr[1]&0x80 != 0
	if c.server && !masked {
		return nil, 0, false, errors.New("gate: unmasked client frame")
	}
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return nil, 0, false, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return nil, 0, false, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > MaxFrameBody+4 {
		return nil, 0, false, errFrameTooLarge
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(c.br, mask[:]); err != nil {
			return nil, 0, false, err
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return nil, 0, false, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i&3]
		}
	}
	return payload, opcode, fin, nil
}

func (c *wsConn) Write(p []byte) (int, error) {
	if err := c.writeMessage(wsOpBinary, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (c *wsConn) writeMessage(opcode byte, payload []byte) error {
	hdr := make([]byte, 0, 14)
	hdr = append(hdr, 0x80|opcode)
	maskBit := byte(0)
	if !c.server {
		maskBit = 0x80
	}
	switch {
	case len(payload) < 126:
		hdr = append(hdr, maskBit|byte(len(payload)))
	case len(payload) <= 0xFFFF:
		hdr = append(hdr, maskBit|126, byte(len(payload)>>8), byte(len(payload)))
	default:
		hdr = append(hdr, maskBit|127)
		hdr = binary.BigEndian.AppendUint64(hdr, uint64(len(payload)))
	}
	body := payload
	if !c.server {
		// Clients must mask. A fixed zero mask would be spec-legal in
		// spirit but some intermediaries reject it; derive a cheap one
		// from the payload length and a counter-free source (the header
		// bytes written so far), then apply it.
		var mask [4]byte
		h := sha1.Sum(append(append([]byte{}, hdr...), byte(len(payload))))
		copy(mask[:], h[:4])
		hdr = append(hdr, mask[:]...)
		body = make([]byte, len(payload))
		for i := range payload {
			body[i] = payload[i] ^ mask[i&3]
		}
	}
	<-c.wmu
	defer func() { c.wmu <- struct{}{} }()
	if _, err := c.raw.Write(hdr); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := c.raw.Write(body); err != nil {
			return err
		}
	}
	return nil
}

func (c *wsConn) Close() error                       { return c.raw.Close() }
func (c *wsConn) LocalAddr() net.Addr                { return c.raw.LocalAddr() }
func (c *wsConn) RemoteAddr() net.Addr               { return c.raw.RemoteAddr() }
func (c *wsConn) SetDeadline(t time.Time) error      { return c.raw.SetDeadline(t) }
func (c *wsConn) SetReadDeadline(t time.Time) error  { return c.raw.SetReadDeadline(t) }
func (c *wsConn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// DialWS connects to a gate WSHandler at url (ws://host/path or
// http://host/path) and returns the frame Client running over the
// upgraded connection.
func DialWS(url string) (*Client, error) {
	rest, ok := strings.CutPrefix(url, "ws://")
	if !ok {
		if rest, ok = strings.CutPrefix(url, "http://"); !ok {
			return nil, fmt.Errorf("gate: unsupported websocket url %q", url)
		}
	}
	host, path, found := strings.Cut(rest, "/")
	if !found {
		path = ""
	}
	raw, err := net.Dial("tcp", host)
	if err != nil {
		return nil, err
	}
	// Nonce quality is irrelevant here — the key only feeds the accept
	// hash — but it must be 16 base64-encoded bytes.
	key := base64.StdEncoding.EncodeToString([]byte("thinair-gate-ws!"))
	req := fmt.Sprintf("GET /%s HTTP/1.1\r\nHost: %s\r\nUpgrade: websocket\r\n"+
		"Connection: Upgrade\r\nSec-WebSocket-Key: %s\r\nSec-WebSocket-Version: 13\r\n\r\n",
		path, host, key)
	if _, err := raw.Write([]byte(req)); err != nil {
		raw.Close()
		return nil, err
	}
	br := bufio.NewReader(raw)
	status, err := br.ReadString('\n')
	if err != nil || !strings.Contains(status, "101") {
		raw.Close()
		return nil, fmt.Errorf("gate: websocket upgrade refused: %s", strings.TrimSpace(status))
	}
	accept := ""
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			raw.Close()
			return nil, err
		}
		line = strings.TrimSpace(line)
		if line == "" {
			break
		}
		if k, v, ok := strings.Cut(line, ":"); ok &&
			strings.EqualFold(strings.TrimSpace(k), "Sec-WebSocket-Accept") {
			accept = strings.TrimSpace(v)
		}
	}
	if accept != wsAccept(key) {
		raw.Close()
		return nil, errors.New("gate: bad Sec-WebSocket-Accept")
	}
	c, err := NewClient(newWSConn(raw, br, false))
	if err != nil {
		raw.Close()
		return nil, err
	}
	return c, nil
}
