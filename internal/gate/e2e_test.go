package gate

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/service"
)

// e2eSpec is a small stream-fed session: offset-addressable and
// deterministic for a seed — the property that lets a reassigned session
// serve byte-identical ranges from its new worker.
func e2eSpec(seed int64) service.SessionSpec {
	return service.SessionSpec{
		Terminals:    3,
		Erasure:      0.45,
		XPerRound:    64,
		PayloadBytes: 16,
		Rotate:       true,
		Seed:         seed,
		LowWater:     256,
		TargetDepth:  512,
		Timeout:      10 * time.Second,
		Streamed:     true,
	}
}

// recSpawner wraps the in-process spawner so the test can reach (and
// kill) the proc behind each slot while the coordinator supervises.
type recSpawner struct {
	spawn cluster.SpawnFunc
	mu    sync.Mutex
	procs map[int][]cluster.WorkerProc
}

func newRecSpawner() *recSpawner {
	return &recSpawner{spawn: cluster.InProcess(nil), procs: make(map[int][]cluster.WorkerProc)}
}

func (rs *recSpawner) Spawn(ctx context.Context, opts cluster.WorkerSpawnOpts) (cluster.WorkerProc, error) {
	p, err := rs.spawn(ctx, opts)
	if err != nil {
		return nil, err
	}
	rs.mu.Lock()
	rs.procs[opts.Slot] = append(rs.procs[opts.Slot], p)
	rs.mu.Unlock()
	return p, nil
}

func (rs *recSpawner) current(slot int) cluster.WorkerProc {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	hist := rs.procs[slot]
	if len(hist) == 0 {
		return nil
	}
	return hist[len(hist)-1]
}

func newE2ECoordinator(t *testing.T, spawn cluster.SpawnFunc) *cluster.Coordinator {
	t.Helper()
	co, err := cluster.New(cluster.Config{
		Workers:         2,
		WorkerCapacity:  4,
		HeartbeatEvery:  50 * time.Millisecond,
		HeartbeatMisses: 3,
		MaxRestarts:     3,
		RespawnBackoff:  20 * time.Millisecond,
		DrainTimeout:    10 * time.Second,
		Spawn:           spawn,
		Logf:            func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Shutdown(context.Background()) })
	return co
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestOwnershipInvalidationOnWorkerKill: a gate client reads a range,
// the owning worker dies, the coordinator reassigns the session, and the
// same read through the same gate connection returns byte-identical
// material from the new owner — with the backend's ownership cache
// observably invalidated and re-resolved along the way.
func TestOwnershipInvalidationOnWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e test")
	}
	rs := newRecSpawner()
	co := newE2ECoordinator(t, rs.Spawn)
	info, err := co.Create(e2eSpec(8801))
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.New()
	backend := NewClusterBackend(ClusterBackendConfig{
		Resolver:   LocalResolver{C: co},
		WatchEvery: 25 * time.Millisecond,
		Obs:        reg,
	})
	t.Cleanup(func() { backend.Close() })
	g := newTestGate(t, Config{Backend: backend, Obs: reg})
	c := dialPipe(t, g)
	ctx := context.Background()

	var first []byte
	waitFor(t, 60*time.Second, "first gate stream read", func() bool {
		got, err := c.StreamRange(ctx, info.ID, 4096, 96)
		if err != nil {
			return false
		}
		first = got
		return true
	})

	old, err := co.Owner(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	proc := rs.current(old.Worker)
	if proc == nil {
		t.Fatalf("no proc recorded for slot %d", old.Worker)
	}
	_ = proc.Kill()

	// The coordinator notices the death and reassigns the session to a
	// different worker URL (a respawned slot also gets a fresh URL).
	waitFor(t, 60*time.Second, "session reassignment", func() bool {
		oi, err := co.Owner(info.ID)
		return err == nil && oi.URL != "" && oi.URL != old.URL
	})

	var second []byte
	waitFor(t, 60*time.Second, "post-kill gate stream read", func() bool {
		got, err := c.StreamRange(ctx, info.ID, 4096, 96)
		if err != nil {
			return false
		}
		second = got
		return true
	})
	if !bytes.Equal(first, second) {
		t.Fatalf("range [4096,4192) changed across reassignment:\n old %x\n new %x", first, second)
	}

	// The cache demonstrably turned over: the stale entry was dropped
	// (reactively on the failed RPC, or proactively by the epoch watch)
	// and ownership was resolved at least twice in total.
	if inv, fl := backend.invalidations.Value(), backend.flushes.Value(); inv+fl == 0 {
		t.Fatal("ownership cache never invalidated across a worker kill")
	}
	if m := backend.misses.Value(); m < 2 {
		t.Fatalf("owner cache misses %d, want at least 2 (initial + re-resolve)", m)
	}
}

// TestGateServesWithoutCoordinatorRelay: every byte of key material the
// gate serves comes from worker /ctl RPCs — the coordinator answers
// ownership lookups only, never draw or stream requests.
func TestGateServesWithoutCoordinatorRelay(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster e2e test")
	}
	co := newE2ECoordinator(t, nil)
	info, err := co.Create(e2eSpec(8802))
	if err != nil {
		t.Fatal(err)
	}

	var ownerHits, relayHits atomic.Int64
	var relayMu sync.Mutex
	var relayPaths []string
	inner := co.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p := r.URL.Path
		switch {
		case strings.HasPrefix(p, "/v1/cluster/owners"):
			ownerHits.Add(1)
		case strings.HasSuffix(p, "/draw") || strings.HasSuffix(p, "/stream"):
			relayHits.Add(1)
			relayMu.Lock()
			relayPaths = append(relayPaths, p)
			relayMu.Unlock()
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	backend := NewClusterBackend(ClusterBackendConfig{
		Resolver:   NewHTTPResolver(ts.URL),
		WatchEvery: 50 * time.Millisecond,
		Obs:        obs.New(),
	})
	t.Cleanup(func() { backend.Close() })
	g := newTestGate(t, Config{Backend: backend})
	c := dialPipe(t, g)
	ctx := context.Background()

	waitFor(t, 60*time.Second, "gate-served session", func() bool {
		_, err := c.Draw(ctx, info.ID, 8)
		return err == nil
	})
	for i := 0; i < 20; i++ {
		if _, err := c.Draw(ctx, info.ID, 32); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := c.StreamRange(ctx, info.ID, int64(i)*256, 128); err != nil {
			t.Fatal(err)
		}
	}

	if ownerHits.Load() == 0 {
		t.Fatal("gate never consulted /v1/cluster/owners")
	}
	if n := relayHits.Load(); n != 0 {
		relayMu.Lock()
		defer relayMu.Unlock()
		t.Fatalf("%d key-material requests relayed through the coordinator: %v", n, relayPaths)
	}
}

// TestWebSocketRoundTrip: the WebSocket upgrade carries the same frame
// protocol — a WS client and a raw-pipe client read byte-identical
// ranges, and typed errors survive the extra framing layer.
func TestWebSocketRoundTrip(t *testing.T) {
	sv := service.New(service.Config{MaxSessions: 2, DrainTimeout: 5 * time.Second})
	t.Cleanup(func() { sv.Shutdown(context.Background()) })
	s, err := sv.Create(e2eSpec(8803))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	session := uint64(s.ID)

	g := newTestGate(t, Config{Backend: ServiceBackend{SV: sv}, HeartbeatEvery: time.Hour})
	mux := http.NewServeMux()
	mux.Handle("/v1/gate", g.WSHandler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	ws, err := DialWS(ts.URL + "/v1/gate")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws.Close() })
	pipe := dialPipe(t, g)

	key, err := ws.Draw(ctx, session, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 32 {
		t.Fatalf("ws draw returned %d bytes, want 32", len(key))
	}

	a, err := ws.StreamRange(ctx, session, 512, 300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipe.StreamRange(ctx, session, 512, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("WS and raw-frame clients disagree on the same stream range")
	}

	if _, err := ws.Draw(ctx, session+9999, 8); err == nil {
		t.Fatal("ws draw on unknown session succeeded")
	}

	if v := g.connections.Value(); v != 2 {
		t.Fatalf("connections gauge %v, want 2 (ws + pipe)", v)
	}
}

// TestWSHandlerRejectsPlainGET: the upgrade endpoint refuses requests
// without the WebSocket handshake headers instead of hijacking them.
func TestWSHandlerRejectsPlainGET(t *testing.T) {
	g := newTestGate(t, Config{})
	ts := httptest.NewServer(g.WSHandler())
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusUpgradeRequired {
		t.Fatalf("plain GET got %d, want a 4xx upgrade rejection", resp.StatusCode)
	}
}
