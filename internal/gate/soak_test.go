package gate

import (
	"context"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestGateSoak25kConnections is the population soak: 25k concurrent
// mock clients over net.Pipe, every connection serving at least one
// draw, then a full teardown that must return the process to its
// starting goroutine count — the gate may not leak an agent, a
// per-request goroutine, or a sweeper per connection.
//
// Slow and allocation-heavy, so it only runs when asked:
//
//	THINAIR_SOAK=1 go test ./internal/gate/ -run TestGateSoak -v
func TestGateSoak25kConnections(t *testing.T) {
	if os.Getenv("THINAIR_SOAK") == "" {
		t.Skip("set THINAIR_SOAK=1 to run the gate soak test")
	}
	if testing.Short() {
		t.Skip("soak test")
	}

	before := runtime.NumGoroutine()

	g := New(Config{
		Backend:        &stubBackend{},
		HeartbeatEvery: time.Minute, // sweeper on, but nobody gets kicked
		Obs:            obs.New(),
		Logf:           func(string, ...any) {},
	})

	const conns = 25000
	clients := make([]*Client, conns)
	var wg sync.WaitGroup
	const spawners = 64
	var spawnErr error
	var spawnMu sync.Mutex
	wg.Add(spawners)
	for s := 0; s < spawners; s++ {
		go func(s int) {
			defer wg.Done()
			for i := s; i < conns; i += spawners {
				server, cl := net.Pipe()
				go g.ServeConn(server)
				c, err := NewClient(cl)
				if err != nil {
					spawnMu.Lock()
					spawnErr = fmt.Errorf("conn %d: %w", i, err)
					spawnMu.Unlock()
					return
				}
				clients[i] = c
			}
		}(s)
	}
	wg.Wait()
	if spawnErr != nil {
		t.Fatal(spawnErr)
	}
	t.Logf("%d connections up (%d goroutines)", conns, runtime.NumGoroutine())

	// Every connection serves one draw: the agent's request path (sem,
	// per-request goroutine, response frame) runs 25k times concurrently.
	ctx := context.Background()
	const drawers = 128
	errc := make(chan error, drawers)
	for w := 0; w < drawers; w++ {
		go func(w int) {
			for i := w; i < conns; i += drawers {
				key, err := clients[i].Draw(ctx, uint64(i), 16)
				if err != nil {
					errc <- fmt.Errorf("conn %d draw: %w", i, err)
					return
				}
				if len(key) != 16 {
					errc <- fmt.Errorf("conn %d: %d bytes, want 16", i, len(key))
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < drawers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if v := g.connections.Value(); v != conns {
		t.Fatalf("connections gauge %v, want %d", v, conns)
	}

	for _, c := range clients {
		c.Close()
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything must drain: agents, per-request goroutines, the sweeper,
	// and the test's own ServeConn wrappers.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<22)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked after soak teardown: %d before, %d after\n%.20000s",
		before, runtime.NumGoroutine(), buf[:n])
}
