package gate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/httpapi"
	"repro/internal/obs"
)

// patternByte is the deterministic stub keystream: session and absolute
// offset fully determine each byte, so tests can assert both draw
// content and that multiplexed responses never cross request wires.
func patternByte(session uint64, off int64) byte {
	return byte(session*31 + uint64(off)*7 + 5)
}

// stubBackend serves the pattern and records draw sizes; errFor forces
// typed failures per session.
type stubBackend struct {
	mu     sync.Mutex
	draws  []int
	errFor map[uint64]error
}

func (b *stubBackend) Draw(_ context.Context, session uint64, n int) ([]byte, error) {
	b.mu.Lock()
	err := b.errFor[session]
	if err == nil {
		b.draws = append(b.draws, n)
	}
	b.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = patternByte(session, int64(i))
	}
	return out, nil
}

func (b *stubBackend) StreamTo(_ context.Context, session uint64, off, n int64, w io.Writer) (int64, error) {
	b.mu.Lock()
	err := b.errFor[session]
	b.mu.Unlock()
	if err != nil {
		return 0, err
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = patternByte(session, off+int64(i))
	}
	m, werr := w.Write(out)
	return int64(m), werr
}

func newTestGate(t *testing.T, cfg Config) *Gate {
	t.Helper()
	if cfg.Backend == nil {
		cfg.Backend = &stubBackend{}
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	g := New(cfg)
	t.Cleanup(func() { g.Close() })
	return g
}

// rawConnect opens a net.Pipe connection to g and completes the
// handshake by hand, returning the client half for frame-level tests.
func rawConnect(t *testing.T, g *Gate) net.Conn {
	t.Helper()
	server, cl := net.Pipe()
	go g.ServeConn(server)
	if err := writeFrame(cl, frameHandshake, []byte(`{"version":1}`)); err != nil {
		t.Fatal(err)
	}
	typ, body, err := readFrame(cl, nil, 0)
	if err != nil || typ != frameHandshake {
		t.Fatalf("handshake ack: type 0x%02x, err %v", typ, err)
	}
	var ack handshakeAck
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Version != protocolVersion || ack.MaxFrame != MaxFrameBody {
		t.Fatalf("handshake ack: %+v", ack)
	}
	if err := writeFrame(cl, frameHandshakeAck, nil); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// expectKick reads frames until the kick arrives and asserts its reason.
func expectKick(t *testing.T, conn net.Conn, reason string) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		typ, body, err := readFrame(conn, nil, 0)
		if err != nil {
			t.Fatalf("connection died before kick frame: %v", err)
		}
		if typ != frameKick {
			continue
		}
		if got := string(body); !strings.Contains(got, reason) {
			t.Fatalf("kick reason %q, want %q", got, reason)
		}
		return
	}
}

func TestHandshakeBadVersionKicked(t *testing.T) {
	g := newTestGate(t, Config{})
	server, cl := net.Pipe()
	go g.ServeConn(server)
	defer cl.Close()
	if err := writeFrame(cl, frameHandshake, []byte(`{"version":99}`)); err != nil {
		t.Fatal(err)
	}
	expectKick(t, cl, "unsupported protocol version")
	if v := g.handshakes.Value(); v != 0 {
		t.Fatalf("handshakes counter %d after rejected handshake", v)
	}
	if v := g.kicks.Value(); v != 1 {
		t.Fatalf("kicks counter %d, want 1", v)
	}
}

func TestHandshakeWrongFirstFrameDropped(t *testing.T) {
	g := newTestGate(t, Config{})
	server, cl := net.Pipe()
	go g.ServeConn(server)
	defer cl.Close()
	// A data frame before the handshake: the gate hangs up without
	// serving anything.
	body, err := appendRequest(nil, request{ReqID: 1, Op: opDraw, Session: 1, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(cl, frameData, body); err != nil {
		t.Fatal(err)
	}
	cl.SetReadDeadline(time.Now().Add(5 * time.Second))
	if typ, _, err := readFrame(cl, nil, 0); err == nil {
		t.Fatalf("gate answered a pre-handshake data frame with type 0x%02x", typ)
	}
}

func TestHeartbeatEcho(t *testing.T) {
	g := newTestGate(t, Config{HeartbeatEvery: time.Hour})
	cl := rawConnect(t, g)
	for i := 0; i < 3; i++ {
		if err := writeFrame(cl, frameHeartbeat, nil); err != nil {
			t.Fatal(err)
		}
		cl.SetReadDeadline(time.Now().Add(5 * time.Second))
		typ, body, err := readFrame(cl, nil, 0)
		if err != nil || typ != frameHeartbeat || len(body) != 0 {
			t.Fatalf("heartbeat echo %d: type 0x%02x, %d bytes, err %v", i, typ, len(body), err)
		}
	}
}

func TestHeartbeatTimeoutKick(t *testing.T) {
	g := newTestGate(t, Config{HeartbeatEvery: 20 * time.Millisecond})
	cl := rawConnect(t, g)
	// Go silent: after 3 missed intervals the sweeper kicks us.
	expectKick(t, cl, "heartbeat timeout")
	if v := g.heartbeatTimeouts.Value(); v != 1 {
		t.Fatalf("heartbeat_timeouts counter %d, want 1", v)
	}
}

// TestSlowHandshakeNotKickedEarly is the regression for the
// heartbeat-kick window: lastSeen used to be stored once when the agent
// started, so a connection whose handshake legitimately took close to
// the sweep deadline was kickable the moment it completed — before its
// first heartbeat was even due (the client only learns the interval
// from the handshake ack). Handshake frame reads must refresh lastSeen.
func TestSlowHandshakeNotKickedEarly(t *testing.T) {
	const hb = 60 * time.Millisecond // sweep deadline: 3×hb = 180ms of silence
	g := newTestGate(t, Config{HeartbeatEvery: hb})
	server, cl := net.Pipe()
	t.Cleanup(func() { cl.Close() })
	go g.ServeConn(server)
	// Each handshake step stays well inside the silence budget, but the
	// handshake as a whole takes longer than it — the slow-dial shape.
	// The old code pinned lastSeen at connection start, so the sweep saw
	// the whole handshake as one long silence and kicked mid-handshake.
	time.Sleep(2 * hb)
	if err := writeFrame(cl, frameHandshake, []byte(`{"version":1}`)); err != nil {
		t.Fatal(err)
	}
	typ, _, err := readFrame(cl, nil, 0)
	if err != nil || typ != frameHandshake {
		t.Fatalf("handshake ack: type 0x%02x, err %v", typ, err)
	}
	time.Sleep(2 * hb)
	if err := writeFrame(cl, frameHandshakeAck, nil); err != nil {
		t.Fatalf("handshake-ack write after stall: %v", err)
	}
	// Now behave: heartbeat well inside the interval for several sweep
	// periods and assert every echo comes back instead of a kick.
	for i := 0; i < 8; i++ {
		if err := writeFrame(cl, frameHeartbeat, nil); err != nil {
			t.Fatalf("heartbeat %d write: %v (kicked early?)", i, err)
		}
		typ, _, err := readFrame(cl, nil, 0)
		if err != nil {
			t.Fatalf("heartbeat %d read: %v (kicked early?)", i, err)
		}
		if typ == frameKick {
			t.Fatalf("fresh connection kicked after %d heartbeats", i)
		}
		if typ != frameHeartbeat {
			t.Fatalf("heartbeat %d echoed as type 0x%02x", i, typ)
		}
		time.Sleep(hb / 2)
	}
	if v := g.heartbeatTimeouts.Value(); v != 0 {
		t.Fatalf("heartbeat_timeouts counter %d, want 0", v)
	}
}

func TestMalformedDataFrameKicked(t *testing.T) {
	g := newTestGate(t, Config{})
	cl := rawConnect(t, g)
	if err := writeFrame(cl, frameData, []byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	expectKick(t, cl, "malformed data frame")
}

func TestUnexpectedFrameTypeKicked(t *testing.T) {
	g := newTestGate(t, Config{})
	cl := rawConnect(t, g)
	if err := writeFrame(cl, 0x7F, nil); err != nil {
		t.Fatal(err)
	}
	expectKick(t, cl, "unexpected frame type")
}

// dialPipe connects a protocol Client to g over net.Pipe.
func dialPipe(t *testing.T, g *Gate) *Client {
	t.Helper()
	server, cl := net.Pipe()
	go g.ServeConn(server)
	c, err := NewClient(cl)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBulkDrawIsOneBackendCall(t *testing.T) {
	b := &stubBackend{}
	g := newTestGate(t, Config{Backend: b})
	c := dialPipe(t, g)

	keys, err := c.DrawN(context.Background(), 9, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 4 {
		t.Fatalf("DrawN returned %d keys, want 4", len(keys))
	}
	for i, k := range keys {
		if len(k) != 16 {
			t.Fatalf("key %d is %d bytes, want 16", i, len(k))
		}
		for j, got := range k {
			if want := patternByte(9, int64(i*16+j)); got != want {
				t.Fatalf("key %d byte %d: 0x%02x, want 0x%02x", i, j, got, want)
			}
		}
	}
	b.mu.Lock()
	draws := append([]int{}, b.draws...)
	b.mu.Unlock()
	if len(draws) != 1 || draws[0] != 64 {
		t.Fatalf("backend draws %v, want one 64-byte draw", draws)
	}
}

// TestStreamChunkedIntoPartials drives an opStream raw so the test sees
// the frame sequence: a range larger than StreamChunk must arrive as
// multiple kindPartial frames capped at StreamChunk, closed by an empty
// kindFinal, and reassemble to the exact backend bytes.
func TestStreamChunkedIntoPartials(t *testing.T) {
	g := newTestGate(t, Config{})
	cl := rawConnect(t, g)

	const total = 3*httpapi.StreamChunk + 777
	body, err := appendRequest(nil, request{ReqID: 42, Op: opStream, Session: 5, Off: 1000, Len: total})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(cl, frameData, body); err != nil {
		t.Fatal(err)
	}

	var got []byte
	partials := 0
	cl.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		typ, fb, err := readFrame(cl, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if typ != frameData {
			t.Fatalf("unexpected frame type 0x%02x mid-stream", typ)
		}
		resp, err := parseResponse(fb)
		if err != nil {
			t.Fatal(err)
		}
		if resp.ReqID != 42 {
			t.Fatalf("response for request %d, want 42", resp.ReqID)
		}
		if resp.Kind == kindPartial {
			if len(resp.Payload) == 0 || len(resp.Payload) > httpapi.StreamChunk {
				t.Fatalf("partial of %d bytes, want 1..%d", len(resp.Payload), httpapi.StreamChunk)
			}
			partials++
			got = append(got, resp.Payload...)
			continue
		}
		if resp.Kind != kindFinal {
			t.Fatalf("stream ended with kind 0x%02x", resp.Kind)
		}
		got = append(got, resp.Payload...)
		break
	}
	if partials < 4 {
		t.Fatalf("%d partial frames for %d bytes, want at least 4", partials, total)
	}
	if len(got) != total {
		t.Fatalf("reassembled %d bytes, want %d", len(got), total)
	}
	for i, bch := range got {
		if want := patternByte(5, 1000+int64(i)); bch != want {
			t.Fatalf("byte %d: 0x%02x, want 0x%02x", i, bch, want)
		}
	}
}

func TestBackendErrorsMapThroughFrames(t *testing.T) {
	b := &stubBackend{errFor: map[uint64]error{
		1: client.ErrNotFound,
		2: client.ErrSaturated,
		3: fmt.Errorf("depleted: %w", client.ErrExhausted),
		4: client.ErrDraining,
		5: client.ErrOrphaned,
	}}
	g := newTestGate(t, Config{Backend: b})
	c := dialPipe(t, g)
	ctx := context.Background()

	cases := []struct {
		session uint64
		want    error
	}{
		{1, client.ErrNotFound},
		{2, client.ErrSaturated},
		{3, client.ErrExhausted},
		{4, client.ErrDraining},
		{5, client.ErrOrphaned},
	}
	for _, tc := range cases {
		if _, err := c.Draw(ctx, tc.session, 8); !errors.Is(err, tc.want) {
			t.Fatalf("session %d draw error %v, want %v", tc.session, err, tc.want)
		}
		if _, err := c.StreamRange(ctx, tc.session, 0, 8); !errors.Is(err, tc.want) {
			t.Fatalf("session %d stream error %v, want %v", tc.session, err, tc.want)
		}
	}
	// The wrapped error's message survives the wire.
	_, err := c.Draw(ctx, 3, 8)
	if err == nil || !strings.Contains(err.Error(), "depleted") {
		t.Fatalf("error message lost on the wire: %v", err)
	}
	// An error mid-stream discards any partial prefix: truncation is loud.
	if got, err := c.StreamRange(ctx, 1, 0, 8); err == nil || got != nil {
		t.Fatalf("failed stream returned %d bytes, err %v", len(got), err)
	}
}

// TestConcurrentMultiplexing hammers one connection from many
// goroutines; the per-session pattern proves responses never land on
// the wrong request.
func TestConcurrentMultiplexing(t *testing.T) {
	g := newTestGate(t, Config{})
	c := dialPipe(t, g)
	ctx := context.Background()

	const workers = 24
	const draws = 40
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			session := uint64(w + 1)
			for i := 0; i < draws; i++ {
				n := 8 + (w+i)%48
				key, err := c.Draw(ctx, session, n)
				if err != nil {
					errc <- fmt.Errorf("worker %d draw %d: %w", w, i, err)
					return
				}
				if len(key) != n {
					errc <- fmt.Errorf("worker %d: %d bytes, want %d", w, len(key), n)
					return
				}
				for j, bch := range key {
					if want := patternByte(session, int64(j)); bch != want {
						errc <- fmt.Errorf("worker %d: byte %d crossed wires", w, j)
						return
					}
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if v := g.connections.Value(); v != 1 {
		t.Fatalf("connections gauge %v, want 1", v)
	}
}

func TestGateCloseKicksClients(t *testing.T) {
	g := newTestGate(t, Config{})
	c := dialPipe(t, g)
	if _, err := c.Draw(context.Background(), 1, 8); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Draw(context.Background(), 1, 8); err == nil {
		t.Fatal("draw succeeded after gate close")
	}
}

func TestOversizedDrawRejectedWithoutBackendCall(t *testing.T) {
	b := &stubBackend{}
	g := newTestGate(t, Config{Backend: b})
	c := dialPipe(t, g)
	ctx := context.Background()
	if _, err := c.Draw(ctx, 1, httpapi.MaxDrawBytes+1); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("oversized draw: %v, want ErrBadRequest", err)
	}
	// Bulk totals overflow-check: per-key size legal, product over cap.
	if _, err := c.DrawN(ctx, 1, httpapi.MaxDrawBytes/2, 3); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("oversized bulk: %v, want ErrBadRequest", err)
	}
	b.mu.Lock()
	n := len(b.draws)
	b.mu.Unlock()
	if n != 0 {
		t.Fatalf("backend saw %d draws for rejected requests", n)
	}
}
