package gate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/httpapi"
	"repro/internal/obs"
)

// ErrClientClosed is returned by calls on a closed (or kicked) Client.
var ErrClientClosed = errors.New("gate: client closed")

// Client is the frame-protocol implementation of the thinair Client
// interface: one persistent connection, requests multiplexed by id.
//
// It reads on demand instead of dedicating a goroutine per connection:
// whichever caller is waiting for a response takes the reader role
// (readSem), parses frames as they arrive, and hands responses for
// other request ids to their waiters. A client with no call in flight
// has zero goroutines (heartbeats aside) — the property that lets the
// bench hold 100k+ mock clients in one process.
type Client struct {
	conn net.Conn

	readSem chan struct{} // cap 1: its holder is the connection's reader
	readBuf []byte        // owned by the readSem holder

	writeMu sync.Mutex

	mu      sync.Mutex
	waiters map[uint32]*pending
	nextID  uint32
	err     error // terminal error, set once

	heartbeat time.Duration
	hbStop    chan struct{}
	closeOnce sync.Once
}

// pending collects one request's responses. The queue is unbounded so
// the reader can never block delivering to a slow waiter (memory is
// bounded by the stream range the waiter itself asked for).
type pending struct {
	mu     sync.Mutex
	queue  []response
	notify chan struct{} // cap 1, sticky wakeup
}

// Dial connects to a gate's TCP listener and performs the handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient performs the handshake on an established connection (TCP,
// net.Pipe, or a WebSocket adapter) and returns the ready Client. On
// error the connection is left to the caller to close.
func NewClient(conn net.Conn) (*Client, error) {
	hs, _ := json.Marshal(handshake{Version: protocolVersion})
	if err := writeFrame(conn, frameHandshake, hs); err != nil {
		return nil, fmt.Errorf("gate: handshake: %w", err)
	}
	typ, body, err := readFrame(conn, nil, maxControlBody)
	if err != nil {
		return nil, fmt.Errorf("gate: handshake: %w", err)
	}
	if typ == frameKick {
		return nil, fmt.Errorf("gate: kicked during handshake: %s", body)
	}
	if typ != frameHandshake {
		return nil, fmt.Errorf("gate: handshake: unexpected frame type 0x%02x", typ)
	}
	var ack handshakeAck
	if err := json.Unmarshal(body, &ack); err != nil || ack.Version != protocolVersion {
		return nil, errors.New("gate: handshake: unsupported server version")
	}
	if err := writeFrame(conn, frameHandshakeAck, nil); err != nil {
		return nil, fmt.Errorf("gate: handshake: %w", err)
	}
	c := &Client{
		conn:      conn,
		readSem:   make(chan struct{}, 1),
		waiters:   make(map[uint32]*pending),
		heartbeat: time.Duration(ack.HeartbeatMS) * time.Millisecond,
		hbStop:    make(chan struct{}),
	}
	if c.heartbeat > 0 {
		go c.heartbeatLoop()
	}
	return c, nil
}

// heartbeatLoop keeps the connection alive at the server-advertised
// interval. Echo frames are drained by whichever caller holds the
// reader role; an idle client leaves them in the socket buffer, where a
// handful of 4-byte echoes are harmless.
func (c *Client) heartbeatLoop() {
	t := time.NewTicker(c.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-c.hbStop:
			return
		case <-t.C:
			c.writeMu.Lock()
			err := writeFrame(c.conn, frameHeartbeat, nil)
			c.writeMu.Unlock()
			if err != nil {
				c.fail(fmt.Errorf("gate: heartbeat: %w", err))
				return
			}
		}
	}
}

// fail records the terminal error, closes the connection, and wakes
// every waiter so no caller stays parked on a dead connection.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	waiters := make([]*pending, 0, len(c.waiters))
	for _, p := range c.waiters {
		waiters = append(waiters, p)
	}
	c.mu.Unlock()
	c.conn.Close()
	for _, p := range waiters {
		p.wake()
	}
}

// Dead reports whether the connection hit its terminal error (kicked,
// peer gone, heartbeat failure, or an explicit Close). Calls on a dead
// client fail fast; ReconnectClient uses this to tell a connection
// death (redial and, where safe, resume) from a typed backend error
// (surface to the caller).
func (c *Client) Dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

// Close shuts the connection down. Outstanding calls return
// ErrClientClosed.
func (c *Client) Close() error {
	c.closeOnce.Do(func() {
		if c.heartbeat > 0 {
			close(c.hbStop)
		}
		c.fail(ErrClientClosed)
	})
	return nil
}

func (p *pending) wake() {
	select {
	case p.notify <- struct{}{}:
	default:
	}
}

// push delivers one response (payload already copied) to the waiter.
func (p *pending) push(resp response) {
	p.mu.Lock()
	p.queue = append(p.queue, resp)
	p.mu.Unlock()
	p.wake()
}

func (p *pending) pop() (response, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.queue) == 0 {
		return response{}, false
	}
	r := p.queue[0]
	p.queue = p.queue[1:]
	return r, true
}

// send registers a waiter and writes the request frame.
func (c *Client) send(req request) (*pending, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ReqID = c.nextID
	p := &pending{notify: make(chan struct{}, 1)}
	c.waiters[req.ReqID] = p
	c.mu.Unlock()

	body, err := appendRequest(make([]byte, 0, 64), req)
	if err != nil {
		c.forget(req.ReqID)
		return nil, err
	}
	c.writeMu.Lock()
	err = writeFrame(c.conn, frameData, body)
	c.writeMu.Unlock()
	if err != nil {
		c.forget(req.ReqID)
		c.fail(fmt.Errorf("gate: send: %w", err))
		return nil, err
	}
	return p, nil
}

func (c *Client) forget(reqID uint32) {
	c.mu.Lock()
	delete(c.waiters, reqID)
	c.mu.Unlock()
}

// next blocks until the waiter's next response arrives, taking the
// reader role whenever it is free. ctx cancellation abandons the
// request (late responses for it are discarded by whoever reads them).
func (c *Client) next(ctx context.Context, reqID uint32, p *pending) (response, error) {
	for {
		if r, ok := p.pop(); ok {
			return r, nil
		}
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err != nil {
			return response{}, err
		}
		select {
		case <-p.notify:
			// Something was delivered (or this is a failure wakeup);
			// loop to pop or observe the terminal error.
		case c.readSem <- struct{}{}:
			// Reader role acquired: responses may have landed between the
			// pop above and now, so recheck before blocking in a read.
			if r, ok := p.pop(); ok {
				<-c.readSem
				return r, nil
			}
			rerr := c.readOne()
			<-c.readSem
			if rerr != nil {
				c.fail(rerr)
				return response{}, rerr
			}
		case <-ctx.Done():
			c.forget(reqID)
			return response{}, ctx.Err()
		}
	}
}

// readOne reads and dispatches a single frame. Runs only while holding
// the reader role.
func (c *Client) readOne() error {
	typ, body, err := readFrame(c.conn, c.readBuf, 0)
	if err != nil {
		return fmt.Errorf("gate: read: %w", err)
	}
	c.readBuf = body[:cap(body)]
	switch typ {
	case frameHeartbeat:
		return nil // server echo of our own heartbeat
	case frameKick:
		return fmt.Errorf("gate: kicked: %s", body)
	case frameData:
		resp, err := parseResponse(body)
		if err != nil {
			return err
		}
		// The payload aliases the shared read buffer: copy before the
		// buffer is reused for the next frame.
		if len(resp.Payload) > 0 {
			resp.Payload = append([]byte(nil), resp.Payload...)
		}
		c.mu.Lock()
		p := c.waiters[resp.ReqID]
		c.mu.Unlock()
		if p != nil {
			p.push(resp)
		}
		return nil
	default:
		return fmt.Errorf("gate: unexpected frame type 0x%02x", typ)
	}
}

// call runs one request expecting a single final (or error) response.
func (c *Client) call(ctx context.Context, req request) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req.Span = obs.SpanID(ctx)
	p, err := c.send(req)
	if err != nil {
		return nil, err
	}
	reqID := req.ReqID
	defer c.forget(reqID)
	for {
		resp, err := c.next(ctx, reqID, p)
		if err != nil {
			return nil, err
		}
		switch resp.Kind {
		case kindFinal:
			return resp.Payload, nil
		case kindError:
			return nil, responseError(resp)
		case kindPartial:
			return nil, fmt.Errorf("gate: unexpected partial response")
		}
	}
}

// responseError maps an error response's wire code back to the typed
// error it stands for.
func responseError(resp response) error {
	slug, ok := codeToSlug[resp.Code]
	if !ok {
		return fmt.Errorf("gate: server error: %s", resp.Message)
	}
	return client.ErrorFromCode(slug, resp.Message)
}

// Draw consumes and returns n bytes of the session's key material.
func (c *Client) Draw(ctx context.Context, session uint64, n int) ([]byte, error) {
	if n <= 0 || n > httpapi.MaxDrawBytes {
		return nil, fmt.Errorf("%w: draw of %d bytes outside 1..%d",
			client.ErrBadRequest, n, httpapi.MaxDrawBytes)
	}
	key, err := c.call(ctx, request{Op: opDraw, Session: session, N: uint32(n)})
	if err != nil {
		return nil, err
	}
	if len(key) != n {
		return nil, fmt.Errorf("gate: draw returned %d bytes, want %d", len(key), n)
	}
	return key, nil
}

// DrawN consumes n×count bytes in one round trip, split into count keys.
func (c *Client) DrawN(ctx context.Context, session uint64, n, count int) ([][]byte, error) {
	if n <= 0 || count <= 0 || n > httpapi.MaxDrawBytes/count {
		return nil, fmt.Errorf("%w: bulk draw %d×%d outside 1..%d bytes",
			client.ErrBadRequest, n, count, httpapi.MaxDrawBytes)
	}
	flat, err := c.call(ctx, request{
		Op: opBulk, Session: session, N: uint32(n), Count: uint32(count),
	})
	if err != nil {
		return nil, err
	}
	if len(flat) != n*count {
		return nil, fmt.Errorf("gate: bulk draw returned %d bytes, want %d", len(flat), n*count)
	}
	keys := make([][]byte, count)
	for i := range keys {
		keys[i] = flat[i*n : (i+1)*n : (i+1)*n]
	}
	return keys, nil
}

// StreamRange reads length bytes at offset off of the session's key
// stream, reassembling the partial-frame chunks the gate relays from
// the owning worker.
func (c *Client) StreamRange(ctx context.Context, session uint64, off, length int64) ([]byte, error) {
	buf, err := c.streamRangePrefix(ctx, session, off, length, nil)
	if err != nil {
		// Accumulated partials are discarded: truncation stays loud.
		return nil, err
	}
	return buf, nil
}

// streamRangePrefix is StreamRange keeping the received prefix on
// failure: the range's bytes are appended to buf, and on error buf
// holds every partial that arrived before the failure. ReconnectClient
// resumes an interrupted range from exactly that offset on a fresh
// connection, so bytes are delivered exactly once even across a gate
// restart. Plain StreamRange discards the prefix instead.
func (c *Client) streamRangePrefix(ctx context.Context, session uint64, off, length int64, buf []byte) ([]byte, error) {
	if length <= 0 || length > httpapi.MaxStreamBytes {
		return buf, fmt.Errorf("%w: stream length %d outside 1..%d",
			client.ErrBadRequest, length, httpapi.MaxStreamBytes)
	}
	if err := ctx.Err(); err != nil {
		return buf, err
	}
	req := request{Op: opStream, Session: session, Off: off, Len: length, Span: obs.SpanID(ctx)}
	p, err := c.send(req)
	if err != nil {
		return buf, err
	}
	reqID := req.ReqID
	defer c.forget(reqID)
	if buf == nil {
		buf = make([]byte, 0, length)
	}
	got := int64(0)
	for {
		resp, err := c.next(ctx, reqID, p)
		if err != nil {
			return buf, err
		}
		switch resp.Kind {
		case kindPartial:
			buf = append(buf, resp.Payload...)
			got += int64(len(resp.Payload))
		case kindFinal:
			buf = append(buf, resp.Payload...)
			got += int64(len(resp.Payload))
			if got != length {
				return buf, fmt.Errorf("gate: stream returned %d bytes, want %d", got, length)
			}
			return buf, nil
		case kindError:
			return buf, responseError(resp)
		}
	}
}

// ReaderAt adapts one session's stream surface to io.ReaderAt.
func (c *Client) ReaderAt(session uint64) io.ReaderAt {
	return gateReaderAt{c: c, session: session}
}

type gateReaderAt struct {
	c       *Client
	session uint64
}

func (r gateReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	b, err := r.c.StreamRange(context.Background(), r.session, off, int64(len(p)))
	if err != nil {
		return 0, err
	}
	return copy(p, b), nil
}

var _ client.Client = (*Client)(nil)
