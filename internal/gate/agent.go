package gate

import (
	"encoding/json"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/httpapi"
	"repro/internal/obs"
)

// maxControlBody bounds handshake and request frame bodies — both are
// tiny; anything larger is garbage and the connection is cut before the
// 16 MiB frame space can be used as an allocation lever.
const maxControlBody = 1024

// agent is one connection's server side: a read loop that echoes
// heartbeats and fans data requests out to bounded per-request
// goroutines, with all writes serialized on writeMu so concurrent
// responses interleave at frame granularity.
type agent struct {
	g        *Gate
	conn     connLike
	writeMu  sync.Mutex
	lastSeen atomic.Int64 // unix nanos of the last frame read
	kicked   atomic.Bool
	sem      chan struct{}
}

// connLike is the slice of net.Conn the agent needs — real TCP conns,
// net.Pipe halves and the WebSocket adapter all satisfy it.
type connLike interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	SetWriteDeadline(t time.Time) error
	Close() error
}

func (a *agent) run() {
	a.lastSeen.Store(time.Now().UnixNano())
	if !a.handshake() {
		return
	}
	a.g.handshakes.Inc()
	a.sem = make(chan struct{}, a.g.cfg.MaxPending)
	var buf []byte
	for {
		typ, body, err := readFrame(a.conn, buf, maxControlBody)
		if err != nil {
			return // peer gone, kicked, or gate closing
		}
		buf = body[:cap(body)]
		a.g.framesIn.Inc()
		a.lastSeen.Store(time.Now().UnixNano())
		switch typ {
		case frameHeartbeat:
			if a.write(frameHeartbeat, nil) != nil {
				return
			}
		case frameData:
			req, err := parseRequest(body)
			if err != nil {
				a.kick("malformed data frame")
				return
			}
			// The semaphore is the per-connection concurrency bound;
			// when it is full the read loop stalls and backpressure
			// propagates through the socket.
			select {
			case a.sem <- struct{}{}:
			case <-a.g.ctx.Done():
				return
			}
			a.g.wg.Add(1)
			go func() {
				defer a.g.wg.Done()
				defer func() { <-a.sem }()
				a.handle(req)
			}()
		case frameKick:
			return // client-side goodbye
		default:
			a.kick("unexpected frame type")
			return
		}
	}
}

// handshake runs the three-step opening: client handshake JSON, server
// ack advertising the heartbeat interval, client handshake-ack.
//
// Every frame read refreshes lastSeen. The client only learns the
// heartbeat interval from the ack, so it cannot have been heartbeating
// during the handshake — without the refresh, a handshake that
// legitimately took close to the sweep deadline would leave the freshly
// established connection kickable before its first heartbeat was even
// due.
func (a *agent) handshake() bool {
	typ, body, err := readFrame(a.conn, nil, maxControlBody)
	if err != nil || typ != frameHandshake {
		return false
	}
	a.lastSeen.Store(time.Now().UnixNano())
	var hs handshake
	if json.Unmarshal(body, &hs) != nil || hs.Version != protocolVersion {
		a.kick("unsupported protocol version")
		return false
	}
	ack, _ := json.Marshal(handshakeAck{
		Version:     protocolVersion,
		HeartbeatMS: a.g.cfg.HeartbeatEvery.Milliseconds(),
		MaxFrame:    MaxFrameBody,
	})
	if a.write(frameHandshake, ack) != nil {
		return false
	}
	typ, _, err = readFrame(a.conn, nil, maxControlBody)
	if err != nil || typ != frameHandshakeAck {
		return false
	}
	a.lastSeen.Store(time.Now().UnixNano())
	return true
}

// handle serves one data request on its own goroutine.
func (a *agent) handle(req request) {
	obsOn := a.g.obsReg.Enabled()
	var t0 time.Time
	if obsOn {
		t0 = time.Now()
	}
	ctx := a.g.ctx
	span := req.Span
	if !obsOn {
		span = ""
	}
	if span != "" {
		// The span rides the frame the way X-Thinair-Span rides HTTP:
		// the backend's worker RPC picks it out of the context, so
		// /debug/trace?span= shows gate → worker → engine as one chain.
		ctx = obs.WithSpan(ctx, span)
	}
	switch req.Op {
	case opDraw, opBulk:
		n := uint64(req.N)
		if req.Op == opBulk {
			n *= uint64(req.Count)
		}
		if n == 0 || n > httpapi.MaxDrawBytes {
			a.replyError(req.ReqID, client.ErrBadRequest)
			if obsOn {
				a.g.drawErr.ObserveSince(t0)
			}
			return
		}
		key, err := a.g.cfg.Backend.Draw(ctx, req.Session, int(n))
		if err != nil {
			a.replyError(req.ReqID, err)
			if obsOn {
				a.g.drawErr.ObserveSince(t0)
			}
			return
		}
		if a.reply(req.ReqID, kindFinal, key) != nil {
			return
		}
		if obsOn {
			now := time.Now()
			a.g.drawOK.Observe(now.Sub(t0).Seconds())
			if span != "" {
				a.g.spans.RecordKVAt(now, span, "gate", "draw",
					"session", strconv.FormatUint(req.Session, 10),
					"bytes", strconv.FormatUint(n, 10))
			}
		}
	case opStream:
		if req.Len == 0 || req.Len > httpapi.MaxStreamBytes {
			a.replyError(req.ReqID, client.ErrBadRequest)
			if obsOn {
				a.g.strErr.ObserveSince(t0)
			}
			return
		}
		cw := &chunkWriter{a: a, reqID: req.ReqID}
		if _, err := a.g.cfg.Backend.StreamTo(ctx, req.Session, req.Off, req.Len, cw); err != nil {
			// Even after partials went out the error frame is correct:
			// the client discards the accumulated prefix — truncation is
			// loud on this surface too.
			a.replyError(req.ReqID, err)
			if obsOn {
				a.g.strErr.ObserveSince(t0)
			}
			return
		}
		if a.reply(req.ReqID, kindFinal, nil) != nil {
			return
		}
		if obsOn {
			now := time.Now()
			a.g.strOK.Observe(now.Sub(t0).Seconds())
			if span != "" {
				a.g.spans.RecordKVAt(now, span, "gate", "stream",
					"session", strconv.FormatUint(req.Session, 10),
					"offset", strconv.FormatInt(req.Off, 10),
					"len", strconv.FormatInt(req.Len, 10))
			}
		}
	default:
		a.replyError(req.ReqID, client.ErrBadRequest)
	}
}

// write emits one frame under the write lock.
func (a *agent) write(typ byte, body []byte) error {
	a.writeMu.Lock()
	err := writeFrame(a.conn, typ, body)
	a.writeMu.Unlock()
	if err == nil {
		a.g.framesOut.Inc()
	}
	return err
}

// reply emits one data response frame.
func (a *agent) reply(reqID uint32, kind byte, payload []byte) error {
	body := appendResponseHeader(make([]byte, 0, 5+len(payload)), reqID, kind)
	body = append(body, payload...)
	return a.write(frameData, body)
}

// replyError emits an error response carrying the shared envelope code
// in one-byte form.
func (a *agent) replyError(reqID uint32, err error) {
	msg := err.Error()
	body := appendResponseHeader(make([]byte, 0, 6+len(msg)), reqID, kindError)
	body = append(body, slugToCode[client.CodeFromError(err)])
	body = append(body, msg...)
	_ = a.write(frameData, body)
}

// kick closes the connection server-side, best-effort sending the kick
// frame first. The write deadline also unblocks any in-flight write
// holding writeMu, so a stalled peer can never wedge the sweeper.
func (a *agent) kick(reason string) {
	if !a.kicked.CompareAndSwap(false, true) {
		return
	}
	a.g.kicks.Inc()
	_ = a.conn.SetWriteDeadline(time.Now().Add(time.Second))
	a.writeMu.Lock()
	_ = writeFrame(a.conn, frameKick, []byte(reason))
	a.writeMu.Unlock()
	a.conn.Close()
}

// chunkWriter turns backend stream writes into partial response frames
// of at most StreamChunk bytes each.
type chunkWriter struct {
	a     *agent
	reqID uint32
	wrote bool
}

func (cw *chunkWriter) Write(p []byte) (int, error) {
	written := 0
	for len(p) > 0 {
		c := p
		if len(c) > httpapi.StreamChunk {
			c = c[:httpapi.StreamChunk]
		}
		if err := cw.a.reply(cw.reqID, kindPartial, c); err != nil {
			return written, err
		}
		cw.wrote = true
		written += len(c)
		p = p[len(c):]
	}
	return written, nil
}
